#include "sim/simulator.hpp"

#include <utility>

#include "util/assert.hpp"

namespace plwg::sim {

TimerId Simulator::schedule_at(Time t, std::function<void()> fn) {
  PLWG_ASSERT_MSG(t >= now_, "scheduling into the past");
  PLWG_ASSERT(fn != nullptr);
  const TimerId id = next_id_++;
  queue_.push(Event{t, next_seq_++, id});
  callbacks_.emplace(id, std::move(fn));
  return id;
}

TimerId Simulator::schedule_after(Duration delay, std::function<void()> fn) {
  PLWG_ASSERT_MSG(delay >= 0, "negative delay");
  return schedule_at(now_ + delay, std::move(fn));
}

void Simulator::cancel(TimerId id) { callbacks_.erase(id); }

bool Simulator::fire_next() {
  while (!queue_.empty()) {
    const Event ev = queue_.top();
    queue_.pop();
    auto it = callbacks_.find(ev.id);
    if (it == callbacks_.end()) continue;  // cancelled
    // Move the callback out before invoking: the callback may schedule or
    // cancel other events, invalidating iterators.
    std::function<void()> fn = std::move(it->second);
    callbacks_.erase(it);
    now_ = ev.time;
    ++events_run_;
    fn();
    return true;
  }
  return false;
}

bool Simulator::step() { return fire_next(); }

std::size_t Simulator::run(std::size_t max_events) {
  std::size_t n = 0;
  while (n < max_events && fire_next()) ++n;
  PLWG_ASSERT_MSG(n < max_events, "simulator event budget exhausted");
  return n;
}

std::size_t Simulator::run_until(Time t, std::size_t max_events) {
  PLWG_ASSERT(t >= now_);
  std::size_t n = 0;
  while (n < max_events) {
    // Peek: skip over cancelled entries to find the next live event time.
    bool fired = false;
    while (!queue_.empty()) {
      const Event& top = queue_.top();
      if (!callbacks_.contains(top.id)) {
        queue_.pop();
        continue;
      }
      if (top.time > t) break;
      fired = fire_next();
      break;
    }
    if (!fired) break;
    ++n;
  }
  PLWG_ASSERT_MSG(n < max_events, "simulator event budget exhausted");
  now_ = t;
  return n;
}

std::size_t Simulator::pending_events() const { return callbacks_.size(); }

}  // namespace plwg::sim
