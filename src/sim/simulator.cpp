#include "sim/simulator.hpp"

#include <algorithm>
#include <utility>

#include "util/assert.hpp"

namespace plwg::sim {

std::uint32_t Simulator::acquire_slot_slow() {
  PLWG_ASSERT_MSG(num_slots_ < kNilSlot, "timer slab exhausted");
  if (num_slots_ == chunks_.size() * kChunkSize) {
    chunks_.push_back(std::make_unique<Slot[]>(kChunkSize));
  }
  return num_slots_++;
}

void Simulator::release_slot(std::uint32_t index) {
  Slot& s = slot(index);
  s.fn = nullptr;
  s.live = false;
  ++s.generation;  // invalidates every outstanding id for this slot
  s.next_free = free_head_;
  free_head_ = index;
  --live_count_;
}

void Simulator::cancel(TimerId id) {
  const auto index = static_cast<std::uint32_t>(id);
  if (index >= num_slots_ || !id_live(id)) return;
  release_slot(index);
  ++dead_in_heap_;  // the heap entry stays until it surfaces or we compact
  compact_if_mostly_dead();
}

void Simulator::pop_heap_top() {
  std::pop_heap(heap_.begin(), heap_.end(), EventAfter{});
  heap_.pop_back();
}

void Simulator::compact_if_mostly_dead() {
  if (heap_.size() < kCompactFloor || dead_in_heap_ * 2 <= heap_.size()) {
    return;
  }
  std::erase_if(heap_, [this](const Event& ev) { return !id_live(ev.id); });
  // Rebuilding preserves pop order exactly: (time, seq) is a total order
  // (seq is unique), so the heap's pop sequence is determined by its
  // contents alone, not by insertion history.
  std::make_heap(heap_.begin(), heap_.end(), EventAfter{});
  dead_in_heap_ = 0;
}

bool Simulator::fire_next() {
  while (!heap_.empty()) {
    const Event ev = heap_.front();
    pop_heap_top();
    if (!id_live(ev.id)) {  // cancelled; its slot was already recycled
      --dead_in_heap_;
      continue;
    }
    const auto index = static_cast<std::uint32_t>(ev.id);
    // The chunked slab never relocates slots, so the callback runs straight
    // out of its slot storage (no move-out). Clearing `live` first makes a
    // self-cancel inside the callback a no-op; the slot only joins the
    // free list after the callback returns, so events it schedules cannot
    // reuse this storage mid-call.
    Slot& s = slot(index);
    s.live = false;
    now_ = event_time(ev.key);
    ++events_run_;
    in_event_ = true;
    s.fn.invoke_consume();
    in_event_ = false;
    ++s.generation;
    s.next_free = free_head_;
    free_head_ = index;
    --live_count_;
    return true;
  }
  return false;
}

bool Simulator::step() { return fire_next(); }

std::size_t Simulator::run(std::size_t max_events) {
  std::size_t n = 0;
  while (n < max_events && fire_next()) ++n;
  PLWG_ASSERT_MSG(n < max_events, "simulator event budget exhausted");
  return n;
}

std::size_t Simulator::run_until(Time t, std::size_t max_events) {
  PLWG_ASSERT(t >= now_);
  std::size_t n = 0;
  while (n < max_events) {
    // Peek: skip over cancelled entries to find the next live event time.
    bool fired = false;
    while (!heap_.empty()) {
      if (!id_live(heap_.front().id)) {
        pop_heap_top();
        --dead_in_heap_;
        continue;
      }
      if (event_time(heap_.front().key) > t) break;
      fired = fire_next();
      break;
    }
    if (!fired) break;
    ++n;
  }
  PLWG_ASSERT_MSG(n < max_events, "simulator event budget exhausted");
  now_ = t;
  return n;
}

}  // namespace plwg::sim
