// Simulated network with a shared-medium (Ethernet-like) cost model and
// partition support.
//
// The paper's evaluation ran on a loaded 10 Mbps shared Ethernet with IP
// multicast. The effects it measures — interference between unrelated
// groups, shared failure-detection and flush cost — are *contention*
// effects, so the model charges:
//   * one bus occupancy per transmission (multicast reaches every
//     destination with a single occupancy, like IP multicast),
//   * a FIFO bus queue per partition segment with finite bandwidth,
//   * a per-packet CPU processing cost at each receiver (its own FIFO
//     queue), which is what makes "receive and filter out" traffic costly.
//
// Partitions are reachability classes: a packet reaches only destinations in
// the sender's class at send time. Healing restores one class. A "virtual
// partition" (paper Sect. 4) is simulated the same way, only shorter-lived.
//
// Sharding: when the network is built over a sim::Engine, each LAN segment
// is assigned to an engine shard (segment i -> shard i mod S) and all of the
// segment's mutable simulation state — bus queue, WAN uplink queue, fault
// RNG, stats, trace digest — lives in that shard's ShardCtx, touched only by
// the thread running the shard. The only cross-shard interaction is the
// backbone hop of an inter-segment packet, posted through Engine::post and
// injected at a window barrier; its timestamp is at least the backbone
// propagation delay in the future, which is exactly the engine's lookahead.
// A consequence of per-shard ownership is that the WAN uplink queue is keyed
// per (partition, source segment) instead of one global backbone queue:
// each segment's uplink serializes independently, like per-port router
// queues, so no shard ever waits on another shard's queue head.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "sim/engine.hpp"
#include "sim/simulator.hpp"
#include "sim/trace_digest.hpp"
#include "util/rng.hpp"
#include "util/types.hpp"

namespace plwg::sim {

struct NetworkConfig {
  /// Bus propagation delay, microseconds.
  Duration propagation_delay_us = 50;
  /// CPU cost to receive + process one packet at a node, microseconds.
  Duration node_process_cost_us = 100;
  /// Shared bus bandwidth, bits per second (paper: 10 Mbps Ethernet).
  double bandwidth_bps = 10e6;
  /// Per-packet framing overhead added to the payload (UDP/IP + Ethernet).
  std::size_t header_bytes = 46;
  /// Probability a given delivery is dropped (per destination).
  double drop_probability = 0.0;
  /// Probability a given delivery is corrupted in transit (per destination):
  /// the receiver gets a copy with random bit flips or a truncated tail.
  /// Exercises the frame-demux hardening; parsers must reject, not crash.
  double corrupt_probability = 0.0;
  /// Extra uniform delivery jitter in [0, jitter_us].
  Duration jitter_us = 0;
  /// When false, the bus queue is skipped: packets only pay propagation and
  /// processing cost. Useful for protocol-logic tests.
  bool shared_bus = true;
  /// Fold delivered payload bytes into the trace digest (not just sizes).
  /// Strictest determinism check; costs one pass over every payload.
  bool digest_payloads = false;
  /// RNG seed for drops/jitter.
  std::uint64_t seed = 42;
};

/// Inter-LAN backbone parameters for multi-segment topologies.
struct WanConfig {
  /// One-way propagation across the backbone, microseconds.
  Duration propagation_delay_us = 2'000;
  /// Backbone bandwidth, bits per second (per source-segment uplink).
  double bandwidth_bps = 2e6;
};

/// Fault state of one *directed* link, layered on top of the reachability
/// classes: a packet from `from` to `to` must survive both the partition
/// check and the (from, to) link fault. Asymmetric (one-way) links are the
/// point — blocking A->B while B->A still works — plus per-link drop and
/// jitter overrides for lossy/laggy paths. Link flapping is expressed as a
/// timed sequence of set_link_fault / clear_link_fault calls (driven by
/// harness::ChaosMonkey); the network itself holds only the current state.
struct LinkFault {
  /// Packets in this direction are silently discarded at send time.
  bool blocked = false;
  /// Per-delivery drop probability override; negative inherits
  /// NetworkConfig::drop_probability.
  double drop_probability = -1.0;
  /// Delivery jitter override; negative inherits NetworkConfig::jitter_us.
  Duration jitter_us = -1;
};

/// Interface implemented by every simulated host.
class NetHandler {
 public:
  virtual ~NetHandler() = default;
  virtual void on_packet(NodeId from, std::span<const std::uint8_t> data) = 0;
};

struct NetworkStats {
  std::uint64_t frames_sent = 0;       // transmissions (multicast counts once)
  std::uint64_t messages_sent = 0;     // protocol messages carried in frames
  std::uint64_t piggybacked_acks = 0;  // stability msgs that rode a shared frame
  std::uint64_t deliveries = 0;        // per-destination deliveries
  std::uint64_t bytes_sent = 0;        // payload bytes transmitted
  std::uint64_t bytes_on_wire = 0;     // payload + headers
  std::uint64_t drops = 0;
  std::uint64_t link_blocked = 0;      // deliveries eaten by a down link
  std::uint64_t corruptions = 0;       // deliveries mutated in transit
  std::uint64_t stale_epoch_drops = 0; // packets addressed to a dead incarnation
  Duration bus_busy_us = 0;            // accumulated transmission time

  /// Messages carried per frame put on the wire — the coalescing layer's
  /// amortization factor (1.0 means no batching happened).
  [[nodiscard]] double amortization_ratio() const {
    return frames_sent == 0 ? 1.0
                            : static_cast<double>(messages_sent) /
                                  static_cast<double>(frames_sent);
  }
  /// Fold `other` into this — barrier/aggregation-time only, never hot path.
  void accumulate(const NetworkStats& other);
  /// Human-readable one-stop summary for logs and test failure output.
  [[nodiscard]] std::string debug_dump() const;
};

class Network {
 public:
  /// Classic single-threaded form: one shard wrapping an external simulator.
  Network(Simulator& simulator, NetworkConfig config);
  /// Sharded form: per-engine-shard state, segments mapped onto shards by
  /// set_segments. With a 1-shard engine this behaves exactly like the
  /// classic form.
  Network(Engine& engine, NetworkConfig config);

  /// Register a host. The handler must outlive the network.
  NodeId add_node(NetHandler& handler);

  [[nodiscard]] std::size_t node_count() const { return nodes_.size(); }

  /// Transmit `data` to every destination in `dests` that is reachable from
  /// `from` and alive. One bus occupancy regardless of destination count.
  /// Must be called from the sending node's shard (its own event handlers)
  /// or from the driver thread while the engine is idle.
  void multicast(NodeId from, std::span<const NodeId> dests,
                 std::vector<std::uint8_t> data);

  void unicast(NodeId from, NodeId to, std::vector<std::uint8_t> data);

  // --- topology -----------------------------------------------------------
  /// Split the nodes into LAN segments connected by a store-and-forward
  /// WAN backbone. Intra-segment traffic uses that segment's shared bus as
  /// before; inter-segment deliveries additionally traverse the backbone
  /// (the source segment's uplink queue + propagation) and the destination
  /// segment's bus. Every node must appear in exactly one segment.
  /// Orthogonal to partitions (cutting the WAN is expressed as a partition
  /// along segment lines). The default is a single segment (no backbone
  /// hops). Over an engine, also assigns segments to shards and sets the
  /// engine lookahead to the minimum cross-shard latency.
  void set_segments(const std::vector<std::vector<NodeId>>& segments,
                    WanConfig wan);
  [[nodiscard]] int segment_of(NodeId n) const;

  // --- partitions -------------------------------------------------------
  /// Split the network into the given reachability classes. Every node must
  /// appear in exactly one class. Bus queues restart per class.
  void set_partitions(const std::vector<std::vector<NodeId>>& classes);

  /// Restore full connectivity (all nodes in one class).
  void heal();

  [[nodiscard]] bool reachable(NodeId a, NodeId b) const;
  [[nodiscard]] int partition_of(NodeId n) const;

  // --- per-directed-link faults -----------------------------------------
  /// Install (or replace) the fault state of the directed link from->to.
  /// Driver-thread-only, like every topology mutation. Orthogonal to
  /// partitions: a delivery must pass both checks.
  void set_link_fault(NodeId from, NodeId to, LinkFault fault);
  /// Restore the directed link from->to to the default (healthy) state.
  void clear_link_fault(NodeId from, NodeId to);
  /// Restore every link. Cheap no-op when no faults are installed.
  void clear_link_faults();
  /// Current fault on from->to, or nullptr when the link is healthy.
  [[nodiscard]] const LinkFault* link_fault(NodeId from, NodeId to) const;
  [[nodiscard]] std::size_t link_fault_count() const {
    return link_faults_.size();
  }

  // --- crashes & restarts -----------------------------------------------
  /// Crash a node: it no longer sends or receives, until restart().
  void crash(NodeId n);
  [[nodiscard]] bool crashed(NodeId n) const;

  /// Resurrect a crashed node as a fresh incarnation bound to `handler`
  /// (the rebuilt host stack). The node's crash epoch advances, so packets
  /// that were still in flight toward the dead incarnation are silently
  /// dropped instead of being delivered to its successor; its receive-CPU
  /// queue restarts empty.
  void restart(NodeId n, NetHandler& handler);
  /// How many times `n` has been restarted (0 for the first incarnation).
  [[nodiscard]] std::uint32_t crash_epoch(NodeId n) const;

  /// Charge protocol-processing time to a node's CPU: subsequent packet
  /// deliveries at that node queue behind it. Models expensive per-message
  /// protocol work (e.g. membership operations) sharing the CPU with packet
  /// reception — the source of the paper's per-group recovery overhead.
  /// Called from the node's own shard (the transport runs there).
  void charge_cpu(NodeId n, Duration cost_us);

  /// Aggregated view over every shard's counters. Refreshed on each call;
  /// read it while the engine is idle.
  [[nodiscard]] const NetworkStats& stats() const;
  void reset_stats();

  /// Combined trace digest over all shards in shard-index order, folding in
  /// each shard's executed-event count. Same seed => same value at any
  /// PLWG_SIM_THREADS. Read while idle.
  [[nodiscard]] std::uint64_t trace_digest() const;

  /// Called by the transport when it puts a coalesced frame on the wire:
  /// `messages` sub-messages rode it, `piggybacked` of which were stability
  /// traffic (acks/heartbeats) that would otherwise have been standalone
  /// frames. The network itself counts frames; only the transport knows
  /// what is inside them. Counted on the sending node's shard.
  void note_frame(NodeId from, std::size_t messages, std::size_t piggybacked);

  [[nodiscard]] const NetworkConfig& config() const { return config_; }
  /// Shard-0 simulator — the full clock in the classic single-shard form,
  /// and a valid idle-time clock (== engine horizon) over an engine.
  [[nodiscard]] Simulator& simulator() { return *shards_[0].sim; }
  /// The event loop that runs this node's events; node-local timers must be
  /// scheduled here so they execute in the node's shard.
  [[nodiscard]] Simulator& simulator_for(NodeId n) {
    return *shards_[nodes_[n.value()].shard].sim;
  }
  [[nodiscard]] std::size_t shard_of(NodeId n) const {
    return nodes_[n.value()].shard;
  }
  [[nodiscard]] std::size_t num_shards() const { return shards_.size(); }

 private:
  struct NodeState {
    NetHandler* handler = nullptr;
    int partition = 0;
    int segment = 0;
    std::size_t shard = 0;    // owning engine shard (== segment mod S)
    bool crashed = false;
    std::uint32_t epoch = 0;  // bumped by restart(); stale packets die
    Time cpu_free_at = 0;     // receiver CPU queue (owned by `shard`)
  };

  /// Everything a shard mutates while running a window. One per engine
  /// shard; exactly one in the classic form. No atomics: each instance is
  /// touched by at most one thread per window, and only aggregated (stats,
  /// digest) from the driver thread while idle.
  struct ShardCtx {
    Simulator* sim = nullptr;
    Rng rng{0};
    NetworkStats stats;
    TraceDigest digest;
    std::uint64_t next_packet_id = 0;  // per-shard minting, no global counter
    // Bus queue heads per (partition class, segment) for segments owned by
    // this shard; WAN uplink heads per (partition class, source segment).
    std::unordered_map<std::int64_t, Time> bus_free_at;
    std::unordered_map<std::int64_t, Time> uplink_free_at;
  };

  [[nodiscard]] ShardCtx& ctx_of(NodeId n) {
    return shards_[nodes_[n.value()].shard];
  }

  /// Return a corrupted copy of `data`: a truncated prefix or a few random
  /// bit flips, chosen by the shard's fault RNG.
  [[nodiscard]] static std::vector<std::uint8_t> corrupt_copy(
      Rng& rng, const std::vector<std::uint8_t>& data);

  [[nodiscard]] Duration transmission_time(std::size_t payload_bytes,
                                           double bandwidth_bps) const;
  void deliver(NodeId from, NodeId to,
               std::shared_ptr<const std::vector<std::uint8_t>> data,
               Time arrival);
  /// Deliveries coming off the backbone onto `segment`'s bus — runs in the
  /// segment's shard.
  void segment_arrival(NodeId from, int partition, int segment,
                       Duration lan_tx,
                       const std::shared_ptr<const std::vector<std::uint8_t>>&
                           shared,
                       const std::vector<NodeId>& nodes);
  /// Queue key: partition class x LAN segment.
  [[nodiscard]] static std::int64_t bus_key(int partition, int segment) {
    return (static_cast<std::int64_t>(partition) << 20) | segment;
  }
  /// Occupies a bus owned by `ctx` from `earliest`; returns transmission
  /// end.
  static Time occupy_bus(ShardCtx& ctx, std::int64_t key, Time earliest,
                         Duration tx_time);
  [[nodiscard]] std::size_t shard_of_segment(int segment) const {
    return static_cast<std::size_t>(segment) % shards_.size();
  }
  /// Topology mutations are only legal while no window is running.
  void assert_idle(const char* what) const;
  void clear_queues();

  /// Directed-link key for link_faults_.
  [[nodiscard]] static std::uint64_t link_key(NodeId from, NodeId to) {
    return (static_cast<std::uint64_t>(from.value()) << 32) | to.value();
  }

  Engine* engine_ = nullptr;  // null in the classic single-shard form
  NetworkConfig config_;
  WanConfig wan_;
  bool multi_segment_ = false;
  int next_partition_token_ = 1;
  /// Directed-link fault overrides. Mutated only from the driver thread
  /// while the engine is idle; read (const) from shard threads mid-window,
  /// which is safe for the same reason partition tokens are.
  std::unordered_map<std::uint64_t, LinkFault> link_faults_;
  std::vector<NodeState> nodes_;
  std::vector<ShardCtx> shards_;
  mutable NetworkStats agg_stats_;  // refreshed by stats()
};

}  // namespace plwg::sim
