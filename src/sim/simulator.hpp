// Deterministic discrete-event simulator.
//
// All protocol layers run as callbacks scheduled on this event loop. Events
// with equal timestamps fire in scheduling order (a monotonic sequence number
// breaks ties), which makes every experiment bit-for-bit reproducible.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_map>
#include <vector>

#include "util/types.hpp"

namespace plwg::sim {

/// Identifies a scheduled event so it can be cancelled.
using TimerId = std::uint64_t;

class Simulator {
 public:
  Simulator() = default;
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  [[nodiscard]] Time now() const { return now_; }

  /// Schedule `fn` at absolute simulated time `t` (>= now).
  TimerId schedule_at(Time t, std::function<void()> fn);

  /// Schedule `fn` after `delay` microseconds.
  TimerId schedule_after(Duration delay, std::function<void()> fn);

  /// Cancel a pending event. Cancelling an already-fired or unknown id is a
  /// no-op (protocols routinely cancel timers that may have fired).
  void cancel(TimerId id);

  /// Run the earliest pending event. Returns false if the queue is empty.
  bool step();

  /// Run until the queue drains or `max_events` fire. Returns events run.
  std::size_t run(std::size_t max_events = kDefaultMaxEvents);

  /// Run all events with time <= `t`, then advance the clock to `t`.
  /// Returns the number of events run.
  std::size_t run_until(Time t, std::size_t max_events = kDefaultMaxEvents);

  [[nodiscard]] std::size_t pending_events() const;
  [[nodiscard]] std::size_t total_events_run() const { return events_run_; }

  /// Guard against accidental infinite event loops in tests/benches.
  static constexpr std::size_t kDefaultMaxEvents = 100'000'000;

 private:
  struct Event {
    Time time;
    std::uint64_t seq;
    TimerId id;
    // Ordered for a min-heap via std::greater.
    friend bool operator>(const Event& a, const Event& b) {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;
    }
  };

  bool fire_next();

  Time now_ = 0;
  std::uint64_t next_seq_ = 0;
  TimerId next_id_ = 1;
  std::size_t events_run_ = 0;
  std::priority_queue<Event, std::vector<Event>, std::greater<>> queue_;
  // Callbacks live here; cancelled ids are simply erased and skipped when
  // their queue entry surfaces.
  std::unordered_map<TimerId, std::function<void()>> callbacks_;
};

}  // namespace plwg::sim
