// Deterministic discrete-event simulator.
//
// All protocol layers run as callbacks scheduled on this event loop. Events
// with equal timestamps fire in scheduling order (a monotonic sequence number
// breaks ties), which makes every experiment bit-for-bit reproducible.
//
// Callbacks live in a slab arena indexed by the low half of the TimerId, so
// schedule/cancel/fire are O(1) array operations with no hashing; the high
// half carries a per-slot generation counter so a stale id (already fired or
// cancelled, slot since reused) can never reach the wrong callback. Cancelled
// entries are deleted lazily from the heap and compacted in bulk once they
// outnumber the live ones.
#pragma once

#include <algorithm>
#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include "util/assert.hpp"
#include "util/function.hpp"
#include "util/types.hpp"

namespace plwg::sim {

/// Identifies a scheduled event so it can be cancelled.
/// Layout: (slot generation << 32) | slot index. Generations start at 1, so
/// a zero-initialized TimerId is never valid and cancel(0) is a no-op.
using TimerId = std::uint64_t;

class Simulator {
 public:
  Simulator() = default;
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  [[nodiscard]] Time now() const { return now_; }

  /// Schedule `fn` at absolute simulated time `t` (>= now). Accepts any
  /// void() callable; it is constructed directly into its slab slot (no
  /// intermediate type-erased move), which is why this is a template.
  template <class F>
  TimerId schedule_at(Time t, F&& fn) {
    PLWG_ASSERT_MSG(t >= now_, "scheduling into the past");
    const std::uint32_t index = acquire_slot();
    Slot& s = slot(index);
    s.fn = std::forward<F>(fn);
    PLWG_ASSERT(static_cast<bool>(s.fn));
    s.live = true;
    ++live_count_;
    const TimerId id = (static_cast<TimerId>(s.generation) << 32) | index;
    push_event(t, id);
    return id;
  }

  /// Schedule `fn` after `delay` microseconds.
  template <class F>
  TimerId schedule_after(Duration delay, F&& fn) {
    PLWG_ASSERT_MSG(delay >= 0, "negative delay");
    return schedule_at(now_ + delay, std::forward<F>(fn));
  }

  /// Cancel a pending event. Cancelling an already-fired or unknown id is a
  /// no-op (protocols routinely cancel timers that may have fired).
  void cancel(TimerId id);

  /// Run the earliest pending event. Returns false if the queue is empty.
  bool step();

  /// Run until the queue drains or `max_events` fire. Returns events run.
  std::size_t run(std::size_t max_events = kDefaultMaxEvents);

  /// Run all events with time <= `t`, then advance the clock to `t`.
  /// Returns the number of events run.
  std::size_t run_until(Time t, std::size_t max_events = kDefaultMaxEvents);

  /// True while an event callback is running. Layers that distinguish
  /// "called from inside the event loop" from "called directly by test or
  /// bench driver code" (e.g. the transport's end-of-round frame coalescing)
  /// key off this instead of guessing from the clock.
  [[nodiscard]] bool in_event() const { return in_event_; }

  /// Live (scheduled, not yet fired or cancelled) events.
  [[nodiscard]] std::size_t pending_events() const { return live_count_; }
  /// Heap entries including lazily-deleted ones — bounded at twice the live
  /// count (plus a small floor) by compaction; exposed so tests can assert
  /// that cancellation does not grow the queue without bound.
  [[nodiscard]] std::size_t queued_events() const { return heap_.size(); }
  [[nodiscard]] std::size_t total_events_run() const { return events_run_; }

  /// Guard against accidental infinite event loops in tests/benches.
  static constexpr std::size_t kDefaultMaxEvents = 100'000'000;

 private:
  // (time, seq) packed into one 128-bit key: time is asserted non-negative
  // (schedule_at requires t >= now_ >= 0), so the unsigned comparison of
  // (time << 64) | seq orders exactly like the original
  // time-then-sequence tie-break — but as a single branchless compare in
  // the heap's hot sift loops.
  using EventKey = unsigned __int128;
  static constexpr EventKey event_key(Time t, std::uint64_t seq) {
    return (static_cast<EventKey>(static_cast<std::uint64_t>(t)) << 64) | seq;
  }
  static constexpr Time event_time(EventKey key) {
    return static_cast<Time>(static_cast<std::uint64_t>(key >> 64));
  }
  struct Event {
    EventKey key;
    TimerId id;
  };
  // Struct comparator (not a function pointer) so the heap's sift loops
  // inline the compare.
  struct EventAfter {
    bool operator()(const Event& a, const Event& b) const {
      return a.key > b.key;
    }
  };

  struct Slot {
    UniqueFunction fn;
    std::uint32_t generation = 1;
    std::uint32_t next_free = kNilSlot;
    bool live = false;
  };
  static constexpr std::uint32_t kNilSlot = 0xFFFF'FFFF;
  // Slots live in fixed-size chunks so growing the arena never moves an
  // existing slot (a vector would relocate every stored callable on
  // growth); 256 slots x 64 bytes = one 16 KiB chunk per allocation.
  static constexpr std::uint32_t kChunkShift = 8;
  static constexpr std::uint32_t kChunkSize = 1u << kChunkShift;
  // Don't bother compacting tiny heaps.
  static constexpr std::size_t kCompactFloor = 64;

  [[nodiscard]] Slot& slot(std::uint32_t index) {
    return chunks_[index >> kChunkShift][index & (kChunkSize - 1)];
  }
  [[nodiscard]] const Slot& slot(std::uint32_t index) const {
    return chunks_[index >> kChunkShift][index & (kChunkSize - 1)];
  }
  // Defined here (not in the .cpp) so the schedule_at template inlines the
  // whole schedule path: free-list pop + heap append with no calls.
  std::uint32_t acquire_slot() {
    if (free_head_ != kNilSlot) {
      const std::uint32_t index = free_head_;
      free_head_ = slot(index).next_free;
      return index;
    }
    return acquire_slot_slow();
  }
  std::uint32_t acquire_slot_slow();
  void release_slot(std::uint32_t index);
  [[nodiscard]] bool id_live(TimerId id) const {
    const auto index = static_cast<std::uint32_t>(id);
    const Slot& s = slot(index);
    return s.live && s.generation == static_cast<std::uint32_t>(id >> 32);
  }
  void push_event(Time t, TimerId id) {
    heap_.push_back(Event{event_key(t, next_seq_++), id});
    std::push_heap(heap_.begin(), heap_.end(), EventAfter{});
  }
  void pop_heap_top();
  void compact_if_mostly_dead();
  bool fire_next();

  Time now_ = 0;
  bool in_event_ = false;
  std::uint64_t next_seq_ = 0;
  std::size_t events_run_ = 0;
  std::size_t live_count_ = 0;
  std::size_t dead_in_heap_ = 0;
  std::vector<Event> heap_;  // min-heap on Event::key via EventAfter
  std::vector<std::unique_ptr<Slot[]>> chunks_;  // slab arena
  std::uint32_t num_slots_ = 0;  // high-water mark of allocated slot indices
  std::uint32_t free_head_ = kNilSlot;
};

}  // namespace plwg::sim
