#include "sim/engine.hpp"

#include <cstdlib>

#include "util/assert.hpp"
#include "util/log.hpp"

namespace plwg::sim {

namespace {

thread_local int tl_current_shard = -1;
thread_local const Simulator* tl_current_sim = nullptr;

std::size_t threads_from_env() {
  const char* value = std::getenv("PLWG_SIM_THREADS");
  if (value == nullptr || *value == '\0') return 1;
  const long parsed = std::strtol(value, nullptr, 10);
  return parsed < 1 ? 1 : static_cast<std::size_t>(parsed);
}

/// RAII guard marking the calling thread as executing shard `s`.
struct ShardScope {
  ShardScope(int s, const Simulator* sim) {
    tl_current_shard = s;
    tl_current_sim = sim;
  }
  ~ShardScope() {
    tl_current_shard = -1;
    tl_current_sim = nullptr;
  }
};

}  // namespace

Engine::Engine(std::size_t num_shards) : Engine(num_shards, Config{}) {}

Engine::Engine(std::size_t num_shards, Config config) {
  PLWG_ASSERT(num_shards >= 1);
  shards_.reserve(num_shards);
  for (std::size_t s = 0; s < num_shards; ++s) {
    shards_.push_back(std::make_unique<Simulator>());
  }
  mail_.resize(num_shards * num_shards);
  const std::size_t requested =
      config.threads == 0 ? threads_from_env() : config.threads;
  threads_ = std::min(requested, num_shards);
  if (threads_ < 1) threads_ = 1;
  if (threads_ > 1) {
    workers_.reserve(threads_);
    for (std::size_t w = 0; w < threads_; ++w) {
      workers_.emplace_back([this, w] { worker_main(w); });
    }
    PLWG_INFO("engine", "sharded engine: ", num_shards, " shards on ",
              threads_, " threads");
  }
}

Engine::~Engine() {
  if (!workers_.empty()) {
    {
      std::lock_guard<std::mutex> lock(pool_mutex_);
      pool_stop_ = true;
    }
    pool_work_.notify_all();
    for (std::thread& t : workers_) t.join();
  }
}

void Engine::set_lookahead(Duration us) {
  PLWG_ASSERT_MSG(!running(), "lookahead change while the engine is running");
  PLWG_ASSERT(us >= 0);
  lookahead_ = us;
}

void Engine::add_barrier_hook(std::function<void()> hook) {
  PLWG_ASSERT(!running());
  barrier_hooks_.push_back(std::move(hook));
}

int Engine::current_shard() { return tl_current_shard; }

Time Engine::log_now() const {
  if (tl_current_sim != nullptr) return tl_current_sim->now();
  return now();
}

void Engine::post(std::size_t dst, Time t, UniqueFunction fn) {
  PLWG_ASSERT(dst < shards_.size());
  const int src = tl_current_shard;
  if (src < 0) {
    // Driver thread, engine idle: inject directly.
    PLWG_ASSERT_MSG(!running(), "cross-shard post from a non-shard thread "
                                "while the engine is running");
    shards_[dst]->schedule_at(t, std::move(fn));
    return;
  }
  mail_[static_cast<std::size_t>(src) * shards_.size() + dst].push_back(
      Posted{t, std::move(fn)});
}

void Engine::drain_mailboxes() {
  // Fixed (source, destination, post order) injection order — part of the
  // determinism contract. Injections are timestamped at or after the new
  // horizon (the conservative-lookahead guarantee), asserted here.
  const Time horizon = now();
  for (std::vector<Posted>& cell : mail_) {
    for (Posted& p : cell) {
      PLWG_ASSERT_MSG(p.t >= horizon,
                      "cross-shard event inside the closed window "
                      "(lookahead too large for the topology)");
    }
  }
  for (std::size_t src = 0; src < shards_.size(); ++src) {
    for (std::size_t dst = 0; dst < shards_.size(); ++dst) {
      std::vector<Posted>& cell = mail_[src * shards_.size() + dst];
      for (Posted& p : cell) {
        shards_[dst]->schedule_at(p.t, std::move(p.fn));
      }
      cell.clear();
    }
  }
}

std::size_t Engine::run_window_sequential(Time end) {
  std::size_t events = 0;
  for (std::size_t s = 0; s < shards_.size(); ++s) {
    ShardScope scope(static_cast<int>(s), shards_[s].get());
    events += shards_[s]->run_until(end);
  }
  return events;
}

void Engine::run_shard_range(std::size_t worker, Time end,
                             std::size_t& events) {
  for (std::size_t s = worker; s < shards_.size(); s += threads_) {
    ShardScope scope(static_cast<int>(s), shards_[s].get());
    events += shards_[s]->run_until(end);
  }
}

void Engine::worker_main(std::size_t w) {
  std::uint64_t seen = 0;
  for (;;) {
    Time end = 0;
    {
      std::unique_lock<std::mutex> lock(pool_mutex_);
      pool_work_.wait(lock,
                      [&] { return pool_stop_ || pool_generation_ != seen; });
      if (pool_stop_) return;
      seen = pool_generation_;
      end = pool_window_end_;
    }
    std::size_t events = 0;
    run_shard_range(w, end, events);
    {
      std::lock_guard<std::mutex> lock(pool_mutex_);
      pool_events_ += events;
      if (--pool_pending_ == 0) pool_done_.notify_one();
    }
  }
}

std::size_t Engine::run_window_parallel(Time end) {
  std::size_t events = 0;
  {
    std::lock_guard<std::mutex> lock(pool_mutex_);
    pool_window_end_ = end;
    pool_pending_ = threads_;
    pool_events_ = 0;
    ++pool_generation_;
  }
  pool_work_.notify_all();
  {
    std::unique_lock<std::mutex> lock(pool_mutex_);
    pool_done_.wait(lock, [&] { return pool_pending_ == 0; });
    events = pool_events_;
  }
  return events;
}

std::size_t Engine::run_until(Time target) {
  PLWG_ASSERT_MSG(!running(), "re-entrant Engine::run_until");
  if (target < now()) target = now();
  PLWG_ASSERT_MSG(shards_.size() == 1 || lookahead_ > 0,
                  "multi-shard engine needs a positive lookahead "
                  "(set by sim::Network::set_segments)");
  running_.store(true, std::memory_order_relaxed);
  std::size_t events = 0;
  bool ran_any_window = false;
  while (now() < target || !ran_any_window) {
    Time window_end = target;
    if (shards_.size() > 1) {
      window_end = std::min(target, now() + lookahead_);
    }
    events += (threads_ > 1 && shards_.size() > 1)
                  ? run_window_parallel(window_end)
                  : run_window_sequential(window_end);
    horizon_.store(window_end, std::memory_order_relaxed);
    drain_mailboxes();
    for (const auto& hook : barrier_hooks_) hook();
    ran_any_window = true;
    if (window_end >= target) break;
  }
  running_.store(false, std::memory_order_relaxed);
  return events;
}

}  // namespace plwg::sim
