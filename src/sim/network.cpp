#include "sim/network.hpp"

#include <algorithm>
#include <cstdio>
#include <memory>

#include "util/assert.hpp"
#include "util/log.hpp"

namespace plwg::sim {

std::string NetworkStats::debug_dump() const {
  char ratio[32];
  std::snprintf(ratio, sizeof(ratio), "%.2f", amortization_ratio());
  std::string out = "net{frames=" + std::to_string(frames_sent);
  out += " msgs=" + std::to_string(messages_sent);
  out += " amortization=" + std::string(ratio) + "x";
  out += " piggybacked_acks=" + std::to_string(piggybacked_acks);
  out += " deliveries=" + std::to_string(deliveries);
  out += " bytes_on_wire=" + std::to_string(bytes_on_wire);
  out += " drops=" + std::to_string(drops);
  out += " corruptions=" + std::to_string(corruptions);
  out += " stale_epoch_drops=" + std::to_string(stale_epoch_drops);
  out += " bus_busy_us=" + std::to_string(bus_busy_us) + "}";
  return out;
}

Network::Network(Simulator& simulator, NetworkConfig config)
    : sim_(simulator), config_(config), rng_(config.seed) {
  PLWG_ASSERT(config_.bandwidth_bps > 0);
}

NodeId Network::add_node(NetHandler& handler) {
  const NodeId id{static_cast<std::uint32_t>(nodes_.size())};
  NodeState state;
  state.handler = &handler;
  nodes_.push_back(state);
  return id;
}

Duration Network::transmission_time(std::size_t payload_bytes,
                                    double bandwidth_bps) const {
  const double bits =
      static_cast<double>(payload_bytes + config_.header_bytes) * 8.0;
  const double seconds = bits / bandwidth_bps;
  return static_cast<Duration>(seconds * 1e6) + 1;  // at least 1us
}

Time Network::occupy_bus(std::int64_t key, Time earliest, Duration tx_time) {
  Time& bus_free = bus_free_at_[key];
  const Time tx_start = std::max(earliest, bus_free);
  const Time tx_end = tx_start + tx_time;
  stats_.bus_busy_us += tx_time;
  bus_free = tx_end;
  return tx_end;
}

void Network::multicast(NodeId from, std::span<const NodeId> dests,
                        std::vector<std::uint8_t> data) {
  PLWG_ASSERT(from.valid() && from.value() < nodes_.size());
  NodeState& sender = nodes_[from.value()];
  if (sender.crashed) return;

  stats_.frames_sent++;
  stats_.bytes_sent += data.size();
  stats_.bytes_on_wire += data.size() + config_.header_bytes;

  // Shared-bus occupancy on the sender's LAN.
  const Duration lan_tx = transmission_time(data.size(), config_.bandwidth_bps);
  Time tx_end = sim_.now();
  if (config_.shared_bus) {
    tx_end = occupy_bus(bus_key(sender.partition, sender.segment), sim_.now(),
                        lan_tx);
  }

  auto shared = std::make_shared<const std::vector<std::uint8_t>>(
      std::move(data));

  // Local deliveries (and loopback). A packet that must leave the LAN is
  // forwarded once over the backbone and re-transmitted on each destination
  // segment's bus (store-and-forward). Each queue is occupied by an event
  // *at the time the packet reaches it* — booking future slots eagerly
  // would let far-away traffic starve earlier local traffic.
  std::unordered_map<int, std::vector<NodeId>> remote_dests;
  for (NodeId to : dests) {
    PLWG_ASSERT(to.valid() && to.value() < nodes_.size());
    if (to == from) {
      // Loopback: no bus, just local processing cost.
      deliver(from, to, shared, sim_.now());
      continue;
    }
    const NodeState& receiver = nodes_[to.value()];
    if (receiver.crashed || receiver.partition != sender.partition) continue;
    if (config_.drop_probability > 0 &&
        rng_.next_bool(config_.drop_probability)) {
      stats_.drops++;
      continue;
    }
    if (receiver.segment == sender.segment || !multi_segment_) {
      Time arrival = tx_end + config_.propagation_delay_us;
      if (config_.jitter_us > 0) {
        arrival += static_cast<Duration>(rng_.next_below(
            static_cast<std::uint64_t>(config_.jitter_us) + 1));
      }
      auto payload = shared;
      if (config_.corrupt_probability > 0 &&
          rng_.next_bool(config_.corrupt_probability)) {
        stats_.corruptions++;
        payload = std::make_shared<const std::vector<std::uint8_t>>(
            corrupt_copy(*shared));
      }
      deliver(from, to, std::move(payload), arrival);
    } else {
      remote_dests[receiver.segment].push_back(to);
    }
  }
  if (remote_dests.empty()) return;

  // Backbone hop: occupy the WAN queue when the packet leaves the source
  // bus, then each destination LAN's bus when it comes off the backbone.
  const std::size_t bytes = shared->size();
  const int partition = sender.partition;
  sim_.schedule_at(tx_end, [this, from, shared, bytes, partition, lan_tx,
                            remote_dests = std::move(remote_dests)] {
    Time& wan_free = wan_free_at_[partition];
    const Time wan_start = std::max(sim_.now(), wan_free);
    const Time wan_end =
        wan_start + transmission_time(bytes, wan_.bandwidth_bps);
    wan_free = wan_end;
    const Time backbone_out = wan_end + wan_.propagation_delay_us;
    for (const auto& [segment, nodes] : remote_dests) {
      sim_.schedule_at(
          backbone_out, [this, from, shared, partition, segment, lan_tx,
                         nodes] {
            const Time seg_done =
                config_.shared_bus
                    ? occupy_bus(bus_key(partition, segment), sim_.now(),
                                 lan_tx)
                    : sim_.now();
            for (NodeId to : nodes) {
              Time arrival = seg_done + config_.propagation_delay_us;
              if (config_.jitter_us > 0) {
                arrival += static_cast<Duration>(rng_.next_below(
                    static_cast<std::uint64_t>(config_.jitter_us) + 1));
              }
              auto payload = shared;
              if (config_.corrupt_probability > 0 &&
                  rng_.next_bool(config_.corrupt_probability)) {
                stats_.corruptions++;
                payload = std::make_shared<const std::vector<std::uint8_t>>(
                    corrupt_copy(*shared));
              }
              deliver(from, to, std::move(payload), arrival);
            }
          });
    }
  });
}

void Network::set_segments(const std::vector<std::vector<NodeId>>& segments,
                           WanConfig wan) {
  std::vector<int> assignment(nodes_.size(), -1);
  int index = 0;
  for (const auto& segment : segments) {
    for (NodeId n : segment) {
      PLWG_ASSERT(n.valid() && n.value() < nodes_.size());
      PLWG_ASSERT_MSG(assignment[n.value()] == -1,
                      "node listed in two segments");
      assignment[n.value()] = index;
    }
    ++index;
  }
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    PLWG_ASSERT_MSG(assignment[i] != -1,
                    "node missing from segment specification");
    nodes_[i].segment = assignment[i];
  }
  wan_ = wan;
  multi_segment_ = segments.size() > 1;
  bus_free_at_.clear();
  wan_free_at_.clear();
  PLWG_INFO("net", "topology: ", segments.size(), " LAN segments");
}

int Network::segment_of(NodeId n) const {
  PLWG_ASSERT(n.value() < nodes_.size());
  return nodes_[n.value()].segment;
}

void Network::unicast(NodeId from, NodeId to, std::vector<std::uint8_t> data) {
  const NodeId dests[] = {to};
  multicast(from, dests, std::move(data));
}

void Network::deliver(NodeId from, NodeId to,
                      std::shared_ptr<const std::vector<std::uint8_t>> data,
                      Time arrival) {
  // The packet is addressed to the destination's *current incarnation*; if
  // the node crashes and restarts while the packet is in flight, the new
  // incarnation must not receive it.
  const std::uint32_t epoch = nodes_[to.value()].epoch;
  // Receiver CPU is a FIFO queue: processing starts when both the packet
  // has arrived and the CPU is free, and takes node_process_cost_us. The
  // CPU slot is claimed *at arrival* — claiming it at send time would let a
  // slow (e.g. cross-WAN) packet reserve the CPU into the future and starve
  // packets that arrive earlier.
  sim_.schedule_at(arrival, [this, from, to, epoch,
                             data = std::move(data)]() mutable {
    NodeState& receiver = nodes_[to.value()];
    if (receiver.epoch != epoch) {
      stats_.stale_epoch_drops++;
      return;
    }
    if (receiver.crashed) return;  // dead incarnation: no CPU to occupy
    const Time start = std::max(sim_.now(), receiver.cpu_free_at);
    const Time done = start + config_.node_process_cost_us;
    receiver.cpu_free_at = done;
    // The buffer moves (not ref-bumps) through both hops: one multicast =
    // one encode = one shared buffer, refcounted once per destination.
    sim_.schedule_at(done, [this, from, to, epoch, data = std::move(data)] {
      NodeState& r = nodes_[to.value()];
      if (r.epoch != epoch) {
        stats_.stale_epoch_drops++;
        return;
      }
      if (r.crashed) return;
      stats_.deliveries++;
      r.handler->on_packet(from, std::span<const std::uint8_t>(*data));
    });
  });
}

void Network::set_partitions(const std::vector<std::vector<NodeId>>& classes) {
  std::vector<int> assignment(nodes_.size(), -1);
  for (const auto& cls : classes) {
    const int token = next_partition_token_++;
    for (NodeId n : cls) {
      PLWG_ASSERT(n.valid() && n.value() < nodes_.size());
      PLWG_ASSERT_MSG(assignment[n.value()] == -1,
                      "node listed in two partition classes");
      assignment[n.value()] = token;
    }
  }
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    PLWG_ASSERT_MSG(assignment[i] != -1,
                    "node missing from partition specification");
    nodes_[i].partition = assignment[i];
  }
  // New reachability classes restart the queues.
  bus_free_at_.clear();
  wan_free_at_.clear();
  PLWG_INFO("net", "network partitioned into ", classes.size(), " classes");
}

void Network::heal() {
  const int token = next_partition_token_++;
  for (auto& node : nodes_) node.partition = token;
  bus_free_at_.clear();
  wan_free_at_.clear();
  PLWG_INFO("net", "network healed");
}

bool Network::reachable(NodeId a, NodeId b) const {
  PLWG_ASSERT(a.value() < nodes_.size() && b.value() < nodes_.size());
  const NodeState& na = nodes_[a.value()];
  const NodeState& nb = nodes_[b.value()];
  return !na.crashed && !nb.crashed && na.partition == nb.partition;
}

int Network::partition_of(NodeId n) const {
  PLWG_ASSERT(n.value() < nodes_.size());
  return nodes_[n.value()].partition;
}

void Network::crash(NodeId n) {
  PLWG_ASSERT(n.value() < nodes_.size());
  nodes_[n.value()].crashed = true;
  PLWG_INFO("net", "node ", n, " crashed");
}

bool Network::crashed(NodeId n) const {
  PLWG_ASSERT(n.value() < nodes_.size());
  return nodes_[n.value()].crashed;
}

void Network::restart(NodeId n, NetHandler& handler) {
  PLWG_ASSERT(n.value() < nodes_.size());
  NodeState& node = nodes_[n.value()];
  PLWG_ASSERT_MSG(node.crashed, "restart of a node that is not crashed");
  node.crashed = false;
  node.epoch++;
  node.handler = &handler;
  node.cpu_free_at = sim_.now();
  PLWG_INFO("net", "node ", n, " restarted (epoch ", node.epoch, ")");
}

std::uint32_t Network::crash_epoch(NodeId n) const {
  PLWG_ASSERT(n.value() < nodes_.size());
  return nodes_[n.value()].epoch;
}

std::vector<std::uint8_t> Network::corrupt_copy(
    const std::vector<std::uint8_t>& data) {
  std::vector<std::uint8_t> out = data;
  if (out.empty()) return out;
  if (rng_.next_bool(0.5)) {
    // Truncation (possibly to an empty packet).
    out.resize(rng_.next_below(out.size()));
  } else {
    const std::size_t flips = 1 + rng_.next_below(4);
    for (std::size_t i = 0; i < flips; ++i) {
      out[rng_.next_below(out.size())] ^=
          static_cast<std::uint8_t>(1u << rng_.next_below(8));
    }
  }
  return out;
}

void Network::charge_cpu(NodeId n, Duration cost_us) {
  PLWG_ASSERT(n.value() < nodes_.size());
  PLWG_ASSERT(cost_us >= 0);
  NodeState& node = nodes_[n.value()];
  node.cpu_free_at = std::max(sim_.now(), node.cpu_free_at) + cost_us;
}

}  // namespace plwg::sim
