#include "sim/network.hpp"

#include <algorithm>
#include <cstdio>
#include <map>
#include <memory>

#include "util/assert.hpp"
#include "util/log.hpp"

namespace plwg::sim {

void NetworkStats::accumulate(const NetworkStats& other) {
  frames_sent += other.frames_sent;
  messages_sent += other.messages_sent;
  piggybacked_acks += other.piggybacked_acks;
  deliveries += other.deliveries;
  bytes_sent += other.bytes_sent;
  bytes_on_wire += other.bytes_on_wire;
  drops += other.drops;
  link_blocked += other.link_blocked;
  corruptions += other.corruptions;
  stale_epoch_drops += other.stale_epoch_drops;
  bus_busy_us += other.bus_busy_us;
}

std::string NetworkStats::debug_dump() const {
  char ratio[32];
  std::snprintf(ratio, sizeof(ratio), "%.2f", amortization_ratio());
  std::string out = "net{frames=" + std::to_string(frames_sent);
  out += " msgs=" + std::to_string(messages_sent);
  out += " amortization=" + std::string(ratio) + "x";
  out += " piggybacked_acks=" + std::to_string(piggybacked_acks);
  out += " deliveries=" + std::to_string(deliveries);
  out += " bytes_on_wire=" + std::to_string(bytes_on_wire);
  out += " drops=" + std::to_string(drops);
  out += " link_blocked=" + std::to_string(link_blocked);
  out += " corruptions=" + std::to_string(corruptions);
  out += " stale_epoch_drops=" + std::to_string(stale_epoch_drops);
  out += " bus_busy_us=" + std::to_string(bus_busy_us) + "}";
  return out;
}

Network::Network(Simulator& simulator, NetworkConfig config)
    : config_(config) {
  PLWG_ASSERT(config_.bandwidth_bps > 0);
  shards_.resize(1);
  shards_[0].sim = &simulator;
  shards_[0].rng = Rng(config_.seed);
}

Network::Network(Engine& engine, NetworkConfig config)
    : engine_(&engine), config_(config) {
  PLWG_ASSERT(config_.bandwidth_bps > 0);
  shards_.resize(engine.num_shards());
  // Per-shard PRNG streams: shard 0 keeps the classic stream (so a 1-shard
  // engine reproduces the classic form bit for bit); shard i>0 gets an
  // independent splitmix64-derived stream. Streams depend only on the seed
  // and the shard count — never on the thread count.
  std::uint64_t stream = config_.seed;
  for (std::size_t s = 0; s < shards_.size(); ++s) {
    shards_[s].sim = &engine.shard(s);
    shards_[s].rng = Rng(s == 0 ? config_.seed : splitmix64(stream));
  }
}

void Network::assert_idle(const char* what) const {
  (void)what;
  PLWG_ASSERT_MSG(engine_ == nullptr || !engine_->running(),
                  "topology mutation while the engine is running");
}

NodeId Network::add_node(NetHandler& handler) {
  assert_idle("add_node");
  const NodeId id{static_cast<std::uint32_t>(nodes_.size())};
  NodeState state;
  state.handler = &handler;
  nodes_.push_back(state);
  return id;
}

Duration Network::transmission_time(std::size_t payload_bytes,
                                    double bandwidth_bps) const {
  const double bits =
      static_cast<double>(payload_bytes + config_.header_bytes) * 8.0;
  const double seconds = bits / bandwidth_bps;
  return static_cast<Duration>(seconds * 1e6) + 1;  // at least 1us
}

Time Network::occupy_bus(ShardCtx& ctx, std::int64_t key, Time earliest,
                         Duration tx_time) {
  Time& bus_free = ctx.bus_free_at[key];
  const Time tx_start = std::max(earliest, bus_free);
  const Time tx_end = tx_start + tx_time;
  ctx.stats.bus_busy_us += tx_time;
  bus_free = tx_end;
  return tx_end;
}

void Network::multicast(NodeId from, std::span<const NodeId> dests,
                        std::vector<std::uint8_t> data) {
  PLWG_ASSERT(from.valid() && from.value() < nodes_.size());
  NodeState& sender = nodes_[from.value()];
  if (sender.crashed) return;
  // All sender-side queue/RNG/stat state lives in the sender's shard; this
  // call runs either inside that shard's events or while the engine is
  // idle, so no other thread can touch it.
  ShardCtx& ctx = shards_[sender.shard];
  Simulator& sim = *ctx.sim;

  ctx.stats.frames_sent++;
  ctx.stats.bytes_sent += data.size();
  ctx.stats.bytes_on_wire += data.size() + config_.header_bytes;
  // Frame identity is minted per shard (high bits = shard) — a global
  // counter would be the one cross-shard write on every send path.
  const std::uint64_t packet_id =
      (static_cast<std::uint64_t>(sender.shard) << 48) | ctx.next_packet_id++;
  ctx.digest.fold_u64(static_cast<std::uint64_t>(sim.now()));
  ctx.digest.fold_u64(packet_id);
  ctx.digest.fold_u64(data.size());

  // Shared-bus occupancy on the sender's LAN.
  const Duration lan_tx = transmission_time(data.size(), config_.bandwidth_bps);
  Time tx_end = sim.now();
  if (config_.shared_bus) {
    tx_end = occupy_bus(ctx, bus_key(sender.partition, sender.segment),
                        sim.now(), lan_tx);
  }

  auto shared = std::make_shared<const std::vector<std::uint8_t>>(
      std::move(data));

  // Local deliveries (and loopback). A packet that must leave the LAN is
  // forwarded once over the backbone and re-transmitted on each destination
  // segment's bus (store-and-forward). Each queue is occupied by an event
  // *at the time the packet reaches it* — booking future slots eagerly
  // would let far-away traffic starve earlier local traffic. std::map keeps
  // destination segments in a deterministic order.
  std::map<int, std::vector<NodeId>> remote_dests;
  for (NodeId to : dests) {
    PLWG_ASSERT(to.valid() && to.value() < nodes_.size());
    if (to == from) {
      // Loopback: no bus, just local processing cost.
      deliver(from, to, shared, sim.now());
      continue;
    }
    const NodeState& receiver = nodes_[to.value()];
    if (receiver.crashed || receiver.partition != sender.partition) continue;
    // Directed-link fault: the one-way check that partitions cannot express.
    const LinkFault* lf = link_fault(from, to);
    if (lf != nullptr && lf->blocked) {
      ctx.stats.link_blocked++;
      continue;
    }
    const double drop_p = (lf != nullptr && lf->drop_probability >= 0)
                              ? lf->drop_probability
                              : config_.drop_probability;
    if (drop_p > 0 && ctx.rng.next_bool(drop_p)) {
      ctx.stats.drops++;
      continue;
    }
    if (receiver.segment == sender.segment || !multi_segment_) {
      Time arrival = tx_end + config_.propagation_delay_us;
      const Duration jitter = (lf != nullptr && lf->jitter_us >= 0)
                                  ? lf->jitter_us
                                  : config_.jitter_us;
      if (jitter > 0) {
        arrival += static_cast<Duration>(ctx.rng.next_below(
            static_cast<std::uint64_t>(jitter) + 1));
      }
      auto payload = shared;
      if (config_.corrupt_probability > 0 &&
          ctx.rng.next_bool(config_.corrupt_probability)) {
        ctx.stats.corruptions++;
        payload = std::make_shared<const std::vector<std::uint8_t>>(
            corrupt_copy(ctx.rng, *shared));
      }
      deliver(from, to, std::move(payload), arrival);
    } else {
      remote_dests[receiver.segment].push_back(to);
    }
  }
  if (remote_dests.empty()) return;

  // Backbone hop: occupy the source segment's WAN uplink when the packet
  // leaves the source bus, then each destination LAN's bus when it comes
  // off the backbone. The uplink is sender-shard state; the destination-bus
  // hop crosses shards and is the one place Engine::post is needed. Its
  // timestamp is >= now + uplink tx (>=1us) + backbone propagation — never
  // inside the engine's lookahead window.
  const std::size_t bytes = shared->size();
  const int partition = sender.partition;
  const int src_segment = sender.segment;
  sim.schedule_at(tx_end, [this, from, shared, bytes, partition, src_segment,
                           lan_tx, remote_dests = std::move(remote_dests)] {
    ShardCtx& sctx = shards_[nodes_[from.value()].shard];
    Time& uplink_free =
        sctx.uplink_free_at[bus_key(partition, src_segment)];
    const Time wan_start = std::max(sctx.sim->now(), uplink_free);
    const Time wan_end =
        wan_start + transmission_time(bytes, wan_.bandwidth_bps);
    uplink_free = wan_end;
    const Time backbone_out = wan_end + wan_.propagation_delay_us;
    for (const auto& [segment, nodes] : remote_dests) {
      const std::size_t dst_shard = shard_of_segment(segment);
      auto hop = [this, from, shared, partition, segment, lan_tx, nodes] {
        segment_arrival(from, partition, segment, lan_tx, shared, nodes);
      };
      if (engine_ != nullptr && dst_shard != nodes_[from.value()].shard) {
        engine_->post(dst_shard, backbone_out, std::move(hop));
      } else {
        shards_[dst_shard].sim->schedule_at(backbone_out, std::move(hop));
      }
    }
  });
}

void Network::segment_arrival(
    NodeId from, int partition, int segment, Duration lan_tx,
    const std::shared_ptr<const std::vector<std::uint8_t>>& shared,
    const std::vector<NodeId>& nodes) {
  // Runs in the destination segment's shard: its bus queue, fault RNG and
  // corruption counter are all local here.
  ShardCtx& ctx = shards_[shard_of_segment(segment)];
  const Time seg_done =
      config_.shared_bus
          ? occupy_bus(ctx, bus_key(partition, segment), ctx.sim->now(),
                       lan_tx)
          : ctx.sim->now();
  for (NodeId to : nodes) {
    Time arrival = seg_done + config_.propagation_delay_us;
    const LinkFault* lf = link_fault(from, to);
    const Duration jitter = (lf != nullptr && lf->jitter_us >= 0)
                                ? lf->jitter_us
                                : config_.jitter_us;
    if (jitter > 0) {
      arrival += static_cast<Duration>(ctx.rng.next_below(
          static_cast<std::uint64_t>(jitter) + 1));
    }
    auto payload = shared;
    if (config_.corrupt_probability > 0 &&
        ctx.rng.next_bool(config_.corrupt_probability)) {
      ctx.stats.corruptions++;
      payload = std::make_shared<const std::vector<std::uint8_t>>(
          corrupt_copy(ctx.rng, *shared));
    }
    deliver(from, to, std::move(payload), arrival);
  }
}

void Network::set_segments(const std::vector<std::vector<NodeId>>& segments,
                           WanConfig wan) {
  assert_idle("set_segments");
  std::vector<int> assignment(nodes_.size(), -1);
  int index = 0;
  for (const auto& segment : segments) {
    for (NodeId n : segment) {
      PLWG_ASSERT(n.valid() && n.value() < nodes_.size());
      PLWG_ASSERT_MSG(assignment[n.value()] == -1,
                      "node listed in two segments");
      assignment[n.value()] = index;
    }
    ++index;
  }
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    PLWG_ASSERT_MSG(assignment[i] != -1,
                    "node missing from segment specification");
    nodes_[i].segment = assignment[i];
    nodes_[i].shard = shard_of_segment(assignment[i]);
  }
  wan_ = wan;
  multi_segment_ = segments.size() > 1;
  clear_queues();
  if (engine_ != nullptr && shards_.size() > 1) {
    // Minimum cross-shard latency: every inter-segment packet pays at least
    // 1us of uplink transmission plus the backbone propagation delay before
    // it can reach another shard.
    engine_->set_lookahead(wan_.propagation_delay_us + 1);
  }
  PLWG_INFO("net", "topology: ", segments.size(), " LAN segments on ",
            shards_.size(), " shards");
}

int Network::segment_of(NodeId n) const {
  PLWG_ASSERT(n.value() < nodes_.size());
  return nodes_[n.value()].segment;
}

void Network::unicast(NodeId from, NodeId to, std::vector<std::uint8_t> data) {
  const NodeId dests[] = {to};
  multicast(from, dests, std::move(data));
}

void Network::deliver(NodeId from, NodeId to,
                      std::shared_ptr<const std::vector<std::uint8_t>> data,
                      Time arrival) {
  // Always called from the destination node's shard (local traffic stays in
  // the sender's == receiver's shard; backbone traffic lands here via
  // segment_arrival), so the receiver's CPU queue and epoch are local.
  //
  // The packet is addressed to the destination's *current incarnation*; if
  // the node crashes and restarts while the packet is in flight, the new
  // incarnation must not receive it.
  const std::uint32_t epoch = nodes_[to.value()].epoch;
  Simulator& sim = *shards_[nodes_[to.value()].shard].sim;
  // Receiver CPU is a FIFO queue: processing starts when both the packet
  // has arrived and the CPU is free, and takes node_process_cost_us. The
  // CPU slot is claimed *at arrival* — claiming it at send time would let a
  // slow (e.g. cross-WAN) packet reserve the CPU into the future and starve
  // packets that arrive earlier.
  sim.schedule_at(arrival, [this, from, to, epoch,
                            data = std::move(data)]() mutable {
    NodeState& receiver = nodes_[to.value()];
    ShardCtx& ctx = shards_[receiver.shard];
    if (receiver.epoch != epoch) {
      ctx.stats.stale_epoch_drops++;
      return;
    }
    if (receiver.crashed) return;  // dead incarnation: no CPU to occupy
    const Time start = std::max(ctx.sim->now(), receiver.cpu_free_at);
    const Time done = start + config_.node_process_cost_us;
    receiver.cpu_free_at = done;
    // The buffer moves (not ref-bumps) through both hops: one multicast =
    // one encode = one shared buffer, refcounted once per destination.
    ctx.sim->schedule_at(done, [this, from, to, epoch,
                                data = std::move(data)] {
      NodeState& r = nodes_[to.value()];
      ShardCtx& c = shards_[r.shard];
      if (r.epoch != epoch) {
        c.stats.stale_epoch_drops++;
        return;
      }
      if (r.crashed) return;
      c.stats.deliveries++;
      c.digest.record_delivery(c.sim->now(), from, to, data->size());
      if (config_.digest_payloads) {
        c.digest.fold_bytes(std::span<const std::uint8_t>(*data));
      }
      r.handler->on_packet(from, std::span<const std::uint8_t>(*data));
    });
  });
}

void Network::clear_queues() {
  for (ShardCtx& ctx : shards_) {
    ctx.bus_free_at.clear();
    ctx.uplink_free_at.clear();
  }
}

void Network::set_partitions(const std::vector<std::vector<NodeId>>& classes) {
  assert_idle("set_partitions");
  std::vector<int> assignment(nodes_.size(), -1);
  for (const auto& cls : classes) {
    const int token = next_partition_token_++;
    for (NodeId n : cls) {
      PLWG_ASSERT(n.valid() && n.value() < nodes_.size());
      PLWG_ASSERT_MSG(assignment[n.value()] == -1,
                      "node listed in two partition classes");
      assignment[n.value()] = token;
    }
  }
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    PLWG_ASSERT_MSG(assignment[i] != -1,
                    "node missing from partition specification");
    nodes_[i].partition = assignment[i];
  }
  // New reachability classes restart the queues.
  clear_queues();
  PLWG_INFO("net", "network partitioned into ", classes.size(), " classes");
}

void Network::heal() {
  assert_idle("heal");
  const int token = next_partition_token_++;
  for (auto& node : nodes_) node.partition = token;
  clear_queues();
  PLWG_INFO("net", "network healed");
}

bool Network::reachable(NodeId a, NodeId b) const {
  PLWG_ASSERT(a.value() < nodes_.size() && b.value() < nodes_.size());
  const NodeState& na = nodes_[a.value()];
  const NodeState& nb = nodes_[b.value()];
  return !na.crashed && !nb.crashed && na.partition == nb.partition;
}

int Network::partition_of(NodeId n) const {
  PLWG_ASSERT(n.value() < nodes_.size());
  return nodes_[n.value()].partition;
}

void Network::set_link_fault(NodeId from, NodeId to, LinkFault fault) {
  assert_idle("set_link_fault");
  PLWG_ASSERT(from.valid() && from.value() < nodes_.size());
  PLWG_ASSERT(to.valid() && to.value() < nodes_.size());
  PLWG_ASSERT_MSG(from != to, "link fault on a node's loopback path");
  PLWG_ASSERT(fault.drop_probability <= 1.0);
  link_faults_[link_key(from, to)] = fault;
  PLWG_DEBUG("net", "link ", from, "->", to, " fault: blocked=", fault.blocked,
             " drop=", fault.drop_probability, " jitter=", fault.jitter_us);
}

void Network::clear_link_fault(NodeId from, NodeId to) {
  assert_idle("clear_link_fault");
  link_faults_.erase(link_key(from, to));
}

void Network::clear_link_faults() {
  if (link_faults_.empty()) return;
  assert_idle("clear_link_faults");
  link_faults_.clear();
  PLWG_INFO("net", "all link faults cleared");
}

const LinkFault* Network::link_fault(NodeId from, NodeId to) const {
  if (link_faults_.empty()) return nullptr;
  const auto it = link_faults_.find(link_key(from, to));
  return it == link_faults_.end() ? nullptr : &it->second;
}

void Network::crash(NodeId n) {
  assert_idle("crash");
  PLWG_ASSERT(n.value() < nodes_.size());
  nodes_[n.value()].crashed = true;
  PLWG_INFO("net", "node ", n, " crashed");
}

bool Network::crashed(NodeId n) const {
  PLWG_ASSERT(n.value() < nodes_.size());
  return nodes_[n.value()].crashed;
}

void Network::restart(NodeId n, NetHandler& handler) {
  assert_idle("restart");
  PLWG_ASSERT(n.value() < nodes_.size());
  NodeState& node = nodes_[n.value()];
  PLWG_ASSERT_MSG(node.crashed, "restart of a node that is not crashed");
  node.crashed = false;
  node.epoch++;
  node.handler = &handler;
  node.cpu_free_at = shards_[node.shard].sim->now();
  PLWG_INFO("net", "node ", n, " restarted (epoch ", node.epoch, ")");
}

std::uint32_t Network::crash_epoch(NodeId n) const {
  PLWG_ASSERT(n.value() < nodes_.size());
  return nodes_[n.value()].epoch;
}

std::vector<std::uint8_t> Network::corrupt_copy(
    Rng& rng, const std::vector<std::uint8_t>& data) {
  std::vector<std::uint8_t> out = data;
  if (out.empty()) return out;
  if (rng.next_bool(0.5)) {
    // Truncation (possibly to an empty packet).
    out.resize(rng.next_below(out.size()));
  } else {
    const std::size_t flips = 1 + rng.next_below(4);
    for (std::size_t i = 0; i < flips; ++i) {
      out[rng.next_below(out.size())] ^=
          static_cast<std::uint8_t>(1u << rng.next_below(8));
    }
  }
  return out;
}

void Network::charge_cpu(NodeId n, Duration cost_us) {
  PLWG_ASSERT(n.value() < nodes_.size());
  PLWG_ASSERT(cost_us >= 0);
  NodeState& node = nodes_[n.value()];
  node.cpu_free_at =
      std::max(shards_[node.shard].sim->now(), node.cpu_free_at) + cost_us;
}

const NetworkStats& Network::stats() const {
  agg_stats_ = {};
  for (const ShardCtx& ctx : shards_) agg_stats_.accumulate(ctx.stats);
  return agg_stats_;
}

void Network::reset_stats() {
  for (ShardCtx& ctx : shards_) ctx.stats = {};
  agg_stats_ = {};
}

void Network::note_frame(NodeId from, std::size_t messages,
                         std::size_t piggybacked) {
  ShardCtx& ctx = ctx_of(from);
  ctx.stats.messages_sent += messages;
  ctx.stats.piggybacked_acks += piggybacked;
}

std::uint64_t Network::trace_digest() const {
  TraceDigest combined;
  for (std::size_t s = 0; s < shards_.size(); ++s) {
    combined.combine(shards_[s].digest);
    combined.fold_u64(shards_[s].sim->total_events_run());
  }
  return combined.value();
}

}  // namespace plwg::sim
