// Order-sensitive digest of a simulation's observable trace.
//
// FNV-1a folded over every final packet delivery (time, endpoints, size,
// optionally payload bytes) in the order the destination shard executed
// them. Per-shard digests are combined in fixed shard order together with
// each shard's executed-event count, so the combined value pins both the
// delivery trace and the timer-event schedule. Two runs with the same seed
// must produce the same combined digest at any thread count — the
// determinism contract of sim::Engine, enforced by
// tests/determinism_test.cpp.
#pragma once

#include <cstdint>
#include <span>

#include "util/types.hpp"

namespace plwg::sim {

class TraceDigest {
 public:
  static constexpr std::uint64_t kOffset = 14695981039346656037ULL;
  static constexpr std::uint64_t kPrime = 1099511628211ULL;

  void fold_u64(std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      hash_ = (hash_ ^ (v & 0xFF)) * kPrime;
      v >>= 8;
    }
  }

  void fold_bytes(std::span<const std::uint8_t> bytes) {
    for (std::uint8_t b : bytes) hash_ = (hash_ ^ b) * kPrime;
  }

  /// One final delivery (handler about to run) at the destination shard.
  void record_delivery(Time t, NodeId from, NodeId to, std::size_t size) {
    fold_u64(static_cast<std::uint64_t>(t));
    fold_u64((static_cast<std::uint64_t>(from.value()) << 32) | to.value());
    fold_u64(size);
    ++deliveries_;
  }

  [[nodiscard]] std::uint64_t value() const { return hash_; }
  [[nodiscard]] std::uint64_t deliveries() const { return deliveries_; }

  /// Fold another digest (and its delivery count) into this one — used to
  /// combine per-shard digests in shard-index order.
  void combine(const TraceDigest& other) {
    fold_u64(other.hash_);
    fold_u64(other.deliveries_);
  }

 private:
  std::uint64_t hash_ = kOffset;
  std::uint64_t deliveries_ = 0;
};

}  // namespace plwg::sim
