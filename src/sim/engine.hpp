// Sharded discrete-event engine: deterministic multi-core simulation.
//
// Nodes are partitioned into shards (one per LAN segment by default — see
// sim::Network::set_segments); each shard owns a private Simulator (its own
// timer arena, event heap, and clock) and is advanced by at most one thread
// at a time. Shards synchronize with a conservative time-window scheme:
//
//   * The engine advances all shards in lockstep windows of `lookahead`
//     simulated microseconds. Within a window every shard runs its local
//     events with no locks and no cross-shard visibility.
//   * The only causal coupling between shards is a cross-shard packet, and
//     every such packet pays at least the backbone propagation delay — so a
//     lookahead equal to that minimum latency guarantees no shard can
//     receive an event timestamped inside the window it is running.
//   * Cross-shard events are posted into per-(source, destination) mailboxes
//     during the window and injected into the destination shard at the
//     window barrier, in fixed (source shard, destination shard, post
//     order) order.
//
// Determinism is the design invariant, not an accident: per-shard event
// sequences depend only on the shard's own event order plus barrier-time
// injections, and both are independent of how many OS threads execute the
// windows. Same seed ⇒ byte-identical trace at 1, 2, or N threads
// (enforced by tests/determinism_test.cpp over sim::Network's TraceDigest).
//
// A single-shard engine degenerates to exactly the classic single-threaded
// event loop: one window per run, no mailboxes, no worker threads.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "sim/simulator.hpp"
#include "util/function.hpp"
#include "util/types.hpp"

namespace plwg::sim {

class Engine {
 public:
  struct Config {
    /// Worker threads executing shard windows. 0 reads PLWG_SIM_THREADS
    /// from the environment (default 1). Clamped to the shard count — more
    /// threads than shards cannot help.
    std::size_t threads = 0;
  };

  explicit Engine(std::size_t num_shards = 1);
  Engine(std::size_t num_shards, Config config);
  ~Engine();
  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  [[nodiscard]] std::size_t num_shards() const { return shards_.size(); }
  /// Effective worker count (after env lookup and shard clamping).
  [[nodiscard]] std::size_t threads() const { return threads_; }
  [[nodiscard]] Simulator& shard(std::size_t s) { return *shards_[s]; }
  [[nodiscard]] const Simulator& shard(std::size_t s) const {
    return *shards_[s];
  }

  /// Completed simulation horizon: every shard's clock equals this whenever
  /// the engine is idle (between run_until calls / at window barriers).
  [[nodiscard]] Time now() const {
    return horizon_.load(std::memory_order_relaxed);
  }

  /// Minimum cross-shard event latency, microseconds. Every cross-shard
  /// post made while a window is running must be timestamped at least this
  /// far after the window's start; the poster (sim::Network) guarantees it
  /// by construction and the barrier asserts it. Must be > 0 before a
  /// multi-shard engine runs.
  void set_lookahead(Duration us);
  [[nodiscard]] Duration lookahead() const { return lookahead_; }

  /// Schedule `fn` at absolute time `t` on shard `dst`. Callable from
  /// inside a running shard (appends to the posting shard's mailbox,
  /// injected at the next window barrier) or from the driver thread while
  /// idle (scheduled directly).
  void post(std::size_t dst, Time t, UniqueFunction fn);

  /// Run `hook` on the driver thread at every window barrier (after
  /// mailbox injection) and once more when run_until returns. Used by the
  /// oracle mux to replay per-shard observer rings in deterministic order.
  void add_barrier_hook(std::function<void()> hook);

  /// Advance every shard to exactly time `t`. Returns events executed.
  std::size_t run_until(Time t);
  std::size_t run_for(Duration d) { return run_until(now() + d); }

  /// True from run_until entry to exit (any thread). Global topology
  /// mutations (crash, partition, reshard) are only legal while idle.
  [[nodiscard]] bool running() const {
    return running_.load(std::memory_order_relaxed);
  }

  /// Shard index the calling thread is currently executing, or -1 when the
  /// caller is not inside a shard window (driver thread, or idle).
  [[nodiscard]] static int current_shard();
  /// Clock of the shard the calling thread is executing, falling back to
  /// the completed horizon — safe from any thread, for log timestamps.
  [[nodiscard]] Time log_now() const;

  /// Per-shard events executed (monotonic), for load-balance accounting in
  /// the scaling bench: speedup is bounded by max-shard / mean-shard load.
  [[nodiscard]] std::size_t shard_events_run(std::size_t s) const {
    return shards_[s]->total_events_run();
  }

 private:
  struct Posted {
    Time t;
    UniqueFunction fn;
  };

  std::size_t run_window_sequential(Time end);
  std::size_t run_window_parallel(Time end);
  void run_shard_range(std::size_t worker, Time end, std::size_t& events);
  void drain_mailboxes();
  void worker_main(std::size_t w);

  std::vector<std::unique_ptr<Simulator>> shards_;
  /// mail_[src * S + dst]: written only by the thread running shard `src`
  /// during a window (or the idle driver thread), drained only by the
  /// driver thread at barriers — never concurrently.
  std::vector<std::vector<Posted>> mail_;
  std::vector<std::function<void()>> barrier_hooks_;
  Duration lookahead_ = 0;
  std::atomic<Time> horizon_{0};
  std::atomic<bool> running_{false};

  // Worker pool (spawned in the constructor iff threads_ > 1).
  std::size_t threads_ = 1;
  std::mutex pool_mutex_;
  std::condition_variable pool_work_;
  std::condition_variable pool_done_;
  std::uint64_t pool_generation_ = 0;
  Time pool_window_end_ = 0;
  std::size_t pool_pending_ = 0;
  std::size_t pool_events_ = 0;
  bool pool_stop_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace plwg::sim
