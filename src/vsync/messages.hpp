// Wire messages of the heavy-weight group (vsync) protocol.
//
// Every packet on Port::kVsync is framed as
//   [HwgId gid][u8 MsgType][type-specific body]
// and each body carries the ViewId it pertains to where relevant, so stale
// traffic from superseded views is filtered deterministically.
#pragma once

#include <cstdint>
#include <vector>

#include "util/codec.hpp"
#include "util/member_set.hpp"
#include "util/types.hpp"
#include "vsync/view.hpp"

namespace plwg::vsync {

enum class MsgType : std::uint8_t {
  kJoinReq = 1,
  kLeaveReq,
  kSendReq,      // sender -> sequencer (view coordinator)
  kOrdered,      // sequencer -> members, totally ordered
  kNack,         // member -> sequencer, missing seqs
  kHeartbeat,
  kFlushReq,     // view-change coordinator -> old-view members
  kFlushAck,     // member -> coordinator: have-list
  kFlushReject,  // member -> would-be coordinator: you are not legitimate
  kFetch,        // coordinator -> holder: send me these messages
  kFetchReply,
  kFlushCut,     // coordinator -> members: final delivery cut + retransmissions
  kFlushDone,    // member -> coordinator: cut fully delivered
  kNewView,
  kMergeProbe,   // coordinator -> known peers outside the view
  kMergeReply,
  kMergeStart,   // merge leader -> constituent coordinators
  kMergeFlushed, // constituent coordinator -> leader
  kMergeAbort,
};

/// One totally-ordered message as stored in the per-view log and carried by
/// kOrdered / retransmissions.
struct OrderedMsg {
  std::uint64_t seq = 0;       // position in the view's total order
  ProcessId origin;            // original sender
  std::uint64_t sender_msg_id = 0;
  std::vector<std::uint8_t> payload;

  void encode(Encoder& enc) const;
  static OrderedMsg decode(Decoder& dec);
  /// Exact encode() output size, for Encoder::reserve().
  [[nodiscard]] std::size_t encoded_size_hint() const {
    return 24 + payload.size();
  }
};

struct JoinReqMsg {
  ProcessId joiner;
  void encode(Encoder& enc) const { enc.put_id(joiner); }
  static JoinReqMsg decode(Decoder& dec) {
    return {dec.get_id<ProcessId>()};
  }
};

struct LeaveReqMsg {
  ProcessId leaver;
  void encode(Encoder& enc) const { enc.put_id(leaver); }
  static LeaveReqMsg decode(Decoder& dec) {
    return {dec.get_id<ProcessId>()};
  }
};

struct SendReqMsg {
  ViewId view;
  ProcessId origin;
  std::uint64_t sender_msg_id = 0;
  /// The sender's smallest not-yet-self-delivered message id. The sequencer
  /// holds a request back until everything between `first_unacked` and
  /// `sender_msg_id` is ordered, which preserves per-sender FIFO even when
  /// an earlier SEND_REQ was lost and retransmitted late.
  std::uint64_t first_unacked = 0;
  std::vector<std::uint8_t> payload;

  void encode(Encoder& enc) const;
  static SendReqMsg decode(Decoder& dec);
  [[nodiscard]] std::size_t encoded_size_hint() const {
    return ViewId::kEncodedSize + 24 + payload.size();
  }
};

struct OrderedMsgWire {
  ViewId view;
  /// The sequencer's stability floor at send time, piggybacked so steady
  /// data traffic keeps everyone's log-trim bound fresh without dedicated
  /// stability messages. Every seq <= stable_upto is delivered everywhere.
  std::uint64_t stable_upto = 0;
  OrderedMsg msg;

  void encode(Encoder& enc) const;
  static OrderedMsgWire decode(Decoder& dec);
  [[nodiscard]] std::size_t encoded_size_hint() const {
    return ViewId::kEncodedSize + 8 + msg.encoded_size_hint();
  }
};

struct NackMsg {
  ViewId view;
  std::vector<std::uint64_t> missing;

  void encode(Encoder& enc) const;
  static NackMsg decode(Decoder& dec);
  [[nodiscard]] std::size_t encoded_size_hint() const {
    return ViewId::kEncodedSize + 4 + 8 * missing.size();
  }
};

struct HeartbeatMsg {
  ViewId view;
  ProcessId sender;
  /// The sequencer's high-water mark (last sequence number assigned).
  /// Non-sequencer members send 0. Receivers use it to NACK tail losses
  /// that no later message would reveal.
  std::uint64_t max_seq = 0;
  /// Sender's contiguous-delivery prefix. The sequencer folds these into the
  /// view-wide stability floor, so acks ride the liveness traffic instead of
  /// costing frames of their own.
  std::uint64_t delivered_upto = 0;
  /// The sequencer's stability floor (only meaningful from the coordinator;
  /// others echo what they last heard). Everything <= this is delivered at
  /// every member and safe to trim from retransmission logs.
  std::uint64_t stable_upto = 0;

  void encode(Encoder& enc) const;
  static HeartbeatMsg decode(Decoder& dec);
  [[nodiscard]] std::size_t encoded_size_hint() const {
    return ViewId::kEncodedSize + 28;
  }
};

struct FlushReqMsg {
  ViewId old_view;
  std::uint32_t epoch = 0;
  ProcessId initiator;
  MemberSet proposal;  // membership of the view being prepared

  void encode(Encoder& enc) const;
  static FlushReqMsg decode(Decoder& dec);
  [[nodiscard]] std::size_t encoded_size_hint() const {
    return ViewId::kEncodedSize + 8 + proposal.encoded_size();
  }
};

struct FlushAckMsg {
  ViewId old_view;
  std::uint32_t epoch = 0;
  ProcessId sender;
  std::vector<std::uint64_t> have;  // every seq received in old_view

  void encode(Encoder& enc) const;
  static FlushAckMsg decode(Decoder& dec);
  [[nodiscard]] std::size_t encoded_size_hint() const {
    return ViewId::kEncodedSize + 12 + 8 * have.size();
  }
};

struct FlushRejectMsg {
  ViewId old_view;
  std::uint32_t epoch = 0;
  ProcessId sender;
  MemberSet suspected;  // rejector's suspicion set, to help convergence

  void encode(Encoder& enc) const;
  static FlushRejectMsg decode(Decoder& dec);
  [[nodiscard]] std::size_t encoded_size_hint() const {
    return ViewId::kEncodedSize + 8 + suspected.encoded_size();
  }
};

struct FetchMsg {
  ViewId old_view;
  std::uint32_t epoch = 0;
  std::vector<std::uint64_t> seqs;

  void encode(Encoder& enc) const;
  static FetchMsg decode(Decoder& dec);
  [[nodiscard]] std::size_t encoded_size_hint() const {
    return ViewId::kEncodedSize + 8 + 8 * seqs.size();
  }
};

struct FetchReplyMsg {
  ViewId old_view;
  std::uint32_t epoch = 0;
  std::vector<OrderedMsg> msgs;

  void encode(Encoder& enc) const;
  static FetchReplyMsg decode(Decoder& dec);
  [[nodiscard]] std::size_t encoded_size_hint() const {
    std::size_t n = ViewId::kEncodedSize + 8;
    for (const OrderedMsg& m : msgs) n += m.encoded_size_hint();
    return n;
  }
};

struct FlushCutMsg {
  ViewId old_view;
  std::uint32_t epoch = 0;
  std::vector<std::uint64_t> cut;    // ordered seqs every survivor delivers
  std::vector<OrderedMsg> retrans;   // contents for anyone missing them

  void encode(Encoder& enc) const;
  static FlushCutMsg decode(Decoder& dec);
  [[nodiscard]] std::size_t encoded_size_hint() const {
    std::size_t n = ViewId::kEncodedSize + 12 + 8 * cut.size();
    for (const OrderedMsg& m : retrans) n += m.encoded_size_hint();
    return n;
  }
};

struct FlushDoneMsg {
  ViewId old_view;
  std::uint32_t epoch = 0;
  ProcessId sender;

  void encode(Encoder& enc) const;
  static FlushDoneMsg decode(Decoder& dec);
  [[nodiscard]] std::size_t encoded_size_hint() const {
    return ViewId::kEncodedSize + 8;
  }
};

struct NewViewMsg {
  View view;
  /// Voluntary leavers in this change: receivers drop them from the merge
  /// probe target set (crash/partition exclusions stay probeable).
  MemberSet departed;

  void encode(Encoder& enc) const {
    view.encode(enc);
    departed.encode(enc);
  }
  [[nodiscard]] std::size_t encoded_size_hint() const {
    return view.encoded_size() + departed.encoded_size();
  }
  static NewViewMsg decode(Decoder& dec) {
    NewViewMsg m;
    m.view = View::decode(dec);
    m.departed = MemberSet::decode(dec);
    return m;
  }
};

struct MergeProbeMsg {
  ViewId view;
  ProcessId sender;  // acting coordinator of `view`
  MemberSet members;

  void encode(Encoder& enc) const;
  static MergeProbeMsg decode(Decoder& dec);
  [[nodiscard]] std::size_t encoded_size_hint() const {
    return ViewId::kEncodedSize + 4 + members.encoded_size();
  }
};

using MergeReplyMsg = MergeProbeMsg;  // identical shape, opposite direction

struct MergeStartMsg {
  std::uint32_t merge_epoch = 0;
  ProcessId leader;
  std::vector<ViewId> parties;

  void encode(Encoder& enc) const;
  static MergeStartMsg decode(Decoder& dec);
  [[nodiscard]] std::size_t encoded_size_hint() const {
    return 12 + ViewId::kEncodedSize * parties.size();
  }
};

struct MergeFlushedMsg {
  std::uint32_t merge_epoch = 0;
  ViewId view;              // the constituent view that finished flushing
  ProcessId sender;
  MemberSet members;        // its surviving members

  void encode(Encoder& enc) const;
  static MergeFlushedMsg decode(Decoder& dec);
  [[nodiscard]] std::size_t encoded_size_hint() const {
    return 8 + ViewId::kEncodedSize + members.encoded_size();
  }
};

struct MergeAbortMsg {
  std::uint32_t merge_epoch = 0;

  void encode(Encoder& enc) const { enc.put_u32(merge_epoch); }
  static MergeAbortMsg decode(Decoder& dec) { return {dec.get_u32()}; }
};

}  // namespace plwg::vsync
