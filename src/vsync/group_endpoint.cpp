// GroupEndpoint: lifecycle, dispatch, failure detection, periodic driver.
// The data path lives in group_endpoint_data.cpp, the flush / view-change
// machinery in group_endpoint_flush.cpp, and the partition-merge machinery
// in group_endpoint_merge.cpp.
#include "vsync/group_endpoint.hpp"

#include "util/assert.hpp"
#include "util/log.hpp"
#include "util/observer_hook.hpp"
#include "vsync/vsync_host.hpp"

namespace plwg::vsync {

GroupEndpoint::GroupEndpoint(VsyncHost& host, HwgId gid, GroupUser& user)
    : host_(host), gid_(gid), user_(user) {}

GroupEndpoint::~GroupEndpoint() = default;

const View& GroupEndpoint::view() const {
  PLWG_ASSERT_MSG(has_view_, "no view installed");
  return view_;
}

ProcessId GroupEndpoint::self() const { return host_.self(); }

Time GroupEndpoint::now() const { return host_.node().now(); }

const VsyncConfig& GroupEndpoint::config() const { return host_.config(); }

ProcessId GroupEndpoint::acting_coordinator() const {
  if (!has_view_) return ProcessId::invalid();
  const MemberSet alive = view_.members.set_difference(suspected_);
  if (alive.empty()) return self();
  return alive.min_member();
}

bool GroupEndpoint::is_acting_coordinator() const {
  return has_view_ && acting_coordinator() == self();
}

void GroupEndpoint::set_state(State s) {
  if (state_ == s) return;
  state_ = s;
  state_since_ = now();
}

void GroupEndpoint::create() {
  PLWG_ASSERT_MSG(!has_view_, "create on an endpoint that has a view");
  View v;
  v.id = ViewId{self(), host_.mint_view_seq(gid_)};
  v.members = MemberSet{self()};
  install_view(v);
}

void GroupEndpoint::join(const MemberSet& contacts) {
  PLWG_ASSERT_MSG(!has_view_, "join on an endpoint that has a view");
  PLWG_ASSERT_MSG(!contacts.empty(), "join needs at least one contact");
  join_contacts_ = contacts;
  set_state(State::kJoining);
  send_join_req();
}

void GroupEndpoint::leave() {
  if (defunct()) return;
  if (!has_view_) {
    // Still joining: just abandon the attempt.
    become_defunct();
    return;
  }
  if (view_.members.size() == 1) {
    // Sole member: the group dissolves with us.
    become_defunct();
    return;
  }
  leave_requested_ = true;
  if (is_acting_coordinator()) {
    pending_leavers_.insert(self());
    schedule_view_change();
  } else {
    Encoder& body = scratch_body();
    LeaveReqMsg{self()}.encode(body);
    unicast(acting_coordinator(), MsgType::kLeaveReq, body);
  }
}

void GroupEndpoint::send(std::vector<std::uint8_t> payload) {
  if (defunct()) return;
  stats_.msgs_sent++;
  submit_send(std::move(payload));
}

void GroupEndpoint::force_flush() {
  if (!has_view_ || state_ != State::kActive || !is_acting_coordinator() ||
      flush_op_ || merge_leader_ || merge_follow_) {
    return;
  }
  initiate_view_change(/*for_merge=*/false);
}

void GroupEndpoint::stop_ok() {
  if (!part_flush_ || !part_flush_->stop_delivered || part_flush_->stop_acked) {
    return;
  }
  part_flush_->stop_acked = true;
  maybe_send_flush_ack();
}

void GroupEndpoint::install_view(const View& view) {
  PLWG_ASSERT(view.members.contains(self()));
  view_ = view;
  has_view_ = true;
  reset_view_state();
  known_peers_ = known_peers_.set_union(view.members).set_difference(departed_);
  pending_joiners_ = pending_joiners_.set_difference(view.members);
  // Keep only leave requests from processes still in the view.
  pending_leavers_ = pending_leavers_.set_intersection(view.members);
  set_state(State::kActive);
  stats_.views_installed++;
  PLWG_DEBUG("vsync", "p", self(), " g", gid_, " installed ", view_);
  PLWG_OBSERVE(host_.observer(), on_hwg_view_installed(self(), gid_, view_));
  user_.on_view(gid_, view_);
  if (defunct()) return;  // user may have left during the upcall
  flush_pending_sends();
  // Sends not yet delivered anywhere in our lineage resurface in this view.
  resend_unacked(/*force=*/true);
  // Re-inject SEND_REQs buffered while the previous view was flushing.
  std::deque<SendReqMsg> queue;
  queue.swap(resequence_queue_);
  for (SendReqMsg& req : queue) {
    if (!view_.members.contains(req.origin)) continue;
    if (view_.coordinator() == self()) {
      order_and_multicast(req.origin, req.sender_msg_id,
                          std::move(req.payload), req.first_unacked);
    } else {
      req.view = view_.id;
      Encoder& body = scratch_body();
      req.encode(body);
      unicast(view_.coordinator(), MsgType::kSendReq, body);
    }
  }
  if (is_acting_coordinator() &&
      (!pending_joiners_.empty() || !pending_leavers_.empty())) {
    schedule_view_change();
  }
}

void GroupEndpoint::reset_view_state() {
  msg_log_.clear();
  delivered_set_.clear();
  ordered_smids_.clear();
  order_buffer_.clear();
  delivered_upto_ = 0;
  max_seen_ = 0;
  next_order_seq_ = 1;
  delivery_floor_.clear();
  stable_upto_ = 0;
  trimmed_upto_ = 0;
  suspected_ = MemberSet{};
  last_heard_.clear();
  const Time t = now();
  for (ProcessId p : view_.members.members()) last_heard_[p] = t;
  part_flush_.reset();
  flush_op_.reset();
  merge_follow_.reset();
  batch_deadline_ = -1;
}

void GroupEndpoint::become_defunct() {
  PLWG_OBSERVE(host_.observer(), on_hwg_endpoint_reset(self(), gid_));
  set_state(State::kLeft);
  has_view_ = false;
  flush_op_.reset();
  part_flush_.reset();
  merge_leader_.reset();
  merge_follow_.reset();
}

void GroupEndpoint::note_heard(ProcessId p) {
  if (!has_view_ || !view_.members.contains(p)) return;
  last_heard_[p] = now();
  // Rehabilitation: live shared-view traffic from a suspect restores trust.
  // Suspicion used to be sticky until a view change reset it, which is fine
  // when the suspecter ends up acting coordinator (it excludes the suspect)
  // — but after a one-way outage heals, a member that suspected the
  // coordinator while everyone else stayed connected is NOT the acting
  // coordinator, so nobody ever turns its suspicion into a view change. It
  // then refuses to NACK-repair from or route sends through the "dead"
  // sequencer forever: a silent livelock with a perfectly consistent view.
  // An in-flight flush is unaffected: proposals snapshot the survivor set at
  // initiation, so clearing the flag here cannot change an open proposal.
  if (suspected_.contains(p)) {
    suspected_.erase(p);
    PLWG_DEBUG("vsync", "p", self(), " g", gid_, " rehabilitates ", p);
    flush_pending_sends();
  }
}

void GroupEndpoint::update_suspicions() {
  if (!has_view_) return;
  const Time deadline = now() - config().suspect_timeout_us;
  bool changed = false;
  for (ProcessId p : view_.members.members()) {
    if (p == self() || suspected_.contains(p)) continue;
    auto it = last_heard_.find(p);
    const Time heard = (it == last_heard_.end()) ? state_since_ : it->second;
    if (heard < deadline) {
      suspected_.insert(p);
      changed = true;
      PLWG_DEBUG("vsync", "p", self(), " g", gid_, " suspects ", p);
    }
  }
  if (changed && is_acting_coordinator()) schedule_view_change();
}

void GroupEndpoint::unicast(ProcessId to, MsgType type, const Encoder& body) {
  host_.send_group_msg(gid_, to, type, body);
}

void GroupEndpoint::multicast(const MemberSet& to, MsgType type,
                              const Encoder& body) {
  host_.multicast_group_msg(gid_, to, type, body);
}

void GroupEndpoint::on_tick() {
  if (defunct()) return;
  const Time t = now();
  const VsyncConfig& cfg = config();

  if (state_ == State::kJoining) {
    if (last_join_req_ < 0 || t - last_join_req_ >= cfg.join_retry_us) {
      send_join_req();
    }
    return;
  }
  if (!has_view_) return;

  // Heartbeats keep the failure detector fed in every state. They double as
  // the stability-ack channel: each member piggybacks its contiguous
  // delivery bound, and the sequencer piggybacks the resulting view-wide
  // floor back out, so log GC costs no dedicated messages at all.
  if (view_.members.size() > 1 &&
      (last_heartbeat_sent_ < 0 ||
       t - last_heartbeat_sent_ >= cfg.heartbeat_interval_us)) {
    last_heartbeat_sent_ = t;
    const bool sequencer = view_.coordinator() == self();
    if (sequencer) update_stability_floor();
    const std::uint64_t high_water = sequencer ? next_order_seq_ - 1 : 0;
    Encoder& body = scratch_body();
    HeartbeatMsg{view_.id, self(), high_water, delivered_upto_, stable_upto_}
        .encode(body);
    MemberSet others = view_.members;
    others.erase(self());
    multicast(others, MsgType::kHeartbeat, body);
  }
  trim_stable_log();

  update_suspicions();

  // Re-send a pending leave request in case it was lost.
  if (leave_requested_ && !is_acting_coordinator() &&
      (last_leave_req_ < 0 || t - last_leave_req_ >= cfg.join_retry_us)) {
    last_leave_req_ = t;
    Encoder& body = scratch_body();
    LeaveReqMsg{self()}.encode(body);
    unicast(acting_coordinator(), MsgType::kLeaveReq, body);
  }

  if (t - last_nack_check_ >= cfg.nack_check_us) {
    last_nack_check_ = t;
    check_nacks();
    resend_unacked(/*force=*/false);
  }

  // Membership batch expiry.
  if (batch_deadline_ >= 0 && t >= batch_deadline_) {
    batch_deadline_ = -1;
    if (is_acting_coordinator() && !flush_op_ && !merge_leader_ &&
        !merge_follow_ &&
        (!pending_joiners_.empty() || !pending_leavers_.empty() ||
         !suspected_.empty())) {
      initiate_view_change(/*for_merge=*/false);
    }
  }

  // Flush progress / retry.
  if (flush_op_ && t - flush_op_->started_at >= cfg.flush_retry_us) {
    flush_phase_timeout();
  }

  // Merge probe + timeouts.
  if (merge_leader_ && t - merge_leader_->started_at >= cfg.merge_timeout_us) {
    merge_timeout();
  }
  if (merge_follow_ && t - merge_follow_->started_at >= cfg.merge_timeout_us) {
    merge_follow_.reset();
    if (flush_op_ && flush_op_->for_merge) flush_op_->for_merge = false;
  }
  if (state_ == State::kActive && is_acting_coordinator() && !flush_op_ &&
      !merge_leader_ && !merge_follow_ &&
      t - last_probe_sent_ >= cfg.merge_probe_interval_us) {
    last_probe_sent_ = t;
    send_merge_probe();
  }

  // Watchdog: a member wedged mid-view-change re-forms the view if it is the
  // legitimate coordinator (covers crashed initiators and lost merges).
  if ((state_ == State::kStopping || state_ == State::kFlushing ||
       state_ == State::kStopped) &&
      t - state_since_ >= cfg.stuck_watchdog_us && is_acting_coordinator() &&
      !flush_op_ && !merge_leader_) {
    merge_follow_.reset();
    PLWG_DEBUG("vsync", "p", self(), " g", gid_, " watchdog re-forms view");
    initiate_view_change(/*for_merge=*/false);
  }

  // A NON-coordinator wedged in Stopped confirmed the cut, but the
  // initiator's NEW_VIEW to it was lost: the initiator dismantles its flush
  // op on the last FLUSH_DONE, so nothing retransmits the view, while our
  // cross-view heartbeats keep feeding everyone's failure detector — nobody
  // ever suspects us and we stay deaf forever. Re-offer the FLUSH_DONE; the
  // initiator answers a stale one with the superseding view (or an eject if
  // history moved past it).
  if (state_ == State::kStopped && part_flush_ && part_flush_->done_sent &&
      t - state_since_ >= cfg.stuck_watchdog_us &&
      (last_flush_done_resent_ < 0 ||
       t - last_flush_done_resent_ >= cfg.flush_retry_us)) {
    last_flush_done_resent_ = t;
    Encoder& body = scratch_body();
    FlushDoneMsg{part_flush_->old_view, part_flush_->epoch, self()}
        .encode(body);
    unicast(part_flush_->initiator, MsgType::kFlushDone, body);
  }
}

void GroupEndpoint::on_message(ProcessId from, MsgType type, Decoder& dec) {
  if (defunct()) return;
  // Failure-detector feed: only traffic of the *shared view's* protocols
  // counts as liveness. Merge probes and join requests deliberately do not
  // — a process excluded from its peers' current view must still suspect
  // them, take over its own stale view, and meet them through the merge
  // path; hearing their probes must not keep its stale trust alive.
  switch (type) {
    case MsgType::kSendReq:
    case MsgType::kOrdered:
    case MsgType::kNack:
    case MsgType::kHeartbeat:
    case MsgType::kFlushReq:
    case MsgType::kFlushAck:
    case MsgType::kFlushReject:
    case MsgType::kFetch:
    case MsgType::kFetchReply:
    case MsgType::kFlushCut:
    case MsgType::kFlushDone:
    case MsgType::kNewView:
      note_heard(from);
      break;
    default:
      break;
  }
  // Membership-protocol messages carry a configurable CPU charge (see
  // VsyncConfig::membership_msg_cost_us).
  switch (type) {
    case MsgType::kFlushReq:
    case MsgType::kFlushAck:
    case MsgType::kFlushReject:
    case MsgType::kFetch:
    case MsgType::kFetchReply:
    case MsgType::kFlushCut:
    case MsgType::kFlushDone:
    case MsgType::kNewView:
      if (config().membership_msg_cost_us > 0) {
        host_.node().network().charge_cpu(host_.node().id(),
                                          config().membership_msg_cost_us);
      }
      break;
    default:
      break;
  }
  switch (type) {
    case MsgType::kJoinReq:
      on_join_req(JoinReqMsg::decode(dec));
      break;
    case MsgType::kLeaveReq:
      on_leave_req(LeaveReqMsg::decode(dec));
      break;
    case MsgType::kSendReq:
      on_send_req(SendReqMsg::decode(dec));
      break;
    case MsgType::kOrdered:
      on_ordered(OrderedMsgWire::decode(dec));
      break;
    case MsgType::kNack:
      on_nack(from, NackMsg::decode(dec));
      break;
    case MsgType::kHeartbeat:
      on_heartbeat(HeartbeatMsg::decode(dec));
      break;
    case MsgType::kFlushReq:
      on_flush_req(from, FlushReqMsg::decode(dec));
      break;
    case MsgType::kFlushAck:
      on_flush_ack(FlushAckMsg::decode(dec));
      break;
    case MsgType::kFlushReject:
      on_flush_reject(FlushRejectMsg::decode(dec));
      break;
    case MsgType::kFetch:
      on_fetch(from, FetchMsg::decode(dec));
      break;
    case MsgType::kFetchReply:
      on_fetch_reply(FetchReplyMsg::decode(dec));
      break;
    case MsgType::kFlushCut:
      on_flush_cut(FlushCutMsg::decode(dec));
      break;
    case MsgType::kFlushDone:
      on_flush_done(FlushDoneMsg::decode(dec));
      break;
    case MsgType::kNewView:
      on_new_view(NewViewMsg::decode(dec));
      break;
    case MsgType::kMergeProbe:
      on_merge_probe(MergeProbeMsg::decode(dec));
      break;
    case MsgType::kMergeReply:
      on_merge_reply(MergeReplyMsg::decode(dec));
      break;
    case MsgType::kMergeStart:
      on_merge_start(from, MergeStartMsg::decode(dec));
      break;
    case MsgType::kMergeFlushed:
      on_merge_flushed(MergeFlushedMsg::decode(dec));
      break;
    case MsgType::kMergeAbort:
      on_merge_abort(MergeAbortMsg::decode(dec));
      break;
  }
}

std::ostream& operator<<(std::ostream& os, GroupEndpoint::State s) {
  switch (s) {
    case GroupEndpoint::State::kJoining: return os << "Joining";
    case GroupEndpoint::State::kActive: return os << "Active";
    case GroupEndpoint::State::kStopping: return os << "Stopping";
    case GroupEndpoint::State::kFlushing: return os << "Flushing";
    case GroupEndpoint::State::kStopped: return os << "Stopped";
    case GroupEndpoint::State::kLeft: return os << "Left";
  }
  return os << "?";
}

}  // namespace plwg::vsync
