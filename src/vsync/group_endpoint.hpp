// Per-(process, group) protocol state machine of the heavy-weight group
// layer: totally-ordered virtually synchronous multicast, heartbeat failure
// detection, coordinator-driven flush + view changes, partition split, and
// concurrent-view merge.
//
// Protocol summary
// ----------------
// * Total order: the acting coordinator of a view (its smallest unsuspected
//   member) sequences messages. Senders unicast SEND_REQ to it; it assigns a
//   view-local sequence number and multicasts ORDERED. Receivers deliver in
//   sequence order; gaps are repaired by NACK.
// * View change (join / leave / suspicion): the acting coordinator sends
//   FLUSH_REQ to the surviving old members. Each stops its user (Stop /
//   StopOk handshake of paper Table 1), replies FLUSH_ACK listing every
//   sequence number it received, and the coordinator computes the delivery
//   cut as the union, FETCHes contents it lacks, multicasts FLUSH_CUT (+
//   retransmissions), collects FLUSH_DONE, then installs NEW_VIEW. This
//   gives the paper's virtual-synchrony guarantee: processes installing the
//   same two consecutive views deliver the same message set in between.
// * Partitions: silence makes each side suspect the other; each side's
//   smallest unsuspected member runs a view change, yielding concurrent
//   views (extended-virtual-synchrony style). Mutually suspicious members
//   resolve flush-legitimacy disputes by excluding each other — a virtual
//   partition that the merge path later heals.
// * Merge: coordinators periodically MERGE_PROBE every process that was ever
//   a member but is outside the current view. A probe answered by a
//   concurrent view elects the smaller coordinator as merge leader; every
//   constituent view flushes itself, reports MERGE_FLUSHED, and the leader
//   installs the union view whose `predecessors` list all constituent view
//   ids — the genealogy the naming service uses for garbage collection.
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <optional>
#include <set>
#include <unordered_map>
#include <vector>

#include "sim/simulator.hpp"
#include "util/member_set.hpp"
#include "util/types.hpp"
#include "vsync/config.hpp"
#include "vsync/group_user.hpp"
#include "vsync/messages.hpp"
#include "vsync/view.hpp"

namespace plwg::vsync {

class VsyncHost;

class GroupEndpoint {
 public:
  enum class State {
    kJoining,   // no view yet; retrying JOIN_REQ
    kActive,    // view installed, traffic flowing
    kStopping,  // FLUSH_REQ accepted, Stop upcalled, awaiting user StopOk
    kFlushing,  // FLUSH_ACK sent, delivery frozen, awaiting FLUSH_CUT
    kStopped,   // cut delivered, FLUSH_DONE sent, awaiting NEW_VIEW
    kLeft,      // endpoint defunct (left the group / group dissolved)
  };

  struct Stats {
    std::uint64_t views_installed = 0;
    std::uint64_t msgs_sent = 0;
    std::uint64_t msgs_delivered = 0;
    std::uint64_t flushes_started = 0;   // as initiator
    std::uint64_t merges_led = 0;
    std::uint64_t nacks_sent = 0;
    std::uint64_t log_trimmed = 0;       // entries GC'd below stability floor
  };

  GroupEndpoint(VsyncHost& host, HwgId gid, GroupUser& user);
  ~GroupEndpoint();
  GroupEndpoint(const GroupEndpoint&) = delete;
  GroupEndpoint& operator=(const GroupEndpoint&) = delete;

  // --- downcalls (paper Table 1) ---------------------------------------
  /// Found the group: install the singleton view immediately.
  void create();
  /// Join via any of `contacts` (current members, e.g. from the naming
  /// service). Retries until a view including this process arrives.
  void join(const MemberSet& contacts);
  /// Leave the group. The endpoint becomes defunct once the departure view
  /// change completes (immediately if this is the only member).
  void leave();
  /// Virtually synchronous totally-ordered multicast. Queued for the next
  /// view while a view change is in progress.
  void send(std::vector<std::uint8_t> payload);
  /// Confirm a Stop upcall (paper's StopOk).
  void stop_ok();
  /// Force a flush + view re-installation with unchanged membership. Used
  /// by the LWG merge-views protocol (paper Fig. 5) as its synchronization
  /// point. Only effective at the acting coordinator of an active view;
  /// requests while a change is already running are ignored.
  void force_flush();

  // --- introspection -----------------------------------------------------
  [[nodiscard]] HwgId gid() const { return gid_; }
  [[nodiscard]] State state() const { return state_; }
  [[nodiscard]] bool defunct() const { return state_ == State::kLeft; }
  [[nodiscard]] bool has_view() const { return has_view_; }
  [[nodiscard]] const View& view() const;
  [[nodiscard]] ProcessId self() const;
  /// Smallest member of the current view not suspected by this process.
  [[nodiscard]] ProcessId acting_coordinator() const;
  [[nodiscard]] bool is_acting_coordinator() const;
  [[nodiscard]] const MemberSet& known_peers() const { return known_peers_; }
  [[nodiscard]] const MemberSet& suspected() const { return suspected_; }
  [[nodiscard]] const Stats& stats() const { return stats_; }

  // --- wire entry (called by VsyncHost) ----------------------------------
  void on_message(ProcessId from, MsgType type, Decoder& dec);
  /// Periodic driver: heartbeats, suspicion checks, NACKs, merge probes,
  /// stuck-state watchdog. Called by the host tick.
  void on_tick();

 private:
  // -- shared helpers (group_endpoint.cpp) --
  void install_view(const View& view);
  void become_defunct();
  void reset_view_state();
  void note_heard(ProcessId p);
  void update_suspicions();
  void set_state(State s);
  [[nodiscard]] bool view_matches(const ViewId& id) const {
    return has_view_ && view_.id == id;
  }
  void unicast(ProcessId to, MsgType type, const Encoder& body);
  void multicast(const MemberSet& to, MsgType type, const Encoder& body);
  /// Cleared-and-reused Encoder for message bodies: every send site
  /// serializes into this one buffer, so the steady state allocates
  /// nothing. Sends never nest (encode -> unicast/multicast completes
  /// before the next body is built), which makes the single buffer safe.
  Encoder& scratch_body() {
    body_scratch_.clear();
    return body_scratch_;
  }
  [[nodiscard]] Time now() const;
  [[nodiscard]] const VsyncConfig& config() const;

  // -- data path (group_endpoint_data.cpp) --
  void on_send_req(const SendReqMsg& msg);
  void drain_order_buffer(ProcessId origin);
  void on_ordered(const OrderedMsgWire& msg);
  void on_nack(ProcessId from, const NackMsg& msg);
  void on_heartbeat(const HeartbeatMsg& msg);
  /// Sequencer only: recompute the view-wide stability floor from the
  /// delivery bounds piggybacked on members' heartbeats.
  void update_stability_floor();
  /// Drop log entries (and delivered-set bookkeeping) at or below the
  /// stability floor — everyone has them, nobody can NACK or FETCH them.
  void trim_stable_log();
  /// `first_unacked` is the sender's progress bound carried by SEND_REQ;
  /// preserved when the message is deferred to the next view so the
  /// hold-back reasoning stays sound across the view change.
  void order_and_multicast(ProcessId origin, std::uint64_t sender_msg_id,
                           std::vector<std::uint8_t> payload,
                           std::uint64_t first_unacked);
  void submit_send(std::vector<std::uint8_t> payload);
  void deliver_contiguous();
  void deliver_one(const OrderedMsg& msg);
  void flush_pending_sends();
  void resend_unacked(bool force);
  void check_nacks();

  // -- membership / flush (group_endpoint_flush.cpp) --
  void on_join_req(const JoinReqMsg& msg);
  void on_leave_req(const LeaveReqMsg& msg);
  void on_flush_req(ProcessId from, const FlushReqMsg& msg);
  void on_flush_ack(const FlushAckMsg& msg);
  void on_flush_reject(const FlushRejectMsg& msg);
  void on_fetch(ProcessId from, const FetchMsg& msg);
  void on_fetch_reply(const FetchReplyMsg& msg);
  void on_flush_cut(const FlushCutMsg& msg);
  void on_flush_done(const FlushDoneMsg& msg);
  void answer_stale_flush_done(const FlushDoneMsg& msg);
  void on_new_view(const NewViewMsg& msg);
  void send_join_req();
  /// Schedule a membership batch; the view change starts after
  /// membership_batch_us unless one is already running.
  void schedule_view_change();
  /// Start a flush as initiator. `for_merge` reports completion to the
  /// merge machinery instead of installing a view.
  void initiate_view_change(bool for_merge);
  void maybe_send_flush_ack();
  void deliver_cut(const FlushCutMsg& msg);
  void flush_acks_maybe_complete();
  void send_flush_cut();
  void flush_phase_timeout();
  void finish_flush_as_initiator();
  void install_and_announce(const MemberSet& members,
                            std::vector<ViewId> predecessors,
                            const MemberSet& recipients,
                            const MemberSet& departed);

  // -- merge (group_endpoint_merge.cpp) --
  void on_merge_probe(const MergeProbeMsg& msg);
  void on_merge_reply(const MergeReplyMsg& msg);
  void on_merge_start(ProcessId from, const MergeStartMsg& msg);
  void on_merge_flushed(const MergeFlushedMsg& msg);
  void on_merge_abort(const MergeAbortMsg& msg);
  void send_merge_probe();
  void begin_merge_as_leader(const MergeProbeMsg& other_view);
  void merge_self_flush_complete(MemberSet survivors);
  void merge_leader_maybe_install();
  void merge_timeout();
  void abort_merge();

  // ---------------------------------------------------------------------
  VsyncHost& host_;
  Encoder body_scratch_;
  const HwgId gid_;
  GroupUser& user_;
  State state_ = State::kJoining;
  Time state_since_ = 0;

  // Current view + per-view data state.
  bool has_view_ = false;
  View view_;
  std::map<std::uint64_t, OrderedMsg> msg_log_;  // ORDERED received, not yet GC'd
  std::set<std::uint64_t> delivered_set_;        // dedupe across cut delivery
  std::uint64_t delivered_upto_ = 0;             // contiguous prefix delivered
  std::uint64_t max_seen_ = 0;
  // Stability-floor log GC: the sequencer folds the delivered_upto bounds
  // piggybacked on heartbeats into a view-wide floor and advertises it on
  // every ORDERED and heartbeat; entries at or below the floor are trimmed.
  std::map<ProcessId, std::uint64_t> delivery_floor_;  // sequencer's intake
  std::uint64_t stable_upto_ = 0;                // delivered at every member
  std::uint64_t trimmed_upto_ = 0;               // log GC'd up to here
  std::uint64_t next_order_seq_ = 1;             // sequencer counter
  std::uint64_t next_sender_msg_id_ = 1;
  std::deque<std::vector<std::uint8_t>> pending_sends_;
  // Sender-driven reliability: a send stays here until this process delivers
  // its own copy; re-sent to the sequencer periodically within the view and
  // re-submitted into the next view after a view change. The sequencer
  // de-duplicates via ordered_smids_.
  struct UnackedSend {
    std::vector<std::uint8_t> payload;
    Time last_sent = 0;
  };
  std::map<std::uint64_t, UnackedSend> unacked_sends_;
  std::set<std::pair<ProcessId, std::uint64_t>> ordered_smids_;
  // Sequencer-side per-origin hold-back buffer: a SEND_REQ is sequenced only
  // once every sender message id between the sender's first_unacked and it
  // has been ordered, preserving per-sender FIFO under retransmission.
  std::map<ProcessId, std::map<std::uint64_t, SendReqMsg>> order_buffer_;
  // SEND_REQs that reached this (old) coordinator during a flush; re-injected
  // into the next view if the origin survives.
  std::deque<SendReqMsg> resequence_queue_;

  // Failure detection.
  std::unordered_map<ProcessId, Time> last_heard_;
  MemberSet suspected_;
  Time last_heartbeat_sent_ = -1;
  Time last_nack_check_ = 0;
  Time last_probe_sent_ = 0;
  Time last_flush_done_resent_ = -1;  // Stopped-straggler FLUSH_DONE re-offer

  // Membership change requests pending at this process (acted on when it is
  // the acting coordinator).
  MemberSet pending_joiners_;
  MemberSet pending_leavers_;
  bool leave_requested_ = false;   // this process wants out
  MemberSet join_contacts_;
  Time last_join_req_ = -1;
  Time last_leave_req_ = -1;
  Time batch_deadline_ = -1;       // membership batch expiry (-1: none)

  // Initiator-side flush operation.
  struct FlushOp {
    std::uint32_t epoch = 0;
    ViewId old_view;
    MemberSet proposal;            // next view membership
    MemberSet targets;             // old members that must flush
    MemberSet leavers;             // flushed but excluded from proposal
    std::map<ProcessId, std::vector<std::uint64_t>> acks;
    MemberSet done;
    std::set<std::uint64_t> union_have;
    std::set<std::uint64_t> awaiting_fetch;
    bool cut_sent = false;
    bool for_merge = false;
    int retries = 0;
    Time started_at = 0;
  };
  std::optional<FlushOp> flush_op_;
  std::uint32_t next_flush_epoch_ = 1;

  // Participant-side flush context.
  struct ParticipantFlush {
    ViewId old_view;
    std::uint32_t epoch = 0;
    ProcessId initiator;
    MemberSet proposal;
    bool stop_delivered = false;   // Stop upcall issued
    bool stop_acked = false;       // user called stop_ok
    bool ack_sent = false;
    bool done_sent = false;
  };
  std::optional<ParticipantFlush> part_flush_;

  // Merge machinery.
  struct MergeParty {
    ViewId view;
    ProcessId coordinator;
    MemberSet members;      // membership advertised at probe time
    bool flushed = false;
    MemberSet survivors;
  };
  struct MergeLeaderOp {
    std::uint32_t epoch = 0;
    std::vector<MergeParty> parties;  // other views (not our own)
    bool self_flushed = false;
    MemberSet self_survivors;
    Time started_at = 0;
  };
  struct MergeFollowOp {
    std::uint32_t epoch = 0;
    ProcessId leader;
    Time started_at = 0;
  };
  std::optional<MergeLeaderOp> merge_leader_;
  std::optional<MergeFollowOp> merge_follow_;
  std::uint32_t next_merge_epoch_ = 1;

  // Every process ever observed as a member (or advertiser) of this group;
  // the merge-probe target set is known_peers_ minus the current view.
  MemberSet known_peers_;
  // Voluntary leavers are forgotten so they are not probed forever.
  MemberSet departed_;

  Stats stats_;
};

std::ostream& operator<<(std::ostream& os, GroupEndpoint::State s);

}  // namespace plwg::vsync
