// Observer interface of the heavy-weight group layer: per-process protocol
// events reported to the cross-node ProtocolOracle (src/oracle/).
//
// The hooks are deliberately minimal — raw facts, no interpretation — so
// the layer stays ignorant of what is being checked. Call sites compile
// out entirely under PLWG_ORACLE_DISABLED (see util/observer_hook.hpp).
#pragma once

#include <cstdint>
#include <span>

#include "util/types.hpp"
#include "vsync/view.hpp"

namespace plwg::vsync {

class VsyncObserver {
 public:
  virtual ~VsyncObserver() = default;

  /// `p` installed `view` of HWG `gid` (create, join, flush, or merge).
  virtual void on_hwg_view_installed(ProcessId p, HwgId gid,
                                     const View& view) = 0;

  /// `p` delivered the totally-ordered message (`origin`, `sender_msg_id`)
  /// at sequence `seq` while member of `view`. During a flush-cut delivery
  /// `view` is still the view being closed, which is exactly the view the
  /// message belongs to.
  virtual void on_hwg_delivered(ProcessId p, HwgId gid, const ViewId& view,
                                std::uint64_t seq, ProcessId origin,
                                std::uint64_t sender_msg_id,
                                std::span<const std::uint8_t> payload) = 0;

  /// `p` completed the flush closing `old_view` (sent FLUSH_DONE, or — as
  /// `initiator` — collected every FLUSH_DONE).
  virtual void on_hwg_flush_completed(ProcessId p, HwgId gid,
                                      const ViewId& old_view,
                                      bool initiator) = 0;

  /// `p`'s endpoint for `gid` became defunct (left, excluded, dissolved).
  /// Ends the process's delivery epoch: a later re-join must not be paired
  /// with the view it held before the gap.
  virtual void on_hwg_endpoint_reset(ProcessId p, HwgId gid) = 0;
};

}  // namespace plwg::vsync
