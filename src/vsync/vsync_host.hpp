// Per-process host of the heavy-weight group layer.
//
// Owns one GroupEndpoint per group this process participates in,
// demultiplexes Port::kVsync packets to them, provides the downcall half of
// the paper's Table 1 interface, and drives the shared periodic tick.
#pragma once

#include <memory>
#include <unordered_map>
#include <vector>

#include "durable/store.hpp"
#include "transport/node_runtime.hpp"
#include "util/types.hpp"
#include "vsync/config.hpp"
#include "vsync/group_endpoint.hpp"
#include "vsync/group_user.hpp"
#include "vsync/observer.hpp"

namespace plwg::vsync {

/// Builds a globally unique group id from its creator and a local counter.
[[nodiscard]] constexpr HwgId make_hwg_id(ProcessId creator,
                                          std::uint32_t counter) {
  return HwgId{(static_cast<std::uint64_t>(creator.value()) << 32) | counter};
}

class VsyncHost : public transport::PortHandler {
 public:
  /// `store`, when given, backs the view-seq and group-id counters so they
  /// survive a crash–restart of this process (see durable/store.hpp for why
  /// letting them die with the host is unsafe). May be null: tests that
  /// never restart a host can run purely in-memory.
  VsyncHost(transport::NodeRuntime& node, VsyncConfig config,
            durable::ProcessStore* store = nullptr);
  ~VsyncHost() override;
  VsyncHost(const VsyncHost&) = delete;
  VsyncHost& operator=(const VsyncHost&) = delete;

  /// Allocate a fresh globally-unique group id created by this process.
  [[nodiscard]] HwgId allocate_group_id();

  // --- Table 1 downcalls -------------------------------------------------
  /// Found a new group; installs the singleton view synchronously.
  void create_group(HwgId gid, GroupUser& user);
  /// Join `gid` through any of `contacts` (e.g. members published in the
  /// naming service). The View upcall signals completion.
  void join_group(HwgId gid, const MemberSet& contacts, GroupUser& user);
  void leave_group(HwgId gid);
  void send(HwgId gid, std::vector<std::uint8_t> data);
  void stop_ok(HwgId gid);
  /// Force a flush + view re-installation with unchanged membership (no-op
  /// unless this process is the group's acting coordinator and idle).
  void force_flush(HwgId gid);

  // --- introspection -------------------------------------------------------
  [[nodiscard]] bool is_member(HwgId gid) const;
  [[nodiscard]] const View* view_of(HwgId gid) const;
  [[nodiscard]] GroupEndpoint* endpoint(HwgId gid);
  [[nodiscard]] const GroupEndpoint* endpoint(HwgId gid) const;
  [[nodiscard]] std::vector<HwgId> groups() const;
  [[nodiscard]] ProcessId self() const { return node_.process_id(); }
  [[nodiscard]] transport::NodeRuntime& node() { return node_; }
  [[nodiscard]] const VsyncConfig& config() const { return config_; }

  /// Protocol observer (the cross-node oracle); may be null. Not owned.
  void set_observer(VsyncObserver* observer) { observer_ = observer; }
  [[nodiscard]] VsyncObserver* observer() const { return observer_; }

  // --- used by GroupEndpoint ----------------------------------------------
  void send_group_msg(HwgId gid, ProcessId to, MsgType type,
                      const Encoder& body);
  void multicast_group_msg(HwgId gid, const MemberSet& to, MsgType type,
                           const Encoder& body);
  /// Next view-sequence number this process mints for `gid`. Lives at host
  /// scope — not in the endpoint — so a process that leaves a group and
  /// later rejoins it never reuses a (coordinator, seq) view id it already
  /// minted; stale packets tagged with a recycled id must stay stale.
  [[nodiscard]] std::uint32_t mint_view_seq(HwgId gid) {
    return ++(store_ != nullptr ? store_->hwg_view_seqs : view_seqs_)[gid];
  }

  /// Protocol observer (the cross-node oracle) epoch hooks fire through the
  /// endpoints; exposed so a full-host teardown (process restart) can close
  /// every endpoint's delivery epoch first.
  [[nodiscard]] const auto& endpoints() const { return endpoints_; }

  // transport::PortHandler
  void on_message(NodeId from, Decoder& dec) override;

 private:
  void tick();
  void sweep_defunct();
  [[nodiscard]] const Encoder& frame(HwgId gid, MsgType type,
                                     const Encoder& body);

  transport::NodeRuntime& node_;
  VsyncConfig config_;
  durable::ProcessStore* store_ = nullptr;  // not owned; may be null
  VsyncObserver* observer_ = nullptr;       // not owned
  std::unordered_map<HwgId, std::unique_ptr<GroupEndpoint>> endpoints_;
  /// Per-group view-sequence counters (see mint_view_seq); survives
  /// endpoint teardown and recreation. In-memory fallback — when a durable
  /// store is attached the counters live there instead, so they also
  /// survive a restart of the whole host.
  std::unordered_map<HwgId, std::uint32_t> view_seqs_;
  std::uint32_t next_group_counter_ = 1;
  bool dispatching_ = false;
  // Reused for every outbound frame; safe because the transport copies the
  // frame into the packet before returning and nothing sends re-entrantly
  // while a frame is being built.
  Encoder frame_scratch_;
};

}  // namespace plwg::vsync
