#include "vsync/view.hpp"

#include <sstream>

namespace plwg::vsync {

std::string ViewId::to_string() const {
  std::ostringstream os;
  os << *this;
  return os.str();
}

std::ostream& operator<<(std::ostream& os, const ViewId& id) {
  if (!id.valid()) return os << "view<->";
  os << "view<" << id.coordinator << ":" << id.seq;
  if (id.disambig != 0) os << "~" << id.disambig % 997;  // short merge tag
  return os << ">";
}

void View::encode(Encoder& enc) const {
  id.encode(enc);
  members.encode(enc);
  enc.put_u32(static_cast<std::uint32_t>(predecessors.size()));
  for (const ViewId& p : predecessors) p.encode(enc);
}

View View::decode(Decoder& dec) {
  View view;
  view.id = ViewId::decode(dec);
  view.members = MemberSet::decode(dec);
  const std::uint32_t n = dec.get_count(12);
  view.predecessors.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    view.predecessors.push_back(ViewId::decode(dec));
  }
  return view;
}

std::ostream& operator<<(std::ostream& os, const View& view) {
  return os << view.id << view.members;
}

}  // namespace plwg::vsync
