// Tunables of the heavy-weight group protocol.
#pragma once

#include "util/types.hpp"

namespace plwg::vsync {

struct VsyncConfig {
  /// Heartbeat period per member per group.
  Duration heartbeat_interval_us = 200'000;
  /// A peer silent for this long is suspected (must be a few heartbeats).
  Duration suspect_timeout_us = 1'000'000;
  /// Coordinator retries a stalled flush phase after this long; members that
  /// still have not answered become suspected.
  Duration flush_retry_us = 600'000;
  /// Joiner re-sends its JOIN_REQ at this period until a view arrives.
  Duration join_retry_us = 500'000;
  /// Coordinator batches join/leave requests for this long before starting
  /// a view change (avoids one flush per joiner on group start-up).
  Duration membership_batch_us = 20'000;
  /// Period of coordinator merge probes to known peers outside the view.
  Duration merge_probe_interval_us = 1'000'000;
  /// Merge leader / follower abandon a merge attempt after this long.
  Duration merge_timeout_us = 3'000'000;
  /// Gap-detection period for NACK-based retransmission.
  Duration nack_check_us = 150'000;
  /// If an endpoint sits in a non-active state this long, the legitimate
  /// coordinator restarts the view change (self-healing watchdog).
  Duration stuck_watchdog_us = 2'000'000;
  /// When true the endpoint answers Stop upcalls itself, immediately.
  /// (The LWG layer manages StopOk explicitly; simple users set this.)
  bool auto_stop_ok = false;
  /// Simulated CPU cost of processing one membership-protocol message
  /// (flush/ack/cut/new-view). Models the expensive protocol work of a view
  /// change on period hardware; 0 disables the charge. This is what makes
  /// per-group recovery cost scale with the number of groups in the Fig. 2
  /// recovery experiment.
  Duration membership_msg_cost_us = 0;
};

}  // namespace plwg::vsync
