// GroupEndpoint data path: sequencer-based totally-ordered multicast with
// NACK repair.
//
// The sequencer is the *view coordinator* (smallest member of the installed
// view) and is fixed for the lifetime of the view: if it becomes suspected,
// sends queue locally until the next view. This keeps the total order
// single-writer — two sequencers can never assign the same sequence number
// in one view.
#include "vsync/group_endpoint.hpp"

#include <algorithm>
#include <iterator>

#include "util/assert.hpp"
#include "util/log.hpp"
#include "util/observer_hook.hpp"
#include "vsync/vsync_host.hpp"

namespace plwg::vsync {

void GroupEndpoint::submit_send(std::vector<std::uint8_t> payload) {
  if (!has_view_ || state_ != State::kActive ||
      suspected_.contains(view_.coordinator())) {
    pending_sends_.push_back(std::move(payload));
    return;
  }
  const std::uint64_t smid = next_sender_msg_id_++;
  unacked_sends_[smid] = UnackedSend{payload, now()};
  if (view_.coordinator() == self()) {
    order_and_multicast(self(), smid, std::move(payload), smid);
    return;
  }
  Encoder& body = scratch_body();
  SendReqMsg{view_.id, self(), smid, unacked_sends_.begin()->first,
             std::move(payload)}
      .encode(body);
  unicast(view_.coordinator(), MsgType::kSendReq, body);
}

void GroupEndpoint::resend_unacked(bool force) {
  if (!has_view_ || state_ != State::kActive ||
      suspected_.contains(view_.coordinator())) {
    return;
  }
  const Time t = now();
  const Duration interval = 3 * config().nack_check_us;
  for (auto& [smid, send] : unacked_sends_) {
    if (!force && t - send.last_sent < interval) continue;
    send.last_sent = t;
    if (view_.coordinator() == self()) {
      // ordered_smids_ de-duplicates if the original made it through.
      order_and_multicast(self(), smid,
                          std::vector<std::uint8_t>(send.payload),
                          unacked_sends_.begin()->first);
    } else {
      Encoder& body = scratch_body();
      SendReqMsg{view_.id, self(), smid, unacked_sends_.begin()->first,
                 std::vector<std::uint8_t>(send.payload)}
          .encode(body);
      unicast(view_.coordinator(), MsgType::kSendReq, body);
    }
  }
}

void GroupEndpoint::order_and_multicast(ProcessId origin,
                                        std::uint64_t sender_msg_id,
                                        std::vector<std::uint8_t> payload,
                                        std::uint64_t first_unacked) {
  PLWG_ASSERT(view_.coordinator() == self());
  if (state_ != State::kActive) {
    // A flush is underway: hold the message for the next view.
    resequence_queue_.push_back(
        SendReqMsg{view_.id, origin, sender_msg_id, first_unacked,
                   std::move(payload)});
    return;
  }
  if (!ordered_smids_.insert({origin, sender_msg_id}).second) {
    return;  // duplicate of a retransmitted send already in the order
  }
  OrderedMsgWire wire;
  wire.view = view_.id;
  wire.stable_upto = stable_upto_;
  wire.msg.seq = next_order_seq_++;
  wire.msg.origin = origin;
  wire.msg.sender_msg_id = sender_msg_id;
  wire.msg.payload = std::move(payload);
  Encoder& body = scratch_body();
  body.reserve(wire.encoded_size_hint());
  wire.encode(body);
  // Multicast includes self: the sequencer's own copy arrives through the
  // loopback path so delivery is uniform at every member.
  multicast(view_.members, MsgType::kOrdered, body);
  // ORDERED traffic feeds every member's failure detector (note_heard) and
  // carries the stability floor, so it IS a heartbeat: suppress the
  // dedicated one while data flows and it costs nothing extra.
  last_heartbeat_sent_ = now();
}

void GroupEndpoint::on_send_req(const SendReqMsg& msg) {
  if (!view_matches(msg.view)) return;
  if (view_.coordinator() != self()) return;  // stale routing
  if (ordered_smids_.contains({msg.origin, msg.sender_msg_id})) return;
  auto [it, inserted] =
      order_buffer_[msg.origin].try_emplace(msg.sender_msg_id, msg);
  if (!inserted && msg.first_unacked > it->second.first_unacked) {
    // A retransmission carries fresher progress information; without the
    // refresh a stale first_unacked could hold the message back forever.
    it->second = msg;
  }
  drain_order_buffer(msg.origin);
}

void GroupEndpoint::drain_order_buffer(ProcessId origin) {
  auto it = order_buffer_.find(origin);
  if (it == order_buffer_.end()) return;
  auto& pending = it->second;
  while (!pending.empty()) {
    auto first = pending.begin();
    const std::uint64_t smid = first->first;
    const SendReqMsg& req = first->second;
    // Orderable iff nothing from this sender can still precede it: either
    // it is the sender's first outstanding message, or its predecessor has
    // been ordered in this view.
    const bool orderable =
        smid == req.first_unacked ||
        ordered_smids_.contains({origin, smid - 1});
    if (!orderable) break;
    SendReqMsg taken = std::move(first->second);
    pending.erase(first);
    order_and_multicast(origin, smid, std::move(taken.payload),
                        taken.first_unacked);
  }
  if (pending.empty()) order_buffer_.erase(it);
}

void GroupEndpoint::on_ordered(const OrderedMsgWire& wire) {
  if (!view_matches(wire.view)) return;
  const std::uint64_t seq = wire.msg.seq;
  max_seen_ = std::max(max_seen_, seq);
  stable_upto_ = std::max(stable_upto_, wire.stable_upto);
  msg_log_.emplace(seq, wire.msg);
  // Delivery continues while the user is being stopped, but freezes once the
  // FLUSH_ACK (our have-list) is out: anything delivered after that point
  // might not be in the coordinator's cut.
  const bool frozen = part_flush_ && part_flush_->ack_sent;
  if (!frozen) deliver_contiguous();
}

void GroupEndpoint::deliver_contiguous() {
  while (true) {
    auto it = msg_log_.find(delivered_upto_ + 1);
    if (it == msg_log_.end()) break;
    ++delivered_upto_;
    if (delivered_set_.insert(it->first).second) {
      deliver_one(it->second);
      if (defunct()) return;
    }
  }
}

void GroupEndpoint::deliver_one(const OrderedMsg& msg) {
  if (msg.origin == self()) unacked_sends_.erase(msg.sender_msg_id);
  stats_.msgs_delivered++;
  // During a cut delivery view_.id is still the closing view — exactly the
  // view this delivery belongs to under virtual synchrony.
  PLWG_OBSERVE(host_.observer(),
               on_hwg_delivered(self(), gid_, view_.id, msg.seq, msg.origin,
                                msg.sender_msg_id, msg.payload));
  user_.on_data(gid_, msg.origin, msg.payload);
}

void GroupEndpoint::check_nacks() {
  if (!has_view_ || state_ != State::kActive) return;
  if (view_.coordinator() == self()) return;
  if (suspected_.contains(view_.coordinator())) return;
  std::vector<std::uint64_t> missing;
  for (std::uint64_t s = delivered_upto_ + 1; s <= max_seen_; ++s) {
    if (!msg_log_.contains(s)) missing.push_back(s);
  }
  if (missing.empty()) return;
  stats_.nacks_sent++;
  Encoder& body = scratch_body();
  NackMsg{view_.id, std::move(missing)}.encode(body);
  unicast(view_.coordinator(), MsgType::kNack, body);
}

void GroupEndpoint::on_nack(ProcessId from, const NackMsg& msg) {
  if (!view_matches(msg.view)) return;
  if (view_.coordinator() != self()) return;
  for (std::uint64_t seq : msg.missing) {
    // A NACKed seq below the stability floor cannot happen (the NACKer's own
    // delivery bound is folded into the floor before the log is trimmed), so
    // a log miss here means the message is simply not ordered yet.
    auto it = msg_log_.find(seq);
    if (it == msg_log_.end()) continue;
    OrderedMsgWire wire{view_.id, stable_upto_, it->second};
    Encoder& body = scratch_body();
    wire.encode(body);
    unicast(from, MsgType::kOrdered, body);
  }
}

void GroupEndpoint::on_heartbeat(const HeartbeatMsg& hb) {
  if (!view_matches(hb.view)) return;
  if (view_.members.contains(hb.sender)) {
    std::uint64_t& floor = delivery_floor_[hb.sender];
    floor = std::max(floor, hb.delivered_upto);
  }
  if (hb.sender == view_.coordinator()) {
    // The sequencer's advertised high-water mark exposes tail losses to the
    // NACK-based repair; its stability floor bounds our log GC.
    max_seen_ = std::max(max_seen_, hb.max_seq);
    stable_upto_ = std::max(stable_upto_, hb.stable_upto);
  }
  if (view_.coordinator() == self()) update_stability_floor();
}

void GroupEndpoint::update_stability_floor() {
  if (!has_view_ || view_.coordinator() != self()) return;
  std::uint64_t floor = delivered_upto_;
  for (ProcessId p : view_.members.members()) {
    if (p == self()) continue;
    auto it = delivery_floor_.find(p);
    floor = std::min(floor, it == delivery_floor_.end() ? 0 : it->second);
  }
  stable_upto_ = std::max(stable_upto_, floor);
}

void GroupEndpoint::trim_stable_log() {
  // Trimming is frozen during any view change: FLUSH_ACK have-lists and the
  // delivery cut are computed from the logs as they stood when the flush
  // began, and the initiator's union must stay fetchable.
  if (!has_view_ || state_ != State::kActive || part_flush_ || flush_op_) {
    return;
  }
  const std::uint64_t to = std::min(stable_upto_, delivered_upto_);
  if (to <= trimmed_upto_) return;
  const auto log_end = msg_log_.upper_bound(to);
  stats_.log_trimmed += static_cast<std::uint64_t>(
      std::distance(msg_log_.begin(), log_end));
  msg_log_.erase(msg_log_.begin(), log_end);
  delivered_set_.erase(delivered_set_.begin(),
                       delivered_set_.upper_bound(to));
  trimmed_upto_ = to;
}

void GroupEndpoint::flush_pending_sends() {
  while (!pending_sends_.empty() && has_view_ && state_ == State::kActive &&
         !suspected_.contains(view_.coordinator())) {
    std::vector<std::uint8_t> payload = std::move(pending_sends_.front());
    pending_sends_.pop_front();
    submit_send(std::move(payload));
  }
}

}  // namespace plwg::vsync
