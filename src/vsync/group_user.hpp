// The upcall half of the virtually synchronous interface (paper Table 1).
//
// Downcalls (Join / Leave / Send / StopOk) are methods on VsyncHost; upcalls
// (View / Data / Stop) arrive through this interface. The light-weight group
// service implements GroupUser; so can applications that want to use a
// heavy-weight group directly.
#pragma once

#include <span>

#include "util/types.hpp"
#include "vsync/view.hpp"

namespace plwg::vsync {

class GroupUser {
 public:
  virtual ~GroupUser() = default;

  /// A new view of `gid` was installed at this process.
  virtual void on_view(HwgId gid, const View& view) = 0;

  /// A totally-ordered multicast from `src` was delivered in the current
  /// view of `gid`.
  virtual void on_data(HwgId gid, ProcessId src,
                       std::span<const std::uint8_t> data) = 0;

  /// Traffic on `gid` must stop (a view change is in progress). The user
  /// must eventually call VsyncHost::stop_ok(gid); sends issued before then
  /// may be queued for the next view.
  virtual void on_stop(HwgId gid) = 0;
};

}  // namespace plwg::vsync
