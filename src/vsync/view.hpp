// Views and view identifiers for the heavy-weight (virtually synchronous)
// group layer.
//
// Following paper Sect. 5.1, a view identifier is the pair
// (coordinator, view-sequence-number): the installing coordinator plus a
// counter it increments locally per installed view. In a partitionable
// system multiple *concurrent* views of the same group may exist; identifiers
// let every protocol message be tagged with the view it was sent in, so it
// is delivered only to members of that view.
#pragma once

#include <ostream>
#include <string>
#include <vector>

#include "util/codec.hpp"
#include "util/member_set.hpp"
#include "util/types.hpp"

namespace plwg::vsync {

struct ViewId {
  ProcessId coordinator;  // the process that installed the view
  std::uint32_t seq = 0;  // that process's local view counter
  /// Disambiguator for *deterministically computed* view ids: the LWG
  /// merge-views protocol (paper Fig. 5) derives the merged view id from
  /// the constituent ids so every member computes the same id with no
  /// extra round; a hash of the constituents keeps it from colliding with
  /// ids the coordinator minted from its local counter. Locally minted ids
  /// use 0.
  std::uint32_t disambig = 0;

  [[nodiscard]] bool valid() const { return coordinator.valid(); }

  friend constexpr auto operator<=>(const ViewId&, const ViewId&) = default;

  void encode(Encoder& enc) const {
    enc.put_id(coordinator);
    enc.put_u32(seq);
    enc.put_u32(disambig);
  }
  static ViewId decode(Decoder& dec) {
    ViewId id;
    id.coordinator = dec.get_id<ProcessId>();
    id.seq = dec.get_u32();
    id.disambig = dec.get_u32();
    return id;
  }

  /// Exact encode() output size (fixed-width), for Encoder::reserve().
  static constexpr std::size_t kEncodedSize = 12;

  [[nodiscard]] std::string to_string() const;
};

std::ostream& operator<<(std::ostream& os, const ViewId& id);

struct View {
  ViewId id;
  MemberSet members;
  /// View genealogy: the ids of the views this view succeeded. A plain view
  /// change has one predecessor; a partition merge lists every constituent
  /// view. The naming service uses this partial order to garbage-collect
  /// obsolete mappings (paper Sect. 5.2 / Table 4).
  std::vector<ViewId> predecessors;

  /// Deterministic coordinator rule: smallest process id in the view.
  [[nodiscard]] ProcessId coordinator() const { return members.min_member(); }

  void encode(Encoder& enc) const;
  static View decode(Decoder& dec);
  /// Exact encode() output size, for Encoder::reserve().
  [[nodiscard]] std::size_t encoded_size() const {
    return ViewId::kEncodedSize + members.encoded_size() + 4 +
           ViewId::kEncodedSize * predecessors.size();
  }

  friend bool operator==(const View&, const View&) = default;
};

std::ostream& operator<<(std::ostream& os, const View& view);

}  // namespace plwg::vsync

namespace std {
template <>
struct hash<plwg::vsync::ViewId> {
  size_t operator()(const plwg::vsync::ViewId& id) const noexcept {
    return (hash<plwg::ProcessId>{}(id.coordinator) * 1000003u ^
            hash<uint32_t>{}(id.seq)) *
               1000003u ^
           hash<uint32_t>{}(id.disambig);
  }
};
}  // namespace std
