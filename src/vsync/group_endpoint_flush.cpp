// GroupEndpoint membership: join/leave handling and the coordinator-driven
// flush protocol that installs new views while preserving virtual synchrony.
//
// The delivery cut of a view change is the union of every survivor's
// have-list; the initiator fetches contents it lacks, multicasts the cut
// with retransmissions, and installs the new view only after every survivor
// confirmed the cut. Any two processes installing the same two consecutive
// views therefore deliver exactly the cut between them (paper Sect. 3).
#include <algorithm>

#include "util/assert.hpp"
#include "util/log.hpp"
#include "util/observer_hook.hpp"
#include "vsync/group_endpoint.hpp"
#include "vsync/vsync_host.hpp"

namespace plwg::vsync {

void GroupEndpoint::send_join_req() {
  last_join_req_ = now();
  Encoder& body = scratch_body();
  JoinReqMsg{self()}.encode(body);
  multicast(join_contacts_, MsgType::kJoinReq, body);
}

void GroupEndpoint::on_join_req(const JoinReqMsg& msg) {
  if (!has_view_) return;
  if (msg.joiner != self() && view_.members.contains(msg.joiner)) {
    // A JOIN_REQ only ever comes from a state-less endpoint, so a listed
    // member asking to join has lost its endpoint state: it crashed and
    // restarted before anyone suspected it. Re-sending the NEW_VIEW would
    // graft a fresh endpoint onto a view whose delivery cut its previous
    // incarnation confirmed — the backlog retransmission would replay
    // messages the old incarnation already consumed. Vacate the dead seat
    // instead; the new incarnation is re-admitted by the next view change.
    // Every member records the suspicion so acting-coordinator selection
    // skips the dead seat even when the reborn process *was* the
    // coordinator.
    suspected_.insert(msg.joiner);
  }
  if (!is_acting_coordinator()) {
    Encoder& body = scratch_body();
    msg.encode(body);
    unicast(acting_coordinator(), MsgType::kJoinReq, body);
    return;
  }
  if (pending_joiners_.insert(msg.joiner)) {
    departed_.erase(msg.joiner);
  }
  schedule_view_change();
}

void GroupEndpoint::on_leave_req(const LeaveReqMsg& msg) {
  if (!has_view_ || !view_.members.contains(msg.leaver)) return;
  if (!is_acting_coordinator()) {
    Encoder& body = scratch_body();
    msg.encode(body);
    unicast(acting_coordinator(), MsgType::kLeaveReq, body);
    return;
  }
  if (pending_leavers_.insert(msg.leaver)) schedule_view_change();
}

void GroupEndpoint::schedule_view_change() {
  if (batch_deadline_ >= 0 || flush_op_ || merge_leader_ || merge_follow_) {
    return;  // a batch or change is already pending; the tick re-checks
  }
  batch_deadline_ = now() + config().membership_batch_us;
}

void GroupEndpoint::initiate_view_change(bool for_merge) {
  PLWG_ASSERT(has_view_);
  PLWG_ASSERT(!flush_op_);
  update_suspicions();
  if (!is_acting_coordinator()) return;

  const MemberSet survivors = view_.members.set_difference(suspected_);
  MemberSet leavers;
  MemberSet proposal = survivors;
  if (!for_merge) {
    leavers = pending_leavers_.set_intersection(survivors);
    if (leave_requested_) leavers.insert(self());
    proposal = survivors.set_difference(leavers);
    for (ProcessId j : pending_joiners_.members()) proposal.insert(j);
  }
  if (proposal.empty()) {
    // Everyone (including us) is leaving: the group dissolves.
    become_defunct();
    return;
  }

  FlushOp op;
  op.epoch = next_flush_epoch_++;
  op.old_view = view_.id;
  op.proposal = proposal;
  op.targets = survivors;
  op.leavers = leavers;
  op.for_merge = for_merge;
  op.started_at = now();
  flush_op_ = std::move(op);
  stats_.flushes_started++;
  PLWG_DEBUG("vsync", "p", self(), " g", gid_, " flush ", view_.id,
             " epoch=", flush_op_->epoch, " proposal=", proposal);

  Encoder& body = scratch_body();
  FlushReqMsg{view_.id, flush_op_->epoch, self(), proposal}.encode(body);
  multicast(flush_op_->targets, MsgType::kFlushReq, body);
}

void GroupEndpoint::on_flush_req(ProcessId from, const FlushReqMsg& msg) {
  (void)from;
  if (!view_matches(msg.old_view)) return;

  // Legitimacy: the initiator must be the smallest member we do not suspect.
  if (msg.initiator != self()) {
    if (suspected_.contains(msg.initiator) ||
        msg.initiator != acting_coordinator()) {
      Encoder& body = scratch_body();
      FlushRejectMsg{msg.old_view, msg.epoch, self(), suspected_}.encode(body);
      unicast(msg.initiator, MsgType::kFlushReject, body);
      return;
    }
  }

  if (part_flush_ && part_flush_->old_view == msg.old_view) {
    if (msg.initiator > part_flush_->initiator &&
        !suspected_.contains(part_flush_->initiator)) {
      // A larger-pid pretender lost the race; tell it who we believe in.
      Encoder& body = scratch_body();
      FlushRejectMsg{msg.old_view, msg.epoch, self(), suspected_}.encode(body);
      unicast(msg.initiator, MsgType::kFlushReject, body);
      return;
    }
    // Same or smaller initiator (or ours got suspected): adopt the request.
    part_flush_->initiator = msg.initiator;
    part_flush_->epoch = msg.epoch;
    part_flush_->proposal = msg.proposal;
    if (part_flush_->ack_sent) {
      // Idempotent re-ack for retried requests.
      part_flush_->ack_sent = false;
      maybe_send_flush_ack();
    }
    return;
  }

  ParticipantFlush pf;
  pf.old_view = msg.old_view;
  pf.epoch = msg.epoch;
  pf.initiator = msg.initiator;
  pf.proposal = msg.proposal;
  part_flush_ = std::move(pf);
  if (state_ == State::kActive) set_state(State::kStopping);

  if (config().auto_stop_ok) {
    part_flush_->stop_delivered = true;
    part_flush_->stop_acked = true;
    maybe_send_flush_ack();
    return;
  }
  part_flush_->stop_delivered = true;
  user_.on_stop(gid_);  // user must call stop_ok(); may do so synchronously
}

void GroupEndpoint::maybe_send_flush_ack() {
  if (!part_flush_ || !part_flush_->stop_acked || part_flush_->ack_sent) {
    return;
  }
  part_flush_->ack_sent = true;
  set_state(State::kFlushing);
  std::vector<std::uint64_t> have;
  have.reserve(msg_log_.size());
  for (const auto& [seq, msg] : msg_log_) have.push_back(seq);
  Encoder& body = scratch_body();
  FlushAckMsg{part_flush_->old_view, part_flush_->epoch, self(),
              std::move(have)}
      .encode(body);
  unicast(part_flush_->initiator, MsgType::kFlushAck, body);
}

void GroupEndpoint::on_flush_ack(const FlushAckMsg& msg) {
  if (!flush_op_ || flush_op_->old_view != msg.old_view ||
      msg.epoch > flush_op_->epoch) {
    return;
  }
  if (!flush_op_->targets.contains(msg.sender)) return;
  flush_op_->acks[msg.sender] = msg.have;
  for (std::uint64_t s : msg.have) {
    // A peer that trims its log lazily may still report seqs below our own
    // stability trim. Those are delivered at every survivor by definition of
    // the floor, so they need no cut entry — and our log no longer has them.
    if (s <= trimmed_upto_) continue;
    flush_op_->union_have.insert(s);
  }
  flush_acks_maybe_complete();
}

void GroupEndpoint::flush_acks_maybe_complete() {
  PLWG_ASSERT(flush_op_.has_value());
  if (flush_op_->cut_sent) return;
  for (ProcessId p : flush_op_->targets.members()) {
    if (!flush_op_->acks.contains(p)) return;
  }
  // Every survivor acked. Messages this initiator sequenced after sending
  // its own have-list are still part of the view's stream — fold the live
  // log into the cut so they are not lost.
  for (const auto& [seq, msg] : msg_log_) flush_op_->union_have.insert(seq);
  // Fetch any cut contents this process lacks.
  flush_op_->awaiting_fetch.clear();
  for (std::uint64_t s : flush_op_->union_have) {
    if (!msg_log_.contains(s)) flush_op_->awaiting_fetch.insert(s);
  }
  if (flush_op_->awaiting_fetch.empty()) {
    send_flush_cut();
    return;
  }
  // Group the fetches per holder (first acker that has each seq).
  std::map<ProcessId, std::vector<std::uint64_t>> per_holder;
  for (std::uint64_t s : flush_op_->awaiting_fetch) {
    for (const auto& [p, have] : flush_op_->acks) {
      if (p == self()) continue;
      if (std::find(have.begin(), have.end(), s) != have.end()) {
        per_holder[p].push_back(s);
        break;
      }
    }
  }
  for (auto& [holder, seqs] : per_holder) {
    Encoder& body = scratch_body();
    FetchMsg{flush_op_->old_view, flush_op_->epoch, std::move(seqs)}.encode(
        body);
    unicast(holder, MsgType::kFetch, body);
  }
}

void GroupEndpoint::on_fetch(ProcessId from, const FetchMsg& msg) {
  if (!view_matches(msg.old_view)) return;
  FetchReplyMsg reply;
  reply.old_view = msg.old_view;
  reply.epoch = msg.epoch;
  for (std::uint64_t s : msg.seqs) {
    auto it = msg_log_.find(s);
    if (it != msg_log_.end()) reply.msgs.push_back(it->second);
  }
  Encoder& body = scratch_body();
  reply.encode(body);
  unicast(from, MsgType::kFetchReply, body);
}

void GroupEndpoint::on_fetch_reply(const FetchReplyMsg& msg) {
  if (!flush_op_ || flush_op_->old_view != msg.old_view ||
      flush_op_->cut_sent) {
    return;
  }
  for (const OrderedMsg& m : msg.msgs) {
    msg_log_.emplace(m.seq, m);
    flush_op_->awaiting_fetch.erase(m.seq);
  }
  if (flush_op_->awaiting_fetch.empty()) send_flush_cut();
}

void GroupEndpoint::send_flush_cut() {
  PLWG_ASSERT(flush_op_.has_value());
  FlushCutMsg cut;
  cut.old_view = flush_op_->old_view;
  cut.epoch = flush_op_->epoch;
  cut.cut.assign(flush_op_->union_have.begin(), flush_op_->union_have.end());
  // Retransmit any message at least one survivor is missing.
  for (std::uint64_t s : cut.cut) {
    bool everyone_has = true;
    for (const auto& [p, have] : flush_op_->acks) {
      if (std::find(have.begin(), have.end(), s) == have.end()) {
        everyone_has = false;
        break;
      }
    }
    if (!everyone_has) {
      auto it = msg_log_.find(s);
      PLWG_ASSERT_MSG(it != msg_log_.end(), "cut content missing at initiator");
      cut.retrans.push_back(it->second);
    }
  }
  flush_op_->cut_sent = true;
  flush_op_->started_at = now();  // restart the phase timer for DONE waits
  Encoder& body = scratch_body();
  cut.encode(body);
  multicast(flush_op_->targets, MsgType::kFlushCut, body);
}

void GroupEndpoint::on_flush_cut(const FlushCutMsg& msg) {
  if (!part_flush_ || part_flush_->old_view != msg.old_view) return;
  if (!part_flush_->ack_sent) {
    maybe_send_flush_ack();
    // Without our ack the initiator's cut cannot cover our deliveries yet;
    // wait for the retried cut (the user has not confirmed Stop).
    if (!part_flush_->ack_sent) return;
  }
  deliver_cut(msg);
  if (defunct()) return;
  part_flush_->done_sent = true;
  PLWG_OBSERVE(host_.observer(), on_hwg_flush_completed(self(), gid_,
                                                        msg.old_view,
                                                        /*initiator=*/false));
  set_state(State::kStopped);
  Encoder& body = scratch_body();
  FlushDoneMsg{msg.old_view, msg.epoch, self()}.encode(body);
  unicast(part_flush_->initiator, MsgType::kFlushDone, body);
}

void GroupEndpoint::deliver_cut(const FlushCutMsg& msg) {
  for (const OrderedMsg& m : msg.retrans) msg_log_.emplace(m.seq, m);
  for (std::uint64_t s : msg.cut) {
    // Seqs at or below our stability trim were delivered here long ago and
    // then GC'd out of delivered_set_; skip them like any other duplicate.
    if (s <= trimmed_upto_ || delivered_set_.contains(s)) continue;
    auto it = msg_log_.find(s);
    PLWG_ASSERT_MSG(it != msg_log_.end(),
                    "cut message neither in log nor retransmitted");
    delivered_set_.insert(s);
    deliver_one(it->second);
    if (defunct()) return;
  }
}

void GroupEndpoint::on_flush_done(const FlushDoneMsg& msg) {
  if (!flush_op_ || flush_op_->old_view != msg.old_view ||
      !flush_op_->cut_sent) {
    answer_stale_flush_done(msg);
    return;
  }
  if (!flush_op_->targets.contains(msg.sender)) return;
  flush_op_->done.insert(msg.sender);
  if (flush_op_->done == flush_op_->targets) finish_flush_as_initiator();
}

void GroupEndpoint::finish_flush_as_initiator() {
  PLWG_ASSERT(flush_op_.has_value());
  const FlushOp op = std::move(*flush_op_);
  flush_op_.reset();
  PLWG_OBSERVE(host_.observer(), on_hwg_flush_completed(self(), gid_,
                                                        op.old_view,
                                                        /*initiator=*/true));
  if (op.for_merge) {
    merge_self_flush_complete(op.proposal);
    return;
  }
  pending_leavers_ = pending_leavers_.set_difference(op.leavers);
  if (op.leavers.contains(self())) leave_requested_ = false;
  install_and_announce(op.proposal, {op.old_view}, op.targets, op.leavers);
}

void GroupEndpoint::install_and_announce(const MemberSet& members,
                                         std::vector<ViewId> predecessors,
                                         const MemberSet& recipients,
                                         const MemberSet& departed) {
  View v;
  v.id = ViewId{self(), host_.mint_view_seq(gid_)};
  v.members = members;
  v.predecessors = std::move(predecessors);
  NewViewMsg msg{v, departed};
  Encoder& body = scratch_body();
  body.reserve(msg.encoded_size_hint());
  msg.encode(body);
  // Recipients: new members (including joiners), flush survivors (so leavers
  // learn the outcome), all via one multicast. Our own copy arrives by
  // loopback and installs the view locally.
  MemberSet all = members.set_union(recipients);
  for (ProcessId j : pending_joiners_.members()) {
    if (members.contains(j)) all.insert(j);
  }
  multicast(all, MsgType::kNewView, body);
}

// A FLUSH_DONE for a flush we are not running comes from a straggler still
// Stopped in a view we already closed: the NEW_VIEW we multicast on the
// last DONE was lost on its link, and the flush op that could have
// retransmitted it is dismantled. The straggler keeps heartbeating (so
// nobody suspects it) but is deaf to the new view's protocols — without an
// answer it is wedged forever. Re-announce the outcome: replay our view if
// it directly succeeded the one the straggler is stuck in (its NACK repair
// then backfills the backlog — stability GC stalls on a silent member, so
// the log is still complete), else eject it so the layer above rejoins
// with fresh endpoint state.
void GroupEndpoint::answer_stale_flush_done(const FlushDoneMsg& msg) {
  if (state_ != State::kActive || !has_view_ || flush_op_ ||
      msg.sender == self() || msg.old_view == view_.id) {
    return;
  }
  const auto& preds = view_.predecessors;
  const bool direct_successor =
      std::find(preds.begin(), preds.end(), msg.old_view) != preds.end();
  NewViewMsg reply{view_,
                   direct_successor ? departed_ : MemberSet{msg.sender}};
  Encoder& body = scratch_body();
  body.reserve(reply.encoded_size_hint());
  reply.encode(body);
  unicast(msg.sender, MsgType::kNewView, body);
}

void GroupEndpoint::on_new_view(const NewViewMsg& msg) {
  departed_ = departed_.set_union(msg.departed);
  if (state_ == State::kJoining) {
    if (msg.view.members.contains(self())) install_view(msg.view);
    return;
  }
  if (!has_view_) return;
  // Accept a view that succeeds ours (its predecessors include our view).
  const auto& preds = msg.view.predecessors;
  const bool succeeds_ours =
      std::find(preds.begin(), preds.end(), view_.id) != preds.end();
  if (!succeeds_ours) {
    // Eject answer to a stale FLUSH_DONE: history moved past any direct
    // successor of the view we are stuck in, so a clean late install is
    // impossible. Only a Stopped straggler obeys — an installed member
    // ignores a stray eject that raced its recovery.
    if (state_ == State::kStopped && msg.departed.contains(self())) {
      become_defunct();
    }
    return;
  }
  if (msg.view.members.contains(self())) {
    install_view(msg.view);
    known_peers_ = known_peers_.set_difference(departed_);
  } else {
    // Our departure was granted (leave) or we were excluded while wedged;
    // either way this endpoint is done. The LWG layer re-joins if needed.
    become_defunct();
  }
}

void GroupEndpoint::on_flush_reject(const FlushRejectMsg& msg) {
  if (!flush_op_ || flush_op_->old_view != msg.old_view) return;
  if (msg.suspected.contains(self())) {
    // Mutual suspicion: the rejector will never follow us. Treat it as
    // partitioned away; it will form its own view and merge probes heal the
    // split later.
    suspected_.insert(msg.sender);
    flush_op_->targets.erase(msg.sender);
    flush_op_->proposal.erase(msg.sender);
    flush_op_->acks.erase(msg.sender);
    flush_op_->done.erase(msg.sender);
    if (flush_op_->cut_sent) {
      if (flush_op_->done == flush_op_->targets) finish_flush_as_initiator();
    } else {
      flush_acks_maybe_complete();
    }
  }
  // Otherwise the rejector trusts a smaller member we suspect; keep retrying
  // (the flush timeout re-sends) until one side's failure detector converges.
}

void GroupEndpoint::flush_phase_timeout() {
  PLWG_ASSERT(flush_op_.has_value());
  flush_op_->started_at = now();
  if (flush_op_->retries < 1) {
    // First stall: benign loss — re-send the current phase message.
    flush_op_->retries++;
    if (!flush_op_->cut_sent) {
      Encoder& body = scratch_body();
      FlushReqMsg{flush_op_->old_view, flush_op_->epoch, self(),
                  flush_op_->proposal}
          .encode(body);
      multicast(flush_op_->targets, MsgType::kFlushReq, body);
    } else {
      flush_op_->cut_sent = false;
      send_flush_cut();
    }
    return;
  }
  // Second stall: suspect the non-responders and restart the view change.
  const MemberSet& expected = flush_op_->targets;
  MemberSet responded;
  if (!flush_op_->cut_sent) {
    for (const auto& [p, have] : flush_op_->acks) responded.insert(p);
  } else {
    responded = flush_op_->done;
  }
  const MemberSet stragglers = expected.set_difference(responded);
  for (ProcessId p : stragglers.members()) {
    if (p != self()) suspected_.insert(p);
  }
  const bool for_merge = flush_op_->for_merge;
  flush_op_.reset();
  PLWG_DEBUG("vsync", "p", self(), " g", gid_, " flush restart; suspected ",
             stragglers);
  initiate_view_change(for_merge);
}

}  // namespace plwg::vsync
