// GroupEndpoint partition healing: peer discovery by merge probes and the
// merge protocol that folds concurrent views of a group into one.
//
// Coordinators periodically probe every process that was ever seen in the
// group but is outside the current view. When a probe reaches a concurrent
// view, the smaller-pid coordinator leads: each constituent view flushes
// itself (preserving virtual synchrony per view), reports MERGE_FLUSHED,
// and the leader installs the union view. The merged view's `predecessors`
// carry the genealogy the naming service uses to discard obsolete mappings.
// Merges are pairwise; k concurrent views converge in O(log k) probe rounds.
#include "util/assert.hpp"
#include "util/log.hpp"
#include "vsync/group_endpoint.hpp"
#include "vsync/vsync_host.hpp"

namespace plwg::vsync {

void GroupEndpoint::send_merge_probe() {
  PLWG_ASSERT(has_view_ && is_acting_coordinator());
  const MemberSet targets =
      known_peers_.set_difference(view_.members).set_difference(departed_);
  if (targets.empty()) return;
  Encoder& body = scratch_body();
  MergeProbeMsg{view_.id, self(), view_.members}.encode(body);
  multicast(targets, MsgType::kMergeProbe, body);
}

void GroupEndpoint::on_merge_probe(const MergeProbeMsg& msg) {
  if (!has_view_) return;
  if (msg.view == view_.id) return;  // same view: nothing to merge
  known_peers_ = known_peers_.set_union(msg.members);
  known_peers_.insert(msg.sender);
  if (!is_acting_coordinator()) {
    Encoder& body = scratch_body();
    msg.encode(body);
    unicast(acting_coordinator(), MsgType::kMergeProbe, body);
    return;
  }
  if (flush_op_ || merge_leader_ || merge_follow_ ||
      state_ != State::kActive) {
    return;  // busy; the prober retries on its next period
  }
  if (self() < msg.sender) {
    begin_merge_as_leader(msg);
  } else {
    Encoder& body = scratch_body();
    MergeReplyMsg{view_.id, self(), view_.members}.encode(body);
    unicast(msg.sender, MsgType::kMergeReply, body);
  }
}

void GroupEndpoint::on_merge_reply(const MergeReplyMsg& msg) {
  if (!has_view_) return;
  if (msg.view == view_.id) return;
  known_peers_ = known_peers_.set_union(msg.members);
  known_peers_.insert(msg.sender);
  if (!is_acting_coordinator()) return;  // stale; drop
  if (flush_op_ || merge_leader_ || merge_follow_ ||
      state_ != State::kActive) {
    return;
  }
  if (self() < msg.sender) begin_merge_as_leader(msg);
}

void GroupEndpoint::begin_merge_as_leader(const MergeProbeMsg& other) {
  PLWG_ASSERT(!merge_leader_ && !flush_op_);
  MergeLeaderOp op;
  op.epoch = next_merge_epoch_++;
  op.started_at = now();
  op.parties.push_back(MergeParty{other.view, other.sender, other.members,
                                  /*flushed=*/false, MemberSet{}});
  merge_leader_ = std::move(op);
  stats_.merges_led++;
  PLWG_DEBUG("vsync", "p", self(), " g", gid_, " leads merge of ", view_.id,
             " + ", other.view);

  Encoder& body = scratch_body();
  MergeStartMsg{merge_leader_->epoch, self(), {view_.id, other.view}}.encode(
      body);
  unicast(other.sender, MsgType::kMergeStart, body);
  initiate_view_change(/*for_merge=*/true);
}

void GroupEndpoint::on_merge_start(ProcessId from, const MergeStartMsg& msg) {
  (void)from;
  if (!has_view_ || !is_acting_coordinator()) return;
  if (msg.leader >= self()) return;  // only a smaller pid may lead us
  if (flush_op_ || merge_leader_ || merge_follow_ ||
      state_ != State::kActive) {
    return;  // leader will time out and retry via the next probe
  }
  merge_follow_ = MergeFollowOp{msg.merge_epoch, msg.leader, now()};
  initiate_view_change(/*for_merge=*/true);
}

void GroupEndpoint::merge_self_flush_complete(MemberSet survivors) {
  if (merge_leader_) {
    merge_leader_->self_flushed = true;
    merge_leader_->self_survivors = std::move(survivors);
    merge_leader_maybe_install();
    return;
  }
  if (merge_follow_) {
    Encoder& body = scratch_body();
    MergeFlushedMsg{merge_follow_->epoch, view_.id, self(), survivors}.encode(
        body);
    unicast(merge_follow_->leader, MsgType::kMergeFlushed, body);
    // Remain Stopped; the leader's NEW_VIEW (whose predecessors include our
    // view id) completes the merge. The watchdog re-forms the view if the
    // leader dies.
    return;
  }
  // The merge was aborted while our flush ran: re-form our own view.
  install_and_announce(survivors, {view_.id}, survivors, MemberSet{});
}

void GroupEndpoint::on_merge_flushed(const MergeFlushedMsg& msg) {
  if (!merge_leader_ || merge_leader_->epoch != msg.merge_epoch) return;
  for (MergeParty& party : merge_leader_->parties) {
    if (party.coordinator == msg.sender) {
      party.flushed = true;
      party.survivors = msg.members;
      party.view = msg.view;  // the view actually flushed (may be newer)
      break;
    }
  }
  merge_leader_maybe_install();
}

void GroupEndpoint::merge_leader_maybe_install() {
  PLWG_ASSERT(merge_leader_.has_value());
  if (!merge_leader_->self_flushed) return;
  for (const MergeParty& party : merge_leader_->parties) {
    if (!party.flushed) return;
  }
  MemberSet members = merge_leader_->self_survivors;
  std::vector<ViewId> preds{view_.id};
  for (const MergeParty& party : merge_leader_->parties) {
    members = members.set_union(party.survivors);
    preds.push_back(party.view);
  }
  const MergeLeaderOp done = std::move(*merge_leader_);
  merge_leader_.reset();
  PLWG_DEBUG("vsync", "p", self(), " g", gid_, " merge installs ", members);
  install_and_announce(members, std::move(preds), members, MemberSet{});
  (void)done;
}

void GroupEndpoint::merge_timeout() {
  PLWG_ASSERT(merge_leader_.has_value());
  PLWG_DEBUG("vsync", "p", self(), " g", gid_, " merge timed out");
  for (const MergeParty& party : merge_leader_->parties) {
    if (party.flushed) continue;
    Encoder& body = scratch_body();
    MergeAbortMsg{merge_leader_->epoch}.encode(body);
    unicast(party.coordinator, MsgType::kMergeAbort, body);
  }
  const bool self_flushed = merge_leader_->self_flushed;
  const MemberSet survivors = merge_leader_->self_survivors;
  merge_leader_.reset();
  if (self_flushed) {
    // Our constituent flush finished; resume as a standalone view.
    install_and_announce(survivors, {view_.id}, survivors, MemberSet{});
  } else if (flush_op_ && flush_op_->for_merge) {
    flush_op_->for_merge = false;  // let the flush install normally
  }
}

void GroupEndpoint::abort_merge() {
  if (merge_leader_) merge_timeout();
}

void GroupEndpoint::on_merge_abort(const MergeAbortMsg& msg) {
  if (!merge_follow_ || merge_follow_->epoch != msg.merge_epoch) return;
  merge_follow_.reset();
  if (flush_op_ && flush_op_->for_merge) {
    flush_op_->for_merge = false;
  } else if (state_ == State::kStopped && is_acting_coordinator() &&
             !flush_op_) {
    // Already flushed for the aborted merge: re-form our own view now
    // rather than waiting for the watchdog.
    initiate_view_change(/*for_merge=*/false);
  }
}

}  // namespace plwg::vsync
