#include "vsync/vsync_host.hpp"

#include "util/assert.hpp"
#include "util/log.hpp"

namespace plwg::vsync {

namespace {
/// Host-level periodic driver period. Heartbeats, suspicion checks, batch
/// expiry etc. are all expressed as deadlines evaluated on this tick.
constexpr Duration kTickUs = 50'000;

/// Stability traffic — liveness, acknowledgement bounds, and flush votes —
/// is tagged so the transport can report how much of it piggybacked on
/// frames it shared with data instead of costing frames of its own.
transport::MsgClass class_of(MsgType type) {
  switch (type) {
    case MsgType::kNack:
    case MsgType::kHeartbeat:
    case MsgType::kFlushAck:
    case MsgType::kFlushDone:
      return transport::MsgClass::kAck;
    default:
      return transport::MsgClass::kData;
  }
}
}  // namespace

VsyncHost::VsyncHost(transport::NodeRuntime& node, VsyncConfig config,
                     durable::ProcessStore* store)
    : node_(node), config_(config), store_(store) {
  node_.register_port(transport::Port::kVsync, *this);
  node_.after(kTickUs, [this] { tick(); });
}

VsyncHost::~VsyncHost() = default;

void VsyncHost::tick() {
  // Endpoints may be created/erased during iteration; walk a snapshot of ids.
  std::vector<HwgId> ids;
  ids.reserve(endpoints_.size());
  for (const auto& [gid, ep] : endpoints_) ids.push_back(gid);
  for (HwgId gid : ids) {
    auto it = endpoints_.find(gid);
    if (it != endpoints_.end()) it->second->on_tick();
  }
  sweep_defunct();
  node_.after(kTickUs, [this] { tick(); });
}

void VsyncHost::sweep_defunct() {
  if (dispatching_) return;
  for (auto it = endpoints_.begin(); it != endpoints_.end();) {
    if (it->second->defunct()) {
      it = endpoints_.erase(it);
    } else {
      ++it;
    }
  }
}

HwgId VsyncHost::allocate_group_id() {
  std::uint32_t& counter =
      store_ != nullptr ? store_->hwg_group_counter : next_group_counter_;
  return make_hwg_id(self(), counter++);
}

void VsyncHost::create_group(HwgId gid, GroupUser& user) {
  PLWG_ASSERT_MSG(!endpoints_.contains(gid), "already a member of this group");
  auto ep = std::make_unique<GroupEndpoint>(*this, gid, user);
  GroupEndpoint* raw = ep.get();
  endpoints_.emplace(gid, std::move(ep));
  raw->create();
}

void VsyncHost::join_group(HwgId gid, const MemberSet& contacts,
                           GroupUser& user) {
  PLWG_ASSERT_MSG(!endpoints_.contains(gid), "already a member of this group");
  auto ep = std::make_unique<GroupEndpoint>(*this, gid, user);
  GroupEndpoint* raw = ep.get();
  endpoints_.emplace(gid, std::move(ep));
  raw->join(contacts);
}

void VsyncHost::leave_group(HwgId gid) {
  auto it = endpoints_.find(gid);
  if (it == endpoints_.end()) return;
  it->second->leave();
  sweep_defunct();
}

void VsyncHost::send(HwgId gid, std::vector<std::uint8_t> data) {
  auto it = endpoints_.find(gid);
  PLWG_ASSERT_MSG(it != endpoints_.end(), "send on a group we are not in");
  it->second->send(std::move(data));
}

void VsyncHost::stop_ok(HwgId gid) {
  auto it = endpoints_.find(gid);
  if (it == endpoints_.end()) return;
  it->second->stop_ok();
}

void VsyncHost::force_flush(HwgId gid) {
  auto it = endpoints_.find(gid);
  if (it == endpoints_.end()) return;
  it->second->force_flush();
}

bool VsyncHost::is_member(HwgId gid) const { return endpoints_.contains(gid); }

const View* VsyncHost::view_of(HwgId gid) const {
  auto it = endpoints_.find(gid);
  if (it == endpoints_.end() || !it->second->has_view()) return nullptr;
  return &it->second->view();
}

GroupEndpoint* VsyncHost::endpoint(HwgId gid) {
  auto it = endpoints_.find(gid);
  return it == endpoints_.end() ? nullptr : it->second.get();
}

const GroupEndpoint* VsyncHost::endpoint(HwgId gid) const {
  auto it = endpoints_.find(gid);
  return it == endpoints_.end() ? nullptr : it->second.get();
}

std::vector<HwgId> VsyncHost::groups() const {
  std::vector<HwgId> out;
  out.reserve(endpoints_.size());
  for (const auto& [gid, ep] : endpoints_) {
    if (!ep->defunct()) out.push_back(gid);
  }
  return out;
}

const Encoder& VsyncHost::frame(HwgId gid, MsgType type, const Encoder& body) {
  frame_scratch_.clear();
  frame_scratch_.reserve(9 + body.size());  // u64 gid + u8 type + body
  frame_scratch_.put_id(gid);
  frame_scratch_.put_u8(static_cast<std::uint8_t>(type));
  frame_scratch_.put_raw(body.bytes());
  return frame_scratch_;
}

void VsyncHost::send_group_msg(HwgId gid, ProcessId to, MsgType type,
                               const Encoder& body) {
  node_.send(transport::Port::kVsync, transport::node_of(to),
             frame(gid, type, body), class_of(type));
}

void VsyncHost::multicast_group_msg(HwgId gid, const MemberSet& to,
                                    MsgType type, const Encoder& body) {
  node_.multicast(transport::Port::kVsync,
                  std::span<const ProcessId>(to.members()),
                  frame(gid, type, body), class_of(type));
}

void VsyncHost::on_message(NodeId from, Decoder& dec) {
  const HwgId gid = dec.get_id<HwgId>();
  const auto type = static_cast<MsgType>(dec.get_u8());
  auto it = endpoints_.find(gid);
  if (it == endpoints_.end()) return;  // not (or no longer) in this group
  dispatching_ = true;
  it->second->on_message(transport::process_of(from), type, dec);
  dispatching_ = false;
  sweep_defunct();
}

}  // namespace plwg::vsync
