#include "vsync/messages.hpp"

namespace plwg::vsync {

namespace {

void encode_seqs(Encoder& enc, const std::vector<std::uint64_t>& seqs) {
  enc.put_u32(static_cast<std::uint32_t>(seqs.size()));
  enc.put_u64_span(seqs);
}

std::vector<std::uint64_t> decode_seqs(Decoder& dec) {
  const std::uint32_t n = dec.get_count(sizeof(std::uint64_t));
  std::vector<std::uint64_t> seqs(n);
  dec.get_u64_span(seqs);
  return seqs;
}

void encode_msgs(Encoder& enc, const std::vector<OrderedMsg>& msgs) {
  enc.put_u32(static_cast<std::uint32_t>(msgs.size()));
  for (const OrderedMsg& m : msgs) m.encode(enc);
}

std::vector<OrderedMsg> decode_msgs(Decoder& dec) {
  const std::uint32_t n = dec.get_count(24);
  std::vector<OrderedMsg> msgs;
  msgs.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) msgs.push_back(OrderedMsg::decode(dec));
  return msgs;
}

}  // namespace

void OrderedMsg::encode(Encoder& enc) const {
  enc.put_u64(seq);
  enc.put_id(origin);
  enc.put_u64(sender_msg_id);
  enc.put_bytes(payload);
}

OrderedMsg OrderedMsg::decode(Decoder& dec) {
  OrderedMsg m;
  m.seq = dec.get_u64();
  m.origin = dec.get_id<ProcessId>();
  m.sender_msg_id = dec.get_u64();
  m.payload = dec.get_bytes();
  return m;
}

void SendReqMsg::encode(Encoder& enc) const {
  view.encode(enc);
  enc.put_id(origin);
  enc.put_u64(sender_msg_id);
  enc.put_u64(first_unacked);
  enc.put_bytes(payload);
}

SendReqMsg SendReqMsg::decode(Decoder& dec) {
  SendReqMsg m;
  m.view = ViewId::decode(dec);
  m.origin = dec.get_id<ProcessId>();
  m.sender_msg_id = dec.get_u64();
  m.first_unacked = dec.get_u64();
  m.payload = dec.get_bytes();
  return m;
}

void OrderedMsgWire::encode(Encoder& enc) const {
  view.encode(enc);
  enc.put_u64(stable_upto);
  msg.encode(enc);
}

OrderedMsgWire OrderedMsgWire::decode(Decoder& dec) {
  OrderedMsgWire m;
  m.view = ViewId::decode(dec);
  m.stable_upto = dec.get_u64();
  m.msg = OrderedMsg::decode(dec);
  return m;
}

void NackMsg::encode(Encoder& enc) const {
  view.encode(enc);
  encode_seqs(enc, missing);
}

NackMsg NackMsg::decode(Decoder& dec) {
  NackMsg m;
  m.view = ViewId::decode(dec);
  m.missing = decode_seqs(dec);
  return m;
}

void HeartbeatMsg::encode(Encoder& enc) const {
  view.encode(enc);
  enc.put_id(sender);
  enc.put_u64(max_seq);
  enc.put_u64(delivered_upto);
  enc.put_u64(stable_upto);
}

HeartbeatMsg HeartbeatMsg::decode(Decoder& dec) {
  HeartbeatMsg m;
  m.view = ViewId::decode(dec);
  m.sender = dec.get_id<ProcessId>();
  m.max_seq = dec.get_u64();
  m.delivered_upto = dec.get_u64();
  m.stable_upto = dec.get_u64();
  return m;
}

void FlushReqMsg::encode(Encoder& enc) const {
  old_view.encode(enc);
  enc.put_u32(epoch);
  enc.put_id(initiator);
  proposal.encode(enc);
}

FlushReqMsg FlushReqMsg::decode(Decoder& dec) {
  FlushReqMsg m;
  m.old_view = ViewId::decode(dec);
  m.epoch = dec.get_u32();
  m.initiator = dec.get_id<ProcessId>();
  m.proposal = MemberSet::decode(dec);
  return m;
}

void FlushAckMsg::encode(Encoder& enc) const {
  old_view.encode(enc);
  enc.put_u32(epoch);
  enc.put_id(sender);
  encode_seqs(enc, have);
}

FlushAckMsg FlushAckMsg::decode(Decoder& dec) {
  FlushAckMsg m;
  m.old_view = ViewId::decode(dec);
  m.epoch = dec.get_u32();
  m.sender = dec.get_id<ProcessId>();
  m.have = decode_seqs(dec);
  return m;
}

void FlushRejectMsg::encode(Encoder& enc) const {
  old_view.encode(enc);
  enc.put_u32(epoch);
  enc.put_id(sender);
  suspected.encode(enc);
}

FlushRejectMsg FlushRejectMsg::decode(Decoder& dec) {
  FlushRejectMsg m;
  m.old_view = ViewId::decode(dec);
  m.epoch = dec.get_u32();
  m.sender = dec.get_id<ProcessId>();
  m.suspected = MemberSet::decode(dec);
  return m;
}

void FetchMsg::encode(Encoder& enc) const {
  old_view.encode(enc);
  enc.put_u32(epoch);
  encode_seqs(enc, seqs);
}

FetchMsg FetchMsg::decode(Decoder& dec) {
  FetchMsg m;
  m.old_view = ViewId::decode(dec);
  m.epoch = dec.get_u32();
  m.seqs = decode_seqs(dec);
  return m;
}

void FetchReplyMsg::encode(Encoder& enc) const {
  old_view.encode(enc);
  enc.put_u32(epoch);
  encode_msgs(enc, msgs);
}

FetchReplyMsg FetchReplyMsg::decode(Decoder& dec) {
  FetchReplyMsg m;
  m.old_view = ViewId::decode(dec);
  m.epoch = dec.get_u32();
  m.msgs = decode_msgs(dec);
  return m;
}

void FlushCutMsg::encode(Encoder& enc) const {
  old_view.encode(enc);
  enc.put_u32(epoch);
  encode_seqs(enc, cut);
  encode_msgs(enc, retrans);
}

FlushCutMsg FlushCutMsg::decode(Decoder& dec) {
  FlushCutMsg m;
  m.old_view = ViewId::decode(dec);
  m.epoch = dec.get_u32();
  m.cut = decode_seqs(dec);
  m.retrans = decode_msgs(dec);
  return m;
}

void FlushDoneMsg::encode(Encoder& enc) const {
  old_view.encode(enc);
  enc.put_u32(epoch);
  enc.put_id(sender);
}

FlushDoneMsg FlushDoneMsg::decode(Decoder& dec) {
  FlushDoneMsg m;
  m.old_view = ViewId::decode(dec);
  m.epoch = dec.get_u32();
  m.sender = dec.get_id<ProcessId>();
  return m;
}

void MergeProbeMsg::encode(Encoder& enc) const {
  view.encode(enc);
  enc.put_id(sender);
  members.encode(enc);
}

MergeProbeMsg MergeProbeMsg::decode(Decoder& dec) {
  MergeProbeMsg m;
  m.view = ViewId::decode(dec);
  m.sender = dec.get_id<ProcessId>();
  m.members = MemberSet::decode(dec);
  return m;
}

void MergeStartMsg::encode(Encoder& enc) const {
  enc.put_u32(merge_epoch);
  enc.put_id(leader);
  enc.put_u32(static_cast<std::uint32_t>(parties.size()));
  for (const ViewId& v : parties) v.encode(enc);
}

MergeStartMsg MergeStartMsg::decode(Decoder& dec) {
  MergeStartMsg m;
  m.merge_epoch = dec.get_u32();
  m.leader = dec.get_id<ProcessId>();
  const std::uint32_t n = dec.get_count(12);
  m.parties.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) m.parties.push_back(ViewId::decode(dec));
  return m;
}

void MergeFlushedMsg::encode(Encoder& enc) const {
  enc.put_u32(merge_epoch);
  view.encode(enc);
  enc.put_id(sender);
  members.encode(enc);
}

MergeFlushedMsg MergeFlushedMsg::decode(Decoder& dec) {
  MergeFlushedMsg m;
  m.merge_epoch = dec.get_u32();
  m.view = ViewId::decode(dec);
  m.sender = dec.get_id<ProcessId>();
  m.members = MemberSet::decode(dec);
  return m;
}

}  // namespace plwg::vsync
