// Small measurement toolkit used by the benchmark harnesses: latency
// recorders with percentiles, throughput accounting, and a fixed-width
// table printer for paper-style result rows.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "util/types.hpp"

namespace plwg::metrics {

class LatencyRecorder {
 public:
  void record(Duration sample_us);
  void clear() { samples_.clear(); }

  [[nodiscard]] std::size_t count() const { return samples_.size(); }
  [[nodiscard]] bool empty() const { return samples_.empty(); }
  [[nodiscard]] double mean_us() const;
  [[nodiscard]] Duration min_us() const;
  [[nodiscard]] Duration max_us() const;
  /// q in [0, 1]; nearest-rank on a sorted copy.
  [[nodiscard]] Duration percentile_us(double q) const;
  [[nodiscard]] Duration p50_us() const { return percentile_us(0.50); }
  [[nodiscard]] Duration p95_us() const { return percentile_us(0.95); }
  [[nodiscard]] Duration p99_us() const { return percentile_us(0.99); }

 private:
  std::vector<Duration> samples_;
};

/// Messages (or bytes) per second over a simulated interval.
[[nodiscard]] double rate_per_sec(std::uint64_t events, Duration interval_us);

/// Fixed-width console table, enough for reproducing the paper's figures as
/// rows of numbers.
class Table {
 public:
  explicit Table(std::vector<std::string> headers);
  void add_row(std::vector<std::string> cells);
  void print(std::ostream& os) const;

  static std::string fmt(double value, int decimals = 2);

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace plwg::metrics
