#include "metrics/stats.hpp"

#include <algorithm>
#include <cmath>
#include <ostream>
#include <sstream>

#include "util/assert.hpp"

namespace plwg::metrics {

void LatencyRecorder::record(Duration sample_us) {
  samples_.push_back(sample_us);
}

double LatencyRecorder::mean_us() const {
  if (samples_.empty()) return 0.0;
  double sum = 0;
  for (Duration s : samples_) sum += static_cast<double>(s);
  return sum / static_cast<double>(samples_.size());
}

Duration LatencyRecorder::min_us() const {
  PLWG_ASSERT(!samples_.empty());
  return *std::min_element(samples_.begin(), samples_.end());
}

Duration LatencyRecorder::max_us() const {
  PLWG_ASSERT(!samples_.empty());
  return *std::max_element(samples_.begin(), samples_.end());
}

Duration LatencyRecorder::percentile_us(double q) const {
  PLWG_ASSERT(!samples_.empty());
  PLWG_ASSERT(q >= 0.0 && q <= 1.0);
  std::vector<Duration> sorted = samples_;
  std::sort(sorted.begin(), sorted.end());
  const auto rank = static_cast<std::size_t>(
      std::ceil(q * static_cast<double>(sorted.size())));
  return sorted[rank == 0 ? 0 : rank - 1];
}

double rate_per_sec(std::uint64_t events, Duration interval_us) {
  if (interval_us <= 0) return 0.0;
  return static_cast<double>(events) * 1e6 / static_cast<double>(interval_us);
}

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {}

void Table::add_row(std::vector<std::string> cells) {
  PLWG_ASSERT(cells.size() == headers_.size());
  rows_.push_back(std::move(cells));
}

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
    for (const auto& row : rows_) widths[c] = std::max(widths[c], row[c].size());
  }
  auto print_row = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      os << "  " << cells[c];
      for (std::size_t pad = cells[c].size(); pad < widths[c]; ++pad) os << ' ';
    }
    os << "\n";
  };
  print_row(headers_);
  std::string rule;
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    rule += "  " + std::string(widths[c], '-');
  }
  os << rule << "\n";
  for (const auto& row : rows_) print_row(row);
}

std::string Table::fmt(double value, int decimals) {
  std::ostringstream os;
  os.setf(std::ios::fixed);
  os.precision(decimals);
  os << value;
  return os.str();
}

}  // namespace plwg::metrics
