#include "util/log.hpp"

#include <cstdio>
#include <string>

namespace plwg {

namespace {
const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kTrace: return "TRACE";
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO ";
    case LogLevel::kWarn: return "WARN ";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF  ";
  }
  return "?????";
}
}  // namespace

Logger& Logger::instance() {
  static Logger logger;
  return logger;
}

void Logger::write(LogLevel level, std::string_view component,
                   std::string_view msg) {
  std::lock_guard<std::mutex> lock(write_mutex_);
  std::string line;
  line.reserve(msg.size() + component.size() + 32);
  if (time_source_) {
    const Time t = time_source_();
    line += "[" + std::to_string(t) + "us] ";
  }
  line += level_name(level);
  line += " [";
  line.append(component.data(), component.size());
  line += "] ";
  line.append(msg.data(), msg.size());
  line += "\n";
  std::fputs(line.c_str(), stderr);
}

}  // namespace plwg
