// Lightweight leveled logging with a pluggable simulated-time source.
//
// The simulator installs a time provider so log lines carry simulated
// microseconds rather than wall-clock time; tests raise the threshold to
// keep output quiet.
#pragma once

#include <functional>
#include <mutex>
#include <sstream>
#include <string_view>

#include "util/types.hpp"

namespace plwg {

enum class LogLevel : int { kTrace = 0, kDebug, kInfo, kWarn, kError, kOff };

class Logger {
 public:
  static Logger& instance();

  void set_level(LogLevel level) { level_ = level; }
  [[nodiscard]] LogLevel level() const { return level_; }
  [[nodiscard]] bool enabled(LogLevel level) const { return level >= level_; }

  /// Install a function returning the current simulated time (or nullptr to
  /// drop timestamps).
  void set_time_source(std::function<Time()> source) {
    time_source_ = std::move(source);
  }

  void write(LogLevel level, std::string_view component, std::string_view msg);

 private:
  Logger() = default;
  LogLevel level_ = LogLevel::kWarn;
  std::function<Time()> time_source_;
  /// Engine worker threads log concurrently; serialize line assembly (the
  /// time source reads shared clocks) and the fputs.
  std::mutex write_mutex_;
};

namespace detail {
template <class... Args>
std::string log_format(Args&&... args) {
  std::ostringstream os;
  (os << ... << std::forward<Args>(args));
  return os.str();
}
}  // namespace detail

}  // namespace plwg

#define PLWG_LOG(level, component, ...)                                   \
  do {                                                                    \
    if (::plwg::Logger::instance().enabled(level)) {                      \
      ::plwg::Logger::instance().write(                                   \
          level, component, ::plwg::detail::log_format(__VA_ARGS__));     \
    }                                                                     \
  } while (0)

#define PLWG_TRACE(component, ...) \
  PLWG_LOG(::plwg::LogLevel::kTrace, component, __VA_ARGS__)
#define PLWG_DEBUG(component, ...) \
  PLWG_LOG(::plwg::LogLevel::kDebug, component, __VA_ARGS__)
#define PLWG_INFO(component, ...) \
  PLWG_LOG(::plwg::LogLevel::kInfo, component, __VA_ARGS__)
#define PLWG_WARN(component, ...) \
  PLWG_LOG(::plwg::LogLevel::kWarn, component, __VA_ARGS__)
#define PLWG_ERROR(component, ...) \
  PLWG_LOG(::plwg::LogLevel::kError, component, __VA_ARGS__)
