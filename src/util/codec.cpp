#include "util/codec.hpp"

namespace plwg {

void Encoder::put_bytes(std::span<const std::uint8_t> bytes) {
  put_u32(static_cast<std::uint32_t>(bytes.size()));
  buf_.insert(buf_.end(), bytes.begin(), bytes.end());
}

void Encoder::put_string(std::string_view s) {
  put_u32(static_cast<std::uint32_t>(s.size()));
  buf_.insert(buf_.end(), s.begin(), s.end());
}

std::vector<std::uint8_t> Decoder::get_bytes() {
  const std::uint32_t len = get_u32();
  require(len);
  std::vector<std::uint8_t> out(data_.begin() + static_cast<std::ptrdiff_t>(pos_),
                                data_.begin() + static_cast<std::ptrdiff_t>(pos_ + len));
  pos_ += len;
  return out;
}

std::string Decoder::get_string() {
  const std::uint32_t len = get_u32();
  require(len);
  std::string out(reinterpret_cast<const char*>(data_.data() + pos_), len);
  pos_ += len;
  return out;
}

std::uint32_t Decoder::get_count(std::size_t min_element_bytes) {
  const std::uint32_t n = get_u32();
  if (static_cast<std::uint64_t>(n) * min_element_bytes > remaining()) {
    throw CodecError("decoder: count " + std::to_string(n) +
                     " exceeds remaining input");
  }
  return n;
}

void Decoder::expect_done() const {
  if (!done()) {
    throw CodecError("decoder: " + std::to_string(remaining()) +
                     " trailing bytes");
  }
}

void Decoder::require(std::size_t n) const {
  if (remaining() < n) {
    throw CodecError("decoder: need " + std::to_string(n) + " bytes, have " +
                     std::to_string(remaining()));
  }
}

}  // namespace plwg
