#include "util/codec.hpp"

namespace plwg {

void Encoder::put_bytes(std::span<const std::uint8_t> bytes) {
  put_u32(static_cast<std::uint32_t>(bytes.size()));
  buf_.insert(buf_.end(), bytes.begin(), bytes.end());
}

void Encoder::put_string(std::string_view s) {
  put_u32(static_cast<std::uint32_t>(s.size()));
  buf_.insert(buf_.end(), s.begin(), s.end());
}

std::span<const std::uint8_t> Decoder::get_bytes_view() {
  const std::uint32_t len = get_u32();
  require(len);
  const std::span<const std::uint8_t> out = data_.subspan(pos_, len);
  pos_ += len;
  return out;
}

void Decoder::get_u64_span(std::span<std::uint64_t> out) {
  require(out.size_bytes());
  if constexpr (std::endian::native == std::endian::little) {
    std::memcpy(out.data(), data_.data() + pos_, out.size_bytes());
    pos_ += out.size_bytes();
  } else {
    for (std::uint64_t& v : out) v = get_u64();
  }
}

std::vector<std::uint8_t> Decoder::get_bytes() {
  const auto view = get_bytes_view();
  return {view.begin(), view.end()};
}

std::string Decoder::get_string() {
  const std::uint32_t len = get_u32();
  require(len);
  std::string out(reinterpret_cast<const char*>(data_.data() + pos_), len);
  pos_ += len;
  return out;
}

std::uint32_t Decoder::get_count(std::size_t min_element_bytes) {
  const std::uint32_t n = get_u32();
  // Compare by division so an enormous `min_element_bytes` can't overflow
  // the check itself; equivalent to n * min > remaining for min != 0.
  if (min_element_bytes != 0 && n > remaining() / min_element_bytes) {
    throw CodecError("decoder: count " + std::to_string(n) +
                     " exceeds remaining input");
  }
  return n;
}

void Decoder::expect_done() const {
  if (!done()) {
    throw CodecError("decoder: " + std::to_string(remaining()) +
                     " trailing bytes");
  }
}

void Decoder::require(std::size_t n) const {
  if (remaining() < n) {
    throw CodecError("decoder: need " + std::to_string(n) + " bytes, have " +
                     std::to_string(remaining()));
  }
}

}  // namespace plwg
