#include "util/json.hpp"

#include <cctype>
#include <cstdlib>

namespace plwg {

const char* JsonValue::type_name(Type t) {
  switch (t) {
    case Type::kNull: return "null";
    case Type::kBool: return "bool";
    case Type::kNumber: return "number";
    case Type::kString: return "string";
    case Type::kArray: return "array";
    case Type::kObject: return "object";
  }
  return "?";
}

namespace {
[[noreturn]] void type_mismatch(JsonValue::Type want, JsonValue::Type got) {
  throw JsonError(std::string("expected ") + JsonValue::type_name(want) +
                  ", got " + JsonValue::type_name(got));
}
}  // namespace

bool JsonValue::as_bool() const {
  if (type_ != Type::kBool) type_mismatch(Type::kBool, type_);
  return bool_;
}

double JsonValue::as_number() const {
  if (type_ != Type::kNumber) type_mismatch(Type::kNumber, type_);
  return num_;
}

const std::string& JsonValue::as_string() const {
  if (type_ != Type::kString) type_mismatch(Type::kString, type_);
  return str_;
}

const JsonValue::Array& JsonValue::as_array() const {
  if (type_ != Type::kArray) type_mismatch(Type::kArray, type_);
  return arr_;
}

const JsonValue::Object& JsonValue::as_object() const {
  if (type_ != Type::kObject) type_mismatch(Type::kObject, type_);
  return obj_;
}

const JsonValue* JsonValue::find(const std::string& key) const {
  if (type_ != Type::kObject) return nullptr;
  const auto it = obj_.find(key);
  return it == obj_.end() ? nullptr : &it->second;
}

namespace {

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  JsonValue parse_document() {
    JsonValue v = parse_value();
    skip_ws();
    if (pos_ != text_.size()) fail("trailing characters after JSON value");
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& what) const {
    std::size_t line = 1, col = 1;
    for (std::size_t i = 0; i < pos_ && i < text_.size(); ++i) {
      if (text_[i] == '\n') {
        ++line;
        col = 1;
      } else {
        ++col;
      }
    }
    throw JsonError(what + " at line " + std::to_string(line) + ", column " +
                    std::to_string(col));
  }

  [[nodiscard]] bool eof() const { return pos_ >= text_.size(); }
  [[nodiscard]] char peek() const { return text_[pos_]; }
  char take() { return text_[pos_++]; }

  void skip_ws() {
    while (!eof()) {
      const char c = peek();
      if (c == ' ' || c == '\t' || c == '\n' || c == '\r') {
        ++pos_;
      } else {
        break;
      }
    }
  }

  void expect(char c, const char* where) {
    skip_ws();
    if (eof() || peek() != c) {
      fail(std::string("expected '") + c + "' " + where);
    }
    ++pos_;
  }

  bool try_take(char c) {
    skip_ws();
    if (!eof() && peek() == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  JsonValue parse_value() {
    skip_ws();
    if (eof()) fail("unexpected end of input");
    switch (peek()) {
      case '{': return parse_object();
      case '[': return parse_array();
      case '"': return JsonValue(parse_string());
      case 't':
      case 'f': return parse_bool();
      case 'n': return parse_null();
      default: return parse_number();
    }
  }

  JsonValue parse_object() {
    expect('{', "to open object");
    JsonValue::Object obj;
    if (try_take('}')) return JsonValue(std::move(obj));
    while (true) {
      skip_ws();
      if (eof() || peek() != '"') fail("expected string key in object");
      std::string key = parse_string();
      expect(':', "after object key");
      if (obj.contains(key)) fail("duplicate key \"" + key + "\"");
      obj.emplace(std::move(key), parse_value());
      if (try_take('}')) return JsonValue(std::move(obj));
      expect(',', "between object members");
    }
  }

  JsonValue parse_array() {
    expect('[', "to open array");
    JsonValue::Array arr;
    if (try_take(']')) return JsonValue(std::move(arr));
    while (true) {
      arr.push_back(parse_value());
      if (try_take(']')) return JsonValue(std::move(arr));
      expect(',', "between array elements");
    }
  }

  std::string parse_string() {
    expect('"', "to open string");
    std::string out;
    while (true) {
      if (eof()) fail("unterminated string");
      const char c = take();
      if (c == '"') return out;
      if (static_cast<unsigned char>(c) < 0x20) {
        fail("raw control character in string");
      }
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (eof()) fail("unterminated escape in string");
      const char esc = take();
      switch (esc) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'u': {
          // \uXXXX — decoded as UTF-8; surrogate pairs are not needed by the
          // corpus and are rejected explicitly rather than mis-decoded.
          std::uint32_t cp = 0;
          for (int i = 0; i < 4; ++i) {
            if (eof() || !std::isxdigit(static_cast<unsigned char>(peek()))) {
              fail("bad \\u escape");
            }
            const char h = take();
            cp = cp * 16 +
                 static_cast<std::uint32_t>(
                     h <= '9' ? h - '0' : (h | 0x20) - 'a' + 10);
          }
          if (cp >= 0xD800 && cp <= 0xDFFF) {
            fail("surrogate \\u escapes are not supported");
          }
          if (cp < 0x80) {
            out.push_back(static_cast<char>(cp));
          } else if (cp < 0x800) {
            out.push_back(static_cast<char>(0xC0 | (cp >> 6)));
            out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
          } else {
            out.push_back(static_cast<char>(0xE0 | (cp >> 12)));
            out.push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
            out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
          }
          break;
        }
        default: fail("unknown escape in string");
      }
    }
  }

  JsonValue parse_bool() {
    if (text_.substr(pos_, 4) == "true") {
      pos_ += 4;
      return JsonValue(true);
    }
    if (text_.substr(pos_, 5) == "false") {
      pos_ += 5;
      return JsonValue(false);
    }
    fail("invalid literal");
  }

  JsonValue parse_null() {
    if (text_.substr(pos_, 4) == "null") {
      pos_ += 4;
      return JsonValue();
    }
    fail("invalid literal");
  }

  JsonValue parse_number() {
    const std::size_t start = pos_;
    if (!eof() && peek() == '-') ++pos_;
    bool digits = false;
    while (!eof() && std::isdigit(static_cast<unsigned char>(peek()))) {
      ++pos_;
      digits = true;
    }
    if (!eof() && peek() == '.') {
      ++pos_;
      while (!eof() && std::isdigit(static_cast<unsigned char>(peek()))) {
        ++pos_;
        digits = true;
      }
    }
    if (!eof() && (peek() == 'e' || peek() == 'E')) {
      ++pos_;
      if (!eof() && (peek() == '+' || peek() == '-')) ++pos_;
      bool exp_digits = false;
      while (!eof() && std::isdigit(static_cast<unsigned char>(peek()))) {
        ++pos_;
        exp_digits = true;
      }
      if (!exp_digits) fail("malformed exponent");
    }
    if (!digits) fail("malformed number");
    const std::string token(text_.substr(start, pos_ - start));
    return JsonValue(std::strtod(token.c_str(), nullptr));
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

}  // namespace

JsonValue json_parse(std::string_view text) {
  return Parser(text).parse_document();
}

}  // namespace plwg
