// Strong identifier types shared by all PLWG layers.
//
// Each layer of the system names a different kind of entity: simulator
// nodes, group member processes, heavy-weight groups, light-weight groups.
// Mixing them up is a classic source of protocol bugs, so each gets its own
// non-convertible type built on StrongId.
#pragma once

#include <compare>
#include <cstdint>
#include <functional>
#include <limits>
#include <ostream>

namespace plwg {

/// Simulated time in microseconds since the start of the run.
using Time = std::int64_t;

/// Duration in microseconds (same representation as Time; kept as an alias
/// for readability in interfaces).
using Duration = std::int64_t;

inline constexpr Time kTimeMax = std::numeric_limits<Time>::max();

/// A strongly-typed integral identifier. `Tag` makes distinct instantiations
/// non-convertible; `Rep` is the underlying representation.
template <class Tag, class Rep = std::uint32_t>
class StrongId {
 public:
  using rep_type = Rep;

  constexpr StrongId() = default;
  constexpr explicit StrongId(Rep value) : value_(value) {}

  [[nodiscard]] constexpr Rep value() const { return value_; }
  [[nodiscard]] constexpr bool valid() const { return value_ != kInvalid; }

  static constexpr StrongId invalid() { return StrongId{}; }

  friend constexpr auto operator<=>(StrongId, StrongId) = default;

 private:
  static constexpr Rep kInvalid = std::numeric_limits<Rep>::max();
  Rep value_ = kInvalid;
};

template <class Tag, class Rep>
std::ostream& operator<<(std::ostream& os, StrongId<Tag, Rep> id) {
  if (!id.valid()) return os << "<invalid>";
  return os << id.value();
}

/// A node in the simulated network (one per simulated host).
using NodeId = StrongId<struct NodeIdTag>;

/// An application process that participates in groups. In this simulation
/// processes map 1:1 onto nodes, but the two name different roles: NodeId is
/// a network address, ProcessId is a group-membership identity.
using ProcessId = StrongId<struct ProcessIdTag>;

/// A heavy-weight (virtually synchronous) group.
using HwgId = StrongId<struct HwgIdTag, std::uint64_t>;

/// A light-weight (user-level) group.
using LwgId = StrongId<struct LwgIdTag, std::uint64_t>;

}  // namespace plwg

namespace std {
template <class Tag, class Rep>
struct hash<plwg::StrongId<Tag, Rep>> {
  size_t operator()(plwg::StrongId<Tag, Rep> id) const noexcept {
    return std::hash<Rep>{}(id.value());
  }
};
}  // namespace std
