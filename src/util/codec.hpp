// Bounds-checked binary encoder/decoder used for every wire message.
//
// Protocol messages are serialized to byte vectors before entering the
// simulated network so that (a) message sizes are real and can be charged
// against link bandwidth, and (b) decoding exercises the same validation a
// networked deployment would need.
//
// Format: fixed-width little-endian integers, length-prefixed byte strings.
// Fixed-width fields use single bounds-checked memcpys on little-endian
// hosts (the byte-shift fallback keeps big-endian hosts correct), and the
// Encoder supports capacity pre-reservation plus clear-and-reuse so hot
// send paths serialize into one recycled buffer.
#pragma once

#include <bit>
#include <cstdint>
#include <cstring>
#include <span>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

#include "util/types.hpp"

// Feature-test macro for the memcpy fast paths + size-hint API; benches use
// it so one source file measures both the pre- and post-overhaul codec.
#define PLWG_CODEC_FAST 1

namespace plwg {

/// Thrown by Decoder when the input is truncated or malformed.
class CodecError : public std::runtime_error {
 public:
  explicit CodecError(const std::string& what) : std::runtime_error(what) {}
};

class Encoder {
 public:
  Encoder() = default;

  void put_u8(std::uint8_t v) { buf_.push_back(v); }
  void put_u16(std::uint16_t v) { put_le(v); }
  void put_u32(std::uint32_t v) { put_le(v); }
  void put_u64(std::uint64_t v) { put_le(v); }
  void put_i64(std::int64_t v) { put_le(static_cast<std::uint64_t>(v)); }
  void put_bool(bool v) { put_u8(v ? 1 : 0); }

  template <class Tag, class Rep>
  void put_id(StrongId<Tag, Rep> id) {
    if constexpr (sizeof(Rep) == 4) {
      put_u32(id.value());
    } else {
      put_u64(id.value());
    }
  }

  /// Length-prefixed (u32) raw bytes.
  void put_bytes(std::span<const std::uint8_t> bytes);
  void put_string(std::string_view s);
  /// Unprefixed raw append (for message framing).
  void put_raw(std::span<const std::uint8_t> bytes) {
    buf_.insert(buf_.end(), bytes.begin(), bytes.end());
  }

  /// Bulk little-endian u64 append (no count prefix — callers write their
  /// own): one memcpy instead of a per-element encode loop, for the
  /// seq-list messages (ACK have-lists, NACK missing-lists) whose bodies
  /// are mostly such arrays.
  void put_u64_span(std::span<const std::uint64_t> vs) {
    if constexpr (std::endian::native == std::endian::little) {
      const std::size_t off = buf_.size();
      buf_.resize(off + vs.size_bytes());
      std::memcpy(buf_.data() + off, vs.data(), vs.size_bytes());
    } else {
      for (std::uint64_t v : vs) put_u64(v);
    }
  }

  /// Pre-size the buffer (pair with the messages' encoded_size_hint()) so a
  /// whole message serializes without intermediate reallocation.
  void reserve(std::size_t n) { buf_.reserve(n); }
  /// Reusable-buffer mode: drop the contents but keep the capacity, so a
  /// long-lived scratch Encoder serializes every message allocation-free
  /// once it has grown to the working-set message size.
  void clear() { buf_.clear(); }

  [[nodiscard]] const std::vector<std::uint8_t>& bytes() const { return buf_; }
  [[nodiscard]] std::vector<std::uint8_t> take() { return std::move(buf_); }
  [[nodiscard]] std::size_t size() const { return buf_.size(); }

 private:
  template <class T>
  void put_le(T v) {
    if constexpr (std::endian::native == std::endian::little) {
      const std::size_t off = buf_.size();
      buf_.resize(off + sizeof(T));
      std::memcpy(buf_.data() + off, &v, sizeof(T));
    } else {
      for (std::size_t i = 0; i < sizeof(T); ++i) {
        buf_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
      }
    }
  }

  std::vector<std::uint8_t> buf_;
};

class Decoder {
 public:
  explicit Decoder(std::span<const std::uint8_t> data) : data_(data) {}

  [[nodiscard]] std::uint8_t get_u8() { return get_le<std::uint8_t>(); }
  [[nodiscard]] std::uint16_t get_u16() { return get_le<std::uint16_t>(); }
  [[nodiscard]] std::uint32_t get_u32() { return get_le<std::uint32_t>(); }
  [[nodiscard]] std::uint64_t get_u64() { return get_le<std::uint64_t>(); }
  [[nodiscard]] std::int64_t get_i64() {
    return static_cast<std::int64_t>(get_le<std::uint64_t>());
  }
  [[nodiscard]] bool get_bool() { return get_u8() != 0; }

  template <class Id>
  [[nodiscard]] Id get_id() {
    using Rep = typename Id::rep_type;
    if constexpr (sizeof(Rep) == 4) {
      return Id{get_u32()};
    } else {
      return Id{get_u64()};
    }
  }

  [[nodiscard]] std::vector<std::uint8_t> get_bytes();
  /// Bulk little-endian u64 read into `out` (counterpart of
  /// Encoder::put_u64_span; the caller has already read and validated the
  /// element count). Throws CodecError if fewer than `out.size()` elements
  /// remain.
  void get_u64_span(std::span<std::uint64_t> out);
  /// Zero-copy variant of get_bytes(): the returned span aliases the input
  /// buffer, valid only as long as the buffer the Decoder was built over.
  /// Payload passthrough paths (e.g. LWG DATA) use this to hand the user
  /// the bytes without an intermediate copy.
  [[nodiscard]] std::span<const std::uint8_t> get_bytes_view();
  [[nodiscard]] std::string get_string();

  /// Reads a u32 element count and validates it against the remaining
  /// input (each element needs at least `min_element_bytes`), so malformed
  /// counts throw instead of driving huge allocations. A zero
  /// `min_element_bytes` skips validation (for genuinely zero-size
  /// elements); callers then bound the loop themselves.
  [[nodiscard]] std::uint32_t get_count(std::size_t min_element_bytes = 1);

  [[nodiscard]] std::size_t remaining() const { return data_.size() - pos_; }
  [[nodiscard]] bool done() const { return remaining() == 0; }

  /// Throws CodecError unless all input was consumed. Call at the end of a
  /// message decode to catch trailing-garbage bugs.
  void expect_done() const;

 private:
  template <class T>
  T get_le() {
    require(sizeof(T));
    T v;
    if constexpr (std::endian::native == std::endian::little) {
      std::memcpy(&v, data_.data() + pos_, sizeof(T));
    } else {
      v = 0;
      for (std::size_t i = 0; i < sizeof(T); ++i) {
        v = static_cast<T>(v | (static_cast<T>(data_[pos_ + i]) << (8 * i)));
      }
    }
    pos_ += sizeof(T);
    return v;
  }

  void require(std::size_t n) const;

  std::span<const std::uint8_t> data_;
  std::size_t pos_ = 0;
};

}  // namespace plwg
