// Bounds-checked binary encoder/decoder used for every wire message.
//
// Protocol messages are serialized to byte vectors before entering the
// simulated network so that (a) message sizes are real and can be charged
// against link bandwidth, and (b) decoding exercises the same validation a
// networked deployment would need.
//
// Format: fixed-width little-endian integers, length-prefixed byte strings.
#pragma once

#include <cstdint>
#include <cstring>
#include <span>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

#include "util/types.hpp"

namespace plwg {

/// Thrown by Decoder when the input is truncated or malformed.
class CodecError : public std::runtime_error {
 public:
  explicit CodecError(const std::string& what) : std::runtime_error(what) {}
};

class Encoder {
 public:
  Encoder() = default;

  void put_u8(std::uint8_t v) { buf_.push_back(v); }
  void put_u16(std::uint16_t v) { put_le(v); }
  void put_u32(std::uint32_t v) { put_le(v); }
  void put_u64(std::uint64_t v) { put_le(v); }
  void put_i64(std::int64_t v) { put_le(static_cast<std::uint64_t>(v)); }
  void put_bool(bool v) { put_u8(v ? 1 : 0); }

  template <class Tag, class Rep>
  void put_id(StrongId<Tag, Rep> id) {
    if constexpr (sizeof(Rep) == 4) {
      put_u32(id.value());
    } else {
      put_u64(id.value());
    }
  }

  /// Length-prefixed (u32) raw bytes.
  void put_bytes(std::span<const std::uint8_t> bytes);
  void put_string(std::string_view s);
  /// Unprefixed raw append (for message framing).
  void put_raw(std::span<const std::uint8_t> bytes) {
    buf_.insert(buf_.end(), bytes.begin(), bytes.end());
  }

  [[nodiscard]] const std::vector<std::uint8_t>& bytes() const { return buf_; }
  [[nodiscard]] std::vector<std::uint8_t> take() { return std::move(buf_); }
  [[nodiscard]] std::size_t size() const { return buf_.size(); }

 private:
  template <class T>
  void put_le(T v) {
    for (std::size_t i = 0; i < sizeof(T); ++i) {
      buf_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
    }
  }

  std::vector<std::uint8_t> buf_;
};

class Decoder {
 public:
  explicit Decoder(std::span<const std::uint8_t> data) : data_(data) {}

  [[nodiscard]] std::uint8_t get_u8() { return get_le<std::uint8_t>(); }
  [[nodiscard]] std::uint16_t get_u16() { return get_le<std::uint16_t>(); }
  [[nodiscard]] std::uint32_t get_u32() { return get_le<std::uint32_t>(); }
  [[nodiscard]] std::uint64_t get_u64() { return get_le<std::uint64_t>(); }
  [[nodiscard]] std::int64_t get_i64() {
    return static_cast<std::int64_t>(get_le<std::uint64_t>());
  }
  [[nodiscard]] bool get_bool() { return get_u8() != 0; }

  template <class Id>
  [[nodiscard]] Id get_id() {
    using Rep = typename Id::rep_type;
    if constexpr (sizeof(Rep) == 4) {
      return Id{get_u32()};
    } else {
      return Id{get_u64()};
    }
  }

  [[nodiscard]] std::vector<std::uint8_t> get_bytes();
  [[nodiscard]] std::string get_string();

  /// Reads a u32 element count and validates it against the remaining
  /// input (each element needs at least `min_element_bytes`), so malformed
  /// counts throw instead of driving huge allocations.
  [[nodiscard]] std::uint32_t get_count(std::size_t min_element_bytes = 1);

  [[nodiscard]] std::size_t remaining() const { return data_.size() - pos_; }
  [[nodiscard]] bool done() const { return remaining() == 0; }

  /// Throws CodecError unless all input was consumed. Call at the end of a
  /// message decode to catch trailing-garbage bugs.
  void expect_done() const;

 private:
  template <class T>
  T get_le() {
    require(sizeof(T));
    T v = 0;
    for (std::size_t i = 0; i < sizeof(T); ++i) {
      v = static_cast<T>(v | (static_cast<T>(data_[pos_ + i]) << (8 * i)));
    }
    pos_ += sizeof(T);
    return v;
  }

  void require(std::size_t n) const;

  std::span<const std::uint8_t> data_;
  std::size_t pos_ = 0;
};

}  // namespace plwg
