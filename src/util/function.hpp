// Move-only `void()` callable with a large small-buffer optimization.
//
// The event loop schedules millions of closures per experiment, and the
// typical protocol closure captures `this`, a shared packet buffer, and a
// couple of ids — 24–40 bytes, past the 16-byte inline buffer mainstream
// std::function ABIs offer, so every schedule would heap-allocate. This
// type keeps a 48-byte inline buffer (and is move-only, so captured
// shared_ptrs move instead of ref-bumping) to make scheduling
// allocation-free for all hot-path closures.
#pragma once

#include <cstddef>
#include <cstring>
#include <memory>
#include <new>
#include <type_traits>
#include <utility>

namespace plwg {

class UniqueFunction {
  // Sized for the simulator's delivery closures; measured, not guessed —
  // see docs/TUNING.md "Hot paths & allocation discipline".
  static constexpr std::size_t kInlineSize = 48;
  static constexpr std::size_t kInlineAlign = alignof(std::max_align_t);

 public:
  UniqueFunction() = default;
  UniqueFunction(std::nullptr_t) {}  // NOLINT(google-explicit-constructor)

  template <class F,
            class D = std::decay_t<F>,
            class = std::enable_if_t<!std::is_same_v<D, UniqueFunction> &&
                                     std::is_invocable_r_v<void, D&>>>
  UniqueFunction(F&& f) {  // NOLINT(google-explicit-constructor)
    if constexpr (kFitsInline<D>) {
      ::new (static_cast<void*>(storage_)) D(std::forward<F>(f));
      vtable_ = &kInlineVTable<D>;
    } else {
      ::new (static_cast<void*>(storage_)) D*(new D(std::forward<F>(f)));
      vtable_ = &kHeapVTable<D>;
    }
  }

  UniqueFunction(UniqueFunction&& other) noexcept : vtable_(other.vtable_) {
    if (vtable_ != nullptr) {
      vtable_->relocate(other.storage_, storage_);
      other.vtable_ = nullptr;
    }
  }

  UniqueFunction& operator=(UniqueFunction&& other) noexcept {
    if (this != &other) {
      reset();
      vtable_ = other.vtable_;
      if (vtable_ != nullptr) {
        vtable_->relocate(other.storage_, storage_);
        other.vtable_ = nullptr;
      }
    }
    return *this;
  }

  UniqueFunction& operator=(std::nullptr_t) {
    reset();
    return *this;
  }

  /// Converting assignment constructs the callable in place, so hot paths
  /// that store into a long-lived slot (e.g. the simulator slab) skip the
  /// extra relocate a construct-then-move-assign would cost.
  template <class F,
            class D = std::decay_t<F>,
            class = std::enable_if_t<!std::is_same_v<D, UniqueFunction> &&
                                     !std::is_same_v<D, std::nullptr_t> &&
                                     std::is_invocable_r_v<void, D&>>>
  UniqueFunction& operator=(F&& f) {
    reset();
    if constexpr (kFitsInline<D>) {
      ::new (static_cast<void*>(storage_)) D(std::forward<F>(f));
      vtable_ = &kInlineVTable<D>;
    } else {
      ::new (static_cast<void*>(storage_)) D*(new D(std::forward<F>(f)));
      vtable_ = &kHeapVTable<D>;
    }
    return *this;
  }

  UniqueFunction(const UniqueFunction&) = delete;
  UniqueFunction& operator=(const UniqueFunction&) = delete;

  ~UniqueFunction() { reset(); }

  void operator()() { vtable_->invoke(storage_); }

  /// Invoke, then destroy the target in place, leaving this empty — one
  /// indirect call instead of move-out + invoke + destroy. The caller must
  /// guarantee the storage stays valid for the duration of the call (the
  /// simulator's slab slots are stable and not reused mid-callback).
  void invoke_consume() {
    const VTable* vt = vtable_;
    vtable_ = nullptr;
    vt->consume(storage_);
  }

  [[nodiscard]] explicit operator bool() const { return vtable_ != nullptr; }

 private:
  struct VTable {
    void (*invoke)(void* storage);
    // Move-construct into `dst` and destroy `src` (both raw buffers).
    void (*relocate)(void* src, void* dst) noexcept;
    void (*destroy)(void* storage) noexcept;
    // Invoke then destroy in place (destroys even if the call throws).
    void (*consume)(void* storage);
  };

  template <class F>
  static constexpr bool kFitsInline =
      sizeof(F) <= kInlineSize && alignof(F) <= kInlineAlign &&
      std::is_nothrow_move_constructible_v<F>;

  template <class F>
  static F* inline_ptr(void* storage) {
    return std::launder(static_cast<F*>(storage));
  }

  template <class F>
  static F* heap_ptr(void* storage) {
    F* p;
    std::memcpy(&p, storage, sizeof(p));
    return p;
  }

  template <class F>
  static constexpr VTable kInlineVTable = {
      [](void* s) { (*inline_ptr<F>(s))(); },
      [](void* src, void* dst) noexcept {
        F* f = inline_ptr<F>(src);
        ::new (dst) F(std::move(*f));
        f->~F();
      },
      [](void* s) noexcept { inline_ptr<F>(s)->~F(); },
      [](void* s) {
        F* f = inline_ptr<F>(s);
        struct Guard {
          F* f;
          ~Guard() { f->~F(); }
        } guard{f};
        (*f)();
      },
  };

  template <class F>
  static constexpr VTable kHeapVTable = {
      [](void* s) { (*heap_ptr<F>(s))(); },
      [](void* src, void* dst) noexcept {
        std::memcpy(dst, src, sizeof(F*));
      },
      [](void* s) noexcept { delete heap_ptr<F>(s); },
      [](void* s) { std::unique_ptr<F>{heap_ptr<F>(s)}->operator()(); },
  };

  void reset() noexcept {
    if (vtable_ != nullptr) {
      vtable_->destroy(storage_);
      vtable_ = nullptr;
    }
  }

  alignas(kInlineAlign) unsigned char storage_[kInlineSize];
  const VTable* vtable_ = nullptr;
};

}  // namespace plwg
