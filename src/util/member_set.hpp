// MemberSet: an ordered set of process ids with the set algebra the
// light-weight-group mapping heuristics (paper Fig. 1) are written in:
// intersection size, subset tests, "minority" and "closeness" predicates.
//
// Stored as a sorted unique vector: group memberships are small (tens of
// processes), iterated often, and compared constantly, so a flat
// representation beats node-based sets in both time and clarity.
#pragma once

#include <initializer_list>
#include <ostream>
#include <span>
#include <vector>

#include "util/codec.hpp"
#include "util/types.hpp"

namespace plwg {

class MemberSet {
 public:
  MemberSet() = default;
  MemberSet(std::initializer_list<ProcessId> members);
  explicit MemberSet(std::vector<ProcessId> members);

  [[nodiscard]] bool contains(ProcessId p) const;
  /// Returns true if the member was inserted (false if already present).
  bool insert(ProcessId p);
  /// Returns true if the member was removed (false if absent).
  bool erase(ProcessId p);

  [[nodiscard]] std::size_t size() const { return members_.size(); }
  [[nodiscard]] bool empty() const { return members_.empty(); }
  [[nodiscard]] const std::vector<ProcessId>& members() const {
    return members_;
  }

  /// The deterministic coordinator choice: smallest process id.
  [[nodiscard]] ProcessId min_member() const;

  [[nodiscard]] MemberSet set_union(const MemberSet& other) const;
  [[nodiscard]] MemberSet set_intersection(const MemberSet& other) const;
  [[nodiscard]] MemberSet set_difference(const MemberSet& other) const;
  [[nodiscard]] std::size_t intersection_size(const MemberSet& other) const;
  [[nodiscard]] bool is_subset_of(const MemberSet& other) const;

  /// Paper Fig. 1 "minority": this ⊆ other and |this| <= |other| / k_m.
  [[nodiscard]] bool is_minority_of(const MemberSet& other, double k_m) const;

  /// Paper Fig. 1 "closeness": this ⊆ other and
  /// |other| - |this| <= |other| / k_c.
  [[nodiscard]] bool is_close_to(const MemberSet& other, double k_c) const;

  void encode(Encoder& enc) const;
  static MemberSet decode(Decoder& dec);
  /// Exact encode() output size, for Encoder::reserve().
  [[nodiscard]] std::size_t encoded_size() const {
    return 4 + 4 * members_.size();
  }

  friend bool operator==(const MemberSet&, const MemberSet&) = default;

  [[nodiscard]] std::string to_string() const;

 private:
  std::vector<ProcessId> members_;  // sorted, unique
};

std::ostream& operator<<(std::ostream& os, const MemberSet& set);

}  // namespace plwg
