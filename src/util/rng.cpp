#include "util/rng.hpp"

#include <cmath>

#include "util/assert.hpp"

namespace plwg {

std::uint64_t splitmix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

namespace {
inline std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}
}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& s : s_) s = splitmix64(sm);
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(s_[0] + s_[3], 23) + s_[0];
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

std::uint64_t Rng::next_below(std::uint64_t bound) {
  PLWG_ASSERT(bound > 0);
  // Lemire rejection sampling: unbiased without division in the common case.
  std::uint64_t x = next_u64();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  auto lo = static_cast<std::uint64_t>(m);
  if (lo < bound) {
    const std::uint64_t threshold = -bound % bound;
    while (lo < threshold) {
      x = next_u64();
      m = static_cast<__uint128_t>(x) * bound;
      lo = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

std::int64_t Rng::next_range(std::int64_t lo, std::int64_t hi) {
  PLWG_ASSERT(lo <= hi);
  const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
  return lo + static_cast<std::int64_t>(next_below(span));
}

double Rng::next_double() {
  // 53 random mantissa bits.
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

bool Rng::next_bool(double p_true) { return next_double() < p_true; }

double Rng::next_exponential(double mean) {
  PLWG_ASSERT(mean > 0);
  double u;
  do {
    u = next_double();
  } while (u <= 0.0);
  return -mean * std::log(u);
}

Rng Rng::fork() { return Rng{next_u64()}; }

}  // namespace plwg
