// Assertion helpers used across the PLWG library.
//
// PLWG_ASSERT is active in all build types: protocol state machines in this
// library rely on internal invariants whose violation indicates a bug, and
// the simulated experiments must never silently continue past one.
#pragma once

#include <cstdio>
#include <cstdlib>

namespace plwg {

[[noreturn]] inline void assert_fail(const char* expr, const char* file,
                                     int line, const char* msg) {
  std::fprintf(stderr, "PLWG assertion failed: %s\n  at %s:%d\n  %s\n", expr,
               file, line, msg ? msg : "");
  std::abort();
}

}  // namespace plwg

#define PLWG_ASSERT(expr)                                        \
  do {                                                           \
    if (!(expr)) ::plwg::assert_fail(#expr, __FILE__, __LINE__, nullptr); \
  } while (0)

#define PLWG_ASSERT_MSG(expr, msg)                            \
  do {                                                        \
    if (!(expr)) ::plwg::assert_fail(#expr, __FILE__, __LINE__, msg); \
  } while (0)
