#include "util/member_set.hpp"

#include <algorithm>
#include <sstream>

#include "util/assert.hpp"

namespace plwg {

MemberSet::MemberSet(std::initializer_list<ProcessId> members)
    : MemberSet(std::vector<ProcessId>(members)) {}

MemberSet::MemberSet(std::vector<ProcessId> members)
    : members_(std::move(members)) {
  std::sort(members_.begin(), members_.end());
  members_.erase(std::unique(members_.begin(), members_.end()),
                 members_.end());
}

bool MemberSet::contains(ProcessId p) const {
  return std::binary_search(members_.begin(), members_.end(), p);
}

bool MemberSet::insert(ProcessId p) {
  auto it = std::lower_bound(members_.begin(), members_.end(), p);
  if (it != members_.end() && *it == p) return false;
  members_.insert(it, p);
  return true;
}

bool MemberSet::erase(ProcessId p) {
  auto it = std::lower_bound(members_.begin(), members_.end(), p);
  if (it == members_.end() || *it != p) return false;
  members_.erase(it);
  return true;
}

ProcessId MemberSet::min_member() const {
  PLWG_ASSERT_MSG(!members_.empty(), "min_member of empty set");
  return members_.front();
}

MemberSet MemberSet::set_union(const MemberSet& other) const {
  std::vector<ProcessId> out;
  out.reserve(members_.size() + other.members_.size());
  std::set_union(members_.begin(), members_.end(), other.members_.begin(),
                 other.members_.end(), std::back_inserter(out));
  MemberSet result;
  result.members_ = std::move(out);
  return result;
}

MemberSet MemberSet::set_intersection(const MemberSet& other) const {
  std::vector<ProcessId> out;
  std::set_intersection(members_.begin(), members_.end(),
                        other.members_.begin(), other.members_.end(),
                        std::back_inserter(out));
  MemberSet result;
  result.members_ = std::move(out);
  return result;
}

MemberSet MemberSet::set_difference(const MemberSet& other) const {
  std::vector<ProcessId> out;
  std::set_difference(members_.begin(), members_.end(), other.members_.begin(),
                      other.members_.end(), std::back_inserter(out));
  MemberSet result;
  result.members_ = std::move(out);
  return result;
}

std::size_t MemberSet::intersection_size(const MemberSet& other) const {
  std::size_t count = 0;
  auto a = members_.begin();
  auto b = other.members_.begin();
  while (a != members_.end() && b != other.members_.end()) {
    if (*a < *b) {
      ++a;
    } else if (*b < *a) {
      ++b;
    } else {
      ++count;
      ++a;
      ++b;
    }
  }
  return count;
}

bool MemberSet::is_subset_of(const MemberSet& other) const {
  return std::includes(other.members_.begin(), other.members_.end(),
                       members_.begin(), members_.end());
}

bool MemberSet::is_minority_of(const MemberSet& other, double k_m) const {
  PLWG_ASSERT(k_m > 0);
  if (!is_subset_of(other)) return false;
  return static_cast<double>(size()) <=
         static_cast<double>(other.size()) / k_m;
}

bool MemberSet::is_close_to(const MemberSet& other, double k_c) const {
  PLWG_ASSERT(k_c > 0);
  if (!is_subset_of(other)) return false;
  const double gap = static_cast<double>(other.size() - size());
  return gap <= static_cast<double>(other.size()) / k_c;
}

void MemberSet::encode(Encoder& enc) const {
  enc.put_u32(static_cast<std::uint32_t>(members_.size()));
  for (ProcessId p : members_) enc.put_id(p);
}

MemberSet MemberSet::decode(Decoder& dec) {
  const std::uint32_t n = dec.get_count(sizeof(std::uint32_t));
  std::vector<ProcessId> members;
  members.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    members.push_back(dec.get_id<ProcessId>());
  }
  return MemberSet{std::move(members)};
}

std::string MemberSet::to_string() const {
  std::ostringstream os;
  os << *this;
  return os.str();
}

std::ostream& operator<<(std::ostream& os, const MemberSet& set) {
  os << "{";
  bool first = true;
  for (ProcessId p : set.members()) {
    if (!first) os << ",";
    os << p;
    first = false;
  }
  return os << "}";
}

}  // namespace plwg
