// Deterministic pseudo-random number generation.
//
// Experiments must be bit-for-bit reproducible across runs and platforms,
// so the library carries its own generator (xoshiro256++ seeded through
// splitmix64) instead of relying on implementation-defined std::mt19937
// distributions.
#pragma once

#include <cstdint>

namespace plwg {

/// splitmix64: used to stretch a single seed into generator state.
[[nodiscard]] std::uint64_t splitmix64(std::uint64_t& state);

/// xoshiro256++ deterministic PRNG with convenience distributions.
class Rng {
 public:
  explicit Rng(std::uint64_t seed);

  /// Uniform 64-bit value.
  [[nodiscard]] std::uint64_t next_u64();

  /// Uniform integer in [0, bound) using Lemire's multiply-shift rejection.
  [[nodiscard]] std::uint64_t next_below(std::uint64_t bound);

  /// Uniform integer in [lo, hi] inclusive.
  [[nodiscard]] std::int64_t next_range(std::int64_t lo, std::int64_t hi);

  /// Uniform double in [0, 1).
  [[nodiscard]] double next_double();

  /// Bernoulli trial.
  [[nodiscard]] bool next_bool(double p_true);

  /// Exponentially distributed value with the given mean (> 0).
  [[nodiscard]] double next_exponential(double mean);

  /// Derive an independent child generator (e.g., one per simulated node).
  [[nodiscard]] Rng fork();

 private:
  std::uint64_t s_[4];
};

}  // namespace plwg
