// Compile-out knob for the protocol-oracle observer hooks.
//
// The vsync/lwg/names layers report protocol events (view installed,
// message delivered, mapping written, ...) through per-layer observer
// interfaces so the cross-node ProtocolOracle (src/oracle/) can check the
// DESIGN.md Sect. 6 invariants online. Hook sites sit on hot paths
// (deliver_one, handle_data), so builds that measure the protocol itself
// (the Fig. 2 benches) can compile every site down to nothing with
// `cmake -DPLWG_ORACLE=OFF` (which defines PLWG_ORACLE_DISABLED).
#pragma once

#ifdef PLWG_ORACLE_DISABLED
#define PLWG_OBSERVE(observer_ptr, call) \
  do {                                   \
  } while (false)
#else
#define PLWG_OBSERVE(observer_ptr, call)    \
  do {                                      \
    if (auto* plwg_obs_ = (observer_ptr)) { \
      plwg_obs_->call;                      \
    }                                       \
  } while (false)
#endif
