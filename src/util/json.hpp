// Minimal JSON for the scenario DSL: a recursive-descent parser producing a
// JsonValue tree, with line/column-annotated parse errors. Deliberately
// small — objects, arrays, strings (with escapes), numbers, booleans, null —
// because the container bakes in no JSON dependency and the corpus files are
// hand-written. Not a streaming parser; scenario files are a few KB.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

namespace plwg {

/// Thrown on malformed input; the message carries line:column context.
class JsonError : public std::runtime_error {
 public:
  explicit JsonError(const std::string& what) : std::runtime_error(what) {}
};

class JsonValue {
 public:
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };
  using Array = std::vector<JsonValue>;
  /// std::map keeps keys ordered — iteration order is deterministic, which
  /// matters for error reporting and round-trip tests.
  using Object = std::map<std::string, JsonValue>;

  JsonValue() = default;
  explicit JsonValue(bool b) : type_(Type::kBool), bool_(b) {}
  explicit JsonValue(double d) : type_(Type::kNumber), num_(d) {}
  explicit JsonValue(std::string s)
      : type_(Type::kString), str_(std::move(s)) {}
  explicit JsonValue(Array a) : type_(Type::kArray), arr_(std::move(a)) {}
  explicit JsonValue(Object o) : type_(Type::kObject), obj_(std::move(o)) {}

  [[nodiscard]] Type type() const { return type_; }
  [[nodiscard]] bool is_null() const { return type_ == Type::kNull; }
  [[nodiscard]] bool is_bool() const { return type_ == Type::kBool; }
  [[nodiscard]] bool is_number() const { return type_ == Type::kNumber; }
  [[nodiscard]] bool is_string() const { return type_ == Type::kString; }
  [[nodiscard]] bool is_array() const { return type_ == Type::kArray; }
  [[nodiscard]] bool is_object() const { return type_ == Type::kObject; }
  [[nodiscard]] static const char* type_name(Type t);

  // Checked accessors: throw JsonError naming the actual type on mismatch.
  [[nodiscard]] bool as_bool() const;
  [[nodiscard]] double as_number() const;
  [[nodiscard]] const std::string& as_string() const;
  [[nodiscard]] const Array& as_array() const;
  [[nodiscard]] const Object& as_object() const;

  /// Object member lookup; nullptr when absent (or not an object).
  [[nodiscard]] const JsonValue* find(const std::string& key) const;

 private:
  Type type_ = Type::kNull;
  bool bool_ = false;
  double num_ = 0;
  std::string str_;
  Array arr_;
  Object obj_;
};

/// Parse a complete JSON document; trailing non-whitespace is an error.
/// Throws JsonError with "line L, column C" context on malformed input.
[[nodiscard]] JsonValue json_parse(std::string_view text);

}  // namespace plwg
