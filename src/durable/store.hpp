// Per-process durable storage: the few words of protocol state that must
// survive a crash–restart because safety (not just liveness) depends on
// them. In a real deployment this is a small file fsync'd on update; in the
// harness it is a struct owned by SimWorld that outlives the ProcessNode.
//
// What goes here and why:
//   * incarnation — the transport tags every frame with it so peers can
//     tell a reborn process from the ghost of its predecessor. Restart
//     increments it; reusing one would let stale frames reanimate old
//     protocol state.
//   * hwg_view_seqs / hwg_group_counter — view ids and group ids embed a
//     (process, counter) pair. If the counters restarted at zero with the
//     process, a reborn coordinator would mint (coordinator, seq) view ids
//     it already used in its previous life, and stale packets tagged with
//     the recycled id would be accepted as fresh — the exact view-id-reuse
//     bug the per-host counters were introduced to fix, resurfaced.
//   * lwg_view_counter — same argument one layer up.
//   * lwg_registrations — which LWGs the local application had joined,
//     i.e. the restart script: the recovery path replays these joins so the
//     reborn process re-resolves each group through the naming service and
//     rejoins it. The LwgUser pointer stands in for the application, which
//     conceptually outlives the process.
//
// Deliberately NOT here: views, memberships, mappings, ns stamps. Those are
// soft state the protocols rebuild (a restarted process rejoins through the
// normal join path and is handed fresh views; ns stamps are per-lwg-view).
#pragma once

#include <cstdint>
#include <map>
#include <unordered_map>

#include "util/types.hpp"

namespace plwg::lwg {
class LwgUser;
}

namespace plwg::durable {

struct ProcessStore {
  /// Crash–restart incarnation of the process bound to this store;
  /// incremented by each restart, carried in every transport frame.
  std::uint32_t incarnation = 0;

  // -- vsync (see VsyncHost) --
  std::unordered_map<HwgId, std::uint32_t> hwg_view_seqs;
  std::uint32_t hwg_group_counter = 1;

  // -- lwg (see LwgService) --
  std::uint32_t lwg_view_counter = 0;
  std::map<LwgId, lwg::LwgUser*> lwg_registrations;
};

}  // namespace plwg::durable
