// Wire protocol of the naming service (Port::kNaming).
//
// Client -> server: SET / READ / TESTSET requests (paper Table 2, extended
// with view-to-view mappings and genealogy).
// Server -> client: ACK / MAPPINGS responses and the MULTIPLE-MAPPINGS
// callback of paper Sect. 6.1.
// Server <-> server: full-state anti-entropy SYNC.
#pragma once

#include <cstdint>
#include <vector>

#include "names/mapping.hpp"
#include "util/codec.hpp"

namespace plwg::names {

enum class NamingMsgType : std::uint8_t {
  kSetReq = 1,
  kReadReq,
  kTestSetReq,
  kAck,            // response to kSetReq
  kMappings,       // response to kReadReq / kTestSetReq
  kMultipleMappings,  // server-initiated conflict callback
  kSync,           // server-to-server anti-entropy
};

struct SetReqMsg {
  std::uint64_t req_id = 0;
  LwgId lwg;
  MappingEntry entry;
  std::vector<ViewId> predecessors;

  void encode(Encoder& enc) const;
  static SetReqMsg decode(Decoder& dec);
  [[nodiscard]] std::size_t encoded_size_hint() const {
    return 16 + entry.encoded_size() + 4 +
           12 * predecessors.size();
  }
};

struct ReadReqMsg {
  std::uint64_t req_id = 0;
  LwgId lwg;

  void encode(Encoder& enc) const;
  static ReadReqMsg decode(Decoder& dec);
  [[nodiscard]] std::size_t encoded_size_hint() const {
    return 16;
  }
};

struct TestSetReqMsg {
  std::uint64_t req_id = 0;
  LwgId lwg;
  MappingEntry entry;

  void encode(Encoder& enc) const;
  static TestSetReqMsg decode(Decoder& dec);
  [[nodiscard]] std::size_t encoded_size_hint() const {
    return 16 + entry.encoded_size();
  }
};

struct AckMsg {
  std::uint64_t req_id = 0;

  void encode(Encoder& enc) const { enc.put_u64(req_id); }
  static AckMsg decode(Decoder& dec) { return {dec.get_u64()}; }
  [[nodiscard]] std::size_t encoded_size_hint() const { return 8; }
};

struct MappingsMsg {
  std::uint64_t req_id = 0;
  LwgId lwg;
  std::vector<MappingEntry> entries;

  void encode(Encoder& enc) const;
  static MappingsMsg decode(Decoder& dec);
  [[nodiscard]] std::size_t encoded_size_hint() const {
    std::size_t n = 16 + 4;
    for (const MappingEntry& e : entries) n += e.encoded_size();
    return n;
  }
};

struct MultipleMappingsMsg {
  LwgId lwg;
  std::vector<MappingEntry> entries;  // all alive mappings for the LWG

  void encode(Encoder& enc) const;
  static MultipleMappingsMsg decode(Decoder& dec);
  [[nodiscard]] std::size_t encoded_size_hint() const {
    std::size_t n = 8 + 4;
    for (const MappingEntry& e : entries) n += e.encoded_size();
    return n;
  }
};

struct SyncMsg {
  /// True for a periodic full-state exchange; false for a delta carrying
  /// only the records the sender changed since its last sync. Merge
  /// semantics are identical either way (anti-entropy is a union, so a
  /// delta is just a partial database) — the flag exists for accounting.
  bool full = true;
  Database db;

  void encode(Encoder& enc) const {
    enc.put_u8(full ? 1 : 0);
    db.encode(enc);
  }
  static SyncMsg decode(Decoder& dec) {
    SyncMsg m;
    m.full = dec.get_u8() != 0;
    m.db = Database::decode(dec);
    return m;
  }
  [[nodiscard]] std::size_t encoded_size_hint() const {
    return 1 + db.encoded_size();
  }
};

}  // namespace plwg::names
