// Data model of the partitionable naming service (paper Sect. 5.2).
//
// The database maps *LWG views* to *HWG views* — not just group to group —
// because concurrent views of the same LWG can be mapped differently in
// concurrent partitions (paper Fig. 3 / Table 3). Each LWG record also
// carries a genealogy tombstone set: once a merged view is registered with
// its predecessor list, the predecessors' mappings are obsolete and are
// garbage-collected, including when they later arrive from a reconciling
// peer server (paper Table 4).
#pragma once

#include <map>
#include <ostream>
#include <set>
#include <string>
#include <vector>

#include "util/codec.hpp"
#include "util/member_set.hpp"
#include "util/types.hpp"
#include "vsync/view.hpp"

namespace plwg::names {

/// LWG views use the same (coordinator, sequence) identifier scheme as HWG
/// views (paper Sect. 5.1).
using ViewId = vsync::ViewId;

struct MappingEntry {
  ViewId lwg_view;        // the LWG view this mapping is for
  MemberSet lwg_members;  // its membership (callback + contact targets)
  HwgId hwg;              // the HWG it is mapped onto
  ViewId hwg_view;        // the HWG view observed when registering
  MemberSet hwg_members;  // contacts for joining the HWG
  /// Monotonic per-lwg_view update counter (bumped by the LWG coordinator on
  /// every re-registration, e.g. when the underlying HWG view changes).
  /// Reconciliation keeps the higher stamp for the same lwg_view.
  std::uint64_t stamp = 0;

  void encode(Encoder& enc) const;
  static MappingEntry decode(Decoder& dec);
  /// Exact encode() output size, for Encoder::reserve().
  [[nodiscard]] std::size_t encoded_size() const {
    return 40 + lwg_members.encoded_size() + hwg_members.encoded_size();
  }

  friend bool operator==(const MappingEntry&, const MappingEntry&) = default;
};

std::ostream& operator<<(std::ostream& os, const MappingEntry& entry);

struct LwgRecord {
  /// Alive view-to-view mappings, keyed by LWG view id.
  std::map<ViewId, MappingEntry> entries;
  /// Views made obsolete by a registered successor (genealogy GC).
  std::set<ViewId> superseded;

  /// True if ≥2 alive mappings point at *different* HWGs — the condition
  /// that triggers a MULTIPLE-MAPPINGS callback (paper Sect. 6.1).
  [[nodiscard]] bool has_conflict() const;

  /// All processes that belong to any alive LWG view (callback targets).
  [[nodiscard]] MemberSet all_members() const;

  [[nodiscard]] std::vector<MappingEntry> alive_entries() const;

  /// Merge `other` into this record: union entries (higher stamp wins per
  /// view), union tombstones, then drop superseded entries.
  /// Returns true if anything changed.
  bool merge_from(const LwgRecord& other);

  /// Apply one mutation: record `entry`, mark `predecessors` superseded,
  /// GC. Returns true if anything changed.
  bool apply(const MappingEntry& entry, const std::vector<ViewId>& predecessors);

  void encode(Encoder& enc) const;
  static LwgRecord decode(Decoder& dec);
  [[nodiscard]] std::size_t encoded_size() const {
    std::size_t n = 8 + 12 * superseded.size();
    for (const auto& [view, entry] : entries) n += entry.encoded_size();
    return n;
  }

 private:
  void gc();
};

/// Whole-database snapshot, exchanged by server anti-entropy.
struct Database {
  std::map<LwgId, LwgRecord> records;

  bool merge_from(const Database& other);

  void encode(Encoder& enc) const;
  static Database decode(Decoder& dec);
  [[nodiscard]] std::size_t encoded_size() const {
    std::size_t n = 4;
    for (const auto& [lwg, rec] : records) n += 8 + rec.encoded_size();
    return n;
  }

  /// Human-readable dump in the style of the paper's Tables 3/4.
  [[nodiscard]] std::string dump() const;
};

}  // namespace plwg::names
