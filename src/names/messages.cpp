#include "names/messages.hpp"

namespace plwg::names {

namespace {
void encode_entries(Encoder& enc, const std::vector<MappingEntry>& entries) {
  enc.put_u32(static_cast<std::uint32_t>(entries.size()));
  for (const MappingEntry& e : entries) e.encode(enc);
}

std::vector<MappingEntry> decode_entries(Decoder& dec) {
  const std::uint32_t n = dec.get_count(24);
  std::vector<MappingEntry> out;
  out.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) out.push_back(MappingEntry::decode(dec));
  return out;
}
}  // namespace

void SetReqMsg::encode(Encoder& enc) const {
  enc.put_u64(req_id);
  enc.put_id(lwg);
  entry.encode(enc);
  enc.put_u32(static_cast<std::uint32_t>(predecessors.size()));
  for (const ViewId& p : predecessors) p.encode(enc);
}

SetReqMsg SetReqMsg::decode(Decoder& dec) {
  SetReqMsg m;
  m.req_id = dec.get_u64();
  m.lwg = dec.get_id<LwgId>();
  m.entry = MappingEntry::decode(dec);
  const std::uint32_t n = dec.get_count(12);
  m.predecessors.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    m.predecessors.push_back(ViewId::decode(dec));
  }
  return m;
}

void ReadReqMsg::encode(Encoder& enc) const {
  enc.put_u64(req_id);
  enc.put_id(lwg);
}

ReadReqMsg ReadReqMsg::decode(Decoder& dec) {
  ReadReqMsg m;
  m.req_id = dec.get_u64();
  m.lwg = dec.get_id<LwgId>();
  return m;
}

void TestSetReqMsg::encode(Encoder& enc) const {
  enc.put_u64(req_id);
  enc.put_id(lwg);
  entry.encode(enc);
}

TestSetReqMsg TestSetReqMsg::decode(Decoder& dec) {
  TestSetReqMsg m;
  m.req_id = dec.get_u64();
  m.lwg = dec.get_id<LwgId>();
  m.entry = MappingEntry::decode(dec);
  return m;
}

void MappingsMsg::encode(Encoder& enc) const {
  enc.put_u64(req_id);
  enc.put_id(lwg);
  encode_entries(enc, entries);
}

MappingsMsg MappingsMsg::decode(Decoder& dec) {
  MappingsMsg m;
  m.req_id = dec.get_u64();
  m.lwg = dec.get_id<LwgId>();
  m.entries = decode_entries(dec);
  return m;
}

void MultipleMappingsMsg::encode(Encoder& enc) const {
  enc.put_id(lwg);
  encode_entries(enc, entries);
}

MultipleMappingsMsg MultipleMappingsMsg::decode(Decoder& dec) {
  MultipleMappingsMsg m;
  m.lwg = dec.get_id<LwgId>();
  m.entries = decode_entries(dec);
  return m;
}

}  // namespace plwg::names
