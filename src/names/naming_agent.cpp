#include "names/naming_agent.hpp"

#include "util/assert.hpp"
#include "util/log.hpp"

namespace plwg::names {

NamingAgent::NamingAgent(transport::NodeRuntime& node, NamingConfig config,
                         std::vector<NodeId> servers)
    : node_(node), config_(config), servers_(std::move(servers)) {
  node_.register_port(transport::Port::kNaming, *this);
  node_.after(config_.tick_us, [this] { tick(); });
}

NamingAgent::~NamingAgent() = default;

void NamingAgent::enable_server(std::vector<NodeId> peers, Database db) {
  PLWG_ASSERT(!server_);
  ServerState state;
  state.peers = std::move(peers);
  state.db = std::move(db);
  server_ = std::move(state);
}

const Database& NamingAgent::database() const {
  PLWG_ASSERT_MSG(server_.has_value(), "not a name server");
  return server_->db;
}

std::string NamingAgent::dump_database() const { return database().dump(); }

// --- client side -----------------------------------------------------------

void NamingAgent::set(LwgId lwg, const MappingEntry& entry,
                      std::vector<ViewId> predecessors) {
  const std::uint64_t id = next_req_id_++;
  PendingRequest req;
  req.type = NamingMsgType::kSetReq;
  req.lwg = lwg;
  req.entry = entry;
  req.predecessors = std::move(predecessors);
  auto [it, inserted] = pending_.emplace(id, std::move(req));
  send_request(id, it->second);
}

void NamingAgent::read(LwgId lwg, ReadCallback cb) {
  const std::uint64_t id = next_req_id_++;
  PendingRequest req;
  req.type = NamingMsgType::kReadReq;
  req.lwg = lwg;
  req.callback = std::move(cb);
  auto [it, inserted] = pending_.emplace(id, std::move(req));
  send_request(id, it->second);
}

void NamingAgent::testset(LwgId lwg, const MappingEntry& entry,
                          ReadCallback cb) {
  const std::uint64_t id = next_req_id_++;
  PendingRequest req;
  req.type = NamingMsgType::kTestSetReq;
  req.lwg = lwg;
  req.entry = entry;
  req.callback = std::move(cb);
  auto [it, inserted] = pending_.emplace(id, std::move(req));
  send_request(id, it->second);
}

void NamingAgent::send_request(std::uint64_t req_id, PendingRequest& req) {
  PLWG_ASSERT_MSG(!servers_.empty(), "no name servers configured");
  req.sent_at = node_.now();
  const NodeId server = servers_[req.server_index % servers_.size()];
  Encoder body;
  switch (req.type) {
    case NamingMsgType::kSetReq: {
      SetReqMsg m{req_id, req.lwg, *req.entry, req.predecessors};
      m.encode(body);
      break;
    }
    case NamingMsgType::kReadReq: {
      ReadReqMsg m{req_id, req.lwg};
      m.encode(body);
      break;
    }
    case NamingMsgType::kTestSetReq: {
      TestSetReqMsg m{req_id, req.lwg, *req.entry};
      m.encode(body);
      break;
    }
    default:
      PLWG_ASSERT_MSG(false, "not a request type");
  }
  send_msg(server, req.type, body);
}

void NamingAgent::client_on_ack(const AckMsg& msg) {
  pending_.erase(msg.req_id);
}

void NamingAgent::client_on_mappings(const MappingsMsg& msg) {
  auto it = pending_.find(msg.req_id);
  if (it == pending_.end()) return;
  ReadCallback cb = std::move(it->second.callback);
  const LwgId lwg = it->second.lwg;
  pending_.erase(it);
  if (cb) cb(lwg, msg.entries);
}

// --- server side -----------------------------------------------------------

std::map<ViewId, MappingEntry> NamingAgent::alive_rows(LwgId lwg) const {
  std::map<ViewId, MappingEntry> out;
  auto it = server_->db.records.find(lwg);
  if (it == server_->db.records.end()) return out;
  for (const MappingEntry& e : it->second.alive_entries()) {
    out.emplace(e.lwg_view, e);
  }
  return out;
}

void NamingAgent::report_record_diff(
    LwgId lwg, const std::map<ViewId, MappingEntry>& before) {
  if (observer_ == nullptr) return;
  const std::map<ViewId, MappingEntry> after = alive_rows(lwg);
  for (const auto& [view, entry] : before) {
    if (!after.contains(view)) observer_->on_mapping_gced(node_.id(), lwg, view);
  }
  for (const auto& [view, entry] : after) {
    auto it = before.find(view);
    if (it == before.end() || !(it->second == entry)) {
      observer_->on_mapping_written(node_.id(), lwg, entry);
    }
  }
}

void NamingAgent::server_on_set(NodeId from, const SetReqMsg& msg) {
  PLWG_ASSERT(server_);
  stats_.set_requests++;
  const std::map<ViewId, MappingEntry> before =
      observer_ ? alive_rows(msg.lwg) : std::map<ViewId, MappingEntry>{};
  if (server_->db.records[msg.lwg].apply(msg.entry, msg.predecessors)) {
    server_->dirty.insert(msg.lwg);
  }
  report_record_diff(msg.lwg, before);
  Encoder body;
  AckMsg{msg.req_id}.encode(body);
  send_msg(from, NamingMsgType::kAck, body);
  server_check_conflicts();
}

void NamingAgent::server_on_read(NodeId from, const ReadReqMsg& msg) {
  PLWG_ASSERT(server_);
  stats_.read_requests++;
  MappingsMsg reply;
  reply.req_id = msg.req_id;
  reply.lwg = msg.lwg;
  auto it = server_->db.records.find(msg.lwg);
  if (it != server_->db.records.end()) {
    reply.entries = it->second.alive_entries();
  }
  Encoder body;
  body.reserve(reply.encoded_size_hint());
  reply.encode(body);
  send_msg(from, NamingMsgType::kMappings, body);
}

void NamingAgent::server_on_testset(NodeId from, const TestSetReqMsg& msg) {
  PLWG_ASSERT(server_);
  stats_.testset_requests++;
  LwgRecord& rec = server_->db.records[msg.lwg];
  if (rec.entries.empty()) {
    rec.apply(msg.entry, {});
    server_->dirty.insert(msg.lwg);
    if (observer_) report_record_diff(msg.lwg, {});
  }
  MappingsMsg reply;
  reply.req_id = msg.req_id;
  reply.lwg = msg.lwg;
  reply.entries = rec.alive_entries();
  Encoder body;
  reply.encode(body);
  send_msg(from, NamingMsgType::kMappings, body);
  server_check_conflicts();
}

void NamingAgent::server_on_sync(const SyncMsg& msg) {
  PLWG_ASSERT(server_);
  std::map<LwgId, std::map<ViewId, MappingEntry>> before;
  if (observer_) {
    for (const auto& [lwg, rec] : server_->db.records) {
      before.emplace(lwg, alive_rows(lwg));
    }
    for (const auto& [lwg, rec] : msg.db.records) before.try_emplace(lwg);
  }
  // Merge record by record so we learn *which* LWGs changed: anything a
  // peer taught us is dirty here too and rides our next delta onward —
  // deltas gossip transitively instead of waiting for a full round.
  bool changed = false;
  for (const auto& [lwg, rec] : msg.db.records) {
    if (server_->db.records[lwg].merge_from(rec)) {
      server_->dirty.insert(lwg);
      changed = true;
    }
  }
  if (changed) {
    PLWG_DEBUG("names", "server ", node_.id(), " merged peer state");
    if (observer_) {
      for (const auto& [lwg, rows] : before) report_record_diff(lwg, rows);
    }
    server_check_conflicts();
  }
}

void NamingAgent::server_broadcast_sync() {
  PLWG_ASSERT(server_);
  if (server_->peers.empty()) return;
  const bool full = config_.full_sync_every != 0 &&
                    server_->sync_round % config_.full_sync_every == 0;
  server_->sync_round++;
  Encoder body;
  if (full) {
    if (server_->db.records.empty()) return;
    body.reserve(1 + server_->db.encoded_size());
    body.put_u8(1);
    server_->db.encode(body);
    stats_.full_syncs_sent++;
  } else {
    // Delta round: ship only the records dirtied since the last sync.
    // Nothing dirty means nothing to say — an idle server costs no frames.
    if (server_->dirty.empty()) return;
    Database delta;
    for (LwgId lwg : server_->dirty) {
      auto it = server_->db.records.find(lwg);
      if (it != server_->db.records.end()) delta.records.emplace(*it);
    }
    body.reserve(1 + delta.encoded_size());
    body.put_u8(0);
    delta.encode(body);
    stats_.delta_syncs_sent++;
  }
  server_->dirty.clear();
  stats_.syncs_sent += server_->peers.size();
  // One multicast: every peer's copy is byte-identical, so the transport
  // collapses them into a single wire frame (one bus occupancy).
  multicast_msg(server_->peers, NamingMsgType::kSync, body,
                transport::MsgClass::kAck);
}

void NamingAgent::server_check_conflicts() {
  PLWG_ASSERT(server_);
  for (const auto& [lwg, rec] : server_->db.records) {
    if (!rec.has_conflict()) {
      server_->notified.erase(lwg);
      server_->last_callback.erase(lwg);
      continue;
    }
    std::vector<std::pair<ViewId, HwgId>> signature;
    signature.reserve(rec.entries.size());
    for (const auto& [view, entry] : rec.entries) {
      signature.emplace_back(view, entry.hwg);
    }
    auto it = server_->notified.find(lwg);
    const Time last = server_->last_callback.contains(lwg)
                          ? server_->last_callback[lwg]
                          : -1;
    const bool changed =
        it == server_->notified.end() || it->second != signature;
    const bool due =
        last < 0 || node_.now() - last >= config_.callback_repeat_us;
    if (changed || due) {
      server_->notified[lwg] = std::move(signature);
      server_->last_callback[lwg] = node_.now();
      server_send_callback(lwg, rec);
    }
  }
}

void NamingAgent::server_send_callback(LwgId lwg, const LwgRecord& rec) {
  MultipleMappingsMsg msg;
  msg.lwg = lwg;
  msg.entries = rec.alive_entries();
  Encoder body;
  body.reserve(msg.encoded_size_hint());
  msg.encode(body);
  const MemberSet targets = rec.all_members();
  PLWG_DEBUG("names", "server ", node_.id(), " MULTIPLE-MAPPINGS for lwg ",
             lwg, " to ", targets);
  // Identical payload to every member: one multicast, one wire frame.
  callback_targets_.clear();
  for (ProcessId p : targets.members()) {
    callback_targets_.push_back(transport::node_of(p));
  }
  stats_.callbacks_sent += callback_targets_.size();
  multicast_msg(callback_targets_, NamingMsgType::kMultipleMappings, body,
                transport::MsgClass::kData);
}

// --- shared ------------------------------------------------------------------

void NamingAgent::send_msg(NodeId to, NamingMsgType type, const Encoder& body) {
  Encoder packet;
  packet.reserve(1 + body.size());
  packet.put_u8(static_cast<std::uint8_t>(type));
  packet.put_raw(body.bytes());
  node_.send(transport::Port::kNaming, to, packet);
}

void NamingAgent::multicast_msg(std::span<const NodeId> to, NamingMsgType type,
                                const Encoder& body,
                                transport::MsgClass cls) {
  Encoder packet;
  packet.reserve(1 + body.size());
  packet.put_u8(static_cast<std::uint8_t>(type));
  packet.put_raw(body.bytes());
  node_.multicast(transport::Port::kNaming, to, packet, cls);
}

void NamingAgent::tick() {
  const Time now = node_.now();
  // Client: retry timed-out requests on the next server.
  for (auto& [id, req] : pending_) {
    if (now - req.sent_at >= config_.request_timeout_us) {
      req.server_index++;
      send_request(id, req);
    }
  }
  // Server: anti-entropy.
  if (server_ && now - last_sync_ >= config_.sync_interval_us) {
    last_sync_ = now;
    server_broadcast_sync();
    server_check_conflicts();  // periodic re-notify while conflicts persist
  }
  node_.after(config_.tick_us, [this] { tick(); });
}

void NamingAgent::on_message(NodeId from, Decoder& dec) {
  const auto type = static_cast<NamingMsgType>(dec.get_u8());
  switch (type) {
    case NamingMsgType::kSetReq:
      if (server_) server_on_set(from, SetReqMsg::decode(dec));
      break;
    case NamingMsgType::kReadReq:
      if (server_) server_on_read(from, ReadReqMsg::decode(dec));
      break;
    case NamingMsgType::kTestSetReq:
      if (server_) server_on_testset(from, TestSetReqMsg::decode(dec));
      break;
    case NamingMsgType::kAck:
      client_on_ack(AckMsg::decode(dec));
      break;
    case NamingMsgType::kMappings:
      client_on_mappings(MappingsMsg::decode(dec));
      break;
    case NamingMsgType::kMultipleMappings: {
      const MultipleMappingsMsg msg = MultipleMappingsMsg::decode(dec);
      if (conflict_listener_) {
        conflict_listener_->on_multiple_mappings(msg.lwg, msg.entries);
      }
      break;
    }
    case NamingMsgType::kSync:
      if (server_) server_on_sync(SyncMsg::decode(dec));
      break;
  }
}

}  // namespace plwg::names
