#include "names/mapping.hpp"

#include <sstream>

namespace plwg::names {

void MappingEntry::encode(Encoder& enc) const {
  lwg_view.encode(enc);
  lwg_members.encode(enc);
  enc.put_id(hwg);
  hwg_view.encode(enc);
  hwg_members.encode(enc);
  enc.put_u64(stamp);
}

MappingEntry MappingEntry::decode(Decoder& dec) {
  MappingEntry e;
  e.lwg_view = ViewId::decode(dec);
  e.lwg_members = MemberSet::decode(dec);
  e.hwg = dec.get_id<HwgId>();
  e.hwg_view = ViewId::decode(dec);
  e.hwg_members = MemberSet::decode(dec);
  e.stamp = dec.get_u64();
  return e;
}

std::ostream& operator<<(std::ostream& os, const MappingEntry& entry) {
  return os << "lwg" << entry.lwg_view << entry.lwg_members << " -> hwg#"
            << entry.hwg << entry.hwg_view;
}

bool LwgRecord::has_conflict() const {
  HwgId first;
  bool seen = false;
  for (const auto& [view, entry] : entries) {
    if (!seen) {
      first = entry.hwg;
      seen = true;
    } else if (entry.hwg != first) {
      return true;
    }
  }
  return false;
}

MemberSet LwgRecord::all_members() const {
  MemberSet all;
  for (const auto& [view, entry] : entries) {
    all = all.set_union(entry.lwg_members);
  }
  return all;
}

std::vector<MappingEntry> LwgRecord::alive_entries() const {
  std::vector<MappingEntry> out;
  out.reserve(entries.size());
  for (const auto& [view, entry] : entries) out.push_back(entry);
  return out;
}

bool LwgRecord::merge_from(const LwgRecord& other) {
  bool changed = false;
  for (ViewId v : other.superseded) {
    changed |= superseded.insert(v).second;
  }
  for (const auto& [view, entry] : other.entries) {
    auto it = entries.find(view);
    if (it == entries.end()) {
      entries.emplace(view, entry);
      changed = true;
    } else if (entry.stamp > it->second.stamp) {
      it->second = entry;
      changed = true;
    }
  }
  const std::size_t before = entries.size();
  gc();
  changed |= entries.size() != before;
  return changed;
}

bool LwgRecord::apply(const MappingEntry& entry,
                      const std::vector<ViewId>& predecessors) {
  bool changed = false;
  for (const ViewId& p : predecessors) {
    changed |= superseded.insert(p).second;
  }
  if (!superseded.contains(entry.lwg_view)) {
    auto it = entries.find(entry.lwg_view);
    if (it == entries.end()) {
      entries.emplace(entry.lwg_view, entry);
      changed = true;
    } else if (entry.stamp > it->second.stamp) {
      it->second = entry;
      changed = true;
    }
  }
  const std::size_t before = entries.size();
  gc();
  changed |= entries.size() != before;
  return changed;
}

void LwgRecord::gc() {
  for (auto it = entries.begin(); it != entries.end();) {
    if (superseded.contains(it->first)) {
      it = entries.erase(it);
    } else {
      ++it;
    }
  }
}

void LwgRecord::encode(Encoder& enc) const {
  enc.put_u32(static_cast<std::uint32_t>(entries.size()));
  for (const auto& [view, entry] : entries) entry.encode(enc);
  enc.put_u32(static_cast<std::uint32_t>(superseded.size()));
  for (const ViewId& v : superseded) v.encode(enc);
}

LwgRecord LwgRecord::decode(Decoder& dec) {
  LwgRecord rec;
  const std::uint32_t n = dec.get_count(24);
  for (std::uint32_t i = 0; i < n; ++i) {
    MappingEntry e = MappingEntry::decode(dec);
    rec.entries.emplace(e.lwg_view, e);
  }
  const std::uint32_t m = dec.get_count(12);
  for (std::uint32_t i = 0; i < m; ++i) {
    rec.superseded.insert(ViewId::decode(dec));
  }
  return rec;
}

bool Database::merge_from(const Database& other) {
  bool changed = false;
  for (const auto& [lwg, rec] : other.records) {
    changed |= records[lwg].merge_from(rec);
  }
  return changed;
}

void Database::encode(Encoder& enc) const {
  enc.put_u32(static_cast<std::uint32_t>(records.size()));
  for (const auto& [lwg, rec] : records) {
    enc.put_id(lwg);
    rec.encode(enc);
  }
}

Database Database::decode(Decoder& dec) {
  Database db;
  const std::uint32_t n = dec.get_count(8);
  for (std::uint32_t i = 0; i < n; ++i) {
    const auto lwg = dec.get_id<LwgId>();
    db.records.emplace(lwg, LwgRecord::decode(dec));
  }
  return db;
}

std::string Database::dump() const {
  std::ostringstream os;
  for (const auto& [lwg, rec] : records) {
    os << "LWG " << lwg << ":";
    bool first = true;
    for (const auto& [view, entry] : rec.entries) {
      if (!first) os << ",";
      os << " " << entry;
      first = false;
    }
    if (rec.entries.empty()) os << " (no mapping)";
    os << "\n";
  }
  return os.str();
}

}  // namespace plwg::names
