// Observer interface of the naming service: per-server database mutations
// reported to the cross-node ProtocolOracle (src/oracle/).
//
// Events are computed by diffing a record's alive entries around each
// mutation (set / testset / anti-entropy merge), so genealogy GC shows up
// as explicit on_mapping_gced events.
#pragma once

#include "names/mapping.hpp"
#include "util/types.hpp"

namespace plwg::names {

class NamingObserver {
 public:
  virtual ~NamingObserver() = default;

  /// Server node `server` now stores `entry` as an alive mapping for `lwg`
  /// (new row, or an existing row updated to a higher stamp).
  virtual void on_mapping_written(NodeId server, LwgId lwg,
                                  const MappingEntry& entry) = 0;

  /// Server node `server` dropped the alive mapping for (`lwg`,
  /// `lwg_view`) — genealogy GC fired (a successor superseded it).
  virtual void on_mapping_gced(NodeId server, LwgId lwg,
                               const ViewId& lwg_view) = 0;
};

}  // namespace plwg::names
