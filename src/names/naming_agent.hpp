// NamingAgent: the per-node endpoint of the naming service.
//
// Every node runs the *client* role (set / read / testset with retry and
// server fail-over). Nodes designated as name servers additionally enable
// the *server* role: a weakly-consistent replica of the mapping database
// that reconciles with its peers by periodic anti-entropy and pushes
// MULTIPLE-MAPPINGS callbacks to the members of LWGs whose concurrent views
// are mapped onto different HWGs (paper Sect. 5.2 / 6.1).
//
// Consistency model: within a partition, clients of the same server see a
// consistent database; across partitions the replicas diverge freely and
// reconcile on heal — the LWG reconciliation protocol is what restores
// mapping agreement, the naming service only has to converge and to detect
// conflicts.
#pragma once

#include <functional>
#include <map>
#include <optional>
#include <set>
#include <span>
#include <vector>

#include "names/mapping.hpp"
#include "names/messages.hpp"
#include "names/observer.hpp"
#include "transport/node_runtime.hpp"
#include "util/types.hpp"

namespace plwg::names {

struct NamingConfig {
  /// Client request timeout before retrying on the next server.
  Duration request_timeout_us = 400'000;
  /// Server anti-entropy period (also the heal-reconciliation latency).
  Duration sync_interval_us = 1'000'000;
  /// While a conflict persists, the callback is re-sent at this period.
  Duration callback_repeat_us = 2'000'000;
  /// Client/server internal timer period.
  Duration tick_us = 100'000;
  /// Every Nth anti-entropy round ships the full database; the rounds in
  /// between send only the records dirtied since the last sync (and are
  /// skipped entirely when nothing changed). The periodic full exchange
  /// heals divergence that delta loss or a partition left behind.
  std::uint32_t full_sync_every = 4;
};

/// Receives MULTIPLE-MAPPINGS callbacks (implemented by the LWG service).
class ConflictListener {
 public:
  virtual ~ConflictListener() = default;
  virtual void on_multiple_mappings(LwgId lwg,
                                    const std::vector<MappingEntry>& entries) = 0;
};

class NamingAgent : public transport::PortHandler {
 public:
  using ReadCallback =
      std::function<void(LwgId, const std::vector<MappingEntry>&)>;

  /// `servers` is the fail-over-ordered list of name-server nodes this
  /// client uses (rotate it per node to spread load / prefer the local LAN).
  NamingAgent(transport::NodeRuntime& node, NamingConfig config,
              std::vector<NodeId> servers);
  ~NamingAgent() override;

  /// Turn this node into a name server replicating with `peers`. `db` seeds
  /// the replica — a restarted server reloads its disk-backed database this
  /// way instead of starting empty (anti-entropy would eventually refill it,
  /// but a lone server has no peer to refill from).
  void enable_server(std::vector<NodeId> peers, Database db = {});
  [[nodiscard]] bool is_server() const { return server_.has_value(); }

  // --- client API (paper Table 2) ---------------------------------------
  /// ns.set: register/update a mapping; `predecessors` are the lwg views the
  /// entry's view supersedes. Retried until one server acknowledges.
  void set(LwgId lwg, const MappingEntry& entry,
           std::vector<ViewId> predecessors);
  /// ns.read: fetch all alive mappings for `lwg` (may be several after a
  /// partition, may be empty).
  void read(LwgId lwg, ReadCallback cb);
  /// ns.testset: install `entry` iff no mapping exists; either way the
  /// callback receives the winning alive mappings.
  void testset(LwgId lwg, const MappingEntry& entry, ReadCallback cb);

  void set_conflict_listener(ConflictListener* listener) {
    conflict_listener_ = listener;
  }

  /// Protocol observer (the cross-node oracle); may be null. Not owned.
  /// Only server-role mutations are reported.
  void set_observer(NamingObserver* observer) { observer_ = observer; }

  // --- server introspection (tests / Table 3-4 benches) -----------------
  [[nodiscard]] const Database& database() const;
  [[nodiscard]] std::string dump_database() const;

  struct Stats {
    std::uint64_t set_requests = 0;
    std::uint64_t read_requests = 0;
    std::uint64_t testset_requests = 0;
    std::uint64_t syncs_sent = 0;        // per peer, like before deltas
    std::uint64_t delta_syncs_sent = 0;  // rounds that shipped a delta
    std::uint64_t full_syncs_sent = 0;   // rounds that shipped the full db
    std::uint64_t callbacks_sent = 0;    // MULTIPLE-MAPPINGS deliveries
  };
  [[nodiscard]] const Stats& stats() const { return stats_; }

  // transport::PortHandler
  void on_message(NodeId from, Decoder& dec) override;

 private:
  struct PendingRequest {
    NamingMsgType type;
    LwgId lwg;
    std::optional<MappingEntry> entry;
    std::vector<ViewId> predecessors;
    ReadCallback callback;      // empty for kSetReq
    std::size_t server_index = 0;
    Time sent_at = 0;
  };

  struct ServerState {
    Database db;
    std::vector<NodeId> peers;
    /// Records changed since the last anti-entropy round; the next delta
    /// sync carries exactly these.
    std::set<LwgId> dirty;
    /// Anti-entropy round counter (every full_sync_every'th round is full).
    std::uint32_t sync_round = 0;
    /// Last conflict signature notified per LWG, to de-duplicate callbacks.
    std::map<LwgId, std::vector<std::pair<ViewId, HwgId>>> notified;
    std::map<LwgId, Time> last_callback;
  };

  void tick();
  void send_request(std::uint64_t req_id, PendingRequest& req);
  void client_on_ack(const AckMsg& msg);
  void client_on_mappings(const MappingsMsg& msg);

  /// Report to the observer how the alive rows of `lwg` changed relative to
  /// `before` (rows gone = genealogy GC, rows new/updated = writes).
  void report_record_diff(LwgId lwg,
                          const std::map<ViewId, MappingEntry>& before);
  [[nodiscard]] std::map<ViewId, MappingEntry> alive_rows(LwgId lwg) const;

  void server_on_set(NodeId from, const SetReqMsg& msg);
  void server_on_read(NodeId from, const ReadReqMsg& msg);
  void server_on_testset(NodeId from, const TestSetReqMsg& msg);
  void server_on_sync(const SyncMsg& msg);
  void server_broadcast_sync();
  void server_check_conflicts();
  void server_send_callback(LwgId lwg, const LwgRecord& rec);
  void send_msg(NodeId to, NamingMsgType type, const Encoder& body);
  void multicast_msg(std::span<const NodeId> to, NamingMsgType type,
                     const Encoder& body, transport::MsgClass cls);

  transport::NodeRuntime& node_;
  NamingConfig config_;
  std::vector<NodeId> servers_;
  std::optional<ServerState> server_;
  ConflictListener* conflict_listener_ = nullptr;
  NamingObserver* observer_ = nullptr;  // not owned

  std::map<std::uint64_t, PendingRequest> pending_;
  std::uint64_t next_req_id_ = 1;
  Time last_sync_ = 0;
  std::vector<NodeId> callback_targets_;  // reused multicast scratch
  Stats stats_;
};

}  // namespace plwg::names
