// LwgService core plumbing: user downcalls, LWG view installation, message
// dispatch, naming-service registration and the housekeeping tick.
#include "lwg/lwg_service.hpp"

#include <sstream>

#include "util/assert.hpp"
#include "util/log.hpp"
#include "util/observer_hook.hpp"

namespace plwg::lwg {

LwgService::LwgService(vsync::VsyncHost& vsync, names::NamingAgent& names,
                       LwgConfig config, durable::ProcessStore* store)
    : vsync_(vsync), names_(names), config_(config), store_(store) {
  names_.set_conflict_listener(this);
  last_policy_run_ = vsync_.node().now();
  vsync_.node().after(config_.tick_us, [this] { tick(); });
}

LwgService::~LwgService() { names_.set_conflict_listener(nullptr); }

void LwgService::join(LwgId lwg, LwgUser& user) {
  PLWG_ASSERT_MSG(!groups_.contains(lwg), "already joined this LWG");
  if (store_ != nullptr) store_->lwg_registrations[lwg] = &user;
  LocalGroup lg;
  lg.lwg = lwg;
  lg.user = &user;
  lg.phase_since = vsync_.node().now();
  groups_.emplace(lwg, std::move(lg));
  resolve_mapping(lwg);
}

void LwgService::leave(LwgId lwg) {
  LocalGroup* lg = find_group(lwg);
  if (lg == nullptr) return;
  // A deliberate leave is struck from the restart script immediately: if we
  // crash mid-departure, recovery must not rejoin on our behalf.
  if (store_ != nullptr) store_->lwg_registrations.erase(lwg);
  if (!lg->has_view) {
    // Not yet a visible member anywhere: just abandon the join attempt.
    groups_.erase(lwg);
    return;
  }
  if (lg->view.members.size() == 1) {
    // Sole member: record the dissolution and go.
    lg->stale_views.push_back(lg->view.id);
    names::MappingEntry entry = make_entry(*lg, ++lg->ns_stamp);
    entry.lwg_members = MemberSet{};
    names_.set(lwg, entry, {});
    finalize_leave(lwg);
    return;
  }
  set_phase(*lg, Phase::kLeaving);
  Encoder& body = scratch_body();
  LeaveMsg{lwg, self()}.encode(body);
  send_lwg_msg(lg->hwg, LwgMsgType::kLeave, body);
}

void LwgService::shutdown() {
  for (LwgId id : local_groups()) leave(id);
}

void LwgService::send(LwgId lwg, std::vector<std::uint8_t> data) {
  LocalGroup* lg = find_group(lwg);
  PLWG_ASSERT_MSG(lg != nullptr, "send on an LWG we did not join");
  if (!lg->has_view || lg->phase != Phase::kActive || lg->switching) {
    lg->queued_sends.push_back(std::move(data));
    return;
  }
  stats_.data_sent++;
  DataMsg msg{lwg, lg->view.id, std::move(data)};
  Encoder& body = scratch_body();
  body.reserve(msg.encoded_size_hint());
  msg.encode(body);
  send_lwg_msg(lg->hwg, LwgMsgType::kData, body);
}

const LwgView* LwgService::view_of(LwgId lwg) const {
  auto it = groups_.find(lwg);
  if (it == groups_.end() || !it->second.has_view) return nullptr;
  return &it->second.view;
}

std::optional<HwgId> LwgService::hwg_of(LwgId lwg) const {
  auto it = groups_.find(lwg);
  if (it == groups_.end() || it->second.phase == Phase::kResolving) {
    return std::nullopt;
  }
  return it->second.hwg;
}

std::vector<LwgId> LwgService::local_groups() const {
  std::vector<LwgId> out;
  out.reserve(groups_.size());
  for (const auto& [lwg, lg] : groups_) out.push_back(lwg);
  return out;
}

// --- internals ---------------------------------------------------------------

void LwgService::set_phase(LocalGroup& lg, Phase phase) {
  if (lg.phase == phase) return;
  lg.phase = phase;
  lg.phase_since = vsync_.node().now();
}

LwgService::LocalGroup* LwgService::find_group(LwgId lwg) {
  auto it = groups_.find(lwg);
  return it == groups_.end() ? nullptr : &it->second;
}

LwgService::HwgState& LwgService::hwg_state(HwgId gid) {
  auto [it, inserted] = hwgs_.try_emplace(gid);
  if (inserted) it->second.gid = gid;
  return it->second;
}

void LwgService::send_lwg_msg(HwgId hwg, LwgMsgType type,
                              const Encoder& body) {
  Encoder packet;
  packet.reserve(1 + body.size());
  packet.put_u8(static_cast<std::uint8_t>(type));
  packet.put_raw(body.bytes());
  vsync_.send(hwg, packet.take());
}

ViewId LwgService::mint_view_id() { return ViewId{self(), ++view_counter()}; }

void LwgService::note_lwg_reset([[maybe_unused]] LwgId lwg) {
  PLWG_OBSERVE(observer_, on_lwg_epoch_reset(self(), lwg));
}

names::MappingEntry LwgService::make_entry(const LocalGroup& lg,
                                           std::uint64_t stamp) const {
  names::MappingEntry entry;
  entry.lwg_view = lg.view.id;
  entry.lwg_members = lg.view.members;
  entry.hwg = lg.hwg;
  const vsync::View* hv = vsync_.view_of(lg.hwg);
  if (hv != nullptr) {
    entry.hwg_view = hv->id;
    entry.hwg_members = hv->members;
  }
  entry.stamp = stamp;
  return entry;
}

void LwgService::ns_register(LocalGroup& lg,
                             const std::vector<ViewId>& predecessors) {
  names_.set(lg.lwg, make_entry(lg, ++lg.ns_stamp), predecessors);
}

void LwgService::install_lwg_view(LocalGroup& lg, const LwgView& view,
                                  const std::vector<ViewId>& predecessors) {
  PLWG_ASSERT(view.members.contains(self()));
  if (lg.has_view) lg.ancestors.insert(lg.view.id);
  for (const ViewId& p : predecessors) lg.ancestors.insert(p);
  lg.view = view;
  lg.has_view = true;
  lg.hwg = view.hwg;
  lg.switching.reset();
  lg.collect.reset();
  lg.inflight_view.reset();
  lg.pending_add = lg.pending_add.set_difference(view.members);
  lg.pending_remove = lg.pending_remove.set_intersection(view.members);
  // Keep locally-minted ids unique even after adopting a deterministically
  // computed merged view id that used our pid.
  if (view.id.coordinator == self()) {
    view_counter() = std::max(view_counter(), view.id.seq);
  }
  // A pending leave survives intermediate views (others may be removed
  // first); we stay kLeaving until a view excludes us.
  set_phase(lg, lg.phase == Phase::kLeaving ? Phase::kLeaving
                                            : Phase::kActive);
  stats_.lwg_views_installed++;
  PLWG_DEBUG("lwg", "p", self(), " lwg ", lg.lwg, " view ", view.id,
             view.members, " on hwg ", view.hwg);
  PLWG_OBSERVE(observer_,
               on_lwg_view_installed(self(), lg.lwg, view, predecessors));
  // Uniform registration rule: the coordinator of the newly installed view
  // owns the naming-service record for it.
  if (view.coordinator() == self()) {
    ns_register(lg, predecessors);
  }
  hwg_state(view.hwg).no_local_lwg_since = -1;
  lg.user->on_lwg_view(lg.lwg, view);
  drain_queued_sends(lg);
  // Fold in membership requests that accumulated during this installation.
  maybe_install_next_view(lg);
}

void LwgService::drain_queued_sends(LocalGroup& lg) {
  while (!lg.queued_sends.empty() && lg.phase == Phase::kActive &&
         lg.has_view && !lg.switching) {
    std::vector<std::uint8_t> data = std::move(lg.queued_sends.front());
    lg.queued_sends.pop_front();
    stats_.data_sent++;
    DataMsg msg{lg.lwg, lg.view.id, std::move(data)};
    Encoder& body = scratch_body();
    msg.encode(body);
    send_lwg_msg(lg.hwg, LwgMsgType::kData, body);
  }
}

void LwgService::finalize_leave(LwgId lwg) {
  note_lwg_reset(lwg);
  groups_.erase(lwg);
  // The shrink rule will notice HWGs left without local LWGs.
}

std::vector<LwgViewInfo> LwgService::local_views_on(HwgId gid) const {
  std::vector<LwgViewInfo> out;
  for (const auto& [lwg, lg] : groups_) {
    if (lg.has_view && lg.hwg == gid && !lg.switching) {
      LwgViewInfo info{lwg, lg.view, {}};
      info.ancestors.assign(lg.ancestors.begin(), lg.ancestors.end());
      out.push_back(std::move(info));
    }
  }
  return out;
}

// --- HWG upcalls --------------------------------------------------------------

void LwgService::on_stop(HwgId gid) {
  // Our sends are self-contained messages; the vsync layer queues anything
  // submitted during the flush, so traffic can stop immediately.
  vsync_.stop_ok(gid);
}

void LwgService::on_data(HwgId gid, ProcessId src,
                         std::span<const std::uint8_t> data) {
  Decoder dec(data);
  const auto type = static_cast<LwgMsgType>(dec.get_u8());
  switch (type) {
    case LwgMsgType::kData:
      handle_data(gid, src, DataMsgView::decode(dec));
      break;
    case LwgMsgType::kJoin:
      handle_join(gid, JoinMsg::decode(dec));
      break;
    case LwgMsgType::kLeave:
      handle_leave(gid, LeaveMsg::decode(dec));
      break;
    case LwgMsgType::kView:
      handle_view(gid, ViewMsg::decode(dec));
      break;
    case LwgMsgType::kSwitch:
      handle_switch(gid, SwitchMsg::decode(dec));
      break;
    case LwgMsgType::kSwitchReady:
      handle_switch_ready(gid, SwitchReadyMsg::decode(dec));
      break;
    case LwgMsgType::kSwitched:
      handle_switched(gid, SwitchedMsg::decode(dec));
      break;
    case LwgMsgType::kRedirect:
      handle_redirect(gid, RedirectMsg::decode(dec));
      break;
    case LwgMsgType::kMergeViews:
      (void)MergeViewsMsg::decode(dec);
      handle_merge_views(gid);
      break;
    case LwgMsgType::kAllViews:
      handle_all_views(gid, AllViewsMsg::decode(dec));
      break;
    case LwgMsgType::kAnnounce:
      handle_announce(gid, AnnounceMsg::decode(dec));
      break;
  }
}

void LwgService::on_view(HwgId gid, const vsync::View& view) {
  HwgState& hs = hwg_state(gid);
  // Fig. 5 line 114: "when the hwg is flushed do merge all concurrent views".
  process_pending_merges(gid, view);
  hs.all_views.clear();
  hs.merge_requested = false;
  // Re-form LWG views whose membership shrank with the HWG view.
  handle_hwg_membership_change(gid, view);
  // Local peer discovery (reconciliation Step 3): on every HWG view change
  // each member announces its mapped LWG views, so concurrent views that
  // arrive on this HWG — via an HWG merge *or* via a Step 2 switch — are
  // discovered even when the groups are quiescent.
  {
    const std::vector<LwgViewInfo> mine = local_views_on(gid);
    if (!mine.empty()) {
      AnnounceMsg msg{mine};
      Encoder& body = scratch_body();
      msg.encode(body);
      send_lwg_msg(gid, LwgMsgType::kAnnounce, body);
    }
  }
  // Progress joins and switches that were waiting for this HWG view.
  for (auto& [lwg, lg] : groups_) {
    if (lg.phase == Phase::kJoiningHwg && lg.hwg == gid) {
      announce_join(lg);
    }
    if (lg.switching && lg.switching->to_hwg == gid) {
      maybe_send_switch_ready(lg);
    }
  }
}

void LwgService::tick() {
  const Time now = vsync_.node().now();
  // Phase timeouts / retries.
  std::vector<LwgId> ids;
  ids.reserve(groups_.size());
  for (const auto& [lwg, lg] : groups_) ids.push_back(lwg);
  for (LwgId id : ids) {
    LocalGroup* lg = find_group(id);
    if (lg == nullptr) continue;
    switch (lg->phase) {
      case Phase::kResolving:
        if (now - lg->phase_since > 4 * config_.hwg_join_give_up_us) {
          lg->phase_since = now;
          resolve_mapping(id);  // naming service was unreachable; retry
        }
        break;
      case Phase::kJoiningHwg:
        if (now - lg->phase_since > config_.hwg_join_give_up_us) {
          // The mapped HWG is unreachable (stale mapping / dissolved group):
          // fall back to a fresh mapping.
          PLWG_INFO("lwg", "p", self(), " lwg ", id,
                    " giving up on hwg ", lg->hwg, ", remapping");
          vsync_.leave_group(lg->hwg);
          establish_new_mapping(*lg);
        }
        break;
      case Phase::kAnnounced:
        if (now - lg->phase_since > config_.hwg_join_give_up_us) {
          if (lg->announce_attempts < 3 && vsync_.is_member(lg->hwg)) {
            announce_join(*lg);
          } else {
            // Nobody on this HWG answers for the LWG: remap from scratch.
            establish_new_mapping(*lg);
          }
        }
        break;
      case Phase::kActive:
        if (lg->switching &&
            now - lg->switching_since > config_.hwg_join_give_up_us) {
          abort_switch(*lg);
        }
        if (lg->inflight_view &&
            now - lg->inflight_since > 2 * config_.hwg_join_give_up_us) {
          // The in-flight view never installed (lost to an HWG reshuffle):
          // unblock membership processing.
          lg->inflight_view.reset();
          maybe_install_next_view(*lg);
        }
        if (lg->has_view && !vsync_.is_member(lg->hwg)) {
          // Our HWG endpoint died under us (excluded while wedged): rejoin.
          PLWG_INFO("lwg", "p", self(), " lwg ", id,
                    " lost its hwg endpoint, re-resolving");
          note_lwg_reset(id);
          lg->stale_views.push_back(lg->view.id);
          lg->has_view = false;
          set_phase(*lg, Phase::kResolving);
          resolve_mapping(id);
        }
        break;
      case Phase::kLeaving:
        if (now - lg->phase_since > config_.hwg_join_give_up_us) {
          finalize_leave(id);  // give up waiting for the excluding view
        }
        break;
    }
  }

  // Merge-round watchdog: a MERGE-VIEWS round whose flush got lost (the
  // coordinator was mid-change when it tried to force it, or the request
  // raced a partition) would latch merge_requested and suppress discovery
  // forever; re-issue the request after a grace period.
  for (auto& [gid, hs] : hwgs_) {
    if (hs.merge_requested && vsync_.is_member(gid) &&
        now - hs.merge_requested_since >
            config_.merge_gather_us + 3'000'000) {
      hs.merge_requested_since = now;
      Encoder& body = scratch_body();
      MergeViewsMsg{}.encode(body);
      send_lwg_msg(gid, LwgMsgType::kMergeViews, body);
    }
  }

  if (config_.policies_enabled && config_.mode == MappingMode::kDynamic &&
      now - last_policy_run_ >= config_.policy_period_us) {
    run_policies();
  }
  // The shrink timer must run even with policies disabled so baselines do
  // not leak HWGs; it is cheap and purely local.
  run_shrink_rule();

  vsync_.node().after(config_.tick_us, [this] { tick(); });
}

namespace {
const char* phase_name(int phase) {
  switch (phase) {
    case 0: return "resolving";
    case 1: return "joining-hwg";
    case 2: return "announced";
    case 3: return "active";
    case 4: return "leaving";
  }
  return "?";
}
}  // namespace

std::string LwgService::debug_dump() const {
  std::ostringstream os;
  os << "LwgService p" << vsync_.self() << " mode="
     << (config_.mode == MappingMode::kDynamic        ? "dynamic"
         : config_.mode == MappingMode::kStaticSingle ? "static"
                                                      : "per-group")
     << "\n";
  for (const auto& [lwg, lg] : groups_) {
    os << "  lwg " << lwg << ": phase=" << phase_name(static_cast<int>(lg.phase));
    if (lg.has_view) os << " view=" << lg.view;
    if (lg.switching) os << " switching->" << lg.switching->to_hwg;
    if (lg.collect) {
      os << " collecting(" << lg.collect->ready.size() << "/"
         << lg.view.members.size() << ")";
    }
    if (!lg.queued_sends.empty()) os << " queued=" << lg.queued_sends.size();
    os << "\n";
  }
  for (const auto& [gid, hs] : hwgs_) {
    if (hs.forwards.empty() && !hs.merge_requested) continue;
    os << "  hwg " << gid << ":";
    if (hs.merge_requested) os << " merge-round-open";
    for (const auto& [lwg, fwd] : hs.forwards) {
      os << " fwd(lwg" << lwg << "->" << fwd.first << ")";
    }
    os << "\n";
  }
  os << "  member of " << vsync_.groups().size() << " hwg(s)\n";
  return os.str();
}

void LwgService::run_policies() {
  last_policy_run_ = vsync_.node().now();
  if (config_.mode != MappingMode::kDynamic || !config_.policies_enabled) {
    return;
  }
  run_share_rule();
  run_interference_rule();
  run_shrink_rule();
}

}  // namespace plwg::lwg
