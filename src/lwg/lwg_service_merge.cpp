// LwgService partition healing: HWG view-change handling, local peer
// discovery, and the merge-views protocol of paper Fig. 5.
//
// The merge is decentralized and deterministic: during the flushing view,
// every member multicasts ALL-VIEWS (its mapped LWG views); virtual
// synchrony guarantees everyone that installs the next HWG view collected
// the identical set, so each member independently computes the same merged
// LWG views. Stragglers whose ALL-VIEWS slipped past the flush cut simply
// cause another (cheap) round.
#include "lwg/lwg_service.hpp"
#include "util/assert.hpp"
#include "util/log.hpp"

namespace plwg::lwg {

namespace {

/// FNV-1a over the sorted constituent ids *and the HWG view the merge was
/// computed in*: the disambiguator that makes the deterministically
/// computed merged view id globally fresh. The HWG view id must be part of
/// the hash: a partition can strike mid-merge, leaving two concurrent HWG
/// views whose members collected the identical constituent set but
/// intersect it with different HWG memberships — without it both sides
/// would mint the same id for different merged views.
std::uint32_t hash_constituents(const std::vector<ViewId>& ids,
                                const ViewId& hwg_view) {
  std::uint64_t h = 1469598103934665603ULL;
  auto mix = [&h](std::uint64_t v) {
    h ^= v;
    h *= 1099511628211ULL;
  };
  for (const ViewId& id : ids) {
    mix(id.coordinator.value());
    mix(id.seq);
    mix(id.disambig);
  }
  mix(hwg_view.coordinator.value());
  mix(hwg_view.seq);
  mix(hwg_view.disambig);
  std::uint32_t out = static_cast<std::uint32_t>(h ^ (h >> 32));
  return out == 0 ? 1 : out;  // 0 is reserved for locally minted ids
}

}  // namespace

void LwgService::trigger_merge_views(HwgId gid) {
  HwgState& hs = hwg_state(gid);
  if (hs.merge_requested) return;  // a round is already running
  hs.merge_requested = true;
  hs.merge_requested_since = vsync_.node().now();
  stats_.merges_triggered++;
  PLWG_DEBUG("lwg", "p", self(), " triggers MERGE-VIEWS on hwg ", gid);
  Encoder& body = scratch_body();
  MergeViewsMsg{}.encode(body);
  send_lwg_msg(gid, LwgMsgType::kMergeViews, body);
}

void LwgService::handle_merge_views(HwgId gid) {
  HwgState& hs = hwg_state(gid);
  hs.merge_requested = true;  // suppress duplicate triggers this round
  hs.merge_requested_since = vsync_.node().now();
  // Fig. 5 line 109: answer with our mapped views, even if we map none
  // (an empty ALL-VIEWS still tells everyone we took part).
  AllViewsMsg msg{local_views_on(gid)};
  Encoder& body = scratch_body();
  msg.encode(body);
  send_lwg_msg(gid, LwgMsgType::kAllViews, body);
  // Fig. 5 lines 110-111: the HWG coordinator forces the flush; repeated
  // MERGE-VIEWS before the next view are ignored by the vsync layer. A
  // short gather window first lets every member's ALL-VIEWS reach the
  // sequencer, so one flush collects them all.
  const vsync::View* hv = vsync_.view_of(gid);
  if (hv != nullptr && hv->coordinator() == self()) {
    vsync_.node().after(config_.merge_gather_us,
                        [this, gid] { vsync_.force_flush(gid); });
  }
}

void LwgService::handle_all_views(HwgId gid, const AllViewsMsg& msg) {
  HwgState& hs = hwg_state(gid);
  bool straggler_evidence = false;
  for (const LwgViewInfo& info : msg.views) {
    HwgState::CollectedView collected;
    collected.view = info.view;
    collected.ancestors.insert(info.ancestors.begin(), info.ancestors.end());
    hs.all_views[info.lwg][info.view.id] = std::move(collected);
    // A late ALL-VIEWS (after the flush that should have covered it) can
    // reveal a concurrent view of one of our groups; start another round.
    // The *trigger* may use local ancestry (a local heuristic); the merge
    // decision itself uses only the collected evidence.
    LocalGroup* lg = find_group(info.lwg);
    if (lg != nullptr && lg->has_view && lg->hwg == gid &&
        info.view.id != lg->view.id && !lg->ancestors.contains(info.view.id)) {
      straggler_evidence = true;
    }
  }
  if (straggler_evidence && !hs.merge_requested) {
    trigger_merge_views(gid);
  }
}

void LwgService::handle_announce(HwgId gid, const AnnounceMsg& msg) {
  for (const LwgViewInfo& info : msg.views) {
    LocalGroup* lg = find_group(info.lwg);
    if (lg == nullptr || !lg->has_view || lg->hwg != gid) continue;
    if (info.view.id == lg->view.id) continue;
    if (lg->ancestors.contains(info.view.id)) continue;
    // Concurrent view of a local group on this HWG (Step 3 discovery).
    trigger_merge_views(gid);
    return;
  }
}

void LwgService::process_pending_merges(HwgId gid,
                                        const vsync::View& new_hwg_view) {
  HwgState& hs = hwg_state(gid);
  for (auto& [lwg, views] : hs.all_views) {
    LocalGroup* lg = find_group(lwg);
    if (lg == nullptr || !lg->has_view || lg->hwg != gid) continue;
    // Canonical supersession: a collected view that appears in another
    // collected view's advertised ancestry is obsolete. This is decided
    // from the collected evidence alone, so every member (stale straggler
    // or already merged) reaches the same verdict.
    std::set<ViewId> superseded;
    for (const auto& [vid, collected] : views) {
      superseded.insert(collected.ancestors.begin(),
                        collected.ancestors.end());
    }
    for (auto it = views.begin(); it != views.end();) {
      if (superseded.contains(it->first)) {
        it = views.erase(it);
      } else {
        ++it;
      }
    }
    if (views.empty()) continue;
    if (superseded.contains(lg->view.id)) {
      // Our own view is obsolete (we missed the change that superseded it,
      // e.g. while partitioned). Adopt the superseding survivor if it
      // includes us; if it dropped us, re-resolve and rejoin from scratch.
      const HwgState::CollectedView* successor = nullptr;
      for (const auto& [vid, collected] : views) {
        if (collected.ancestors.contains(lg->view.id) &&
            (successor == nullptr || vid > successor->view.id)) {
          successor = &collected;
        }
      }
      if (successor != nullptr && successor->view.members.contains(self())) {
        PLWG_INFO("lwg", "p", self(), " adopts superseding view ",
                  successor->view.id, " of lwg ", lwg);
        // Adopting knowingly skips the history between our view and the
        // successor, so this is an epoch break, not a consecutive install.
        note_lwg_reset(lwg);
        install_lwg_view(*lg, successor->view, {lg->view.id});
      } else {
        PLWG_INFO("lwg", "p", self(), " dropped from lwg ", lwg,
                  " while away; re-resolving");
        note_lwg_reset(lwg);
        lg->stale_views.push_back(lg->view.id);
        lg->has_view = false;
        set_phase(*lg, Phase::kResolving);
        resolve_mapping(lwg);
      }
      continue;
    }
    if (views.size() < 2) continue;
    if (!views.contains(lg->view.id)) continue;

    std::vector<ViewId> constituents;
    std::vector<LwgView> constituent_views;
    MemberSet merged_members;
    std::uint32_t max_seq = 0;
    for (const auto& [vid, collected] : views) {
      constituents.push_back(vid);
      constituent_views.push_back(collected.view);
      merged_members = merged_members.set_union(collected.view.members);
      max_seq = std::max(max_seq, vid.seq);
    }
    merged_members = merged_members.set_intersection(new_hwg_view.members);
    if (!merged_members.contains(self())) continue;

    LwgView merged;
    merged.id = ViewId{merged_members.min_member(), max_seq + 1,
                       hash_constituents(constituents, new_hwg_view.id)};
    merged.members = merged_members;
    merged.hwg = gid;
    stats_.lwg_merges++;
    PLWG_INFO("lwg", "p", self(), " merges ", views.size(),
              " concurrent views of lwg ", lwg, " -> ", merged.id,
              merged.members);
    // Supersede the collected *ancestry* too, not just the direct
    // constituents: if an intermediate view's registration was lost in a
    // partition, the genealogy chain at the naming service has a gap that
    // no later direct-predecessor registration would ever close, and the
    // orphaned row would stay alive forever (Table 4 GC relies on the
    // chain being complete). Every member advertised its full ancestor set
    // in ALL-VIEWS, so the union is the same at every merger.
    std::vector<ViewId> obsolete = constituents;
    obsolete.insert(obsolete.end(), superseded.begin(), superseded.end());
    // Install first: anything the application multicasts from the merge
    // hook is then tagged with the *merged* view and reaches every member
    // (state sent under a constituent view would be dropped as stale).
    install_lwg_view(*lg, merged, obsolete);
    lg->user->on_lwg_merge(lwg, constituent_views, merged);
  }
}

void LwgService::handle_hwg_membership_change(HwgId gid,
                                              const vsync::View& new_view) {
  for (auto& [lwg, lg] : groups_) {
    if (!lg.has_view || lg.hwg != gid || lg.switching) continue;
    const MemberSet survivors =
        lg.view.members.set_intersection(new_view.members);
    if (survivors == lg.view.members) {
      // Unaffected membership; the coordinator refreshes the mapping so the
      // naming service tracks the new HWG view (paper Table 4, stage 2).
      if (lg.view.coordinator() == self()) ns_register(lg, {});
      continue;
    }
    if (survivors.empty() || !survivors.contains(self())) continue;
    if (survivors.min_member() != self()) continue;  // surviving coordinator
    LwgView next;
    next.id = mint_view_id();
    next.members = survivors;
    next.hwg = gid;
    ViewMsg vm{lwg, next, {lg.view.id}};
    Encoder& body = scratch_body();
    vm.encode(body);
    send_lwg_msg(gid, LwgMsgType::kView, body);
  }
}

}  // namespace plwg::lwg
