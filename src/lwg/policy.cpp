#include "lwg/policy.hpp"

#include <cmath>

#include "util/assert.hpp"

namespace plwg::lwg::policy {

bool should_collapse(const MemberSet& hwg1, const MemberSet& hwg2,
                     const PolicyParams& params) {
  const std::size_t k = hwg1.intersection_size(hwg2);
  const std::size_t n1 = hwg1.size() - k;
  const std::size_t n2 = hwg2.size() - k;
  const bool minority_subset =
      (hwg1.is_subset_of(hwg2) && hwg1.is_minority_of(hwg2, params.k_m)) ||
      (hwg2.is_subset_of(hwg1) && hwg2.is_minority_of(hwg1, params.k_m));
  if (minority_subset) return false;
  return static_cast<double>(k) >
         std::sqrt(2.0 * static_cast<double>(n1) * static_cast<double>(n2));
}

HwgId collapse_winner(HwgId a, HwgId b) { return a > b ? a : b; }

bool is_interference_victim(const MemberSet& lwg, const MemberSet& hwg,
                            const PolicyParams& params) {
  return lwg.is_minority_of(hwg, params.k_m);
}

std::optional<HwgId> pick_switch_target(
    const MemberSet& lwg, const std::vector<HwgCandidate>& candidates,
    const PolicyParams& params) {
  std::optional<HwgId> best;
  for (const HwgCandidate& c : candidates) {
    if (!lwg.is_close_to(c.members, params.k_c)) continue;
    if (!best || c.gid > *best) best = c.gid;
  }
  return best;
}

bool should_leave_hwg(std::size_t mapped_lwg_count) {
  return mapped_lwg_count == 0;
}

}  // namespace plwg::lwg::policy
