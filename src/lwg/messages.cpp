#include "lwg/messages.hpp"

namespace plwg::lwg {

void DataMsg::encode(Encoder& enc) const {
  enc.put_id(lwg);
  lwg_view.encode(enc);
  enc.put_bytes(payload);
}

DataMsg DataMsg::decode(Decoder& dec) {
  DataMsg m;
  m.lwg = dec.get_id<LwgId>();
  m.lwg_view = ViewId::decode(dec);
  m.payload = dec.get_bytes();
  return m;
}

DataMsgView DataMsgView::decode(Decoder& dec) {
  DataMsgView m;
  m.lwg = dec.get_id<LwgId>();
  m.lwg_view = ViewId::decode(dec);
  m.payload = dec.get_bytes_view();
  return m;
}

void JoinMsg::encode(Encoder& enc) const {
  enc.put_id(lwg);
  enc.put_id(joiner);
}

JoinMsg JoinMsg::decode(Decoder& dec) {
  JoinMsg m;
  m.lwg = dec.get_id<LwgId>();
  m.joiner = dec.get_id<ProcessId>();
  return m;
}

void LeaveMsg::encode(Encoder& enc) const {
  enc.put_id(lwg);
  enc.put_id(leaver);
}

LeaveMsg LeaveMsg::decode(Decoder& dec) {
  LeaveMsg m;
  m.lwg = dec.get_id<LwgId>();
  m.leaver = dec.get_id<ProcessId>();
  return m;
}

void ViewMsg::encode(Encoder& enc) const {
  enc.put_id(lwg);
  view.encode(enc);
  enc.put_u32(static_cast<std::uint32_t>(predecessors.size()));
  for (const ViewId& p : predecessors) p.encode(enc);
}

ViewMsg ViewMsg::decode(Decoder& dec) {
  ViewMsg m;
  m.lwg = dec.get_id<LwgId>();
  m.view = LwgView::decode(dec);
  const std::uint32_t n = dec.get_count(12);
  m.predecessors.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    m.predecessors.push_back(ViewId::decode(dec));
  }
  return m;
}

void SwitchMsg::encode(Encoder& enc) const {
  enc.put_id(lwg);
  lwg_view.encode(enc);
  enc.put_id(to_hwg);
  contacts.encode(enc);
}

SwitchMsg SwitchMsg::decode(Decoder& dec) {
  SwitchMsg m;
  m.lwg = dec.get_id<LwgId>();
  m.lwg_view = ViewId::decode(dec);
  m.to_hwg = dec.get_id<HwgId>();
  m.contacts = MemberSet::decode(dec);
  return m;
}

void SwitchReadyMsg::encode(Encoder& enc) const {
  enc.put_id(lwg);
  lwg_view.encode(enc);
  enc.put_id(member);
}

SwitchReadyMsg SwitchReadyMsg::decode(Decoder& dec) {
  SwitchReadyMsg m;
  m.lwg = dec.get_id<LwgId>();
  m.lwg_view = ViewId::decode(dec);
  m.member = dec.get_id<ProcessId>();
  return m;
}

void SwitchedMsg::encode(Encoder& enc) const {
  enc.put_id(lwg);
  enc.put_id(to_hwg);
  contacts.encode(enc);
}

SwitchedMsg SwitchedMsg::decode(Decoder& dec) {
  SwitchedMsg m;
  m.lwg = dec.get_id<LwgId>();
  m.to_hwg = dec.get_id<HwgId>();
  m.contacts = MemberSet::decode(dec);
  return m;
}

void RedirectMsg::encode(Encoder& enc) const {
  enc.put_id(lwg);
  enc.put_id(joiner);
  enc.put_id(to_hwg);
  contacts.encode(enc);
}

RedirectMsg RedirectMsg::decode(Decoder& dec) {
  RedirectMsg m;
  m.lwg = dec.get_id<LwgId>();
  m.joiner = dec.get_id<ProcessId>();
  m.to_hwg = dec.get_id<HwgId>();
  m.contacts = MemberSet::decode(dec);
  return m;
}

void AllViewsMsg::encode(Encoder& enc) const {
  enc.put_u32(static_cast<std::uint32_t>(views.size()));
  for (const LwgViewInfo& v : views) v.encode(enc);
}

AllViewsMsg AllViewsMsg::decode(Decoder& dec) {
  AllViewsMsg m;
  const std::uint32_t n = dec.get_count(12);
  m.views.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    m.views.push_back(LwgViewInfo::decode(dec));
  }
  return m;
}

}  // namespace plwg::lwg
