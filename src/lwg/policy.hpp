// The mapping heuristics of paper Fig. 1, as pure functions over member
// sets so they can be unit- and property-tested in isolation.
//
// Definitions (k_m, k_c are configuration parameters; paper defaults 4, 4):
//   minority:  g1 ⊆ g2  and  |g1| <= |g2| / k_m
//   closeness: g1 ⊆ g2  and  |g2| - |g1| <= |g2| / k_c
//
// Share rule: two HWGs with |hwg1| = n1 + k, |hwg2| = n2 + k and
// |hwg1 ∩ hwg2| = k collapse into one when neither is a minority subset of
// the other and k > sqrt(2 * n1 * n2).
//
// Interference rule: an LWG that is a minority of its HWG switches to a
// close-enough HWG, or to a brand-new HWG with identical membership.
//
// Shrink rule: a process that is a member of an HWG carrying none of its
// LWGs leaves that HWG.
#pragma once

#include <optional>
#include <vector>

#include "util/member_set.hpp"
#include "util/types.hpp"

namespace plwg::lwg::policy {

struct PolicyParams {
  double k_m = 4.0;
  double k_c = 4.0;
};

/// Share rule predicate: should the two HWGs collapse into one?
[[nodiscard]] bool should_collapse(const MemberSet& hwg1, const MemberSet& hwg2,
                                   const PolicyParams& params);

/// Deterministic collapse direction: every LWG of the losing HWG switches to
/// the winning HWG. Consistent with the reconciliation rule of Sect. 6.2,
/// the winner is the higher group id.
[[nodiscard]] HwgId collapse_winner(HwgId a, HwgId b);

/// Interference rule trigger: is the LWG a minority of its HWG?
[[nodiscard]] bool is_interference_victim(const MemberSet& lwg,
                                          const MemberSet& hwg,
                                          const PolicyParams& params);

struct HwgCandidate {
  HwgId gid;
  MemberSet members;
};

/// Interference rule target selection: among `candidates` (HWGs known to the
/// caller), pick the close-enough HWG for `lwg`; ties broken by the total
/// order of group ids (highest wins). nullopt means "create a new HWG with
/// membership identical to the LWG".
[[nodiscard]] std::optional<HwgId> pick_switch_target(
    const MemberSet& lwg, const std::vector<HwgCandidate>& candidates,
    const PolicyParams& params);

/// Shrink rule predicate: `mapped_lwg_count` is the number of this process's
/// LWGs mapped onto the HWG.
[[nodiscard]] bool should_leave_hwg(std::size_t mapped_lwg_count);

}  // namespace plwg::lwg::policy
