// LwgService — the paper's light-weight group service, partitionable
// edition, plus (via MappingMode) the two baselines of the Fig. 2
// evaluation.
//
// Responsibilities (paper Sect. 3):
//   (i)   preserve the virtually synchronous Table 1 interface per LWG while
//         multiplexing many LWGs onto few HWGs;
//   (ii)  mapping & switching policies (Fig. 1 share / interference / shrink
//         rules with parameters k_m, k_c, run periodically, enacted only by
//         each LWG's coordinator);
//   (iii) the switching protocol that re-maps an LWG between HWGs at run
//         time (with forward pointers for stale naming-service readers).
//
// Partitionable extensions (paper Sects. 4-6):
//   Step 1  global peer discovery — the naming service pushes
//           MULTIPLE-MAPPINGS callbacks after reconciling its replicas;
//   Step 2  mapping reconciliation — coordinators of concurrent LWG views
//           switch deterministically to the HWG with the highest group id;
//   Step 3  local peer discovery — DATA carries the sender's LWG view id;
//           a message for a concurrent view of a local group (or a view
//           announce after an HWG merge) reveals the co-mapped peer view;
//   Step 4  merge-views — one HWG flush merges all concurrent LWG views
//           mapped on that HWG at once, deterministically (Fig. 5).
//
// Protocol-design note: the HWG layer delivers totally ordered multicasts,
// so every LWG control message (JOIN/LEAVE/VIEW/SWITCH) is itself the flush
// barrier for the view it closes — data sent in an LWG view is ordered
// before the message that ends the view.
#pragma once

#include <deque>
#include <map>
#include <optional>
#include <set>
#include <vector>

#include "durable/store.hpp"
#include "lwg/config.hpp"
#include "lwg/lwg_user.hpp"
#include "lwg/lwg_view.hpp"
#include "lwg/messages.hpp"
#include "lwg/observer.hpp"
#include "lwg/policy.hpp"
#include "names/naming_agent.hpp"
#include "util/types.hpp"
#include "vsync/vsync_host.hpp"

namespace plwg::lwg {

class LwgService : public GroupService,
                   public vsync::GroupUser,
                   public names::ConflictListener {
 public:
  struct Stats {
    std::uint64_t lwg_views_installed = 0;
    std::uint64_t data_sent = 0;
    std::uint64_t data_delivered = 0;
    std::uint64_t data_filtered = 0;    // traffic for LWGs without a local member
    std::uint64_t data_superseded = 0;  // stale-view copies discarded on arrival
    std::uint64_t data_resent = 0;      // own copies that missed their view, re-sent
    std::uint64_t switches_started = 0;
    std::uint64_t switches_completed = 0;
    std::uint64_t merges_triggered = 0; // MERGE-VIEWS rounds initiated here
    std::uint64_t lwg_merges = 0;       // concurrent LWG views folded locally
    std::uint64_t conflict_callbacks = 0;
    std::uint64_t hwgs_created = 0;
    std::uint64_t hwgs_left = 0;        // shrink rule departures
  };

  /// `store`, when given, persists the view-id counter and the set of
  /// joined LWGs across a crash–restart of this process (see
  /// durable/store.hpp). May be null for tests that never restart.
  LwgService(vsync::VsyncHost& vsync, names::NamingAgent& names,
             LwgConfig config, durable::ProcessStore* store = nullptr);
  ~LwgService() override;
  LwgService(const LwgService&) = delete;
  LwgService& operator=(const LwgService&) = delete;

  // --- GroupService (user downcalls) -------------------------------------
  void join(LwgId lwg, LwgUser& user) override;
  void leave(LwgId lwg) override;
  void send(LwgId lwg, std::vector<std::uint8_t> data) override;

  /// Graceful departure from every joined LWG (and, via the shrink rule,
  /// from the underlying HWGs). The inverse of a crash: peers see clean
  /// leave views instead of failure detection.
  void shutdown();

  // --- introspection ------------------------------------------------------
  [[nodiscard]] ProcessId self() const { return vsync_.self(); }
  [[nodiscard]] const LwgView* view_of(LwgId lwg) const;
  [[nodiscard]] std::optional<HwgId> hwg_of(LwgId lwg) const;
  [[nodiscard]] std::vector<LwgId> local_groups() const;
  [[nodiscard]] std::vector<HwgId> member_hwgs() const {
    return vsync_.groups();
  }
  [[nodiscard]] const Stats& stats() const { return stats_; }
  [[nodiscard]] const LwgConfig& config() const { return config_; }

  /// Protocol observer (the cross-node oracle); may be null. Not owned.
  void set_observer(LwgObserver* observer) { observer_ = observer; }

  /// Run the Fig. 1 heuristics immediately (tests/benches; normally they run
  /// every policy_period_us).
  void run_policies();

  /// Human-readable snapshot of the service state (groups, phases, views,
  /// mappings, forward pointers) for logging and operational debugging.
  [[nodiscard]] std::string debug_dump() const;

  // --- vsync::GroupUser (HWG upcalls) -------------------------------------
  void on_view(HwgId gid, const vsync::View& view) override;
  void on_data(HwgId gid, ProcessId src,
               std::span<const std::uint8_t> data) override;
  void on_stop(HwgId gid) override;

  // --- names::ConflictListener (Step 1 callback) ---------------------------
  void on_multiple_mappings(
      LwgId lwg, const std::vector<names::MappingEntry>& entries) override;

 private:
  enum class Phase {
    kResolving,   // naming-service lookup in flight
    kJoiningHwg,  // joining the mapped HWG
    kAnnounced,   // LWG JOIN multicast on the HWG, awaiting an LWG view
    kActive,
    kLeaving,     // LEAVE multicast, awaiting the view that excludes us
  };

  struct SwitchCollect {   // coordinator side of the switch protocol
    HwgId to_hwg;
    MemberSet contacts;
    ViewId old_view;
    MemberSet ready;
  };

  struct LocalGroup {
    LwgId lwg;
    LwgUser* user = nullptr;
    Phase phase = Phase::kResolving;
    Time phase_since = 0;
    int announce_attempts = 0;
    HwgId hwg;               // current mapping (valid from kJoiningHwg on)
    MemberSet contacts;      // HWG join contacts
    bool has_view = false;
    LwgView view;
    std::set<ViewId> ancestors;  // our own view history (stale filtering)
    std::uint64_t ns_stamp = 0;
    std::vector<ViewId> stale_views;  // superseded if we re-map from scratch
    // Member side of an in-progress switch: sends freeze until the view on
    // the target HWG installs.
    std::optional<SwitchMsg> switching;
    Time switching_since = 0;
    // Coordinator side.
    std::optional<SwitchCollect> collect;
    std::deque<std::vector<std::uint8_t>> queued_sends;
    // Membership changes requested via JOIN/LEAVE messages. Every member
    // tracks them (the coordinator may change); the current coordinator
    // folds them into the next view, one in-flight view at a time — this is
    // what keeps concurrent joins/leaves from minting sibling views off the
    // same predecessor.
    MemberSet pending_add;
    MemberSet pending_remove;
    std::optional<ViewId> inflight_view;
    Time inflight_since = 0;
  };

  struct HwgState {
    HwgId gid;
    /// Forward pointers left behind by switches (paper Sect. 3.1).
    std::map<LwgId, std::pair<HwgId, MemberSet>> forwards;
    /// Merge-views round state (paper Fig. 5): AV_p(hwg), with each
    /// collected view's advertised ancestry.
    struct CollectedView {
      LwgView view;
      std::set<ViewId> ancestors;
    };
    bool merge_requested = false;
    Time merge_requested_since = 0;
    std::map<LwgId, std::map<ViewId, CollectedView>> all_views;
    Time no_local_lwg_since = -1;  // shrink rule timer
  };

  // -- lwg_service.cpp: core plumbing --
  void set_phase(LocalGroup& lg, Phase phase);
  [[nodiscard]] LocalGroup* find_group(LwgId lwg);
  [[nodiscard]] HwgState& hwg_state(HwgId gid);
  void send_lwg_msg(HwgId hwg, LwgMsgType type, const Encoder& body);
  /// Reused body buffer for all LWG protocol sends (see
  /// GroupEndpoint::scratch_body for the safety argument).
  Encoder& scratch_body() {
    body_scratch_.clear();
    return body_scratch_;
  }
  [[nodiscard]] ViewId mint_view_id();
  /// The view-id counter: the durable store's copy when one is attached
  /// (it must survive restart — see durable/store.hpp), else the member.
  [[nodiscard]] std::uint32_t& view_counter() {
    return store_ != nullptr ? store_->lwg_view_counter : lwg_view_counter_;
  }
  /// Tell the oracle this process's delivery epoch for `lwg` ended (view
  /// dropped without a successor: leave, re-resolve, lost endpoint, or
  /// knowingly skipped history). A later view must not pair with the old.
  void note_lwg_reset(LwgId lwg);
  void tick();
  void install_lwg_view(LocalGroup& lg, const LwgView& view,
                        const std::vector<ViewId>& predecessors);
  void finalize_leave(LwgId lwg);
  void drain_queued_sends(LocalGroup& lg);
  [[nodiscard]] std::vector<LwgViewInfo> local_views_on(HwgId gid) const;
  [[nodiscard]] names::MappingEntry make_entry(const LocalGroup& lg,
                                               std::uint64_t stamp) const;
  void ns_register(LocalGroup& lg, const std::vector<ViewId>& predecessors);

  // -- lwg_service_map.cpp: mapping, joins, switching, reconciliation --
  void resolve_mapping(LwgId lwg);
  void on_mapping_read(LwgId lwg, const std::vector<names::MappingEntry>& entries);
  /// Claim a fresh mapping for `lg`. With `force`, skip the testset and
  /// overwrite the naming-service row outright — used when the alive row is
  /// a corpse that a testset could never beat (see adopt_mapping).
  void establish_new_mapping(LocalGroup& lg, bool force = false);
  void adopt_mapping(LocalGroup& lg, const names::MappingEntry& entry);
  void announce_join(LocalGroup& lg);
  void start_switch(LocalGroup& lg, HwgId to_hwg, const MemberSet& contacts);
  void abort_switch(LocalGroup& lg);
  void handle_join(HwgId gid, const JoinMsg& msg);
  void handle_leave(HwgId gid, const LeaveMsg& msg);
  void handle_view(HwgId gid, const ViewMsg& msg);
  void handle_switch(HwgId gid, const SwitchMsg& msg);
  void handle_switch_ready(HwgId gid, const SwitchReadyMsg& msg);
  void handle_switched(HwgId gid, const SwitchedMsg& msg);
  void handle_redirect(HwgId gid, const RedirectMsg& msg);
  void handle_data(HwgId gid, ProcessId src, const DataMsgView& msg);
  void resend_missed_view_copy(const DataMsgView& msg);
  void maybe_send_switch_ready(LocalGroup& lg);
  /// Coordinator: fold pending adds/removes into the next LWG view if no
  /// view installation is already in flight.
  void maybe_install_next_view(LocalGroup& lg);

  // -- lwg_service_merge.cpp: hwg view changes + merge-views (Fig. 5) --
  void trigger_merge_views(HwgId gid);
  void handle_merge_views(HwgId gid);
  void handle_all_views(HwgId gid, const AllViewsMsg& msg);
  void handle_announce(HwgId gid, const AnnounceMsg& msg);
  void process_pending_merges(HwgId gid, const vsync::View& new_hwg_view);
  void handle_hwg_membership_change(HwgId gid, const vsync::View& new_view);

  // -- lwg_service_policy.cpp: Fig. 1 rules --
  void run_share_rule();
  void run_interference_rule();
  void run_shrink_rule();
  [[nodiscard]] std::vector<policy::HwgCandidate> hwg_candidates() const;
  [[nodiscard]] std::size_t lwgs_using_hwg(HwgId gid) const;

  vsync::VsyncHost& vsync_;

  Encoder body_scratch_;
  names::NamingAgent& names_;
  LwgConfig config_;
  durable::ProcessStore* store_ = nullptr;  // not owned; may be null
  std::map<LwgId, LocalGroup> groups_;
  std::map<HwgId, HwgState> hwgs_;
  /// A freshly allocated HWG id whose creation is deferred until a testset
  /// win; concurrent establishes reuse it so simultaneous group creations
  /// at one process land on one HWG instead of one each.
  std::optional<HwgId> provisional_hwg_;
  LwgObserver* observer_ = nullptr;  // not owned
  std::uint32_t lwg_view_counter_ = 0;
  Time last_policy_run_ = 0;
  Stats stats_;
};

}  // namespace plwg::lwg
