#include "lwg/lwg_view.hpp"

namespace plwg::lwg {

std::ostream& operator<<(std::ostream& os, const LwgView& view) {
  return os << view.id << view.members << "@hwg" << view.hwg;
}

}  // namespace plwg::lwg
