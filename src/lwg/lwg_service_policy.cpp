// LwgService policy runner: the share / interference / shrink rules of
// paper Fig. 1, evaluated purely from local knowledge (the membership of
// every LWG and HWG this process belongs to), with switches enacted only by
// each LWG's coordinator and all ties broken by the total order of group
// ids — the stability measures of paper Sect. 3.2.
#include "lwg/lwg_service.hpp"
#include "util/log.hpp"

namespace plwg::lwg {

std::vector<policy::HwgCandidate> LwgService::hwg_candidates() const {
  std::vector<policy::HwgCandidate> out;
  for (HwgId gid : vsync_.groups()) {
    const vsync::View* v = vsync_.view_of(gid);
    if (v == nullptr) continue;
    out.push_back(policy::HwgCandidate{gid, v->members});
  }
  return out;
}

std::size_t LwgService::lwgs_using_hwg(HwgId gid) const {
  std::size_t count = 0;
  for (const auto& [lwg, lg] : groups_) {
    if (lg.phase == Phase::kResolving) continue;
    if (lg.hwg == gid) ++count;
    if (lg.switching && lg.switching->to_hwg == gid) ++count;
    if (lg.collect && lg.collect->to_hwg == gid) ++count;
  }
  return count;
}

void LwgService::run_share_rule() {
  const policy::PolicyParams params{config_.k_m, config_.k_c};
  const std::vector<policy::HwgCandidate> candidates = hwg_candidates();
  for (std::size_t i = 0; i < candidates.size(); ++i) {
    for (std::size_t j = i + 1; j < candidates.size(); ++j) {
      if (!policy::should_collapse(candidates[i].members,
                                   candidates[j].members, params)) {
        continue;
      }
      const HwgId winner =
          policy::collapse_winner(candidates[i].gid, candidates[j].gid);
      const std::size_t w = winner == candidates[i].gid ? i : j;
      const std::size_t l = winner == candidates[i].gid ? j : i;
      // Every LWG we coordinate on the losing HWG switches to the winner;
      // coordinators elsewhere apply the same deterministic rule.
      for (auto& [lwg, lg] : groups_) {
        if (!lg.has_view || lg.hwg != candidates[l].gid) continue;
        if (lg.view.coordinator() != self()) continue;
        if (lg.switching || lg.collect) continue;
        PLWG_DEBUG("lwg", "p", self(), " share rule: collapse lwg ", lwg,
                   " from hwg ", candidates[l].gid, " into ", winner);
        start_switch(lg, winner, candidates[w].members);
      }
    }
  }
}

void LwgService::run_interference_rule() {
  const policy::PolicyParams params{config_.k_m, config_.k_c};
  const std::vector<policy::HwgCandidate> candidates = hwg_candidates();
  for (auto& [lwg, lg] : groups_) {
    if (!lg.has_view || lg.phase != Phase::kActive) continue;
    if (lg.view.coordinator() != self()) continue;
    if (lg.switching || lg.collect) continue;
    const vsync::View* hv = vsync_.view_of(lg.hwg);
    if (hv == nullptr) continue;
    if (!policy::is_interference_victim(lg.view.members, hv->members, params)) {
      continue;
    }
    const std::optional<HwgId> target =
        policy::pick_switch_target(lg.view.members, candidates, params);
    if (target && *target != lg.hwg) {
      const vsync::View* tv = vsync_.view_of(*target);
      PLWG_DEBUG("lwg", "p", self(), " interference rule: switch lwg ", lwg,
                 " to close hwg ", *target);
      start_switch(lg, *target, tv != nullptr ? tv->members : MemberSet{});
    } else if (!target) {
      // No close-enough HWG exists: create one with membership identical to
      // the LWG. We found it; the other members join through us during the
      // switch.
      const HwgId fresh = vsync_.allocate_group_id();
      PLWG_DEBUG("lwg", "p", self(), " interference rule: switch lwg ", lwg,
                 " to fresh hwg ", fresh);
      start_switch(lg, fresh, MemberSet{self()});
    }
  }
}

void LwgService::run_shrink_rule() {
  const Time now = vsync_.node().now();
  for (HwgId gid : vsync_.groups()) {
    HwgState& hs = hwg_state(gid);
    if (lwgs_using_hwg(gid) > 0) {
      hs.no_local_lwg_since = -1;
      continue;
    }
    if (hs.no_local_lwg_since < 0) {
      hs.no_local_lwg_since = now;
      continue;
    }
    if (now - hs.no_local_lwg_since >= config_.shrink_delay_us) {
      PLWG_DEBUG("lwg", "p", self(), " shrink rule: leaving hwg ", gid);
      vsync_.leave_group(gid);
      hwgs_.erase(gid);
      stats_.hwgs_left++;
    }
  }
}

}  // namespace plwg::lwg
