// The user-facing interface of a light-weight group service: the same
// virtually synchronous contract as the heavy-weight layer (paper Table 1),
// addressed by LwgId. Implemented by applications; all three services
// (dynamic, static, per-group baseline) deliver through it, which is what
// lets the paper's Fig. 2 comparison swap services under one workload.
#pragma once

#include <span>
#include <vector>

#include "lwg/lwg_view.hpp"
#include "util/types.hpp"

namespace plwg::lwg {

class LwgUser {
 public:
  virtual ~LwgUser() = default;

  /// A new view of the light-weight group was installed at this process.
  virtual void on_lwg_view(LwgId lwg, const LwgView& view) = 0;

  /// A multicast from `src`, delivered in the current LWG view.
  virtual void on_lwg_data(LwgId lwg, ProcessId src,
                           std::span<const std::uint8_t> data) = 0;

  /// Partition-merge notification ("deliver views and re-start groups",
  /// paper Fig. 5): `merged` folds the `constituents` that evolved in
  /// concurrent partitions. Called immediately after the on_lwg_view for
  /// `merged`, so state the application multicasts from here is delivered
  /// in the merged view at every member — the place to exchange and
  /// reconcile diverged replicas. May fire more than once per heal if the
  /// merge takes several rounds (stragglers); reconciliation should be
  /// idempotent. Default: no-op.
  virtual void on_lwg_merge(LwgId lwg, const std::vector<LwgView>& constituents,
                            const LwgView& merged) {
    (void)lwg;
    (void)constituents;
    (void)merged;
  }
};

/// The downcall half, common to the dynamic service and the baselines.
class GroupService {
 public:
  virtual ~GroupService() = default;

  /// Join (creating if needed) the light-weight group `lwg`.
  virtual void join(LwgId lwg, LwgUser& user) = 0;
  virtual void leave(LwgId lwg) = 0;
  /// Virtually synchronous multicast to the group.
  virtual void send(LwgId lwg, std::vector<std::uint8_t> data) = 0;
};

}  // namespace plwg::lwg
