// Light-weight group views.
//
// An LWG view mirrors the HWG view concept one level up: an identifier of
// the form (coordinator, sequence) plus a member set, and additionally the
// HWG the view is mapped onto. Concurrent LWG views arise both from network
// partitions and transiently while a healed partition is being reconciled.
#pragma once

#include <ostream>
#include <vector>

#include "util/codec.hpp"
#include "util/member_set.hpp"
#include "util/types.hpp"
#include "vsync/view.hpp"

namespace plwg::lwg {

using ViewId = vsync::ViewId;

struct LwgView {
  ViewId id;
  MemberSet members;
  HwgId hwg;  // the heavy-weight group this view is mapped onto

  /// Deterministic LWG coordinator: smallest member.
  [[nodiscard]] ProcessId coordinator() const { return members.min_member(); }

  void encode(Encoder& enc) const {
    id.encode(enc);
    members.encode(enc);
    enc.put_id(hwg);
  }
  /// Exact encode() output size, for Encoder::reserve().
  [[nodiscard]] std::size_t encoded_size_hint() const {
    return ViewId::kEncodedSize + members.encoded_size() + 8;
  }
  static LwgView decode(Decoder& dec) {
    LwgView v;
    v.id = ViewId::decode(dec);
    v.members = MemberSet::decode(dec);
    v.hwg = dec.get_id<HwgId>();
    return v;
  }

  friend bool operator==(const LwgView&, const LwgView&) = default;
};

std::ostream& operator<<(std::ostream& os, const LwgView& view);

/// Compact (lwg, view) record used by the merge-views exchange
/// (paper Fig. 5's ALL-VIEWS / MAPPED-VIEWS payloads). It carries the
/// holder's view *ancestry* so every collector can decide supersession
/// canonically — from the collected evidence alone, not from local state
/// that may differ between a straggler and already-merged members.
struct LwgViewInfo {
  LwgId lwg;
  LwgView view;
  std::vector<ViewId> ancestors;

  void encode(Encoder& enc) const {
    enc.put_id(lwg);
    view.encode(enc);
    enc.put_u32(static_cast<std::uint32_t>(ancestors.size()));
    for (const ViewId& a : ancestors) a.encode(enc);
  }
  [[nodiscard]] std::size_t encoded_size_hint() const {
    return 8 + view.encoded_size_hint() + 4 +
           ViewId::kEncodedSize * ancestors.size();
  }
  static LwgViewInfo decode(Decoder& dec) {
    LwgViewInfo info;
    info.lwg = dec.get_id<LwgId>();
    info.view = LwgView::decode(dec);
    const std::uint32_t n = dec.get_count(12);
    info.ancestors.reserve(n);
    for (std::uint32_t i = 0; i < n; ++i) {
      info.ancestors.push_back(ViewId::decode(dec));
    }
    return info;
  }
};

}  // namespace plwg::lwg
