// LwgService mapping machinery: naming-service resolution, optimistic
// initial mapping, the join/leave protocols, the run-time switching protocol
// (paper Sect. 3.1) and the deterministic mapping reconciliation of
// partition healing Step 2 (paper Sect. 6.2).
#include <algorithm>

#include "lwg/lwg_service.hpp"
#include "util/assert.hpp"
#include "util/log.hpp"
#include "util/observer_hook.hpp"

namespace plwg::lwg {

namespace {

/// Deterministic choice among several alive mappings: the entry whose HWG
/// has the highest group id (same rule as conflict reconciliation, so a
/// joiner landing mid-conflict heads where everyone will converge).
const names::MappingEntry* pick_entry(
    const std::vector<names::MappingEntry>& entries) {
  const names::MappingEntry* best = nullptr;
  for (const names::MappingEntry& e : entries) {
    if (best == nullptr || e.hwg > best->hwg ||
        (e.hwg == best->hwg && e.stamp > best->stamp)) {
      best = &e;
    }
  }
  return best;
}

}  // namespace

void LwgService::resolve_mapping(LwgId lwg) {
  names_.read(lwg, [this](LwgId id,
                          const std::vector<names::MappingEntry>& entries) {
    on_mapping_read(id, entries);
  });
}

void LwgService::on_mapping_read(
    LwgId lwg, const std::vector<names::MappingEntry>& entries) {
  LocalGroup* lg = find_group(lwg);
  if (lg == nullptr || lg->phase != Phase::kResolving) return;  // stale reply
  for (const names::MappingEntry& e : entries) {
    lg->stale_views.push_back(e.lwg_view);
  }
  const names::MappingEntry* entry = pick_entry(entries);
  if (entry == nullptr) {
    establish_new_mapping(*lg);
  } else {
    adopt_mapping(*lg, *entry);
  }
}

void LwgService::establish_new_mapping(LocalGroup& lg, bool force) {
  // Optimistic initial mapping (paper Sect. 3.2): assume the new LWG will
  // resemble an existing one, so put it on an HWG we already belong to —
  // the smallest one (least interference), ties broken by highest gid.
  // The interference rule corrects bad guesses later.
  HwgId target;
  bool create_if_won = false;  // defer creation until the testset is won
  switch (config_.mode) {
    case MappingMode::kDynamic: {
      const vsync::View* best = nullptr;
      for (HwgId gid : vsync_.groups()) {
        const vsync::View* v = vsync_.view_of(gid);
        if (v == nullptr) continue;
        if (best == nullptr || v->members.size() < best->members.size() ||
            (v->members.size() == best->members.size() && gid > target)) {
          best = v;
          target = gid;
        }
      }
      if (best == nullptr) {
        if (provisional_hwg_ && !vsync_.is_member(*provisional_hwg_)) {
          target = *provisional_hwg_;
        } else {
          target = vsync_.allocate_group_id();
          provisional_hwg_ = target;
        }
        create_if_won = true;
      }
      break;
    }
    case MappingMode::kStaticSingle: {
      target = config_.static_hwg;
      if (!vsync_.is_member(target)) {
        if (config_.static_contacts.empty() ||
            config_.static_contacts.min_member() == self()) {
          vsync_.create_group(target, *this);
          stats_.hwgs_created++;
        } else {
          lg.hwg = target;
          lg.contacts = config_.static_contacts;
          set_phase(lg, Phase::kJoiningHwg);
          vsync_.join_group(target, lg.contacts, *this);
          return;  // optimistic claim happens once the HWG view arrives
        }
      }
      break;
    }
    case MappingMode::kPerGroup: {
      target = vsync_.allocate_group_id();
      create_if_won = true;
      break;
    }
  }

  lg.hwg = target;
  // Claim the mapping: testset installs our singleton view unless someone
  // beat us to it, in which case we adopt the winner.
  LwgView provisional;
  provisional.id = mint_view_id();
  provisional.members = MemberSet{self()};
  provisional.hwg = target;
  lg.view = provisional;  // staged so make_entry sees it; has_view still false
  if (force) {
    // The alive record is a corpse: every contact it lists is a dead
    // incarnation of ourselves, so a testset would keep resurrecting it and
    // adopt_mapping would bounce us back here forever. Found the group anew
    // and overwrite the row, superseding the views the corpse listed
    // (genealogy GC retires them); install_lwg_view registers the new row
    // because we coordinate the provisional view.
    std::vector<ViewId> preds = lg.stale_views;
    lg.stale_views.clear();
    if (!vsync_.is_member(target)) {
      vsync_.create_group(target, *this);
      stats_.hwgs_created++;
      if (provisional_hwg_ == target) provisional_hwg_.reset();
    }
    install_lwg_view(lg, lg.view, preds);
    return;
  }
  names::MappingEntry entry = make_entry(lg, ++lg.ns_stamp);
  names_.testset(
      lg.lwg, entry,
      [this, claimed = provisional.id, create_if_won, target](
          LwgId id, const std::vector<names::MappingEntry>& entries) {
        LocalGroup* g = find_group(id);
        if (g == nullptr || g->has_view) return;
        const names::MappingEntry* winner = pick_entry(entries);
        if (winner == nullptr) return;  // server wiped? retried by tick
        if (winner->lwg_view == claimed) {
          // We founded the LWG; found its HWG too if it was provisional.
          if (create_if_won && !vsync_.is_member(target)) {
            vsync_.create_group(target, *this);
            stats_.hwgs_created++;
            if (provisional_hwg_ == target) provisional_hwg_.reset();
          }
          std::vector<ViewId> preds = g->stale_views;
          g->stale_views.clear();
          install_lwg_view(*g, g->view, preds);
          // A locally-won founder view is invisible to HWG peers until a
          // message flows; announce it so a concurrent founder that claimed
          // the same HWG through another name server is discovered (local
          // peer discovery, Step 3).
          if (g->has_view && vsync_.is_member(g->hwg)) {
            AnnounceMsg announce{{LwgViewInfo{g->lwg, g->view, {}}}};
            Encoder& body = scratch_body();
            announce.encode(body);
            send_lwg_msg(g->hwg, LwgMsgType::kAnnounce, body);
          }
        } else {
          adopt_mapping(*g, *winner);
        }
      });
}

void LwgService::adopt_mapping(LocalGroup& lg,
                               const names::MappingEntry& entry) {
  lg.hwg = entry.hwg;
  lg.contacts = entry.hwg_members.set_union(entry.lwg_members);
  lg.contacts.erase(self());
  if (vsync_.is_member(lg.hwg)) {
    if (vsync_.view_of(lg.hwg) != nullptr) {
      announce_join(lg);
    } else {
      set_phase(lg, Phase::kJoiningHwg);  // endpoint still joining
    }
    return;
  }
  if (lg.contacts.empty()) {
    // A mapping with no one to contact: either a dissolved group's tombstone
    // or — after a crash–restart — a corpse row whose only members are our
    // own dead incarnation. The row is alive, so a plain testset would lose
    // to it; force the claim.
    establish_new_mapping(lg, /*force=*/true);
    return;
  }
  set_phase(lg, Phase::kJoiningHwg);
  vsync_.join_group(lg.hwg, lg.contacts, *this);
}

void LwgService::announce_join(LocalGroup& lg) {
  set_phase(lg, Phase::kAnnounced);
  lg.announce_attempts++;
  Encoder& body = scratch_body();
  JoinMsg{lg.lwg, self()}.encode(body);
  send_lwg_msg(lg.hwg, LwgMsgType::kJoin, body);
}

void LwgService::handle_join(HwgId gid, const JoinMsg& msg) {
  LocalGroup* lg = find_group(msg.lwg);
  if (lg == nullptr || !lg->has_view || lg->hwg != gid) {
    // Not in this LWG here. If we hold a forward pointer, redirect the
    // stale joiner (the smallest HWG member answers to avoid duplicates).
    HwgState& hs = hwg_state(gid);
    auto fwd = hs.forwards.find(msg.lwg);
    if (fwd == hs.forwards.end()) return;
    const vsync::View* hv = vsync_.view_of(gid);
    if (hv == nullptr || hv->coordinator() != self()) return;
    RedirectMsg redirect{msg.lwg, msg.joiner, fwd->second.first,
                         fwd->second.second};
    Encoder& body = scratch_body();
    redirect.encode(body);
    send_lwg_msg(gid, LwgMsgType::kRedirect, body);
    return;
  }
  if (lg->view.members.contains(msg.joiner) &&
      !lg->pending_remove.contains(msg.joiner)) {
    // The joiner is already listed: a duplicate announce, or a reborn
    // incarnation that crashed and restarted before anyone suspected it.
    // Re-publishing the current view would hand a reborn joiner a view the
    // rest of us have delivered messages in (virtual-synchrony violation),
    // so cut a fresh view with the same membership; both kinds of joiner
    // install it as their first view. The actor is the smallest member
    // *excluding the joiner* — the joiner may be the view's own
    // coordinator, reborn with no state, and waiting for it would deadlock.
    MemberSet others = lg->view.members;
    others.erase(msg.joiner);
    if (!others.empty() && others.min_member() == self() &&
        !lg->inflight_view && !lg->switching && !lg->collect) {
      LwgView view;
      view.id = mint_view_id();
      view.members = lg->view.members;
      view.hwg = lg->hwg;
      lg->inflight_view = view.id;
      lg->inflight_since = vsync_.node().now();
      ViewMsg vm{lg->lwg, view, {lg->view.id}};
      Encoder& body = scratch_body();
      vm.encode(body);
      send_lwg_msg(gid, LwgMsgType::kView, body);
    }
    return;
  }
  // Every member tracks the request; the current coordinator acts on it.
  lg->pending_add.insert(msg.joiner);
  lg->pending_remove.erase(msg.joiner);
  maybe_install_next_view(*lg);
}

void LwgService::handle_leave(HwgId gid, const LeaveMsg& msg) {
  LocalGroup* lg = find_group(msg.lwg);
  if (lg == nullptr || !lg->has_view || lg->hwg != gid) return;
  if (!lg->view.members.contains(msg.leaver) &&
      !lg->pending_add.contains(msg.leaver)) {
    return;
  }
  lg->pending_remove.insert(msg.leaver);
  lg->pending_add.erase(msg.leaver);
  if (lg->view.members.is_subset_of(lg->pending_remove)) {
    // Every member is leaving: the group dissolves. The total order makes
    // this the same decision at every member; the coordinator tombstones
    // the naming-service record.
    if (lg->view.coordinator() == self()) {
      lg->stale_views.push_back(lg->view.id);
      names::MappingEntry entry = make_entry(*lg, ++lg->ns_stamp);
      entry.lwg_members = MemberSet{};
      names_.set(lg->lwg, entry, {lg->view.id});
    }
    finalize_leave(msg.lwg);
    return;
  }
  maybe_install_next_view(*lg);
}

void LwgService::maybe_install_next_view(LocalGroup& lg) {
  if (!lg.has_view || lg.view.coordinator() != self()) return;
  if (lg.switching || lg.collect) return;  // the switch moves the view first
  if (lg.inflight_view) return;            // one installation at a time
  MemberSet next = lg.view.members.set_union(lg.pending_add)
                       .set_difference(lg.pending_remove);
  if (next == lg.view.members || next.empty()) return;
  LwgView view;
  view.id = mint_view_id();
  view.members = next;
  view.hwg = lg.hwg;
  lg.inflight_view = view.id;
  lg.inflight_since = vsync_.node().now();
  ViewMsg vm{lg.lwg, view, {lg.view.id}};
  Encoder& body = scratch_body();
  vm.encode(body);
  send_lwg_msg(lg.hwg, LwgMsgType::kView, body);
}

void LwgService::handle_view(HwgId gid, const ViewMsg& msg) {
  LocalGroup* lg = find_group(msg.lwg);
  if (lg == nullptr) return;
  const LwgView& view = msg.view;
  PLWG_ASSERT(view.hwg == gid);

  if (!view.members.contains(self())) {
    if (!lg->has_view) return;
    const bool succeeds_mine =
        std::find(msg.predecessors.begin(), msg.predecessors.end(),
                  lg->view.id) != msg.predecessors.end();
    if (lg->phase == Phase::kLeaving && succeeds_mine) {
      finalize_leave(msg.lwg);
      return;
    }
    if (succeeds_mine) {
      // A successor view dropped us without a leave request (we were
      // unreachable during its installation): re-resolve from scratch.
      note_lwg_reset(msg.lwg);
      lg->stale_views.push_back(lg->view.id);
      lg->has_view = false;
      set_phase(*lg, Phase::kResolving);
      resolve_mapping(msg.lwg);
      return;
    }
    if (lg->hwg == gid && !lg->switching &&
        !lg->ancestors.contains(view.id)) {
      // A concurrent view of our group surfaced on our own HWG (e.g. it
      // just switched here during reconciliation Step 2): local peer
      // discovery, Step 3.
      trigger_merge_views(gid);
    }
    return;
  }

  if (!lg->has_view) {
    // Joiner: first view that includes us.
    if (lg->phase == Phase::kAnnounced || lg->phase == Phase::kJoiningHwg) {
      std::vector<ViewId> stale = std::move(lg->stale_views);
      lg->stale_views.clear();
      // A reborn joiner's naming-service read may have returned the very
      // view we are now installing; superseding it would GC the only alive
      // row for the group.
      std::erase(stale, view.id);
      std::vector<ViewId> preds = msg.predecessors;
      preds.insert(preds.end(), stale.begin(), stale.end());
      install_lwg_view(*lg, view, preds);
      // Only the new view's coordinator registers it, and it knows nothing
      // of the views *we* abandoned when we re-resolved from scratch; write
      // their supersession ourselves or those rows outlive everyone who
      // remembers them (genealogy GC, paper Table 4).
      if (lg->has_view && view.coordinator() != self() && !stale.empty()) {
        names_.set(lg->lwg, make_entry(*lg, ++lg->ns_stamp), stale);
      }
    }
    return;
  }

  if (view.id == lg->view.id) return;  // duplicate re-publish
  const bool succeeds_ours =
      std::find(msg.predecessors.begin(), msg.predecessors.end(),
                lg->view.id) != msg.predecessors.end();
  if (succeeds_ours) {
    install_lwg_view(*lg, view, msg.predecessors);
    return;
  }
  if (lg->ancestors.contains(view.id)) return;  // stale holder re-publish
  // Concurrent LWG view on our own HWG: local peer discovery (Step 3).
  trigger_merge_views(gid);
}

// --- switching ----------------------------------------------------------------

void LwgService::start_switch(LocalGroup& lg, HwgId to_hwg,
                              const MemberSet& contacts) {
  PLWG_ASSERT(lg.has_view && lg.view.coordinator() == self());
  if (lg.switching || lg.collect) return;
  if (to_hwg == lg.hwg) return;
  stats_.switches_started++;
  PLWG_INFO("lwg", "p", self(), " switching lwg ", lg.lwg, " from hwg ",
            lg.hwg, " to hwg ", to_hwg);
  lg.collect = SwitchCollect{to_hwg, contacts, lg.view.id, MemberSet{}};
  SwitchMsg msg{lg.lwg, lg.view.id, to_hwg, contacts};
  Encoder& body = scratch_body();
  msg.encode(body);
  send_lwg_msg(lg.hwg, LwgMsgType::kSwitch, body);
}

void LwgService::handle_switch(HwgId gid, const SwitchMsg& msg) {
  LocalGroup* lg = find_group(msg.lwg);
  if (lg == nullptr || !lg->has_view || lg->hwg != gid) return;
  if (lg->view.id != msg.lwg_view) return;  // switch of a superseded view
  // The totally-ordered SWITCH is the flush barrier of the old view: all
  // DATA ordered before it has been delivered; we stop sending until the
  // view on the target HWG installs.
  lg->switching = msg;
  lg->switching_since = vsync_.node().now();
  if (!vsync_.is_member(msg.to_hwg)) {
    MemberSet contacts = msg.contacts;
    contacts.erase(self());
    if (contacts.empty()) {
      // We must found the target HWG (interference rule's fresh group).
      vsync_.create_group(msg.to_hwg, *this);
      stats_.hwgs_created++;
    } else {
      vsync_.join_group(msg.to_hwg, contacts, *this);
    }
  }
  maybe_send_switch_ready(*lg);
}

void LwgService::maybe_send_switch_ready(LocalGroup& lg) {
  if (!lg.switching) return;
  const HwgId target = lg.switching->to_hwg;
  if (vsync_.view_of(target) == nullptr) return;  // still joining
  SwitchReadyMsg ready{lg.lwg, lg.switching->lwg_view, self()};
  Encoder& body = scratch_body();
  ready.encode(body);
  send_lwg_msg(target, LwgMsgType::kSwitchReady, body);
}

void LwgService::handle_switch_ready(HwgId gid, const SwitchReadyMsg& msg) {
  LocalGroup* lg = find_group(msg.lwg);
  if (lg == nullptr || !lg->collect) return;
  SwitchCollect& c = *lg->collect;
  if (c.to_hwg != gid || c.old_view != msg.lwg_view) return;
  c.ready.insert(msg.member);
  if (!lg->view.members.is_subset_of(c.ready)) return;
  // Everyone arrived: install the view on the new HWG and leave a forward
  // pointer on the old one.
  stats_.switches_completed++;
  LwgView next;
  next.id = mint_view_id();
  next.members = lg->view.members;
  next.hwg = c.to_hwg;
  ViewMsg vm{lg->lwg, next, {lg->view.id}};
  Encoder vbody;
  vm.encode(vbody);
  send_lwg_msg(c.to_hwg, LwgMsgType::kView, vbody);

  SwitchedMsg switched{lg->lwg, c.to_hwg, next.members};
  Encoder sbody;
  switched.encode(sbody);
  const HwgId old_hwg = lg->hwg;
  if (old_hwg != c.to_hwg && vsync_.is_member(old_hwg)) {
    send_lwg_msg(old_hwg, LwgMsgType::kSwitched, sbody);
  }
}

void LwgService::handle_switched(HwgId gid, const SwitchedMsg& msg) {
  // Forward pointer for stale naming-service readers (paper Sect. 3.1).
  hwg_state(gid).forwards[msg.lwg] = {msg.to_hwg, msg.contacts};
}

void LwgService::handle_redirect(HwgId gid, const RedirectMsg& msg) {
  (void)gid;
  if (msg.joiner != self()) return;
  LocalGroup* lg = find_group(msg.lwg);
  if (lg == nullptr || lg->has_view) return;
  if (lg->phase != Phase::kAnnounced && lg->phase != Phase::kJoiningHwg) return;
  names::MappingEntry entry;
  entry.hwg = msg.to_hwg;
  entry.hwg_members = msg.contacts;
  PLWG_DEBUG("lwg", "p", self(), " redirected: lwg ", msg.lwg, " lives on ",
             msg.to_hwg);
  adopt_mapping(*lg, entry);
}

void LwgService::abort_switch(LocalGroup& lg) {
  PLWG_INFO("lwg", "p", self(), " aborting switch of lwg ", lg.lwg);
  lg.switching.reset();
  lg.collect.reset();
  drain_queued_sends(lg);
}

// Takes the zero-copy view: the payload span aliases the delivered packet
// buffer, which the network keeps alive for the whole upcall, so DATA
// reaches the user with no intermediate copy.
void LwgService::handle_data(HwgId gid, ProcessId src, const DataMsgView& msg) {
  LocalGroup* lg = find_group(msg.lwg);
  if (lg == nullptr || !lg->has_view || lg->hwg != gid) {
    if (lg != nullptr && lg->has_view && src == self()) {
      // Our own copy came back on an HWG the group has since switched away
      // from — same missed-view shape as the superseded stamp below.
      resend_missed_view_copy(msg);
      return;
    }
    stats_.data_filtered++;  // interference: traffic we only pay to discard
    return;
  }
  if (msg.lwg_view == lg->view.id) {
    stats_.data_delivered++;
    PLWG_OBSERVE(observer_,
                 on_lwg_delivered(self(), msg.lwg, msg.lwg_view, src,
                                  msg.payload));
    lg->user->on_lwg_data(msg.lwg, src, msg.payload);
    return;
  }
  if (lg->ancestors.contains(msg.lwg_view)) {  // late, superseded
    stats_.data_superseded++;
    if (src == self()) resend_missed_view_copy(msg);
    return;
  }
  // DATA for a concurrent view of a group we are in: local peer discovery
  // (paper Fig. 5 lines 103-107).
  trigger_merge_views(gid);
}

// A DATA message of ours came back stamped with a view that has since been
// superseded: the vsync endpoint held it across a view change (a send that
// lands mid-flush sits in the endpoint's pending queue and is only multicast
// once the NEXT view installs), so every receiver — including us — sees a
// stale stamp and discards the copy. Nobody delivered it. The sender is the
// one process that can tell a superseded copy of its own message from late
// interference, and dropping it here would silently lose a message that
// send() accepted in a fully-active group. Re-send it stamped with the live
// view: delivery becomes at-least-once across view changes instead of
// silently lossy, and the copy chases the membership until one delivery
// lands in the view that is current when it arrives.
void LwgService::resend_missed_view_copy(const DataMsgView& msg) {
  stats_.data_resent++;
  PLWG_DEBUG("lwg", "p", self(), " re-sending own DATA for lwg ", msg.lwg,
             " stamped with superseded view ", msg.lwg_view.to_string());
  send(msg.lwg,
       std::vector<std::uint8_t>(msg.payload.begin(), msg.payload.end()));
}

// --- reconciliation Step 2 (paper Sect. 6.2) -----------------------------------

void LwgService::on_multiple_mappings(
    LwgId lwg, const std::vector<names::MappingEntry>& entries) {
  stats_.conflict_callbacks++;
  if (!config_.reconcile_on_conflict) return;
  LocalGroup* lg = find_group(lwg);
  if (lg == nullptr || !lg->has_view || lg->phase != Phase::kActive) return;
  if (lg->view.coordinator() != self()) return;  // only the coordinator acts
  if (lg->switching || lg->collect) return;
  // Deterministic conciliation: everyone switches to the highest HWG gid.
  const names::MappingEntry* target = nullptr;
  for (const names::MappingEntry& e : entries) {
    if (target == nullptr || e.hwg > target->hwg) target = &e;
  }
  if (target == nullptr || target->hwg == lg->hwg) return;
  MemberSet contacts = target->hwg_members.set_union(target->lwg_members);
  start_switch(*lg, target->hwg, contacts);
}

}  // namespace plwg::lwg
