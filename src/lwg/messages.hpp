// Light-weight group protocol messages. These ride as payloads of the
// heavy-weight group's totally-ordered multicast, which doubles as the flush
// barrier of the LWG protocols: a protocol message is ordered against all
// DATA on the same HWG, so everything sent in an LWG view is delivered
// before the view-changing message that closes it.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "lwg/lwg_view.hpp"
#include "util/codec.hpp"
#include "util/member_set.hpp"
#include "util/types.hpp"

namespace plwg::lwg {

enum class LwgMsgType : std::uint8_t {
  kData = 1,
  kJoin,        // joiner announces itself on the HWG
  kLeave,
  kView,        // LWG coordinator installs an LWG view
  kSwitch,      // coordinator starts switching the LWG to another HWG
  kSwitchReady, // member arrived on the target HWG
  kSwitched,    // forward pointer for stale joiners on the old HWG
  kRedirect,    // tells a stale joiner where the LWG went
  kMergeViews,  // paper Fig. 5: request an HWG-wide LWG view merge
  kAllViews,    // paper Fig. 5: a member's mapped LWG views (V_p)
  kAnnounce,    // local peer discovery after an HWG merge
};

struct DataMsg {
  LwgId lwg;
  ViewId lwg_view;  // delivery is filtered per LWG view (paper Sect. 5.1)
  std::vector<std::uint8_t> payload;

  void encode(Encoder& enc) const;
  static DataMsg decode(Decoder& dec);
  [[nodiscard]] std::size_t encoded_size_hint() const {
    return 8 + ViewId::kEncodedSize + 4 + payload.size();
  }
};

/// Zero-copy decode of a DataMsg: `payload` aliases the Decoder's input
/// buffer and is valid only for the duration of the delivery upcall. The
/// hot DATA receive path uses this so the user sees the wire bytes with no
/// intermediate vector copy.
struct DataMsgView {
  LwgId lwg;
  ViewId lwg_view;
  std::span<const std::uint8_t> payload;

  static DataMsgView decode(Decoder& dec);
};

struct JoinMsg {
  LwgId lwg;
  ProcessId joiner;

  void encode(Encoder& enc) const;
  static JoinMsg decode(Decoder& dec);
  [[nodiscard]] std::size_t encoded_size_hint() const {
    return 12;
  }
};

struct LeaveMsg {
  LwgId lwg;
  ProcessId leaver;

  void encode(Encoder& enc) const;
  static LeaveMsg decode(Decoder& dec);
  [[nodiscard]] std::size_t encoded_size_hint() const {
    return 12;
  }
};

struct ViewMsg {
  LwgId lwg;
  LwgView view;
  std::vector<ViewId> predecessors;

  void encode(Encoder& enc) const;
  static ViewMsg decode(Decoder& dec);
  [[nodiscard]] std::size_t encoded_size_hint() const {
    return 8 + view.encoded_size_hint() + 4 +
           ViewId::kEncodedSize * predecessors.size();
  }
};

struct SwitchMsg {
  LwgId lwg;
  ViewId lwg_view;   // the view being switched (flush barrier on old HWG)
  HwgId to_hwg;
  MemberSet contacts;  // processes to join the target HWG through

  void encode(Encoder& enc) const;
  static SwitchMsg decode(Decoder& dec);
  [[nodiscard]] std::size_t encoded_size_hint() const {
    return 8 + ViewId::kEncodedSize + 8 + contacts.encoded_size();
  }
};

struct SwitchReadyMsg {
  LwgId lwg;
  ViewId lwg_view;  // the old view the member is switching from
  ProcessId member;

  void encode(Encoder& enc) const;
  static SwitchReadyMsg decode(Decoder& dec);
  [[nodiscard]] std::size_t encoded_size_hint() const {
    return 8 + ViewId::kEncodedSize + 4;
  }
};

struct SwitchedMsg {
  LwgId lwg;
  HwgId to_hwg;
  MemberSet contacts;

  void encode(Encoder& enc) const;
  static SwitchedMsg decode(Decoder& dec);
  [[nodiscard]] std::size_t encoded_size_hint() const {
    return 16 + contacts.encoded_size();
  }
};

struct RedirectMsg {
  LwgId lwg;
  ProcessId joiner;
  HwgId to_hwg;
  MemberSet contacts;

  void encode(Encoder& enc) const;
  static RedirectMsg decode(Decoder& dec);
  [[nodiscard]] std::size_t encoded_size_hint() const {
    return 20 + contacts.encoded_size();
  }
};

struct MergeViewsMsg {
  void encode(Encoder&) const {}
  static MergeViewsMsg decode(Decoder&) { return {}; }
};

struct AllViewsMsg {
  std::vector<LwgViewInfo> views;

  void encode(Encoder& enc) const;
  static AllViewsMsg decode(Decoder& dec);
  [[nodiscard]] std::size_t encoded_size_hint() const {
    std::size_t n = 4;
    for (const LwgViewInfo& v : views) n += v.encoded_size_hint();
    return n;
  }
};

using AnnounceMsg = AllViewsMsg;  // same payload, discovery semantics

}  // namespace plwg::lwg
