// Light-weight group protocol messages. These ride as payloads of the
// heavy-weight group's totally-ordered multicast, which doubles as the flush
// barrier of the LWG protocols: a protocol message is ordered against all
// DATA on the same HWG, so everything sent in an LWG view is delivered
// before the view-changing message that closes it.
#pragma once

#include <cstdint>
#include <vector>

#include "lwg/lwg_view.hpp"
#include "util/codec.hpp"
#include "util/member_set.hpp"
#include "util/types.hpp"

namespace plwg::lwg {

enum class LwgMsgType : std::uint8_t {
  kData = 1,
  kJoin,        // joiner announces itself on the HWG
  kLeave,
  kView,        // LWG coordinator installs an LWG view
  kSwitch,      // coordinator starts switching the LWG to another HWG
  kSwitchReady, // member arrived on the target HWG
  kSwitched,    // forward pointer for stale joiners on the old HWG
  kRedirect,    // tells a stale joiner where the LWG went
  kMergeViews,  // paper Fig. 5: request an HWG-wide LWG view merge
  kAllViews,    // paper Fig. 5: a member's mapped LWG views (V_p)
  kAnnounce,    // local peer discovery after an HWG merge
};

struct DataMsg {
  LwgId lwg;
  ViewId lwg_view;  // delivery is filtered per LWG view (paper Sect. 5.1)
  std::vector<std::uint8_t> payload;

  void encode(Encoder& enc) const;
  static DataMsg decode(Decoder& dec);
};

struct JoinMsg {
  LwgId lwg;
  ProcessId joiner;

  void encode(Encoder& enc) const;
  static JoinMsg decode(Decoder& dec);
};

struct LeaveMsg {
  LwgId lwg;
  ProcessId leaver;

  void encode(Encoder& enc) const;
  static LeaveMsg decode(Decoder& dec);
};

struct ViewMsg {
  LwgId lwg;
  LwgView view;
  std::vector<ViewId> predecessors;

  void encode(Encoder& enc) const;
  static ViewMsg decode(Decoder& dec);
};

struct SwitchMsg {
  LwgId lwg;
  ViewId lwg_view;   // the view being switched (flush barrier on old HWG)
  HwgId to_hwg;
  MemberSet contacts;  // processes to join the target HWG through

  void encode(Encoder& enc) const;
  static SwitchMsg decode(Decoder& dec);
};

struct SwitchReadyMsg {
  LwgId lwg;
  ViewId lwg_view;  // the old view the member is switching from
  ProcessId member;

  void encode(Encoder& enc) const;
  static SwitchReadyMsg decode(Decoder& dec);
};

struct SwitchedMsg {
  LwgId lwg;
  HwgId to_hwg;
  MemberSet contacts;

  void encode(Encoder& enc) const;
  static SwitchedMsg decode(Decoder& dec);
};

struct RedirectMsg {
  LwgId lwg;
  ProcessId joiner;
  HwgId to_hwg;
  MemberSet contacts;

  void encode(Encoder& enc) const;
  static RedirectMsg decode(Decoder& dec);
};

struct MergeViewsMsg {
  void encode(Encoder&) const {}
  static MergeViewsMsg decode(Decoder&) { return {}; }
};

struct AllViewsMsg {
  std::vector<LwgViewInfo> views;

  void encode(Encoder& enc) const;
  static AllViewsMsg decode(Decoder& dec);
};

using AnnounceMsg = AllViewsMsg;  // same payload, discovery semantics

}  // namespace plwg::lwg
