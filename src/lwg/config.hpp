// Configuration of the light-weight group service, including the paper's
// heuristic parameters (Fig. 1: k_m, k_c) and the mapping mode used to
// realize the Fig. 2 baselines.
#pragma once

#include "util/member_set.hpp"
#include "util/types.hpp"

namespace plwg::lwg {

enum class MappingMode {
  /// The paper's service: optimistic initial mapping + share / interference /
  /// shrink rules + switching + partition reconciliation.
  kDynamic,
  /// Baseline "static LWG service": every LWG is mapped onto one configured
  /// HWG shared by everybody (maximum sharing, maximum interference).
  kStaticSingle,
  /// Baseline "no LWG service": every user group gets its own HWG
  /// (no sharing, no interference).
  kPerGroup,
};

struct LwgConfig {
  MappingMode mode = MappingMode::kDynamic;

  /// Fig. 1 "minority" divisor: lwg is a minority of hwg iff
  /// |lwg| <= |hwg| / k_m. Paper prototype: 4.
  double k_m = 4.0;
  /// Fig. 1 "closeness" divisor: |hwg| - |lwg| <= |hwg| / k_c. Paper: 4.
  double k_c = 4.0;
  /// Period of the heuristic evaluation (paper prototype: once a minute).
  Duration policy_period_us = 60'000'000;
  /// Shrink rule delay: leave an HWG only after it has carried no local LWG
  /// for this long (avoids thrash while switches are in flight).
  Duration shrink_delay_us = 30'000'000;
  /// Give up joining an HWG learned from a (possibly stale) naming-service
  /// entry after this long, and fall back to creating a fresh HWG.
  Duration hwg_join_give_up_us = 5'000'000;
  /// Period of the service-internal retry/housekeeping tick.
  Duration tick_us = 200'000;
  /// Gather window between the first MERGE-VIEWS and the HWG flush it
  /// forces: long enough for every member's ALL-VIEWS to be sequenced into
  /// the flushing view, so one round (one flush) merges everything — the
  /// resource-sharing point of paper Sect. 6.4. Stragglers only cost an
  /// extra round, so this is a performance knob, not a correctness one.
  Duration merge_gather_us = 50'000;
  /// Act on MULTIPLE-MAPPINGS callbacks (paper Sect. 6.2). Disabled only in
  /// ablation experiments.
  bool reconcile_on_conflict = true;
  /// Run the Fig. 1 mapping heuristics (disabled for both baselines and in
  /// ablations).
  bool policies_enabled = true;

  /// kStaticSingle only: the shared HWG and who founds it.
  HwgId static_hwg;
  /// kStaticSingle only: processes to contact to join the shared HWG; the
  /// smallest listed process creates it.
  MemberSet static_contacts;
};

}  // namespace plwg::lwg
