// Observer interface of the light-weight group layer: per-process LWG
// protocol events reported to the cross-node ProtocolOracle (src/oracle/).
#pragma once

#include <cstdint>
#include <span>

#include "lwg/lwg_view.hpp"
#include "util/types.hpp"

namespace plwg::lwg {

class LwgObserver {
 public:
  virtual ~LwgObserver() = default;

  /// `p` installed `view` of LWG `lwg` (join, membership change, switch, or
  /// merge-views); `predecessors` is the genealogy the installation carried.
  virtual void on_lwg_view_installed(ProcessId p, LwgId lwg,
                                     const LwgView& view,
                                     std::span<const ViewId> predecessors) = 0;

  /// `p` delivered an LWG data message from `src`, tagged with (and matching
  /// `p`'s installed) view `view`.
  virtual void on_lwg_delivered(ProcessId p, LwgId lwg, const ViewId& view,
                                ProcessId src,
                                std::span<const std::uint8_t> payload) = 0;

  /// `p` abandoned its LWG view continuity (left the group, lost its HWG
  /// endpoint and is re-resolving, or is adopting a view after missing
  /// changes). Ends the process's delivery epoch for `lwg`: the next
  /// installed view is not virtually-synchronous-consecutive with the last.
  virtual void on_lwg_epoch_reset(ProcessId p, LwgId lwg) = 0;
};

}  // namespace plwg::lwg
