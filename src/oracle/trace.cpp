#include "oracle/trace.hpp"

namespace plwg::oracle {

const char* event_kind_name(EventKind kind) {
  switch (kind) {
    case EventKind::kHwgView: return "hwg-view";
    case EventKind::kHwgDeliver: return "hwg-deliver";
    case EventKind::kHwgFlush: return "hwg-flush";
    case EventKind::kHwgReset: return "hwg-reset";
    case EventKind::kLwgView: return "lwg-view";
    case EventKind::kLwgDeliver: return "lwg-deliver";
    case EventKind::kLwgReset: return "lwg-reset";
    case EventKind::kMapWrite: return "map-write";
    case EventKind::kMapGc: return "map-gc";
  }
  return "?";
}

void write_json(std::ostream& os, const TraceEvent& event) {
  os << "{\"t\":" << event.time << ",\"kind\":\"" << event_kind_name(event.kind)
     << "\",\"group\":" << event.group;
  if (event.view.valid()) os << ",\"view\":\"" << event.view << '"';
  if (event.peer.valid()) os << ",\"peer\":" << event.peer.value();
  if (event.arg != 0) os << ",\"arg\":" << event.arg;
  os << '}';
}

TraceRing::TraceRing(std::size_t capacity) { buf_.resize(capacity); }

void TraceRing::push(const TraceEvent& event) {
  buf_[head_] = event;
  head_ = (head_ + 1) % buf_.size();
  if (head_ == 0) full_ = true;
}

std::size_t TraceRing::size() const { return full_ ? buf_.size() : head_; }

}  // namespace plwg::oracle
