#include "oracle/shard_mux.hpp"

#include <algorithm>
#include <utility>

namespace plwg::oracle {

void ShardedObserverMux::drain() {
  // Merge order (t, shard, ring position): each ring is already
  // time-ordered (a shard's clock is monotone), so a stable sort on time
  // alone — after concatenating rings in shard order — yields the
  // deterministic total order.
  struct Indexed {
    Time t;
    std::size_t rank;  // append rank in (shard, ring position) order
    UniqueFunction* fn;
  };
  std::vector<Indexed> merged;
  std::size_t total = 0;
  for (const auto& ring : rings_) total += ring.size();
  if (total == 0) return;
  merged.reserve(total);
  std::size_t rank = 0;
  for (auto& ring : rings_) {
    for (Entry& e : ring) merged.push_back(Indexed{e.t, rank++, &e.replay});
  }
  std::stable_sort(merged.begin(), merged.end(),
                   [](const Indexed& a, const Indexed& b) { return a.t < b.t; });
  replaying_ = true;
  for (Indexed& item : merged) {
    replay_time_ = item.t;
    (*item.fn)();
  }
  replaying_ = false;
  for (auto& ring : rings_) ring.clear();
}

void ShardedObserverMux::on_hwg_view_installed(ProcessId p, HwgId gid,
                                               const vsync::View& view) {
  if (vsync_ == nullptr) return;
  dispatch([obs = vsync_, p, gid, view] {
    obs->on_hwg_view_installed(p, gid, view);
  });
}

void ShardedObserverMux::on_hwg_delivered(
    ProcessId p, HwgId gid, const vsync::ViewId& view, std::uint64_t seq,
    ProcessId origin, std::uint64_t sender_msg_id,
    std::span<const std::uint8_t> payload) {
  if (vsync_ == nullptr) return;
  dispatch([obs = vsync_, p, gid, view, seq, origin, sender_msg_id,
            bytes = std::vector<std::uint8_t>(payload.begin(),
                                              payload.end())] {
    obs->on_hwg_delivered(p, gid, view, seq, origin, sender_msg_id, bytes);
  });
}

void ShardedObserverMux::on_hwg_flush_completed(ProcessId p, HwgId gid,
                                                const vsync::ViewId& old_view,
                                                bool initiator) {
  if (vsync_ == nullptr) return;
  dispatch([obs = vsync_, p, gid, old_view, initiator] {
    obs->on_hwg_flush_completed(p, gid, old_view, initiator);
  });
}

void ShardedObserverMux::on_hwg_endpoint_reset(ProcessId p, HwgId gid) {
  if (vsync_ == nullptr) return;
  dispatch([obs = vsync_, p, gid] { obs->on_hwg_endpoint_reset(p, gid); });
}

void ShardedObserverMux::on_lwg_view_installed(
    ProcessId p, LwgId lwg, const lwg::LwgView& view,
    std::span<const vsync::ViewId> predecessors) {
  if (lwg_ == nullptr) return;
  dispatch([obs = lwg_, p, lwg, view,
            preds = std::vector<vsync::ViewId>(predecessors.begin(),
                                        predecessors.end())] {
    obs->on_lwg_view_installed(p, lwg, view, preds);
  });
}

void ShardedObserverMux::on_lwg_delivered(ProcessId p, LwgId lwg,
                                          const vsync::ViewId& view, ProcessId src,
                                          std::span<const std::uint8_t>
                                              payload) {
  if (lwg_ == nullptr) return;
  dispatch([obs = lwg_, p, lwg, view, src,
            bytes = std::vector<std::uint8_t>(payload.begin(),
                                              payload.end())] {
    obs->on_lwg_delivered(p, lwg, view, src, bytes);
  });
}

void ShardedObserverMux::on_lwg_epoch_reset(ProcessId p, LwgId lwg) {
  if (lwg_ == nullptr) return;
  dispatch([obs = lwg_, p, lwg] { obs->on_lwg_epoch_reset(p, lwg); });
}

void ShardedObserverMux::on_mapping_written(NodeId server, LwgId lwg,
                                            const names::MappingEntry& entry) {
  if (naming_ == nullptr) return;
  dispatch([obs = naming_, server, lwg, entry] {
    obs->on_mapping_written(server, lwg, entry);
  });
}

void ShardedObserverMux::on_mapping_gced(NodeId server, LwgId lwg,
                                         const vsync::ViewId& lwg_view) {
  if (naming_ == nullptr) return;
  dispatch([obs = naming_, server, lwg, lwg_view] {
    obs->on_mapping_gced(server, lwg, lwg_view);
  });
}

}  // namespace plwg::oracle
