// ProtocolOracle — an omniscient, cross-node checker of the DESIGN.md
// Sect. 6 invariants, fed by the observer hooks of the vsync, lwg and
// names layers (see docs/ORACLE.md for the invariant-to-checker map).
//
// Online checks (fire the moment a hook reports a contradicting event):
//   #1 virtual synchrony — any two processes installing the same pair of
//      consecutive views (HWG and LWG level) delivered the same message
//      sequence in between; plus total-order slot agreement: no two
//      processes deliver different messages at the same (view, seq).
//   #2 self-inclusion — every installed view contains its installer.
//   #3 view-tagged delivery — every delivered message was sent by a member
//      of the view it is delivered in, at a process that is itself a
//      member of that view.
//   #6 no cross-view leakage — all processes installing a view id agree on
//      its membership (and mapped HWG at the LWG level); deterministically
//      merged LWG view ids carry the min-pid coordinator.
//
// Offline checks (a snapshot handed in after heal + quiescence):
//   #4/#5 mapping & reconciliation convergence — every LWG has one view
//      held identically by all its (alive) members, the NS replicas agree,
//      and genealogy GC has shrunk every record to at most one alive row.
//
// The oracle is passive and single-process (the simulator runs every node
// in one process), so "cross-node" costs one virtual call per event. It
// never mutates protocol state; a violation is recorded, counted, and
// reported — enforcement (failing the test) is the harness's job.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <tuple>
#include <utility>
#include <vector>

#include "lwg/observer.hpp"
#include "names/observer.hpp"
#include "oracle/trace.hpp"
#include "util/member_set.hpp"
#include "util/types.hpp"
#include "vsync/observer.hpp"

namespace plwg::names {
struct Database;
}

namespace plwg::oracle {

struct Violation {
  int invariant = 0;  // DESIGN.md Sect. 6 numbering (1-6)
  Time time = 0;
  std::string description;
  std::vector<NodeId> actors;  // nodes whose traces explain the violation
};

/// Everything the convergence checks (#4/#5) need, snapshotted by the
/// harness after heal + quiescence. Only *alive* processes and servers
/// appear; crashed nodes are outside the paper's convergence claim.
struct ConvergenceSnapshot {
  struct LwgHolder {
    ProcessId pid;
    lwg::LwgView view;
  };
  /// Per LWG: every alive process that currently holds a view of it.
  std::map<LwgId, std::vector<LwgHolder>> holders;
  /// Alive processes that joined an LWG but hold no view yet (still
  /// resolving / joining) — convergence has not been reached.
  std::vector<std::pair<ProcessId, LwgId>> unresolved;
  /// Every alive name-server database (node id, database).
  std::vector<std::pair<NodeId, const names::Database*>> databases;
  MemberSet alive;  // alive process ids
};

/// Pure convergence predicate: empty string when the snapshot satisfies
/// invariants #4/#5, otherwise the first failure found (human-readable).
[[nodiscard]] std::string check_converged(const ConvergenceSnapshot& snap);

class ProtocolOracle final : public vsync::VsyncObserver,
                             public lwg::LwgObserver,
                             public names::NamingObserver {
 public:
  /// `clock` supplies timestamps for traces and violations (the harness
  /// passes the simulator clock); without one, events are numbered.
  explicit ProtocolOracle(std::function<Time()> clock = {});

  // --- vsync::VsyncObserver ----------------------------------------------
  void on_hwg_view_installed(ProcessId p, HwgId gid,
                             const vsync::View& view) override;
  void on_hwg_delivered(ProcessId p, HwgId gid, const vsync::ViewId& view,
                        std::uint64_t seq, ProcessId origin,
                        std::uint64_t sender_msg_id,
                        std::span<const std::uint8_t> payload) override;
  void on_hwg_flush_completed(ProcessId p, HwgId gid,
                              const vsync::ViewId& old_view,
                              bool initiator) override;
  void on_hwg_endpoint_reset(ProcessId p, HwgId gid) override;

  // --- lwg::LwgObserver --------------------------------------------------
  void on_lwg_view_installed(ProcessId p, LwgId lwg, const lwg::LwgView& view,
                             std::span<const vsync::ViewId> predecessors) override;
  void on_lwg_delivered(ProcessId p, LwgId lwg, const vsync::ViewId& view,
                        ProcessId src,
                        std::span<const std::uint8_t> payload) override;
  void on_lwg_epoch_reset(ProcessId p, LwgId lwg) override;

  // --- names::NamingObserver ---------------------------------------------
  void on_mapping_written(NodeId server, LwgId lwg,
                          const names::MappingEntry& entry) override;
  void on_mapping_gced(NodeId server, LwgId lwg,
                       const vsync::ViewId& lwg_view) override;

  // --- convergence (#4/#5) -----------------------------------------------
  /// Run check_converged and record a violation on failure. Returns true
  /// when converged.
  bool check_convergence(const ConvergenceSnapshot& snap);

  // --- results -----------------------------------------------------------
  [[nodiscard]] bool clean() const { return violations_.empty(); }
  /// Recorded violations (capped at kMaxViolations; see total_violations).
  [[nodiscard]] const std::vector<Violation>& violations() const {
    return violations_;
  }
  [[nodiscard]] std::size_t total_violations() const { return total_; }
  /// Structured report: every recorded violation plus the per-node event
  /// traces of the involved nodes.
  [[nodiscard]] std::string report_json() const;
  /// Acknowledge recorded violations (self-tests; the harness destructor
  /// aborts on unacknowledged ones). Checker state is kept.
  void clear();

  // --- test-only fault injection -----------------------------------------
  /// Swallow the next `count` HWG delivery reports from `p`: the oracle's
  /// own self-test, proving a missing delivery is flagged as an invariant
  /// #1 violation (the checker is not vacuously green).
  void test_drop_next_hwg_delivery(ProcessId p, int count = 1);

  static constexpr std::size_t kMaxViolations = 64;

 private:
  struct MsgKey {
    ProcessId origin;
    std::uint64_t smid = 0;
    std::uint64_t hash = 0;
    friend auto operator<=>(const MsgKey&, const MsgKey&) = default;
  };
  struct ViewRecord {
    MemberSet members;
    HwgId hwg;  // LWG level only
    ProcessId first_reporter;
  };
  struct Epoch {
    bool open = false;
    vsync::ViewId view;
    std::vector<MsgKey> delivered;
  };
  struct PairRecord {
    std::vector<MsgKey> msgs;
    ProcessId first_reporter;
  };
  struct SlotRecord {
    MsgKey key;
    ProcessId first_reporter;
  };

  [[nodiscard]] Time now();
  void record(int invariant, std::string description,
              std::vector<ProcessId> processes);
  void record_node(int invariant, std::string description,
                   std::vector<NodeId> actors);
  void trace(ProcessId p, const TraceEvent& event);
  void trace_node(NodeId n, const TraceEvent& event);
  void close_epoch(std::map<std::pair<ProcessId, std::uint64_t>, Epoch>& epochs,
                   std::map<std::tuple<std::uint64_t, vsync::ViewId,
                                       vsync::ViewId>,
                            PairRecord>& pairs,
                   ProcessId p, std::uint64_t group,
                   const vsync::ViewId& new_view, const char* level);

  std::function<Time()> clock_;
  std::uint64_t event_counter_ = 0;

  // HWG-level state. Group keys use the raw id value so the HWG and LWG
  // checkers can share the epoch/pair machinery.
  std::map<std::pair<HwgId, vsync::ViewId>, ViewRecord> hwg_views_;
  std::map<std::pair<ProcessId, std::uint64_t>, Epoch> hwg_epochs_;
  std::map<std::tuple<std::uint64_t, vsync::ViewId, vsync::ViewId>, PairRecord>
      hwg_pairs_;
  std::map<std::tuple<HwgId, vsync::ViewId, std::uint64_t>, SlotRecord>
      hwg_slots_;

  // LWG-level state.
  std::map<std::pair<LwgId, vsync::ViewId>, ViewRecord> lwg_views_;
  std::map<std::pair<ProcessId, std::uint64_t>, Epoch> lwg_epochs_;
  std::map<std::tuple<std::uint64_t, vsync::ViewId, vsync::ViewId>, PairRecord>
      lwg_pairs_;

  std::map<NodeId, TraceRing> traces_;
  std::vector<Violation> violations_;
  std::size_t total_ = 0;

  std::map<ProcessId, int> drop_hwg_deliveries_;  // test-only injection
};

}  // namespace plwg::oracle
