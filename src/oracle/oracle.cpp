#include "oracle/oracle.hpp"

#include <algorithm>
#include <optional>
#include <set>
#include <sstream>

#include "names/mapping.hpp"
#include "transport/node_runtime.hpp"
#include "util/log.hpp"

namespace plwg::oracle {

namespace {

std::uint64_t fnv1a64(std::span<const std::uint8_t> bytes) {
  std::uint64_t h = 1469598103934665603ULL;
  for (std::uint8_t b : bytes) {
    h ^= b;
    h *= 1099511628211ULL;
  }
  return h;
}

void append_escaped(std::ostream& os, const std::string& s) {
  for (char c : s) {
    switch (c) {
      case '"': os << "\\\""; break;
      case '\\': os << "\\\\"; break;
      case '\n': os << "\\n"; break;
      case '\t': os << "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          os << ' ';
        } else {
          os << c;
        }
    }
  }
}

}  // namespace

ProtocolOracle::ProtocolOracle(std::function<Time()> clock)
    : clock_(std::move(clock)) {}

Time ProtocolOracle::now() {
  return clock_ ? clock_() : static_cast<Time>(++event_counter_);
}

void ProtocolOracle::trace(ProcessId p, const TraceEvent& event) {
  trace_node(transport::node_of(p), event);
}

void ProtocolOracle::trace_node(NodeId n, const TraceEvent& event) {
  traces_[n].push(event);
}

void ProtocolOracle::record(int invariant, std::string description,
                            std::vector<ProcessId> processes) {
  std::vector<NodeId> actors;
  actors.reserve(processes.size());
  for (ProcessId p : processes) actors.push_back(transport::node_of(p));
  record_node(invariant, std::move(description), std::move(actors));
}

void ProtocolOracle::record_node(int invariant, std::string description,
                                 std::vector<NodeId> actors) {
  total_++;
  PLWG_INFO("oracle", "invariant #", invariant, " violated: ", description);
  if (violations_.size() >= kMaxViolations) return;
  Violation v;
  v.invariant = invariant;
  v.time = clock_ ? clock_() : static_cast<Time>(event_counter_);
  v.description = std::move(description);
  v.actors = std::move(actors);
  violations_.push_back(std::move(v));
}

void ProtocolOracle::clear() { violations_.clear(); total_ = 0; }

void ProtocolOracle::test_drop_next_hwg_delivery(ProcessId p, int count) {
  drop_hwg_deliveries_[p] += count;
}

// --- shared epoch machinery ---------------------------------------------------

void ProtocolOracle::close_epoch(
    std::map<std::pair<ProcessId, std::uint64_t>, Epoch>& epochs,
    std::map<std::tuple<std::uint64_t, vsync::ViewId, vsync::ViewId>,
             PairRecord>& pairs,
    ProcessId p, std::uint64_t group, const vsync::ViewId& new_view,
    const char* level) {
  Epoch& ep = epochs[{p, group}];
  if (ep.open && ep.view != new_view) {
    auto [it, inserted] = pairs.try_emplace({group, ep.view, new_view});
    PairRecord& pr = it->second;
    if (inserted) {
      pr.msgs = ep.delivered;
      pr.first_reporter = p;
    } else if (pr.msgs != ep.delivered) {
      std::size_t diverge = 0;
      while (diverge < pr.msgs.size() && diverge < ep.delivered.size() &&
             pr.msgs[diverge] == ep.delivered[diverge]) {
        diverge++;
      }
      std::ostringstream os;
      os << level << " " << group << " virtual synchrony: between views "
         << ep.view.to_string() << " and " << new_view.to_string()
         << " process " << p.value() << " delivered " << ep.delivered.size()
         << " message(s) but process " << pr.first_reporter.value()
         << " delivered " << pr.msgs.size() << " (first divergence at index "
         << diverge << ")";
      record(1, os.str(), {p, pr.first_reporter});
    }
  }
  ep.open = true;
  ep.view = new_view;
  ep.delivered.clear();
}

// --- vsync hooks --------------------------------------------------------------

void ProtocolOracle::on_hwg_view_installed(ProcessId p, HwgId gid,
                                           const vsync::View& view) {
  trace(p, TraceEvent{now(), EventKind::kHwgView, gid.value(), view.id,
                      view.id.coordinator, view.members.size()});
  if (!view.members.contains(p)) {
    std::ostringstream os;
    os << "hwg " << gid.value() << ": process " << p.value()
       << " installed view " << view.id.to_string()
       << " it is not a member of " << view.members;
    record(2, os.str(), {p});
  }
  auto [it, inserted] = hwg_views_.try_emplace({gid, view.id});
  ViewRecord& vr = it->second;
  if (inserted) {
    vr.members = view.members;
    vr.first_reporter = p;
  } else if (vr.members != view.members) {
    std::ostringstream os;
    os << "hwg " << gid.value() << " view " << view.id.to_string()
       << ": process " << p.value() << " installed membership " << view.members
       << " but process " << vr.first_reporter.value() << " installed "
       << vr.members;
    record(6, os.str(), {p, vr.first_reporter});
  }
  close_epoch(hwg_epochs_, hwg_pairs_, p, gid.value(), view.id, "hwg");
}

void ProtocolOracle::on_hwg_delivered(ProcessId p, HwgId gid,
                                      const vsync::ViewId& view,
                                      std::uint64_t seq, ProcessId origin,
                                      std::uint64_t sender_msg_id,
                                      std::span<const std::uint8_t> payload) {
  auto dit = drop_hwg_deliveries_.find(p);
  if (dit != drop_hwg_deliveries_.end() && dit->second > 0) {
    if (--dit->second == 0) drop_hwg_deliveries_.erase(dit);
    return;
  }
  trace(p, TraceEvent{now(), EventKind::kHwgDeliver, gid.value(), view, origin,
                      seq});
  const MsgKey key{origin, sender_msg_id, fnv1a64(payload)};

  // Total-order slot agreement: one message per (view, seq), everywhere.
  auto [sit, sinserted] = hwg_slots_.try_emplace({gid, view, seq});
  SlotRecord& slot = sit->second;
  if (sinserted) {
    slot.key = key;
    slot.first_reporter = p;
  } else if (slot.key != key) {
    std::ostringstream os;
    os << "hwg " << gid.value() << " view " << view.to_string() << " seq "
       << seq << ": process " << p.value() << " delivered ("
       << origin.value() << "," << sender_msg_id << ") but process "
       << slot.first_reporter.value() << " delivered ("
       << slot.key.origin.value() << "," << slot.key.smid << ")";
    record(1, os.str(), {p, slot.first_reporter});
  }

  // View-tagged delivery: sender and receiver are members of the view.
  auto vit = hwg_views_.find({gid, view});
  if (vit == hwg_views_.end()) {
    std::ostringstream os;
    os << "hwg " << gid.value() << ": process " << p.value()
       << " delivered seq " << seq << " in view " << view.to_string()
       << " that no process reported installing";
    record(3, os.str(), {p});
  } else {
    if (!vit->second.members.contains(origin)) {
      std::ostringstream os;
      os << "hwg " << gid.value() << " view " << view.to_string()
         << ": delivered message from " << origin.value()
         << " which is not a member of " << vit->second.members;
      record(3, os.str(), {p, origin});
    }
    if (!vit->second.members.contains(p)) {
      std::ostringstream os;
      os << "hwg " << gid.value() << " view " << view.to_string()
         << ": process " << p.value()
         << " delivered a message without being a member";
      record(3, os.str(), {p});
    }
  }

  Epoch& ep = hwg_epochs_[{p, gid.value()}];
  if (ep.open && ep.view == view) {
    ep.delivered.push_back(key);
  } else {
    std::ostringstream os;
    os << "hwg " << gid.value() << ": process " << p.value()
       << " delivered seq " << seq << " tagged view " << view.to_string()
       << " while its installed view is "
       << (ep.open ? ep.view.to_string() : std::string("(none)"));
    record(3, os.str(), {p});
  }
}

void ProtocolOracle::on_hwg_flush_completed(ProcessId p, HwgId gid,
                                            const vsync::ViewId& old_view,
                                            bool initiator) {
  trace(p, TraceEvent{now(), EventKind::kHwgFlush, gid.value(), old_view,
                      ProcessId{}, initiator ? 1u : 0u});
}

void ProtocolOracle::on_hwg_endpoint_reset(ProcessId p, HwgId gid) {
  trace(p, TraceEvent{now(), EventKind::kHwgReset, gid.value(), {}, {}, 0});
  Epoch& ep = hwg_epochs_[{p, gid.value()}];
  ep.open = false;
  ep.delivered.clear();
}

// --- lwg hooks ----------------------------------------------------------------

void ProtocolOracle::on_lwg_view_installed(
    ProcessId p, LwgId lwg, const lwg::LwgView& view,
    std::span<const vsync::ViewId> predecessors) {
  trace(p, TraceEvent{now(), EventKind::kLwgView, lwg.value(), view.id,
                      view.id.coordinator, predecessors.size()});
  if (!view.members.contains(p)) {
    std::ostringstream os;
    os << "lwg " << lwg.value() << ": process " << p.value()
       << " installed view " << view.id.to_string()
       << " it is not a member of " << view.members;
    record(2, os.str(), {p});
  }
  // Deterministically merged ids (disambig != 0) carry the min-pid
  // coordinator by construction (paper Fig. 5).
  if (view.id.disambig != 0 &&
      view.id.coordinator != view.members.min_member()) {
    std::ostringstream os;
    os << "lwg " << lwg.value() << " merged view " << view.id.to_string()
       << ": coordinator is not the minimum member of " << view.members;
    record(6, os.str(), {p});
  }
  auto [it, inserted] = lwg_views_.try_emplace({lwg, view.id});
  ViewRecord& vr = it->second;
  if (inserted) {
    vr.members = view.members;
    vr.hwg = view.hwg;
    vr.first_reporter = p;
  } else {
    if (vr.members != view.members) {
      std::ostringstream os;
      os << "lwg " << lwg.value() << " view " << view.id.to_string()
         << ": process " << p.value() << " installed membership "
         << view.members << " but process " << vr.first_reporter.value()
         << " installed " << vr.members;
      record(6, os.str(), {p, vr.first_reporter});
    }
    if (vr.hwg != view.hwg) {
      std::ostringstream os;
      os << "lwg " << lwg.value() << " view " << view.id.to_string()
         << ": process " << p.value() << " mapped it on hwg "
         << view.hwg.value() << " but process " << vr.first_reporter.value()
         << " mapped it on hwg " << vr.hwg.value();
      record(4, os.str(), {p, vr.first_reporter});
    }
  }
  close_epoch(lwg_epochs_, lwg_pairs_, p, lwg.value(), view.id, "lwg");
}

void ProtocolOracle::on_lwg_delivered(ProcessId p, LwgId lwg,
                                      const vsync::ViewId& view, ProcessId src,
                                      std::span<const std::uint8_t> payload) {
  trace(p, TraceEvent{now(), EventKind::kLwgDeliver, lwg.value(), view, src,
                      payload.empty() ? 0 : std::uint64_t{payload.front()}});
  const MsgKey key{src, 0, fnv1a64(payload)};
  auto vit = lwg_views_.find({lwg, view});
  if (vit == lwg_views_.end()) {
    std::ostringstream os;
    os << "lwg " << lwg.value() << ": process " << p.value()
       << " delivered data in view " << view.to_string()
       << " that no process reported installing";
    record(3, os.str(), {p});
  } else {
    if (!vit->second.members.contains(src)) {
      std::ostringstream os;
      os << "lwg " << lwg.value() << " view " << view.to_string()
         << ": delivered data from " << src.value()
         << " which is not a member of " << vit->second.members;
      record(3, os.str(), {p, src});
    }
    if (!vit->second.members.contains(p)) {
      std::ostringstream os;
      os << "lwg " << lwg.value() << " view " << view.to_string()
         << ": process " << p.value()
         << " delivered data without being a member";
      record(3, os.str(), {p});
    }
  }
  Epoch& ep = lwg_epochs_[{p, lwg.value()}];
  if (ep.open && ep.view == view) {
    ep.delivered.push_back(key);
  } else {
    std::ostringstream os;
    os << "lwg " << lwg.value() << ": process " << p.value()
       << " delivered data tagged view " << view.to_string()
       << " while its installed view is "
       << (ep.open ? ep.view.to_string() : std::string("(none)"));
    record(3, os.str(), {p});
  }
}

void ProtocolOracle::on_lwg_epoch_reset(ProcessId p, LwgId lwg) {
  trace(p, TraceEvent{now(), EventKind::kLwgReset, lwg.value(), {}, {}, 0});
  Epoch& ep = lwg_epochs_[{p, lwg.value()}];
  ep.open = false;
  ep.delivered.clear();
}

// --- naming hooks -------------------------------------------------------------

void ProtocolOracle::on_mapping_written(NodeId server, LwgId lwg,
                                        const names::MappingEntry& entry) {
  trace_node(server, TraceEvent{now(), EventKind::kMapWrite, lwg.value(),
                                entry.lwg_view, ProcessId{}, entry.stamp});
}

void ProtocolOracle::on_mapping_gced(NodeId server, LwgId lwg,
                                     const vsync::ViewId& lwg_view) {
  trace_node(server, TraceEvent{now(), EventKind::kMapGc, lwg.value(),
                                lwg_view, {}, 0});
}

// --- convergence (#4/#5) ------------------------------------------------------

namespace {

struct ConvFailure {
  int invariant = 5;
  std::string message;
};

std::optional<ConvFailure> find_convergence_failure(
    const ConvergenceSnapshot& snap) {
  std::ostringstream os;
  for (const auto& [pid, lwg] : snap.unresolved) {
    os << "process " << pid.value() << " joined lwg " << lwg.value()
       << " but holds no view";
    return ConvFailure{5, os.str()};
  }
  for (const auto& [lwg, holders] : snap.holders) {
    if (holders.empty()) continue;
    const lwg::LwgView& ref = holders.front().view;
    MemberSet holding;
    for (const auto& h : holders) {
      holding.insert(h.pid);
      if (!(h.view == ref)) {
        os << "lwg " << lwg.value() << " diverged: process "
           << h.pid.value() << " holds view " << h.view.id.to_string()
           << h.view.members << " on hwg " << h.view.hwg.value()
           << " but process " << holders.front().pid.value()
           << " holds view " << ref.id.to_string() << ref.members
           << " on hwg " << ref.hwg.value();
        return ConvFailure{5, os.str()};
      }
      if (!ref.members.contains(h.pid)) {
        os << "process " << h.pid.value() << " holds a view of lwg "
           << lwg.value() << " it is not a member of";
        return ConvFailure{5, os.str()};
      }
    }
    for (ProcessId m : ref.members.members()) {
      if (!snap.alive.contains(m)) {
        os << "lwg " << lwg.value() << " converged view " << ref.id.to_string()
           << " still contains crashed process " << m.value();
        return ConvFailure{5, os.str()};
      }
      if (!holding.contains(m)) {
        os << "member " << m.value() << " of lwg " << lwg.value()
           << " does not hold the converged view " << ref.id.to_string();
        return ConvFailure{5, os.str()};
      }
    }
  }
  // Naming-service convergence: for every LWG that still has live members,
  // each replica holds exactly one alive row matching the converged view
  // (genealogy GC fired); replicas agree pairwise on every record.
  for (const auto& [node, db] : snap.databases) {
    for (const auto& [lwg, holders] : snap.holders) {
      if (holders.empty()) continue;
      const lwg::LwgView& ref = holders.front().view;
      auto rit = db->records.find(lwg);
      if (rit == db->records.end()) {
        os << "ns node " << node.value() << " has no record for live lwg "
           << lwg.value();
        return ConvFailure{4, os.str()};
      }
      // Rows whose members all crashed are excused: crash and partition
      // are indistinguishable, so no one may supersede a view that could
      // still be running behind a partition — its row legitimately stays
      // until a successor covering it is registered (which, with every
      // member dead, never comes). Every row with a *live* member must
      // have been reconciled away, though.
      std::vector<names::MappingEntry> rows;
      for (names::MappingEntry& row : rit->second.alive_entries()) {
        if (row.lwg_members.set_intersection(snap.alive).size() > 0) {
          rows.push_back(std::move(row));
        }
      }
      if (rows.size() != 1) {
        os << "ns node " << node.value() << " holds " << rows.size()
           << " alive rows with live members for live lwg " << lwg.value()
           << " (genealogy GC should leave exactly one):";
        for (const names::MappingEntry& row : rows) {
          os << " [" << row.lwg_view.to_string() << row.lwg_members
             << " on hwg " << row.hwg.value() << "]";
        }
        return ConvFailure{4, os.str()};
      }
      const names::MappingEntry& e = rows.front();
      if (e.lwg_view != ref.id || e.hwg != ref.hwg ||
          !(e.lwg_members == ref.members)) {
        os << "ns node " << node.value() << " row for lwg " << lwg.value()
           << " maps view " << e.lwg_view.to_string() << " on hwg "
           << e.hwg.value() << " but the converged view is "
           << ref.id.to_string() << " on hwg " << ref.hwg.value();
        return ConvFailure{4, os.str()};
      }
    }
  }
  if (snap.databases.size() > 1) {
    const auto& [node0, db0] = snap.databases.front();
    for (std::size_t i = 1; i < snap.databases.size(); ++i) {
      const auto& [node_i, db_i] = snap.databases[i];
      std::set<LwgId> keys;
      for (const auto& [lwg, rec] : db0->records) keys.insert(lwg);
      for (const auto& [lwg, rec] : db_i->records) keys.insert(lwg);
      for (LwgId lwg : keys) {
        auto a = db0->records.find(lwg);
        auto b = db_i->records.find(lwg);
        const std::vector<names::MappingEntry> rows_a =
            a == db0->records.end() ? std::vector<names::MappingEntry>{}
                                    : a->second.alive_entries();
        const std::vector<names::MappingEntry> rows_b =
            b == db_i->records.end() ? std::vector<names::MappingEntry>{}
                                     : b->second.alive_entries();
        if (!(rows_a == rows_b)) {
          os << "ns replicas " << node0.value() << " and " << node_i.value()
             << " disagree on lwg " << lwg.value() << " (" << rows_a.size()
             << " vs " << rows_b.size() << " alive rows)";
          return ConvFailure{4, os.str()};
        }
      }
    }
  }
  return std::nullopt;
}

}  // namespace

std::string check_converged(const ConvergenceSnapshot& snap) {
  auto failure = find_convergence_failure(snap);
  return failure ? failure->message : std::string{};
}

bool ProtocolOracle::check_convergence(const ConvergenceSnapshot& snap) {
  auto failure = find_convergence_failure(snap);
  if (!failure) return true;
  record_node(failure->invariant,
              "convergence: " + std::move(failure->message), {});
  return false;
}

// --- reporting ----------------------------------------------------------------

std::string ProtocolOracle::report_json() const {
  std::ostringstream os;
  os << "{\"total_violations\":" << total_ << ",\"violations\":[";
  for (std::size_t i = 0; i < violations_.size(); ++i) {
    const Violation& v = violations_[i];
    if (i > 0) os << ',';
    os << "{\"invariant\":" << v.invariant << ",\"time\":" << v.time
       << ",\"description\":\"";
    append_escaped(os, v.description);
    os << "\",\"actors\":[";
    for (std::size_t j = 0; j < v.actors.size(); ++j) {
      if (j > 0) os << ',';
      os << v.actors[j].value();
    }
    os << "]}";
  }
  os << "],\"traces\":{";
  std::set<NodeId> wanted;
  for (const Violation& v : violations_) {
    for (NodeId n : v.actors) wanted.insert(n);
  }
  bool first = true;
  for (NodeId n : wanted) {
    auto it = traces_.find(n);
    if (it == traces_.end()) continue;
    if (!first) os << ',';
    first = false;
    os << "\"node" << n.value() << "\":[";
    bool first_event = true;
    it->second.for_each([&](const TraceEvent& event) {
      if (!first_event) os << ',';
      first_event = false;
      write_json(os, event);
    });
    os << ']';
  }
  os << "}}";
  return os.str();
}

}  // namespace plwg::oracle
