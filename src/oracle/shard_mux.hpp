// Shard-aware observer multiplexer: funnels per-shard protocol events into
// the (single-threaded) protocol oracle in a deterministic global order.
//
// Worker threads must never call into the oracle directly — its state is one
// big cross-node table. Instead every observer hook fired inside a shard
// window is captured by value (timestamp + arguments) into that shard's
// ring; rings are single-writer (only the thread currently running the
// shard appends) and are drained on the driver thread at every engine
// window barrier. The drain merges all rings by (event time, shard index,
// ring position) — a total order that depends only on the simulation, not
// on the thread schedule — and replays each event into the downstream
// observers with the oracle's clock pinned to the event's original
// timestamp, so violation reports keep precise times.
//
// Hooks fired outside any shard window (driver-thread test code, engine
// idle) apply immediately; rings are always empty then because every
// Engine::run_until ends with a barrier drain.
#pragma once

#include <cstdint>
#include <vector>

#include "lwg/observer.hpp"
#include "names/observer.hpp"
#include "sim/engine.hpp"
#include "util/function.hpp"
#include "util/types.hpp"
#include "vsync/observer.hpp"

namespace plwg::oracle {

class ShardedObserverMux final : public vsync::VsyncObserver,
                                 public lwg::LwgObserver,
                                 public names::NamingObserver {
 public:
  ShardedObserverMux(sim::Engine& engine, vsync::VsyncObserver* vsync,
                     lwg::LwgObserver* lwg, names::NamingObserver* naming)
      : engine_(engine), vsync_(vsync), lwg_(lwg), naming_(naming) {
    rings_.resize(engine.num_shards());
  }

  /// Replay every ringed event into the downstream observers in the global
  /// deterministic order. Registered as an engine barrier hook; also safe
  /// to call while idle.
  void drain();

  /// Clock for the downstream oracle: the replayed event's original
  /// timestamp during drain, the running shard's clock inside a window,
  /// the engine horizon otherwise.
  [[nodiscard]] Time now() const {
    return replaying_ ? replay_time_ : engine_.log_now();
  }

  // vsync::VsyncObserver
  void on_hwg_view_installed(ProcessId p, HwgId gid,
                             const vsync::View& view) override;
  void on_hwg_delivered(ProcessId p, HwgId gid, const vsync::ViewId& view,
                        std::uint64_t seq, ProcessId origin,
                        std::uint64_t sender_msg_id,
                        std::span<const std::uint8_t> payload) override;
  void on_hwg_flush_completed(ProcessId p, HwgId gid, const vsync::ViewId& old_view,
                              bool initiator) override;
  void on_hwg_endpoint_reset(ProcessId p, HwgId gid) override;

  // lwg::LwgObserver
  void on_lwg_view_installed(ProcessId p, LwgId lwg, const lwg::LwgView& view,
                             std::span<const vsync::ViewId> predecessors) override;
  void on_lwg_delivered(ProcessId p, LwgId lwg, const vsync::ViewId& view,
                        ProcessId src,
                        std::span<const std::uint8_t> payload) override;
  void on_lwg_epoch_reset(ProcessId p, LwgId lwg) override;

  // names::NamingObserver
  void on_mapping_written(NodeId server, LwgId lwg,
                          const names::MappingEntry& entry) override;
  void on_mapping_gced(NodeId server, LwgId lwg,
                       const vsync::ViewId& lwg_view) override;

 private:
  struct Entry {
    Time t;
    UniqueFunction replay;
  };

  /// True when the calling thread is inside a shard window: capture into
  /// that shard's ring. False (driver thread): apply downstream now.
  template <class F>
  void dispatch(F&& apply) {
    const int shard = sim::Engine::current_shard();
    if (shard < 0) {
      apply();
      return;
    }
    rings_[static_cast<std::size_t>(shard)].push_back(
        Entry{engine_.log_now(), std::forward<F>(apply)});
  }

  sim::Engine& engine_;
  vsync::VsyncObserver* vsync_;
  lwg::LwgObserver* lwg_;
  names::NamingObserver* naming_;
  std::vector<std::vector<Entry>> rings_;  // one per shard, single-writer
  bool replaying_ = false;
  Time replay_time_ = 0;
};

}  // namespace plwg::oracle
