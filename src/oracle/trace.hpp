// Per-node ring buffer of protocol events. The oracle records every
// observed event here; when an invariant trips, the rings of the involved
// nodes are dumped as JSON alongside the violation so the offending
// interleaving can be reconstructed without re-running the seed.
#pragma once

#include <cstddef>
#include <cstdint>
#include <ostream>
#include <vector>

#include "util/types.hpp"
#include "vsync/view.hpp"

namespace plwg::oracle {

enum class EventKind : std::uint8_t {
  kHwgView,
  kHwgDeliver,
  kHwgFlush,
  kHwgReset,
  kLwgView,
  kLwgDeliver,
  kLwgReset,
  kMapWrite,
  kMapGc,
};

[[nodiscard]] const char* event_kind_name(EventKind kind);

struct TraceEvent {
  Time time = 0;
  EventKind kind = EventKind::kHwgView;
  std::uint64_t group = 0;  // HwgId or LwgId value
  vsync::ViewId view;
  ProcessId peer;      // origin / src / initiator, where applicable
  std::uint64_t arg = 0;  // seq / sender_msg_id / stamp
};

/// Append `event` to `os` as one JSON object.
void write_json(std::ostream& os, const TraceEvent& event);

/// Fixed-capacity ring: pushing past capacity overwrites the oldest event.
class TraceRing {
 public:
  explicit TraceRing(std::size_t capacity = 512);

  void push(const TraceEvent& event);
  [[nodiscard]] std::size_t size() const;

  /// Oldest-to-newest iteration.
  template <typename Fn>
  void for_each(Fn&& fn) const {
    const std::size_t n = size();
    const std::size_t start = full_ ? head_ : 0;
    for (std::size_t i = 0; i < n; ++i) {
      fn(buf_[(start + i) % buf_.size()]);
    }
  }

 private:
  std::vector<TraceEvent> buf_;
  std::size_t head_ = 0;  // next write slot
  bool full_ = false;
};

}  // namespace plwg::oracle
