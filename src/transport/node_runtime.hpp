// Per-host runtime: owns the host's network identity, demultiplexes inbound
// packets to the services running on the host (vsync stack, naming service,
// application), and provides timer conveniences.
//
// Wire format of every packet: [u8 port][payload...]. Each service parses
// its own payload with the bounds-checked Decoder.
#pragma once

#include <array>
#include <span>
#include <utility>

#include "sim/network.hpp"
#include "sim/simulator.hpp"
#include "util/codec.hpp"
#include "util/types.hpp"

namespace plwg::transport {

/// Service multiplexing key, one per protocol stack on a host.
enum class Port : std::uint8_t {
  kVsync = 1,   // heavy-weight group layer
  kNaming = 2,  // naming service (client<->server and server<->server)
  kApp = 3,     // example applications / test fixtures
};

inline constexpr std::size_t kPortCount = 4;

/// Implemented by each service attached to a port.
class PortHandler {
 public:
  virtual ~PortHandler() = default;
  /// `dec` is positioned after the port byte.
  virtual void on_message(NodeId from, Decoder& dec) = 0;
};

/// Application processes map 1:1 onto nodes; these conversions document the
/// role change (network address vs. group-membership identity).
[[nodiscard]] constexpr ProcessId process_of(NodeId n) {
  return ProcessId{n.value()};
}
[[nodiscard]] constexpr NodeId node_of(ProcessId p) { return NodeId{p.value()}; }

class NodeRuntime : public sim::NetHandler {
 public:
  explicit NodeRuntime(sim::Network& net);
  NodeRuntime(const NodeRuntime&) = delete;
  NodeRuntime& operator=(const NodeRuntime&) = delete;

  [[nodiscard]] NodeId id() const { return id_; }
  [[nodiscard]] ProcessId process_id() const { return process_of(id_); }
  [[nodiscard]] sim::Network& network() { return net_; }
  [[nodiscard]] sim::Simulator& simulator() { return net_.simulator(); }
  [[nodiscard]] Time now() const { return net_.simulator().now(); }

  /// Attach a service; the handler must outlive the runtime.
  void register_port(Port port, PortHandler& handler);

  void send(Port port, NodeId to, const Encoder& payload);
  void multicast(Port port, std::span<const NodeId> dests,
                 const Encoder& payload);
  void multicast(Port port, std::span<const ProcessId> dests,
                 const Encoder& payload);

  /// Schedule a callback on this host after `delay`; no-op if the host has
  /// crashed by the time it fires. Templated (rather than taking a
  /// type-erased callable) so the crash-check wrapper and the user's
  /// capture land in the simulator slot as ONE flat closure — nesting an
  /// erased callable inside the wrapper would always spill to the heap.
  template <class F>
  sim::TimerId after(Duration delay, F&& fn) {
    return simulator().schedule_after(
        delay, [this, fn = std::forward<F>(fn)]() mutable {
          if (net_.crashed(id_)) return;
          fn();
        });
  }
  void cancel(sim::TimerId timer) { simulator().cancel(timer); }

  // sim::NetHandler
  void on_packet(NodeId from, std::span<const std::uint8_t> data) override;

 private:
  [[nodiscard]] std::vector<std::uint8_t> frame(
      Port port, const Encoder& payload) const;

  sim::Network& net_;
  NodeId id_;
  std::array<PortHandler*, kPortCount> handlers_{};
  std::vector<NodeId> dest_scratch_;  // reused by the ProcessId multicast
};

}  // namespace plwg::transport
