// Per-host runtime: owns the host's network identity, demultiplexes inbound
// frames to the services running on the host (vsync stack, naming service,
// application), provides timer conveniences, and coalesces outbound traffic.
//
// Outgoing messages are not sent one frame each. They are staged per
// destination node and flushed as ONE multi-message frame per destination at
// the end of the current event-loop round (or immediately when invoked from
// outside the event loop, or after at most `max_linger_us` when lingering is
// configured). Per-frame costs — the 46B wire header, the bus occupancy, and
// above all the receiver's per-packet CPU charge — are paid once per frame
// instead of once per protocol message, which is where the LWG service's
// amortization story actually lands on the wire. Stability traffic (acks,
// heartbeats, flush votes) is tagged `MsgClass::kAck` by its senders so the
// stats can report how much of it piggybacked on frames it shared with data.
//
// Wire format of every frame:
//   [u32 incarnation][u32 checksum][u16 count]
//     then `count` entries of [u8 port][u32 len][payload...]
// `incarnation` is the sender's crash-restart incarnation: a receiver that
// has heard a newer incarnation of the same node drops the whole frame, so a
// restarted node's ghosts cannot reanimate old protocol state at its peers.
// `checksum` (FNV-1a over incarnation + everything after the checksum field)
// covers the entire batch: in-transit corruption rejects the frame whole —
// corruption degrades to loss, never to a half-poisoned batch. Because a
// batch is one sim::Network packet, it is also delivered or dropped
// atomically against crash epochs and partitions.
// Each service parses its own payload with the bounds-checked Decoder.
#pragma once

#include <array>
#include <span>
#include <utility>
#include <vector>

#include "sim/network.hpp"
#include "sim/simulator.hpp"
#include "util/codec.hpp"
#include "util/types.hpp"

namespace plwg::transport {

/// Service multiplexing key, one per protocol stack on a host.
enum class Port : std::uint8_t {
  kVsync = 1,   // heavy-weight group layer
  kNaming = 2,  // naming service (client<->server and server<->server)
  kApp = 3,     // example applications / test fixtures
};

inline constexpr std::size_t kPortCount = 4;

/// What a staged message is, for the amortization accounting. `kAck` marks
/// stability traffic — acks, heartbeats, flush votes, anti-entropy — whose
/// whole frame cost disappears when it shares a frame with anything else.
enum class MsgClass : std::uint8_t { kData = 0, kAck = 1 };

/// Knobs for the coalescing layer.
struct TransportConfig {
  /// Flush a destination's batch early rather than let the frame exceed
  /// this size (a staged message larger than the cap still goes out, alone).
  std::size_t max_batch_bytes = 16 * 1024;
  /// How long a staged message may linger waiting for frame-mates. 0 means
  /// "end of the current event-loop round": the flush fires at the same
  /// simulated time it was staged, adding zero latency while still merging
  /// everything the round produced. Positive values trade latency for
  /// cross-round coalescing.
  Duration max_linger_us = 0;
};

/// Implemented by each service attached to a port.
class PortHandler {
 public:
  virtual ~PortHandler() = default;
  /// `dec` is positioned at the start of this service's payload.
  virtual void on_message(NodeId from, Decoder& dec) = 0;
};

/// Application processes map 1:1 onto nodes; these conversions document the
/// role change (network address vs. group-membership identity).
[[nodiscard]] constexpr ProcessId process_of(NodeId n) {
  return ProcessId{n.value()};
}
[[nodiscard]] constexpr NodeId node_of(ProcessId p) { return NodeId{p.value()}; }

/// Size of the frame header preceding the batched entries.
inline constexpr std::size_t kFrameHeaderBytes = 10;
/// Per-entry overhead inside a frame: [u8 port][u32 len].
inline constexpr std::size_t kEntryHeaderBytes = 5;

class NodeRuntime : public sim::NetHandler {
 public:
  /// Counters for inbound frames the demux refused. Hostile or corrupted
  /// input must never assert or throw past this layer — it is counted and
  /// dropped.
  struct Stats {
    std::uint64_t malformed_frames = 0;          // short frame / bad checksum
    std::uint64_t stale_incarnation_drops = 0;   // ghost of a restarted peer
    std::uint64_t unbound_port_drops = 0;        // per entry
    std::uint64_t decode_errors = 0;             // service rejected payload
    // Outbound accounting (this node only; sim::NetworkStats aggregates).
    std::uint64_t frames_sent = 0;
    std::uint64_t messages_sent = 0;
    std::uint64_t piggybacked_acks = 0;
  };

  explicit NodeRuntime(sim::Network& net, TransportConfig config = {});
  /// Rebind a rebuilt host stack to an existing (crashed) node as a fresh
  /// incarnation: the node revives with the same NodeId, and every frame it
  /// sends from now on is tagged with `incarnation`.
  NodeRuntime(sim::Network& net, NodeId reuse, std::uint32_t incarnation,
              TransportConfig config = {});
  NodeRuntime(const NodeRuntime&) = delete;
  NodeRuntime& operator=(const NodeRuntime&) = delete;

  [[nodiscard]] NodeId id() const { return id_; }
  [[nodiscard]] std::uint32_t incarnation() const { return incarnation_; }
  [[nodiscard]] const Stats& stats() const { return stats_; }
  [[nodiscard]] const TransportConfig& config() const { return config_; }
  [[nodiscard]] ProcessId process_id() const { return process_of(id_); }
  [[nodiscard]] sim::Network& network() { return net_; }
  /// The event loop running this node's shard: node-local timers must live
  /// there so they execute (deterministically) with the node's events.
  [[nodiscard]] sim::Simulator& simulator() { return net_.simulator_for(id_); }
  [[nodiscard]] Time now() const { return net_.simulator_for(id_).now(); }

  /// Attach a service; the handler must outlive the runtime.
  void register_port(Port port, PortHandler& handler);

  /// Stage a message for `to`; it rides the destination's next frame flush.
  /// When called from outside the event loop with max_linger_us == 0 the
  /// flush is immediate (one message, one frame) — driver code that calls
  /// send() directly keeps synchronous semantics.
  void send(Port port, NodeId to, const Encoder& payload,
            MsgClass cls = MsgClass::kData);
  void multicast(Port port, std::span<const NodeId> dests,
                 const Encoder& payload, MsgClass cls = MsgClass::kData);
  void multicast(Port port, std::span<const ProcessId> dests,
                 const Encoder& payload, MsgClass cls = MsgClass::kData);

  /// Flush every staged batch now. Destinations whose staged bytes are
  /// identical (the common pure-multicast case) go out as ONE network
  /// multicast, preserving the shared bus's one-occupancy-per-multicast
  /// economics; a destination that also carries piggybacked extras gets its
  /// own frame. Safe to call with nothing staged.
  void flush_now();
  /// Messages staged and not yet flushed (tests).
  [[nodiscard]] std::size_t staged_messages() const { return staged_count_; }

  /// Schedule a callback on this host after `delay`; no-op if the host has
  /// crashed — or crashed and restarted as a new incarnation — by the time
  /// it fires. The guard captures the network and the scheduling
  /// incarnation's crash epoch *by value*, never `this`: once the node
  /// restarts, the whole host stack (including this runtime and whatever
  /// `fn` points into) is destroyed, so the epoch check is the only thing
  /// keeping a stale timer from dereferencing freed objects. Templated
  /// (rather than taking a type-erased callable) so the wrapper and the
  /// user's capture land in the simulator slot as ONE flat closure —
  /// nesting an erased callable inside the wrapper would always spill to
  /// the heap.
  template <class F>
  sim::TimerId after(Duration delay, F&& fn) {
    return simulator().schedule_after(
        delay, [net = &net_, id = id_, epoch = net_.crash_epoch(id_),
                fn = std::forward<F>(fn)]() mutable {
          if (net->crashed(id) || net->crash_epoch(id) != epoch) return;
          fn();
        });
  }
  void cancel(sim::TimerId timer) { simulator().cancel(timer); }

  // sim::NetHandler
  void on_packet(NodeId from, std::span<const std::uint8_t> data) override;

 private:
  /// One destination's pending frame: staged entry bytes plus accounting.
  struct Batch {
    Encoder entries;           // [port][len][payload] * count
    std::uint16_t count = 0;
    std::uint16_t acks = 0;    // entries staged as MsgClass::kAck
    bool active = false;       // appears in active_dests_
  };

  [[nodiscard]] Batch& batch_for(NodeId to);
  void stage(Port port, NodeId to, const Encoder& payload, MsgClass cls);
  void schedule_flush();
  /// Emit one frame carrying `batch`'s entries to every node in `group`.
  void emit_frame(std::span<const NodeId> group, const Batch& batch);
  void clear_batch(Batch& batch);

  sim::Network& net_;
  TransportConfig config_;
  NodeId id_;
  std::uint32_t incarnation_ = 0;
  std::array<PortHandler*, kPortCount> handlers_{};
  std::vector<NodeId> dest_scratch_;   // reused by the ProcessId multicast
  std::vector<Batch> batches_;         // indexed by destination NodeId value
  std::vector<NodeId> active_dests_;   // staging order — the flush order
  std::vector<NodeId> group_scratch_;  // reused by flush_now's grouping
  std::size_t staged_count_ = 0;
  bool flush_scheduled_ = false;
  sim::TimerId flush_timer_ = 0;
  /// Highest incarnation heard per peer node (indexed by NodeId value);
  /// frames from lower incarnations are stale ghosts and are dropped.
  std::vector<std::uint32_t> peer_incarnation_;
  Stats stats_;
};

}  // namespace plwg::transport
