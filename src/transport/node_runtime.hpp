// Per-host runtime: owns the host's network identity, demultiplexes inbound
// packets to the services running on the host (vsync stack, naming service,
// application), and provides timer conveniences.
//
// Wire format of every packet:
//   [u8 port][u32 incarnation][u32 checksum][payload...]
// `incarnation` is the sender's crash-restart incarnation: a receiver that
// has heard a newer incarnation of the same node drops the frame, so a
// restarted node's ghosts cannot reanimate old protocol state at its peers.
// `checksum` (FNV-1a over port + incarnation + payload) turns in-transit
// corruption into plain loss before it can poison the demux or a parser.
// Each service parses its own payload with the bounds-checked Decoder.
#pragma once

#include <array>
#include <span>
#include <utility>

#include "sim/network.hpp"
#include "sim/simulator.hpp"
#include "util/codec.hpp"
#include "util/types.hpp"

namespace plwg::transport {

/// Service multiplexing key, one per protocol stack on a host.
enum class Port : std::uint8_t {
  kVsync = 1,   // heavy-weight group layer
  kNaming = 2,  // naming service (client<->server and server<->server)
  kApp = 3,     // example applications / test fixtures
};

inline constexpr std::size_t kPortCount = 4;

/// Implemented by each service attached to a port.
class PortHandler {
 public:
  virtual ~PortHandler() = default;
  /// `dec` is positioned after the port byte.
  virtual void on_message(NodeId from, Decoder& dec) = 0;
};

/// Application processes map 1:1 onto nodes; these conversions document the
/// role change (network address vs. group-membership identity).
[[nodiscard]] constexpr ProcessId process_of(NodeId n) {
  return ProcessId{n.value()};
}
[[nodiscard]] constexpr NodeId node_of(ProcessId p) { return NodeId{p.value()}; }

/// Size of the frame header preceding every service payload.
inline constexpr std::size_t kFrameHeaderBytes = 9;

class NodeRuntime : public sim::NetHandler {
 public:
  /// Counters for inbound frames the demux refused. Hostile or corrupted
  /// input must never assert or throw past this layer — it is counted and
  /// dropped.
  struct Stats {
    std::uint64_t malformed_frames = 0;          // short frame / bad checksum
    std::uint64_t stale_incarnation_drops = 0;   // ghost of a restarted peer
    std::uint64_t unbound_port_drops = 0;
    std::uint64_t decode_errors = 0;             // service rejected payload
  };

  explicit NodeRuntime(sim::Network& net);
  /// Rebind a rebuilt host stack to an existing (crashed) node as a fresh
  /// incarnation: the node revives with the same NodeId, and every frame it
  /// sends from now on is tagged with `incarnation`.
  NodeRuntime(sim::Network& net, NodeId reuse, std::uint32_t incarnation);
  NodeRuntime(const NodeRuntime&) = delete;
  NodeRuntime& operator=(const NodeRuntime&) = delete;

  [[nodiscard]] NodeId id() const { return id_; }
  [[nodiscard]] std::uint32_t incarnation() const { return incarnation_; }
  [[nodiscard]] const Stats& stats() const { return stats_; }
  [[nodiscard]] ProcessId process_id() const { return process_of(id_); }
  [[nodiscard]] sim::Network& network() { return net_; }
  [[nodiscard]] sim::Simulator& simulator() { return net_.simulator(); }
  [[nodiscard]] Time now() const { return net_.simulator().now(); }

  /// Attach a service; the handler must outlive the runtime.
  void register_port(Port port, PortHandler& handler);

  void send(Port port, NodeId to, const Encoder& payload);
  void multicast(Port port, std::span<const NodeId> dests,
                 const Encoder& payload);
  void multicast(Port port, std::span<const ProcessId> dests,
                 const Encoder& payload);

  /// Schedule a callback on this host after `delay`; no-op if the host has
  /// crashed — or crashed and restarted as a new incarnation — by the time
  /// it fires. The guard captures the network and the scheduling
  /// incarnation's crash epoch *by value*, never `this`: once the node
  /// restarts, the whole host stack (including this runtime and whatever
  /// `fn` points into) is destroyed, so the epoch check is the only thing
  /// keeping a stale timer from dereferencing freed objects. Templated
  /// (rather than taking a type-erased callable) so the wrapper and the
  /// user's capture land in the simulator slot as ONE flat closure —
  /// nesting an erased callable inside the wrapper would always spill to
  /// the heap.
  template <class F>
  sim::TimerId after(Duration delay, F&& fn) {
    return simulator().schedule_after(
        delay, [net = &net_, id = id_, epoch = net_.crash_epoch(id_),
                fn = std::forward<F>(fn)]() mutable {
          if (net->crashed(id) || net->crash_epoch(id) != epoch) return;
          fn();
        });
  }
  void cancel(sim::TimerId timer) { simulator().cancel(timer); }

  // sim::NetHandler
  void on_packet(NodeId from, std::span<const std::uint8_t> data) override;

 private:
  [[nodiscard]] std::vector<std::uint8_t> frame(
      Port port, const Encoder& payload) const;

  sim::Network& net_;
  NodeId id_;
  std::uint32_t incarnation_ = 0;
  std::array<PortHandler*, kPortCount> handlers_{};
  std::vector<NodeId> dest_scratch_;  // reused by the ProcessId multicast
  /// Highest incarnation heard per peer node (indexed by NodeId value);
  /// frames from lower incarnations are stale ghosts and are dropped.
  std::vector<std::uint32_t> peer_incarnation_;
  Stats stats_;
};

}  // namespace plwg::transport
