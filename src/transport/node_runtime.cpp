#include "transport/node_runtime.hpp"

#include <algorithm>

#include "util/assert.hpp"
#include "util/log.hpp"

namespace plwg::transport {

namespace {

/// FNV-1a over the frame's protected bytes: the sender incarnation plus
/// everything after the checksum field (count + all entries). Cheap,
/// order-sensitive, and catches both bit flips and truncation — of any
/// entry, anywhere in the batch, rejecting the frame whole.
std::uint32_t frame_checksum(std::uint32_t incarnation,
                             std::span<const std::uint8_t> protected_bytes) {
  std::uint32_t h = 2166136261u;
  auto mix = [&h](std::uint8_t b) {
    h ^= b;
    h *= 16777619u;
  };
  for (int i = 0; i < 4; ++i) {
    mix(static_cast<std::uint8_t>(incarnation >> (8 * i)));
  }
  for (std::uint8_t b : protected_bytes) mix(b);
  return h;
}

void put_u16_le(std::vector<std::uint8_t>& out, std::uint16_t v) {
  out.push_back(static_cast<std::uint8_t>(v));
  out.push_back(static_cast<std::uint8_t>(v >> 8));
}

void put_u32_le(std::vector<std::uint8_t>& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }
}

std::uint16_t get_u16_le(std::span<const std::uint8_t> in) {
  return static_cast<std::uint16_t>(in[0] |
                                    (static_cast<std::uint16_t>(in[1]) << 8));
}

std::uint32_t get_u32_le(std::span<const std::uint8_t> in) {
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<std::uint32_t>(in[static_cast<std::size_t>(i)]) << (8 * i);
  }
  return v;
}

/// Frame entries a u16 count can index.
constexpr std::size_t kMaxEntriesPerFrame = 0xFFFF;

}  // namespace

NodeRuntime::NodeRuntime(sim::Network& net, TransportConfig config)
    : net_(net), config_(config), id_(net.add_node(*this)) {}

NodeRuntime::NodeRuntime(sim::Network& net, NodeId reuse,
                         std::uint32_t incarnation, TransportConfig config)
    : net_(net), config_(config), id_(reuse), incarnation_(incarnation) {
  net_.restart(reuse, *this);
}

void NodeRuntime::register_port(Port port, PortHandler& handler) {
  const auto idx = static_cast<std::size_t>(port);
  PLWG_ASSERT(idx < kPortCount);
  PLWG_ASSERT_MSG(handlers_[idx] == nullptr, "port already registered");
  handlers_[idx] = &handler;
}

NodeRuntime::Batch& NodeRuntime::batch_for(NodeId to) {
  if (to.value() >= batches_.size()) {
    batches_.resize(to.value() + 1);
  }
  return batches_[to.value()];
}

void NodeRuntime::stage(Port port, NodeId to, const Encoder& payload,
                        MsgClass cls) {
  PLWG_ASSERT(to.valid());
  Batch& b = batch_for(to);
  // Flush this destination early rather than grow past the frame-size cap
  // or the u16 entry count; the overflowing message starts a fresh batch.
  if (b.active &&
      (kFrameHeaderBytes + b.entries.size() + kEntryHeaderBytes +
               payload.size() >
           config_.max_batch_bytes ||
       b.count == kMaxEntriesPerFrame)) {
    flush_now();
  }
  if (!b.active) {
    b.active = true;
    active_dests_.push_back(to);
  }
  b.entries.put_u8(static_cast<std::uint8_t>(port));
  b.entries.put_u32(static_cast<std::uint32_t>(payload.size()));
  b.entries.put_raw(payload.bytes());
  b.count++;
  if (cls == MsgClass::kAck) b.acks++;
  staged_count_++;
}

void NodeRuntime::schedule_flush() {
  if (flush_scheduled_) return;
  if (!simulator().in_event() && config_.max_linger_us == 0) {
    // Driver/test code calling send() directly, no lingering configured:
    // keep the old synchronous one-message-one-frame behavior.
    flush_now();
    return;
  }
  flush_scheduled_ = true;
  // With max_linger_us == 0 this fires at the *same simulated time*, after
  // every event already queued for this instant — i.e. at the end of the
  // current round, adding zero latency. The `after` guard keeps a flush
  // scheduled by a now-dead incarnation from ever touching its successor.
  flush_timer_ = after(config_.max_linger_us, [this] {
    flush_scheduled_ = false;
    flush_now();
  });
}

void NodeRuntime::clear_batch(Batch& batch) {
  batch.entries.clear();
  batch.count = 0;
  batch.acks = 0;
  batch.active = false;
}

void NodeRuntime::emit_frame(std::span<const NodeId> group,
                             const Batch& batch) {
  const std::span<const std::uint8_t> entries = batch.entries.bytes();
  std::vector<std::uint8_t> frame;
  frame.reserve(kFrameHeaderBytes + entries.size());
  put_u32_le(frame, incarnation_);
  put_u32_le(frame, 0);  // checksum backfilled below
  put_u16_le(frame, batch.count);
  frame.insert(frame.end(), entries.begin(), entries.end());
  const std::uint32_t checksum = frame_checksum(
      incarnation_, std::span<const std::uint8_t>(frame).subspan(8));
  frame[4] = static_cast<std::uint8_t>(checksum);
  frame[5] = static_cast<std::uint8_t>(checksum >> 8);
  frame[6] = static_cast<std::uint8_t>(checksum >> 16);
  frame[7] = static_cast<std::uint8_t>(checksum >> 24);

  stats_.frames_sent++;
  stats_.messages_sent += batch.count;
  // An ack that shares its frame with anything else stopped costing a frame
  // of its own — that is the piggyback win the stats report.
  const std::uint64_t piggybacked = batch.count > 1 ? batch.acks : 0;
  stats_.piggybacked_acks += piggybacked;
  net_.note_frame(id_, batch.count, piggybacked);
  net_.multicast(id_, group, std::move(frame));
}

void NodeRuntime::flush_now() {
  if (flush_scheduled_) {
    cancel(flush_timer_);
    flush_scheduled_ = false;
  }
  if (active_dests_.empty()) return;
  if (net_.crashed(id_)) {
    // The sender died with messages staged: they die with it, like bytes
    // sitting in a dead host's socket buffers. Don't count them as sent.
    for (NodeId to : active_dests_) clear_batch(batches_[to.value()]);
    active_dests_.clear();
    staged_count_ = 0;
    return;
  }
  // Destinations whose staged bytes are identical — the pure-multicast
  // case — share one network transmission, preserving the shared bus's
  // one-occupancy-per-multicast economics. Group greedily in staging
  // order (deterministic); a destination whose batch also carries a
  // piggybacked extra simply falls out of the group and pays its own
  // frame, which is never worse than the unbatched transport.
  for (std::size_t i = 0; i < active_dests_.size(); ++i) {
    Batch& lead = batches_[active_dests_[i].value()];
    if (!lead.active) continue;  // already emitted with an earlier group
    group_scratch_.clear();
    group_scratch_.push_back(active_dests_[i]);
    const std::span<const std::uint8_t> lead_bytes = lead.entries.bytes();
    for (std::size_t j = i + 1; j < active_dests_.size(); ++j) {
      Batch& other = batches_[active_dests_[j].value()];
      if (!other.active || other.count != lead.count ||
          other.entries.size() != lead.entries.size()) {
        continue;
      }
      const std::span<const std::uint8_t> other_bytes = other.entries.bytes();
      if (!std::equal(lead_bytes.begin(), lead_bytes.end(),
                      other_bytes.begin())) {
        continue;
      }
      group_scratch_.push_back(active_dests_[j]);
      clear_batch(other);
    }
    emit_frame(group_scratch_, lead);
    staged_count_ -= static_cast<std::size_t>(lead.count) *
                     group_scratch_.size();
    clear_batch(lead);
  }
  active_dests_.clear();
}

// The flush is scheduled only after *all* of a call's destinations staged:
// a synchronous flush fired from inside the staging loop would emit the
// first destination's frame alone and forfeit the multicast's shared bus
// transmission.
void NodeRuntime::send(Port port, NodeId to, const Encoder& payload,
                       MsgClass cls) {
  stage(port, to, payload, cls);
  schedule_flush();
}

void NodeRuntime::multicast(Port port, std::span<const NodeId> dests,
                            const Encoder& payload, MsgClass cls) {
  for (NodeId to : dests) stage(port, to, payload, cls);
  if (!dests.empty()) schedule_flush();
}

void NodeRuntime::multicast(Port port, std::span<const ProcessId> dests,
                            const Encoder& payload, MsgClass cls) {
  for (ProcessId p : dests) stage(port, node_of(p), payload, cls);
  if (!dests.empty()) schedule_flush();
}

void NodeRuntime::on_packet(NodeId from, std::span<const std::uint8_t> data) {
  if (data.size() < kFrameHeaderBytes) {
    stats_.malformed_frames++;
    PLWG_WARN("transport", "short frame (", data.size(), "B) from node ",
              from);
    return;
  }
  const std::uint32_t incarnation = get_u32_le(data.subspan(0, 4));
  const std::uint32_t checksum = get_u32_le(data.subspan(4, 4));
  if (frame_checksum(incarnation, data.subspan(8)) != checksum) {
    // Corrupted in transit: refuse the WHOLE batch before the incarnation,
    // count, or any entry can poison state. Corruption degrades to loss.
    stats_.malformed_frames++;
    PLWG_WARN("transport", "bad checksum on frame from node ", from);
    return;
  }
  if (from.value() >= peer_incarnation_.size()) {
    peer_incarnation_.resize(from.value() + 1, 0);
  }
  std::uint32_t& known = peer_incarnation_[from.value()];
  if (incarnation < known) {
    stats_.stale_incarnation_drops++;
    PLWG_DEBUG("transport", "ghost frame from node ", from, " incarnation ",
               incarnation, " (now ", known, ")");
    return;
  }
  known = incarnation;
  const std::uint16_t count = get_u16_le(data.subspan(8, 2));
  std::span<const std::uint8_t> rest = data.subspan(kFrameHeaderBytes);
  for (std::uint16_t n = 0; n < count; ++n) {
    // The checksum already vouched for these bytes, so a bound violation
    // here is a sender framing bug rather than wire damage — but hostile
    // input can present a valid checksum over a malformed batch, so the
    // demux still refuses instead of trusting the counts.
    if (rest.size() < kEntryHeaderBytes) {
      stats_.malformed_frames++;
      PLWG_WARN("transport", "truncated entry header in frame from ", from);
      return;
    }
    const std::uint8_t port_byte = rest[0];
    const std::uint32_t len = get_u32_le(rest.subspan(1, 4));
    rest = rest.subspan(kEntryHeaderBytes);
    if (rest.size() < len) {
      stats_.malformed_frames++;
      PLWG_WARN("transport", "truncated entry payload in frame from ", from);
      return;
    }
    const std::span<const std::uint8_t> payload = rest.subspan(0, len);
    rest = rest.subspan(len);
    const auto idx = static_cast<std::size_t>(port_byte);
    if (idx >= kPortCount || handlers_[idx] == nullptr) {
      stats_.unbound_port_drops++;
      PLWG_WARN("transport", "message for unbound port ", idx, " from ",
                from);
      continue;  // the rest of the batch is still good
    }
    Decoder dec(payload);
    try {
      handlers_[idx]->on_message(from, dec);
    } catch (const CodecError& e) {
      stats_.decode_errors++;
      PLWG_ERROR("transport", "malformed message from ", from, ": ",
                 e.what());
    }
  }
  if (!rest.empty()) {
    stats_.malformed_frames++;
    PLWG_WARN("transport", "trailing bytes after batch from ", from);
  }
}

}  // namespace plwg::transport
