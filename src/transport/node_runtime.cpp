#include "transport/node_runtime.hpp"

#include "util/assert.hpp"
#include "util/log.hpp"

namespace plwg::transport {

NodeRuntime::NodeRuntime(sim::Network& net)
    : net_(net), id_(net.add_node(*this)) {}

void NodeRuntime::register_port(Port port, PortHandler& handler) {
  const auto idx = static_cast<std::size_t>(port);
  PLWG_ASSERT(idx < kPortCount);
  PLWG_ASSERT_MSG(handlers_[idx] == nullptr, "port already registered");
  handlers_[idx] = &handler;
}

std::vector<std::uint8_t> NodeRuntime::frame(Port port,
                                             const Encoder& payload) const {
  std::vector<std::uint8_t> packet;
  packet.reserve(payload.size() + 1);
  packet.push_back(static_cast<std::uint8_t>(port));
  packet.insert(packet.end(), payload.bytes().begin(), payload.bytes().end());
  return packet;
}

void NodeRuntime::send(Port port, NodeId to, const Encoder& payload) {
  net_.unicast(id_, to, frame(port, payload));
}

void NodeRuntime::multicast(Port port, std::span<const NodeId> dests,
                            const Encoder& payload) {
  net_.multicast(id_, dests, frame(port, payload));
}

void NodeRuntime::multicast(Port port, std::span<const ProcessId> dests,
                            const Encoder& payload) {
  dest_scratch_.clear();
  dest_scratch_.reserve(dests.size());
  for (ProcessId p : dests) dest_scratch_.push_back(node_of(p));
  net_.multicast(id_, dest_scratch_, frame(port, payload));
}

void NodeRuntime::on_packet(NodeId from, std::span<const std::uint8_t> data) {
  if (data.empty()) {
    PLWG_WARN("transport", "empty packet from node ", from);
    return;
  }
  const auto idx = static_cast<std::size_t>(data[0]);
  if (idx >= kPortCount || handlers_[idx] == nullptr) {
    PLWG_WARN("transport", "packet for unbound port ", idx, " from ", from);
    return;
  }
  Decoder dec(data.subspan(1));
  try {
    handlers_[idx]->on_message(from, dec);
  } catch (const CodecError& e) {
    PLWG_ERROR("transport", "malformed packet from ", from, ": ", e.what());
  }
}

}  // namespace plwg::transport
