#include "transport/node_runtime.hpp"

#include "util/assert.hpp"
#include "util/log.hpp"

namespace plwg::transport {

namespace {

/// FNV-1a over the frame's protected bytes (port + incarnation + payload).
/// Cheap, order-sensitive, and catches both bit flips and truncation.
std::uint32_t frame_checksum(std::uint8_t port, std::uint32_t incarnation,
                             std::span<const std::uint8_t> payload) {
  std::uint32_t h = 2166136261u;
  auto mix = [&h](std::uint8_t b) {
    h ^= b;
    h *= 16777619u;
  };
  mix(port);
  for (int i = 0; i < 4; ++i) {
    mix(static_cast<std::uint8_t>(incarnation >> (8 * i)));
  }
  for (std::uint8_t b : payload) mix(b);
  return h;
}

void put_u32_le(std::vector<std::uint8_t>& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }
}

std::uint32_t get_u32_le(std::span<const std::uint8_t> in) {
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<std::uint32_t>(in[static_cast<std::size_t>(i)]) << (8 * i);
  }
  return v;
}

}  // namespace

NodeRuntime::NodeRuntime(sim::Network& net)
    : net_(net), id_(net.add_node(*this)) {}

NodeRuntime::NodeRuntime(sim::Network& net, NodeId reuse,
                         std::uint32_t incarnation)
    : net_(net), id_(reuse), incarnation_(incarnation) {
  net_.restart(reuse, *this);
}

void NodeRuntime::register_port(Port port, PortHandler& handler) {
  const auto idx = static_cast<std::size_t>(port);
  PLWG_ASSERT(idx < kPortCount);
  PLWG_ASSERT_MSG(handlers_[idx] == nullptr, "port already registered");
  handlers_[idx] = &handler;
}

std::vector<std::uint8_t> NodeRuntime::frame(Port port,
                                             const Encoder& payload) const {
  std::vector<std::uint8_t> packet;
  packet.reserve(payload.size() + kFrameHeaderBytes);
  const auto port_byte = static_cast<std::uint8_t>(port);
  packet.push_back(port_byte);
  put_u32_le(packet, incarnation_);
  put_u32_le(packet, frame_checksum(port_byte, incarnation_, payload.bytes()));
  packet.insert(packet.end(), payload.bytes().begin(), payload.bytes().end());
  return packet;
}

void NodeRuntime::send(Port port, NodeId to, const Encoder& payload) {
  net_.unicast(id_, to, frame(port, payload));
}

void NodeRuntime::multicast(Port port, std::span<const NodeId> dests,
                            const Encoder& payload) {
  net_.multicast(id_, dests, frame(port, payload));
}

void NodeRuntime::multicast(Port port, std::span<const ProcessId> dests,
                            const Encoder& payload) {
  dest_scratch_.clear();
  dest_scratch_.reserve(dests.size());
  for (ProcessId p : dests) dest_scratch_.push_back(node_of(p));
  net_.multicast(id_, dest_scratch_, frame(port, payload));
}

void NodeRuntime::on_packet(NodeId from, std::span<const std::uint8_t> data) {
  if (data.size() < kFrameHeaderBytes) {
    stats_.malformed_frames++;
    PLWG_WARN("transport", "short frame (", data.size(), "B) from node ",
              from);
    return;
  }
  const std::uint8_t port_byte = data[0];
  const std::uint32_t incarnation = get_u32_le(data.subspan(1, 4));
  const std::uint32_t checksum = get_u32_le(data.subspan(5, 4));
  const std::span<const std::uint8_t> payload =
      data.subspan(kFrameHeaderBytes);
  if (frame_checksum(port_byte, incarnation, payload) != checksum) {
    // Corrupted in transit: refuse before the incarnation or port fields
    // can poison any state. Corruption degrades to loss.
    stats_.malformed_frames++;
    PLWG_WARN("transport", "bad checksum on frame from node ", from);
    return;
  }
  if (from.value() >= peer_incarnation_.size()) {
    peer_incarnation_.resize(from.value() + 1, 0);
  }
  std::uint32_t& known = peer_incarnation_[from.value()];
  if (incarnation < known) {
    stats_.stale_incarnation_drops++;
    PLWG_DEBUG("transport", "ghost frame from node ", from, " incarnation ",
               incarnation, " (now ", known, ")");
    return;
  }
  known = incarnation;
  const auto idx = static_cast<std::size_t>(port_byte);
  if (idx >= kPortCount || handlers_[idx] == nullptr) {
    stats_.unbound_port_drops++;
    PLWG_WARN("transport", "packet for unbound port ", idx, " from ", from);
    return;
  }
  Decoder dec(payload);
  try {
    handlers_[idx]->on_message(from, dec);
  } catch (const CodecError& e) {
    stats_.decode_errors++;
    PLWG_ERROR("transport", "malformed packet from ", from, ": ", e.what());
  }
}

}  // namespace plwg::transport
