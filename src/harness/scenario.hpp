// Declarative adversarial-scenario DSL: a JSON document describes a world
// shape plus a schedule of timed fault events — asymmetric (one-way) links,
// link flap trains, rolling partitions that never fully heal, crashes that
// land mid-partition, churn storms — and every consumer (tests, the
// scenario sweep, bench_chaos_availability) replays the same corpus under
// `scenarios/` through the same loader.
//
// Schema (all times in milliseconds, all node references are process
// indexes; unknown keys anywhere are rejected):
//
//   {
//     "name": "rolling-partition",            // required
//     "description": "...",                   // optional
//     "processes": 6,                         // default 6
//     "name_servers": 2,                      // default 2
//     "segments": [[0,1,2],[3,4,5]],          // optional multi-LAN topology
//     "run_ms": 40000,                        // fault phase length
//     "converge_timeout_ms": 300000,          // post-quiesce settle budget
//     "net": {"drop_probability": 0.01, "jitter_ms": 2},   // optional
//     "events": [ ... ]                       // required, see kinds below
//   }
//
// Event kinds:
//   partition         at_ms, islands=[[...],...], server_islands?, duration_ms?
//                     (omitted/0 duration = open until quiesce; processes not
//                     listed in any island form an implicit "rest" island)
//   rolling_partition at_ms, islands, steps, step_ms, rotate_by?
//                     (membership rotates through the islands each step with
//                     no fully-connected instant in between)
//   link_down         at_ms, from, to, duration_ms?, symmetric? (default
//                     false: one-way — `from` can still hear `to`)
//   link_lossy        at_ms, from, to, duration_ms?, symmetric?,
//                     drop_probability?, jitter_ms?
//   flap              at_ms, from, to, period_ms, count, down_ms?,
//                     symmetric?  (count cycles of down_ms outage per period)
//   crash             at_ms, node, down_ms? (omitted/0 = permanent)
//   churn_storm       at_ms, nodes=[...], cycles, down_ms, gap_ms
//                     (staggered crash–restart cycles across `nodes`)
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

#include "util/types.hpp"

namespace plwg::harness {

/// Thrown on malformed or out-of-range scenario input; the message names
/// the offending key/value (and line/column for JSON syntax errors).
class ScenarioError : public std::runtime_error {
 public:
  explicit ScenarioError(const std::string& what) : std::runtime_error(what) {}
};

struct ScenarioEvent {
  enum class Kind {
    kPartition,
    kRollingPartition,
    kLinkDown,
    kLinkLossy,
    kFlap,
    kCrash,
    kChurnStorm,
  };
  Kind kind = Kind::kPartition;
  Time at_us = 0;            // relative to scenario start
  Duration duration_us = 0;  // 0 = open until quiesce (where applicable)

  // partition / rolling_partition
  std::vector<std::vector<std::size_t>> islands;
  std::vector<std::size_t> server_islands;  // island index per name server
  std::size_t steps = 0;                    // rolling: number of shifts
  Duration step_us = 0;                     // rolling: interval per shift
  std::size_t rotate_by = 1;                // rolling: members shifted/step

  // link_down / link_lossy / flap
  std::size_t from = 0;
  std::size_t to = 0;
  bool symmetric = false;
  double drop_probability = -1.0;  // lossy override; <0 inherits config
  Duration jitter_us = -1;         // lossy override; <0 inherits config
  Duration period_us = 0;          // flap cycle length
  Duration down_us = 0;            // flap outage per cycle / crash downtime
  std::size_t count = 0;           // flap cycles

  // crash / churn_storm
  std::size_t node = 0;
  std::vector<std::size_t> nodes;
  std::size_t cycles = 0;
  Duration gap_us = 0;  // churn: stagger between successive crashes
};

struct Scenario {
  std::string name;
  std::string description;
  std::size_t processes = 6;
  std::size_t name_servers = 2;
  std::vector<std::vector<std::size_t>> segments;  // empty = single LAN
  Duration run_us = 40'000'000;
  Duration converge_timeout_us = 300'000'000;
  double net_drop_probability = 0.0;
  Duration net_jitter_us = 0;
  std::vector<ScenarioEvent> events;
};

/// Parse and validate a scenario document. Throws ScenarioError with a
/// message naming the problem (unknown key, out-of-range index, malformed
/// JSON with line/column, ...).
[[nodiscard]] Scenario parse_scenario(std::string_view json_text);

/// Read + parse a corpus file. Throws ScenarioError (unreadable file or any
/// parse_scenario failure, prefixed with the path).
[[nodiscard]] Scenario load_scenario_file(const std::string& path);

/// The corpus directory: $PLWG_SCENARIO_DIR if set, else the compiled-in
/// source-tree default.
[[nodiscard]] std::string scenario_dir();

/// Corpus files (sorted *.json) under `dir` (default scenario_dir()).
[[nodiscard]] std::vector<std::string> list_scenario_files(
    const std::string& dir = {});

/// Outcome of one scenario episode (see run_scenario in scenario_run.cpp).
struct ScenarioResult {
  bool formed = false;        // the LWG assembled before fault injection
  bool converged = false;     // post-quiesce convergence within the budget
  bool oracle_clean = false;  // no invariant violations across the episode
  std::string failure;        // first convergence failure / oracle report
  std::uint64_t digest = 0;   // combined trace digest (replay witness)
  double availability_pct = 0;  // alive-process samples holding a view
  Duration recovery_us = 0;     // quiesce -> convergence (family MTTR)
  double mean_rejoin_ms = 0;    // restart -> view regained, when restarts
  std::size_t rejoins = 0;
  std::size_t partitions = 0;
  std::size_t crashes = 0;
  std::size_t restarts = 0;
  std::size_t link_faults = 0;
};

/// Build the world, form one LWG over every process, replay the scenario's
/// fault schedule with light application traffic, quiesce, converge, and
/// report. Fully deterministic in (scenario, seed, sim_threads) — the same
/// call yields byte-identical digests. The oracle is always on; violations
/// are returned (not aborted on) so callers surface them through gtest.
[[nodiscard]] ScenarioResult run_scenario(const Scenario& scenario,
                                          std::uint64_t seed,
                                          std::size_t sim_threads = 1);

}  // namespace plwg::harness
