#include "harness/chaos.hpp"

#include <algorithm>

#include "util/assert.hpp"

namespace plwg::harness {

namespace {

/// One rolling-partition shift: flatten the islands in order, rotate the
/// flattened membership left by `by`, re-slice into the same island sizes.
std::vector<std::vector<std::size_t>> rotated(
    const std::vector<std::vector<std::size_t>>& islands, std::size_t by) {
  std::vector<std::size_t> flat;
  for (const auto& island : islands) {
    flat.insert(flat.end(), island.begin(), island.end());
  }
  PLWG_ASSERT(!flat.empty());
  std::rotate(flat.begin(),
              flat.begin() + static_cast<std::ptrdiff_t>(by % flat.size()),
              flat.end());
  std::vector<std::vector<std::size_t>> out;
  std::size_t pos = 0;
  for (const auto& island : islands) {
    out.emplace_back(flat.begin() + static_cast<std::ptrdiff_t>(pos),
                     flat.begin() + static_cast<std::ptrdiff_t>(pos +
                                                                island.size()));
    pos += island.size();
  }
  return out;
}

}  // namespace

ChaosMonkey::ChaosMonkey(SimWorld& world, ChaosConfig config)
    : world_(world), config_(config), rng_(config.seed) {
  // A disabled injector must not draw from the RNG: scenario replays depend
  // on the world seeing the exact same random stream regardless of chaos.
  next_event_ = config_.random_faults
                    ? world_.simulator().now() +
                          static_cast<Duration>(rng_.next_exponential(
                              static_cast<double>(config_.mean_interval_us)))
                    : kTimeMax;
}

void ChaosMonkey::push(Time at, FaultAction action) {
  // std::multimap keeps equal keys in insertion order, so a rolling
  // partition's end(k) / start(k+1) pair at the same instant applies in the
  // order load() emitted it.
  schedule_.emplace(at, std::move(action));
}

void ChaosMonkey::load(const Scenario& scenario) {
  const std::size_t n = world_.num_processes();
  PLWG_ASSERT_MSG(scenario.processes <= n,
                  "scenario names more processes than the world has");
  const Time base = world_.simulator().now();
  for (const ScenarioEvent& ev : scenario.events) {
    const Time at = base + ev.at_us;
    switch (ev.kind) {
      case ScenarioEvent::Kind::kPartition: {
        FaultAction start;
        start.kind = FaultAction::Kind::kPartitionStart;
        start.interval = next_interval_id_++;
        start.islands = ev.islands;
        start.server_islands = ev.server_islands;
        const std::uint64_t id = start.interval;
        push(at, std::move(start));
        if (ev.duration_us > 0) {
          FaultAction end;
          end.kind = FaultAction::Kind::kPartitionEnd;
          end.interval = id;
          push(at + ev.duration_us, std::move(end));
        }
        break;
      }
      case ScenarioEvent::Kind::kRollingPartition: {
        // steps shifts with no fully-connected instant in between: at each
        // shift boundary the previous interval ends and the rotated one
        // starts at the same timestamp, applied back-to-back while idle.
        auto islands = ev.islands;
        Time t = at;
        std::uint64_t id = next_interval_id_++;
        FaultAction first;
        first.kind = FaultAction::Kind::kPartitionStart;
        first.interval = id;
        first.islands = islands;
        push(t, std::move(first));
        for (std::size_t k = 0; k < ev.steps; ++k) {
          t += ev.step_us;
          FaultAction end;
          end.kind = FaultAction::Kind::kPartitionEnd;
          end.interval = id;
          push(t, std::move(end));
          islands = rotated(islands, ev.rotate_by);
          id = next_interval_id_++;
          FaultAction start;
          start.kind = FaultAction::Kind::kPartitionStart;
          start.interval = id;
          start.islands = islands;
          push(t, std::move(start));
        }
        FaultAction last;
        last.kind = FaultAction::Kind::kPartitionEnd;
        last.interval = id;
        push(t + ev.step_us, std::move(last));
        break;
      }
      case ScenarioEvent::Kind::kLinkDown:
      case ScenarioEvent::Kind::kLinkLossy: {
        sim::LinkFault fault;
        if (ev.kind == ScenarioEvent::Kind::kLinkDown) {
          fault.blocked = true;
        } else {
          fault.drop_probability = ev.drop_probability;
          fault.jitter_us = ev.jitter_us;
        }
        const auto emit = [&](std::size_t from, std::size_t to) {
          FaultAction set;
          set.kind = FaultAction::Kind::kLinkFaultSet;
          set.from = from;
          set.to = to;
          set.fault = fault;
          push(at, std::move(set));
          if (ev.duration_us > 0) {
            FaultAction clear;
            clear.kind = FaultAction::Kind::kLinkFaultClear;
            clear.from = from;
            clear.to = to;
            push(at + ev.duration_us, std::move(clear));
          }
        };
        emit(ev.from, ev.to);
        if (ev.symmetric) emit(ev.to, ev.from);
        break;
      }
      case ScenarioEvent::Kind::kFlap: {
        sim::LinkFault fault;
        fault.blocked = true;
        for (std::size_t c = 0; c < ev.count; ++c) {
          const Time t0 = at + static_cast<Duration>(c) * ev.period_us;
          const auto emit = [&](std::size_t from, std::size_t to) {
            FaultAction set;
            set.kind = FaultAction::Kind::kLinkFaultSet;
            set.from = from;
            set.to = to;
            set.fault = fault;
            push(t0, std::move(set));
            FaultAction clear;
            clear.kind = FaultAction::Kind::kLinkFaultClear;
            clear.from = from;
            clear.to = to;
            push(t0 + ev.down_us, std::move(clear));
          };
          emit(ev.from, ev.to);
          if (ev.symmetric) emit(ev.to, ev.from);
        }
        break;
      }
      case ScenarioEvent::Kind::kCrash: {
        FaultAction crash;
        crash.kind = FaultAction::Kind::kCrash;
        crash.victim = ev.node;
        crash.down_us = ev.down_us;
        push(at, std::move(crash));
        break;
      }
      case ScenarioEvent::Kind::kChurnStorm: {
        Time t = at;
        for (std::size_t c = 0; c < ev.cycles; ++c) {
          for (const std::size_t victim : ev.nodes) {
            FaultAction crash;
            crash.kind = FaultAction::Kind::kCrash;
            crash.victim = victim;
            crash.down_us = ev.down_us;
            push(t, std::move(crash));
            t += ev.gap_us;
          }
        }
        break;
      }
    }
  }
}

void ChaosMonkey::run_for(Duration us) {
  const Time deadline = world_.simulator().now() + us;
  while (world_.simulator().now() < deadline) {
    fire_due_restarts();
    apply_due_actions();
    if (config_.random_faults && next_event_ <= world_.simulator().now()) {
      inject();
    }
    const Time step = std::min(
        {deadline, next_event_, earliest_pending(), next_action_time()});
    if (step > world_.simulator().now()) {
      world_.run_for(step - world_.simulator().now());
    }
  }
  fire_due_restarts();
  apply_due_actions();
}

void ChaosMonkey::quiesce() {
  // Cancel not-yet-started faults first so ending the open intervals below
  // cannot race a scheduled start at the same timestamp.
  schedule_.clear();
  if (!active_partitions_.empty()) {
    active_partitions_.clear();
    world_.heal();
  }
  world_.network().clear_link_faults();
  // Fire every scheduled restart now: quiescence means the world settles
  // with everyone that was going to come back already back.
  for (PendingRestart& pr : pending_restarts_) {
    pr.due = world_.simulator().now();
  }
  fire_due_restarts();
  next_event_ = kTimeMax;
  // The convergence check that follows quiesce() must run against a healthy
  // network: nothing scheduled, nothing open, nothing pending.
  PLWG_ASSERT_MSG(schedule_.empty() && active_partitions_.empty() &&
                      pending_restarts_.empty() &&
                      world_.network().link_fault_count() == 0,
                  "quiesce left fault state behind");
}

Time ChaosMonkey::earliest_pending() const {
  Time t = kTimeMax;
  for (const PendingRestart& pr : pending_restarts_) t = std::min(t, pr.due);
  return t;
}

Time ChaosMonkey::next_action_time() const {
  return schedule_.empty() ? kTimeMax : schedule_.begin()->first;
}

bool ChaosMonkey::is_crashed(std::size_t index) const {
  return std::find(crashed_.begin(), crashed_.end(), index) != crashed_.end();
}

void ChaosMonkey::fire_due_restarts() {
  const Time now = world_.simulator().now();
  for (std::size_t i = 0; i < pending_restarts_.size();) {
    if (pending_restarts_[i].due > now) {
      ++i;
      continue;
    }
    const PendingRestart pr = pending_restarts_[i];
    pending_restarts_.erase(pending_restarts_.begin() + i);
    world_.restart(pr.index);
    std::erase(crashed_, pr.index);
    restarts_fired_++;
    restart_log_.push_back(RestartEvent{pr.index, pr.crashed_at, now});
  }
}

void ChaosMonkey::apply_due_actions() {
  while (!schedule_.empty() &&
         schedule_.begin()->first <= world_.simulator().now()) {
    FaultAction action = std::move(schedule_.begin()->second);
    schedule_.erase(schedule_.begin());
    apply(action);
  }
}

void ChaosMonkey::apply(const FaultAction& action) {
  switch (action.kind) {
    case FaultAction::Kind::kPartitionStart:
      active_partitions_.emplace(
          action.interval,
          ActivePartition{action.islands, action.server_islands});
      partitions_injected_++;
      apply_partitions();
      break;
    case FaultAction::Kind::kPartitionEnd:
      if (active_partitions_.erase(action.interval) > 0) apply_partitions();
      break;
    case FaultAction::Kind::kLinkFaultSet:
      world_.network().set_link_fault(world_.node(action.from),
                                      world_.node(action.to), action.fault);
      link_faults_injected_++;
      break;
    case FaultAction::Kind::kLinkFaultClear:
      world_.network().clear_link_fault(world_.node(action.from),
                                        world_.node(action.to));
      break;
    case FaultAction::Kind::kCrash:
      crash_now(action.victim, action.down_us);
      break;
  }
}

void ChaosMonkey::apply_partitions() {
  if (active_partitions_.empty()) {
    world_.heal();
    return;
  }
  const std::size_t n = world_.num_processes();
  const std::size_t ns = world_.num_servers();
  // Refinement product: each entity gets a tuple of island indexes, one per
  // open interval (in interval-creation order — the map key is the id).
  // Entities can talk iff their tuples are equal, i.e. no open interval
  // separates them.
  std::vector<std::vector<std::size_t>> proc_tuple(n), server_tuple(ns);
  for (const auto& [id, part] : active_partitions_) {
    (void)id;
    // Processes not named by the interval share the implicit "rest" island.
    std::vector<std::size_t> island_of(n, part.islands.size());
    for (std::size_t k = 0; k < part.islands.size(); ++k) {
      for (const std::size_t i : part.islands[k]) {
        if (i < n) island_of[i] = k;
      }
    }
    for (std::size_t i = 0; i < n; ++i) proc_tuple[i].push_back(island_of[i]);
    for (std::size_t j = 0; j < ns; ++j) {
      // Unlisted servers spread round-robin so each island usually keeps
      // one — the deployment the paper assumes (a server per LAN/AS).
      server_tuple[j].push_back(j < part.server_islands.size()
                                    ? part.server_islands[j]
                                    : j % part.islands.size());
    }
  }
  std::map<std::vector<std::size_t>, std::size_t> class_of;
  std::vector<std::vector<std::size_t>> classes;
  for (std::size_t i = 0; i < n; ++i) {
    const auto [it, fresh] = class_of.emplace(proc_tuple[i], classes.size());
    if (fresh) classes.emplace_back();
    classes[it->second].push_back(i);
  }
  std::vector<std::size_t> server_sides(ns, 0);
  for (std::size_t j = 0; j < ns; ++j) {
    // A tuple no process shares puts the server in a class of its own
    // (empty process list) — e.g. an island holding only a name server.
    const auto [it, fresh] = class_of.emplace(server_tuple[j], classes.size());
    if (fresh) classes.emplace_back();
    server_sides[j] = it->second;
  }
  world_.partition(classes, server_sides);
}

void ChaosMonkey::crash_now(std::size_t victim, Duration down_us) {
  // Overlapping schedules (churn storms, crash-during-partition) may aim at
  // a process that is already down; the later crash is a no-op.
  if (victim >= world_.num_processes() || world_.crashed(victim) ||
      is_crashed(victim)) {
    return;
  }
  world_.crash(victim);
  crashed_.push_back(victim);
  crashes_injected_++;
  if (down_us > 0) {
    const Time now = world_.simulator().now();
    pending_restarts_.push_back(
        PendingRestart{now + std::max<Duration>(down_us, 1'000), victim, now});
  }
}

void ChaosMonkey::inject() {
  const Time now = world_.simulator().now();
  if (config_.crash_probability > 0 &&
      crashed_.size() < config_.max_crashes &&
      rng_.next_bool(config_.crash_probability)) {
    // Crash a random not-yet-crashed process — possibly mid-partition.
    std::vector<std::size_t> alive;
    for (std::size_t i = 0; i < world_.num_processes(); ++i) {
      if (!is_crashed(i)) alive.push_back(i);
    }
    if (alive.size() > 1) {
      const std::size_t victim = alive[rng_.next_below(alive.size())];
      Duration down_us = 0;
      if (config_.restart_probability > 0 &&
          rng_.next_bool(config_.restart_probability)) {
        down_us = std::max<Duration>(
            static_cast<Duration>(rng_.next_exponential(
                static_cast<double>(config_.mean_downtime_us))),
            1'000);
      }
      crash_now(victim, down_us);
    }
  } else {
    // Random two-way split over the *alive* processes as a new interval —
    // it may overlap intervals already in force (the effective classes are
    // the refinement product). Crashed processes go right without drawing
    // from the RNG.
    std::vector<std::size_t> left, right;
    for (std::size_t i = 0; i < world_.num_processes(); ++i) {
      if (is_crashed(i)) {
        right.push_back(i);
        continue;
      }
      (rng_.next_bool(0.5) ? left : right).push_back(i);
    }
    if (!left.empty() && !right.empty()) {
      FaultAction start;
      start.kind = FaultAction::Kind::kPartitionStart;
      start.interval = next_interval_id_++;
      start.islands = {std::move(left), std::move(right)};
      for (std::size_t j = 0; j < world_.num_servers(); ++j) {
        start.server_islands.push_back(j % 2);
      }
      FaultAction end;
      end.kind = FaultAction::Kind::kPartitionEnd;
      end.interval = start.interval;
      apply(start);
      push(now + std::max<Duration>(
                     static_cast<Duration>(rng_.next_exponential(
                         static_cast<double>(config_.mean_partition_us))),
                     100'000),
           std::move(end));
    }
  }
  next_event_ = now + std::max<Duration>(
                          static_cast<Duration>(rng_.next_exponential(
                              static_cast<double>(config_.mean_interval_us))),
                          100'000);
}

}  // namespace plwg::harness
