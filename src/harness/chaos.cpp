#include "harness/chaos.hpp"

#include <algorithm>

#include "util/assert.hpp"

namespace plwg::harness {

ChaosMonkey::ChaosMonkey(SimWorld& world, ChaosConfig config)
    : world_(world), config_(config), rng_(config.seed) {
  next_event_ = world_.simulator().now() +
                static_cast<Duration>(
                    rng_.next_exponential(
                        static_cast<double>(config_.mean_interval_us)));
}

void ChaosMonkey::run_for(Duration us) {
  const Time deadline = world_.simulator().now() + us;
  while (world_.simulator().now() < deadline) {
    fire_due_restarts();
    if (next_event_ <= world_.simulator().now()) inject();
    const Time step =
        std::min({deadline, next_event_, earliest_pending()});
    if (step > world_.simulator().now()) {
      world_.run_for(step - world_.simulator().now());
    }
  }
  fire_due_restarts();
}

void ChaosMonkey::quiesce() {
  if (partitioned_) {
    world_.heal();
    partitioned_ = false;
  }
  // Fire every scheduled restart now: quiescence means the world settles
  // with everyone that was going to come back already back.
  for (PendingRestart& pr : pending_restarts_) pr.due = world_.simulator().now();
  fire_due_restarts();
  next_event_ = kTimeMax;
}

Time ChaosMonkey::earliest_pending() const {
  Time t = kTimeMax;
  for (const PendingRestart& pr : pending_restarts_) t = std::min(t, pr.due);
  return t;
}

void ChaosMonkey::fire_due_restarts() {
  const Time now = world_.simulator().now();
  for (std::size_t i = 0; i < pending_restarts_.size();) {
    if (pending_restarts_[i].due > now) {
      ++i;
      continue;
    }
    const PendingRestart pr = pending_restarts_[i];
    pending_restarts_.erase(pending_restarts_.begin() + i);
    world_.restart(pr.index);
    std::erase(crashed_, pr.index);
    restarts_fired_++;
    restart_log_.push_back(RestartEvent{pr.index, pr.crashed_at, now});
  }
}

void ChaosMonkey::inject() {
  if (partitioned_) {
    world_.heal();
    partitioned_ = false;
  } else if (config_.crash_probability > 0 &&
             crashed_.size() < config_.max_crashes &&
             rng_.next_bool(config_.crash_probability)) {
    // Crash a random not-yet-crashed process.
    std::vector<std::size_t> alive;
    for (std::size_t i = 0; i < world_.num_processes(); ++i) {
      if (std::find(crashed_.begin(), crashed_.end(), i) == crashed_.end()) {
        alive.push_back(i);
      }
    }
    if (alive.size() > 1) {
      const std::size_t victim =
          alive[rng_.next_below(alive.size())];
      world_.crash(victim);
      crashed_.push_back(victim);
      crashes_injected_++;
      if (config_.restart_probability > 0 &&
          rng_.next_bool(config_.restart_probability)) {
        const Time now = world_.simulator().now();
        const auto downtime = static_cast<Duration>(rng_.next_exponential(
            static_cast<double>(config_.mean_downtime_us)));
        pending_restarts_.push_back(PendingRestart{
            now + std::max<Duration>(downtime, 1'000), victim, now});
      }
    }
  } else {
    // Random two-way split over the *alive* processes; name server 0 goes
    // left, the rest right (so each side usually keeps a server).
    std::vector<std::size_t> left, right;
    for (std::size_t i = 0; i < world_.num_processes(); ++i) {
      if (std::find(crashed_.begin(), crashed_.end(), i) != crashed_.end()) {
        // Crashed nodes must still be placed in some class.
        right.push_back(i);
        continue;
      }
      (rng_.next_bool(0.5) ? left : right).push_back(i);
    }
    if (!left.empty() && !right.empty()) {
      std::vector<std::size_t> sides{0, 1};
      world_.partition({left, right}, sides);
      partitioned_ = true;
      partitions_injected_++;
    }
  }
  const Duration gap = partitioned_
                           ? static_cast<Duration>(rng_.next_exponential(
                                 static_cast<double>(
                                     config_.mean_partition_us)))
                           : static_cast<Duration>(rng_.next_exponential(
                                 static_cast<double>(
                                     config_.mean_interval_us)));
  next_event_ = world_.simulator().now() + std::max<Duration>(gap, 100'000);
}

}  // namespace plwg::harness
