// SimWorld: wires a complete simulated deployment — N application processes
// (each a NodeRuntime + VsyncHost + NamingAgent + LwgService) plus M
// dedicated name-server nodes on one simulated network — and exposes the
// knobs the experiments turn: partitions, crashes, restarts, and time.
//
// Tests, benchmarks, and examples all build on this harness.
#pragma once

#include <functional>
#include <memory>
#include <vector>

#include "durable/store.hpp"
#include "lwg/lwg_service.hpp"
#include "names/naming_agent.hpp"
#include "oracle/oracle.hpp"
#include "oracle/shard_mux.hpp"
#include "sim/engine.hpp"
#include "sim/network.hpp"
#include "sim/simulator.hpp"
#include "transport/node_runtime.hpp"
#include "vsync/vsync_host.hpp"

namespace plwg::harness {

enum class NamingMode {
  /// Dedicated name-server nodes (`num_name_servers` of them) — the
  /// deployment the paper's Sect. 5.2 describes (one per LAN/AS).
  kDedicatedServers,
  /// The alternative from paper Sect. 3.1: "replicate the naming service at
  /// every process, making updates expensive but read operations purely
  /// local". Every process node doubles as a server and prefers itself.
  kReplicatedEverywhere,
};

struct WorldConfig {
  std::size_t num_processes = 8;
  std::size_t num_name_servers = 1;
  NamingMode naming_mode = NamingMode::kDedicatedServers;
  sim::NetworkConfig net;
  transport::TransportConfig transport;
  vsync::VsyncConfig vsync;
  names::NamingConfig naming;
  lwg::LwgConfig lwg;
  /// Multi-LAN topology: segments[k] lists the *process indexes* on LAN k
  /// (empty = single LAN). Dedicated name server j is placed on LAN
  /// `min(j, segments-1)` — "a server on each local area network"
  /// (paper Sect. 5.2).
  std::vector<std::vector<std::size_t>> segments;
  sim::WanConfig wan;
  /// Worker threads for the sharded engine (one shard per LAN segment).
  /// 0 reads PLWG_SIM_THREADS from the environment (default 1). Same seed
  /// produces the same trace at any value — threads only change wall-clock.
  std::size_t sim_threads = 0;
  /// Wire the cross-node ProtocolOracle into every node (default). Benches
  /// that measure the protocol itself turn it off; builds with
  /// -DPLWG_ORACLE=OFF compile the hook sites out regardless.
  bool oracle = true;
};

class SimWorld {
 public:
  explicit SimWorld(WorldConfig config);
  ~SimWorld();
  SimWorld(const SimWorld&) = delete;
  SimWorld& operator=(const SimWorld&) = delete;

  /// Shard-0 event loop. Its clock equals the engine horizon whenever the
  /// world is idle, and single-LAN worlds (one shard) run entirely on it —
  /// existing `simulator().now()` / `schedule_after` call sites keep their
  /// exact semantics.
  [[nodiscard]] sim::Simulator& simulator() { return engine_.shard(0); }
  [[nodiscard]] sim::Engine& engine() { return engine_; }
  [[nodiscard]] sim::Network& network() { return *net_; }
  /// Combined deterministic trace digest (see sim::TraceDigest).
  [[nodiscard]] std::uint64_t trace_digest() const {
    return net_->trace_digest();
  }
  [[nodiscard]] std::size_t num_processes() const { return processes_.size(); }
  /// Dedicated name-server nodes (0 in the replicated-everywhere mode).
  [[nodiscard]] std::size_t num_servers() const { return servers_.size(); }

  [[nodiscard]] lwg::LwgService& lwg(std::size_t i);
  [[nodiscard]] vsync::VsyncHost& vsync(std::size_t i);
  [[nodiscard]] names::NamingAgent& naming(std::size_t i);
  [[nodiscard]] ProcessId pid(std::size_t i) const;
  [[nodiscard]] NodeId node(std::size_t i) const;
  /// The node of name server `j` (0-based).
  [[nodiscard]] NodeId server_node(std::size_t j) const;
  [[nodiscard]] names::NamingAgent& server(std::size_t j);

  /// Advance simulated time by `us`.
  void run_for(Duration us);
  /// Step until `pred()` holds or `timeout_us` elapses; returns success.
  bool run_until(const std::function<bool()>& pred, Duration timeout_us);

  /// Partition the world: each inner vector lists *process indexes*; every
  /// process must appear exactly once. Name servers are assigned to the
  /// classes listed in `server_sides` (server j joins the class at
  /// server_sides[j]; defaults to class 0).
  void partition(const std::vector<std::vector<std::size_t>>& classes,
                 const std::vector<std::size_t>& server_sides = {});
  void heal();
  void crash(std::size_t i);

  /// Resurrect a crashed process as a fresh incarnation on the same
  /// NodeId/ProcessId: the full host stack is torn down and rebuilt, the
  /// durable store (incarnation, id counters, joined-LWG list) survives,
  /// and recovery replays the joins so the reborn LwgService re-resolves
  /// and rejoins its LWGs through the naming service.
  void restart(std::size_t i);
  /// The process's crash–restart incarnation (0 until its first restart).
  [[nodiscard]] std::uint32_t incarnation(std::size_t i) const;

  /// Crash / resurrect a dedicated name server. The replica's database is
  /// disk-backed: a restarted server reloads the mappings it had acked.
  void crash_server(std::size_t j);
  void restart_server(std::size_t j);
  [[nodiscard]] bool server_crashed(std::size_t j) const;

  /// Cut the WAN: partition the world along its configured LAN segments
  /// (requires a multi-LAN WorldConfig::segments). heal() reconnects.
  void cut_wan();

  // --- protocol oracle ----------------------------------------------------
  /// True when the always-on invariant checker is wired into this world
  /// (config.oracle and not compiled out).
  [[nodiscard]] bool oracle_enabled() const { return oracle_ != nullptr; }
  [[nodiscard]] oracle::ProtocolOracle& oracle();
  [[nodiscard]] bool crashed(std::size_t i) const { return crashed_[i]; }
  /// Invariants #4/#5 on the current state of all alive nodes: empty string
  /// when mappings/views have converged, else the first failure found.
  /// Usable as a run_until predicate after heal + quiescence.
  [[nodiscard]] std::string convergence_failure() const;
  /// Like convergence_failure(), but records a violation in the oracle on
  /// failure. Returns true when converged.
  bool verify_convergence();

 private:
  [[nodiscard]] oracle::ConvergenceSnapshot convergence_snapshot() const;
  /// Build (or rebuild, on restart) process `i`'s host stack on its
  /// existing runtime. `server_disk` seeds the naming replica in the
  /// replicated-everywhere deployment.
  void build_process(std::size_t i, names::Database server_disk = {});
  /// Likewise for dedicated name server `j`.
  void build_server(std::size_t j, names::Database disk = {});

  struct ProcessNode {
    std::unique_ptr<transport::NodeRuntime> runtime;
    std::unique_ptr<vsync::VsyncHost> vsync;
    std::unique_ptr<names::NamingAgent> naming;
    std::unique_ptr<lwg::LwgService> lwg;
  };
  struct ServerNode {
    std::unique_ptr<transport::NodeRuntime> runtime;
    std::unique_ptr<names::NamingAgent> naming;
  };

  WorldConfig config_;
  /// One shard per LAN segment; a single-LAN world degenerates to the
  /// classic single-threaded loop.
  sim::Engine engine_;
  std::unique_ptr<sim::Network> net_;
  /// Per-process / per-server stable storage; declared before the nodes
  /// (so it is destroyed after them) because it is exactly the state that
  /// must outlive a node's teardown.
  std::vector<durable::ProcessStore> stores_;
  std::vector<durable::ProcessStore> server_stores_;
  /// Declared before the nodes so it is destroyed after them: hooks may
  /// still fire while nodes tear down.
  std::unique_ptr<oracle::ProtocolOracle> oracle_;
  /// Multi-shard worlds route observer hooks through the mux (per-shard
  /// rings, drained at window barriers); single-shard worlds wire the
  /// oracle directly. Destroyed after the nodes, like the oracle.
  std::unique_ptr<oracle::ShardedObserverMux> mux_;
  std::vector<ProcessNode> processes_;
  std::vector<ServerNode> servers_;
  /// All name-server nodes in creation order (client fail-over lists are
  /// rotations of this); stable across restarts.
  std::vector<NodeId> server_nodes_;
  std::vector<bool> crashed_;
  std::vector<bool> server_crashed_;
};

}  // namespace plwg::harness
