#include "harness/scenario.hpp"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <initializer_list>
#include <sstream>

#include "util/json.hpp"

#ifndef PLWG_SCENARIO_DIR_DEFAULT
#define PLWG_SCENARIO_DIR_DEFAULT "scenarios"
#endif

namespace plwg::harness {
namespace {

[[noreturn]] void fail(const std::string& what) { throw ScenarioError(what); }

/// Strict-schema guard: every key present must be in `allowed`.
void check_keys(const JsonValue::Object& obj,
                std::initializer_list<const char*> allowed,
                const std::string& where) {
  for (const auto& [key, value] : obj) {
    (void)value;
    const bool known =
        std::any_of(allowed.begin(), allowed.end(),
                    [&](const char* k) { return key == k; });
    if (!known) {
      std::string hint;
      for (const char* k : allowed) {
        hint += hint.empty() ? "" : ", ";
        hint += k;
      }
      fail("unknown key \"" + key + "\" in " + where + " (allowed: " + hint +
           ")");
    }
  }
}

const JsonValue& require(const JsonValue::Object& obj, const char* key,
                         const std::string& where) {
  const auto it = obj.find(key);
  if (it == obj.end()) fail("missing required key \"" + std::string(key) +
                            "\" in " + where);
  return it->second;
}

double number_of(const JsonValue& v, const std::string& what) {
  if (!v.is_number()) {
    fail(what + " must be a number, got " +
         JsonValue::type_name(v.type()));
  }
  return v.as_number();
}

/// A non-negative integer (node index, count, ...).
std::size_t index_of(const JsonValue& v, const std::string& what) {
  const double n = number_of(v, what);
  if (n < 0 || std::floor(n) != n || n > 1e15) {
    fail(what + " must be a non-negative integer, got " + std::to_string(n));
  }
  return static_cast<std::size_t>(n);
}

/// Milliseconds -> microseconds, requiring `n >= min_ms`.
Duration ms_of(const JsonValue& v, const std::string& what,
               double min_ms = 0) {
  const double n = number_of(v, what);
  if (n < min_ms) {
    fail(what + " must be >= " + std::to_string(min_ms) + " ms, got " +
         std::to_string(n));
  }
  return static_cast<Duration>(std::llround(n * 1000.0));
}

double probability_of(const JsonValue& v, const std::string& what) {
  const double n = number_of(v, what);
  if (n < 0.0 || n > 1.0) {
    fail(what + " must be in [0, 1], got " + std::to_string(n));
  }
  return n;
}

std::size_t node_of(const JsonValue& v, const std::string& what,
                    std::size_t processes) {
  const std::size_t i = index_of(v, what);
  if (i >= processes) {
    fail(what + " = " + std::to_string(i) + " out of range (" +
         std::to_string(processes) + " processes)");
  }
  return i;
}

std::vector<std::size_t> node_list_of(const JsonValue& v,
                                      const std::string& what,
                                      std::size_t processes) {
  if (!v.is_array()) fail(what + " must be an array of process indexes");
  std::vector<std::size_t> out;
  for (std::size_t k = 0; k < v.as_array().size(); ++k) {
    out.push_back(node_of(v.as_array()[k],
                          what + "[" + std::to_string(k) + "]", processes));
  }
  return out;
}

/// Islands: arrays of process indexes, each process in at most one island.
std::vector<std::vector<std::size_t>> islands_of(const JsonValue& v,
                                                 const std::string& where,
                                                 std::size_t processes) {
  if (!v.is_array() || v.as_array().empty()) {
    fail("\"islands\" in " + where + " must be a non-empty array of arrays");
  }
  std::vector<std::vector<std::size_t>> islands;
  std::vector<bool> seen(processes, false);
  for (std::size_t k = 0; k < v.as_array().size(); ++k) {
    const std::string what =
        "islands[" + std::to_string(k) + "] in " + where;
    auto island = node_list_of(v.as_array()[k], what, processes);
    if (island.empty()) fail(what + " must not be empty");
    for (const std::size_t i : island) {
      if (seen[i]) {
        fail("process " + std::to_string(i) +
             " appears in more than one island in " + where);
      }
      seen[i] = true;
    }
    islands.push_back(std::move(island));
  }
  return islands;
}

ScenarioEvent::Kind kind_of(const std::string& kind,
                            const std::string& where) {
  if (kind == "partition") return ScenarioEvent::Kind::kPartition;
  if (kind == "rolling_partition") {
    return ScenarioEvent::Kind::kRollingPartition;
  }
  if (kind == "link_down") return ScenarioEvent::Kind::kLinkDown;
  if (kind == "link_lossy") return ScenarioEvent::Kind::kLinkLossy;
  if (kind == "flap") return ScenarioEvent::Kind::kFlap;
  if (kind == "crash") return ScenarioEvent::Kind::kCrash;
  if (kind == "churn_storm") return ScenarioEvent::Kind::kChurnStorm;
  fail("unknown event kind \"" + kind + "\" in " + where +
       " (expected partition, rolling_partition, link_down, link_lossy, "
       "flap, crash, or churn_storm)");
}

ScenarioEvent parse_event(const JsonValue& v, std::size_t ordinal,
                          const Scenario& scenario) {
  const std::string where = "events[" + std::to_string(ordinal) + "]";
  if (!v.is_object()) fail(where + " must be an object");
  const JsonValue::Object& obj = v.as_object();

  ScenarioEvent ev;
  const JsonValue& kind = require(obj, "kind", where);
  if (!kind.is_string()) fail("\"kind\" in " + where + " must be a string");
  ev.kind = kind_of(kind.as_string(), where);
  ev.at_us = ms_of(require(obj, "at_ms", where), "\"at_ms\" in " + where);

  const std::size_t n = scenario.processes;
  switch (ev.kind) {
    case ScenarioEvent::Kind::kPartition: {
      check_keys(obj,
                 {"kind", "at_ms", "islands", "server_islands",
                  "duration_ms"},
                 where);
      ev.islands = islands_of(require(obj, "islands", where), where, n);
      if (const JsonValue* d = v.find("duration_ms")) {
        ev.duration_us = ms_of(*d, "\"duration_ms\" in " + where);
      }
      if (const JsonValue* s = v.find("server_islands")) {
        if (!s->is_array()) {
          fail("\"server_islands\" in " + where + " must be an array");
        }
        for (std::size_t k = 0; k < s->as_array().size(); ++k) {
          const std::string what = "server_islands[" + std::to_string(k) +
                                   "] in " + where;
          const std::size_t island = index_of(s->as_array()[k], what);
          // islands.size() is the implicit "rest" island.
          if (island > ev.islands.size()) {
            fail(what + " = " + std::to_string(island) +
                 " out of range (" + std::to_string(ev.islands.size()) +
                 " islands plus the implicit rest island)");
          }
          ev.server_islands.push_back(island);
        }
        if (ev.server_islands.size() > scenario.name_servers) {
          fail("\"server_islands\" in " + where + " lists " +
               std::to_string(ev.server_islands.size()) +
               " servers but the scenario has " +
               std::to_string(scenario.name_servers));
        }
      }
      break;
    }
    case ScenarioEvent::Kind::kRollingPartition: {
      check_keys(obj,
                 {"kind", "at_ms", "islands", "steps", "step_ms",
                  "rotate_by"},
                 where);
      ev.islands = islands_of(require(obj, "islands", where), where, n);
      if (ev.islands.size() < 2) {
        fail("rolling_partition in " + where +
             " needs at least two islands");
      }
      ev.steps = index_of(require(obj, "steps", where),
                          "\"steps\" in " + where);
      if (ev.steps == 0) fail("\"steps\" in " + where + " must be >= 1");
      ev.step_us = ms_of(require(obj, "step_ms", where),
                         "\"step_ms\" in " + where, 1);
      if (const JsonValue* r = v.find("rotate_by")) {
        ev.rotate_by = index_of(*r, "\"rotate_by\" in " + where);
        if (ev.rotate_by == 0) {
          fail("\"rotate_by\" in " + where + " must be >= 1");
        }
      }
      break;
    }
    case ScenarioEvent::Kind::kLinkDown:
    case ScenarioEvent::Kind::kLinkLossy: {
      if (ev.kind == ScenarioEvent::Kind::kLinkDown) {
        check_keys(obj,
                   {"kind", "at_ms", "from", "to", "duration_ms",
                    "symmetric"},
                   where);
      } else {
        check_keys(obj,
                   {"kind", "at_ms", "from", "to", "duration_ms", "symmetric",
                    "drop_probability", "jitter_ms"},
                   where);
      }
      ev.from = node_of(require(obj, "from", where), "\"from\" in " + where,
                        n);
      ev.to = node_of(require(obj, "to", where), "\"to\" in " + where, n);
      if (ev.from == ev.to) {
        fail("\"from\" and \"to\" in " + where + " must differ");
      }
      if (const JsonValue* d = v.find("duration_ms")) {
        ev.duration_us = ms_of(*d, "\"duration_ms\" in " + where);
      }
      if (const JsonValue* s = v.find("symmetric")) {
        if (!s->is_bool()) {
          fail("\"symmetric\" in " + where + " must be a bool");
        }
        ev.symmetric = s->as_bool();
      }
      if (ev.kind == ScenarioEvent::Kind::kLinkLossy) {
        if (const JsonValue* p = v.find("drop_probability")) {
          ev.drop_probability =
              probability_of(*p, "\"drop_probability\" in " + where);
        }
        if (const JsonValue* j = v.find("jitter_ms")) {
          ev.jitter_us = ms_of(*j, "\"jitter_ms\" in " + where);
        }
        if (ev.drop_probability < 0 && ev.jitter_us < 0) {
          fail("link_lossy in " + where +
               " needs \"drop_probability\" and/or \"jitter_ms\"");
        }
      }
      break;
    }
    case ScenarioEvent::Kind::kFlap: {
      check_keys(obj,
                 {"kind", "at_ms", "from", "to", "period_ms", "count",
                  "down_ms", "symmetric"},
                 where);
      ev.from = node_of(require(obj, "from", where), "\"from\" in " + where,
                        n);
      ev.to = node_of(require(obj, "to", where), "\"to\" in " + where, n);
      if (ev.from == ev.to) {
        fail("\"from\" and \"to\" in " + where + " must differ");
      }
      ev.period_us = ms_of(require(obj, "period_ms", where),
                           "\"period_ms\" in " + where, 1);
      ev.count = index_of(require(obj, "count", where),
                          "\"count\" in " + where);
      if (ev.count == 0) fail("\"count\" in " + where + " must be >= 1");
      if (const JsonValue* d = v.find("down_ms")) {
        ev.down_us = ms_of(*d, "\"down_ms\" in " + where, 1);
      } else {
        ev.down_us = ev.period_us / 2;
      }
      if (ev.down_us >= ev.period_us) {
        fail("\"down_ms\" in " + where + " must be shorter than period_ms");
      }
      if (const JsonValue* s = v.find("symmetric")) {
        if (!s->is_bool()) {
          fail("\"symmetric\" in " + where + " must be a bool");
        }
        ev.symmetric = s->as_bool();
      }
      break;
    }
    case ScenarioEvent::Kind::kCrash: {
      check_keys(obj, {"kind", "at_ms", "node", "down_ms"}, where);
      ev.node = node_of(require(obj, "node", where), "\"node\" in " + where,
                        n);
      if (const JsonValue* d = v.find("down_ms")) {
        ev.down_us = ms_of(*d, "\"down_ms\" in " + where);
      }
      break;
    }
    case ScenarioEvent::Kind::kChurnStorm: {
      check_keys(obj,
                 {"kind", "at_ms", "nodes", "cycles", "down_ms", "gap_ms"},
                 where);
      ev.nodes = node_list_of(require(obj, "nodes", where),
                              "\"nodes\" in " + where, n);
      if (ev.nodes.empty()) {
        fail("\"nodes\" in " + where + " must not be empty");
      }
      auto sorted = ev.nodes;
      std::sort(sorted.begin(), sorted.end());
      if (std::adjacent_find(sorted.begin(), sorted.end()) != sorted.end()) {
        fail("\"nodes\" in " + where + " must not repeat a process");
      }
      if (ev.nodes.size() >= n) {
        fail("churn_storm in " + where +
             " must leave at least one process out of the storm");
      }
      ev.cycles = index_of(require(obj, "cycles", where),
                           "\"cycles\" in " + where);
      if (ev.cycles == 0) fail("\"cycles\" in " + where + " must be >= 1");
      ev.down_us = ms_of(require(obj, "down_ms", where),
                         "\"down_ms\" in " + where, 1);
      ev.gap_us = ms_of(require(obj, "gap_ms", where),
                        "\"gap_ms\" in " + where);
      break;
    }
  }
  return ev;
}

}  // namespace

Scenario parse_scenario(std::string_view json_text) {
  JsonValue doc;
  try {
    doc = json_parse(json_text);
  } catch (const JsonError& e) {
    fail(std::string("malformed JSON: ") + e.what());
  }
  if (!doc.is_object()) fail("scenario document must be a JSON object");
  const JsonValue::Object& obj = doc.as_object();
  check_keys(obj,
             {"name", "description", "processes", "name_servers", "segments",
              "run_ms", "converge_timeout_ms", "net", "events"},
             "scenario");

  Scenario s;
  const JsonValue& name = require(obj, "name", "scenario");
  if (!name.is_string() || name.as_string().empty()) {
    fail("\"name\" must be a non-empty string");
  }
  s.name = name.as_string();
  if (const JsonValue* d = doc.find("description")) {
    if (!d->is_string()) fail("\"description\" must be a string");
    s.description = d->as_string();
  }
  if (const JsonValue* p = doc.find("processes")) {
    s.processes = index_of(*p, "\"processes\"");
    if (s.processes < 2 || s.processes > 64) {
      fail("\"processes\" must be in [2, 64], got " +
           std::to_string(s.processes));
    }
  }
  if (const JsonValue* p = doc.find("name_servers")) {
    s.name_servers = index_of(*p, "\"name_servers\"");
    if (s.name_servers < 1 || s.name_servers > 8) {
      fail("\"name_servers\" must be in [1, 8], got " +
           std::to_string(s.name_servers));
    }
  }
  if (const JsonValue* seg = doc.find("segments")) {
    if (!seg->is_array() || seg->as_array().size() < 2) {
      fail("\"segments\" must be an array of at least two LANs");
    }
    std::vector<bool> seen(s.processes, false);
    for (std::size_t k = 0; k < seg->as_array().size(); ++k) {
      const std::string what = "segments[" + std::to_string(k) + "]";
      auto lan = node_list_of(seg->as_array()[k], what, s.processes);
      if (lan.empty()) fail(what + " must not be empty");
      for (const std::size_t i : lan) {
        if (seen[i]) {
          fail("process " + std::to_string(i) +
               " appears on more than one segment");
        }
        seen[i] = true;
      }
      s.segments.push_back(std::move(lan));
    }
    for (std::size_t i = 0; i < s.processes; ++i) {
      if (!seen[i]) {
        fail("process " + std::to_string(i) + " is on no segment");
      }
    }
  }
  if (const JsonValue* r = doc.find("run_ms")) {
    s.run_us = ms_of(*r, "\"run_ms\"", 1);
  }
  if (const JsonValue* c = doc.find("converge_timeout_ms")) {
    s.converge_timeout_us = ms_of(*c, "\"converge_timeout_ms\"", 1);
  }
  if (const JsonValue* net = doc.find("net")) {
    if (!net->is_object()) fail("\"net\" must be an object");
    check_keys(net->as_object(), {"drop_probability", "jitter_ms"}, "net");
    if (const JsonValue* p = net->find("drop_probability")) {
      s.net_drop_probability =
          probability_of(*p, "\"drop_probability\" in net");
    }
    if (const JsonValue* j = net->find("jitter_ms")) {
      s.net_jitter_us = ms_of(*j, "\"jitter_ms\" in net");
    }
  }

  const JsonValue& events = require(obj, "events", "scenario");
  if (!events.is_array() || events.as_array().empty()) {
    fail("\"events\" must be a non-empty array");
  }
  for (std::size_t k = 0; k < events.as_array().size(); ++k) {
    s.events.push_back(parse_event(events.as_array()[k], k, s));
  }
  return s;
}

Scenario load_scenario_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) fail(path + ": cannot open scenario file");
  std::ostringstream buf;
  buf << in.rdbuf();
  try {
    return parse_scenario(buf.str());
  } catch (const ScenarioError& e) {
    fail(path + ": " + e.what());
  }
}

std::string scenario_dir() {
  if (const char* env = std::getenv("PLWG_SCENARIO_DIR");
      env != nullptr && *env != '\0') {
    return env;
  }
  return PLWG_SCENARIO_DIR_DEFAULT;
}

std::vector<std::string> list_scenario_files(const std::string& dir) {
  const std::string root = dir.empty() ? scenario_dir() : dir;
  std::vector<std::string> files;
  std::error_code ec;
  for (const auto& entry :
       std::filesystem::directory_iterator(root, ec)) {
    if (entry.is_regular_file() && entry.path().extension() == ".json") {
      files.push_back(entry.path().string());
    }
  }
  if (ec) fail(root + ": cannot list scenario directory (" + ec.message() +
               ")");
  std::sort(files.begin(), files.end());
  return files;
}

}  // namespace plwg::harness
