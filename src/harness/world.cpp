#include "harness/world.hpp"

#include <algorithm>
#include <cstdio>
#include <cstdlib>

#include "util/assert.hpp"
#include "util/log.hpp"

namespace plwg::harness {

SimWorld::SimWorld(WorldConfig config)
    : config_(std::move(config)),
      engine_(std::max<std::size_t>(1, config_.segments.size()),
              sim::Engine::Config{config_.sim_threads}) {
  Logger::instance().set_time_source([this] { return engine_.log_now(); });
  net_ = std::make_unique<sim::Network>(engine_, config_.net);
  const bool replicated =
      config_.naming_mode == NamingMode::kReplicatedEverywhere;

  // Create process nodes first so ProcessId i == node i == index i, then the
  // name-server nodes (none in the replicated-everywhere deployment).
  processes_.resize(config_.num_processes);
  stores_.resize(config_.num_processes);
  for (auto& p : processes_) {
    p.runtime = std::make_unique<transport::NodeRuntime>(*net_, config_.transport);
  }
  servers_.resize(replicated ? 0 : config_.num_name_servers);
  server_stores_.resize(servers_.size());
  for (auto& s : servers_) {
    s.runtime = std::make_unique<transport::NodeRuntime>(*net_, config_.transport);
  }

  if (replicated) {
    for (const auto& p : processes_) server_nodes_.push_back(p.runtime->id());
  } else {
    for (const auto& s : servers_) server_nodes_.push_back(s.runtime->id());
  }

  // Topology before any protocol stack exists: building a stack schedules
  // its timers on the owning node's shard, so segment->shard assignment
  // must already be in place.
  if (config_.segments.size() > 1) {
    // Multi-LAN topology: processes per their configured segment; dedicated
    // name server j joins LAN min(j, last).
    std::vector<std::vector<NodeId>> node_segments(config_.segments.size());
    std::vector<bool> placed(processes_.size(), false);
    for (std::size_t k = 0; k < config_.segments.size(); ++k) {
      for (std::size_t i : config_.segments[k]) {
        PLWG_ASSERT(i < processes_.size());
        node_segments[k].push_back(node(i));
        placed[i] = true;
      }
    }
    for (std::size_t i = 0; i < processes_.size(); ++i) {
      PLWG_ASSERT_MSG(placed[i], "process missing from segments");
    }
    for (std::size_t j = 0; j < servers_.size(); ++j) {
      node_segments[std::min(j, config_.segments.size() - 1)].push_back(
          servers_[j].runtime->id());
    }
    net_->set_segments(node_segments, config_.wan);
  }

#ifndef PLWG_ORACLE_DISABLED
  if (config_.oracle) {
    // The oracle's clock: the mux pins it to each replayed event's original
    // timestamp; without a mux the running shard's clock is already exact.
    oracle_ = std::make_unique<oracle::ProtocolOracle>(
        [this] { return mux_ ? mux_->now() : engine_.log_now(); });
    if (engine_.num_shards() > 1) {
      // Worker threads must not call into the single-threaded oracle:
      // route every observer hook through per-shard rings, merged in
      // deterministic order at each window barrier.
      mux_ = std::make_unique<oracle::ShardedObserverMux>(
          engine_, oracle_.get(), oracle_.get(), oracle_.get());
      engine_.add_barrier_hook([m = mux_.get()] { m->drain(); });
    }
  }
#endif

  for (std::size_t j = 0; j < servers_.size(); ++j) build_server(j);
  for (std::size_t i = 0; i < processes_.size(); ++i) build_process(i);

  crashed_.assign(processes_.size(), false);
  server_crashed_.assign(servers_.size(), false);
}

void SimWorld::build_process(std::size_t i, names::Database server_disk) {
  const bool replicated =
      config_.naming_mode == NamingMode::kReplicatedEverywhere;
  auto& p = processes_[i];
  // Rotate the fail-over order per process: spreads client load and gives
  // each "LAN" a preferred local server. In the replicated deployment the
  // rotation puts the process's own replica first: reads become local.
  std::vector<NodeId> order = server_nodes_;
  if (!order.empty()) {
    std::rotate(order.begin(), order.begin() + (i % order.size()),
                order.end());
  }
  p.vsync = std::make_unique<vsync::VsyncHost>(*p.runtime, config_.vsync,
                                               &stores_[i]);
  p.naming = std::make_unique<names::NamingAgent>(*p.runtime, config_.naming,
                                                  std::move(order));
  if (replicated) {
    std::vector<NodeId> peers;
    for (std::size_t k = 0; k < server_nodes_.size(); ++k) {
      if (k != i) peers.push_back(server_nodes_[k]);
    }
    p.naming->enable_server(std::move(peers), std::move(server_disk));
  }
  p.lwg = std::make_unique<lwg::LwgService>(*p.vsync, *p.naming, config_.lwg,
                                            &stores_[i]);
#ifndef PLWG_ORACLE_DISABLED
  if (oracle_) {
    p.vsync->set_observer(mux_ ? static_cast<vsync::VsyncObserver*>(mux_.get())
                               : oracle_.get());
    p.lwg->set_observer(mux_ ? static_cast<lwg::LwgObserver*>(mux_.get())
                             : oracle_.get());
    p.naming->set_observer(mux_ ? static_cast<names::NamingObserver*>(mux_.get())
                                : oracle_.get());
  }
#endif
}

void SimWorld::build_server(std::size_t j, names::Database disk) {
  auto& s = servers_[j];
  s.naming = std::make_unique<names::NamingAgent>(*s.runtime, config_.naming,
                                                  server_nodes_);
  std::vector<NodeId> peers;
  for (std::size_t k = 0; k < server_nodes_.size(); ++k) {
    if (k != j) peers.push_back(server_nodes_[k]);
  }
  s.naming->enable_server(std::move(peers), std::move(disk));
#ifndef PLWG_ORACLE_DISABLED
  if (oracle_) {
    s.naming->set_observer(mux_ ? static_cast<names::NamingObserver*>(mux_.get())
                                : oracle_.get());
  }
#endif
}

SimWorld::~SimWorld() {
  // Backstop for worlds not owned by a test fixture: unacknowledged
  // violations are protocol bugs and must not evaporate with the world.
  if (oracle_ && !oracle_->clean()) {
    std::fprintf(stderr, "protocol oracle: %zu violation(s):\n%s\n",
                 oracle_->total_violations(), oracle_->report_json().c_str());
    std::abort();
  }
  Logger::instance().set_time_source(nullptr);
}

oracle::ProtocolOracle& SimWorld::oracle() {
  PLWG_ASSERT_MSG(oracle_ != nullptr, "oracle not enabled in this world");
  return *oracle_;
}

oracle::ConvergenceSnapshot SimWorld::convergence_snapshot() const {
  oracle::ConvergenceSnapshot snap;
  for (std::size_t i = 0; i < processes_.size(); ++i) {
    if (crashed_[i]) continue;
    snap.alive.insert(processes_[i].runtime->process_id());
    const lwg::LwgService& svc = *processes_[i].lwg;
    for (LwgId lwg : svc.local_groups()) {
      const lwg::LwgView* v = svc.view_of(lwg);
      if (v != nullptr) {
        snap.holders[lwg].push_back({processes_[i].runtime->process_id(), *v});
      } else {
        snap.unresolved.emplace_back(processes_[i].runtime->process_id(), lwg);
      }
    }
  }
  for (std::size_t j = 0; j < servers_.size(); ++j) {
    if (server_crashed_[j]) continue;
    snap.databases.emplace_back(servers_[j].runtime->id(),
                                &servers_[j].naming->database());
  }
  if (config_.naming_mode == NamingMode::kReplicatedEverywhere) {
    for (std::size_t i = 0; i < processes_.size(); ++i) {
      if (crashed_[i] || !processes_[i].naming->is_server()) continue;
      snap.databases.emplace_back(processes_[i].runtime->id(),
                                  &processes_[i].naming->database());
    }
  }
  return snap;
}

std::string SimWorld::convergence_failure() const {
  return oracle::check_converged(convergence_snapshot());
}

bool SimWorld::verify_convergence() {
  if (oracle_) return oracle_->check_convergence(convergence_snapshot());
  return convergence_failure().empty();
}

lwg::LwgService& SimWorld::lwg(std::size_t i) {
  PLWG_ASSERT(i < processes_.size());
  return *processes_[i].lwg;
}

vsync::VsyncHost& SimWorld::vsync(std::size_t i) {
  PLWG_ASSERT(i < processes_.size());
  return *processes_[i].vsync;
}

names::NamingAgent& SimWorld::naming(std::size_t i) {
  PLWG_ASSERT(i < processes_.size());
  return *processes_[i].naming;
}

ProcessId SimWorld::pid(std::size_t i) const {
  PLWG_ASSERT(i < processes_.size());
  return processes_[i].runtime->process_id();
}

NodeId SimWorld::node(std::size_t i) const {
  PLWG_ASSERT(i < processes_.size());
  return processes_[i].runtime->id();
}

NodeId SimWorld::server_node(std::size_t j) const {
  if (config_.naming_mode == NamingMode::kReplicatedEverywhere) {
    return node(j);  // every process node hosts a replica
  }
  PLWG_ASSERT(j < servers_.size());
  return servers_[j].runtime->id();
}

names::NamingAgent& SimWorld::server(std::size_t j) {
  if (config_.naming_mode == NamingMode::kReplicatedEverywhere) {
    return naming(j);
  }
  PLWG_ASSERT(j < servers_.size());
  return *servers_[j].naming;
}

void SimWorld::run_for(Duration us) { engine_.run_for(us); }

bool SimWorld::run_until(const std::function<bool()>& pred,
                         Duration timeout_us) {
  const Time deadline = engine_.now() + timeout_us;
  constexpr Duration kStep = 10'000;  // 10 ms probes
  while (engine_.now() < deadline) {
    if (pred()) return true;
    engine_.run_until(std::min(deadline, engine_.now() + kStep));
  }
  return pred();
}

void SimWorld::partition(const std::vector<std::vector<std::size_t>>& classes,
                         const std::vector<std::size_t>& server_sides) {
  std::vector<std::vector<NodeId>> node_classes(classes.size());
  for (std::size_t c = 0; c < classes.size(); ++c) {
    for (std::size_t i : classes[c]) node_classes[c].push_back(node(i));
  }
  for (std::size_t j = 0; j < servers_.size(); ++j) {
    const std::size_t side = j < server_sides.size() ? server_sides[j] : 0;
    PLWG_ASSERT(side < node_classes.size());
    node_classes[side].push_back(server_node(j));
  }
  net_->set_partitions(node_classes);
}

void SimWorld::heal() { net_->heal(); }

void SimWorld::crash(std::size_t i) {
  net_->crash(node(i));
  crashed_[i] = true;
}

void SimWorld::restart(std::size_t i) {
  PLWG_ASSERT(i < processes_.size());
  PLWG_ASSERT_MSG(crashed_[i], "restart of a process that is not crashed");
  ProcessNode& p = processes_[i];
  const ProcessId self = p.runtime->process_id();
#ifndef PLWG_ORACLE_DISABLED
  // The dead incarnation's delivery epochs end here. A graceful teardown
  // reports them through become_defunct()/note_lwg_reset(); plain
  // destruction does not, so fire the resets by hand — otherwise the
  // successor's first views would be paired with the corpse's.
  if (oracle_) {
    for (const auto& [gid, ep] : p.vsync->endpoints()) {
      oracle_->on_hwg_endpoint_reset(self, gid);
    }
    for (LwgId lwg : p.lwg->local_groups()) {
      oracle_->on_lwg_epoch_reset(self, lwg);
    }
  }
#endif
  names::Database disk;
  if (p.naming->is_server()) disk = p.naming->database();
  const NodeId nid = p.runtime->id();
  // Teardown in reverse dependency order. The rebind below advances the
  // node's crash epoch, which also invalidates every timer the dead
  // incarnation still has in the simulator (see NodeRuntime::after).
  p.lwg.reset();
  p.naming.reset();
  p.vsync.reset();
  stores_[i].incarnation++;
  p.runtime = std::make_unique<transport::NodeRuntime>(
      *net_, nid, stores_[i].incarnation, config_.transport);
  crashed_[i] = false;
  build_process(i, std::move(disk));
  // Recovery: replay the restart script. Each join re-resolves the LWG
  // through the naming service and rejoins (or re-creates) it. Iterate a
  // copy: join() re-records each registration in the store.
  const auto script = stores_[i].lwg_registrations;
  for (const auto& [lwg, user] : script) p.lwg->join(lwg, *user);
  PLWG_INFO("world", "process ", i, " restarted as incarnation ",
            stores_[i].incarnation, ", rejoining ", script.size(), " lwg(s)");
}

std::uint32_t SimWorld::incarnation(std::size_t i) const {
  PLWG_ASSERT(i < stores_.size());
  return stores_[i].incarnation;
}

void SimWorld::crash_server(std::size_t j) {
  PLWG_ASSERT(j < servers_.size());
  net_->crash(servers_[j].runtime->id());
  server_crashed_[j] = true;
}

void SimWorld::restart_server(std::size_t j) {
  PLWG_ASSERT(j < servers_.size());
  PLWG_ASSERT_MSG(server_crashed_[j], "restart of a server that is not crashed");
  ServerNode& s = servers_[j];
  // The replica's database is disk-backed: reload what the dead incarnation
  // had acked. Volatile state (pending requests, callback de-dup, peer
  // sync cursors) dies with it and is rebuilt by anti-entropy.
  names::Database disk = s.naming->database();
  const NodeId nid = s.runtime->id();
  s.naming.reset();
  server_stores_[j].incarnation++;
  s.runtime = std::make_unique<transport::NodeRuntime>(
      *net_, nid, server_stores_[j].incarnation, config_.transport);
  server_crashed_[j] = false;
  build_server(j, std::move(disk));
  PLWG_INFO("world", "name server ", j, " restarted as incarnation ",
            server_stores_[j].incarnation);
}

bool SimWorld::server_crashed(std::size_t j) const {
  PLWG_ASSERT(j < servers_.size());
  return server_crashed_[j];
}

void SimWorld::cut_wan() {
  PLWG_ASSERT_MSG(config_.segments.size() > 1,
                  "cut_wan needs a multi-LAN WorldConfig");
  std::vector<std::size_t> server_sides;
  for (std::size_t j = 0; j < servers_.size(); ++j) {
    server_sides.push_back(std::min(j, config_.segments.size() - 1));
  }
  partition(config_.segments, server_sides);
}

}  // namespace plwg::harness
