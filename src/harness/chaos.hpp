// ChaosMonkey: fault injection against a SimWorld, driven step by step so
// tests and benches stay in control of time.
//
// Two sources feed one timed-action schedule:
//   * the randomized injector (ChaosConfig probabilities — partitions,
//     crashes, crash–restart cycles), and
//   * declarative scenarios (harness::Scenario via load()), expanded into
//     primitive actions: partition intervals, directed-link faults, flap
//     trains, crashes with scheduled restarts.
//
// Faults are *intervals*, not a single toggle: any number of partitions,
// link faults and crashes may overlap — a crash can land mid-partition, a
// second partition can open while one is still in force, and rolling
// partitions shift membership between islands with no fully-connected
// instant in between. The effective reachability classes are the refinement
// product of every open partition interval. quiesce() drains the whole
// interval set (and asserts it is empty) before any convergence check.
//
// Deterministic under a fixed seed like everything else in the simulator.
#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "harness/scenario.hpp"
#include "harness/world.hpp"
#include "sim/network.hpp"
#include "util/rng.hpp"

namespace plwg::harness {

struct ChaosConfig {
  std::uint64_t seed = 1;
  /// When false the randomized injector is off: only load()ed scenario
  /// schedules run. Scenario replays must not consume RNG draws.
  bool random_faults = true;
  /// Mean time between random fault events (exponential), microseconds.
  Duration mean_interval_us = 5'000'000;
  /// Mean duration of a random partition interval, microseconds.
  Duration mean_partition_us = 4'000'000;
  /// Probability a random fault event is a crash instead of a partition.
  double crash_probability = 0.0;
  /// Most simultaneously-crashed processes chaos will allow (keeps a
  /// majority alive). With restarts enabled the same process may crash
  /// again after it came back.
  std::size_t max_crashes = 0;
  /// Probability a crashed process gets a restart scheduled (0 = crashes
  /// are permanent, the pre-restart behaviour).
  double restart_probability = 0.0;
  /// Mean downtime between a crash and its scheduled restart (exponential),
  /// microseconds.
  Duration mean_downtime_us = 2'000'000;
};

/// One completed crash–restart cycle, for availability / MTTR accounting.
struct RestartEvent {
  std::size_t index;   // process index
  Time crashed_at;     // when the crash was injected
  Time restarted_at;   // when the restart fired
};

class ChaosMonkey {
 public:
  ChaosMonkey(SimWorld& world, ChaosConfig config);

  /// Expand `scenario`'s fault events into the schedule, with event time 0
  /// anchored at the current sim time. May be called more than once (the
  /// schedules interleave). Asserts every index fits the world.
  void load(const Scenario& scenario);

  /// Advance the world by `us`, injecting faults on the way.
  void run_for(Duration us);

  /// Drain every open fault interval — heal all partitions, clear all link
  /// faults, fire every pending restart, cancel not-yet-started scheduled
  /// faults — and stop injecting. Crashed processes without a scheduled
  /// restart stay down. Asserts the interval set is fully drained, so a
  /// convergence check after quiesce() runs against a healthy network.
  void quiesce();

  [[nodiscard]] std::size_t partitions_injected() const {
    return partitions_injected_;
  }
  [[nodiscard]] std::size_t crashes_injected() const {
    return crashes_injected_;
  }
  [[nodiscard]] std::size_t restarts_fired() const { return restarts_fired_; }
  [[nodiscard]] std::size_t link_faults_injected() const {
    return link_faults_injected_;
  }
  /// Processes currently down.
  [[nodiscard]] const std::vector<std::size_t>& crashed() const {
    return crashed_;
  }
  /// Completed crash–restart cycles, in restart order.
  [[nodiscard]] const std::vector<RestartEvent>& restart_log() const {
    return restart_log_;
  }
  /// True while at least one partition interval is open.
  [[nodiscard]] bool partitioned() const { return !active_partitions_.empty(); }
  /// Open partition intervals right now.
  [[nodiscard]] std::size_t open_partitions() const {
    return active_partitions_.size();
  }
  /// Scheduled actions (fault starts and ends) not yet applied.
  [[nodiscard]] std::size_t pending_actions() const {
    return schedule_.size();
  }

 private:
  /// A primitive timed fault action. Scenario events expand into these;
  /// the random injector mints them too, so both paths share the interval
  /// machinery.
  struct FaultAction {
    enum class Kind {
      kPartitionStart,
      kPartitionEnd,
      kLinkFaultSet,
      kLinkFaultClear,
      kCrash,
    };
    Kind kind = Kind::kPartitionStart;
    std::uint64_t interval = 0;  // pairs a start with its end
    // kPartitionStart
    std::vector<std::vector<std::size_t>> islands;
    std::vector<std::size_t> server_islands;
    // kLinkFaultSet / kLinkFaultClear (process indexes, directed)
    std::size_t from = 0;
    std::size_t to = 0;
    sim::LinkFault fault;
    // kCrash
    std::size_t victim = 0;
    Duration down_us = 0;  // 0 = permanent (no scheduled restart)
  };

  struct ActivePartition {
    std::vector<std::vector<std::size_t>> islands;
    std::vector<std::size_t> server_islands;
  };

  struct PendingRestart {
    Time due;
    std::size_t index;
    Time crashed_at;
  };

  void push(Time at, FaultAction action);
  void apply_due_actions();
  void apply(const FaultAction& action);
  /// Recompute the effective reachability classes as the refinement product
  /// of every open partition interval and push them into the world.
  void apply_partitions();
  void set_link(std::size_t from, std::size_t to, bool symmetric,
                const sim::LinkFault* fault);
  void crash_now(std::size_t victim, Duration down_us);
  void inject();
  void fire_due_restarts();
  [[nodiscard]] Time earliest_pending() const;
  [[nodiscard]] Time next_action_time() const;
  [[nodiscard]] bool is_crashed(std::size_t index) const;

  SimWorld& world_;
  ChaosConfig config_;
  Rng rng_;
  Time next_event_ = 0;  // next random injection (kTimeMax when disabled)
  std::uint64_t next_interval_id_ = 1;
  std::multimap<Time, FaultAction> schedule_;
  std::map<std::uint64_t, ActivePartition> active_partitions_;
  std::size_t partitions_injected_ = 0;
  std::size_t crashes_injected_ = 0;
  std::size_t restarts_fired_ = 0;
  std::size_t link_faults_injected_ = 0;
  std::vector<std::size_t> crashed_;
  std::vector<PendingRestart> pending_restarts_;
  std::vector<RestartEvent> restart_log_;
};

}  // namespace plwg::harness
