// ChaosMonkey: randomized fault injection against a SimWorld — partitions
// of random shape and duration and (optionally) crashes — driven step by
// step so tests and benches stay in control of time.
//
// Used by the soak tests and the availability experiment; deterministic
// under a fixed seed like everything else in the simulator.
#pragma once

#include <cstdint>
#include <vector>

#include "harness/world.hpp"
#include "util/rng.hpp"

namespace plwg::harness {

struct ChaosConfig {
  std::uint64_t seed = 1;
  /// Mean time between fault events (exponential), microseconds.
  Duration mean_interval_us = 5'000'000;
  /// Mean duration of a partition before it heals, microseconds.
  Duration mean_partition_us = 4'000'000;
  /// Probability a fault event is a crash instead of a partition.
  double crash_probability = 0.0;
  /// Most crashes chaos will inject (keeps a majority alive).
  std::size_t max_crashes = 0;
};

class ChaosMonkey {
 public:
  ChaosMonkey(SimWorld& world, ChaosConfig config);

  /// Advance the world by `us`, injecting faults on the way.
  void run_for(Duration us);

  /// Heal any open partition and stop injecting (crashed nodes stay down).
  void quiesce();

  [[nodiscard]] std::size_t partitions_injected() const {
    return partitions_injected_;
  }
  [[nodiscard]] std::size_t crashes_injected() const {
    return crashes_injected_;
  }
  [[nodiscard]] const std::vector<std::size_t>& crashed() const {
    return crashed_;
  }
  [[nodiscard]] bool partitioned() const { return partitioned_; }

 private:
  void inject();

  SimWorld& world_;
  ChaosConfig config_;
  Rng rng_;
  bool partitioned_ = false;
  Time next_event_ = 0;
  std::size_t partitions_injected_ = 0;
  std::size_t crashes_injected_ = 0;
  std::vector<std::size_t> crashed_;
};

}  // namespace plwg::harness
