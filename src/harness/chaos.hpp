// ChaosMonkey: randomized fault injection against a SimWorld — partitions
// of random shape and duration, crashes and (optionally) crash–restart
// cycles — driven step by step so tests and benches stay in control of
// time.
//
// Used by the soak tests and the availability experiment; deterministic
// under a fixed seed like everything else in the simulator.
#pragma once

#include <cstdint>
#include <vector>

#include "harness/world.hpp"
#include "util/rng.hpp"

namespace plwg::harness {

struct ChaosConfig {
  std::uint64_t seed = 1;
  /// Mean time between fault events (exponential), microseconds.
  Duration mean_interval_us = 5'000'000;
  /// Mean duration of a partition before it heals, microseconds.
  Duration mean_partition_us = 4'000'000;
  /// Probability a fault event is a crash instead of a partition.
  double crash_probability = 0.0;
  /// Most simultaneously-crashed processes chaos will allow (keeps a
  /// majority alive). With restarts enabled the same process may crash
  /// again after it came back.
  std::size_t max_crashes = 0;
  /// Probability a crashed process gets a restart scheduled (0 = crashes
  /// are permanent, the pre-restart behaviour).
  double restart_probability = 0.0;
  /// Mean downtime between a crash and its scheduled restart (exponential),
  /// microseconds.
  Duration mean_downtime_us = 2'000'000;
};

/// One completed crash–restart cycle, for availability / MTTR accounting.
struct RestartEvent {
  std::size_t index;   // process index
  Time crashed_at;     // when the crash was injected
  Time restarted_at;   // when the restart fired
};

class ChaosMonkey {
 public:
  ChaosMonkey(SimWorld& world, ChaosConfig config);

  /// Advance the world by `us`, injecting faults on the way.
  void run_for(Duration us);

  /// Heal any open partition, fire every pending restart, and stop
  /// injecting. Crashed processes without a scheduled restart stay down.
  void quiesce();

  [[nodiscard]] std::size_t partitions_injected() const {
    return partitions_injected_;
  }
  [[nodiscard]] std::size_t crashes_injected() const {
    return crashes_injected_;
  }
  [[nodiscard]] std::size_t restarts_fired() const { return restarts_fired_; }
  /// Processes currently down.
  [[nodiscard]] const std::vector<std::size_t>& crashed() const {
    return crashed_;
  }
  /// Completed crash–restart cycles, in restart order.
  [[nodiscard]] const std::vector<RestartEvent>& restart_log() const {
    return restart_log_;
  }
  [[nodiscard]] bool partitioned() const { return partitioned_; }

 private:
  struct PendingRestart {
    Time due;
    std::size_t index;
    Time crashed_at;
  };

  void inject();
  void fire_due_restarts();
  [[nodiscard]] Time earliest_pending() const;

  SimWorld& world_;
  ChaosConfig config_;
  Rng rng_;
  bool partitioned_ = false;
  Time next_event_ = 0;
  std::size_t partitions_injected_ = 0;
  std::size_t crashes_injected_ = 0;
  std::size_t restarts_fired_ = 0;
  std::vector<std::size_t> crashed_;
  std::vector<PendingRestart> pending_restarts_;
  std::vector<RestartEvent> restart_log_;
};

}  // namespace plwg::harness
