// run_scenario: one deterministic adversarial episode. Build the world the
// scenario describes (oracle on), form a single LWG over every process,
// replay the scenario's fault schedule through ChaosMonkey with light
// application traffic and 100 ms availability sampling, quiesce, converge,
// and report availability / MTTR / oracle verdict.
#include <algorithm>
#include <map>

#include "harness/chaos.hpp"
#include "harness/scenario.hpp"
#include "harness/world.hpp"
#include "lwg/lwg_user.hpp"

namespace plwg::harness {
namespace {

class NullUser : public lwg::LwgUser {
 public:
  void on_lwg_view(LwgId, const lwg::LwgView&) override {}
  void on_lwg_data(LwgId, ProcessId, std::span<const std::uint8_t>) override {}
};

}  // namespace

ScenarioResult run_scenario(const Scenario& scenario, std::uint64_t seed,
                            std::size_t sim_threads) {
  ScenarioResult result;

  WorldConfig cfg;
  cfg.num_processes = scenario.processes;
  cfg.num_name_servers = scenario.name_servers;
  cfg.net.seed = seed;
  cfg.net.drop_probability = scenario.net_drop_probability;
  cfg.net.jitter_us = scenario.net_jitter_us;
  cfg.segments = scenario.segments;
  cfg.sim_threads = sim_threads;
  cfg.oracle = true;
  SimWorld world(cfg);
  const std::size_t n = world.num_processes();

  // Form one LWG over every process before any fault fires.
  std::vector<NullUser> users(n);
  const LwgId id{1};
  world.lwg(0).join(id, users[0]);
  world.run_until([&] { return world.lwg(0).view_of(id) != nullptr; },
                  20'000'000);
  for (std::size_t i = 1; i < n; ++i) world.lwg(i).join(id, users[i]);
  result.formed = world.run_until(
      [&] {
        for (std::size_t i = 0; i < n; ++i) {
          const lwg::LwgView* v = world.lwg(i).view_of(id);
          if (v == nullptr || v->members.size() != n) return false;
        }
        return true;
      },
      60'000'000);
  if (!result.formed) {
    result.failure = "group never formed before fault injection";
    result.digest = world.trace_digest();
    return result;
  }

  ChaosConfig chaos_cfg;
  chaos_cfg.seed = seed;
  chaos_cfg.random_faults = false;  // the scenario is the whole schedule
  ChaosMonkey chaos(world, chaos_cfg);
  chaos.load(scenario);

  // Fault phase: 100 ms sampling ticks. Each tick every alive process is
  // probed for availability (holds a view of the group) and one process
  // round-robin sends a small application message so the data path stays
  // exercised across every fault shape.
  constexpr Duration kSample = 100'000;
  std::uint64_t samples = 0, available = 0;
  std::size_t log_seen = 0, sender = 0;
  std::map<std::size_t, Time> awaiting_rejoin;  // index -> restarted_at
  double rejoin_sum_us = 0;

  const auto poll_rejoins = [&](Time now) {
    for (std::size_t i = log_seen; i < chaos.restart_log().size(); ++i) {
      const RestartEvent& ev = chaos.restart_log()[i];
      awaiting_rejoin[ev.index] = ev.restarted_at;
    }
    log_seen = chaos.restart_log().size();
    for (auto it = awaiting_rejoin.begin(); it != awaiting_rejoin.end();) {
      if (std::find(chaos.crashed().begin(), chaos.crashed().end(),
                    it->first) != chaos.crashed().end()) {
        it = awaiting_rejoin.erase(it);  // crashed again before rejoining
        continue;
      }
      if (world.lwg(it->first).view_of(id) != nullptr) {
        rejoin_sum_us += static_cast<double>(now - it->second);
        result.rejoins++;
        it = awaiting_rejoin.erase(it);
      } else {
        ++it;
      }
    }
  };

  const Time fault_end = world.simulator().now() + scenario.run_us;
  while (world.simulator().now() < fault_end) {
    chaos.run_for(std::min<Duration>(kSample,
                                     fault_end - world.simulator().now()));
    const Time now = world.simulator().now();
    poll_rejoins(now);
    for (std::size_t i = 0; i < n; ++i) {
      if (std::find(chaos.crashed().begin(), chaos.crashed().end(), i) !=
          chaos.crashed().end()) {
        continue;
      }
      ++samples;
      if (world.lwg(i).view_of(id) != nullptr) ++available;
    }
    for (std::size_t tries = 0; tries < n; ++tries) {
      const std::size_t s = sender++ % n;
      if (std::find(chaos.crashed().begin(), chaos.crashed().end(), s) !=
          chaos.crashed().end()) {
        continue;
      }
      if (world.lwg(s).view_of(id) != nullptr) {
        world.lwg(s).send(id, {0xAD, static_cast<std::uint8_t>(s)});
      }
      break;
    }
  }
  result.availability_pct =
      samples == 0 ? 0
                   : 100.0 * static_cast<double>(available) /
                         static_cast<double>(samples);

  // Heal everything (quiesce asserts the fault state fully drains) and
  // measure family MTTR: sim time from quiesce to global convergence.
  chaos.quiesce();
  const Time healed_at = world.simulator().now();
  result.converged = world.run_until(
      [&] { return world.convergence_failure().empty(); },
      scenario.converge_timeout_us);
  if (result.converged) {
    result.recovery_us = world.simulator().now() - healed_at;
    world.verify_convergence();
  } else {
    result.failure = world.convergence_failure();
  }
  poll_rejoins(world.simulator().now());

  result.partitions = chaos.partitions_injected();
  result.crashes = chaos.crashes_injected();
  result.restarts = chaos.restarts_fired();
  result.link_faults = chaos.link_faults_injected();
  result.mean_rejoin_ms =
      result.rejoins == 0
          ? 0
          : rejoin_sum_us / 1e3 / static_cast<double>(result.rejoins);

  if (world.oracle_enabled()) {
    result.oracle_clean = world.oracle().clean();
    if (!result.oracle_clean && result.failure.empty()) {
      result.failure = world.oracle().report_json();
    }
    world.oracle().clear();  // reported through the result, not the backstop
  } else {
    result.oracle_clean = true;
  }
  result.digest = world.trace_digest();
  return result;
}

}  // namespace plwg::harness
