// Quickstart: the smallest complete PLWG program.
//
// Builds a simulated world of three processes, joins them to one
// light-weight group, multicasts a message, and prints the views and
// deliveries as they happen. Start here to learn the API surface:
//   harness::SimWorld   - wires processes, naming service, network
//   lwg::GroupService   - join / leave / send (paper Table 1, per LwgId)
//   lwg::LwgUser        - on_lwg_view / on_lwg_data upcalls
#include <cstdio>
#include <string>

#include "harness/world.hpp"
#include "lwg/lwg_user.hpp"

using namespace plwg;

namespace {

class ChattyUser : public lwg::LwgUser {
 public:
  ChattyUser(std::string name, harness::SimWorld& world)
      : name_(std::move(name)), world_(world) {}

  void on_lwg_view(LwgId lwg, const lwg::LwgView& view) override {
    std::printf("[%6.1fms] %s: installed view of lwg %llu: %s (mapped on "
                "hwg %llu)\n",
                ms(), name_.c_str(),
                static_cast<unsigned long long>(lwg.value()),
                view.members.to_string().c_str(),
                static_cast<unsigned long long>(view.hwg.value()));
  }

  void on_lwg_data(LwgId lwg, ProcessId src,
                   std::span<const std::uint8_t> data) override {
    std::printf("[%6.1fms] %s: lwg %llu data from p%u: \"%.*s\"\n", ms(),
                name_.c_str(), static_cast<unsigned long long>(lwg.value()),
                src.value(), static_cast<int>(data.size()),
                reinterpret_cast<const char*>(data.data()));
  }

 private:
  [[nodiscard]] double ms() const {
    return static_cast<double>(world_.simulator().now()) / 1000.0;
  }
  std::string name_;
  harness::SimWorld& world_;
};

std::vector<std::uint8_t> text(const char* s) {
  return {reinterpret_cast<const std::uint8_t*>(s),
          reinterpret_cast<const std::uint8_t*>(s) + std::strlen(s)};
}

}  // namespace

int main() {
  std::printf("== PLWG quickstart: three processes, one group ==\n");

  harness::WorldConfig cfg;
  cfg.num_processes = 3;
  harness::SimWorld world(cfg);

  ChattyUser alice("alice(p0)", world);
  ChattyUser bob("bob  (p1)", world);
  ChattyUser carol("carol(p2)", world);

  const LwgId room{42};
  world.lwg(0).join(room, alice);
  world.lwg(1).join(room, bob);
  world.lwg(2).join(room, carol);

  // Let the naming service resolve the mapping and the views converge.
  world.run_until(
      [&] {
        for (std::size_t i = 0; i < 3; ++i) {
          const lwg::LwgView* v = world.lwg(i).view_of(room);
          if (v == nullptr || v->members.size() != 3) return false;
        }
        return true;
      },
      20'000'000);

  world.lwg(0).send(room, text("hello from alice"));
  world.lwg(2).send(room, text("carol here"));
  world.run_for(2'000'000);

  std::printf("\nalice leaves; the view shrinks:\n");
  world.lwg(0).leave(room);
  world.run_for(2'000'000);

  std::printf("\ndone. hwgs in use at bob: %zu (one group -> one hwg)\n",
              world.lwg(1).member_hwgs().size());
  return 0;
}
