// Trading floor: the Swiss-Exchange-style workload from the paper's
// introduction — one group per data "subject", many subjects with largely
// overlapping membership, all multiplexed onto a handful of heavy-weight
// groups by the dynamic LWG service.
//
// Demonstrates: resource sharing (12 equities subjects on one HWG), the
// optimistic initial mapping putting a small bonds subject on the equities
// HWG, the interference it suffers there (filtered foreign packets), and
// the interference rule evicting it to its own HWG.
#include <cstdio>
#include <vector>

#include "harness/world.hpp"
#include "lwg/lwg_user.hpp"

using namespace plwg;

namespace {

class TickerUser : public lwg::LwgUser {
 public:
  void on_lwg_view(LwgId, const lwg::LwgView&) override {}
  void on_lwg_data(LwgId, ProcessId, std::span<const std::uint8_t>) override {
    ++quotes_received;
  }
  std::uint64_t quotes_received = 0;
};

std::vector<std::uint8_t> quote(std::uint32_t instrument, double price) {
  Encoder enc;
  enc.put_u32(instrument);
  enc.put_u64(static_cast<std::uint64_t>(price * 100));
  return enc.take();
}

}  // namespace

int main() {
  std::printf("== PLWG trading floor: subject groups over shared HWGs ==\n");

  harness::WorldConfig cfg;
  cfg.num_processes = 8;  // 8 trading engines
  cfg.lwg.policy_period_us = 4'000'000;
  cfg.lwg.shrink_delay_us = 5'000'000;
  harness::SimWorld world(cfg);
  std::vector<TickerUser> users(8);

  // Twelve "equities" subjects, disseminated to engines 0-6.
  std::vector<LwgId> equities;
  for (std::uint64_t s = 0; s < 12; ++s) {
    const LwgId subject{100 + s};
    equities.push_back(subject);
    world.lwg(0).join(subject, users[0]);
    world.run_until(
        [&] { return world.lwg(0).view_of(subject) != nullptr; }, 10'000'000);
    for (std::size_t e = 1; e < 7; ++e) world.lwg(e).join(subject, users[e]);
  }
  // One low-volume "bonds" subject traded by engine 0 (which also trades
  // equities) and the dedicated bonds engine 7. The optimistic mapping
  // first co-locates it with the equities — engine 7 then pays to filter
  // the entire equities feed until the interference rule reacts.
  const LwgId bonds{200};
  world.lwg(0).join(bonds, users[0]);
  world.run_until([&] { return world.lwg(0).view_of(bonds) != nullptr; },
                  10'000'000);
  world.lwg(7).join(bonds, users[7]);

  world.run_until(
      [&] {
        for (LwgId s : equities) {
          for (std::size_t e = 0; e < 7; ++e) {
            const lwg::LwgView* v = world.lwg(e).view_of(s);
            if (v == nullptr || v->members.size() != 7) return false;
          }
        }
        const lwg::LwgView* v = world.lwg(7).view_of(bonds);
        return v != nullptr && v->members.size() == 2;
      },
      60'000'000);

  std::printf("subjects: %zu equities (engines 0-6) + 1 bonds (engines 0,7)\n",
              equities.size());
  const bool comapped =
      *world.lwg(0).hwg_of(bonds) == *world.lwg(0).hwg_of(equities[0]);
  std::printf("optimistic initial mapping co-located bonds with equities: "
              "%s\n",
              comapped ? "yes" : "no");

  // Market data flows while the policies settle the mapping.
  for (int round = 0; round < 20; ++round) {
    for (std::size_t s = 0; s < equities.size(); ++s) {
      world.lwg(0).send(equities[s],
                        quote(static_cast<std::uint32_t>(s), 100.0 + round));
    }
    world.lwg(0).send(bonds, quote(999, 99.5));
    world.run_for(400'000);
  }
  world.run_for(10'000'000);

  std::printf("\nafter the mapping policies ran:\n");
  std::printf("  hwgs at engine 0 (trades both desks):   %zu\n",
              world.lwg(0).member_hwgs().size());
  std::printf("  hwgs at engine 7 (bonds only):          %zu\n",
              world.lwg(7).member_hwgs().size());
  const bool separated =
      *world.lwg(0).hwg_of(bonds) != *world.lwg(0).hwg_of(equities[0]);
  std::printf("  interference rule isolated the bonds subject: %s\n",
              separated ? "yes" : "no");
  std::printf("  equities packets engine 7 had to filter while co-mapped: "
              "%llu\n",
              static_cast<unsigned long long>(
                  world.lwg(7).stats().data_filtered));
  std::printf("  quotes delivered at engine 5: %llu\n",
              static_cast<unsigned long long>(users[5].quotes_received));
  std::uint64_t switches = 0;
  for (std::size_t e = 0; e < 8; ++e) {
    switches += world.lwg(e).stats().switches_completed;
  }
  std::printf("  switches executed (all engines): %llu\n",
              static_cast<unsigned long long>(switches));
  return 0;
}
