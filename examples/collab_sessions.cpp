// Collaboration sessions (CCTL-style, paper's second motivating system):
// one LWG per shared workspace, membership evolves at run time, and the
// dynamic service keeps re-deriving good mappings — the interference rule
// gives a small side-session its own HWG, and the shrink rule retires
// memberships that no longer carry any session.
#include <cstdio>
#include <map>
#include <vector>

#include "harness/world.hpp"
#include "lwg/lwg_user.hpp"

using namespace plwg;

namespace {

class SessionUser : public lwg::LwgUser {
 public:
  void on_lwg_view(LwgId lwg, const lwg::LwgView& view) override {
    views[lwg] = view;
  }
  void on_lwg_data(LwgId lwg, ProcessId,
                   std::span<const std::uint8_t>) override {
    edits[lwg]++;
  }
  std::map<LwgId, lwg::LwgView> views;
  std::map<LwgId, std::uint64_t> edits;
};

std::vector<std::uint8_t> edit(std::uint32_t pos, std::uint8_t ch) {
  Encoder enc;
  enc.put_u32(pos);
  enc.put_u8(ch);
  return enc.take();
}

void print_mapping(harness::SimWorld& world, std::size_t at,
                   const std::vector<LwgId>& docs) {
  std::printf("  mapping at p%zu:", at);
  for (LwgId d : docs) {
    const auto h = world.lwg(at).hwg_of(d);
    if (!h) continue;
    std::printf("  doc%llu->hwg%llu",
                static_cast<unsigned long long>(d.value()),
                static_cast<unsigned long long>(h->value()));
  }
  std::printf("   (hwg memberships: %zu)\n",
              world.lwg(at).member_hwgs().size());
}

}  // namespace

int main() {
  std::printf("== PLWG collaboration sessions ==\n");

  harness::WorldConfig cfg;
  cfg.num_processes = 8;
  cfg.lwg.policy_period_us = 3'000'000;
  cfg.lwg.shrink_delay_us = 4'000'000;
  harness::SimWorld world(cfg);
  std::vector<SessionUser> users(8);

  const LwgId doc1{1}, doc2{2}, side{3};
  const std::vector<LwgId> all_docs{doc1, doc2, side};

  std::printf("\nphase 1: the whole team (8 users) works on doc1 and doc2;\n"
              "         users 6-7 also open a small side session\n");
  for (LwgId d : {doc1, doc2}) {
    world.lwg(0).join(d, users[0]);
    world.run_until([&] { return world.lwg(0).view_of(d) != nullptr; },
                    10'000'000);
    for (std::size_t u = 1; u < 8; ++u) world.lwg(u).join(d, users[u]);
  }
  world.run_until(
      [&] {
        for (LwgId d : {doc1, doc2}) {
          for (std::size_t u = 0; u < 8; ++u) {
            const lwg::LwgView* v = world.lwg(u).view_of(d);
            if (v == nullptr || v->members.size() != 8) return false;
          }
        }
        return true;
      },
      60'000'000);
  // The side session opens once the big sessions exist, so the optimistic
  // initial mapping puts it on the big HWG.
  world.lwg(6).join(side, users[6]);
  world.run_until([&] { return world.lwg(6).view_of(side) != nullptr; },
                  10'000'000);
  world.lwg(7).join(side, users[7]);
  world.run_until(
      [&] {
        const lwg::LwgView* v = world.lwg(7).view_of(side);
        return v != nullptr && v->members.size() == 2;
      },
      30'000'000);
  print_mapping(world, 6, all_docs);

  std::printf("\nphase 2: everyone edits; the side session (2 of 8 members "
              "= a minority)\n         is evicted by the interference rule\n");
  for (int round = 0; round < 12; ++round) {
    for (std::size_t u = 0; u < 8; ++u) {
      world.lwg(u).send(u % 2 == 0 ? doc1 : doc2,
                        edit(round, static_cast<std::uint8_t>('a' + u)));
    }
    world.lwg(6).send(side, edit(round, 'z'));
    world.run_for(400'000);
  }
  world.run_for(8'000'000);
  print_mapping(world, 6, all_docs);
  const bool evicted = *world.lwg(6).hwg_of(side) != *world.lwg(6).hwg_of(doc1);
  std::printf("  side session on its own hwg: %s\n", evicted ? "yes" : "no");

  std::printf("\nphase 3: users 6-7 close doc1/doc2; the shrink rule retires "
              "their membership\n         of the big hwg\n");
  for (std::size_t u = 6; u < 8; ++u) {
    world.lwg(u).leave(doc1);
    world.lwg(u).leave(doc2);
  }
  world.run_until(
      [&] {
        return world.lwg(6).member_hwgs().size() == 1 &&
               world.lwg(7).member_hwgs().size() == 1;
      },
      60'000'000);
  print_mapping(world, 6, all_docs);
  print_mapping(world, 0, all_docs);

  std::printf("\nphase 4: editing continues against the settled mapping\n");
  for (int round = 0; round < 5; ++round) {
    world.lwg(0).send(doc1, edit(100 + round, 'x'));
    world.lwg(6).send(side, edit(100 + round, 'y'));
    world.run_for(300'000);
  }
  world.run_for(2'000'000);
  std::printf("  edits delivered: doc1@user1=%llu side@user7=%llu\n",
              static_cast<unsigned long long>(users[1].edits[doc1]),
              static_cast<unsigned long long>(users[7].edits[side]));

  std::uint64_t switches = 0, created = 0, left = 0;
  for (std::size_t u = 0; u < 8; ++u) {
    switches += world.lwg(u).stats().switches_completed;
    created += world.lwg(u).stats().hwgs_created;
    left += world.lwg(u).stats().hwgs_left;
  }
  std::printf("\nservice activity: %llu switches, %llu hwgs created, %llu "
              "hwg departures (shrink rule)\n",
              static_cast<unsigned long long>(switches),
              static_cast<unsigned long long>(created),
              static_cast<unsigned long long>(left));
  return 0;
}
