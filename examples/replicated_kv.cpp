// Replicated key-value store on top of PLWG — the canonical consumer of
// the on_lwg_merge hook.
//
// Each replica applies totally ordered PUT multicasts to a local map;
// virtual synchrony makes replicas identical within a view. A partition
// lets the two sides diverge (each keeps writing); when the partition heals
// and the LWG layer merges the concurrent views, on_lwg_merge fires and
// every replica broadcasts its state, merging by last-writer-wins on a
// (views-survived, writer) version tag. The example prints the store at
// each stage, showing divergence and deterministic convergence.
// (on_lwg_merge fires after the merged view installs, so the state dumps
// ride the merged view and reach every member.)
#include <cstdio>
#include <cstring>
#include <map>
#include <string>

#include "harness/world.hpp"
#include "lwg/lwg_user.hpp"

using namespace plwg;

namespace {

// Message kinds inside the KV group's payloads.
enum class KvMsg : std::uint8_t { kPut = 1, kStateDump };

struct Versioned {
  std::string value;
  std::uint64_t version = 0;  // logical clock, ties broken by writer pid
  std::uint32_t writer = 0;

  [[nodiscard]] bool newer_than(const Versioned& other) const {
    if (version != other.version) return version > other.version;
    return writer > other.writer;
  }
};

class KvReplica : public lwg::LwgUser {
 public:
  KvReplica(std::string name, harness::SimWorld& world, std::size_t index,
            LwgId group)
      : name_(std::move(name)), world_(world), index_(index), group_(group) {}

  void start() { world_.lwg(index_).join(group_, *this); }

  void put(const std::string& key, const std::string& value) {
    clock_++;
    Encoder enc;
    enc.put_u8(static_cast<std::uint8_t>(KvMsg::kPut));
    enc.put_string(key);
    enc.put_string(value);
    enc.put_u64(clock_);
    world_.lwg(index_).send(group_, enc.take());
  }

  [[nodiscard]] std::string get(const std::string& key) const {
    auto it = store_.find(key);
    return it == store_.end() ? "<none>" : it->second.value;
  }

  void dump(const char* label) const {
    std::printf("  %s %s:", name_.c_str(), label);
    for (const auto& [k, v] : store_) {
      std::printf(" %s=%s(v%llu)", k.c_str(), v.value.c_str(),
                  static_cast<unsigned long long>(v.version));
    }
    std::printf("\n");
  }

  [[nodiscard]] bool same_store_as(const KvReplica& other) const {
    if (store_.size() != other.store_.size()) return false;
    for (const auto& [k, v] : store_) {
      auto it = other.store_.find(k);
      if (it == other.store_.end() || it->second.value != v.value) {
        return false;
      }
    }
    return true;
  }

  // --- LwgUser -----------------------------------------------------------
  void on_lwg_view(LwgId, const lwg::LwgView& view) override {
    // Joiner state transfer: when the view grows and we coordinate, push
    // our state so newcomers catch up (idempotent LWW application).
    if (view.members.size() > view_size_ && view_size_ > 0 &&
        view.coordinator() == world_.pid(index_)) {
      broadcast_state();
    }
    view_size_ = view.members.size();
  }

  void on_lwg_data(LwgId, ProcessId src,
                   std::span<const std::uint8_t> data) override {
    Decoder dec(data);
    switch (static_cast<KvMsg>(dec.get_u8())) {
      case KvMsg::kPut: {
        const std::string key = dec.get_string();
        const std::string value = dec.get_string();
        const std::uint64_t version = dec.get_u64();
        apply(key, Versioned{value, version, src.value()});
        break;
      }
      case KvMsg::kStateDump: {
        // Reconciliation: merge a peer's whole store, last-writer-wins.
        const std::uint32_t n = dec.get_count();
        for (std::uint32_t i = 0; i < n; ++i) {
          const std::string key = dec.get_string();
          Versioned v;
          v.value = dec.get_string();
          v.version = dec.get_u64();
          v.writer = dec.get_u32();
          apply(key, v);
        }
        break;
      }
    }
  }

  void on_lwg_merge(LwgId, const std::vector<lwg::LwgView>&,
                    const lwg::LwgView&) override {
    // Concurrent views just folded: every replica broadcasts its state in
    // the merged view; LWW application makes all stores converge.
    merges_seen_++;
    broadcast_state();
  }

  int merges_seen_ = 0;

 private:
  void broadcast_state() {
    Encoder enc;
    enc.put_u8(static_cast<std::uint8_t>(KvMsg::kStateDump));
    enc.put_u32(static_cast<std::uint32_t>(store_.size()));
    for (const auto& [k, v] : store_) {
      enc.put_string(k);
      enc.put_string(v.value);
      enc.put_u64(v.version);
      enc.put_u32(v.writer);
    }
    world_.lwg(index_).send(group_, enc.take());
  }

  void apply(const std::string& key, const Versioned& incoming) {
    auto it = store_.find(key);
    if (it == store_.end() || incoming.newer_than(it->second)) {
      store_[key] = incoming;
    }
    clock_ = std::max(clock_, incoming.version);
  }

  std::string name_;
  harness::SimWorld& world_;
  std::size_t index_;
  LwgId group_;
  std::map<std::string, Versioned> store_;
  std::uint64_t clock_ = 0;
  std::size_t view_size_ = 0;
};

}  // namespace

int main() {
  std::printf("== PLWG replicated key-value store ==\n\n");

  harness::WorldConfig cfg;
  cfg.num_processes = 4;
  cfg.num_name_servers = 2;
  harness::SimWorld world(cfg);

  const LwgId group{0xCAFE};
  std::vector<KvReplica> replicas;
  replicas.reserve(4);
  const char* names[] = {"r0", "r1", "r2", "r3"};
  for (std::size_t i = 0; i < 4; ++i) {
    replicas.emplace_back(names[i], world, i, group);
  }
  for (auto& r : replicas) r.start();
  world.run_until(
      [&] {
        for (std::size_t i = 0; i < 4; ++i) {
          const lwg::LwgView* v = world.lwg(i).view_of(group);
          if (v == nullptr || v->members.size() != 4) return false;
        }
        return true;
      },
      60'000'000);

  std::printf("phase 1: replicated writes while connected\n");
  replicas[0].put("color", "blue");
  replicas[3].put("shape", "circle");
  world.run_for(2'000'000);
  replicas[0].dump("store");
  replicas[3].dump("store");

  std::printf("\nphase 2: partition {r0,r1} | {r2,r3}; both sides write\n");
  world.partition({{0, 1}, {2, 3}}, {0, 1});
  world.run_for(5'000'000);
  replicas[0].put("color", "red");      // east updates color
  replicas[2].put("shape", "square");   // west updates shape
  replicas[2].put("size", "large");     // west adds a key
  world.run_for(3'000'000);
  replicas[0].dump("(east)");
  replicas[2].dump("(west)");

  std::printf("\nphase 3: heal; LWG merge triggers state reconciliation\n");
  world.heal();
  world.run_until(
      [&] {
        for (std::size_t i = 0; i < 4; ++i) {
          const lwg::LwgView* v = world.lwg(i).view_of(group);
          if (v == nullptr || v->members.size() != 4) return false;
        }
        return replicas[0].same_store_as(replicas[2]) &&
               replicas[1].same_store_as(replicas[3]) &&
               replicas[0].same_store_as(replicas[1]);
      },
      120'000'000);
  for (const auto& r : replicas) r.dump("final");
  std::printf("\nall replicas identical: %s; merge callbacks delivered: "
              "%d/%d replicas\n",
              replicas[0].same_store_as(replicas[3]) ? "yes" : "NO",
              replicas[0].merges_seen_ + replicas[1].merges_seen_ +
                  replicas[2].merges_seen_ + replicas[3].merges_seen_,
              4);
  return 0;
}
