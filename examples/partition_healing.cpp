// Partition healing, narrated: the paper's core scenario as a runnable
// walk-through.
//
// A collaboration group spans two sites. The WAN link between them fails;
// both halves keep working in concurrent views (split brain, by design —
// this is a partitionable service). When the link heals, the four-step
// reconciliation of paper Sect. 6 runs: naming-service reconciliation +
// MULTIPLE-MAPPINGS callbacks, deterministic re-mapping, local peer
// discovery, and the merge-views protocol. The program prints the state at
// every act, including the naming-service database (paper Tables 3/4).
#include <cstdio>
#include <cstring>
#include <string>

#include "harness/world.hpp"
#include "lwg/lwg_user.hpp"

using namespace plwg;

namespace {

class SiteUser : public lwg::LwgUser {
 public:
  explicit SiteUser(std::string name) : name_(std::move(name)) {}
  void on_lwg_view(LwgId, const lwg::LwgView& view) override {
    last_view = view;
  }
  void on_lwg_data(LwgId, ProcessId src,
                   std::span<const std::uint8_t> data) override {
    std::printf("    %s received from p%u: \"%.*s\"\n", name_.c_str(),
                src.value(), static_cast<int>(data.size()),
                reinterpret_cast<const char*>(data.data()));
  }
  lwg::LwgView last_view;

 private:
  std::string name_;
};

std::vector<std::uint8_t> text(const char* s) {
  return {reinterpret_cast<const std::uint8_t*>(s),
          reinterpret_cast<const std::uint8_t*>(s) + std::strlen(s)};
}

}  // namespace

int main() {
  std::printf("== PLWG partition healing walk-through ==\n\n");

  harness::WorldConfig cfg;
  cfg.num_processes = 4;       // p0,p1 at site East; p2,p3 at site West
  cfg.num_name_servers = 2;    // one name server per site
  harness::SimWorld world(cfg);

  SiteUser east0("east/p0"), east1("east/p1"), west2("west/p2"),
      west3("west/p3");
  SiteUser* users[] = {&east0, &east1, &west2, &west3};

  const LwgId doc{7};
  std::printf("Act 1 - the group forms across both sites\n");
  for (std::size_t i = 0; i < 4; ++i) world.lwg(i).join(doc, *users[i]);
  world.run_until(
      [&] {
        for (std::size_t i = 0; i < 4; ++i) {
          const lwg::LwgView* v = world.lwg(i).view_of(doc);
          if (v == nullptr || v->members.size() != 4) return false;
        }
        return true;
      },
      30'000'000);
  std::printf("  common view: %s on hwg %llu\n",
              world.lwg(0).view_of(doc)->members.to_string().c_str(),
              static_cast<unsigned long long>(
                  world.lwg(0).view_of(doc)->hwg.value()));
  world.lwg(0).send(doc, text("everyone sees this"));
  world.run_for(2'000'000);

  std::printf("\nAct 2 - the WAN link fails; each site continues alone\n");
  world.partition({{0, 1}, {2, 3}}, {0, 1});
  world.run_until(
      [&] {
        const lwg::LwgView* a = world.lwg(0).view_of(doc);
        const lwg::LwgView* b = world.lwg(2).view_of(doc);
        return a != nullptr && a->members.size() == 2 && b != nullptr &&
               b->members.size() == 2;
      },
      30'000'000);
  std::printf("  east view:  %s (id %s)\n",
              world.lwg(0).view_of(doc)->members.to_string().c_str(),
              world.lwg(0).view_of(doc)->id.to_string().c_str());
  std::printf("  west view:  %s (id %s)\n",
              world.lwg(2).view_of(doc)->members.to_string().c_str(),
              world.lwg(2).view_of(doc)->id.to_string().c_str());
  world.lwg(0).send(doc, text("east-only edit"));
  world.lwg(2).send(doc, text("west-only edit"));
  world.run_for(3'000'000);
  std::printf("  naming service at east's server now:\n%s",
              world.server(0).dump_database().c_str());

  std::printf("\nAct 3 - the link heals; the four reconciliation steps run\n");
  world.heal();
  world.run_until(
      [&] {
        for (std::size_t i = 0; i < 4; ++i) {
          const lwg::LwgView* v = world.lwg(i).view_of(doc);
          if (v == nullptr || v->members.size() != 4) return false;
        }
        return true;
      },
      120'000'000);
  const lwg::LwgView* merged = world.lwg(0).view_of(doc);
  std::printf("  merged view: %s (id %s) on hwg %llu\n",
              merged->members.to_string().c_str(),
              merged->id.to_string().c_str(),
              static_cast<unsigned long long>(merged->hwg.value()));
  bool identical = true;
  for (std::size_t i = 1; i < 4; ++i) {
    identical &= *world.lwg(i).view_of(doc) == *merged;
  }
  std::printf("  identical view at all four processes: %s\n",
              identical ? "yes" : "NO");
  world.lwg(3).send(doc, text("west greets the reunited group"));
  world.run_for(3'000'000);

  world.run_until(
      [&] {
        const auto& db = world.server(0).database();
        auto it = db.records.find(doc);
        return it != db.records.end() && it->second.entries.size() == 1;
      },
      60'000'000);
  std::printf("\n  naming service after genealogy GC (one row again):\n%s",
              world.server(0).dump_database().c_str());
  std::printf("\ndone.\n");
  return 0;
}
