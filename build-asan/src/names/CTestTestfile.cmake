# CMake generated Testfile for 
# Source directory: /root/repo/src/names
# Build directory: /root/repo/build-asan/src/names
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
