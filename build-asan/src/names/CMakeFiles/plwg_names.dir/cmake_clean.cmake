file(REMOVE_RECURSE
  "CMakeFiles/plwg_names.dir/mapping.cpp.o"
  "CMakeFiles/plwg_names.dir/mapping.cpp.o.d"
  "CMakeFiles/plwg_names.dir/messages.cpp.o"
  "CMakeFiles/plwg_names.dir/messages.cpp.o.d"
  "CMakeFiles/plwg_names.dir/naming_agent.cpp.o"
  "CMakeFiles/plwg_names.dir/naming_agent.cpp.o.d"
  "libplwg_names.a"
  "libplwg_names.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/plwg_names.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
