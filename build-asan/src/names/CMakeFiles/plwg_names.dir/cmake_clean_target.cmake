file(REMOVE_RECURSE
  "libplwg_names.a"
)
