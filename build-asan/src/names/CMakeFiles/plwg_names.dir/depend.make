# Empty dependencies file for plwg_names.
# This may be replaced when dependencies are built.
