file(REMOVE_RECURSE
  "CMakeFiles/plwg_transport.dir/node_runtime.cpp.o"
  "CMakeFiles/plwg_transport.dir/node_runtime.cpp.o.d"
  "libplwg_transport.a"
  "libplwg_transport.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/plwg_transport.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
