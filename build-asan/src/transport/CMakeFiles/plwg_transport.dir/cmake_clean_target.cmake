file(REMOVE_RECURSE
  "libplwg_transport.a"
)
