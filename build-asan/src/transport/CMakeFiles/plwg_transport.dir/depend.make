# Empty dependencies file for plwg_transport.
# This may be replaced when dependencies are built.
