
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/transport/node_runtime.cpp" "src/transport/CMakeFiles/plwg_transport.dir/node_runtime.cpp.o" "gcc" "src/transport/CMakeFiles/plwg_transport.dir/node_runtime.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-asan/src/sim/CMakeFiles/plwg_sim.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/util/CMakeFiles/plwg_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
