# Empty dependencies file for plwg_harness.
# This may be replaced when dependencies are built.
