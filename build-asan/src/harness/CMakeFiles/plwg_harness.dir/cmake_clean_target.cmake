file(REMOVE_RECURSE
  "libplwg_harness.a"
)
