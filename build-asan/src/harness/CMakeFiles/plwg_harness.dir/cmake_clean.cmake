file(REMOVE_RECURSE
  "CMakeFiles/plwg_harness.dir/chaos.cpp.o"
  "CMakeFiles/plwg_harness.dir/chaos.cpp.o.d"
  "CMakeFiles/plwg_harness.dir/world.cpp.o"
  "CMakeFiles/plwg_harness.dir/world.cpp.o.d"
  "libplwg_harness.a"
  "libplwg_harness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/plwg_harness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
