# Empty dependencies file for plwg_sim.
# This may be replaced when dependencies are built.
