file(REMOVE_RECURSE
  "CMakeFiles/plwg_sim.dir/network.cpp.o"
  "CMakeFiles/plwg_sim.dir/network.cpp.o.d"
  "CMakeFiles/plwg_sim.dir/simulator.cpp.o"
  "CMakeFiles/plwg_sim.dir/simulator.cpp.o.d"
  "libplwg_sim.a"
  "libplwg_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/plwg_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
