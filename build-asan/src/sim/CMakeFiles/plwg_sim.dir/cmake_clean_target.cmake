file(REMOVE_RECURSE
  "libplwg_sim.a"
)
