file(REMOVE_RECURSE
  "libplwg_lwg.a"
)
