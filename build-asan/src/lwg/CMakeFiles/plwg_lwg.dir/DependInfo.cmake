
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/lwg/lwg_service.cpp" "src/lwg/CMakeFiles/plwg_lwg.dir/lwg_service.cpp.o" "gcc" "src/lwg/CMakeFiles/plwg_lwg.dir/lwg_service.cpp.o.d"
  "/root/repo/src/lwg/lwg_service_map.cpp" "src/lwg/CMakeFiles/plwg_lwg.dir/lwg_service_map.cpp.o" "gcc" "src/lwg/CMakeFiles/plwg_lwg.dir/lwg_service_map.cpp.o.d"
  "/root/repo/src/lwg/lwg_service_merge.cpp" "src/lwg/CMakeFiles/plwg_lwg.dir/lwg_service_merge.cpp.o" "gcc" "src/lwg/CMakeFiles/plwg_lwg.dir/lwg_service_merge.cpp.o.d"
  "/root/repo/src/lwg/lwg_service_policy.cpp" "src/lwg/CMakeFiles/plwg_lwg.dir/lwg_service_policy.cpp.o" "gcc" "src/lwg/CMakeFiles/plwg_lwg.dir/lwg_service_policy.cpp.o.d"
  "/root/repo/src/lwg/lwg_view.cpp" "src/lwg/CMakeFiles/plwg_lwg.dir/lwg_view.cpp.o" "gcc" "src/lwg/CMakeFiles/plwg_lwg.dir/lwg_view.cpp.o.d"
  "/root/repo/src/lwg/messages.cpp" "src/lwg/CMakeFiles/plwg_lwg.dir/messages.cpp.o" "gcc" "src/lwg/CMakeFiles/plwg_lwg.dir/messages.cpp.o.d"
  "/root/repo/src/lwg/policy.cpp" "src/lwg/CMakeFiles/plwg_lwg.dir/policy.cpp.o" "gcc" "src/lwg/CMakeFiles/plwg_lwg.dir/policy.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-asan/src/names/CMakeFiles/plwg_names.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/vsync/CMakeFiles/plwg_vsync.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/util/CMakeFiles/plwg_util.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/transport/CMakeFiles/plwg_transport.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/sim/CMakeFiles/plwg_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
