# Empty dependencies file for plwg_lwg.
# This may be replaced when dependencies are built.
