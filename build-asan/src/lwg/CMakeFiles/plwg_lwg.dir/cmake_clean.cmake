file(REMOVE_RECURSE
  "CMakeFiles/plwg_lwg.dir/lwg_service.cpp.o"
  "CMakeFiles/plwg_lwg.dir/lwg_service.cpp.o.d"
  "CMakeFiles/plwg_lwg.dir/lwg_service_map.cpp.o"
  "CMakeFiles/plwg_lwg.dir/lwg_service_map.cpp.o.d"
  "CMakeFiles/plwg_lwg.dir/lwg_service_merge.cpp.o"
  "CMakeFiles/plwg_lwg.dir/lwg_service_merge.cpp.o.d"
  "CMakeFiles/plwg_lwg.dir/lwg_service_policy.cpp.o"
  "CMakeFiles/plwg_lwg.dir/lwg_service_policy.cpp.o.d"
  "CMakeFiles/plwg_lwg.dir/lwg_view.cpp.o"
  "CMakeFiles/plwg_lwg.dir/lwg_view.cpp.o.d"
  "CMakeFiles/plwg_lwg.dir/messages.cpp.o"
  "CMakeFiles/plwg_lwg.dir/messages.cpp.o.d"
  "CMakeFiles/plwg_lwg.dir/policy.cpp.o"
  "CMakeFiles/plwg_lwg.dir/policy.cpp.o.d"
  "libplwg_lwg.a"
  "libplwg_lwg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/plwg_lwg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
