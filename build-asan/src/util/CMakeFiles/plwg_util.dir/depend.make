# Empty dependencies file for plwg_util.
# This may be replaced when dependencies are built.
