file(REMOVE_RECURSE
  "CMakeFiles/plwg_util.dir/codec.cpp.o"
  "CMakeFiles/plwg_util.dir/codec.cpp.o.d"
  "CMakeFiles/plwg_util.dir/log.cpp.o"
  "CMakeFiles/plwg_util.dir/log.cpp.o.d"
  "CMakeFiles/plwg_util.dir/member_set.cpp.o"
  "CMakeFiles/plwg_util.dir/member_set.cpp.o.d"
  "CMakeFiles/plwg_util.dir/rng.cpp.o"
  "CMakeFiles/plwg_util.dir/rng.cpp.o.d"
  "libplwg_util.a"
  "libplwg_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/plwg_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
