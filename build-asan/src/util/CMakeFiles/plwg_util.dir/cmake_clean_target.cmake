file(REMOVE_RECURSE
  "libplwg_util.a"
)
