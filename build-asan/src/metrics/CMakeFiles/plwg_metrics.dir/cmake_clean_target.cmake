file(REMOVE_RECURSE
  "libplwg_metrics.a"
)
