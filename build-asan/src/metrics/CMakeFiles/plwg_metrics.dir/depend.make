# Empty dependencies file for plwg_metrics.
# This may be replaced when dependencies are built.
