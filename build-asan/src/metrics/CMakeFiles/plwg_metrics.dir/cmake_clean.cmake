file(REMOVE_RECURSE
  "CMakeFiles/plwg_metrics.dir/stats.cpp.o"
  "CMakeFiles/plwg_metrics.dir/stats.cpp.o.d"
  "libplwg_metrics.a"
  "libplwg_metrics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/plwg_metrics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
