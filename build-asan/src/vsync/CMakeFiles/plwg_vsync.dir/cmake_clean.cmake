file(REMOVE_RECURSE
  "CMakeFiles/plwg_vsync.dir/group_endpoint.cpp.o"
  "CMakeFiles/plwg_vsync.dir/group_endpoint.cpp.o.d"
  "CMakeFiles/plwg_vsync.dir/group_endpoint_data.cpp.o"
  "CMakeFiles/plwg_vsync.dir/group_endpoint_data.cpp.o.d"
  "CMakeFiles/plwg_vsync.dir/group_endpoint_flush.cpp.o"
  "CMakeFiles/plwg_vsync.dir/group_endpoint_flush.cpp.o.d"
  "CMakeFiles/plwg_vsync.dir/group_endpoint_merge.cpp.o"
  "CMakeFiles/plwg_vsync.dir/group_endpoint_merge.cpp.o.d"
  "CMakeFiles/plwg_vsync.dir/messages.cpp.o"
  "CMakeFiles/plwg_vsync.dir/messages.cpp.o.d"
  "CMakeFiles/plwg_vsync.dir/view.cpp.o"
  "CMakeFiles/plwg_vsync.dir/view.cpp.o.d"
  "CMakeFiles/plwg_vsync.dir/vsync_host.cpp.o"
  "CMakeFiles/plwg_vsync.dir/vsync_host.cpp.o.d"
  "libplwg_vsync.a"
  "libplwg_vsync.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/plwg_vsync.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
