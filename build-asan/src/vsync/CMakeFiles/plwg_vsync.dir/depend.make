# Empty dependencies file for plwg_vsync.
# This may be replaced when dependencies are built.
