file(REMOVE_RECURSE
  "libplwg_vsync.a"
)
