
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/vsync/group_endpoint.cpp" "src/vsync/CMakeFiles/plwg_vsync.dir/group_endpoint.cpp.o" "gcc" "src/vsync/CMakeFiles/plwg_vsync.dir/group_endpoint.cpp.o.d"
  "/root/repo/src/vsync/group_endpoint_data.cpp" "src/vsync/CMakeFiles/plwg_vsync.dir/group_endpoint_data.cpp.o" "gcc" "src/vsync/CMakeFiles/plwg_vsync.dir/group_endpoint_data.cpp.o.d"
  "/root/repo/src/vsync/group_endpoint_flush.cpp" "src/vsync/CMakeFiles/plwg_vsync.dir/group_endpoint_flush.cpp.o" "gcc" "src/vsync/CMakeFiles/plwg_vsync.dir/group_endpoint_flush.cpp.o.d"
  "/root/repo/src/vsync/group_endpoint_merge.cpp" "src/vsync/CMakeFiles/plwg_vsync.dir/group_endpoint_merge.cpp.o" "gcc" "src/vsync/CMakeFiles/plwg_vsync.dir/group_endpoint_merge.cpp.o.d"
  "/root/repo/src/vsync/messages.cpp" "src/vsync/CMakeFiles/plwg_vsync.dir/messages.cpp.o" "gcc" "src/vsync/CMakeFiles/plwg_vsync.dir/messages.cpp.o.d"
  "/root/repo/src/vsync/view.cpp" "src/vsync/CMakeFiles/plwg_vsync.dir/view.cpp.o" "gcc" "src/vsync/CMakeFiles/plwg_vsync.dir/view.cpp.o.d"
  "/root/repo/src/vsync/vsync_host.cpp" "src/vsync/CMakeFiles/plwg_vsync.dir/vsync_host.cpp.o" "gcc" "src/vsync/CMakeFiles/plwg_vsync.dir/vsync_host.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-asan/src/transport/CMakeFiles/plwg_transport.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/sim/CMakeFiles/plwg_sim.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/util/CMakeFiles/plwg_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
