
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_hotpath.cpp" "bench-build/CMakeFiles/bench_hotpath.dir/bench_hotpath.cpp.o" "gcc" "bench-build/CMakeFiles/bench_hotpath.dir/bench_hotpath.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-asan/src/harness/CMakeFiles/plwg_harness.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/lwg/CMakeFiles/plwg_lwg.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/names/CMakeFiles/plwg_names.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/vsync/CMakeFiles/plwg_vsync.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/transport/CMakeFiles/plwg_transport.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/sim/CMakeFiles/plwg_sim.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/metrics/CMakeFiles/plwg_metrics.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/util/CMakeFiles/plwg_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
