file(REMOVE_RECURSE
  "../bench/bench_naming_deployments"
  "../bench/bench_naming_deployments.pdb"
  "CMakeFiles/bench_naming_deployments.dir/bench_naming_deployments.cpp.o"
  "CMakeFiles/bench_naming_deployments.dir/bench_naming_deployments.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_naming_deployments.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
