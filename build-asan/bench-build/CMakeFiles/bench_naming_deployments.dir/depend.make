# Empty dependencies file for bench_naming_deployments.
# This may be replaced when dependencies are built.
