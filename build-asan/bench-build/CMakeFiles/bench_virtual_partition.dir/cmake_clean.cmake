file(REMOVE_RECURSE
  "../bench/bench_virtual_partition"
  "../bench/bench_virtual_partition.pdb"
  "CMakeFiles/bench_virtual_partition.dir/bench_virtual_partition.cpp.o"
  "CMakeFiles/bench_virtual_partition.dir/bench_virtual_partition.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_virtual_partition.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
