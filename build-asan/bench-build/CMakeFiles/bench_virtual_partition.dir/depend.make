# Empty dependencies file for bench_virtual_partition.
# This may be replaced when dependencies are built.
