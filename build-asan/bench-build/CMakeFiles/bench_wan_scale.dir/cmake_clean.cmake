file(REMOVE_RECURSE
  "../bench/bench_wan_scale"
  "../bench/bench_wan_scale.pdb"
  "CMakeFiles/bench_wan_scale.dir/bench_wan_scale.cpp.o"
  "CMakeFiles/bench_wan_scale.dir/bench_wan_scale.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_wan_scale.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
