# Empty compiler generated dependencies file for bench_wan_scale.
# This may be replaced when dependencies are built.
