file(REMOVE_RECURSE
  "../bench/bench_chaos_availability"
  "../bench/bench_chaos_availability.pdb"
  "CMakeFiles/bench_chaos_availability.dir/bench_chaos_availability.cpp.o"
  "CMakeFiles/bench_chaos_availability.dir/bench_chaos_availability.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_chaos_availability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
