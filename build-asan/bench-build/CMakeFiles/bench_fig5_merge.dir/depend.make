# Empty dependencies file for bench_fig5_merge.
# This may be replaced when dependencies are built.
