file(REMOVE_RECURSE
  "../bench/bench_fig5_merge"
  "../bench/bench_fig5_merge.pdb"
  "CMakeFiles/bench_fig5_merge.dir/bench_fig5_merge.cpp.o"
  "CMakeFiles/bench_fig5_merge.dir/bench_fig5_merge.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5_merge.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
