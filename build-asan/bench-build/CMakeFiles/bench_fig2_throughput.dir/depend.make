# Empty dependencies file for bench_fig2_throughput.
# This may be replaced when dependencies are built.
