file(REMOVE_RECURSE
  "../bench/bench_fig2_throughput"
  "../bench/bench_fig2_throughput.pdb"
  "CMakeFiles/bench_fig2_throughput.dir/bench_fig2_throughput.cpp.o"
  "CMakeFiles/bench_fig2_throughput.dir/bench_fig2_throughput.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig2_throughput.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
