# Empty dependencies file for bench_fig1_heuristics.
# This may be replaced when dependencies are built.
