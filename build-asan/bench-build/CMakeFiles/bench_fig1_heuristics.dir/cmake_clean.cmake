file(REMOVE_RECURSE
  "../bench/bench_fig1_heuristics"
  "../bench/bench_fig1_heuristics.pdb"
  "CMakeFiles/bench_fig1_heuristics.dir/bench_fig1_heuristics.cpp.o"
  "CMakeFiles/bench_fig1_heuristics.dir/bench_fig1_heuristics.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig1_heuristics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
