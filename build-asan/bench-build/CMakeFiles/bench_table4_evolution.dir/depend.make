# Empty dependencies file for bench_table4_evolution.
# This may be replaced when dependencies are built.
