file(REMOVE_RECURSE
  "../bench/bench_table4_evolution"
  "../bench/bench_table4_evolution.pdb"
  "CMakeFiles/bench_table4_evolution.dir/bench_table4_evolution.cpp.o"
  "CMakeFiles/bench_table4_evolution.dir/bench_table4_evolution.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table4_evolution.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
