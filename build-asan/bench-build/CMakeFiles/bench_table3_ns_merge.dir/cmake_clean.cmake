file(REMOVE_RECURSE
  "../bench/bench_table3_ns_merge"
  "../bench/bench_table3_ns_merge.pdb"
  "CMakeFiles/bench_table3_ns_merge.dir/bench_table3_ns_merge.cpp.o"
  "CMakeFiles/bench_table3_ns_merge.dir/bench_table3_ns_merge.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table3_ns_merge.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
