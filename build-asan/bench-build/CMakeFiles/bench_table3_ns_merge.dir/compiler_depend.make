# Empty compiler generated dependencies file for bench_table3_ns_merge.
# This may be replaced when dependencies are built.
