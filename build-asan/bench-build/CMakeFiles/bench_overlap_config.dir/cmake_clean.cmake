file(REMOVE_RECURSE
  "../bench/bench_overlap_config"
  "../bench/bench_overlap_config.pdb"
  "CMakeFiles/bench_overlap_config.dir/bench_overlap_config.cpp.o"
  "CMakeFiles/bench_overlap_config.dir/bench_overlap_config.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_overlap_config.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
