# Empty dependencies file for bench_overlap_config.
# This may be replaced when dependencies are built.
