# Empty dependencies file for bench_fig2_recovery.
# This may be replaced when dependencies are built.
