file(REMOVE_RECURSE
  "../bench/bench_fig2_recovery"
  "../bench/bench_fig2_recovery.pdb"
  "CMakeFiles/bench_fig2_recovery.dir/bench_fig2_recovery.cpp.o"
  "CMakeFiles/bench_fig2_recovery.dir/bench_fig2_recovery.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig2_recovery.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
