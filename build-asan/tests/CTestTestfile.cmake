# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build-asan/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build-asan/tests/test_util[1]_include.cmake")
include("/root/repo/build-asan/tests/test_sim[1]_include.cmake")
include("/root/repo/build-asan/tests/test_vsync[1]_include.cmake")
include("/root/repo/build-asan/tests/test_names[1]_include.cmake")
include("/root/repo/build-asan/tests/test_lwg[1]_include.cmake")
include("/root/repo/build-asan/tests/test_integration[1]_include.cmake")
include("/root/repo/build-asan/tests/test_metrics[1]_include.cmake")
