file(REMOVE_RECURSE
  "CMakeFiles/test_names.dir/names_record_test.cpp.o"
  "CMakeFiles/test_names.dir/names_record_test.cpp.o.d"
  "CMakeFiles/test_names.dir/names_replication_test.cpp.o"
  "CMakeFiles/test_names.dir/names_replication_test.cpp.o.d"
  "CMakeFiles/test_names.dir/names_service_test.cpp.o"
  "CMakeFiles/test_names.dir/names_service_test.cpp.o.d"
  "CMakeFiles/test_names.dir/naming_mode_test.cpp.o"
  "CMakeFiles/test_names.dir/naming_mode_test.cpp.o.d"
  "test_names"
  "test_names.pdb"
  "test_names[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_names.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
