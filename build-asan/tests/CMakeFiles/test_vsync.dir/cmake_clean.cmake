file(REMOVE_RECURSE
  "CMakeFiles/test_vsync.dir/view_format_test.cpp.o"
  "CMakeFiles/test_vsync.dir/view_format_test.cpp.o.d"
  "CMakeFiles/test_vsync.dir/vsync_basic_test.cpp.o"
  "CMakeFiles/test_vsync.dir/vsync_basic_test.cpp.o.d"
  "CMakeFiles/test_vsync.dir/vsync_failure_test.cpp.o"
  "CMakeFiles/test_vsync.dir/vsync_failure_test.cpp.o.d"
  "CMakeFiles/test_vsync.dir/vsync_flush_test.cpp.o"
  "CMakeFiles/test_vsync.dir/vsync_flush_test.cpp.o.d"
  "CMakeFiles/test_vsync.dir/vsync_join_test.cpp.o"
  "CMakeFiles/test_vsync.dir/vsync_join_test.cpp.o.d"
  "CMakeFiles/test_vsync.dir/vsync_merge_test.cpp.o"
  "CMakeFiles/test_vsync.dir/vsync_merge_test.cpp.o.d"
  "CMakeFiles/test_vsync.dir/vsync_multigroup_test.cpp.o"
  "CMakeFiles/test_vsync.dir/vsync_multigroup_test.cpp.o.d"
  "CMakeFiles/test_vsync.dir/vsync_order_test.cpp.o"
  "CMakeFiles/test_vsync.dir/vsync_order_test.cpp.o.d"
  "CMakeFiles/test_vsync.dir/vsync_partition_test.cpp.o"
  "CMakeFiles/test_vsync.dir/vsync_partition_test.cpp.o.d"
  "CMakeFiles/test_vsync.dir/vsync_property_test.cpp.o"
  "CMakeFiles/test_vsync.dir/vsync_property_test.cpp.o.d"
  "CMakeFiles/test_vsync.dir/vsync_stop_test.cpp.o"
  "CMakeFiles/test_vsync.dir/vsync_stop_test.cpp.o.d"
  "test_vsync"
  "test_vsync.pdb"
  "test_vsync[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_vsync.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
