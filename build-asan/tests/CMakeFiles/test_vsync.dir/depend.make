# Empty dependencies file for test_vsync.
# This may be replaced when dependencies are built.
