file(REMOVE_RECURSE
  "CMakeFiles/test_lwg.dir/lwg_basic_test.cpp.o"
  "CMakeFiles/test_lwg.dir/lwg_basic_test.cpp.o.d"
  "CMakeFiles/test_lwg.dir/lwg_churn_property_test.cpp.o"
  "CMakeFiles/test_lwg.dir/lwg_churn_property_test.cpp.o.d"
  "CMakeFiles/test_lwg.dir/lwg_debug_dump_test.cpp.o"
  "CMakeFiles/test_lwg.dir/lwg_debug_dump_test.cpp.o.d"
  "CMakeFiles/test_lwg.dir/lwg_modes_test.cpp.o"
  "CMakeFiles/test_lwg.dir/lwg_modes_test.cpp.o.d"
  "CMakeFiles/test_lwg.dir/lwg_partition_test.cpp.o"
  "CMakeFiles/test_lwg.dir/lwg_partition_test.cpp.o.d"
  "CMakeFiles/test_lwg.dir/lwg_policy_test.cpp.o"
  "CMakeFiles/test_lwg.dir/lwg_policy_test.cpp.o.d"
  "CMakeFiles/test_lwg.dir/lwg_policy_world_test.cpp.o"
  "CMakeFiles/test_lwg.dir/lwg_policy_world_test.cpp.o.d"
  "CMakeFiles/test_lwg.dir/lwg_reconfig_test.cpp.o"
  "CMakeFiles/test_lwg.dir/lwg_reconfig_test.cpp.o.d"
  "CMakeFiles/test_lwg.dir/lwg_stress_test.cpp.o"
  "CMakeFiles/test_lwg.dir/lwg_stress_test.cpp.o.d"
  "CMakeFiles/test_lwg.dir/lwg_switch_test.cpp.o"
  "CMakeFiles/test_lwg.dir/lwg_switch_test.cpp.o.d"
  "test_lwg"
  "test_lwg.pdb"
  "test_lwg[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_lwg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
