# Empty dependencies file for test_lwg.
# This may be replaced when dependencies are built.
