# Empty compiler generated dependencies file for partition_healing.
# This may be replaced when dependencies are built.
