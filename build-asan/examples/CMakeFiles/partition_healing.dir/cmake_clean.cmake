file(REMOVE_RECURSE
  "CMakeFiles/partition_healing.dir/partition_healing.cpp.o"
  "CMakeFiles/partition_healing.dir/partition_healing.cpp.o.d"
  "partition_healing"
  "partition_healing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/partition_healing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
