# Empty compiler generated dependencies file for collab_sessions.
# This may be replaced when dependencies are built.
