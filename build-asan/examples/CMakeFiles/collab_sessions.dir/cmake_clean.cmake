file(REMOVE_RECURSE
  "CMakeFiles/collab_sessions.dir/collab_sessions.cpp.o"
  "CMakeFiles/collab_sessions.dir/collab_sessions.cpp.o.d"
  "collab_sessions"
  "collab_sessions.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/collab_sessions.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
