# Empty compiler generated dependencies file for trading_floor.
# This may be replaced when dependencies are built.
