file(REMOVE_RECURSE
  "CMakeFiles/trading_floor.dir/trading_floor.cpp.o"
  "CMakeFiles/trading_floor.dir/trading_floor.cpp.o.d"
  "trading_floor"
  "trading_floor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/trading_floor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
