# Empty dependencies file for trading_floor.
# This may be replaced when dependencies are built.
