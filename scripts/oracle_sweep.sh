#!/usr/bin/env bash
# Parallel oracle chaos sweep.
#
# The 1,000-seed campaign is embarrassingly parallel — every seed builds an
# independent world — so this shards the seed range across worker processes
# with the test binary's PLWG_SWEEP_FIRST / PLWG_SWEEP_SEEDS knobs and fails
# if any shard reports an oracle violation.
#
# Usage: scripts/oracle_sweep.sh [total_seeds] [first_seed]
#   total_seeds  default 1000
#   first_seed   default 1
# Env:
#   BUILD_DIR            build tree holding tests/test_oracle (default: build)
#   JOBS                 worker count (default: nproc)
#   PLWG_SWEEP_RESTARTS  passed through (0 = crashes stay permanent)
#   PLWG_SIM_THREADS     passed through; > 1 runs every episode on the
#                        sharded multi-threaded engine (worlds get 2-3 LAN
#                        segments so shards actually exist). Each test
#                        process then uses up to that many engine workers,
#                        so scale JOBS down accordingly.
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR=${BUILD_DIR:-build}
TOTAL=${1:-1000}
FIRST=${2:-1}
JOBS=${JOBS:-$(nproc)}
BIN="$BUILD_DIR/tests/test_oracle"

if [[ ! -x "$BIN" ]]; then
  echo "error: $BIN not built (cmake --build $BUILD_DIR --target test_oracle)" >&2
  exit 2
fi
if (( JOBS > TOTAL )); then JOBS=$TOTAL; fi

log_dir=$(mktemp -d)
trap 'rm -rf "$log_dir"' EXIT

echo "sweeping seeds [$FIRST, $((FIRST + TOTAL - 1))] across $JOBS workers" \
     "(PLWG_SIM_THREADS=${PLWG_SIM_THREADS:-1})"
start_ts=$SECONDS
pids=()
starts=()
counts=()
base=$(( TOTAL / JOBS ))
rem=$(( TOTAL % JOBS ))
next=$FIRST
for (( w = 0; w < JOBS; w++ )); do
  count=$(( base + (w < rem ? 1 : 0) ))
  (( count == 0 )) && continue
  PLWG_SWEEP_FIRST=$next PLWG_SWEEP_SEEDS=$count \
    "$BIN" --gtest_filter='*ChaosSweepLeavesOracleClean*' \
    > "$log_dir/shard-$w.log" 2>&1 &
  pids+=($!)
  starts+=($next)
  counts+=($count)
  next=$(( next + count ))
done

failed=0
for i in "${!pids[@]}"; do
  if wait "${pids[$i]}"; then
    echo "  shard $i: seeds ${starts[$i]}..$(( starts[$i] + counts[$i] - 1 )) clean"
  else
    failed=1
    echo "  shard $i: seeds ${starts[$i]}..$(( starts[$i] + counts[$i] - 1 )) FAILED"
    sed 's/^/    /' "$log_dir/shard-$i.log"
  fi
done

echo "swept $TOTAL seeds in $(( SECONDS - start_ts ))s"
exit $failed
