#!/usr/bin/env bash
# Adversarial scenario-corpus sweep.
#
# Replays every corpus file under scenarios/ across a seed range with the
# protocol oracle as judge, sharding the seed range across worker processes
# via the test binary's PLWG_SWEEP_FIRST / PLWG_SWEEP_SEEDS knobs. Every
# (file, seed) episode must form, converge after quiesce, and leave the
# oracle clean; failures write per-episode oracle JSON artifacts when
# PLWG_ORACLE_REPORT_DIR is set.
#
# Usage: scripts/scenario_sweep.sh [total_seeds] [first_seed]
#   total_seeds  default 25
#   first_seed   default 1
# Env:
#   BUILD_DIR          build tree holding tests/test_scenarios (default: build)
#   JOBS               worker count (default: nproc)
#   PLWG_SIM_THREADS   passed through; > 1 replays every episode on the
#                      sharded multi-threaded engine (multi-segment corpus
#                      files actually get shards). Scale JOBS down to match.
#   PLWG_SCENARIO_DIR  corpus directory override (default: scenarios/ in the
#                      source tree, compiled into the binary)
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR=${BUILD_DIR:-build}
TOTAL=${1:-25}
FIRST=${2:-1}
JOBS=${JOBS:-$(nproc)}
BIN="$BUILD_DIR/tests/test_scenarios"

if [[ ! -x "$BIN" ]]; then
  echo "error: $BIN not built (cmake --build $BUILD_DIR --target test_scenarios)" >&2
  exit 2
fi
if (( JOBS > TOTAL )); then JOBS=$TOTAL; fi

log_dir=$(mktemp -d)
trap 'rm -rf "$log_dir"' EXIT

echo "sweeping scenario corpus over seeds [$FIRST, $((FIRST + TOTAL - 1))]" \
     "across $JOBS workers (PLWG_SIM_THREADS=${PLWG_SIM_THREADS:-1})"
start_ts=$SECONDS
pids=()
starts=()
counts=()
base=$(( TOTAL / JOBS ))
rem=$(( TOTAL % JOBS ))
next=$FIRST
for (( w = 0; w < JOBS; w++ )); do
  count=$(( base + (w < rem ? 1 : 0) ))
  (( count == 0 )) && continue
  PLWG_SWEEP_FIRST=$next PLWG_SWEEP_SEEDS=$count \
    "$BIN" --gtest_filter='*EveryCorpusFileIsOracleCleanAcrossSeeds*' \
    > "$log_dir/shard-$w.log" 2>&1 &
  pids+=($!)
  starts+=($next)
  counts+=($count)
  next=$(( next + count ))
done

failed=0
for i in "${!pids[@]}"; do
  if wait "${pids[$i]}"; then
    echo "  shard $i: seeds ${starts[$i]}..$(( starts[$i] + counts[$i] - 1 )) clean"
  else
    failed=1
    echo "  shard $i: seeds ${starts[$i]}..$(( starts[$i] + counts[$i] - 1 )) FAILED"
    sed 's/^/    /' "$log_dir/shard-$i.log"
  fi
done

echo "swept $TOTAL seeds over the corpus in $(( SECONDS - start_ts ))s"
exit $failed
