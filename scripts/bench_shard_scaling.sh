#!/usr/bin/env bash
# Shard-scaling benchmark run.
#
# Builds the Release tree, runs bench_shard_scaling (threads x segments
# sweep on the steady-traffic WAN workload), and refreshes the "current"
# run inside BENCH_shard_scaling.json. The checked-in "pre_refactor_baseline"
# block — the single-threaded engine before the sharded refactor, measured
# on the same workload at 8 segments — is preserved for comparison.
#
# Note: measured speedup only materializes on hosts with as many cores as
# engine threads; on smaller hosts the per-run "parallelism_bound" field
# (sum/max of per-shard event counts) is the honest scaling signal.
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR=${BUILD_DIR:-build}
OUT_JSON=BENCH_shard_scaling.json

cmake -B "$BUILD_DIR" -S . -DCMAKE_BUILD_TYPE=Release
cmake --build "$BUILD_DIR" -j "$(nproc)" --target bench_shard_scaling

tmp_json=$(mktemp)
trap 'rm -f "$tmp_json"' EXIT
"$BUILD_DIR/bench/bench_shard_scaling" > "$tmp_json"

python3 - "$tmp_json" "$OUT_JSON" <<'EOF'
import json, sys

current = json.load(open(sys.argv[1]))
out_path = sys.argv[2]
try:
    doc = json.load(open(out_path))
except (FileNotFoundError, json.JSONDecodeError):
    doc = {}
doc.setdefault("pre_refactor_baseline", {
    "engine": "single-threaded sim::Simulator, global WAN queue",
    "workload": "8 segments x 3 processes, one LWG per segment, "
                "64B sends every 2000 us from every process",
    "sim_s": 5, "wall_s": 0.357, "wall_s_per_sim_s": 0.0714,
    "deliveries": 180000, "deliveries_per_wall_s": 504202,
})
doc["current"] = current
json.dump(doc, open(out_path, "w"), indent=1)
print(f"wrote {out_path}")
for run in current.get("runs", []):
    print(f"  segments={run['segments']} threads={run['threads']}: "
          f"{run['wall_s']:.3f} wall-s, "
          f"{run['speedup_vs_1_thread']:.2f}x measured, "
          f"bound {run['parallelism_bound']:.2f}x")
EOF
