#!/usr/bin/env bash
# Quick hot-path benchmark smoke run.
#
# Builds the Release tree, runs bench_hotpath with a short min-time, and
# refreshes the "current" run inside BENCH_hotpath.json (the checked-in
# "baseline" block — the pre-overhaul numbers — is preserved for
# comparison). Pass extra benchmark flags after --, e.g.
#   scripts/bench_smoke.sh -- --benchmark_filter=Codec
#
# Note: this google-benchmark build wants a plain number for
# --benchmark_min_time (no "s" suffix).
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR=${BUILD_DIR:-build}
MIN_TIME=${MIN_TIME:-0.05}
OUT_JSON=BENCH_hotpath.json

extra_args=()
if [[ "${1:-}" == "--" ]]; then
  shift
  extra_args=("$@")
fi

cmake -B "$BUILD_DIR" -S . -DCMAKE_BUILD_TYPE=Release
cmake --build "$BUILD_DIR" -j "$(nproc)" --target bench_hotpath

tmp_json=$(mktemp)
trap 'rm -f "$tmp_json"' EXIT
"$BUILD_DIR/bench/bench_hotpath" \
  --benchmark_min_time="$MIN_TIME" \
  --benchmark_out="$tmp_json" \
  --benchmark_out_format=json \
  "${extra_args[@]}"

python3 - "$tmp_json" "$OUT_JSON" <<'EOF'
import json, sys

current = json.load(open(sys.argv[1]))
out_path = sys.argv[2]
try:
    doc = json.load(open(out_path))
except (FileNotFoundError, json.JSONDecodeError):
    doc = {}
doc.setdefault("baseline", None)
doc["current"] = current

def rates(run):
    """benchmark name -> items/bytes per second (or 1/time as fallback)."""
    out = {}
    for b in (run or {}).get("benchmarks", []):
        rate = b.get("items_per_second") or b.get("bytes_per_second")
        if rate is None and b.get("real_time"):
            rate = 1e9 / b["real_time"]  # times are ns
        out[b["name"]] = rate
    return out

base, cur = rates(doc.get("baseline")), rates(doc.get("current"))
doc["speedup_vs_baseline"] = {
    name: round(cur[name] / base[name], 3)
    for name in cur
    if base.get(name) and cur.get(name)
}
json.dump(doc, open(out_path, "w"), indent=1)
print(f"wrote {out_path}")
for name, s in sorted(doc["speedup_vs_baseline"].items()):
    print(f"  {s:7.2f}x  {name}")
EOF
