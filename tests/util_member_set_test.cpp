#include "util/member_set.hpp"

#include <gtest/gtest.h>

namespace plwg {
namespace {

MemberSet make(std::initializer_list<std::uint32_t> ids) {
  MemberSet set;
  for (auto id : ids) set.insert(ProcessId{id});
  return set;
}

TEST(MemberSet, InsertEraseContains) {
  MemberSet s;
  EXPECT_TRUE(s.empty());
  EXPECT_TRUE(s.insert(ProcessId{3}));
  EXPECT_FALSE(s.insert(ProcessId{3}));
  EXPECT_TRUE(s.insert(ProcessId{1}));
  EXPECT_EQ(s.size(), 2u);
  EXPECT_TRUE(s.contains(ProcessId{1}));
  EXPECT_FALSE(s.contains(ProcessId{2}));
  EXPECT_TRUE(s.erase(ProcessId{3}));
  EXPECT_FALSE(s.erase(ProcessId{3}));
  EXPECT_EQ(s.size(), 1u);
}

TEST(MemberSet, KeepsMembersSortedUnique) {
  MemberSet s({ProcessId{5}, ProcessId{1}, ProcessId{5}, ProcessId{3}});
  ASSERT_EQ(s.size(), 3u);
  EXPECT_EQ(s.members()[0], ProcessId{1});
  EXPECT_EQ(s.members()[1], ProcessId{3});
  EXPECT_EQ(s.members()[2], ProcessId{5});
  EXPECT_EQ(s.min_member(), ProcessId{1});
}

TEST(MemberSet, SetAlgebra) {
  const MemberSet a = make({1, 2, 3, 4});
  const MemberSet b = make({3, 4, 5});
  EXPECT_EQ(a.set_union(b), make({1, 2, 3, 4, 5}));
  EXPECT_EQ(a.set_intersection(b), make({3, 4}));
  EXPECT_EQ(a.set_difference(b), make({1, 2}));
  EXPECT_EQ(a.intersection_size(b), 2u);
  EXPECT_TRUE(make({3, 4}).is_subset_of(a));
  EXPECT_FALSE(b.is_subset_of(a));
  EXPECT_TRUE(MemberSet{}.is_subset_of(a));
}

TEST(MemberSet, MinorityPredicateMatchesPaperDefinition) {
  // minority: g1 ⊆ g2 and |g1| <= |g2| / k_m  (k_m = 4)
  const MemberSet g2 = make({1, 2, 3, 4, 5, 6, 7, 8});
  EXPECT_TRUE(make({1, 2}).is_minority_of(g2, 4.0));    // 2 <= 8/4
  EXPECT_FALSE(make({1, 2, 3}).is_minority_of(g2, 4.0)); // 3 > 2
  EXPECT_FALSE(make({9}).is_minority_of(g2, 4.0));       // not a subset
}

TEST(MemberSet, ClosenessPredicateMatchesPaperDefinition) {
  // closeness: g1 ⊆ g2 and |g2| - |g1| <= |g2| / k_c  (k_c = 4)
  const MemberSet g2 = make({1, 2, 3, 4, 5, 6, 7, 8});
  EXPECT_TRUE(make({1, 2, 3, 4, 5, 6}).is_close_to(g2, 4.0));   // gap 2 <= 2
  EXPECT_FALSE(make({1, 2, 3, 4, 5}).is_close_to(g2, 4.0));     // gap 3 > 2
  EXPECT_TRUE(g2.is_close_to(g2, 4.0));                          // gap 0
}

TEST(MemberSet, EncodeDecodeRoundTrip) {
  const MemberSet original = make({10, 20, 30});
  Encoder enc;
  original.encode(enc);
  Decoder dec(enc.bytes());
  EXPECT_EQ(MemberSet::decode(dec), original);
  EXPECT_TRUE(dec.done());
}

TEST(MemberSet, StreamFormat) {
  EXPECT_EQ(make({1, 2}).to_string(), "{1,2}");
  EXPECT_EQ(MemberSet{}.to_string(), "{}");
}

}  // namespace
}  // namespace plwg
