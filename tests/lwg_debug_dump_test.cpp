// The operational debug dump: it must reflect phases, views, switches and
// forward pointers truthfully (and never crash, whatever the state).
#include <gtest/gtest.h>

#include "lwg_fixture.hpp"

namespace plwg::lwg::testing {
namespace {

class LwgDebugDumpTest : public LwgFixture {};

TEST_F(LwgDebugDumpTest, EmptyServiceDumps) {
  harness::WorldConfig cfg;
  cfg.num_processes = 1;
  build(cfg);
  const std::string dump = lwg(0).debug_dump();
  EXPECT_NE(dump.find("LwgService p0"), std::string::npos);
  EXPECT_NE(dump.find("mode=dynamic"), std::string::npos);
  EXPECT_NE(dump.find("member of 0 hwg"), std::string::npos);
}

TEST_F(LwgDebugDumpTest, ActiveGroupAppearsWithViewAndPhase) {
  harness::WorldConfig cfg;
  cfg.num_processes = 2;
  build(cfg);
  form_lwg(LwgId{7}, {0, 1});
  const std::string dump = lwg(0).debug_dump();
  EXPECT_NE(dump.find("lwg 7"), std::string::npos);
  EXPECT_NE(dump.find("phase=active"), std::string::npos);
  EXPECT_NE(dump.find("view="), std::string::npos);
  EXPECT_NE(dump.find("member of 1 hwg"), std::string::npos);
}

TEST_F(LwgDebugDumpTest, ResolvingPhaseVisibleDuringJoin) {
  harness::WorldConfig cfg;
  cfg.num_processes = 2;
  build(cfg);
  lwg(0).join(LwgId{7}, user(0));  // no sim time has passed: still resolving
  const std::string dump = lwg(0).debug_dump();
  EXPECT_NE(dump.find("phase=resolving"), std::string::npos);
}

TEST_F(LwgDebugDumpTest, ForwardPointerShowsUpAfterSwitch) {
  harness::WorldConfig cfg;
  cfg.num_processes = 8;
  cfg.lwg.policy_period_us = 2'000'000;
  cfg.lwg.shrink_delay_us = 60'000'000;  // keep the old HWG membership alive
  build(cfg);
  form_lwg(LwgId{1}, {0, 1, 2, 3, 4, 5, 6, 7});
  form_lwg(LwgId{2}, {0, 1});
  ASSERT_TRUE(run_until(
      [&] {
        const auto h1 = lwg(0).hwg_of(LwgId{1});
        const auto h2 = lwg(0).hwg_of(LwgId{2});
        return h1 && h2 && *h1 != *h2;
      },
      30'000'000));
  // A member of the old HWG that is not in LWG 2 holds the forward pointer.
  const std::string dump = lwg(5).debug_dump();
  EXPECT_NE(dump.find("fwd(lwg2->"), std::string::npos) << dump;
}

}  // namespace
}  // namespace plwg::lwg::testing
