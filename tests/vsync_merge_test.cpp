// Merge-protocol robustness: merges under traffic, repeated splits during a
// merge, voluntary leavers being forgotten by the probe machinery, and
// genealogy integrity of merged views.
#include <gtest/gtest.h>

#include <algorithm>

#include "vsync_fixture.hpp"

namespace plwg::vsync::testing {
namespace {

class VsyncMergeTest : public VsyncFixture {
 protected:
  HwgId form_group(std::size_t n) {
    build(n);
    const HwgId gid = host(0).allocate_group_id();
    host(0).create_group(gid, user(0));
    std::vector<std::size_t> all{0};
    MemberSet members{pid(0)};
    for (std::size_t i = 1; i < n; ++i) {
      host(i).join_group(gid, MemberSet{pid(0)}, user(i));
      all.push_back(i);
      members.insert(pid(i));
    }
    EXPECT_TRUE(
        run_until([&] { return converged(gid, all, members); }, 15'000'000));
    return gid;
  }

  void split2(const HwgId gid) {
    net_->set_partitions({{node(0), node(1)}, {node(2), node(3)}});
    ASSERT_TRUE(run_until(
        [&] {
          return converged(gid, {0, 1}, members_of({0, 1})) &&
                 converged(gid, {2, 3}, members_of({2, 3}));
        },
        20'000'000));
  }
};

TEST_F(VsyncMergeTest, MergeUnderContinuousTraffic) {
  const HwgId gid = form_group(4);
  split2(gid);
  net_->heal();
  std::uint8_t tag = 0;
  for (int i = 0; i < 30; ++i) {
    host(0).send(gid, payload(tag++));
    host(2).send(gid, payload(tag++));
    run_for(200'000);
  }
  ASSERT_TRUE(run_until(
      [&] { return converged(gid, {0, 1, 2, 3}, members_of({0, 1, 2, 3})); },
      30'000'000));
  // Post-merge, everyone agrees on the merged-epoch deliveries.
  run_for(3'000'000);
  const auto& a = user(0).log(gid).epochs.back().delivered;
  const auto& b = user(2).log(gid).epochs.back().delivered;
  EXPECT_EQ(a, b);
}

TEST_F(VsyncMergeTest, ResplitDuringMergeRecovers) {
  const HwgId gid = form_group(4);
  split2(gid);
  net_->heal();
  run_for(1'200'000);  // probes fired, a merge is likely mid-flight
  net_->set_partitions({{node(0), node(1)}, {node(2), node(3)}});
  // Both sides must re-form working 2-member views whatever state the
  // aborted merge left them in.
  ASSERT_TRUE(run_until(
      [&] {
        return converged(gid, {0, 1}, members_of({0, 1})) &&
               converged(gid, {2, 3}, members_of({2, 3}));
      },
      40'000'000));
  // And a final heal still converges.
  net_->heal();
  ASSERT_TRUE(run_until(
      [&] { return converged(gid, {0, 1, 2, 3}, members_of({0, 1, 2, 3})); },
      40'000'000));
}

TEST_F(VsyncMergeTest, VoluntaryLeaverIsForgottenByProbes) {
  const HwgId gid = form_group(3);
  host(2).leave_group(gid);
  ASSERT_TRUE(run_until(
      [&] { return converged(gid, {0, 1}, members_of({0, 1})); }, 10'000'000));
  run_for(1'000'000);  // let the departure propagate
  // The survivors' known-peer sets no longer include the leaver, so merge
  // probes will not chase it forever.
  EXPECT_FALSE(host(0).endpoint(gid)->known_peers().contains(pid(2)));
  EXPECT_FALSE(host(1).endpoint(gid)->known_peers().contains(pid(2)));
}

TEST_F(VsyncMergeTest, CrashedMemberStaysProbeable) {
  // A crash is indistinguishable from a partition: the excluded member must
  // REMAIN in known_peers so a later "heal" (here: none) would reconnect it.
  const HwgId gid = form_group(3);
  net_->crash(node(2));
  ASSERT_TRUE(run_until(
      [&] { return converged(gid, {0, 1}, members_of({0, 1})); }, 15'000'000));
  EXPECT_TRUE(host(0).endpoint(gid)->known_peers().contains(pid(2)));
}

TEST_F(VsyncMergeTest, MergedViewGenealogyListsBothConstituents) {
  const HwgId gid = form_group(4);
  const ViewId pre_split = host(0).view_of(gid)->id;
  split2(gid);
  const ViewId left = host(0).view_of(gid)->id;
  const ViewId right = host(2).view_of(gid)->id;
  net_->heal();
  ASSERT_TRUE(run_until(
      [&] { return converged(gid, {0, 1, 2, 3}, members_of({0, 1, 2, 3})); },
      30'000'000));
  const View* merged = host(1).view_of(gid);
  ASSERT_NE(merged, nullptr);
  const auto& preds = merged->predecessors;
  EXPECT_NE(std::find(preds.begin(), preds.end(), left), preds.end());
  EXPECT_NE(std::find(preds.begin(), preds.end(), right), preds.end());
  EXPECT_EQ(std::find(preds.begin(), preds.end(), pre_split), preds.end());
}

TEST_F(VsyncMergeTest, UnevenSplitMerges) {
  const HwgId gid = form_group(5);
  net_->set_partitions({{node(0)}, {node(1), node(2), node(3), node(4)}});
  ASSERT_TRUE(run_until(
      [&] {
        return converged(gid, {0}, members_of({0})) &&
               converged(gid, {1, 2, 3, 4}, members_of({1, 2, 3, 4}));
      },
      20'000'000));
  net_->heal();
  ASSERT_TRUE(run_until(
      [&] {
        return converged(gid, {0, 1, 2, 3, 4},
                         members_of({0, 1, 2, 3, 4}));
      },
      30'000'000));
}

TEST_F(VsyncMergeTest, MessagesSentInPartitionNeverCrossIt) {
  const HwgId gid = form_group(4);
  split2(gid);
  const auto base = user(3).total_delivered(gid);
  host(0).send(gid, payload(0xEE));
  run_for(3'000'000);
  EXPECT_EQ(user(3).total_delivered(gid), base);
  // Even after the merge, the partition-era message does not appear on the
  // other side (it was delivered inside the old view).
  net_->heal();
  ASSERT_TRUE(run_until(
      [&] { return converged(gid, {0, 1, 2, 3}, members_of({0, 1, 2, 3})); },
      30'000'000));
  run_for(2'000'000);
  for (const auto& e : user(3).log(gid).epochs) {
    for (const auto& [src, data] : e.delivered) {
      EXPECT_NE(data[0], 0xEE);
    }
  }
}

}  // namespace
}  // namespace plwg::vsync::testing
