// Scenario-DSL parsing: malformed, unknown-key, and out-of-range documents
// are rejected with errors naming the problem; well-formed documents parse
// into the expected model; every corpus file under scenarios/ loads, the
// corpus covers the required fault families, and a scenario replays
// deterministically (same seed -> byte-identical trace digest).
#include <gtest/gtest.h>

#include <set>
#include <string>

#include "harness/scenario.hpp"

namespace plwg::harness::testing {
namespace {

/// Expect parse_scenario to throw, with `needle` somewhere in the message.
void expect_rejected(const std::string& json, const std::string& needle) {
  try {
    (void)parse_scenario(json);
    FAIL() << "accepted invalid scenario: " << json;
  } catch (const ScenarioError& e) {
    EXPECT_NE(std::string(e.what()).find(needle), std::string::npos)
        << "error \"" << e.what() << "\" does not mention \"" << needle
        << "\"";
  }
}

constexpr const char* kMinimal = R"({
  "name": "t",
  "events": [ { "kind": "crash", "at_ms": 1000, "node": 1 } ]
})";

TEST(ScenarioDsl, ParsesMinimalDocumentWithDefaults) {
  const Scenario s = parse_scenario(kMinimal);
  EXPECT_EQ(s.name, "t");
  EXPECT_EQ(s.processes, 6u);
  EXPECT_EQ(s.name_servers, 2u);
  EXPECT_TRUE(s.segments.empty());
  EXPECT_EQ(s.run_us, 40'000'000);
  ASSERT_EQ(s.events.size(), 1u);
  EXPECT_EQ(s.events[0].kind, ScenarioEvent::Kind::kCrash);
  EXPECT_EQ(s.events[0].at_us, 1'000'000);  // ms -> us
  EXPECT_EQ(s.events[0].node, 1u);
  EXPECT_EQ(s.events[0].down_us, 0);  // permanent by default
}

TEST(ScenarioDsl, ParsesEveryEventKind) {
  const Scenario s = parse_scenario(R"({
    "name": "all-kinds",
    "description": "one of each",
    "processes": 6,
    "net": {"drop_probability": 0.01, "jitter_ms": 2},
    "events": [
      { "kind": "partition", "at_ms": 1, "islands": [[0,1],[2,3]],
        "server_islands": [0, 1], "duration_ms": 5 },
      { "kind": "rolling_partition", "at_ms": 2, "islands": [[0,1,2],[3,4,5]],
        "steps": 3, "step_ms": 4, "rotate_by": 2 },
      { "kind": "link_down", "at_ms": 3, "from": 0, "to": 1 },
      { "kind": "link_lossy", "at_ms": 4, "from": 1, "to": 2,
        "drop_probability": 0.5, "jitter_ms": 3, "symmetric": true },
      { "kind": "flap", "at_ms": 5, "from": 2, "to": 3, "period_ms": 10,
        "count": 4 },
      { "kind": "crash", "at_ms": 6, "node": 4, "down_ms": 7 },
      { "kind": "churn_storm", "at_ms": 7, "nodes": [1,2], "cycles": 2,
        "down_ms": 8, "gap_ms": 9 }
    ]
  })");
  ASSERT_EQ(s.events.size(), 7u);
  EXPECT_DOUBLE_EQ(s.net_drop_probability, 0.01);
  EXPECT_EQ(s.net_jitter_us, 2'000);
  EXPECT_EQ(s.events[0].duration_us, 5'000);
  EXPECT_EQ(s.events[1].steps, 3u);
  EXPECT_EQ(s.events[1].rotate_by, 2u);
  EXPECT_FALSE(s.events[2].symmetric);  // one-way by default
  EXPECT_EQ(s.events[2].duration_us, 0);  // open until quiesce
  EXPECT_TRUE(s.events[3].symmetric);
  EXPECT_DOUBLE_EQ(s.events[3].drop_probability, 0.5);
  EXPECT_EQ(s.events[4].down_us, 5'000);  // default: period / 2
  EXPECT_EQ(s.events[6].gap_us, 9'000);
}

TEST(ScenarioDsl, RejectsMalformedJsonWithPosition) {
  expect_rejected(R"({"name": "x", "events": )", "malformed JSON");
  expect_rejected("{\"name\": \"x\"\n  \"events\": []}", "line 2");
  expect_rejected(R"({"name": "x", "name": "y", "events": []})",
                  "duplicate key");
}

TEST(ScenarioDsl, RejectsUnknownKeysNamingThem) {
  expect_rejected(R"({"name": "x", "wibble": 1,
                      "events": [{"kind":"crash","at_ms":1,"node":0}]})",
                  "unknown key \"wibble\"");
  expect_rejected(R"({"name": "x", "events": [
                      {"kind":"crash","at_ms":1,"node":0,"colour":"red"}]})",
                  "unknown key \"colour\"");
  expect_rejected(R"({"name": "x", "events": [
                      {"kind":"meteor","at_ms":1}]})",
                  "unknown event kind \"meteor\"");
  // Keys legal for one kind are still unknown for another.
  expect_rejected(R"({"name": "x", "events": [
                      {"kind":"link_down","at_ms":1,"from":0,"to":1,
                       "drop_probability":0.5}]})",
                  "unknown key \"drop_probability\"");
}

TEST(ScenarioDsl, RejectsMissingRequiredKeys) {
  expect_rejected(R"({"events": [{"kind":"crash","at_ms":1,"node":0}]})",
                  "missing required key \"name\"");
  expect_rejected(R"({"name": "x"})", "missing required key \"events\"");
  expect_rejected(R"({"name": "x", "events": []})", "non-empty array");
  expect_rejected(R"({"name": "x", "events": [{"kind":"crash","node":0}]})",
                  "missing required key \"at_ms\"");
  expect_rejected(R"({"name": "x", "events": [{"kind":"flap","at_ms":1,
                      "from":0,"to":1,"period_ms":10}]})",
                  "missing required key \"count\"");
}

TEST(ScenarioDsl, RejectsOutOfRangeValues) {
  expect_rejected(R"({"name": "x", "processes": 1,
                      "events": [{"kind":"crash","at_ms":1,"node":0}]})",
                  "\"processes\" must be in [2, 64]");
  expect_rejected(R"({"name": "x", "events": [
                      {"kind":"crash","at_ms":1,"node":6}]})",
                  "out of range");
  expect_rejected(R"({"name": "x", "events": [
                      {"kind":"crash","at_ms":-5,"node":0}]})",
                  "\"at_ms\"");
  expect_rejected(R"({"name": "x", "events": [
                      {"kind":"link_lossy","at_ms":1,"from":0,"to":1,
                       "drop_probability":1.5}]})",
                  "must be in [0, 1]");
  expect_rejected(R"({"name": "x", "events": [
                      {"kind":"link_down","at_ms":1,"from":2,"to":2}]})",
                  "must differ");
  expect_rejected(R"({"name": "x", "events": [
                      {"kind":"crash","at_ms":1,"node":0.5}]})",
                  "non-negative integer");
  expect_rejected(R"({"name": "x", "events": [
                      {"kind":"flap","at_ms":1,"from":0,"to":1,
                       "period_ms":10,"down_ms":10,"count":1}]})",
                  "shorter than period_ms");
}

TEST(ScenarioDsl, RejectsBadIslandsAndSegments) {
  expect_rejected(R"({"name": "x", "events": [
                      {"kind":"partition","at_ms":1,
                       "islands":[[0,1],[1,2]]}]})",
                  "more than one island");
  expect_rejected(R"({"name": "x", "events": [
                      {"kind":"partition","at_ms":1,"islands":[]}]})",
                  "non-empty");
  expect_rejected(R"({"name": "x", "events": [
                      {"kind":"partition","at_ms":1,"islands":[[0],[1]],
                       "server_islands":[5]}]})",
                  "out of range");
  expect_rejected(R"({"name": "x", "events": [
                      {"kind":"rolling_partition","at_ms":1,
                       "islands":[[0,1,2,3,4,5]],"steps":2,"step_ms":5}]})",
                  "at least two islands");
  expect_rejected(R"({"name": "x", "processes": 4, "segments": [[0,1],[2]],
                      "events": [{"kind":"crash","at_ms":1,"node":0}]})",
                  "process 3 is on no segment");
  expect_rejected(R"({"name": "x", "processes": 4,
                      "segments": [[0,1],[1,2,3]],
                      "events": [{"kind":"crash","at_ms":1,"node":0}]})",
                  "more than one segment");
  expect_rejected(R"({"name": "x", "events": [
                      {"kind":"churn_storm","at_ms":1,
                       "nodes":[0,1,2,3,4,5],"cycles":1,"down_ms":5,
                       "gap_ms":1}]})",
                  "at least one process out of the storm");
  expect_rejected(R"({"name": "x", "events": [
                      {"kind":"churn_storm","at_ms":1,"nodes":[1,1],
                       "cycles":1,"down_ms":5,"gap_ms":1}]})",
                  "must not repeat");
}

TEST(ScenarioDsl, CorpusLoadsAndCoversTheFaultFamilies) {
  const std::vector<std::string> files = list_scenario_files();
  ASSERT_GE(files.size(), 5u) << "corpus missing under " << scenario_dir();
  std::set<std::string> names;
  std::set<ScenarioEvent::Kind> kinds;
  bool crash_during_partition = false;
  for (const std::string& path : files) {
    SCOPED_TRACE(path);
    const Scenario s = load_scenario_file(path);
    EXPECT_FALSE(s.name.empty());
    EXPECT_FALSE(s.description.empty()) << "corpus entries document intent";
    EXPECT_TRUE(names.insert(s.name).second) << "duplicate scenario name";
    bool has_partition = false, has_crash = false;
    for (const ScenarioEvent& ev : s.events) {
      kinds.insert(ev.kind);
      has_partition |= ev.kind == ScenarioEvent::Kind::kPartition ||
                       ev.kind == ScenarioEvent::Kind::kRollingPartition;
      has_crash |= ev.kind == ScenarioEvent::Kind::kCrash ||
                   ev.kind == ScenarioEvent::Kind::kChurnStorm;
    }
    crash_during_partition |= has_partition && has_crash;
  }
  // The five families the corpus must cover (ISSUE acceptance criteria).
  EXPECT_TRUE(kinds.contains(ScenarioEvent::Kind::kLinkDown))
      << "no asymmetric-link scenario";
  EXPECT_TRUE(kinds.contains(ScenarioEvent::Kind::kFlap))
      << "no flapping scenario";
  EXPECT_TRUE(kinds.contains(ScenarioEvent::Kind::kRollingPartition))
      << "no rolling-partition scenario";
  EXPECT_TRUE(kinds.contains(ScenarioEvent::Kind::kChurnStorm))
      << "no churn-storm scenario";
  EXPECT_TRUE(crash_during_partition)
      << "no crash-during-partition scenario";
}

TEST(ScenarioDsl, ReplayIsDeterministic) {
  // A fast composite scenario touching every fault primitive; two runs with
  // the same seed must agree byte-for-byte on the trace digest.
  const Scenario s = parse_scenario(R"({
    "name": "replay-witness",
    "processes": 4,
    "run_ms": 6000,
    "net": { "drop_probability": 0.02, "jitter_ms": 1 },
    "events": [
      { "kind": "partition", "at_ms": 500, "islands": [[0,1],[2,3]],
        "duration_ms": 1500 },
      { "kind": "link_down", "at_ms": 1000, "from": 0, "to": 2,
        "duration_ms": 2000 },
      { "kind": "flap", "at_ms": 2500, "from": 1, "to": 3, "period_ms": 400,
        "down_ms": 150, "count": 3, "symmetric": true },
      { "kind": "crash", "at_ms": 3000, "node": 2, "down_ms": 1200 }
    ]
  })");
  const ScenarioResult a = run_scenario(s, 42);
  const ScenarioResult b = run_scenario(s, 42);
  EXPECT_EQ(a.digest, b.digest);
  EXPECT_EQ(a.availability_pct, b.availability_pct);
  EXPECT_EQ(a.partitions, b.partitions);
  EXPECT_EQ(a.link_faults, b.link_faults);
  EXPECT_EQ(a.crashes, b.crashes);
  EXPECT_TRUE(a.converged) << a.failure;
  EXPECT_TRUE(a.oracle_clean) << a.failure;
  // A different seed must explore a different trace.
  const ScenarioResult c = run_scenario(s, 43);
  EXPECT_NE(a.digest, c.digest);
}

}  // namespace
}  // namespace plwg::harness::testing
