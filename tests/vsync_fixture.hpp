// Shared test fixture for the heavy-weight group layer: N processes with
// NodeRuntime + VsyncHost on one simulated network, and a recording
// GroupUser that logs view installations and deliveries so tests can check
// the virtual-synchrony guarantees.
#pragma once

#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "oracle/oracle.hpp"
#include "sim/network.hpp"
#include "sim/simulator.hpp"
#include "transport/node_runtime.hpp"
#include "vsync/vsync_host.hpp"

namespace plwg::vsync::testing {

/// Records everything the vsync layer tells a user, per group.
class RecordingUser : public GroupUser {
 public:
  struct Epoch {
    View view;
    std::vector<std::pair<ProcessId, std::vector<std::uint8_t>>> delivered;
  };
  struct GroupLog {
    // delivered[0] holds messages delivered before the first view (none,
    // normally); epoch i+1 corresponds to views[i].
    std::vector<Epoch> epochs;
    int stops = 0;
  };

  explicit RecordingUser(VsyncHost* host = nullptr) : host_(host) {}
  void attach(VsyncHost& host) { host_ = &host; }

  void on_view(HwgId gid, const View& view) override {
    logs_[gid].epochs.push_back(Epoch{view, {}});
  }
  void on_data(HwgId gid, ProcessId src,
               std::span<const std::uint8_t> data) override {
    auto& log = logs_[gid];
    if (log.epochs.empty()) log.epochs.push_back(Epoch{});
    log.epochs.back().delivered.emplace_back(
        src, std::vector<std::uint8_t>(data.begin(), data.end()));
  }
  void on_stop(HwgId gid) override {
    logs_[gid].stops++;
    if (host_ != nullptr) host_->stop_ok(gid);  // immediate StopOk
  }

  [[nodiscard]] const GroupLog& log(HwgId gid) { return logs_[gid]; }
  [[nodiscard]] const View* last_view(HwgId gid) {
    auto& epochs = logs_[gid].epochs;
    for (auto it = epochs.rbegin(); it != epochs.rend(); ++it) {
      if (it->view.id.valid()) return &it->view;
    }
    return nullptr;
  }
  [[nodiscard]] std::size_t total_delivered(HwgId gid) {
    std::size_t n = 0;
    for (const auto& e : logs_[gid].epochs) n += e.delivered.size();
    return n;
  }

 private:
  VsyncHost* host_;
  std::map<HwgId, GroupLog> logs_;
};

class VsyncFixture : public ::testing::Test {
 protected:
  void build(std::size_t n, sim::NetworkConfig net_cfg = {},
             VsyncConfig vs_cfg = {}) {
    net_ = std::make_unique<sim::Network>(sim_, net_cfg);
#ifndef PLWG_ORACLE_DISABLED
    oracle_ = std::make_unique<oracle::ProtocolOracle>(
        [this] { return sim_.now(); });
#endif
    for (std::size_t i = 0; i < n; ++i) {
      nodes_.push_back(std::make_unique<transport::NodeRuntime>(*net_));
      hosts_.push_back(std::make_unique<VsyncHost>(*nodes_[i], vs_cfg));
      hosts_[i]->set_observer(oracle_.get());
      users_.push_back(std::make_unique<RecordingUser>(hosts_[i].get()));
    }
  }

  void TearDown() override {
    if (oracle_) {
      EXPECT_TRUE(oracle_->clean()) << oracle_->report_json();
    }
  }

  VsyncHost& host(std::size_t i) { return *hosts_[i]; }
  RecordingUser& user(std::size_t i) { return *users_[i]; }
  ProcessId pid(std::size_t i) { return nodes_[i]->process_id(); }
  NodeId node(std::size_t i) { return nodes_[i]->id(); }

  void run_for(Duration us) { sim_.run_until(sim_.now() + us); }

  bool run_until(const std::function<bool()>& pred, Duration timeout_us) {
    const Time deadline = sim_.now() + timeout_us;
    while (sim_.now() < deadline) {
      if (pred()) return true;
      sim_.run_until(std::min(deadline, sim_.now() + 10'000));
    }
    return pred();
  }

  /// All listed processes have installed the same view with `members`.
  bool converged(HwgId gid, const std::vector<std::size_t>& indexes,
                 const MemberSet& members) {
    const View* reference = nullptr;
    for (std::size_t i : indexes) {
      const View* v = host(i).view_of(gid);
      if (v == nullptr || v->members != members) return false;
      if (reference == nullptr) {
        reference = v;
      } else if (!(v->id == reference->id)) {
        return false;
      }
    }
    return true;
  }

  MemberSet members_of(std::initializer_list<std::size_t> indexes) {
    MemberSet set;
    for (std::size_t i : indexes) set.insert(pid(i));
    return set;
  }

  static std::vector<std::uint8_t> payload(std::uint8_t tag,
                                           std::size_t size = 8) {
    std::vector<std::uint8_t> data(size, 0);
    data[0] = tag;
    return data;
  }

  sim::Simulator sim_;
  std::unique_ptr<sim::Network> net_;
  std::unique_ptr<oracle::ProtocolOracle> oracle_;
  std::vector<std::unique_ptr<transport::NodeRuntime>> nodes_;
  std::vector<std::unique_ptr<VsyncHost>> hosts_;
  std::vector<std::unique_ptr<RecordingUser>> users_;
};

}  // namespace plwg::vsync::testing
