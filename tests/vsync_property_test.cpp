// Property-based testing of the heavy-weight group layer: randomized
// schedules of traffic, crashes, partitions and heals, checked against the
// virtual-synchrony invariant — any two processes that install the same two
// consecutive views deliver the same messages, in the same order, between
// them — plus eventual convergence after the final heal.
#include <gtest/gtest.h>

#include <map>

#include "util/rng.hpp"
#include "vsync_fixture.hpp"

namespace plwg::vsync::testing {
namespace {

class VsyncPropertyTest : public VsyncFixture,
                          public ::testing::WithParamInterface<std::uint64_t> {
 protected:
  /// Checks the virtual-synchrony invariant over every pair of processes.
  void check_virtual_synchrony(HwgId gid, std::size_t n) {
    struct Episode {
      ViewId from, to;
      const std::vector<std::pair<ProcessId, std::vector<std::uint8_t>>>*
          delivered;
    };
    std::vector<std::vector<Episode>> episodes(n);
    for (std::size_t i = 0; i < n; ++i) {
      const auto& epochs = user(i).log(gid).epochs;
      for (std::size_t e = 0; e + 1 < epochs.size(); ++e) {
        if (!epochs[e].view.id.valid() || !epochs[e + 1].view.id.valid()) {
          continue;
        }
        episodes[i].push_back(Episode{epochs[e].view.id, epochs[e + 1].view.id,
                                      &epochs[e + 1].delivered});
      }
    }
    // Messages delivered *between* v and the next view live in the epoch of
    // v itself (delivered after installing v, before the next). Re-derive:
    // epoch e's deliveries happen in view e. For the invariant we compare,
    // for each pair installing the same (v_e, v_{e+1}), the deliveries
    // recorded in epoch e.
    for (std::size_t i = 0; i < n; ++i) {
      const auto& ei = user(i).log(gid).epochs;
      for (std::size_t j = i + 1; j < n; ++j) {
        const auto& ej = user(j).log(gid).epochs;
        for (std::size_t a = 0; a + 1 < ei.size(); ++a) {
          for (std::size_t b = 0; b + 1 < ej.size(); ++b) {
            if (!(ei[a].view.id == ej[b].view.id)) continue;
            if (!(ei[a + 1].view.id == ej[b + 1].view.id)) continue;
            EXPECT_EQ(ei[a].delivered, ej[b].delivered)
                << "procs " << i << "," << j << " views "
                << ei[a].view.id.to_string() << " -> "
                << ei[a + 1].view.id.to_string();
          }
        }
      }
    }
  }
};

TEST_P(VsyncPropertyTest, RandomChurnPreservesVirtualSynchrony) {
  Rng rng(GetParam());
  constexpr std::size_t kN = 5;
  sim::NetworkConfig net_cfg;
  net_cfg.seed = GetParam() ^ 0x5eedULL;
  build(kN, net_cfg);

  const HwgId gid = host(0).allocate_group_id();
  host(0).create_group(gid, user(0));
  MemberSet all;
  for (std::size_t i = 0; i < kN; ++i) all.insert(pid(i));
  for (std::size_t i = 1; i < kN; ++i) {
    host(i).join_group(gid, MemberSet{pid(0)}, user(i));
  }
  std::vector<std::size_t> everyone{0, 1, 2, 3, 4};
  ASSERT_TRUE(run_until([&] { return converged(gid, everyone, all); },
                        15'000'000));

  bool partitioned = false;
  std::uint8_t tag = 0;
  for (int step = 0; step < 25; ++step) {
    const std::uint64_t action = rng.next_below(10);
    if (action < 6) {
      // Burst of traffic from random senders.
      const int burst = static_cast<int>(rng.next_below(5)) + 1;
      for (int m = 0; m < burst; ++m) {
        const auto sender = static_cast<std::size_t>(rng.next_below(kN));
        host(sender).send(gid, payload(tag++));
      }
    } else if (action < 8 && !partitioned) {
      // Random 2-way partition.
      std::vector<NodeId> left, right;
      for (std::size_t i = 0; i < kN; ++i) {
        (rng.next_bool(0.5) ? left : right).push_back(node(i));
      }
      if (!left.empty() && !right.empty()) {
        net_->set_partitions({left, right});
        partitioned = true;
      }
    } else {
      net_->heal();
      partitioned = false;
    }
    run_for(rng.next_range(50'000, 1'500'000));
  }
  net_->heal();
  ASSERT_TRUE(run_until([&] { return converged(gid, everyone, all); },
                        60'000'000))
      << "seed " << GetParam();

  check_virtual_synchrony(gid, kN);
}

INSTANTIATE_TEST_SUITE_P(Seeds, VsyncPropertyTest,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11,
                                           12, 13, 14, 15, 16, 17, 18, 19, 20,
                                           21, 22, 23, 24));

class VsyncCrashPropertyTest
    : public VsyncFixture,
      public ::testing::WithParamInterface<std::uint64_t> {};

TEST_P(VsyncCrashPropertyTest, RandomCrashesConvergeToSurvivors) {
  Rng rng(GetParam());
  constexpr std::size_t kN = 6;
  build(kN);
  const HwgId gid = host(0).allocate_group_id();
  host(0).create_group(gid, user(0));
  for (std::size_t i = 1; i < kN; ++i) {
    host(i).join_group(gid, MemberSet{pid(0)}, user(i));
  }
  MemberSet all;
  for (std::size_t i = 0; i < kN; ++i) all.insert(pid(i));
  ASSERT_TRUE(run_until(
      [&] { return converged(gid, {0, 1, 2, 3, 4, 5}, all); }, 15'000'000));

  // Crash up to three random distinct processes at random instants while
  // traffic flows.
  std::vector<std::size_t> alive{0, 1, 2, 3, 4, 5};
  const int crashes = 1 + static_cast<int>(rng.next_below(3));
  std::uint8_t tag = 0;
  for (int c = 0; c < crashes; ++c) {
    for (int m = 0; m < 5; ++m) {
      const std::size_t sender =
          alive[static_cast<std::size_t>(rng.next_below(alive.size()))];
      host(sender).send(gid, payload(tag++));
    }
    run_for(rng.next_range(10'000, 800'000));
    const std::size_t victim_idx =
        static_cast<std::size_t>(rng.next_below(alive.size()));
    net_->crash(node(alive[victim_idx]));
    alive.erase(alive.begin() + static_cast<std::ptrdiff_t>(victim_idx));
  }
  MemberSet survivors;
  for (std::size_t i : alive) survivors.insert(pid(i));
  ASSERT_TRUE(run_until([&] { return converged(gid, alive, survivors); },
                        40'000'000))
      << "seed " << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Seeds, VsyncCrashPropertyTest,
                         ::testing::Values(101, 102, 103, 104, 105, 106, 107,
                                           108, 109, 110, 111, 112, 113, 114,
                                           115, 116));

}  // namespace
}  // namespace plwg::vsync::testing
