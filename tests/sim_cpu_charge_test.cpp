// Network::charge_cpu: protocol-processing charges serialize with packet
// reception at a node (the cost model behind the Fig. 2 recovery shapes).
#include <gtest/gtest.h>

#include "sim/network.hpp"

namespace plwg::sim {
namespace {

struct Recorder : NetHandler {
  explicit Recorder(Simulator& sim) : sim_(sim) {}
  void on_packet(NodeId, std::span<const std::uint8_t>) override {
    arrivals.push_back(sim_.now());
  }
  Simulator& sim_;
  std::vector<Time> arrivals;
};

TEST(CpuCharge, DelaysSubsequentDeliveries) {
  Simulator sim;
  NetworkConfig cfg;
  cfg.node_process_cost_us = 100;
  cfg.propagation_delay_us = 50;
  Network net(sim, cfg);
  Recorder sender(sim), receiver(sim);
  const NodeId a = net.add_node(sender);
  const NodeId b = net.add_node(receiver);

  net.unicast(a, b, {1});
  sim.run();
  const Time baseline = receiver.arrivals.at(0);

  // Same send again, but with 10 ms of protocol work charged first.
  net.charge_cpu(b, 10'000);
  net.unicast(a, b, {2});
  sim.run();
  const Time delayed = receiver.arrivals.at(1);
  EXPECT_GE(delayed - baseline, 10'000);
}

TEST(CpuCharge, ChargesAccumulate) {
  Simulator sim;
  NetworkConfig cfg;
  cfg.node_process_cost_us = 10;
  Network net(sim, cfg);
  Recorder sender(sim), receiver(sim);
  const NodeId a = net.add_node(sender);
  const NodeId b = net.add_node(receiver);
  net.charge_cpu(b, 1'000);
  net.charge_cpu(b, 1'000);
  net.charge_cpu(b, 1'000);
  net.unicast(a, b, {1});
  sim.run();
  EXPECT_GE(receiver.arrivals.at(0), 3'000);
}

TEST(CpuCharge, DoesNotAffectOtherNodes) {
  Simulator sim;
  Network net(sim, NetworkConfig{});
  Recorder sender(sim), r1(sim), r2(sim);
  const NodeId a = net.add_node(sender);
  const NodeId b = net.add_node(r1);
  const NodeId c = net.add_node(r2);
  net.charge_cpu(b, 50'000);
  const std::vector<NodeId> dests{b, c};
  net.multicast(a, dests, {1});
  sim.run();
  ASSERT_EQ(r1.arrivals.size(), 1u);
  ASSERT_EQ(r2.arrivals.size(), 1u);
  EXPECT_LT(r2.arrivals[0], r1.arrivals[0]);
}

TEST(CpuCharge, ZeroChargeIsNoop) {
  Simulator sim;
  Network net(sim, NetworkConfig{});
  Recorder sender(sim), receiver(sim);
  const NodeId a = net.add_node(sender);
  const NodeId b = net.add_node(receiver);
  net.unicast(a, b, {1});
  sim.run();
  const Time baseline = receiver.arrivals.at(0);
  net.charge_cpu(b, 0);
  net.unicast(a, b, {2});
  sim.run();
  EXPECT_EQ(receiver.arrivals.at(1), 2 * baseline);
}

}  // namespace
}  // namespace plwg::sim
