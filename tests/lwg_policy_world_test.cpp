// World-level parameterized sweep of the Fig. 1 heuristics: the eviction
// behaviour measured end-to-end (through real switches on a live system)
// must match the pure predicate for every parameter choice — the bridge
// between the unit-tested rules and the running service.
#include <gtest/gtest.h>

#include "lwg_fixture.hpp"

namespace plwg::lwg::testing {
namespace {

struct SweepCase {
  double k_m;
  std::size_t small_size;  // members of the minority LWG
  bool expect_eviction;    // small_size <= 8 / k_m
};

class PolicySweepTest : public LwgFixture,
                        public ::testing::WithParamInterface<SweepCase> {};

TEST_P(PolicySweepTest, EvictionMatchesPredicateEndToEnd) {
  const SweepCase& c = GetParam();
  harness::WorldConfig cfg;
  cfg.num_processes = 8;
  cfg.lwg.k_m = c.k_m;
  cfg.lwg.policy_period_us = 2'000'000;
  cfg.lwg.shrink_delay_us = 30'000'000;
  build(cfg);

  form_lwg(LwgId{1}, {0, 1, 2, 3, 4, 5, 6, 7});
  std::vector<std::size_t> small_members;
  for (std::size_t i = 0; i < c.small_size; ++i) small_members.push_back(i);
  form_lwg(LwgId{2}, small_members);
  ASSERT_EQ(lwg(0).hwg_of(LwgId{1}), lwg(0).hwg_of(LwgId{2}))
      << "optimistic mapping should co-locate";

  run_for(10'000'000);  // several policy periods

  const bool evicted =
      *lwg(0).hwg_of(LwgId{2}) != *lwg(0).hwg_of(LwgId{1});
  EXPECT_EQ(evicted, c.expect_eviction)
      << "k_m=" << c.k_m << " |small|=" << c.small_size;
  if (c.expect_eviction) {
    // Every small-group member followed the switch consistently.
    MemberSet expect;
    for (std::size_t i : small_members) expect.insert(pid(i));
    EXPECT_TRUE(run_until(
        [&] { return lwg_converged(LwgId{2}, small_members, expect); },
        30'000'000));
    for (std::size_t i : small_members) {
      EXPECT_EQ(lwg(i).hwg_of(LwgId{2}), lwg(0).hwg_of(LwgId{2}));
    }
  } else {
    EXPECT_EQ(lwg(0).stats().switches_started, 0u);
  }
}

INSTANTIATE_TEST_SUITE_P(
    KmGrid, PolicySweepTest,
    ::testing::Values(
        // |hwg| = 8: minority iff |small| <= 8 / k_m.
        SweepCase{4.0, 2, true},    // 2 <= 2: the paper's default evicts
        SweepCase{4.0, 3, false},   // 3 > 2: tolerated
        SweepCase{2.0, 4, true},    // 4 <= 4
        SweepCase{2.0, 5, false},   // 5 > 4
        SweepCase{8.0, 2, false},   // 2 > 1
        SweepCase{8.0, 1, true}));  // 1 <= 1

}  // namespace
}  // namespace plwg::lwg::testing
