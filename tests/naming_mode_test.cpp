// The replicated-everywhere naming deployment (paper Sect. 3.1): reads are
// answered by the local replica, updates propagate by anti-entropy, and the
// full partition-reconciliation machinery still works on top of it.
#include <gtest/gtest.h>

#include "lwg_fixture.hpp"

namespace plwg::lwg::testing {
namespace {

harness::WorldConfig replicated_config(std::size_t processes) {
  harness::WorldConfig cfg;
  cfg.num_processes = processes;
  cfg.naming_mode = harness::NamingMode::kReplicatedEverywhere;
  return cfg;
}

class NamingModeTest : public LwgFixture {};

TEST_F(NamingModeTest, EveryProcessHostsAReplica) {
  build(replicated_config(3));
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_TRUE(world().naming(i).is_server()) << "process " << i;
    EXPECT_EQ(world().server_node(i), world().node(i));
  }
}

TEST_F(NamingModeTest, GroupsFormThroughLocalReplicas) {
  build(replicated_config(4));
  form_lwg(LwgId{1}, {0, 1, 2, 3});
  lwg(0).send(LwgId{1}, payload(1));
  ASSERT_TRUE(run_until(
      [&] { return user(3).total_delivered(LwgId{1}) == 1; }, 10'000'000));
}

TEST_F(NamingModeTest, MappingsPropagateToAllReplicas) {
  build(replicated_config(4));
  form_lwg(LwgId{1}, {0, 1});
  run_for(3'000'000);  // anti-entropy round
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_TRUE(
        world().server(i).database().records.contains(LwgId{1}))
        << "replica " << i;
  }
}

TEST_F(NamingModeTest, PartitionReconciliationWorksWithoutDedicatedServers) {
  build(replicated_config(4));
  // Create the group independently in two partitions; every side has local
  // replicas by construction, so no server placement is needed.
  world().partition({{0, 1}, {2, 3}});
  const LwgId id{1};
  for (std::size_t i = 0; i < 4; ++i) lwg(i).join(id, user(i));
  ASSERT_TRUE(run_until(
      [&] {
        return lwg_converged(id, {0, 1}, members_of({0, 1})) &&
               lwg_converged(id, {2, 3}, members_of({2, 3}));
      },
      40'000'000));
  world().heal();
  ASSERT_TRUE(run_until(
      [&] { return lwg_converged(id, {0, 1, 2, 3}, members_of({0, 1, 2, 3})); },
      120'000'000));
  // All four replicas converge to one GC'd mapping.
  ASSERT_TRUE(run_until(
      [&] {
        for (std::size_t i = 0; i < 4; ++i) {
          const auto& db = world().server(i).database();
          auto it = db.records.find(id);
          if (it == db.records.end() || it->second.entries.size() != 1) {
            return false;
          }
        }
        return true;
      },
      60'000'000));
}

}  // namespace
}  // namespace plwg::lwg::testing
