// Self-tests for the protocol oracle: prove each checker actually fires on
// a violating event stream (the oracle is not vacuously green), by driving
// the observer interfaces directly with synthetic histories — and once end
// to end, by swallowing a real delivery report inside a live SimWorld.
#include <gtest/gtest.h>

#include <vector>

#include "harness/world.hpp"
#include "names/mapping.hpp"
#include "oracle/oracle.hpp"

namespace plwg::oracle {
namespace {

using vsync::View;
using vsync::ViewId;

MemberSet members_of(std::initializer_list<std::uint32_t> pids) {
  MemberSet set;
  for (std::uint32_t p : pids) set.insert(ProcessId{p});
  return set;
}

View hwg_view(ViewId id, std::initializer_list<std::uint32_t> pids) {
  View v;
  v.id = id;
  v.members = members_of(pids);
  return v;
}

lwg::LwgView lwg_view(ViewId id, std::initializer_list<std::uint32_t> pids,
                      HwgId hwg) {
  lwg::LwgView v;
  v.id = id;
  v.members = members_of(pids);
  v.hwg = hwg;
  return v;
}

std::vector<std::uint8_t> payload(std::uint8_t tag) { return {tag, 0, 0, 0}; }

/// Every recorded violation carries `invariant`, and at least one was
/// recorded.
void expect_only_invariant(const ProtocolOracle& oracle, int invariant) {
  EXPECT_FALSE(oracle.clean());
  for (const Violation& v : oracle.violations()) {
    EXPECT_EQ(v.invariant, invariant) << v.description;
  }
}

class OracleSelfTest : public ::testing::Test {
 protected:
  ProtocolOracle oracle_;
  const HwgId gid_{7};
  const LwgId lwg_{9};
  const ProcessId p1_{1}, p2_{2};
  const ViewId va_{ProcessId{1}, 1};
  const ViewId vb_{ProcessId{1}, 2};
};

TEST_F(OracleSelfTest, CleanHistoryStaysClean) {
  // Two processes, one message, one view change — a correct history.
  for (ProcessId p : {p1_, p2_}) {
    oracle_.on_hwg_view_installed(p, gid_, hwg_view(va_, {1, 2}));
    oracle_.on_hwg_delivered(p, gid_, va_, 1, p1_, 1, payload(1));
    oracle_.on_hwg_view_installed(p, gid_, hwg_view(vb_, {1, 2}));
  }
  EXPECT_TRUE(oracle_.clean()) << oracle_.report_json();
  EXPECT_EQ(oracle_.total_violations(), 0u);
}

TEST_F(OracleSelfTest, Invariant1SameViewPairDifferentMessages) {
  oracle_.on_hwg_view_installed(p1_, gid_, hwg_view(va_, {1, 2}));
  oracle_.on_hwg_view_installed(p2_, gid_, hwg_view(va_, {1, 2}));
  oracle_.on_hwg_delivered(p1_, gid_, va_, 1, p1_, 1, payload(1));
  // p2 never delivers, yet installs the same successor view.
  oracle_.on_hwg_view_installed(p1_, gid_, hwg_view(vb_, {1, 2}));
  oracle_.on_hwg_view_installed(p2_, gid_, hwg_view(vb_, {1, 2}));
  expect_only_invariant(oracle_, 1);
}

TEST_F(OracleSelfTest, Invariant1SlotDisagreement) {
  oracle_.on_hwg_view_installed(p1_, gid_, hwg_view(va_, {1, 2}));
  oracle_.on_hwg_view_installed(p2_, gid_, hwg_view(va_, {1, 2}));
  // Same (view, seq) slot, different message: total order broken.
  oracle_.on_hwg_delivered(p1_, gid_, va_, 1, p1_, 1, payload(1));
  oracle_.on_hwg_delivered(p2_, gid_, va_, 1, p2_, 5, payload(2));
  expect_only_invariant(oracle_, 1);
}

TEST_F(OracleSelfTest, Invariant1EndpointResetSuppressesPairing) {
  // p2's endpoint resets between the two installs (rejoin): its gap is not
  // a virtual-synchrony violation, and must not form a pair.
  oracle_.on_hwg_view_installed(p1_, gid_, hwg_view(va_, {1, 2}));
  oracle_.on_hwg_view_installed(p2_, gid_, hwg_view(va_, {1, 2}));
  oracle_.on_hwg_delivered(p1_, gid_, va_, 1, p1_, 1, payload(1));
  oracle_.on_hwg_endpoint_reset(p2_, gid_);
  oracle_.on_hwg_view_installed(p1_, gid_, hwg_view(vb_, {1, 2}));
  oracle_.on_hwg_view_installed(p2_, gid_, hwg_view(vb_, {1, 2}));
  EXPECT_TRUE(oracle_.clean()) << oracle_.report_json();
}

TEST_F(OracleSelfTest, Invariant2InstallerNotMember) {
  oracle_.on_hwg_view_installed(ProcessId{5}, gid_, hwg_view(va_, {1, 2}));
  expect_only_invariant(oracle_, 2);
}

TEST_F(OracleSelfTest, Invariant3OriginNotMember) {
  oracle_.on_hwg_view_installed(p1_, gid_, hwg_view(va_, {1, 2}));
  oracle_.on_hwg_delivered(p1_, gid_, va_, 1, ProcessId{7}, 1, payload(1));
  expect_only_invariant(oracle_, 3);
}

TEST_F(OracleSelfTest, Invariant3DeliveryInUninstalledView) {
  oracle_.on_hwg_delivered(p1_, gid_, va_, 1, p1_, 1, payload(1));
  expect_only_invariant(oracle_, 3);
}

TEST_F(OracleSelfTest, Invariant6SameViewIdDifferentMembership) {
  oracle_.on_hwg_view_installed(p1_, gid_, hwg_view(va_, {1, 2}));
  oracle_.on_hwg_view_installed(p2_, gid_, hwg_view(va_, {2, 3}));
  // p2 is a member of its own (bogus) view, so only #6 fires.
  expect_only_invariant(oracle_, 6);
}

TEST_F(OracleSelfTest, Invariant6MergedLwgViewWrongCoordinator) {
  // disambig != 0 marks a deterministically merged id: the coordinator
  // must be the minimum member (paper Fig. 5), here it is 2.
  const ViewId merged{ProcessId{2}, 3, 0xabcd};
  oracle_.on_lwg_view_installed(p2_, lwg_, lwg_view(merged, {1, 2}, gid_),
                                {});
  expect_only_invariant(oracle_, 6);
}

TEST_F(OracleSelfTest, Invariant4SameLwgViewDifferentHwg) {
  oracle_.on_lwg_view_installed(p1_, lwg_, lwg_view(va_, {1, 2}, HwgId{10}),
                                {});
  oracle_.on_lwg_view_installed(p2_, lwg_, lwg_view(va_, {1, 2}, HwgId{11}),
                                {});
  expect_only_invariant(oracle_, 4);
}

TEST_F(OracleSelfTest, Invariant1LwgPairDivergence) {
  const auto view_a = lwg_view(va_, {1, 2}, gid_);
  const auto view_b = lwg_view(vb_, {1, 2}, gid_);
  oracle_.on_lwg_view_installed(p1_, lwg_, view_a, {});
  oracle_.on_lwg_view_installed(p2_, lwg_, view_a, {});
  oracle_.on_lwg_delivered(p1_, lwg_, va_, p1_, payload(1));
  oracle_.on_lwg_delivered(p2_, lwg_, va_, p1_, payload(2));  // different data
  oracle_.on_lwg_view_installed(p1_, lwg_, view_b, {});
  oracle_.on_lwg_view_installed(p2_, lwg_, view_b, {});
  expect_only_invariant(oracle_, 1);
}

TEST_F(OracleSelfTest, Invariant5UnresolvedJoinFailsConvergence) {
  ConvergenceSnapshot snap;
  snap.alive = members_of({1, 2});
  snap.unresolved.emplace_back(p1_, lwg_);
  EXPECT_FALSE(check_converged(snap).empty());
  EXPECT_FALSE(oracle_.check_convergence(snap));
  expect_only_invariant(oracle_, 5);
}

TEST_F(OracleSelfTest, Invariant5DivergedHoldersFailConvergence) {
  ConvergenceSnapshot snap;
  snap.alive = members_of({1, 2});
  snap.holders[lwg_].push_back({p1_, lwg_view(va_, {1, 2}, gid_)});
  snap.holders[lwg_].push_back({p2_, lwg_view(vb_, {1, 2}, gid_)});
  EXPECT_FALSE(oracle_.check_convergence(snap));
  expect_only_invariant(oracle_, 5);
}

TEST_F(OracleSelfTest, Invariant4StaleNsRowFailsConvergence) {
  // Holders converged, but the server kept two alive rows: genealogy GC
  // did not fire.
  ConvergenceSnapshot snap;
  snap.alive = members_of({1, 2});
  snap.holders[lwg_].push_back({p1_, lwg_view(vb_, {1, 2}, gid_)});
  snap.holders[lwg_].push_back({p2_, lwg_view(vb_, {1, 2}, gid_)});

  names::Database db;
  names::MappingEntry stale;
  stale.lwg_view = va_;
  stale.lwg_members = members_of({1});
  stale.hwg = gid_;
  names::MappingEntry fresh;
  fresh.lwg_view = vb_;
  fresh.lwg_members = members_of({1, 2});
  fresh.hwg = gid_;
  db.records[lwg_].entries[va_] = stale;
  db.records[lwg_].entries[vb_] = fresh;
  snap.databases.emplace_back(NodeId{100}, &db);

  EXPECT_FALSE(oracle_.check_convergence(snap));
  expect_only_invariant(oracle_, 4);
}

TEST_F(OracleSelfTest, ConvergedSnapshotPasses) {
  ConvergenceSnapshot snap;
  snap.alive = members_of({1, 2});
  snap.holders[lwg_].push_back({p1_, lwg_view(vb_, {1, 2}, gid_)});
  snap.holders[lwg_].push_back({p2_, lwg_view(vb_, {1, 2}, gid_)});

  names::Database db;
  names::MappingEntry fresh;
  fresh.lwg_view = vb_;
  fresh.lwg_members = members_of({1, 2});
  fresh.hwg = gid_;
  db.records[lwg_].entries[vb_] = fresh;
  db.records[lwg_].superseded.insert(va_);
  snap.databases.emplace_back(NodeId{100}, &db);

  EXPECT_TRUE(check_converged(snap).empty());
  EXPECT_TRUE(oracle_.check_convergence(snap));
  EXPECT_TRUE(oracle_.clean());
}

TEST_F(OracleSelfTest, ReportJsonCarriesViolationAndTrace) {
  oracle_.on_hwg_view_installed(p1_, gid_, hwg_view(va_, {1, 2}));
  oracle_.on_hwg_view_installed(p2_, gid_, hwg_view(va_, {2, 3}));
  const std::string report = oracle_.report_json();
  EXPECT_NE(report.find("\"invariant\":6"), std::string::npos) << report;
  EXPECT_NE(report.find("\"traces\""), std::string::npos) << report;
  EXPECT_NE(report.find("hwg-view"), std::string::npos) << report;
  oracle_.clear();
  EXPECT_TRUE(oracle_.clean());
  EXPECT_EQ(oracle_.total_violations(), 0u);
}

#ifndef PLWG_ORACLE_DISABLED

/// End-to-end deliberate violation: a live 3-process world where the oracle
/// is made to *miss* one delivery report from process 1. When the next view
/// change closes the epoch, the same-view-pair comparison must flag
/// invariant #1 — and nothing else.
TEST(OracleEndToEndTest, DroppedDeliveryReportFlagsInvariant1) {
  class NullUser : public lwg::LwgUser {
   public:
    void on_lwg_view(LwgId, const lwg::LwgView&) override {}
    void on_lwg_data(LwgId, ProcessId, std::span<const std::uint8_t>) override {}
  };

  harness::WorldConfig cfg;
  cfg.num_processes = 3;
  cfg.num_name_servers = 1;
  cfg.net.seed = 42;
  harness::SimWorld world(std::move(cfg));
  ASSERT_TRUE(world.oracle_enabled());

  const LwgId id{1};
  NullUser users[3];
  MemberSet all;
  for (std::size_t i = 0; i < 3; ++i) {
    world.lwg(i).join(id, users[i]);
    all.insert(world.pid(i));
  }
  ASSERT_TRUE(world.run_until(
      [&] {
        for (std::size_t i = 0; i < 3; ++i) {
          const lwg::LwgView* v = world.lwg(i).view_of(id);
          if (v == nullptr || v->members != all) return false;
        }
        return true;
      },
      20'000'000));

  // Swallow process 1's report of the next HWG delivery.
  world.oracle().test_drop_next_hwg_delivery(world.pid(1));
  world.lwg(0).send(id, {1, 2, 3, 4});
  world.run_for(2'000'000);
  ASSERT_TRUE(world.oracle().clean()) << world.oracle().report_json();

  // Crash process 2: the surviving pair installs a new view, closing the
  // epoch on both — process 1's record is one message short.
  world.crash(2);
  MemberSet survivors;
  survivors.insert(world.pid(0));
  survivors.insert(world.pid(1));
  ASSERT_TRUE(world.run_until(
      [&] {
        for (std::size_t i = 0; i < 2; ++i) {
          const lwg::LwgView* v = world.lwg(i).view_of(id);
          if (v == nullptr || v->members != survivors) return false;
        }
        return true;
      },
      60'000'000));

  expect_only_invariant(world.oracle(), 1);
  // Acknowledge, or the SimWorld destructor aborts on the planted violation.
  world.oracle().clear();
}

#endif  // PLWG_ORACLE_DISABLED

}  // namespace
}  // namespace plwg::oracle
