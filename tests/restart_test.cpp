// Crash–restart recovery through the whole stack: a restarted process (or
// name server) comes back as a fresh incarnation on the same NodeId, replays
// its durable restart script, and must re-converge with the survivors — with
// the protocol oracle watching every step. Includes the "worst moment"
// restarts: an HWG coordinator mid-flush, an LWG coordinator mid-merge, a
// name server mid-anti-entropy.
#include <gtest/gtest.h>

#include "harness/world.hpp"
#include "lwg_fixture.hpp"

namespace plwg::lwg::testing {
namespace {

class RestartTest : public LwgFixture {
 protected:
  harness::WorldConfig base_config(std::size_t procs,
                                   std::size_t servers = 1) {
    harness::WorldConfig cfg;
    cfg.num_processes = procs;
    cfg.num_name_servers = servers;
    return cfg;
  }

  /// Index of the current LWG coordinator as seen by alive process `i`.
  std::size_t coordinator_index(LwgId id, std::size_t i) {
    const LwgView* v = lwg(i).view_of(id);
    EXPECT_NE(v, nullptr);
    return v->coordinator().value();  // pid value == process index
  }

  bool all_converged(LwgId id, std::size_t n) {
    std::vector<std::size_t> all(n);
    for (std::size_t i = 0; i < n; ++i) all[i] = i;
    MemberSet members;
    for (std::size_t i = 0; i < n; ++i) members.insert(pid(i));
    return lwg_converged(id, all, members);
  }
};

TEST_F(RestartTest, RestartedProcessRejoinsItsLwg) {
  build(base_config(3));
  const LwgId id{1};
  form_lwg(id, {0, 1, 2});

  world().crash(2);
  ASSERT_TRUE(run_until(
      [&] { return lwg_converged(id, {0, 1}, members_of({0, 1})); },
      120'000'000));

  world().restart(2);
  EXPECT_EQ(world().incarnation(2), 1u);
  ASSERT_TRUE(run_until([&] { return all_converged(id, 3); }, 300'000'000));

  // The reunited group carries traffic end to end.
  const auto before = user(2).total_delivered(id);
  lwg(0).send(id, payload(1));
  EXPECT_TRUE(run_until(
      [&] { return user(2).total_delivered(id) > before; }, 30'000'000));
  EXPECT_TRUE(world().verify_convergence()) << world().convergence_failure();
}

TEST_F(RestartTest, ImmediateRestartBeforeSuspicion) {
  // The nastiest interleaving: the process is reborn before any peer
  // suspects the old incarnation, so the group still lists it as a member
  // while its ghost frames may still be in flight.
  build(base_config(3));
  const LwgId id{1};
  form_lwg(id, {0, 1, 2});
  lwg(0).send(id, payload(1));
  run_for(50'000);

  world().crash(1);
  world().restart(1);  // same simulated instant: downtime ~0
  ASSERT_TRUE(run_until([&] { return all_converged(id, 3); }, 300'000'000));
  lwg(1).send(id, payload(2));
  EXPECT_TRUE(run_until(
      [&] { return user(0).total_delivered(id) >= 2; }, 30'000'000));
  ASSERT_TRUE(run_until(
      [&] { return world().convergence_failure().empty(); }, 300'000'000))
      << world().convergence_failure();
  EXPECT_TRUE(world().verify_convergence());
}

TEST_F(RestartTest, SoleMemberRestartRecreatesItsGroup) {
  // The naming service still maps the LWG onto an HWG whose only member
  // died; the reborn process must give up on the corpse HWG and re-map.
  build(base_config(2));
  const LwgId id{7};
  form_lwg(id, {0});

  world().crash(0);
  run_for(1'000'000);
  world().restart(0);
  ASSERT_TRUE(run_until(
      [&] { return lwg_converged(id, {0}, members_of({0})); }, 300'000'000));

  // A late joiner finds the reborn group, not the corpse.
  lwg(1).join(id, user(1));
  ASSERT_TRUE(run_until(
      [&] { return lwg_converged(id, {0, 1}, members_of({0, 1})); },
      300'000'000));
  EXPECT_TRUE(world().verify_convergence()) << world().convergence_failure();
}

TEST_F(RestartTest, HwgCoordinatorRestartMidFlush) {
  build(base_config(4));
  const LwgId id{1};
  form_lwg(id, {0, 1, 2, 3});

  // Kick off a flush on the underlying HWG and kill its coordinator while
  // the flush round-trips are in the air.
  const auto hwg = lwg(0).hwg_of(id);
  ASSERT_TRUE(hwg.has_value());
  const std::size_t coord = coordinator_index(id, 0);
  world().vsync(coord).force_flush(*hwg);
  run_for(1'000);  // flush request sent, cut not yet collected
  world().crash(coord);
  run_for(2'000'000);
  world().restart(coord);

  ASSERT_TRUE(run_until([&] { return all_converged(id, 4); }, 300'000'000));
  lwg(coord).send(id, payload(3));
  EXPECT_TRUE(run_until(
      [&] { return user((coord + 1) % 4).total_delivered(id) >= 1; },
      30'000'000));
  EXPECT_TRUE(world().verify_convergence()) << world().convergence_failure();
}

TEST_F(RestartTest, LwgCoordinatorRestartMidMergeViews) {
  build(base_config(4, 2));
  const LwgId id{1};
  form_lwg(id, {0, 1, 2, 3});

  // Split, let both sides re-form concurrent views, then heal and kill the
  // coordinator of one side while the Fig. 5 merge machinery is running.
  world().partition({{0, 1}, {2, 3}}, {0, 1});
  ASSERT_TRUE(run_until(
      [&] {
        return lwg_converged(id, {0, 1}, members_of({0, 1})) &&
               lwg_converged(id, {2, 3}, members_of({2, 3}));
      },
      300'000'000));
  world().heal();
  run_for(1'500'000);  // reconciliation / merge-views in flight
  const std::size_t coord = coordinator_index(id, 0);
  world().crash(coord);
  run_for(3'000'000);
  world().restart(coord);

  ASSERT_TRUE(run_until([&] { return all_converged(id, 4); }, 300'000'000));
  // The view settles before the naming service does: give anti-entropy time
  // to retire the superseded rows on every replica.
  ASSERT_TRUE(run_until(
      [&] { return world().convergence_failure().empty(); }, 300'000'000))
      << world().convergence_failure();
  EXPECT_TRUE(world().verify_convergence());
}

TEST_F(RestartTest, NameServerRestartMidAntiEntropy) {
  build(base_config(4, 2));
  const LwgId id{1};
  form_lwg(id, {0, 1});

  // Kill server 0, churn the group so the surviving server accumulates
  // updates the dead replica never saw, then revive it mid-epidemic: its
  // reloaded disk rows are stale and must be reconciled away (genealogy GC
  // via the tombstones that ride anti-entropy).
  world().crash_server(0);
  EXPECT_TRUE(world().server_crashed(0));
  lwg(2).join(id, user(2));  // registrations land on server 1 only
  lwg(3).join(id, user(3));
  ASSERT_TRUE(run_until([&] { return all_converged(id, 4); }, 300'000'000));
  world().restart_server(0);
  EXPECT_FALSE(world().server_crashed(0));

  ASSERT_TRUE(run_until(
      [&] { return world().convergence_failure().empty(); }, 300'000'000))
      << world().convergence_failure();
  EXPECT_TRUE(world().verify_convergence());
}

TEST_F(RestartTest, LoneServerReloadsItsDatabaseFromDisk) {
  // With a single replica there is no peer to anti-entropy from: the only
  // thing standing between a server crash and total mapping loss is the
  // disk-backed database.
  build(base_config(3, 1));
  const LwgId id{1};
  form_lwg(id, {0, 1});

  world().crash_server(0);
  run_for(2'000'000);
  world().restart_server(0);

  // A late joiner resolves the *existing* mapping from the reloaded
  // database and joins the incumbent group instead of founding a rival.
  lwg(2).join(id, user(2));
  ASSERT_TRUE(run_until([&] { return all_converged(id, 3); }, 300'000'000));
  EXPECT_TRUE(world().verify_convergence()) << world().convergence_failure();
}

TEST_F(RestartTest, DurableCountersSurviveRepeatedRestarts) {
  build(base_config(2));
  const LwgId id{1};
  form_lwg(id, {0, 1});
  for (int round = 1; round <= 3; ++round) {
    world().crash(0);
    run_for(2'000'000);
    world().restart(0);
    EXPECT_EQ(world().incarnation(0), static_cast<std::uint32_t>(round));
    ASSERT_TRUE(run_until([&] { return all_converged(id, 2); }, 300'000'000))
        << "round " << round;
  }
  // View-id uniqueness across incarnations is what the durable counters
  // buy; the oracle's invariant #6 checker (same id, different membership)
  // would flag any reuse. TearDown asserts the oracle is clean.
  EXPECT_TRUE(world().verify_convergence()) << world().convergence_failure();
}

TEST_F(RestartTest, RestartWithoutCrashAsserts) {
  build(base_config(2));
  EXPECT_DEATH(world().restart(0), "not crashed");
}

}  // namespace
}  // namespace plwg::lwg::testing
