// Node runtime: port demultiplexing, framing, malformed-input resilience,
// crash-aware timers, and the process/node identity mapping.
#include "transport/node_runtime.hpp"

#include <gtest/gtest.h>

#include "sim/network.hpp"
#include "sim/simulator.hpp"

namespace plwg::transport {
namespace {

struct Recorder : PortHandler {
  void on_message(NodeId from, Decoder& dec) override {
    froms.push_back(from);
    values.push_back(dec.get_u32());
  }
  std::vector<NodeId> froms;
  std::vector<std::uint32_t> values;
};

struct Thrower : PortHandler {
  void on_message(NodeId, Decoder& dec) override {
    (void)dec.get_u64();  // demands more bytes than any sender provides
  }
};

class TransportTest : public ::testing::Test {
 protected:
  TransportTest() : net_(sim_, sim::NetworkConfig{}) {}
  sim::Simulator sim_;
  sim::Network net_;
};

TEST_F(TransportTest, RoutesByPort) {
  NodeRuntime a(net_), b(net_);
  Recorder vsync_handler, naming_handler;
  b.register_port(Port::kVsync, vsync_handler);
  b.register_port(Port::kNaming, naming_handler);

  Encoder payload;
  payload.put_u32(7);
  a.send(Port::kVsync, b.id(), payload);
  Encoder payload2;
  payload2.put_u32(9);
  a.send(Port::kNaming, b.id(), payload2);
  sim_.run();

  ASSERT_EQ(vsync_handler.values.size(), 1u);
  EXPECT_EQ(vsync_handler.values[0], 7u);
  EXPECT_EQ(vsync_handler.froms[0], a.id());
  ASSERT_EQ(naming_handler.values.size(), 1u);
  EXPECT_EQ(naming_handler.values[0], 9u);
}

TEST_F(TransportTest, UnboundPortIsDropped) {
  NodeRuntime a(net_), b(net_);
  Encoder payload;
  payload.put_u32(1);
  a.send(Port::kApp, b.id(), payload);  // no handler registered at b
  sim_.run();  // must not crash
  SUCCEED();
}

TEST_F(TransportTest, MalformedPayloadIsContained) {
  NodeRuntime a(net_), b(net_);
  Thrower handler;
  b.register_port(Port::kApp, handler);
  Encoder tiny;
  tiny.put_u8(1);  // Thrower wants a u64
  a.send(Port::kApp, b.id(), tiny);
  sim_.run();  // the CodecError is logged, not propagated
  SUCCEED();
}

TEST_F(TransportTest, MulticastToProcessIds) {
  NodeRuntime a(net_), b(net_), c(net_);
  Recorder hb, hc;
  b.register_port(Port::kApp, hb);
  c.register_port(Port::kApp, hc);
  const std::vector<ProcessId> dests{b.process_id(), c.process_id()};
  Encoder payload;
  payload.put_u32(5);
  a.multicast(Port::kApp, dests, payload);
  sim_.run();
  EXPECT_EQ(hb.values, std::vector<std::uint32_t>{5});
  EXPECT_EQ(hc.values, std::vector<std::uint32_t>{5});
}

TEST_F(TransportTest, TimerSkippedAfterCrash) {
  NodeRuntime a(net_);
  bool fired = false;
  a.after(1'000, [&] { fired = true; });
  net_.crash(a.id());
  sim_.run();
  EXPECT_FALSE(fired);
}

TEST_F(TransportTest, TimerFiresOnLiveNode) {
  NodeRuntime a(net_);
  Time fired_at = -1;
  a.after(2'500, [&] { fired_at = a.now(); });
  sim_.run();
  EXPECT_EQ(fired_at, 2'500);
}

TEST_F(TransportTest, ProcessNodeIdentityMapping) {
  NodeRuntime a(net_), b(net_);
  EXPECT_EQ(node_of(a.process_id()), a.id());
  EXPECT_EQ(process_of(b.id()), b.process_id());
  EXPECT_NE(a.process_id(), b.process_id());
}

TEST_F(TransportTest, DoubleRegisterSamePortAsserts) {
  NodeRuntime a(net_);
  Recorder h1, h2;
  a.register_port(Port::kApp, h1);
  EXPECT_DEATH(a.register_port(Port::kApp, h2), "port already registered");
}

// --- frame hardening & incarnations ----------------------------------------

/// Hand-rolled single-message frame in the runtime's batched wire format
/// (independent reimplementation so a codec bug can't hide in both the
/// sender and the test): [inc u32][checksum u32][count u16][entries], each
/// entry [port u8][len u32][payload].
std::vector<std::uint8_t> raw_frame(std::uint8_t port, std::uint32_t inc,
                                    std::vector<std::uint8_t> payload,
                                    bool valid_checksum = true) {
  std::vector<std::uint8_t> tail;  // count + the single entry
  tail.push_back(1);
  tail.push_back(0);  // count = 1, little endian
  tail.push_back(port);
  const auto len = static_cast<std::uint32_t>(payload.size());
  for (int i = 0; i < 4; ++i) {
    tail.push_back(static_cast<std::uint8_t>(len >> (8 * i)));
  }
  tail.insert(tail.end(), payload.begin(), payload.end());
  std::uint32_t h = 2166136261u;
  auto mix = [&h](std::uint8_t byte) {
    h ^= byte;
    h *= 16777619u;
  };
  for (int i = 0; i < 4; ++i) mix(static_cast<std::uint8_t>(inc >> (8 * i)));
  for (std::uint8_t byte : tail) mix(byte);
  if (!valid_checksum) h ^= 1;
  std::vector<std::uint8_t> out;
  for (int i = 0; i < 4; ++i) {
    out.push_back(static_cast<std::uint8_t>(inc >> (8 * i)));
  }
  for (int i = 0; i < 4; ++i) {
    out.push_back(static_cast<std::uint8_t>(h >> (8 * i)));
  }
  out.insert(out.end(), tail.begin(), tail.end());
  return out;
}

std::vector<std::uint8_t> u32_payload(std::uint32_t v) {
  Encoder enc;
  enc.put_u32(v);
  return {enc.bytes().begin(), enc.bytes().end()};
}

TEST_F(TransportTest, HandRolledFrameMatchesSenderFormat) {
  NodeRuntime a(net_), b(net_);
  Recorder h;
  b.register_port(Port::kApp, h);
  b.on_packet(a.id(), raw_frame(3, 0, u32_payload(42)));
  ASSERT_EQ(h.values, std::vector<std::uint32_t>{42});
  EXPECT_EQ(b.stats().malformed_frames, 0u);
}

TEST_F(TransportTest, ShortAndCorruptFramesAreCountedAndDropped) {
  NodeRuntime a(net_), b(net_);
  Recorder h;
  b.register_port(Port::kApp, h);
  b.on_packet(a.id(), std::vector<std::uint8_t>{});            // empty
  b.on_packet(a.id(), std::vector<std::uint8_t>(kFrameHeaderBytes - 1, 3));
  b.on_packet(a.id(), raw_frame(3, 0, u32_payload(42), /*valid=*/false));
  EXPECT_TRUE(h.values.empty());
  EXPECT_EQ(b.stats().malformed_frames, 3u);
}

TEST_F(TransportTest, StaleIncarnationFramesAreDropped) {
  NodeRuntime a(net_), b(net_);
  Recorder h;
  b.register_port(Port::kApp, h);
  b.on_packet(a.id(), raw_frame(3, 5, u32_payload(1)));  // learns inc 5
  b.on_packet(a.id(), raw_frame(3, 4, u32_payload(2)));  // ghost of inc 4
  b.on_packet(a.id(), raw_frame(3, 5, u32_payload(3)));
  b.on_packet(a.id(), raw_frame(3, 6, u32_payload(4)));  // newer is fine
  EXPECT_EQ(h.values, (std::vector<std::uint32_t>{1, 3, 4}));
  EXPECT_EQ(b.stats().stale_incarnation_drops, 1u);
}

TEST_F(TransportTest, CorruptedIncarnationCannotPoisonPeerTracking) {
  // A bit flip in the incarnation field fails the checksum, so it must not
  // raise the tracked peer incarnation (which would make every genuine
  // frame from then on look stale — corruption would become total deafness).
  NodeRuntime a(net_), b(net_);
  Recorder h;
  b.register_port(Port::kApp, h);
  auto forged = raw_frame(3, 0, u32_payload(1));
  forged[1] ^= 0xFF;  // corrupt the incarnation byte in transit
  b.on_packet(a.id(), forged);
  EXPECT_EQ(b.stats().malformed_frames, 1u);
  b.on_packet(a.id(), raw_frame(3, 0, u32_payload(2)));
  EXPECT_EQ(h.values, std::vector<std::uint32_t>{2});
  EXPECT_EQ(b.stats().stale_incarnation_drops, 0u);
}

TEST_F(TransportTest, DemuxCountsUnboundPortAndDecodeErrors) {
  NodeRuntime a(net_), b(net_);
  Thrower thrower;
  b.register_port(Port::kApp, thrower);
  b.on_packet(a.id(), raw_frame(2, 0, u32_payload(1)));  // kNaming: unbound
  b.on_packet(a.id(), raw_frame(7, 0, u32_payload(1)));  // out of range
  b.on_packet(a.id(), raw_frame(3, 0, {0x01}));          // Thrower wants a u64
  EXPECT_EQ(b.stats().unbound_port_drops, 2u);
  EXPECT_EQ(b.stats().decode_errors, 1u);
}

TEST_F(TransportTest, InFlightPacketsDieWithTheTargetIncarnation) {
  NodeRuntime a(net_);
  auto b = std::make_unique<NodeRuntime>(net_);
  const NodeId bid = b->id();
  Recorder h_old;
  b->register_port(Port::kApp, h_old);

  Encoder payload;
  payload.put_u32(7);
  a.send(Port::kApp, bid, payload);  // in flight toward incarnation 0
  net_.crash(bid);
  b = std::make_unique<NodeRuntime>(net_, bid, 1);  // reborn before arrival
  Recorder h_new;
  b->register_port(Port::kApp, h_new);
  sim_.run();

  EXPECT_TRUE(h_old.values.empty());
  EXPECT_TRUE(h_new.values.empty());
  EXPECT_EQ(net_.stats().stale_epoch_drops, 1u);
  EXPECT_EQ(net_.crash_epoch(bid), 1u);

  // The revived node sends and receives normally.
  Encoder fresh;
  fresh.put_u32(9);
  a.send(Port::kApp, bid, fresh);
  sim_.run();
  EXPECT_EQ(h_new.values, std::vector<std::uint32_t>{9});
}

TEST_F(TransportTest, RestartedNodeTagsFramesWithItsIncarnation) {
  auto a = std::make_unique<NodeRuntime>(net_);
  NodeRuntime b(net_);
  const NodeId aid = a->id();
  Recorder h;
  b.register_port(Port::kApp, h);

  net_.crash(aid);
  a = std::make_unique<NodeRuntime>(net_, aid, 3);
  EXPECT_EQ(a->incarnation(), 3u);
  Encoder payload;
  payload.put_u32(1);
  a->send(Port::kApp, b.id(), payload);
  sim_.run();
  ASSERT_EQ(h.values, std::vector<std::uint32_t>{1});

  // b now knows incarnation 3; a hand-delivered ghost from inc 2 is refused.
  b.on_packet(aid, raw_frame(3, 2, u32_payload(99)));
  EXPECT_EQ(h.values, std::vector<std::uint32_t>{1});
  EXPECT_EQ(b.stats().stale_incarnation_drops, 1u);
}

TEST_F(TransportTest, StaleTimersDieWithTheIncarnation) {
  auto a = std::make_unique<NodeRuntime>(net_);
  const NodeId aid = a->id();
  bool old_fired = false;
  bool new_fired = false;
  a->after(1'000, [&] { old_fired = true; });
  net_.crash(aid);
  // The old runtime (and everything its timers point into) is destroyed;
  // the epoch guard is what keeps the stale timer from touching it.
  a = std::make_unique<NodeRuntime>(net_, aid, 1);
  a->after(2'000, [&] { new_fired = true; });
  sim_.run();
  EXPECT_FALSE(old_fired);
  EXPECT_TRUE(new_fired);
}

TEST_F(TransportTest, CorruptionInTransitIsContained) {
  sim::NetworkConfig cfg;
  cfg.corrupt_probability = 1.0;  // every delivery mangled
  sim::Network lossy(sim_, cfg);
  NodeRuntime a(lossy), b(lossy);
  Recorder h;
  b.register_port(Port::kApp, h);
  for (int i = 0; i < 64; ++i) {
    Encoder payload;
    payload.put_u32(static_cast<std::uint32_t>(i));
    a.send(Port::kApp, b.id(), payload);
  }
  sim_.run();
  // Corruption degrades to loss, never to a wrong value: a mangled frame
  // fails the length check or the checksum and is dropped. (A frame can
  // still arrive intact — two flips of the same bit cancel — so deliveries
  // are allowed, but only with byte-exact payloads.)
  EXPECT_EQ(lossy.stats().corruptions, 64u);
  EXPECT_EQ(b.stats().malformed_frames + h.values.size(), 64u);
  EXPECT_GT(b.stats().malformed_frames, 0u);
  for (std::uint32_t v : h.values) EXPECT_LT(v, 64u);
}

}  // namespace
}  // namespace plwg::transport
