// Node runtime: port demultiplexing, framing, malformed-input resilience,
// crash-aware timers, and the process/node identity mapping.
#include "transport/node_runtime.hpp"

#include <gtest/gtest.h>

#include "sim/network.hpp"
#include "sim/simulator.hpp"

namespace plwg::transport {
namespace {

struct Recorder : PortHandler {
  void on_message(NodeId from, Decoder& dec) override {
    froms.push_back(from);
    values.push_back(dec.get_u32());
  }
  std::vector<NodeId> froms;
  std::vector<std::uint32_t> values;
};

struct Thrower : PortHandler {
  void on_message(NodeId, Decoder& dec) override {
    (void)dec.get_u64();  // demands more bytes than any sender provides
  }
};

class TransportTest : public ::testing::Test {
 protected:
  TransportTest() : net_(sim_, sim::NetworkConfig{}) {}
  sim::Simulator sim_;
  sim::Network net_;
};

TEST_F(TransportTest, RoutesByPort) {
  NodeRuntime a(net_), b(net_);
  Recorder vsync_handler, naming_handler;
  b.register_port(Port::kVsync, vsync_handler);
  b.register_port(Port::kNaming, naming_handler);

  Encoder payload;
  payload.put_u32(7);
  a.send(Port::kVsync, b.id(), payload);
  Encoder payload2;
  payload2.put_u32(9);
  a.send(Port::kNaming, b.id(), payload2);
  sim_.run();

  ASSERT_EQ(vsync_handler.values.size(), 1u);
  EXPECT_EQ(vsync_handler.values[0], 7u);
  EXPECT_EQ(vsync_handler.froms[0], a.id());
  ASSERT_EQ(naming_handler.values.size(), 1u);
  EXPECT_EQ(naming_handler.values[0], 9u);
}

TEST_F(TransportTest, UnboundPortIsDropped) {
  NodeRuntime a(net_), b(net_);
  Encoder payload;
  payload.put_u32(1);
  a.send(Port::kApp, b.id(), payload);  // no handler registered at b
  sim_.run();  // must not crash
  SUCCEED();
}

TEST_F(TransportTest, MalformedPayloadIsContained) {
  NodeRuntime a(net_), b(net_);
  Thrower handler;
  b.register_port(Port::kApp, handler);
  Encoder tiny;
  tiny.put_u8(1);  // Thrower wants a u64
  a.send(Port::kApp, b.id(), tiny);
  sim_.run();  // the CodecError is logged, not propagated
  SUCCEED();
}

TEST_F(TransportTest, MulticastToProcessIds) {
  NodeRuntime a(net_), b(net_), c(net_);
  Recorder hb, hc;
  b.register_port(Port::kApp, hb);
  c.register_port(Port::kApp, hc);
  const std::vector<ProcessId> dests{b.process_id(), c.process_id()};
  Encoder payload;
  payload.put_u32(5);
  a.multicast(Port::kApp, dests, payload);
  sim_.run();
  EXPECT_EQ(hb.values, std::vector<std::uint32_t>{5});
  EXPECT_EQ(hc.values, std::vector<std::uint32_t>{5});
}

TEST_F(TransportTest, TimerSkippedAfterCrash) {
  NodeRuntime a(net_);
  bool fired = false;
  a.after(1'000, [&] { fired = true; });
  net_.crash(a.id());
  sim_.run();
  EXPECT_FALSE(fired);
}

TEST_F(TransportTest, TimerFiresOnLiveNode) {
  NodeRuntime a(net_);
  Time fired_at = -1;
  a.after(2'500, [&] { fired_at = a.now(); });
  sim_.run();
  EXPECT_EQ(fired_at, 2'500);
}

TEST_F(TransportTest, ProcessNodeIdentityMapping) {
  NodeRuntime a(net_), b(net_);
  EXPECT_EQ(node_of(a.process_id()), a.id());
  EXPECT_EQ(process_of(b.id()), b.process_id());
  EXPECT_NE(a.process_id(), b.process_id());
}

TEST_F(TransportTest, DoubleRegisterSamePortAsserts) {
  NodeRuntime a(net_);
  Recorder h1, h2;
  a.register_port(Port::kApp, h1);
  EXPECT_DEATH(a.register_port(Port::kApp, h2), "port already registered");
}

}  // namespace
}  // namespace plwg::transport
