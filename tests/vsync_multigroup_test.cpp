// A host in several heavy-weight groups at once: isolation of state and
// traffic between endpoints, independent view changes, and endpoint stats.
#include <gtest/gtest.h>

#include "vsync_fixture.hpp"

namespace plwg::vsync::testing {
namespace {

class VsyncMultiGroupTest : public VsyncFixture {};

TEST_F(VsyncMultiGroupTest, GroupsOnOneHostAreIsolated) {
  build(3);
  const HwgId g1 = host(0).allocate_group_id();
  const HwgId g2 = host(0).allocate_group_id();
  host(0).create_group(g1, user(0));
  host(0).create_group(g2, user(0));
  host(1).join_group(g1, MemberSet{pid(0)}, user(1));
  host(2).join_group(g2, MemberSet{pid(0)}, user(2));
  ASSERT_TRUE(run_until(
      [&] {
        return converged(g1, {0, 1}, members_of({0, 1})) &&
               converged(g2, {0, 2}, members_of({0, 2}));
      },
      10'000'000));
  host(0).send(g1, payload(1));
  host(0).send(g2, payload(2));
  ASSERT_TRUE(run_until(
      [&] {
        return user(1).total_delivered(g1) == 1 &&
               user(2).total_delivered(g2) == 1;
      },
      5'000'000));
  EXPECT_EQ(user(1).total_delivered(g2), 0u);
  EXPECT_EQ(user(2).total_delivered(g1), 0u);
  EXPECT_EQ(host(0).groups().size(), 2u);
  EXPECT_EQ(host(1).groups().size(), 1u);
}

TEST_F(VsyncMultiGroupTest, ViewChangeInOneGroupLeavesOthersUntouched) {
  build(3);
  const HwgId g1 = host(0).allocate_group_id();
  const HwgId g2 = host(0).allocate_group_id();
  host(0).create_group(g1, user(0));
  host(0).create_group(g2, user(0));
  for (std::size_t i : {1ul, 2ul}) {
    host(i).join_group(g1, MemberSet{pid(0)}, user(i));
    host(i).join_group(g2, MemberSet{pid(0)}, user(i));
  }
  ASSERT_TRUE(run_until(
      [&] {
        return converged(g1, {0, 1, 2}, members_of({0, 1, 2})) &&
               converged(g2, {0, 1, 2}, members_of({0, 1, 2}));
      },
      10'000'000));
  const ViewId g2_view = host(0).view_of(g2)->id;
  host(2).leave_group(g1);  // view change in g1 only
  ASSERT_TRUE(run_until(
      [&] { return converged(g1, {0, 1}, members_of({0, 1})); }, 10'000'000));
  EXPECT_EQ(host(0).view_of(g2)->id, g2_view);
  EXPECT_EQ(host(0).view_of(g2)->members, members_of({0, 1, 2}));
}

TEST_F(VsyncMultiGroupTest, PartitionSplitsEveryGroupIndependently) {
  build(4);
  const HwgId g1 = host(0).allocate_group_id();
  const HwgId g2 = host(1).allocate_group_id();
  host(0).create_group(g1, user(0));
  host(1).create_group(g2, user(1));
  host(1).join_group(g1, MemberSet{pid(0)}, user(1));
  host(2).join_group(g1, MemberSet{pid(0)}, user(2));
  host(2).join_group(g2, MemberSet{pid(1)}, user(2));
  host(3).join_group(g2, MemberSet{pid(1)}, user(3));
  ASSERT_TRUE(run_until(
      [&] {
        return converged(g1, {0, 1, 2}, members_of({0, 1, 2})) &&
               converged(g2, {1, 2, 3}, members_of({1, 2, 3}));
      },
      15'000'000));
  net_->set_partitions({{node(0), node(1)}, {node(2), node(3)}});
  ASSERT_TRUE(run_until(
      [&] {
        return converged(g1, {0, 1}, members_of({0, 1})) &&
               converged(g1, {2}, members_of({2})) &&
               converged(g2, {1}, members_of({1})) &&
               converged(g2, {2, 3}, members_of({2, 3}));
      },
      20'000'000));
  net_->heal();
  ASSERT_TRUE(run_until(
      [&] {
        return converged(g1, {0, 1, 2}, members_of({0, 1, 2})) &&
               converged(g2, {1, 2, 3}, members_of({1, 2, 3}));
      },
      40'000'000));
}

TEST_F(VsyncMultiGroupTest, EndpointStatsAreTracked) {
  build(2);
  const HwgId gid = host(0).allocate_group_id();
  host(0).create_group(gid, user(0));
  host(1).join_group(gid, MemberSet{pid(0)}, user(1));
  ASSERT_TRUE(run_until(
      [&] { return converged(gid, {0, 1}, members_of({0, 1})); }, 10'000'000));
  host(0).send(gid, payload(1));
  host(1).send(gid, payload(2));
  ASSERT_TRUE(run_until(
      [&] { return user(0).total_delivered(gid) == 2; }, 5'000'000));
  const GroupEndpoint::Stats& s0 = host(0).endpoint(gid)->stats();
  EXPECT_GE(s0.views_installed, 2u);  // singleton + joined view
  EXPECT_EQ(s0.msgs_sent, 1u);
  EXPECT_EQ(s0.msgs_delivered, 2u);
  EXPECT_GE(s0.flushes_started, 1u);  // the join's view change
}

TEST_F(VsyncMultiGroupTest, ManyGroupsOnOneHostScale) {
  build(2);
  std::vector<HwgId> gids;
  for (int g = 0; g < 12; ++g) {
    const HwgId gid = host(0).allocate_group_id();
    host(0).create_group(gid, user(0));
    host(1).join_group(gid, MemberSet{pid(0)}, user(1));
    gids.push_back(gid);
  }
  ASSERT_TRUE(run_until(
      [&] {
        for (HwgId gid : gids) {
          if (!converged(gid, {0, 1}, members_of({0, 1}))) return false;
        }
        return true;
      },
      30'000'000));
  for (HwgId gid : gids) host(0).send(gid, payload(3));
  ASSERT_TRUE(run_until(
      [&] {
        for (HwgId gid : gids) {
          if (user(1).total_delivered(gid) != 1) return false;
        }
        return true;
      },
      15'000'000));
}

}  // namespace
}  // namespace plwg::vsync::testing
