// The run-time switching protocol and the Fig. 1 policies acting through it:
// interference-rule escapes, share-rule collapses, shrink-rule departures,
// and forward-pointer redirection of stale joiners.
#include <gtest/gtest.h>

#include "lwg_fixture.hpp"

namespace plwg::lwg::testing {
namespace {

harness::WorldConfig config(std::size_t processes,
                            Duration policy_period = 2'000'000,
                            Duration shrink_delay = 3'000'000) {
  harness::WorldConfig cfg;
  cfg.num_processes = processes;
  cfg.lwg.mode = MappingMode::kDynamic;
  cfg.lwg.policy_period_us = policy_period;
  cfg.lwg.shrink_delay_us = shrink_delay;
  return cfg;
}

class LwgSwitchTest : public LwgFixture {};

TEST_F(LwgSwitchTest, InterferenceRuleEvictsMinorityLwg) {
  build(config(8));
  // A big LWG of 8 shares its HWG with a tiny LWG of 2 that joined later
  // (optimistic mapping put it on the existing HWG).
  form_lwg(LwgId{1}, {0, 1, 2, 3, 4, 5, 6, 7});
  form_lwg(LwgId{2}, {0, 1});
  ASSERT_EQ(lwg(0).hwg_of(LwgId{1}), lwg(0).hwg_of(LwgId{2}));
  // The interference rule (|lwg| = 2 <= 8/4) must switch LWG 2 away.
  ASSERT_TRUE(run_until(
      [&] {
        const auto h1 = lwg(0).hwg_of(LwgId{1});
        const auto h2a = lwg(0).hwg_of(LwgId{2});
        const auto h2b = lwg(1).hwg_of(LwgId{2});
        return h1 && h2a && h2b && *h2a != *h1 && *h2a == *h2b &&
               lwg(0).view_of(LwgId{2}) != nullptr &&
               lwg(0).view_of(LwgId{2})->hwg == *h2a;
      },
      30'000'000));
  // The LWG still works after the switch.
  lwg(0).send(LwgId{2}, payload(9));
  ASSERT_TRUE(run_until([&] { return user(1).total_delivered(LwgId{2}) >= 1; },
                        10'000'000));
}

TEST_F(LwgSwitchTest, ShareRuleCollapsesSimilarHwgs) {
  build(config(4));
  // Force two HWGs with identical membership by creating the LWGs
  // concurrently (each founder creates its own HWG before seeing the other).
  lwg(0).join(LwgId{1}, user(0));
  lwg(1).join(LwgId{2}, user(1));
  ASSERT_TRUE(run_until(
      [&] {
        return lwg(0).view_of(LwgId{1}) != nullptr &&
               lwg(1).view_of(LwgId{2}) != nullptr;
      },
      10'000'000));
  for (std::size_t i : {1ul, 2ul, 3ul}) lwg(i).join(LwgId{1}, user(i));
  for (std::size_t i : {0ul, 2ul, 3ul}) lwg(i).join(LwgId{2}, user(i));
  const MemberSet all = members_of({0, 1, 2, 3});
  ASSERT_TRUE(run_until(
      [&] {
        return lwg_converged(LwgId{1}, {0, 1, 2, 3}, all) &&
               lwg_converged(LwgId{2}, {0, 1, 2, 3}, all);
      },
      20'000'000));
  // If they ended up on different HWGs, the share rule collapses them.
  ASSERT_TRUE(run_until(
      [&] {
        const auto h1 = lwg(0).hwg_of(LwgId{1});
        const auto h2 = lwg(0).hwg_of(LwgId{2});
        return h1 && h2 && *h1 == *h2;
      },
      40'000'000));
}

TEST_F(LwgSwitchTest, ShrinkRuleDissolvesAbandonedHwg) {
  build(config(8));
  form_lwg(LwgId{1}, {0, 1, 2, 3, 4, 5, 6, 7});
  form_lwg(LwgId{2}, {0, 1});
  // After the interference rule moves LWG 2 to its own HWG, processes 0-1
  // are members of two HWGs; everyone else of one. Once LWG 1 dissolves,
  // the shrink rule must make everyone leave its HWG.
  ASSERT_TRUE(run_until(
      [&] {
        const auto h1 = lwg(0).hwg_of(LwgId{1});
        const auto h2 = lwg(0).hwg_of(LwgId{2});
        return h1 && h2 && *h1 != *h2;
      },
      30'000'000));
  for (std::size_t i = 0; i < 8; ++i) lwg(i).leave(LwgId{1});
  ASSERT_TRUE(run_until(
      [&] {
        for (std::size_t i = 2; i < 8; ++i) {
          if (!world().vsync(i).groups().empty()) return false;
        }
        // Processes 0 and 1 keep exactly the HWG carrying LWG 2.
        return world().vsync(0).groups().size() == 1 &&
               world().vsync(1).groups().size() == 1;
      },
      30'000'000));
}

TEST_F(LwgSwitchTest, TrafficSurvivesASwitch) {
  build(config(8));
  form_lwg(LwgId{1}, {0, 1, 2, 3, 4, 5, 6, 7});
  form_lwg(LwgId{2}, {0, 1});
  // Continuous traffic on LWG 2 while the interference rule switches it.
  int sent = 0;
  for (int round = 0; round < 40; ++round) {
    lwg(0).send(LwgId{2}, payload(static_cast<std::uint8_t>(round)));
    ++sent;
    run_for(500'000);
  }
  ASSERT_TRUE(run_until(
      [&] {
        return user(1).total_delivered(LwgId{2}) ==
               static_cast<std::size_t>(sent);
      },
      30'000'000));
  // Both members saw identical delivery sequences despite the switch.
  std::vector<std::uint8_t> seen0, seen1;
  for (const auto& e : user(0).log(LwgId{2}).epochs) {
    for (const auto& [src, data] : e.delivered) seen0.push_back(data[0]);
  }
  for (const auto& e : user(1).log(LwgId{2}).epochs) {
    for (const auto& [src, data] : e.delivered) seen1.push_back(data[0]);
  }
  EXPECT_EQ(seen0, seen1);
  // And the switch really happened.
  EXPECT_GE(lwg(0).stats().switches_completed, 1u);
}

TEST_F(LwgSwitchTest, StaleJoinerIsRedirectedByForwardPointer) {
  build(config(8));
  form_lwg(LwgId{1}, {0, 1, 2, 3, 4, 5, 6, 7});
  form_lwg(LwgId{2}, {0, 1});
  // Wait for the interference switch, so the naming service's *old* entry
  // would be refreshed... instead we simulate staleness by having a new
  // process join while the switch is happening repeatedly. Simpler: wait
  // for the switch, then check forward pointers exist at old HWG members.
  ASSERT_TRUE(run_until(
      [&] {
        const auto h1 = lwg(0).hwg_of(LwgId{1});
        const auto h2 = lwg(0).hwg_of(LwgId{2});
        return h1 && h2 && *h1 != *h2;
      },
      30'000'000));
  // Process 2 (member of the old HWG, never in LWG 2) joins LWG 2 now; even
  // if it raced the naming-service update it must converge.
  lwg(2).join(LwgId{2}, user(2));
  ASSERT_TRUE(run_until(
      [&] { return lwg_converged(LwgId{2}, {0, 1, 2}, members_of({0, 1, 2})); },
      30'000'000));
}

TEST_F(LwgSwitchTest, PoliciesAreQuiescentOnWellMappedGroups) {
  build(config(4));
  form_lwg(LwgId{1}, {0, 1, 2, 3});
  form_lwg(LwgId{2}, {0, 1, 2, 3});
  run_for(20'000'000);  // many policy periods
  // Well-mapped groups: no switches at all (stability, paper Sect. 3.2).
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(lwg(i).stats().switches_started, 0u) << "process " << i;
  }
}

TEST_F(LwgSwitchTest, DisabledPoliciesNeverSwitch) {
  harness::WorldConfig cfg = config(8);
  cfg.lwg.policies_enabled = false;
  build(cfg);
  form_lwg(LwgId{1}, {0, 1, 2, 3, 4, 5, 6, 7});
  form_lwg(LwgId{2}, {0, 1});
  run_for(20'000'000);
  EXPECT_EQ(lwg(0).stats().switches_started, 0u);
  EXPECT_EQ(lwg(0).hwg_of(LwgId{1}), lwg(0).hwg_of(LwgId{2}));
}

}  // namespace
}  // namespace plwg::lwg::testing
