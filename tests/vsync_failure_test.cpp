// Crash handling in the heavy-weight group layer: failure detection, view
// exclusion, coordinator takeover, and message stability across crashes.
#include <gtest/gtest.h>

#include "vsync_fixture.hpp"

namespace plwg::vsync::testing {
namespace {

class VsyncFailureTest : public VsyncFixture {
 protected:
  /// Builds `total` processes and forms a group over the first `n`.
  HwgId form_group(std::size_t n, std::size_t total = 0) {
    build(total == 0 ? n : total);
    const HwgId gid = host(0).allocate_group_id();
    host(0).create_group(gid, user(0));
    std::vector<std::size_t> all{0};
    MemberSet members{pid(0)};
    for (std::size_t i = 1; i < n; ++i) {
      host(i).join_group(gid, MemberSet{pid(0)}, user(i));
      all.push_back(i);
      members.insert(pid(i));
    }
    EXPECT_TRUE(
        run_until([&] { return converged(gid, all, members); }, 10'000'000));
    return gid;
  }
};

TEST_F(VsyncFailureTest, CrashedMemberIsExcluded) {
  const HwgId gid = form_group(4);
  net_->crash(node(3));
  ASSERT_TRUE(run_until(
      [&] { return converged(gid, {0, 1, 2}, members_of({0, 1, 2})); },
      10'000'000));
}

TEST_F(VsyncFailureTest, CrashedCoordinatorIsReplaced) {
  const HwgId gid = form_group(4);
  net_->crash(node(0));  // process 0 is both sequencer and coordinator
  ASSERT_TRUE(run_until(
      [&] { return converged(gid, {1, 2, 3}, members_of({1, 2, 3})); },
      10'000'000));
  // The group still delivers traffic under the new sequencer.
  host(1).send(gid, payload(1));
  ASSERT_TRUE(run_until(
      [&] {
        return user(2).total_delivered(gid) >= 1 &&
               user(3).total_delivered(gid) >= 1;
      },
      5'000'000));
}

TEST_F(VsyncFailureTest, DoubleCrashConvergesToSurvivors) {
  const HwgId gid = form_group(5);
  net_->crash(node(0));
  net_->crash(node(2));
  ASSERT_TRUE(run_until(
      [&] { return converged(gid, {1, 3, 4}, members_of({1, 3, 4})); },
      15'000'000));
}

TEST_F(VsyncFailureTest, CrashDuringTrafficPreservesAgreementOnDeliveries) {
  const HwgId gid = form_group(4);
  for (int m = 0; m < 20; ++m) {
    for (std::size_t i = 0; i < 4; ++i) {
      host(i).send(gid, payload(static_cast<std::uint8_t>(m)));
    }
  }
  run_for(30'000);  // part of the traffic is in flight
  net_->crash(node(0));
  ASSERT_TRUE(run_until(
      [&] { return converged(gid, {1, 2, 3}, members_of({1, 2, 3})); },
      15'000'000));
  // Virtual synchrony: the survivors delivered identical sequences in the
  // view they shared (the one before the exclusion view).
  const auto& e1 = user(1).log(gid).epochs;
  const auto& e2 = user(2).log(gid).epochs;
  const auto& e3 = user(3).log(gid).epochs;
  ASSERT_GE(e1.size(), 2u);
  const auto& d1 = e1[e1.size() - 2].delivered;
  const auto& d2 = e2[e2.size() - 2].delivered;
  const auto& d3 = e3[e3.size() - 2].delivered;
  EXPECT_EQ(d1, d2);
  EXPECT_EQ(d2, d3);
}

TEST_F(VsyncFailureTest, SurvivorOfTotalCrashKeepsSingletonView) {
  const HwgId gid = form_group(3);
  net_->crash(node(1));
  net_->crash(node(2));
  ASSERT_TRUE(run_until([&] { return converged(gid, {0}, members_of({0})); },
                        15'000'000));
  host(0).send(gid, payload(8));
  ASSERT_TRUE(
      run_until([&] { return user(0).total_delivered(gid) >= 1; }, 2'000'000));
}

TEST_F(VsyncFailureTest, JoinThroughDeadContactSucceedsViaLiveOne) {
  const HwgId gid = form_group(3, /*total=*/4);
  net_->crash(node(0));
  ASSERT_TRUE(run_until(
      [&] { return converged(gid, {1, 2}, members_of({1, 2})); }, 15'000'000));
  // The joiner's contact list names the dead coordinator first.
  host(3).join_group(gid, MemberSet{pid(0), pid(1)}, user(3));
  ASSERT_TRUE(run_until(
      [&] { return converged(gid, {1, 2, 3}, members_of({1, 2, 3})); },
      15'000'000));
}

TEST_F(VsyncFailureTest, MessageFromCrashedSenderStillStabilizes) {
  const HwgId gid = form_group(3);
  host(0).send(gid, payload(77));
  run_for(400);  // the ORDERED multicast is on the wire / partially received
  net_->crash(node(0));
  ASSERT_TRUE(run_until(
      [&] { return converged(gid, {1, 2}, members_of({1, 2})); }, 15'000'000));
  EXPECT_EQ(user(1).total_delivered(gid), user(2).total_delivered(gid));
}

TEST_F(VsyncFailureTest, LossyNetworkStillDeliversEverythingInOrder) {
  sim::NetworkConfig net_cfg;
  net_cfg.drop_probability = 0.03;
  net_cfg.jitter_us = 300;
  build(3, net_cfg);
  const HwgId gid = host(0).allocate_group_id();
  host(0).create_group(gid, user(0));
  host(1).join_group(gid, MemberSet{pid(0)}, user(1));
  host(2).join_group(gid, MemberSet{pid(0)}, user(2));
  ASSERT_TRUE(run_until(
      [&] { return converged(gid, {0, 1, 2}, members_of({0, 1, 2})); },
      20'000'000));
  constexpr int kMsgs = 30;
  for (int m = 0; m < kMsgs; ++m) {
    host(m % 3).send(gid, payload(static_cast<std::uint8_t>(m)));
  }
  ASSERT_TRUE(run_until(
      [&] {
        // NACK repair (and, if a view change intervened, the flush cut)
        // must eventually deliver everything everywhere.
        return user(0).total_delivered(gid) >= kMsgs &&
               user(1).total_delivered(gid) >= kMsgs &&
               user(2).total_delivered(gid) >= kMsgs;
      },
      30'000'000));
  // Identical delivery order at every member, view epoch by view epoch.
  EXPECT_EQ(user(0).log(gid).epochs.back().delivered,
            user(1).log(gid).epochs.back().delivered);
}

}  // namespace
}  // namespace plwg::vsync::testing
