#include "util/rng.hpp"

#include <gtest/gtest.h>

#include <set>

namespace plwg {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.next_u64(), b.next_u64());
  }
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next_u64() == b.next_u64()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(Rng, NextBelowStaysInRange) {
  Rng rng(7);
  for (int i = 0; i < 10'000; ++i) {
    EXPECT_LT(rng.next_below(17), 17u);
  }
}

TEST(Rng, NextBelowCoversAllResidues) {
  Rng rng(11);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.next_below(5));
  EXPECT_EQ(seen.size(), 5u);
}

TEST(Rng, NextRangeInclusiveBounds) {
  Rng rng(3);
  bool hit_lo = false, hit_hi = false;
  for (int i = 0; i < 10'000; ++i) {
    const std::int64_t v = rng.next_range(-2, 2);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
    hit_lo |= v == -2;
    hit_hi |= v == 2;
  }
  EXPECT_TRUE(hit_lo);
  EXPECT_TRUE(hit_hi);
}

TEST(Rng, DoubleInUnitInterval) {
  Rng rng(5);
  for (int i = 0; i < 10'000; ++i) {
    const double d = rng.next_double();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(Rng, BernoulliRoughlyFair) {
  Rng rng(9);
  int heads = 0;
  for (int i = 0; i < 10'000; ++i) heads += rng.next_bool(0.3) ? 1 : 0;
  EXPECT_NEAR(heads, 3000, 300);
}

TEST(Rng, ExponentialHasRequestedMean) {
  Rng rng(13);
  double sum = 0;
  constexpr int kN = 20'000;
  for (int i = 0; i < kN; ++i) sum += rng.next_exponential(50.0);
  EXPECT_NEAR(sum / kN, 50.0, 2.5);
}

TEST(Rng, ForkProducesIndependentStream) {
  Rng parent(21);
  Rng child = parent.fork();
  // The child must differ from a fresh generator with the parent's seed.
  Rng fresh(21);
  EXPECT_NE(child.next_u64(), fresh.next_u64());
}

}  // namespace
}  // namespace plwg
