#include "sim/simulator.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <vector>

namespace plwg::sim {
namespace {

TEST(Simulator, RunsEventsInTimeOrder) {
  Simulator sim;
  std::vector<int> order;
  sim.schedule_at(300, [&] { order.push_back(3); });
  sim.schedule_at(100, [&] { order.push_back(1); });
  sim.schedule_at(200, [&] { order.push_back(2); });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sim.now(), 300);
}

TEST(Simulator, EqualTimesFireInSchedulingOrder) {
  Simulator sim;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    sim.schedule_at(50, [&order, i] { order.push_back(i); });
  }
  sim.run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[i], i);
}

TEST(Simulator, ScheduleAfterIsRelative) {
  Simulator sim;
  Time fired_at = -1;
  sim.schedule_at(100, [&] {
    sim.schedule_after(50, [&] { fired_at = sim.now(); });
  });
  sim.run();
  EXPECT_EQ(fired_at, 150);
}

TEST(Simulator, CancelPreventsExecution) {
  Simulator sim;
  bool fired = false;
  const TimerId id = sim.schedule_at(10, [&] { fired = true; });
  sim.cancel(id);
  sim.run();
  EXPECT_FALSE(fired);
  // Cancelling again (or a bogus id) is a harmless no-op.
  sim.cancel(id);
  sim.cancel(9999);
}

TEST(Simulator, RunUntilAdvancesClockEvenWithoutEvents) {
  Simulator sim;
  EXPECT_EQ(sim.run_until(5000), 0u);
  EXPECT_EQ(sim.now(), 5000);
}

TEST(Simulator, RunUntilLeavesLaterEventsPending) {
  Simulator sim;
  bool early = false, late = false;
  sim.schedule_at(100, [&] { early = true; });
  sim.schedule_at(900, [&] { late = true; });
  sim.run_until(500);
  EXPECT_TRUE(early);
  EXPECT_FALSE(late);
  EXPECT_EQ(sim.pending_events(), 1u);
  sim.run();
  EXPECT_TRUE(late);
}

TEST(Simulator, EventsScheduledDuringRunUntilWithinWindowFire) {
  Simulator sim;
  int count = 0;
  std::function<void()> chain = [&] {
    ++count;
    if (count < 5) sim.schedule_after(10, chain);
  };
  sim.schedule_at(0, chain);
  sim.run_until(100);
  EXPECT_EQ(count, 5);
}

TEST(Simulator, StepRunsExactlyOneEvent) {
  Simulator sim;
  int count = 0;
  sim.schedule_at(1, [&] { ++count; });
  sim.schedule_at(2, [&] { ++count; });
  EXPECT_TRUE(sim.step());
  EXPECT_EQ(count, 1);
  EXPECT_TRUE(sim.step());
  EXPECT_FALSE(sim.step());
  EXPECT_EQ(count, 2);
}

TEST(Simulator, TracksTotalEventsRun) {
  Simulator sim;
  for (int i = 0; i < 7; ++i) sim.schedule_at(i, [] {});
  sim.run();
  EXPECT_EQ(sim.total_events_run(), 7u);
}

// Regression for the lazy-deletion queue: a protocol that churns timers
// (schedule, cancel, reschedule — the heartbeat/retransmission pattern) must
// not grow the event queue with dead entries. One million churn rounds with
// only a handful of live timers must keep the queue within the compaction
// bound of twice the live count (plus the small no-compact floor).
TEST(Simulator, MillionTimerChurnKeepsQueueBounded) {
  Simulator sim;
  constexpr int kLive = 8;
  constexpr int kRounds = 1'000'000;
  TimerId pending[kLive] = {};
  std::uint64_t fired = 0;
  std::size_t max_queued = 0;
  for (int i = 0; i < kRounds; ++i) {
    const int slot = i % kLive;
    sim.cancel(pending[slot]);
    pending[slot] = sim.schedule_after(100, [&fired] { ++fired; });
    max_queued = std::max(max_queued, sim.queued_events());
  }
  EXPECT_LE(sim.pending_events(), static_cast<std::size_t>(kLive));
  // 2x live + the kCompactFloor worth of slack the compactor tolerates.
  EXPECT_LE(max_queued, 2u * kLive + 64u);
  sim.run();
  EXPECT_EQ(fired, static_cast<std::uint64_t>(kLive));
  EXPECT_EQ(sim.pending_events(), 0u);
  EXPECT_EQ(sim.queued_events(), 0u);
}

// Cancelled-then-reused slots must never fire a stale callback: ids carry a
// generation, so a cancel aimed at an old id whose slot was reused is a
// no-op for the new timer.
TEST(Simulator, StaleIdCancelDoesNotHitReusedSlot) {
  Simulator sim;
  int first = 0;
  int second = 0;
  const TimerId a = sim.schedule_at(5, [&first] { ++first; });
  sim.cancel(a);
  // The freed slot is reused immediately by the next schedule.
  const TimerId b = sim.schedule_at(6, [&second] { ++second; });
  sim.cancel(a);  // stale id — must not cancel b
  sim.run();
  EXPECT_EQ(first, 0);
  EXPECT_EQ(second, 1);
  (void)b;
}

}  // namespace
}  // namespace plwg::sim
