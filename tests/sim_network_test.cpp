#include "sim/network.hpp"

#include <gtest/gtest.h>

#include <array>
#include <vector>

namespace plwg::sim {
namespace {

struct Recorder : NetHandler {
  struct Packet {
    NodeId from;
    std::vector<std::uint8_t> data;
    Time at;
  };
  explicit Recorder(Simulator& sim) : sim_(sim) {}
  void on_packet(NodeId from, std::span<const std::uint8_t> data) override {
    packets.push_back(Packet{from, {data.begin(), data.end()}, sim_.now()});
  }
  Simulator& sim_;
  std::vector<Packet> packets;
};

struct NetFixture : ::testing::Test {
  NetFixture() {
    NetworkConfig cfg;
    cfg.propagation_delay_us = 50;
    cfg.node_process_cost_us = 100;
    cfg.bandwidth_bps = 10e6;
    cfg.header_bytes = 46;
    config = cfg;
  }
  void build(std::size_t n) {
    net = std::make_unique<Network>(sim, config);
    for (std::size_t i = 0; i < n; ++i) {
      handlers.push_back(std::make_unique<Recorder>(sim));
      nodes.push_back(net->add_node(*handlers.back()));
    }
  }
  Simulator sim;
  NetworkConfig config;
  std::unique_ptr<Network> net;
  std::vector<std::unique_ptr<Recorder>> handlers;
  std::vector<NodeId> nodes;
};

TEST_F(NetFixture, UnicastDelivers) {
  build(2);
  net->unicast(nodes[0], nodes[1], {1, 2, 3});
  sim.run();
  ASSERT_EQ(handlers[1]->packets.size(), 1u);
  EXPECT_EQ(handlers[1]->packets[0].from, nodes[0]);
  EXPECT_EQ(handlers[1]->packets[0].data, (std::vector<std::uint8_t>{1, 2, 3}));
  EXPECT_EQ(handlers[0]->packets.size(), 0u);
}

TEST_F(NetFixture, MulticastReachesAllListedDestinations) {
  build(4);
  const std::vector<NodeId> dests{nodes[1], nodes[2], nodes[3]};
  net->multicast(nodes[0], dests, {9});
  sim.run();
  for (int i = 1; i <= 3; ++i) {
    EXPECT_EQ(handlers[i]->packets.size(), 1u) << "node " << i;
  }
}

TEST_F(NetFixture, LoopbackDeliveryWorks) {
  build(1);
  net->unicast(nodes[0], nodes[0], {7});
  sim.run();
  ASSERT_EQ(handlers[0]->packets.size(), 1u);
}

TEST_F(NetFixture, DeliveryLatencyIncludesBusAndProcessing) {
  build(2);
  net->unicast(nodes[0], nodes[1], std::vector<std::uint8_t>(54, 0));
  sim.run();
  // tx time for (54 + 46) bytes at 10 Mbps = 80 us (+1 rounding),
  // + 50 us propagation + 100 us processing.
  ASSERT_EQ(handlers[1]->packets.size(), 1u);
  EXPECT_EQ(handlers[1]->packets[0].at, 81 + 50 + 100);
}

TEST_F(NetFixture, SharedBusSerializesTransmissions) {
  build(3);
  // Two senders transmit simultaneously: the second waits for the bus.
  net->unicast(nodes[0], nodes[2], std::vector<std::uint8_t>(54, 0));
  net->unicast(nodes[1], nodes[2], std::vector<std::uint8_t>(54, 0));
  sim.run();
  ASSERT_EQ(handlers[2]->packets.size(), 2u);
  const Time t0 = handlers[2]->packets[0].at;
  const Time t1 = handlers[2]->packets[1].at;
  // Second arrival is one extra transmission *and* one processing slot later.
  EXPECT_GE(t1 - t0, 81);
}

TEST_F(NetFixture, PointToPointModeSkipsBusQueue) {
  config.shared_bus = false;
  build(3);
  net->unicast(nodes[0], nodes[2], std::vector<std::uint8_t>(54, 0));
  net->unicast(nodes[1], nodes[2], std::vector<std::uint8_t>(54, 0));
  sim.run();
  ASSERT_EQ(handlers[2]->packets.size(), 2u);
  // Same arrival instant; serialization happens only in the CPU queue.
  EXPECT_EQ(handlers[2]->packets[1].at - handlers[2]->packets[0].at,
            config.node_process_cost_us);
}

TEST_F(NetFixture, PartitionBlocksCrossTraffic) {
  build(4);
  net->set_partitions({{nodes[0], nodes[1]}, {nodes[2], nodes[3]}});
  EXPECT_TRUE(net->reachable(nodes[0], nodes[1]));
  EXPECT_FALSE(net->reachable(nodes[1], nodes[2]));
  net->unicast(nodes[0], nodes[2], {1});
  net->unicast(nodes[0], nodes[1], {2});
  sim.run();
  EXPECT_EQ(handlers[2]->packets.size(), 0u);
  EXPECT_EQ(handlers[1]->packets.size(), 1u);
}

TEST_F(NetFixture, HealRestoresConnectivity) {
  build(2);
  net->set_partitions({{nodes[0]}, {nodes[1]}});
  net->unicast(nodes[0], nodes[1], {1});
  net->heal();
  net->unicast(nodes[0], nodes[1], {2});
  sim.run();
  ASSERT_EQ(handlers[1]->packets.size(), 1u);
  EXPECT_EQ(handlers[1]->packets[0].data[0], 2);
}

TEST_F(NetFixture, CrashedNodeNeitherSendsNorReceives) {
  build(2);
  net->crash(nodes[1]);
  EXPECT_TRUE(net->crashed(nodes[1]));
  net->unicast(nodes[0], nodes[1], {1});
  net->unicast(nodes[1], nodes[0], {2});
  sim.run();
  EXPECT_EQ(handlers[1]->packets.size(), 0u);
  EXPECT_EQ(handlers[0]->packets.size(), 0u);
}

TEST_F(NetFixture, DropProbabilityDropsDeliveries) {
  config.drop_probability = 1.0;
  build(2);
  net->unicast(nodes[0], nodes[1], {1});
  sim.run();
  EXPECT_EQ(handlers[1]->packets.size(), 0u);
  EXPECT_EQ(net->stats().drops, 1u);
}

TEST_F(NetFixture, StatsAccounting) {
  build(3);
  const std::vector<NodeId> dests{nodes[1], nodes[2]};
  net->multicast(nodes[0], dests, std::vector<std::uint8_t>(10, 0));
  sim.run();
  const NetworkStats& s = net->stats();
  EXPECT_EQ(s.frames_sent, 1u);     // one bus occupancy for the multicast
  EXPECT_EQ(s.deliveries, 2u);
  EXPECT_EQ(s.bytes_sent, 10u);
  EXPECT_EQ(s.bytes_on_wire, 56u);
  EXPECT_GT(s.bus_busy_us, 0);
}

TEST_F(NetFixture, SeparatePartitionsHaveSeparateBuses) {
  build(4);
  net->set_partitions({{nodes[0], nodes[1]}, {nodes[2], nodes[3]}});
  // Simultaneous sends in different partitions do not queue on each other.
  net->unicast(nodes[0], nodes[1], std::vector<std::uint8_t>(54, 0));
  net->unicast(nodes[2], nodes[3], std::vector<std::uint8_t>(54, 0));
  sim.run();
  ASSERT_EQ(handlers[1]->packets.size(), 1u);
  ASSERT_EQ(handlers[3]->packets.size(), 1u);
  EXPECT_EQ(handlers[1]->packets[0].at, handlers[3]->packets[0].at);
}

// The zero-copy fan-out invariant: a multicast is ONE transmission — the
// payload is encoded and charged once, no matter how many destinations
// share the buffer.
TEST_F(NetFixture, MulticastChargesPayloadBytesOncePerTransmission) {
  build(5);
  const std::vector<std::uint8_t> payload(200, 0xAA);
  net->multicast(nodes[0], std::array{nodes[1], nodes[2], nodes[3], nodes[4]},
                 payload);
  sim.run();
  for (int i = 1; i <= 4; ++i) {
    ASSERT_EQ(handlers[i]->packets.size(), 1u) << "node " << i;
  }
  const NetworkStats& st = net->stats();
  EXPECT_EQ(st.frames_sent, 1u);
  EXPECT_EQ(st.bytes_sent, payload.size());  // once, not 4x
  EXPECT_EQ(st.deliveries, 4u);
}

// The same invariant must hold when destinations straddle partition
// classes: the sender's transmission is charged once even though only the
// destinations sharing its partition receive it.
TEST_F(NetFixture, MulticastAcrossPartitionClassesStillChargesOnce) {
  build(4);
  net->set_partitions({{nodes[0], nodes[1]}, {nodes[2], nodes[3]}});
  const std::vector<std::uint8_t> payload(128, 0x5C);
  const auto base = net->stats();
  net->multicast(nodes[0], std::array{nodes[1], nodes[2], nodes[3]}, payload);
  sim.run();
  EXPECT_EQ(handlers[1]->packets.size(), 1u);
  EXPECT_TRUE(handlers[2]->packets.empty());
  EXPECT_TRUE(handlers[3]->packets.empty());
  const NetworkStats& st = net->stats();
  EXPECT_EQ(st.frames_sent - base.frames_sent, 1u);
  EXPECT_EQ(st.bytes_sent - base.bytes_sent, payload.size());
  EXPECT_EQ(st.deliveries - base.deliveries, 1u);
}

// --- per-directed-link faults -------------------------------------------

TEST_F(NetFixture, BlockedLinkFaultIsOneWay) {
  build(2);
  net->set_link_fault(nodes[0], nodes[1], LinkFault{.blocked = true});
  net->unicast(nodes[0], nodes[1], {1});
  net->unicast(nodes[1], nodes[0], {2});
  sim.run();
  // 0->1 is dead; the reverse direction is untouched.
  EXPECT_TRUE(handlers[1]->packets.empty());
  ASSERT_EQ(handlers[0]->packets.size(), 1u);
  EXPECT_EQ(net->stats().link_blocked, 1u);
  // Blocked at the link layer, not dropped by loss: drops stays clean.
  EXPECT_EQ(net->stats().drops, 0u);
}

TEST_F(NetFixture, BlockedLinkOnlyAffectsThatDestination) {
  build(3);
  net->set_link_fault(nodes[0], nodes[1], LinkFault{.blocked = true});
  net->multicast(nodes[0], std::array{nodes[1], nodes[2]}, {9});
  sim.run();
  EXPECT_TRUE(handlers[1]->packets.empty());
  EXPECT_EQ(handlers[2]->packets.size(), 1u);
}

TEST_F(NetFixture, ClearLinkFaultRestoresDelivery) {
  build(2);
  net->set_link_fault(nodes[0], nodes[1], LinkFault{.blocked = true});
  net->unicast(nodes[0], nodes[1], {1});
  sim.run();
  EXPECT_TRUE(handlers[1]->packets.empty());
  net->clear_link_fault(nodes[0], nodes[1]);
  EXPECT_EQ(net->link_fault_count(), 0u);
  net->unicast(nodes[0], nodes[1], {2});
  sim.run();
  ASSERT_EQ(handlers[1]->packets.size(), 1u);
  EXPECT_EQ(handlers[1]->packets[0].data, (std::vector<std::uint8_t>{2}));
}

TEST_F(NetFixture, LinkDropOverrideBeatsGlobalConfig) {
  // Global loss is zero; the faulted direction loses everything.
  build(3);
  net->set_link_fault(nodes[0], nodes[1],
                      LinkFault{.drop_probability = 1.0});
  for (int i = 0; i < 5; ++i) {
    net->multicast(nodes[0], std::array{nodes[1], nodes[2]}, {7});
  }
  sim.run();
  EXPECT_TRUE(handlers[1]->packets.empty());
  EXPECT_EQ(handlers[2]->packets.size(), 5u);
  EXPECT_EQ(net->stats().drops, 5u);
}

TEST_F(NetFixture, NegativeOverridesInheritGlobalConfig) {
  // A fault entry with both overrides negative behaves like a healthy link.
  build(2);
  net->set_link_fault(nodes[0], nodes[1], LinkFault{});
  net->unicast(nodes[0], nodes[1], {3});
  sim.run();
  ASSERT_EQ(handlers[1]->packets.size(), 1u);
}

TEST_F(NetFixture, LinkJitterOverrideDelaysOnlyThatDirection) {
  config.jitter_us = 0;
  build(3);
  net->set_link_fault(nodes[0], nodes[1], LinkFault{.jitter_us = 20'000});
  for (int i = 0; i < 8; ++i) {
    net->multicast(nodes[0], std::array{nodes[1], nodes[2]}, {1});
    sim.run();
  }
  ASSERT_EQ(handlers[1]->packets.size(), 8u);
  ASSERT_EQ(handlers[2]->packets.size(), 8u);
  bool any_later = false;
  for (std::size_t i = 0; i < 8; ++i) {
    // Jittered copies never arrive before the clean ones, and the uniform
    // draw makes at least one strictly later across eight sends.
    EXPECT_GE(handlers[1]->packets[i].at, handlers[2]->packets[i].at);
    any_later |= handlers[1]->packets[i].at > handlers[2]->packets[i].at;
  }
  EXPECT_TRUE(any_later);
}

}  // namespace
}  // namespace plwg::sim
