// Service-contract conformance, parameterized over all three mapping modes
// (dynamic LWG, static LWG, no-LWG): the user-visible guarantees of the
// Table 1 interface must be identical regardless of how groups are mapped —
// only performance may differ.
#include <gtest/gtest.h>

#include "lwg_fixture.hpp"

namespace plwg::lwg::testing {
namespace {

class LwgModesTest : public LwgFixture,
                     public ::testing::WithParamInterface<MappingMode> {
 protected:
  void build_mode(std::size_t processes) {
    harness::WorldConfig cfg;
    cfg.num_processes = processes;
    cfg.lwg.mode = GetParam();
    if (GetParam() == MappingMode::kStaticSingle) {
      cfg.lwg.static_hwg = HwgId{0xFFFF'0001};
      MemberSet contacts;
      for (std::size_t i = 0; i < processes; ++i) {
        contacts.insert(ProcessId{static_cast<std::uint32_t>(i)});
      }
      cfg.lwg.static_contacts = contacts;
    }
    build(cfg);
  }
};

TEST_P(LwgModesTest, JoinDeliversViewWithAllMembers) {
  build_mode(4);
  form_lwg(LwgId{1}, {0, 1, 2, 3});
  for (std::size_t i = 0; i < 4; ++i) {
    const LwgView* v = lwg(i).view_of(LwgId{1});
    ASSERT_NE(v, nullptr) << "process " << i;
    EXPECT_EQ(v->members, members_of({0, 1, 2, 3}));
  }
}

TEST_P(LwgModesTest, TotalOrderAcrossSenders) {
  build_mode(3);
  form_lwg(LwgId{1}, {0, 1, 2});
  for (int m = 0; m < 6; ++m) {
    for (std::size_t i = 0; i < 3; ++i) {
      lwg(i).send(LwgId{1}, payload(static_cast<std::uint8_t>(i * 10 + m)));
    }
  }
  ASSERT_TRUE(run_until(
      [&] {
        for (std::size_t i = 0; i < 3; ++i) {
          if (user(i).total_delivered(LwgId{1}) != 18) return false;
        }
        return true;
      },
      20'000'000));
  EXPECT_EQ(user(0).log(LwgId{1}).epochs.back().delivered,
            user(1).log(LwgId{1}).epochs.back().delivered);
  EXPECT_EQ(user(1).log(LwgId{1}).epochs.back().delivered,
            user(2).log(LwgId{1}).epochs.back().delivered);
}

TEST_P(LwgModesTest, SenderReceivesOwnMessages) {
  build_mode(2);
  form_lwg(LwgId{1}, {0, 1});
  lwg(0).send(LwgId{1}, payload(9));
  ASSERT_TRUE(run_until(
      [&] { return user(0).total_delivered(LwgId{1}) == 1; }, 10'000'000));
  EXPECT_EQ(user(0).log(LwgId{1}).epochs.back().delivered[0].first, pid(0));
}

TEST_P(LwgModesTest, LeaveProducesShrunkenViewAtSurvivors) {
  build_mode(3);
  form_lwg(LwgId{1}, {0, 1, 2});
  lwg(1).leave(LwgId{1});
  ASSERT_TRUE(run_until(
      [&] { return lwg_converged(LwgId{1}, {0, 2}, members_of({0, 2})); },
      20'000'000));
  EXPECT_EQ(lwg(1).view_of(LwgId{1}), nullptr);
}

TEST_P(LwgModesTest, CrashProducesShrunkenViewAtSurvivors) {
  build_mode(3);
  form_lwg(LwgId{1}, {0, 1, 2});
  world().crash(2);
  ASSERT_TRUE(run_until(
      [&] { return lwg_converged(LwgId{1}, {0, 1}, members_of({0, 1})); },
      30'000'000));
}

TEST_P(LwgModesTest, TwoIndependentGroupsDoNotLeakData) {
  build_mode(4);
  form_lwg(LwgId{1}, {0, 1});
  form_lwg(LwgId{2}, {2, 3});
  lwg(0).send(LwgId{1}, payload(1));
  lwg(2).send(LwgId{2}, payload(2));
  ASSERT_TRUE(run_until(
      [&] {
        return user(1).total_delivered(LwgId{1}) == 1 &&
               user(3).total_delivered(LwgId{2}) == 1;
      },
      20'000'000));
  run_for(1'000'000);
  EXPECT_EQ(user(0).total_delivered(LwgId{2}), 0u);
  EXPECT_EQ(user(2).total_delivered(LwgId{1}), 0u);
}

TEST_P(LwgModesTest, ViewChangeSeparatesMessageEpochs) {
  build_mode(3);
  form_lwg(LwgId{1}, {0, 1});
  lwg(0).send(LwgId{1}, payload(1));
  ASSERT_TRUE(run_until(
      [&] { return user(1).total_delivered(LwgId{1}) == 1; }, 10'000'000));
  lwg(2).join(LwgId{1}, user(2));
  ASSERT_TRUE(run_until(
      [&] { return lwg_converged(LwgId{1}, {0, 1, 2}, members_of({0, 1, 2})); },
      20'000'000));
  lwg(0).send(LwgId{1}, payload(2));
  ASSERT_TRUE(run_until(
      [&] { return user(1).total_delivered(LwgId{1}) == 2; }, 10'000'000));
  // Message 1 was delivered in the old view's epoch, message 2 in the new.
  const auto& epochs = user(1).log(LwgId{1}).epochs;
  ASSERT_GE(epochs.size(), 2u);
  EXPECT_EQ(epochs.back().delivered.size(), 1u);
  EXPECT_EQ(epochs.back().delivered[0].second[0], 2);
  // The joiner saw only the second message (sent in its first view).
  ASSERT_EQ(user(2).total_delivered(LwgId{1}), 1u);
}

INSTANTIATE_TEST_SUITE_P(AllModes, LwgModesTest,
                         ::testing::Values(MappingMode::kDynamic,
                                           MappingMode::kStaticSingle,
                                           MappingMode::kPerGroup),
                         [](const auto& param_info) {
                           switch (param_info.param) {
                             case MappingMode::kDynamic: return "Dynamic";
                             case MappingMode::kStaticSingle: return "Static";
                             case MappingMode::kPerGroup: return "PerGroup";
                           }
                           return "Unknown";
                         });

}  // namespace
}  // namespace plwg::lwg::testing
