// Unit and parameterized tests of the paper Fig. 1 mapping heuristics as
// pure functions: share, interference, and shrink rules with the k_m / k_c
// parameters.
#include "lwg/policy.hpp"

#include <gtest/gtest.h>

namespace plwg::lwg::policy {
namespace {

MemberSet make(std::uint32_t lo, std::uint32_t hi) {
  MemberSet set;
  for (std::uint32_t i = lo; i <= hi; ++i) set.insert(ProcessId{i});
  return set;
}

const PolicyParams kPaperParams{4.0, 4.0};

TEST(ShareRule, IdenticalMembershipCollapses) {
  // n1 = n2 = 0, k = 4: k > sqrt(0) and neither is a minority subset.
  const MemberSet g = make(1, 4);
  EXPECT_TRUE(should_collapse(g, g, kPaperParams));
}

TEST(ShareRule, DisjointGroupsDoNotCollapse) {
  // k = 0: the overlap test fails immediately.
  EXPECT_FALSE(should_collapse(make(1, 4), make(5, 8), kPaperParams));
}

TEST(ShareRule, HeavyOverlapCollapses) {
  // |g1| = 6 (1-6), |g2| = 6 (3-8): k = 4, n1 = n2 = 2,
  // sqrt(2*2*2) = 2.83 < 4.
  EXPECT_TRUE(should_collapse(make(1, 6), make(3, 8), kPaperParams));
}

TEST(ShareRule, LightOverlapDoesNotCollapse) {
  // |g1| = 5 (1-5), |g2| = 5 (5-9): k = 1, n1 = n2 = 4,
  // sqrt(2*4*4) = 5.66 > 1.
  EXPECT_FALSE(should_collapse(make(1, 5), make(5, 9), kPaperParams));
}

TEST(ShareRule, MinoritySubsetIsExemptFromCollapse) {
  // g1 = {1,2} ⊆ g2 = {1..8}: |g1| = 2 <= 8/4, so even though k = 2 >
  // sqrt(0), the minority clause blocks the collapse (the small group would
  // suffer interference inside the big one).
  EXPECT_FALSE(should_collapse(make(1, 2), make(1, 8), kPaperParams));
}

TEST(ShareRule, NonMinoritySubsetCollapses) {
  // g1 = {1..6} ⊆ g2 = {1..8}: 6 > 8/4, k = 6 > 0.
  EXPECT_TRUE(should_collapse(make(1, 6), make(1, 8), kPaperParams));
}

TEST(ShareRule, WinnerIsHighestGroupId) {
  EXPECT_EQ(collapse_winner(HwgId{10}, HwgId{20}), HwgId{20});
  EXPECT_EQ(collapse_winner(HwgId{20}, HwgId{10}), HwgId{20});
}

TEST(InterferenceRule, MinorityLwgIsVictim) {
  EXPECT_TRUE(
      is_interference_victim(make(1, 2), make(1, 8), kPaperParams));
  EXPECT_FALSE(
      is_interference_victim(make(1, 3), make(1, 8), kPaperParams));
  EXPECT_FALSE(
      is_interference_victim(make(1, 4), make(1, 4), kPaperParams));
}

TEST(InterferenceRule, PicksCloseEnoughHwg) {
  const MemberSet lwg = make(1, 6);
  const std::vector<HwgCandidate> candidates{
      {HwgId{1}, make(1, 8)},   // gap 2 <= 8/4: close enough
      {HwgId{2}, make(1, 12)},  // gap 6 > 3: too big
  };
  EXPECT_EQ(pick_switch_target(lwg, candidates, kPaperParams), HwgId{1});
}

TEST(InterferenceRule, NoCandidateMeansCreateFresh) {
  const MemberSet lwg = make(1, 2);
  const std::vector<HwgCandidate> candidates{
      {HwgId{1}, make(1, 8)},  // lwg is a minority here, not close
      {HwgId{2}, make(3, 6)},  // lwg not a subset
  };
  EXPECT_EQ(pick_switch_target(lwg, candidates, kPaperParams), std::nullopt);
}

TEST(InterferenceRule, TieBreaksByHighestGroupId) {
  const MemberSet lwg = make(1, 4);
  const std::vector<HwgCandidate> candidates{
      {HwgId{5}, make(1, 4)},
      {HwgId{9}, make(1, 4)},
      {HwgId{3}, make(1, 4)},
  };
  EXPECT_EQ(pick_switch_target(lwg, candidates, kPaperParams), HwgId{9});
}

TEST(ShrinkRule, LeavesOnlyWhenNoLwgMapped) {
  EXPECT_TRUE(should_leave_hwg(0));
  EXPECT_FALSE(should_leave_hwg(1));
  EXPECT_FALSE(should_leave_hwg(5));
}

// --- parameter sweeps --------------------------------------------------------

struct MinorityCase {
  std::uint32_t lwg_size;
  std::uint32_t hwg_size;
  double k_m;
  bool expect_victim;
};

class MinoritySweep : public ::testing::TestWithParam<MinorityCase> {};

TEST_P(MinoritySweep, MatchesDefinition) {
  const auto& c = GetParam();
  const MemberSet hwg = make(1, c.hwg_size);
  const MemberSet lwg = make(1, c.lwg_size);
  EXPECT_EQ(is_interference_victim(lwg, hwg, PolicyParams{c.k_m, 4.0}),
            c.expect_victim);
}

INSTANTIATE_TEST_SUITE_P(
    PaperBoundary, MinoritySweep,
    ::testing::Values(
        MinorityCase{2, 8, 4.0, true},    // 2 == 8/4: boundary inclusive
        MinorityCase{3, 8, 4.0, false},   // just above
        MinorityCase{1, 8, 4.0, true},
        MinorityCase{4, 8, 2.0, true},    // k_m = 2: half counts as minority
        MinorityCase{5, 8, 2.0, false},
        MinorityCase{1, 2, 2.0, true},
        MinorityCase{2, 8, 8.0, false},   // k_m = 8: only 1 of 8 qualifies
        MinorityCase{1, 8, 8.0, true}));

struct CollapseCase {
  std::uint32_t a_lo, a_hi, b_lo, b_hi;
  bool expect;
};

class CollapseSweep : public ::testing::TestWithParam<CollapseCase> {};

TEST_P(CollapseSweep, MatchesPaperFormula) {
  const auto& c = GetParam();
  const MemberSet a = make(c.a_lo, c.a_hi);
  const MemberSet b = make(c.b_lo, c.b_hi);
  EXPECT_EQ(should_collapse(a, b, kPaperParams), c.expect);
  // The rule is symmetric.
  EXPECT_EQ(should_collapse(b, a, kPaperParams), c.expect);
}

INSTANTIATE_TEST_SUITE_P(
    OverlapGrid, CollapseSweep,
    ::testing::Values(
        CollapseCase{1, 4, 1, 4, true},    // identical
        CollapseCase{1, 4, 5, 8, false},   // disjoint
        CollapseCase{1, 5, 2, 6, true},    // k=4, n1=n2=1: 4 > 1.41
        CollapseCase{1, 5, 4, 8, false},   // k=2, n1=n2=3: 2 < 4.24
        CollapseCase{1, 6, 3, 8, true},    // k=4, n1=n2=2: 4 > 2.83
        CollapseCase{1, 8, 7, 14, false},  // k=2, n1=n2=6: 2 < 8.49
        CollapseCase{1, 3, 1, 8, true},    // subset above minority: collapse
        CollapseCase{1, 2, 1, 8, false},   // true minority subset: exempt
        CollapseCase{1, 4, 1, 8, true}));  // subset, not minority: collapse

}  // namespace
}  // namespace plwg::lwg::policy
