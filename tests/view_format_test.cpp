// Formatting and identity semantics of views at both layers — these strings
// appear in logs, the Table 3/4 benches, and debugging sessions, so they
// are pinned down here.
#include <gtest/gtest.h>

#include <sstream>

#include "lwg/lwg_view.hpp"
#include "vsync/view.hpp"

namespace plwg {
namespace {

TEST(ViewId, OrderingIsLexicographic) {
  const vsync::ViewId a{ProcessId{1}, 5};
  const vsync::ViewId b{ProcessId{1}, 6};
  const vsync::ViewId c{ProcessId{2}, 1};
  EXPECT_LT(a, b);
  EXPECT_LT(b, c);
  EXPECT_EQ(a, (vsync::ViewId{ProcessId{1}, 5}));
}

TEST(ViewId, DisambiguatorDistinguishesMergedIds) {
  const vsync::ViewId plain{ProcessId{1}, 5, 0};
  const vsync::ViewId merged{ProcessId{1}, 5, 12345};
  EXPECT_NE(plain, merged);
  EXPECT_LT(plain, merged);
}

TEST(ViewId, StreamFormat) {
  std::ostringstream os;
  os << vsync::ViewId{ProcessId{3}, 7};
  EXPECT_EQ(os.str(), "view<3:7>");
  std::ostringstream os2;
  os2 << vsync::ViewId{};
  EXPECT_EQ(os2.str(), "view<->");
}

TEST(ViewId, MergedIdCarriesMergeTag) {
  std::ostringstream os;
  os << vsync::ViewId{ProcessId{3}, 7, 42};
  EXPECT_EQ(os.str(), "view<3:7~42>");
}

TEST(ViewId, HashDistinguishesFields) {
  const std::hash<vsync::ViewId> h;
  EXPECT_NE(h(vsync::ViewId{ProcessId{1}, 2}), h(vsync::ViewId{ProcessId{2}, 1}));
  EXPECT_NE(h(vsync::ViewId{ProcessId{1}, 2, 0}),
            h(vsync::ViewId{ProcessId{1}, 2, 9}));
}

TEST(View, CoordinatorIsSmallestMember) {
  vsync::View v;
  v.id = vsync::ViewId{ProcessId{9}, 1};  // installer need not coordinate
  v.members = MemberSet{ProcessId{4}, ProcessId{2}, ProcessId{8}};
  EXPECT_EQ(v.coordinator(), ProcessId{2});
}

TEST(View, StreamIncludesIdAndMembers) {
  vsync::View v;
  v.id = vsync::ViewId{ProcessId{1}, 2};
  v.members = MemberSet{ProcessId{1}, ProcessId{3}};
  std::ostringstream os;
  os << v;
  EXPECT_EQ(os.str(), "view<1:2>{1,3}");
}

TEST(LwgView, StreamIncludesHwg) {
  lwg::LwgView v;
  v.id = vsync::ViewId{ProcessId{0}, 1};
  v.members = MemberSet{ProcessId{0}};
  v.hwg = HwgId{42};
  std::ostringstream os;
  os << v;
  EXPECT_EQ(os.str(), "view<0:1>{0}@hwg42");
}

TEST(LwgView, EqualityCoversAllFields) {
  lwg::LwgView a;
  a.id = vsync::ViewId{ProcessId{0}, 1};
  a.members = MemberSet{ProcessId{0}};
  a.hwg = HwgId{42};
  lwg::LwgView b = a;
  EXPECT_TRUE(a == b);
  b.hwg = HwgId{43};
  EXPECT_FALSE(a == b);
}

TEST(View, EncodeDecodePreservesGenealogy) {
  vsync::View v;
  v.id = vsync::ViewId{ProcessId{1}, 9, 333};
  v.members = MemberSet{ProcessId{1}, ProcessId{2}};
  v.predecessors = {vsync::ViewId{ProcessId{1}, 8},
                    vsync::ViewId{ProcessId{5}, 3, 77}};
  Encoder enc;
  v.encode(enc);
  Decoder dec(enc.bytes());
  const vsync::View copy = vsync::View::decode(dec);
  dec.expect_done();
  EXPECT_EQ(copy, v);
}

}  // namespace
}  // namespace plwg
