// ChaosMonkey-driven soaks: after arbitrary injected partitions (and
// crashes), quiescence must always restore one consistent view per group
// among the surviving processes.
#include <gtest/gtest.h>

#include "harness/chaos.hpp"
#include "lwg_fixture.hpp"

namespace plwg::lwg::testing {
namespace {

class ChaosSoakTest : public LwgFixture,
                      public ::testing::WithParamInterface<std::uint64_t> {};

TEST_P(ChaosSoakTest, PartitionChaosConvergesAfterQuiesce) {
  harness::WorldConfig cfg;
  cfg.num_processes = 5;
  cfg.num_name_servers = 2;
  cfg.net.seed = GetParam();
  build(cfg);
  const LwgId id{1};
  form_lwg(id, {0, 1, 2, 3, 4});

  harness::ChaosConfig chaos_cfg;
  chaos_cfg.seed = GetParam();
  chaos_cfg.mean_interval_us = 4'000'000;
  chaos_cfg.mean_partition_us = 3'000'000;
  harness::ChaosMonkey chaos(world(), chaos_cfg);
  chaos.run_for(60'000'000);
  chaos.quiesce();
  EXPECT_GT(chaos.partitions_injected(), 0u);

  ASSERT_TRUE(run_until(
      [&] {
        return lwg_converged(id, {0, 1, 2, 3, 4},
                             members_of({0, 1, 2, 3, 4}));
      },
      300'000'000))
      << "seed " << GetParam();
  // The reunited group carries traffic.
  const auto before = user(4).total_delivered(id);
  lwg(0).send(id, payload(1));
  EXPECT_TRUE(run_until(
      [&] { return user(4).total_delivered(id) > before; }, 30'000'000));
}

TEST_P(ChaosSoakTest, CrashAndPartitionChaosConvergesToSurvivors) {
  harness::WorldConfig cfg;
  cfg.num_processes = 5;
  cfg.num_name_servers = 2;
  cfg.net.seed = GetParam() ^ 0xdead;
  build(cfg);
  const LwgId id{1};
  form_lwg(id, {0, 1, 2, 3, 4});

  harness::ChaosConfig chaos_cfg;
  chaos_cfg.seed = GetParam() ^ 0xbeef;
  chaos_cfg.mean_interval_us = 5'000'000;
  chaos_cfg.mean_partition_us = 3'000'000;
  chaos_cfg.crash_probability = 0.4;
  chaos_cfg.max_crashes = 2;
  harness::ChaosMonkey chaos(world(), chaos_cfg);
  chaos.run_for(60'000'000);
  chaos.quiesce();

  std::vector<std::size_t> alive;
  MemberSet survivors;
  for (std::size_t i = 0; i < 5; ++i) {
    const auto& crashed = chaos.crashed();
    if (std::find(crashed.begin(), crashed.end(), i) == crashed.end()) {
      alive.push_back(i);
      survivors.insert(pid(i));
    }
  }
  ASSERT_TRUE(
      run_until([&] { return lwg_converged(id, alive, survivors); },
                300'000'000))
      << "seed " << GetParam() << " survivors " << survivors.to_string();
}

TEST_P(ChaosSoakTest, CrashRestartCyclesConvergeAfterQuiesce) {
  harness::WorldConfig cfg;
  cfg.num_processes = 5;
  cfg.num_name_servers = 2;
  cfg.net.seed = GetParam() ^ 0xf00d;
  build(cfg);
  const LwgId id{1};
  form_lwg(id, {0, 1, 2, 3, 4});

  harness::ChaosConfig chaos_cfg;
  chaos_cfg.seed = GetParam() ^ 0xcafe;
  chaos_cfg.mean_interval_us = 4'000'000;
  chaos_cfg.mean_partition_us = 3'000'000;
  chaos_cfg.crash_probability = 0.5;
  chaos_cfg.max_crashes = 2;
  chaos_cfg.restart_probability = 1.0;  // every crash comes back
  chaos_cfg.mean_downtime_us = 2'000'000;
  harness::ChaosMonkey chaos(world(), chaos_cfg);
  chaos.run_for(90'000'000);
  chaos.quiesce();
  EXPECT_EQ(chaos.restarts_fired(), chaos.crashes_injected());
  EXPECT_TRUE(chaos.crashed().empty());
  for (const harness::RestartEvent& ev : chaos.restart_log()) {
    EXPECT_GT(ev.restarted_at, ev.crashed_at);
  }

  // Everyone was promised back, so the FULL group must re-converge.
  ASSERT_TRUE(run_until(
      [&] {
        return lwg_converged(id, {0, 1, 2, 3, 4},
                             members_of({0, 1, 2, 3, 4}));
      },
      300'000'000))
      << "seed " << GetParam();
  const auto before = user(4).total_delivered(id);
  lwg(0).send(id, payload(1));
  EXPECT_TRUE(run_until(
      [&] { return user(4).total_delivered(id) > before; }, 30'000'000));
}

INSTANTIATE_TEST_SUITE_P(Seeds, ChaosSoakTest,
                         ::testing::Values(71, 72, 73, 74, 75, 76));

// Regression flushed out by the adversarial corpus (partition-chaos soak,
// seed 74): a send() accepted while the group is fully active at the LWG
// layer can land while the vsync endpoint underneath is mid-flush. The
// payload then crosses the view boundary inside the endpoint's pending
// queue, is multicast in the NEXT view still carrying the old LWG view
// stamp, and every receiver discards it as "late, superseded" — silent,
// permanent loss of an accepted message. The sender must recognise its own
// superseded copy and re-send it stamped with the live view.
using SendDuringFlushTest = LwgFixture;

TEST_F(SendDuringFlushTest, SendAcceptedMidFlushIsNotLost) {
  harness::WorldConfig cfg;
  cfg.num_processes = 5;
  cfg.num_name_servers = 2;
  cfg.net.seed = 74;
  build(cfg);
  const LwgId id{1};
  form_lwg(id, {0, 1, 2, 3, 4});
  const std::optional<HwgId> hwg = lwg(0).hwg_of(id);
  ASSERT_TRUE(hwg.has_value());

  // Cut p4 off, then catch the exact window where p0's endpoint has left
  // the active state for the flush that removes p4 while the LWG layer
  // still shows the old 5-member view. 0.5 ms probes: the window between
  // flush start and the next view install is only a few milliseconds wide.
  world().partition({{0, 1, 2, 3}, {4}});
  bool caught = false;
  for (int i = 0; i < 60'000 && !caught; ++i) {
    world().run_for(500);
    const vsync::GroupEndpoint* ep = world().vsync(0).endpoint(*hwg);
    const LwgView* v = lwg(0).view_of(id);
    caught = ep != nullptr &&
             ep->state() != vsync::GroupEndpoint::State::kActive &&
             v != nullptr && v->members.size() == 5;
  }
  ASSERT_TRUE(caught) << "never observed the mid-flush send window";

  const auto before = user(1).total_delivered(id);
  lwg(0).send(id, payload(9));
  // Without the missed-view re-send the copy is dropped everywhere and
  // user 1 never sees it.
  EXPECT_TRUE(run_until(
      [&] { return user(1).total_delivered(id) > before; }, 30'000'000));
  EXPECT_GE(lwg(0).stats().data_resent, 1u);
  world().heal();
  ASSERT_TRUE(run_until(
      [&] {
        return lwg_converged(id, {0, 1, 2, 3, 4},
                             members_of({0, 1, 2, 3, 4}));
      },
      120'000'000));
}

// Overlapping fault intervals: a second partition opens while the first is
// still in force, a crash-with-restart lands mid-partition, and a one-way
// link fault spans both. quiesce() must drain the whole interval set (heal
// everything, fire the pending restart, leave nothing scheduled) so the
// convergence check runs against a genuinely healthy network.
using OverlappingFaultTest = LwgFixture;

TEST_F(OverlappingFaultTest, CrashLandsMidPartitionAndQuiesceDrainsAll) {
  harness::WorldConfig cfg;
  cfg.num_processes = 6;
  cfg.num_name_servers = 2;
  cfg.net.seed = 7;
  build(cfg);
  const LwgId id{1};
  form_lwg(id, {0, 1, 2, 3, 4, 5});

  const harness::Scenario sc = harness::parse_scenario(R"json({
    "name": "overlap-inline",
    "events": [
      { "kind": "partition", "at_ms": 1000,
        "islands": [[0,1,2],[3,4,5]], "duration_ms": 8000 },
      { "kind": "link_down", "at_ms": 2000, "from": 0, "to": 3,
        "duration_ms": 9000 },
      { "kind": "crash", "at_ms": 3000, "node": 5, "down_ms": 3000 },
      { "kind": "partition", "at_ms": 4000,
        "islands": [[0,1],[2,3,4,5]], "duration_ms": 8000 }
    ]
  })json");
  harness::ChaosConfig chaos_cfg;
  chaos_cfg.random_faults = false;
  harness::ChaosMonkey chaos(world(), chaos_cfg);
  chaos.load(sc);

  std::size_t max_open = 0;
  for (int i = 0; i < 13'000 / 250; ++i) {
    chaos.run_for(250'000);
    max_open = std::max(max_open, chaos.open_partitions());
  }
  EXPECT_EQ(max_open, 2u) << "the two partition intervals never overlapped";
  EXPECT_EQ(chaos.crashes_injected(), 1u);
  EXPECT_EQ(chaos.restarts_fired(), 1u);  // came back mid-partition
  EXPECT_GE(chaos.link_faults_injected(), 1u);

  chaos.quiesce();
  EXPECT_FALSE(chaos.partitioned());
  EXPECT_EQ(chaos.open_partitions(), 0u);
  EXPECT_EQ(chaos.pending_actions(), 0u);
  EXPECT_TRUE(chaos.crashed().empty());

  ASSERT_TRUE(run_until(
      [&] {
        return lwg_converged(id, {0, 1, 2, 3, 4, 5},
                             members_of({0, 1, 2, 3, 4, 5}));
      },
      300'000'000));
  const auto before = user(5).total_delivered(id);
  lwg(0).send(id, payload(3));
  EXPECT_TRUE(run_until(
      [&] { return user(5).total_delivered(id) > before; }, 30'000'000));
}

}  // namespace
}  // namespace plwg::lwg::testing
