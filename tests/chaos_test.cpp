// ChaosMonkey-driven soaks: after arbitrary injected partitions (and
// crashes), quiescence must always restore one consistent view per group
// among the surviving processes.
#include <gtest/gtest.h>

#include "harness/chaos.hpp"
#include "lwg_fixture.hpp"

namespace plwg::lwg::testing {
namespace {

class ChaosSoakTest : public LwgFixture,
                      public ::testing::WithParamInterface<std::uint64_t> {};

TEST_P(ChaosSoakTest, PartitionChaosConvergesAfterQuiesce) {
  harness::WorldConfig cfg;
  cfg.num_processes = 5;
  cfg.num_name_servers = 2;
  cfg.net.seed = GetParam();
  build(cfg);
  const LwgId id{1};
  form_lwg(id, {0, 1, 2, 3, 4});

  harness::ChaosConfig chaos_cfg;
  chaos_cfg.seed = GetParam();
  chaos_cfg.mean_interval_us = 4'000'000;
  chaos_cfg.mean_partition_us = 3'000'000;
  harness::ChaosMonkey chaos(world(), chaos_cfg);
  chaos.run_for(60'000'000);
  chaos.quiesce();
  EXPECT_GT(chaos.partitions_injected(), 0u);

  ASSERT_TRUE(run_until(
      [&] {
        return lwg_converged(id, {0, 1, 2, 3, 4},
                             members_of({0, 1, 2, 3, 4}));
      },
      300'000'000))
      << "seed " << GetParam();
  // The reunited group carries traffic.
  const auto before = user(4).total_delivered(id);
  lwg(0).send(id, payload(1));
  EXPECT_TRUE(run_until(
      [&] { return user(4).total_delivered(id) > before; }, 30'000'000));
}

TEST_P(ChaosSoakTest, CrashAndPartitionChaosConvergesToSurvivors) {
  harness::WorldConfig cfg;
  cfg.num_processes = 5;
  cfg.num_name_servers = 2;
  cfg.net.seed = GetParam() ^ 0xdead;
  build(cfg);
  const LwgId id{1};
  form_lwg(id, {0, 1, 2, 3, 4});

  harness::ChaosConfig chaos_cfg;
  chaos_cfg.seed = GetParam() ^ 0xbeef;
  chaos_cfg.mean_interval_us = 5'000'000;
  chaos_cfg.mean_partition_us = 3'000'000;
  chaos_cfg.crash_probability = 0.4;
  chaos_cfg.max_crashes = 2;
  harness::ChaosMonkey chaos(world(), chaos_cfg);
  chaos.run_for(60'000'000);
  chaos.quiesce();

  std::vector<std::size_t> alive;
  MemberSet survivors;
  for (std::size_t i = 0; i < 5; ++i) {
    const auto& crashed = chaos.crashed();
    if (std::find(crashed.begin(), crashed.end(), i) == crashed.end()) {
      alive.push_back(i);
      survivors.insert(pid(i));
    }
  }
  ASSERT_TRUE(
      run_until([&] { return lwg_converged(id, alive, survivors); },
                300'000'000))
      << "seed " << GetParam() << " survivors " << survivors.to_string();
}

TEST_P(ChaosSoakTest, CrashRestartCyclesConvergeAfterQuiesce) {
  harness::WorldConfig cfg;
  cfg.num_processes = 5;
  cfg.num_name_servers = 2;
  cfg.net.seed = GetParam() ^ 0xf00d;
  build(cfg);
  const LwgId id{1};
  form_lwg(id, {0, 1, 2, 3, 4});

  harness::ChaosConfig chaos_cfg;
  chaos_cfg.seed = GetParam() ^ 0xcafe;
  chaos_cfg.mean_interval_us = 4'000'000;
  chaos_cfg.mean_partition_us = 3'000'000;
  chaos_cfg.crash_probability = 0.5;
  chaos_cfg.max_crashes = 2;
  chaos_cfg.restart_probability = 1.0;  // every crash comes back
  chaos_cfg.mean_downtime_us = 2'000'000;
  harness::ChaosMonkey chaos(world(), chaos_cfg);
  chaos.run_for(90'000'000);
  chaos.quiesce();
  EXPECT_EQ(chaos.restarts_fired(), chaos.crashes_injected());
  EXPECT_TRUE(chaos.crashed().empty());
  for (const harness::RestartEvent& ev : chaos.restart_log()) {
    EXPECT_GT(ev.restarted_at, ev.crashed_at);
  }

  // Everyone was promised back, so the FULL group must re-converge.
  ASSERT_TRUE(run_until(
      [&] {
        return lwg_converged(id, {0, 1, 2, 3, 4},
                             members_of({0, 1, 2, 3, 4}));
      },
      300'000'000))
      << "seed " << GetParam();
  const auto before = user(4).total_delivered(id);
  lwg(0).send(id, payload(1));
  EXPECT_TRUE(run_until(
      [&] { return user(4).total_delivered(id) > before; }, 30'000'000));
}

INSTANTIATE_TEST_SUITE_P(Seeds, ChaosSoakTest,
                         ::testing::Values(71, 72, 73, 74, 75, 76));

}  // namespace
}  // namespace plwg::lwg::testing
