// Frame coalescing: same-round staging, multicast frame sharing, piggybacked
// ack accounting, the size cap and linger knobs — and the fault semantics of
// batched frames (atomic drop against dead incarnations, whole-batch
// checksum rejection, partition cuts landing mid-linger).
#include <gtest/gtest.h>

#include <memory>

#include "sim/network.hpp"
#include "sim/simulator.hpp"
#include "transport/node_runtime.hpp"

namespace plwg::transport {
namespace {

struct Recorder : PortHandler {
  void on_message(NodeId from, Decoder& dec) override {
    froms.push_back(from);
    values.push_back(dec.get_u32());
  }
  std::vector<NodeId> froms;
  std::vector<std::uint32_t> values;
};

class TransportBatchingTest : public ::testing::Test {
 protected:
  explicit TransportBatchingTest(sim::NetworkConfig cfg = {})
      : net_(sim_, cfg) {}

  static Encoder make_payload(std::uint32_t v) {
    Encoder e;
    e.put_u32(v);
    return e;
  }

  sim::Simulator sim_;
  sim::Network net_;
};

TEST_F(TransportBatchingTest, SameRoundSendsShareOneFrame) {
  NodeRuntime a(net_), b(net_);
  Recorder rec;
  b.register_port(Port::kApp, rec);

  sim_.schedule_after(0, [&] {
    for (std::uint32_t v = 1; v <= 3; ++v) {
      a.send(Port::kApp, b.id(), make_payload(v));
    }
    // Still staged: the flush fires at the end of this round.
    EXPECT_EQ(a.staged_messages(), 3u);
  });
  sim_.run();

  ASSERT_EQ(rec.values, (std::vector<std::uint32_t>{1, 2, 3}));
  EXPECT_EQ(net_.stats().frames_sent, 1u);
  EXPECT_EQ(net_.stats().messages_sent, 3u);
  EXPECT_EQ(a.stats().frames_sent, 1u);
  EXPECT_EQ(a.stats().messages_sent, 3u);
  EXPECT_EQ(a.staged_messages(), 0u);
  EXPECT_DOUBLE_EQ(net_.stats().amortization_ratio(), 3.0);
}

TEST_F(TransportBatchingTest, IdenticalMulticastBatchesShareOneTransmission) {
  NodeRuntime a(net_), b(net_), c(net_);
  Recorder rb, rc;
  b.register_port(Port::kApp, rb);
  c.register_port(Port::kApp, rc);

  sim_.schedule_after(0, [&] {
    const std::vector<NodeId> dests{b.id(), c.id()};
    a.multicast(Port::kApp, dests, make_payload(7));
    a.multicast(Port::kApp, dests, make_payload(8));
  });
  sim_.run();

  EXPECT_EQ(rb.values, (std::vector<std::uint32_t>{7, 8}));
  EXPECT_EQ(rc.values, (std::vector<std::uint32_t>{7, 8}));
  // Both destinations staged byte-identical batches, so the flush emitted
  // ONE frame as ONE bus transmission delivered twice.
  EXPECT_EQ(net_.stats().frames_sent, 1u);
  EXPECT_EQ(net_.stats().deliveries, 2u);
}

TEST_F(TransportBatchingTest, DivergentBatchGetsItsOwnFrame) {
  NodeRuntime a(net_), b(net_), c(net_);
  Recorder rb, rc;
  b.register_port(Port::kApp, rb);
  c.register_port(Port::kApp, rc);

  sim_.schedule_after(0, [&] {
    const std::vector<NodeId> dests{b.id(), c.id()};
    a.multicast(Port::kApp, dests, make_payload(7));
    a.send(Port::kApp, b.id(), make_payload(9));  // b's batch now differs
  });
  sim_.run();

  EXPECT_EQ(rb.values, (std::vector<std::uint32_t>{7, 9}));
  EXPECT_EQ(rc.values, (std::vector<std::uint32_t>{7}));
  EXPECT_EQ(net_.stats().frames_sent, 2u);
  EXPECT_EQ(net_.stats().messages_sent, 3u);
}

TEST_F(TransportBatchingTest, PiggybackedAcksAreCounted) {
  NodeRuntime a(net_), b(net_);
  Recorder rec;
  b.register_port(Port::kApp, rec);

  // An ack sharing a frame with data counts as piggybacked...
  sim_.schedule_after(0, [&] {
    a.send(Port::kApp, b.id(), make_payload(1), MsgClass::kData);
    a.send(Port::kApp, b.id(), make_payload(2), MsgClass::kAck);
  });
  // ...an ack alone in its frame does not (it saved nothing).
  sim_.schedule_after(1'000, [&] {
    a.send(Port::kApp, b.id(), make_payload(3), MsgClass::kAck);
  });
  sim_.run();

  EXPECT_EQ(rec.values.size(), 3u);
  EXPECT_EQ(net_.stats().frames_sent, 2u);
  EXPECT_EQ(net_.stats().piggybacked_acks, 1u);
  EXPECT_EQ(a.stats().piggybacked_acks, 1u);
}

TEST_F(TransportBatchingTest, SizeCapFlushesEarly) {
  TransportConfig cfg;
  cfg.max_batch_bytes = 64;
  NodeRuntime a(net_, cfg), b(net_);
  Recorder rec;
  b.register_port(Port::kApp, rec);

  sim_.schedule_after(0, [&] {
    Encoder big;
    big.put_u32(1);
    for (int i = 0; i < 10; ++i) big.put_u64(0);  // 84B entry > 64B cap
    a.send(Port::kApp, b.id(), big);
    a.send(Port::kApp, b.id(), big);  // would exceed the cap: early flush
  });
  sim_.run();

  EXPECT_EQ(rec.values.size(), 2u);
  EXPECT_EQ(net_.stats().frames_sent, 2u);
}

TEST_F(TransportBatchingTest, LingerMergesAcrossRounds) {
  TransportConfig cfg;
  cfg.max_linger_us = 2'000;
  NodeRuntime a(net_, cfg), b(net_);
  Recorder rec;
  b.register_port(Port::kApp, rec);

  // Sent 1ms apart: the second rides the first's still-lingering batch.
  a.send(Port::kApp, b.id(), make_payload(1));
  EXPECT_EQ(a.staged_messages(), 1u);
  sim_.schedule_after(1'000, [&] {
    a.send(Port::kApp, b.id(), make_payload(2));
  });
  sim_.run();

  EXPECT_EQ(rec.values, (std::vector<std::uint32_t>{1, 2}));
  EXPECT_EQ(net_.stats().frames_sent, 1u);
  EXPECT_EQ(net_.stats().messages_sent, 2u);
}

TEST_F(TransportBatchingTest, BatchToDeadIncarnationDropsAtomically) {
  NodeRuntime a(net_);
  auto b = std::make_unique<NodeRuntime>(net_);
  const NodeId b_id = b->id();
  Recorder old_rec;
  b->register_port(Port::kApp, old_rec);

  sim_.schedule_after(0, [&] {
    a.send(Port::kApp, b_id, make_payload(1));
    a.send(Port::kApp, b_id, make_payload(2));
  });
  // Crash + restart b while the 2-message frame is still in flight.
  std::unique_ptr<NodeRuntime> b2;
  Recorder new_rec;
  sim_.schedule_after(10, [&] {
    net_.crash(b_id);
    b2 = std::make_unique<NodeRuntime>(net_, b_id, 1);
    b2->register_port(Port::kApp, new_rec);
  });
  sim_.run();

  // The whole batch died with the old incarnation: no half-delivered frame.
  EXPECT_TRUE(old_rec.values.empty());
  EXPECT_TRUE(new_rec.values.empty());
  EXPECT_EQ(net_.stats().stale_epoch_drops, 1u);
}

class TransportBatchingCorruptTest : public TransportBatchingTest {
 protected:
  static sim::NetworkConfig corrupt_config() {
    sim::NetworkConfig cfg;
    cfg.corrupt_probability = 1.0;
    return cfg;
  }
  TransportBatchingCorruptTest() : TransportBatchingTest(corrupt_config()) {}
};

TEST_F(TransportBatchingCorruptTest, CorruptedBatchIsRejectedWhole) {
  NodeRuntime a(net_), b(net_);
  Recorder rec;
  b.register_port(Port::kApp, rec);

  sim_.schedule_after(0, [&] {
    a.send(Port::kApp, b.id(), make_payload(1));
    a.send(Port::kApp, b.id(), make_payload(2));
  });
  sim_.run();

  // One frame, corrupted in transit: the checksum refuses the batch whole —
  // neither entry leaks through, corruption degrades to loss.
  EXPECT_EQ(net_.stats().frames_sent, 1u);
  EXPECT_EQ(net_.stats().corruptions, 1u);
  EXPECT_TRUE(rec.values.empty());
  EXPECT_EQ(b.stats().malformed_frames, 1u);
}

TEST_F(TransportBatchingTest, PartitionCutMidLingerLosesTheBatch) {
  TransportConfig cfg;
  cfg.max_linger_us = 5'000;
  NodeRuntime a(net_, cfg), b(net_);
  Recorder rec;
  b.register_port(Port::kApp, rec);

  // Staged at t=0, lingering until t=5ms; the partition lands at t=1ms.
  a.send(Port::kApp, b.id(), make_payload(1));
  sim_.schedule_after(1'000, [&] {
    net_.set_partitions({{a.id()}, {b.id()}});
  });
  sim_.run_until(sim_.now() + 50'000);
  EXPECT_TRUE(rec.values.empty());  // flushed into the cut: lost like any loss

  net_.heal();
  a.send(Port::kApp, b.id(), make_payload(2));
  sim_.run();
  EXPECT_EQ(rec.values, (std::vector<std::uint32_t>{2}));
}

}  // namespace
}  // namespace plwg::transport
