// Partitionable operation of the heavy-weight group layer: view splits under
// partition, concurrent views, merge probes, and view merging on heal
// (paper Sect. 5.1 requirements on the HWG substrate).
#include <gtest/gtest.h>

#include <algorithm>

#include "vsync_fixture.hpp"

namespace plwg::vsync::testing {
namespace {

class VsyncPartitionTest : public VsyncFixture {
 protected:
  HwgId form_group(std::size_t n) {
    build(n);
    const HwgId gid = host(0).allocate_group_id();
    host(0).create_group(gid, user(0));
    std::vector<std::size_t> all{0};
    MemberSet members{pid(0)};
    for (std::size_t i = 1; i < n; ++i) {
      host(i).join_group(gid, MemberSet{pid(0)}, user(i));
      all.push_back(i);
      members.insert(pid(i));
    }
    EXPECT_TRUE(
        run_until([&] { return converged(gid, all, members); }, 10'000'000));
    return gid;
  }

  void split(const std::vector<std::vector<std::size_t>>& classes) {
    std::vector<std::vector<NodeId>> node_classes;
    for (const auto& cls : classes) {
      std::vector<NodeId> nodes;
      for (std::size_t i : cls) nodes.push_back(node(i));
      node_classes.push_back(std::move(nodes));
    }
    net_->set_partitions(node_classes);
  }
};

TEST_F(VsyncPartitionTest, PartitionSplitsIntoConcurrentViews) {
  const HwgId gid = form_group(4);
  split({{0, 1}, {2, 3}});
  ASSERT_TRUE(run_until(
      [&] {
        return converged(gid, {0, 1}, members_of({0, 1})) &&
               converged(gid, {2, 3}, members_of({2, 3}));
      },
      15'000'000));
  // The two sides hold *different* view identifiers.
  const View* a = host(0).view_of(gid);
  const View* b = host(2).view_of(gid);
  ASSERT_NE(a, nullptr);
  ASSERT_NE(b, nullptr);
  EXPECT_FALSE(a->id == b->id);
}

TEST_F(VsyncPartitionTest, BothSidesRemainOperational) {
  const HwgId gid = form_group(4);
  split({{0, 1}, {2, 3}});
  ASSERT_TRUE(run_until(
      [&] {
        return converged(gid, {0, 1}, members_of({0, 1})) &&
               converged(gid, {2, 3}, members_of({2, 3}));
      },
      15'000'000));
  const auto before0 = user(1).total_delivered(gid);
  const auto before2 = user(3).total_delivered(gid);
  host(0).send(gid, payload(1));
  host(2).send(gid, payload(2));
  ASSERT_TRUE(run_until(
      [&] {
        return user(1).total_delivered(gid) > before0 &&
               user(3).total_delivered(gid) > before2;
      },
      5'000'000));
}

TEST_F(VsyncPartitionTest, HealMergesViews) {
  const HwgId gid = form_group(4);
  split({{0, 1}, {2, 3}});
  ASSERT_TRUE(run_until(
      [&] {
        return converged(gid, {0, 1}, members_of({0, 1})) &&
               converged(gid, {2, 3}, members_of({2, 3}));
      },
      15'000'000));
  net_->heal();
  ASSERT_TRUE(run_until(
      [&] {
        return converged(gid, {0, 1, 2, 3}, members_of({0, 1, 2, 3}));
      },
      20'000'000));
  // The merged view's predecessors record both constituent views (the
  // genealogy the naming service GC relies on).
  const View* merged = host(0).view_of(gid);
  ASSERT_NE(merged, nullptr);
  EXPECT_GE(merged->predecessors.size(), 2u);
}

TEST_F(VsyncPartitionTest, MergedGroupCarriesTraffic) {
  const HwgId gid = form_group(4);
  split({{0, 1}, {2, 3}});
  ASSERT_TRUE(run_until(
      [&] {
        return converged(gid, {0, 1}, members_of({0, 1})) &&
               converged(gid, {2, 3}, members_of({2, 3}));
      },
      15'000'000));
  net_->heal();
  ASSERT_TRUE(run_until(
      [&] { return converged(gid, {0, 1, 2, 3}, members_of({0, 1, 2, 3})); },
      20'000'000));
  const auto before = user(3).total_delivered(gid);
  host(0).send(gid, payload(5));
  ASSERT_TRUE(run_until(
      [&] { return user(3).total_delivered(gid) > before; }, 5'000'000));
}

TEST_F(VsyncPartitionTest, ThreeWayPartitionConvergesAfterHeal) {
  const HwgId gid = form_group(6);
  split({{0, 1}, {2, 3}, {4, 5}});
  ASSERT_TRUE(run_until(
      [&] {
        return converged(gid, {0, 1}, members_of({0, 1})) &&
               converged(gid, {2, 3}, members_of({2, 3})) &&
               converged(gid, {4, 5}, members_of({4, 5}));
      },
      20'000'000));
  net_->heal();
  // Pairwise merges converge in a couple of probe rounds.
  ASSERT_TRUE(run_until(
      [&] {
        return converged(gid, {0, 1, 2, 3, 4, 5},
                         members_of({0, 1, 2, 3, 4, 5}));
      },
      40'000'000));
}

TEST_F(VsyncPartitionTest, SingletonPartitionRejoins) {
  const HwgId gid = form_group(3);
  split({{0, 1}, {2}});
  ASSERT_TRUE(run_until(
      [&] {
        return converged(gid, {0, 1}, members_of({0, 1})) &&
               converged(gid, {2}, members_of({2}));
      },
      15'000'000));
  net_->heal();
  ASSERT_TRUE(run_until(
      [&] { return converged(gid, {0, 1, 2}, members_of({0, 1, 2})); },
      20'000'000));
}

TEST_F(VsyncPartitionTest, RepeatedPartitionHealCyclesStayConsistent) {
  const HwgId gid = form_group(4);
  for (int cycle = 0; cycle < 3; ++cycle) {
    split({{0, 1}, {2, 3}});
    ASSERT_TRUE(run_until(
        [&] {
          return converged(gid, {0, 1}, members_of({0, 1})) &&
                 converged(gid, {2, 3}, members_of({2, 3}));
        },
        20'000'000))
        << "cycle " << cycle;
    net_->heal();
    ASSERT_TRUE(run_until(
        [&] {
          return converged(gid, {0, 1, 2, 3}, members_of({0, 1, 2, 3}));
        },
        30'000'000))
        << "cycle " << cycle;
  }
}

TEST_F(VsyncPartitionTest, PartitionDuringTrafficKeepsPerSideAgreement) {
  const HwgId gid = form_group(4);
  for (int m = 0; m < 10; ++m) {
    for (std::size_t i = 0; i < 4; ++i) {
      host(i).send(gid, payload(static_cast<std::uint8_t>(m)));
    }
  }
  run_for(20'000);
  split({{0, 1}, {2, 3}});
  ASSERT_TRUE(run_until(
      [&] {
        return converged(gid, {0, 1}, members_of({0, 1})) &&
               converged(gid, {2, 3}, members_of({2, 3}));
      },
      20'000'000));
  // Within each side, processes agree on what was delivered in the shared
  // pre-partition view.
  auto deliveries_in_epoch = [&](std::size_t i, std::size_t back_off) {
    const auto& epochs = user(i).log(gid).epochs;
    return epochs[epochs.size() - 1 - back_off].delivered;
  };
  EXPECT_EQ(deliveries_in_epoch(0, 1), deliveries_in_epoch(1, 1));
  EXPECT_EQ(deliveries_in_epoch(2, 1), deliveries_in_epoch(3, 1));
}

}  // namespace
}  // namespace plwg::vsync::testing
