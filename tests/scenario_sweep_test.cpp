// Seed-sweep over the declarative scenario corpus: every file under
// scenarios/ replays against a range of seeds with the protocol oracle as
// the judge — each episode must form, converge after quiesce, and leave a
// clean oracle report. The CI default covers a small seed range per file;
// set PLWG_SWEEP_SEEDS (count) and PLWG_SWEEP_FIRST (start) for the full
// 25-seed campaign run by scripts/scenario_sweep.sh and recorded in
// EXPERIMENTS.md:
//
//   PLWG_SWEEP_SEEDS=25 ./build/tests/test_scenarios --gtest_filter='*Sweep*'
#include <gtest/gtest.h>

#include <cctype>
#include <cstdlib>
#include <fstream>
#include <string>
#include <vector>

#include "harness/scenario.hpp"

namespace plwg::harness::testing {
namespace {

std::uint64_t env_u64(const char* name, std::uint64_t fallback) {
  const char* value = std::getenv(name);
  if (value == nullptr || *value == '\0') return fallback;
  return std::strtoull(value, nullptr, 10);
}

/// Mirror of the lwg fixture's oracle artifact hook: when a scenario
/// episode fails under PLWG_ORACLE_REPORT_DIR, persist the failure text so
/// CI uploads carry the violation trace.
void maybe_write_failure(const std::string& scenario_name, std::uint64_t seed,
                         const std::string& failure) {
  const char* dir = std::getenv("PLWG_ORACLE_REPORT_DIR");
  if (dir == nullptr || *dir == '\0') return;
  std::string name = scenario_name;
  for (char& c : name) {
    if (std::isalnum(static_cast<unsigned char>(c)) == 0 && c != '-' &&
        c != '_') {
      c = '_';
    }
  }
  std::ofstream out(std::string(dir) + "/scenario-" + name + "-seed" +
                    std::to_string(seed) + ".json");
  out << failure;
}

TEST(ScenarioSweepTest, EveryCorpusFileIsOracleCleanAcrossSeeds) {
  const std::vector<std::string> files = list_scenario_files();
  ASSERT_FALSE(files.empty()) << "no corpus found in " << scenario_dir();

  const std::uint64_t seeds = env_u64("PLWG_SWEEP_SEEDS", 3);
  const std::uint64_t first = env_u64("PLWG_SWEEP_FIRST", 1);
  const std::uint64_t sim_threads = env_u64("PLWG_SIM_THREADS", 1);

  for (const std::string& file : files) {
    const Scenario scenario = load_scenario_file(file);
    for (std::uint64_t seed = first; seed < first + seeds; ++seed) {
      SCOPED_TRACE(scenario.name + " seed " + std::to_string(seed));
      const ScenarioResult r =
          run_scenario(scenario, seed, static_cast<std::size_t>(sim_threads));
      EXPECT_TRUE(r.formed) << "group never assembled";
      EXPECT_TRUE(r.converged) << r.failure;
      EXPECT_TRUE(r.oracle_clean) << r.failure;
      if (!r.formed || !r.converged || !r.oracle_clean) {
        maybe_write_failure(scenario.name, seed, r.failure);
      }
    }
  }
}

}  // namespace
}  // namespace plwg::harness::testing
