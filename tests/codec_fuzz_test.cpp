// Decoder-safety fuzzing: every wire message type must either decode or
// throw CodecError on arbitrary input — never crash or read out of bounds —
// and every message round-trips exactly.
#include <gtest/gtest.h>

#include <algorithm>

#include "lwg/messages.hpp"
#include "names/messages.hpp"
#include "sim/network.hpp"
#include "sim/simulator.hpp"
#include "transport/node_runtime.hpp"
#include "util/rng.hpp"
#include "vsync/messages.hpp"

namespace plwg {
namespace {

template <class Msg>
void fuzz_decode(std::uint64_t seed, int rounds = 300) {
  Rng rng(seed);
  for (int i = 0; i < rounds; ++i) {
    const std::size_t len = rng.next_below(200);
    std::vector<std::uint8_t> bytes(len);
    for (auto& b : bytes) b = static_cast<std::uint8_t>(rng.next_below(256));
    Decoder dec(bytes);
    try {
      (void)Msg::decode(dec);
    } catch (const CodecError&) {
      // expected for malformed input
    }
  }
}

TEST(CodecFuzz, VsyncMessagesSurviveGarbage) {
  fuzz_decode<vsync::OrderedMsgWire>(1);
  fuzz_decode<vsync::SendReqMsg>(2);
  fuzz_decode<vsync::FlushReqMsg>(3);
  fuzz_decode<vsync::FlushAckMsg>(4);
  fuzz_decode<vsync::FlushCutMsg>(5);
  fuzz_decode<vsync::NewViewMsg>(6);
  fuzz_decode<vsync::MergeProbeMsg>(7);
  fuzz_decode<vsync::MergeStartMsg>(8);
  fuzz_decode<vsync::MergeFlushedMsg>(9);
  fuzz_decode<vsync::FetchReplyMsg>(10);
  fuzz_decode<vsync::NackMsg>(11);
  fuzz_decode<vsync::HeartbeatMsg>(12);
}

TEST(CodecFuzz, LwgMessagesSurviveGarbage) {
  fuzz_decode<lwg::DataMsg>(21);
  fuzz_decode<lwg::DataMsgView>(29);  // zero-copy variant of DataMsg
  fuzz_decode<lwg::JoinMsg>(22);
  fuzz_decode<lwg::ViewMsg>(23);
  fuzz_decode<lwg::SwitchMsg>(24);
  fuzz_decode<lwg::SwitchReadyMsg>(25);
  fuzz_decode<lwg::SwitchedMsg>(26);
  fuzz_decode<lwg::RedirectMsg>(27);
  fuzz_decode<lwg::AllViewsMsg>(28);
}

// The memcpy fast paths and the zero-copy view must agree byte-for-byte
// with a reference per-byte decode on arbitrary well-formed-prefix input.
TEST(CodecFuzz, FixedWidthFastPathMatchesByteAssembly) {
  Rng rng(41);
  for (int i = 0; i < 500; ++i) {
    std::vector<std::uint8_t> bytes(16);
    for (auto& b : bytes) b = static_cast<std::uint8_t>(rng.next_below(256));
    Decoder fast(bytes);
    const std::uint16_t v16 = fast.get_u16();
    const std::uint32_t v32 = fast.get_u32();
    const std::uint64_t v64 = fast.get_u64();
    // Reference little-endian assembly, independent of the codec.
    auto ref = [&bytes](std::size_t off, std::size_t n) {
      std::uint64_t v = 0;
      for (std::size_t k = 0; k < n; ++k) {
        v |= static_cast<std::uint64_t>(bytes[off + k]) << (8 * k);
      }
      return v;
    };
    EXPECT_EQ(v16, ref(0, 2));
    EXPECT_EQ(v32, ref(2, 4));
    EXPECT_EQ(v64, ref(6, 8));
  }
}

// DataMsgView must see exactly the bytes DataMsg would copy, for random
// payloads, and the view must alias the wire buffer rather than copy.
TEST(CodecFuzz, DataMsgViewMatchesOwningDecode) {
  Rng rng(42);
  for (int i = 0; i < 200; ++i) {
    lwg::DataMsg msg;
    msg.lwg = LwgId{rng.next_below(1000)};
    msg.lwg_view =
        vsync::ViewId{ProcessId{static_cast<std::uint32_t>(rng.next_below(64))},
                      static_cast<std::uint32_t>(rng.next_below(1 << 20))};
    msg.payload.resize(rng.next_below(300));
    for (auto& b : msg.payload) {
      b = static_cast<std::uint8_t>(rng.next_below(256));
    }
    Encoder enc;
    msg.encode(enc);

    Decoder owning_dec(enc.bytes());
    const lwg::DataMsg owned = lwg::DataMsg::decode(owning_dec);
    Decoder view_dec(enc.bytes());
    const lwg::DataMsgView view = lwg::DataMsgView::decode(view_dec);

    EXPECT_EQ(view.lwg, owned.lwg);
    EXPECT_EQ(view.lwg_view, owned.lwg_view);
    ASSERT_EQ(view.payload.size(), owned.payload.size());
    EXPECT_TRUE(std::equal(view.payload.begin(), view.payload.end(),
                           owned.payload.begin()));
    if (!view.payload.empty()) {
      // Aliasing check: the span points into the encoder's buffer.
      EXPECT_GE(view.payload.data(), enc.bytes().data());
      EXPECT_LT(view.payload.data(), enc.bytes().data() + enc.size());
    }
  }
}

TEST(CodecFuzz, NamesMessagesSurviveGarbage) {
  fuzz_decode<names::SetReqMsg>(31);
  fuzz_decode<names::ReadReqMsg>(32);
  fuzz_decode<names::TestSetReqMsg>(33);
  fuzz_decode<names::MappingsMsg>(34);
  fuzz_decode<names::MultipleMappingsMsg>(35);
  fuzz_decode<names::SyncMsg>(36);
}

// The frame demux sits below every parser: arbitrary bytes handed to
// on_packet must be counted and dropped, never asserted on or thrown past.
TEST(CodecFuzz, TransportFrameDemuxSurvivesGarbage) {
  sim::Simulator sim;
  sim::Network net(sim, sim::NetworkConfig{});
  transport::NodeRuntime a(net), b(net);
  struct Greedy : transport::PortHandler {
    void on_message(NodeId, Decoder& dec) override {
      (void)dec.get_u64();  // demands bytes garbage frames rarely have
    }
  } greedy;
  b.register_port(transport::Port::kVsync, greedy);
  b.register_port(transport::Port::kApp, greedy);

  Rng rng(77);
  for (int i = 0; i < 2000; ++i) {
    const std::size_t len = rng.next_below(64);
    std::vector<std::uint8_t> bytes(len);
    for (auto& byte : bytes) {
      byte = static_cast<std::uint8_t>(rng.next_below(256));
    }
    b.on_packet(a.id(), bytes);
  }
  const auto& stats = b.stats();
  // Every garbage frame is accounted for by exactly one drop reason (or was
  // a miraculous valid frame the Greedy handler rejected as a decode error).
  EXPECT_EQ(stats.malformed_frames + stats.stale_incarnation_drops +
                stats.unbound_port_drops + stats.decode_errors,
            2000u);
  // Random 32-bit checksums essentially never validate.
  EXPECT_EQ(stats.malformed_frames, 2000u);
}

// Mutations of *valid* frames: flip a few bits or truncate, as the network
// fault injector does. Nothing may crash, and any frame that still decodes
// must decode to an untampered payload (checksum collisions aside, which
// random bit flips cannot find).
TEST(CodecFuzz, MutatedValidFramesSurviveTheDemux) {
  sim::Simulator sim;
  sim::NetworkConfig cfg;
  cfg.corrupt_probability = 1.0;
  sim::Network net(sim, cfg);
  transport::NodeRuntime a(net), b(net);
  struct Collect : transport::PortHandler {
    void on_message(NodeId, Decoder& dec) override {
      seen.push_back(dec.get_u32());
    }
    std::vector<std::uint32_t> seen;
  } collect;
  b.register_port(transport::Port::kApp, collect);
  for (std::uint32_t i = 0; i < 500; ++i) {
    Encoder payload;
    payload.put_u32(i);
    payload.put_u64(~static_cast<std::uint64_t>(i));
    a.send(transport::Port::kApp, b.id(), payload);
  }
  sim.run();
  for (std::uint32_t v : collect.seen) EXPECT_LT(v, 500u);
  EXPECT_EQ(collect.seen.size() + b.stats().malformed_frames, 500u);
}

// --- exact round-trips of representative populated messages ---------------

vsync::ViewId vid(std::uint32_t c, std::uint32_t s, std::uint32_t d = 0) {
  return vsync::ViewId{ProcessId{c}, s, d};
}

TEST(CodecRoundTrip, VsyncFlushCut) {
  vsync::FlushCutMsg msg;
  msg.old_view = vid(3, 9);
  msg.epoch = 4;
  msg.cut = {1, 2, 3, 7};
  vsync::OrderedMsg m;
  m.seq = 7;
  m.origin = ProcessId{5};
  m.sender_msg_id = 11;
  m.payload = {9, 8, 7};
  msg.retrans.push_back(m);
  Encoder enc;
  msg.encode(enc);
  Decoder dec(enc.bytes());
  const auto copy = vsync::FlushCutMsg::decode(dec);
  dec.expect_done();
  EXPECT_EQ(copy.old_view, msg.old_view);
  EXPECT_EQ(copy.epoch, msg.epoch);
  EXPECT_EQ(copy.cut, msg.cut);
  ASSERT_EQ(copy.retrans.size(), 1u);
  EXPECT_EQ(copy.retrans[0].payload, m.payload);
}

TEST(CodecRoundTrip, VsyncNewViewWithGenealogy) {
  vsync::NewViewMsg msg;
  msg.view.id = vid(1, 5, 77);
  msg.view.members = MemberSet{ProcessId{1}, ProcessId{2}};
  msg.view.predecessors = {vid(1, 4), vid(9, 2)};
  msg.departed = MemberSet{ProcessId{3}};
  Encoder enc;
  msg.encode(enc);
  Decoder dec(enc.bytes());
  const auto copy = vsync::NewViewMsg::decode(dec);
  dec.expect_done();
  EXPECT_EQ(copy.view, msg.view);
  EXPECT_EQ(copy.departed, msg.departed);
}

TEST(CodecRoundTrip, LwgSwitch) {
  lwg::SwitchMsg msg;
  msg.lwg = LwgId{12};
  msg.lwg_view = vid(2, 3);
  msg.to_hwg = HwgId{0xABCDEF};
  msg.contacts = MemberSet{ProcessId{0}, ProcessId{4}};
  Encoder enc;
  msg.encode(enc);
  Decoder dec(enc.bytes());
  const auto copy = lwg::SwitchMsg::decode(dec);
  dec.expect_done();
  EXPECT_EQ(copy.lwg, msg.lwg);
  EXPECT_EQ(copy.lwg_view, msg.lwg_view);
  EXPECT_EQ(copy.to_hwg, msg.to_hwg);
  EXPECT_EQ(copy.contacts, msg.contacts);
}

TEST(CodecRoundTrip, LwgAllViews) {
  lwg::AllViewsMsg msg;
  lwg::LwgView v;
  v.id = vid(4, 4, 4);
  v.members = MemberSet{ProcessId{4}, ProcessId{5}};
  v.hwg = HwgId{99};
  msg.views.push_back(lwg::LwgViewInfo{LwgId{7}, v, {}});
  Encoder enc;
  msg.encode(enc);
  Decoder dec(enc.bytes());
  const auto copy = lwg::AllViewsMsg::decode(dec);
  dec.expect_done();
  ASSERT_EQ(copy.views.size(), 1u);
  EXPECT_EQ(copy.views[0].lwg, LwgId{7});
  EXPECT_EQ(copy.views[0].view, v);
}

TEST(CodecRoundTrip, LwgViewInfoCarriesAncestry) {
  // The merge-views supersession decision rides on this field; losing it in
  // transit would silently re-enable the divergence it prevents.
  lwg::LwgViewInfo info;
  info.lwg = LwgId{9};
  info.view.id = vid(2, 7, 11);
  info.view.members = MemberSet{ProcessId{2}, ProcessId{3}};
  info.view.hwg = HwgId{5};
  info.ancestors = {vid(2, 6), vid(0, 3, 99), vid(1, 1)};
  Encoder enc;
  info.encode(enc);
  Decoder dec(enc.bytes());
  const auto copy = lwg::LwgViewInfo::decode(dec);
  dec.expect_done();
  EXPECT_EQ(copy.view, info.view);
  EXPECT_EQ(copy.ancestors, info.ancestors);
}

TEST(CodecRoundTrip, NamesSetReq) {
  names::SetReqMsg msg;
  msg.req_id = 1234;
  msg.lwg = LwgId{5};
  msg.entry.lwg_view = vid(0, 2);
  msg.entry.lwg_members = MemberSet{ProcessId{0}};
  msg.entry.hwg = HwgId{17};
  msg.entry.hwg_view = vid(0, 3);
  msg.entry.hwg_members = MemberSet{ProcessId{0}, ProcessId{1}};
  msg.entry.stamp = 6;
  msg.predecessors = {vid(0, 1)};
  Encoder enc;
  msg.encode(enc);
  Decoder dec(enc.bytes());
  const auto copy = names::SetReqMsg::decode(dec);
  dec.expect_done();
  EXPECT_EQ(copy.req_id, msg.req_id);
  EXPECT_EQ(copy.entry, msg.entry);
  EXPECT_EQ(copy.predecessors, msg.predecessors);
}

}  // namespace
}  // namespace plwg
