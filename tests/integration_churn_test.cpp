// Randomized whole-system churn: partitions, heals, crashes, and traffic
// against the full stack (lwg + names + vsync + sim), checked for the
// paper's convergence property — after quiescence every LWG has a single
// merged view mapped on a single HWG, and the naming service holds exactly
// one mapping per LWG.
#include <gtest/gtest.h>

#include "lwg_fixture.hpp"
#include "util/rng.hpp"

namespace plwg::lwg::testing {
namespace {

class ChurnTest : public LwgFixture,
                  public ::testing::WithParamInterface<std::uint64_t> {};

TEST_P(ChurnTest, PartitionChurnConverges) {
  Rng rng(GetParam());
  harness::WorldConfig cfg;
  cfg.num_processes = 6;
  cfg.num_name_servers = 2;
  cfg.net.seed = GetParam() ^ 0xc0ffee;
  cfg.lwg.policy_period_us = 8'000'000;
  cfg.lwg.shrink_delay_us = 6'000'000;
  build(cfg);

  const std::vector<LwgId> ids{LwgId{1}, LwgId{2}};
  form_lwg(ids[0], {0, 1, 2, 3, 4, 5});
  form_lwg(ids[1], {0, 1, 2, 3});

  bool partitioned = false;
  std::uint8_t tag = 0;
  for (int step = 0; step < 12; ++step) {
    const std::uint64_t action = rng.next_below(10);
    if (action < 5) {
      const int burst = static_cast<int>(rng.next_below(4)) + 1;
      for (int m = 0; m < burst; ++m) {
        const auto g = static_cast<std::size_t>(rng.next_below(ids.size()));
        const auto* view = lwg(0).view_of(ids[g]);
        const std::size_t sender =
            g == 1 ? rng.next_below(4) : rng.next_below(6);
        (void)view;
        lwg(sender).send(ids[g], payload(tag++));
      }
    } else if (action < 8 && !partitioned) {
      // Random two-way split; name server 0 goes left, server 1 right.
      std::vector<std::size_t> left, right;
      for (std::size_t i = 0; i < 6; ++i) {
        (rng.next_bool(0.5) ? left : right).push_back(i);
      }
      if (!left.empty() && !right.empty()) {
        world().partition({left, right}, {0, 1});
        partitioned = true;
      }
    } else if (partitioned) {
      world().heal();
      partitioned = false;
    }
    run_for(rng.next_range(500'000, 4'000'000));
  }
  world().heal();

  // Quiescence: every LWG reconverges to one view on one HWG.
  ASSERT_TRUE(run_until(
      [&] {
        return lwg_converged(ids[0], {0, 1, 2, 3, 4, 5},
                             members_of({0, 1, 2, 3, 4, 5})) &&
               lwg_converged(ids[1], {0, 1, 2, 3}, members_of({0, 1, 2, 3}));
      },
      300'000'000))
      << "seed " << GetParam();

  // The naming service converges to a single conflict-free mapping per LWG.
  ASSERT_TRUE(run_until(
      [&] {
        for (std::size_t s = 0; s < 2; ++s) {
          const auto& db = world().server(s).database();
          for (LwgId id : ids) {
            auto it = db.records.find(id);
            if (it == db.records.end()) return false;
            if (it->second.entries.size() != 1) return false;
          }
        }
        return true;
      },
      60'000'000))
      << "seed " << GetParam();

  // Virtual synchrony held throughout the churn at the LWG level.
  for (LwgId id : ids) check_lwg_virtual_synchrony(id, 6);

  // End-to-end traffic works on both groups.
  const auto before = user(5).total_delivered(ids[0]);
  lwg(0).send(ids[0], payload(255));
  EXPECT_TRUE(run_until(
      [&] { return user(5).total_delivered(ids[0]) > before; }, 20'000'000))
      << "seed " << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Seeds, ChurnTest,
                         ::testing::Values(21, 22, 23, 24, 25, 26, 27, 28, 29, 30,
                                           31, 32));

}  // namespace
}  // namespace plwg::lwg::testing
