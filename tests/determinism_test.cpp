// The sharded engine's determinism contract, end to end: the same seed must
// produce a byte-identical trace digest — deliveries, payloads, timer-event
// counts — and a clean oracle at 1, 2, and 8 worker threads, on a
// multi-segment world under chaos (partitions, crashes, restarts) with live
// application traffic.
//
// PLWG_DET_SEEDS overrides the seed count (default 50), PLWG_DET_FIRST the
// starting seed — same convention as the oracle sweep.
#include <gtest/gtest.h>

#include <cstdlib>
#include <string>
#include <vector>

#include "harness/chaos.hpp"
#include "harness/scenario.hpp"
#include "harness/world.hpp"
#include "lwg/lwg_user.hpp"
#include "util/codec.hpp"

namespace plwg::harness {
namespace {

std::uint64_t env_u64(const char* name, std::uint64_t fallback) {
  const char* value = std::getenv(name);
  if (value == nullptr || *value == '\0') return fallback;
  return std::strtoull(value, nullptr, 10);
}

class NullUser : public lwg::LwgUser {
 public:
  void on_lwg_view(LwgId, const lwg::LwgView&) override {}
  void on_lwg_data(LwgId, ProcessId, std::span<const std::uint8_t>) override {}
};

struct EpisodeResult {
  std::uint64_t digest = 0;
  bool converged = false;
  bool oracle_clean = false;
  std::string oracle_report;
};

/// One deterministic chaos episode on a 4-segment / 8-process WAN world:
/// form a segment-spanning LWG, interleave chaos with application sends,
/// quiesce, converge, and read the combined trace digest.
EpisodeResult run_episode(std::uint64_t seed, std::size_t threads) {
  WorldConfig cfg;
  cfg.num_processes = 8;
  cfg.num_name_servers = 2;
  cfg.segments = {{0, 1}, {2, 3}, {4, 5}, {6, 7}};
  cfg.sim_threads = threads;
  cfg.net.seed = seed;
  cfg.net.digest_payloads = true;
  SimWorld world(cfg);

  std::vector<NullUser> users(cfg.num_processes);
  const LwgId id{1};
  for (std::size_t i = 0; i < cfg.num_processes; ++i) {
    world.lwg(i).join(id, users[i]);
  }
  const bool formed = world.run_until(
      [&] {
        for (std::size_t i = 0; i < cfg.num_processes; ++i) {
          const lwg::LwgView* v = world.lwg(i).view_of(id);
          if (v == nullptr || v->members.size() != cfg.num_processes) {
            return false;
          }
        }
        return true;
      },
      60'000'000);
  EXPECT_TRUE(formed) << "seed " << seed << " threads " << threads
                      << ": lwg never formed";

  ChaosConfig chaos_cfg;
  chaos_cfg.seed = seed ^ 0x9e3779b97f4a7c15ULL;
  chaos_cfg.mean_interval_us = 1'500'000;
  chaos_cfg.mean_partition_us = 1'000'000;
  chaos_cfg.crash_probability = 0.3;
  chaos_cfg.max_crashes = 3;
  chaos_cfg.restart_probability = 0.7;
  chaos_cfg.mean_downtime_us = 1'000'000;
  ChaosMonkey chaos(world, chaos_cfg);
  // Interleave fault injection with application traffic so the digest
  // covers payload bytes crossing the backbone mid-chaos.
  for (int slice = 0; slice < 30; ++slice) {
    chaos.run_for(100'000);
    for (std::size_t i = 0; i < cfg.num_processes; ++i) {
      if (world.crashed(i)) continue;
      Encoder enc;
      enc.put_u64(seed);
      enc.put_u64(static_cast<std::uint64_t>(slice) * 100 + i);
      world.lwg(i).send(id, enc.take());
    }
  }
  chaos.quiesce();

  EpisodeResult out;
  out.converged = world.run_until(
      [&] { return world.convergence_failure().empty(); }, 200'000'000);
  out.digest = world.trace_digest();
  if (world.oracle_enabled()) {
    out.oracle_clean = world.oracle().clean();
    if (!out.oracle_clean) out.oracle_report = world.oracle().report_json();
    world.oracle().clear();  // report via gtest, not the world's backstop
  } else {
    out.oracle_clean = true;
  }
  return out;
}

TEST(DeterminismTest, IdenticalDigestsAtOneTwoAndEightThreads) {
  const std::uint64_t first = env_u64("PLWG_DET_FIRST", 1);
  const std::uint64_t count = env_u64("PLWG_DET_SEEDS", 50);
  for (std::uint64_t seed = first; seed < first + count; ++seed) {
    SCOPED_TRACE("determinism seed " + std::to_string(seed));
    const EpisodeResult base = run_episode(seed, 1);
    EXPECT_TRUE(base.converged);
    EXPECT_TRUE(base.oracle_clean) << base.oracle_report;
    for (std::size_t threads : {std::size_t{2}, std::size_t{8}}) {
      const EpisodeResult other = run_episode(seed, threads);
      EXPECT_EQ(base.digest, other.digest)
          << "seed " << seed << ": digest diverged at " << threads
          << " threads";
      EXPECT_EQ(base.converged, other.converged);
      EXPECT_TRUE(other.oracle_clean)
          << "threads " << threads << ": " << other.oracle_report;
    }
    if (::testing::Test::HasFatalFailure()) break;
  }
}

/// The adversarial corpus's fault shapes — flap trains and one-way links
/// inside each segment, lossy cross-segment overrides — must preserve the
/// contract on the sharded engine: every per-link drop/jitter draw comes
/// from the owning shard's RNG stream, so the digest cannot depend on the
/// worker-thread count or on cross-shard execution interleaving.
TEST(DeterminismTest, ScenarioFaultShapesAreThreadCountInvariant) {
  const Scenario scenario =
      load_scenario_file(scenario_dir() + "/wan_flap_asymmetric.json");
  const std::uint64_t seeds = env_u64("PLWG_DET_SCENARIO_SEEDS", 2);
  const std::uint64_t first = env_u64("PLWG_DET_FIRST", 1);
  for (std::uint64_t seed = first; seed < first + seeds; ++seed) {
    const ScenarioResult base = run_scenario(scenario, seed, /*threads=*/1);
    EXPECT_TRUE(base.formed) << "seed " << seed;
    EXPECT_TRUE(base.converged) << "seed " << seed << ": " << base.failure;
    EXPECT_TRUE(base.oracle_clean) << "seed " << seed << ": " << base.failure;
    for (std::size_t threads : {std::size_t{2}, std::size_t{8}}) {
      const ScenarioResult other = run_scenario(scenario, seed, threads);
      EXPECT_EQ(base.digest, other.digest)
          << "seed " << seed << ": scenario digest diverged at " << threads
          << " threads";
      EXPECT_EQ(base.converged, other.converged) << "seed " << seed;
      EXPECT_TRUE(other.oracle_clean)
          << "seed " << seed << " threads " << threads << ": "
          << other.failure;
    }
    if (::testing::Test::HasFatalFailure()) break;
  }
}

/// A single-LAN world has one shard: the engine must degenerate to the
/// classic single-threaded loop, so the digest is thread-count-invariant
/// trivially — pinned here to catch accidental sharding of single-LAN
/// worlds.
TEST(DeterminismTest, SingleLanWorldIsSingleShard) {
  WorldConfig cfg;
  cfg.num_processes = 4;
  cfg.sim_threads = 8;
  SimWorld world(cfg);
  EXPECT_EQ(world.engine().num_shards(), 1u);
  EXPECT_EQ(world.engine().threads(), 1u);
}

}  // namespace
}  // namespace plwg::harness
