// The Stop / StopOk handshake (paper Table 1): the flush must wait for the
// user's confirmation, sends issued between Stop and StopOk are queued, and
// auto_stop_ok mode bypasses the handshake.
#include <gtest/gtest.h>

#include "vsync_fixture.hpp"

namespace plwg::vsync::testing {
namespace {

/// A user that does NOT answer Stop until told to.
class SlowStopUser : public GroupUser {
 public:
  explicit SlowStopUser(VsyncHost& host) : host_(host) {}
  void on_view(HwgId, const View& view) override { views.push_back(view); }
  void on_data(HwgId, ProcessId, std::span<const std::uint8_t> data) override {
    delivered.push_back(data[0]);
  }
  void on_stop(HwgId gid) override {
    pending_stops.push_back(gid);
  }
  void release_stops() {
    for (HwgId gid : pending_stops) host_.stop_ok(gid);
    pending_stops.clear();
  }
  VsyncHost& host_;
  std::vector<View> views;
  std::vector<std::uint8_t> delivered;
  std::vector<HwgId> pending_stops;
};

class VsyncStopTest : public VsyncFixture {};

TEST_F(VsyncStopTest, FlushWaitsForStopOk) {
  build(2);
  const HwgId gid = host(0).allocate_group_id();
  SlowStopUser slow(host(1));
  host(0).create_group(gid, user(0));
  host(1).join_group(gid, MemberSet{pid(0)}, slow);
  ASSERT_TRUE(run_until(
      [&] {
        return !slow.views.empty() && slow.views.back().members.size() == 2;
      },
      10'000'000));
  const std::size_t views_before = slow.views.size();
  host(0).endpoint(gid)->force_flush();
  run_for(1'000'000);
  // The flush is stalled on the unanswered Stop: no new view anywhere.
  ASSERT_FALSE(slow.pending_stops.empty());
  EXPECT_EQ(slow.views.size(), views_before);
  const View* v0 = host(0).view_of(gid);
  ASSERT_NE(v0, nullptr);
  // Releasing the StopOk lets the flush complete.
  slow.release_stops();
  ASSERT_TRUE(run_until([&] { return slow.views.size() > views_before; },
                        10'000'000));
  EXPECT_EQ(slow.views.back().members, members_of({0, 1}));
}

TEST_F(VsyncStopTest, SendsBetweenStopAndStopOkAreDeliveredNextView) {
  build(2);
  const HwgId gid = host(0).allocate_group_id();
  SlowStopUser slow(host(1));
  host(0).create_group(gid, user(0));
  host(1).join_group(gid, MemberSet{pid(0)}, slow);
  ASSERT_TRUE(run_until(
      [&] {
        return !slow.views.empty() && slow.views.back().members.size() == 2;
      },
      10'000'000));
  host(0).endpoint(gid)->force_flush();
  ASSERT_TRUE(
      run_until([&] { return !slow.pending_stops.empty(); }, 5'000'000));
  // The stopped member submits a message mid-flush: queued, not lost.
  host(1).send(gid, payload(0x55));
  slow.release_stops();
  ASSERT_TRUE(run_until(
      [&] {
        return !slow.delivered.empty() && user(0).total_delivered(gid) >= 1;
      },
      10'000'000));
  EXPECT_EQ(slow.delivered.back(), 0x55);
}

TEST_F(VsyncStopTest, AutoStopOkSkipsTheUpcall) {
  VsyncConfig cfg;
  cfg.auto_stop_ok = true;
  build(2, {}, cfg);
  const HwgId gid = host(0).allocate_group_id();
  host(0).create_group(gid, user(0));
  host(1).join_group(gid, MemberSet{pid(0)}, user(1));
  ASSERT_TRUE(run_until(
      [&] { return converged(gid, {0, 1}, members_of({0, 1})); }, 10'000'000));
  host(0).endpoint(gid)->force_flush();
  ASSERT_TRUE(run_until(
      [&] { return user(1).log(gid).epochs.size() >= 2; }, 10'000'000));
  // No Stop upcall ever reached the user.
  EXPECT_EQ(user(0).log(gid).stops, 0);
  EXPECT_EQ(user(1).log(gid).stops, 0);
}

TEST_F(VsyncStopTest, UnansweredStopIsEventuallyForcedOutByTimeout) {
  // A member that never answers Stop stalls the flush until the initiator's
  // retry machinery suspects it — liveness is preserved at the cost of
  // excluding the unresponsive member (virtual-partition semantics).
  build(3);
  const HwgId gid = host(0).allocate_group_id();
  SlowStopUser mute(host(2));
  host(0).create_group(gid, user(0));
  host(1).join_group(gid, MemberSet{pid(0)}, user(1));
  ASSERT_TRUE(run_until(
      [&] { return converged(gid, {0, 1}, members_of({0, 1})); }, 10'000'000));
  host(2).join_group(gid, MemberSet{pid(0)}, mute);
  ASSERT_TRUE(run_until(
      [&] {
        return !mute.views.empty() && mute.views.back().members.size() == 3;
      },
      10'000'000));
  host(0).endpoint(gid)->force_flush();
  // mute never calls stop_ok.
  ASSERT_TRUE(run_until(
      [&] { return converged(gid, {0, 1}, members_of({0, 1})); },
      30'000'000));
}

}  // namespace
}  // namespace plwg::vsync::testing
