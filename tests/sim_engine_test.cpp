// sim::Engine: conservative-window sharded event loops. These tests drive
// the engine directly (no network) to pin the synchronization contract:
// lockstep windows, barrier-time mailbox injection in fixed order, exact
// clock advancement, and thread-count-independent execution order.
#include "sim/engine.hpp"

#include <gtest/gtest.h>

#include <string>
#include <vector>

namespace plwg::sim {
namespace {

TEST(EngineTest, SingleShardRunsLikeASimulator) {
  Engine engine(1);
  std::vector<int> order;
  engine.shard(0).schedule_at(30, [&] { order.push_back(3); });
  engine.shard(0).schedule_at(10, [&] { order.push_back(1); });
  engine.shard(0).schedule_at(20, [&] { order.push_back(2); });
  EXPECT_EQ(engine.run_until(25), 2u);
  EXPECT_EQ(engine.now(), 25);
  EXPECT_EQ(engine.shard(0).now(), 25);
  EXPECT_EQ(engine.run_until(100), 1u);
  EXPECT_EQ((std::vector<int>{1, 2, 3}), order);
  EXPECT_EQ(engine.now(), 100);
}

TEST(EngineTest, RunForAdvancesEveryShardExactly) {
  Engine engine(3);
  engine.set_lookahead(100);
  engine.run_for(12'345);
  for (std::size_t s = 0; s < 3; ++s) {
    EXPECT_EQ(engine.shard(s).now(), 12'345);
  }
  EXPECT_EQ(engine.now(), 12'345);
}

TEST(EngineTest, ThreadCountIsClampedToShards) {
  Engine::Config config;
  config.threads = 8;
  Engine engine(2, config);
  EXPECT_EQ(engine.threads(), 2u);
}

TEST(EngineTest, CrossShardPostArrivesAtItsTimestamp) {
  Engine engine(2);
  engine.set_lookahead(50);
  Time fired_at = -1;
  // Shard 0 posts into shard 1 at +120us (>= lookahead, as the network
  // guarantees by construction).
  engine.shard(0).schedule_at(10, [&] {
    engine.post(1, 130, [&] { fired_at = engine.shard(1).now(); });
  });
  engine.run_until(1'000);
  EXPECT_EQ(fired_at, 130);
}

TEST(EngineTest, IdlePostSchedulesDirectly) {
  Engine engine(2);
  engine.set_lookahead(50);
  bool fired = false;
  engine.post(1, 5, [&] { fired = true; });  // driver thread, idle
  engine.run_until(10);
  EXPECT_TRUE(fired);
}

TEST(EngineTest, BarrierHooksFireEachWindow) {
  Engine engine(2);
  engine.set_lookahead(100);
  int barriers = 0;
  engine.add_barrier_hook([&] { ++barriers; });
  engine.run_until(1'000);  // 10 windows of 100us
  EXPECT_EQ(barriers, 10);
}

/// The determinism contract at engine level: the same event program
/// produces the same observable order at 1 thread and at many threads.
std::string run_program(std::size_t threads) {
  Engine::Config config;
  config.threads = threads;
  Engine engine(4, config);
  engine.set_lookahead(100);
  std::string trace;  // appended at barriers only (single-threaded there)
  std::vector<std::vector<std::pair<Time, int>>> shard_events(4);
  // Each shard runs a periodic local event and occasionally posts to the
  // next shard; every event records (time, shard) into its shard's log.
  for (std::size_t s = 0; s < 4; ++s) {
    for (Time t = 10 + static_cast<Time>(s); t < 2'000; t += 37) {
      engine.shard(s).schedule_at(t, [&, s, t] {
        shard_events[s].emplace_back(t, static_cast<int>(s));
        if (t % 5 == 0) {
          const std::size_t dst = (s + 1) % 4;
          engine.post(dst, t + 150, [&, dst, t] {
            shard_events[dst].emplace_back(t + 150, 100 + static_cast<int>(dst));
          });
        }
      });
    }
  }
  engine.add_barrier_hook([&] {
    for (std::size_t s = 0; s < 4; ++s) {
      for (const auto& [t, tag] : shard_events[s]) {
        trace += std::to_string(t) + ":" + std::to_string(tag) + ";";
      }
      shard_events[s].clear();
    }
  });
  engine.run_until(3'000);
  return trace;
}

TEST(EngineTest, TraceIsIdenticalAcrossThreadCounts) {
  const std::string seq = run_program(1);
  EXPECT_FALSE(seq.empty());
  EXPECT_EQ(seq, run_program(2));
  EXPECT_EQ(seq, run_program(4));
}

TEST(EngineTest, EventCountAggregatesAcrossShards) {
  Engine engine(2);
  engine.set_lookahead(10);
  int fired = 0;
  engine.shard(0).schedule_at(5, [&] { ++fired; });
  engine.shard(1).schedule_at(7, [&] { ++fired; });
  EXPECT_EQ(engine.run_until(20), 2u);
  EXPECT_EQ(fired, 2);
}

}  // namespace
}  // namespace plwg::sim
