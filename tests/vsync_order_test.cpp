// Ordering robustness of the totally ordered multicast: reordering jitter,
// NACK repair of single drops, tail-loss repair via the sequencer's
// heartbeat high-water mark, and retransmission dedup.
#include <gtest/gtest.h>

#include "vsync_fixture.hpp"

namespace plwg::vsync::testing {
namespace {

class VsyncOrderTest : public VsyncFixture {
 protected:
  HwgId form_group(std::size_t n, sim::NetworkConfig net_cfg) {
    build(n, net_cfg);
    const HwgId gid = host(0).allocate_group_id();
    host(0).create_group(gid, user(0));
    std::vector<std::size_t> all{0};
    MemberSet members{pid(0)};
    for (std::size_t i = 1; i < n; ++i) {
      host(i).join_group(gid, MemberSet{pid(0)}, user(i));
      all.push_back(i);
      members.insert(pid(i));
    }
    EXPECT_TRUE(
        run_until([&] { return converged(gid, all, members); }, 20'000'000));
    return gid;
  }

  std::vector<std::uint8_t> flatten(std::size_t i, HwgId gid) {
    std::vector<std::uint8_t> out;
    for (const auto& e : user(i).log(gid).epochs) {
      for (const auto& [src, data] : e.delivered) out.push_back(data[0]);
    }
    return out;
  }
};

TEST_F(VsyncOrderTest, HeavyJitterStillDeliversInTotalOrder) {
  sim::NetworkConfig cfg;
  cfg.jitter_us = 5'000;  // deliveries reorder massively
  cfg.seed = 31;
  const HwgId gid = form_group(3, cfg);
  for (int m = 0; m < 30; ++m) {
    host(m % 3).send(gid, payload(static_cast<std::uint8_t>(m)));
  }
  ASSERT_TRUE(run_until(
      [&] {
        for (std::size_t i = 0; i < 3; ++i) {
          if (user(i).total_delivered(gid) != 30) return false;
        }
        return true;
      },
      20'000'000));
  EXPECT_EQ(flatten(0, gid), flatten(1, gid));
  EXPECT_EQ(flatten(1, gid), flatten(2, gid));
}

TEST_F(VsyncOrderTest, TailLossIsRepairedByHeartbeatHighWater) {
  // Send a burst into a lossy network, then go quiescent: only the
  // sequencer's heartbeat (carrying its high-water mark) can reveal a
  // dropped final message.
  sim::NetworkConfig cfg;
  cfg.drop_probability = 0.2;
  cfg.seed = 77;
  const HwgId gid = form_group(3, cfg);
  for (int m = 0; m < 5; ++m) {
    host(0).send(gid, payload(static_cast<std::uint8_t>(m)));
  }
  // No further traffic: repair must come from heartbeats + NACKs (or a
  // flush if the loss triggered a false suspicion).
  ASSERT_TRUE(run_until(
      [&] {
        for (std::size_t i = 0; i < 3; ++i) {
          if (user(i).total_delivered(gid) < 5) return false;
        }
        return true;
      },
      60'000'000));
  EXPECT_EQ(flatten(1, gid), flatten(2, gid));
}

TEST_F(VsyncOrderTest, RetransmittedSendsAreNotDuplicated) {
  // With drops, senders retransmit SEND_REQs; the sequencer must dedupe so
  // each message is delivered exactly once.
  sim::NetworkConfig cfg;
  cfg.drop_probability = 0.1;
  cfg.seed = 41;
  const HwgId gid = form_group(3, cfg);
  constexpr int kMsgs = 20;
  for (int m = 0; m < kMsgs; ++m) {
    host(1).send(gid, payload(static_cast<std::uint8_t>(m)));
  }
  ASSERT_TRUE(run_until(
      [&] {
        for (std::size_t i = 0; i < 3; ++i) {
          if (user(i).total_delivered(gid) < kMsgs) return false;
        }
        return true;
      },
      60'000'000));
  run_for(5'000'000);  // any duplicate would arrive by now
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_EQ(user(i).total_delivered(gid), static_cast<std::size_t>(kMsgs))
        << "process " << i;
    // Strictly increasing tags = exactly-once, FIFO.
    const auto seen = flatten(i, gid);
    for (std::size_t k = 0; k + 1 < seen.size(); ++k) {
      EXPECT_LT(seen[k], seen[k + 1]);
    }
  }
}

TEST_F(VsyncOrderTest, InterleavedBurstsKeepPerSenderFifo) {
  sim::NetworkConfig cfg;
  cfg.jitter_us = 1'000;
  cfg.drop_probability = 0.02;
  cfg.seed = 13;
  const HwgId gid = form_group(4, cfg);
  for (int m = 0; m < 12; ++m) {
    for (std::size_t i = 0; i < 4; ++i) {
      host(i).send(gid, payload(static_cast<std::uint8_t>(i * 50 + m)));
    }
    if (m % 4 == 0) run_for(50'000);
  }
  ASSERT_TRUE(run_until(
      [&] {
        for (std::size_t i = 0; i < 4; ++i) {
          if (user(i).total_delivered(gid) < 48) return false;
        }
        return true;
      },
      60'000'000));
  for (std::size_t observer = 0; observer < 4; ++observer) {
    std::map<int, int> last_per_sender;
    for (const auto& e : user(observer).log(gid).epochs) {
      for (const auto& [src, data] : e.delivered) {
        const int sender = data[0] / 50;
        const int m = data[0] % 50;
        auto it = last_per_sender.find(sender);
        if (it != last_per_sender.end()) {
          EXPECT_GT(m, it->second);
        }
        last_per_sender[sender] = m;
      }
    }
  }
}

}  // namespace
}  // namespace plwg::vsync::testing
