// Run-time reconfiguration details of the LWG service: forward-pointer
// redirects, leaves racing switches, queued sends across switches, the
// on_lwg_merge application hook, and baseline behaviour under partitions.
#include <gtest/gtest.h>

#include "lwg_fixture.hpp"

namespace plwg::lwg::testing {
namespace {

harness::WorldConfig dyn_config(std::size_t processes) {
  harness::WorldConfig cfg;
  cfg.num_processes = processes;
  cfg.num_name_servers = 2;
  cfg.lwg.policy_period_us = 2'000'000;
  cfg.lwg.shrink_delay_us = 4'000'000;
  return cfg;
}

class LwgReconfigTest : public LwgFixture {};

TEST_F(LwgReconfigTest, QueuedSendsSurviveASwitch) {
  build(dyn_config(8));
  form_lwg(LwgId{1}, {0, 1, 2, 3, 4, 5, 6, 7});
  form_lwg(LwgId{2}, {0, 1});
  // Fire a burst right as the policy window opens; some sends land inside
  // the switch freeze and must come out on the new HWG.
  for (int i = 0; i < 50; ++i) {
    lwg(0).send(LwgId{2}, payload(static_cast<std::uint8_t>(i)));
    run_for(100'000);
  }
  ASSERT_TRUE(run_until(
      [&] {
        return user(1).total_delivered(LwgId{2}) == 50 &&
               user(0).total_delivered(LwgId{2}) == 50;
      },
      40'000'000));
  EXPECT_GE(lwg(0).stats().switches_completed, 1u);
  // FIFO per sender preserved across the switch.
  std::vector<std::uint8_t> seen;
  for (const auto& e : user(1).log(LwgId{2}).epochs) {
    for (const auto& [src, data] : e.delivered) seen.push_back(data[0]);
  }
  for (std::size_t i = 0; i + 1 < seen.size(); ++i) {
    EXPECT_LT(seen[i], seen[i + 1]);
  }
}

TEST_F(LwgReconfigTest, LeaveDuringSwitchCompletes) {
  build(dyn_config(8));
  form_lwg(LwgId{1}, {0, 1, 2, 3, 4, 5, 6, 7});
  form_lwg(LwgId{2}, {0, 1, 2});
  // Trigger the eviction switch, and have member 2 leave around the same
  // time (2s policy period; leave lands mid-flight often enough that the
  // test exercises both orders deterministically under the fixed seed).
  run_for(1'900'000);
  lwg(2).leave(LwgId{2});
  ASSERT_TRUE(run_until(
      [&] { return lwg_converged(LwgId{2}, {0, 1}, members_of({0, 1})); },
      40'000'000));
  EXPECT_EQ(lwg(2).view_of(LwgId{2}), nullptr);
  // The group still carries data.
  lwg(0).send(LwgId{2}, payload(9));
  ASSERT_TRUE(run_until(
      [&] { return user(1).total_delivered(LwgId{2}) >= 1; }, 10'000'000));
}

TEST_F(LwgReconfigTest, OnLwgMergeHookReportsConstituents) {
  class MergeRecorder : public RecordingLwgUser {
   public:
    void on_lwg_merge(LwgId, const std::vector<LwgView>& constituents,
                      const LwgView& merged_view) override {
      merges++;
      last_constituents = constituents;
      last_merged = merged_view;
    }
    int merges = 0;
    std::vector<LwgView> last_constituents;
    LwgView last_merged;
  };

  harness::WorldConfig cfg = dyn_config(4);
  build(cfg);
  MergeRecorder recorder;
  const LwgId id{1};
  lwg(0).join(id, recorder);
  for (std::size_t i = 1; i < 4; ++i) lwg(i).join(id, user(i));
  ASSERT_TRUE(run_until(
      [&] { return lwg(0).view_of(id) != nullptr &&
                   lwg(0).view_of(id)->members.size() == 4; },
      30'000'000));

  world().partition({{0, 1}, {2, 3}}, {0, 1});
  ASSERT_TRUE(run_until(
      [&] {
        const LwgView* v = lwg(0).view_of(id);
        return v != nullptr && v->members.size() == 2;
      },
      30'000'000));
  world().heal();
  ASSERT_TRUE(run_until(
      [&] {
        const LwgView* v = lwg(0).view_of(id);
        return v != nullptr && v->members.size() == 4;
      },
      60'000'000));
  ASSERT_GE(recorder.merges, 1);
  EXPECT_GE(recorder.last_constituents.size(), 2u);
  EXPECT_EQ(recorder.last_merged.members, members_of({0, 1, 2, 3}));
  // Our own pre-merge view is among the constituents.
  bool own_found = false;
  for (const LwgView& c : recorder.last_constituents) {
    own_found |= c.members.contains(pid(0));
  }
  EXPECT_TRUE(own_found);
}

TEST_F(LwgReconfigTest, PerGroupModeSurvivesPartitionCycle) {
  harness::WorldConfig cfg = dyn_config(4);
  cfg.lwg.mode = MappingMode::kPerGroup;
  build(cfg);
  const LwgId id{1};
  form_lwg(id, {0, 1, 2, 3});
  world().partition({{0, 1}, {2, 3}}, {0, 1});
  ASSERT_TRUE(run_until(
      [&] {
        return lwg_converged(id, {0, 1}, members_of({0, 1})) &&
               lwg_converged(id, {2, 3}, members_of({2, 3}));
      },
      30'000'000));
  world().heal();
  ASSERT_TRUE(run_until(
      [&] { return lwg_converged(id, {0, 1, 2, 3}, members_of({0, 1, 2, 3})); },
      60'000'000));
}

TEST_F(LwgReconfigTest, StaticModeSurvivesPartitionCycle) {
  harness::WorldConfig cfg = dyn_config(4);
  cfg.lwg.mode = MappingMode::kStaticSingle;
  cfg.lwg.static_hwg = HwgId{0xFFFF'0001};
  cfg.lwg.static_contacts =
      MemberSet{ProcessId{0}, ProcessId{1}, ProcessId{2}, ProcessId{3}};
  build(cfg);
  const LwgId id{1};
  form_lwg(id, {0, 1, 2, 3});
  world().partition({{0, 1}, {2, 3}}, {0, 1});
  ASSERT_TRUE(run_until(
      [&] {
        return lwg_converged(id, {0, 1}, members_of({0, 1})) &&
               lwg_converged(id, {2, 3}, members_of({2, 3}));
      },
      30'000'000));
  world().heal();
  ASSERT_TRUE(run_until(
      [&] { return lwg_converged(id, {0, 1, 2, 3}, members_of({0, 1, 2, 3})); },
      60'000'000));
  // Static mode: still exactly one HWG everywhere.
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(lwg(i).member_hwgs().size(), 1u);
    EXPECT_EQ(*lwg(i).hwg_of(id), HwgId{0xFFFF'0001});
  }
}

TEST_F(LwgReconfigTest, RejoinAfterFullLeave) {
  build(dyn_config(3));
  const LwgId id{1};
  form_lwg(id, {0, 1, 2});
  for (std::size_t i = 0; i < 3; ++i) lwg(i).leave(id);
  ASSERT_TRUE(run_until(
      [&] {
        for (std::size_t i = 0; i < 3; ++i) {
          if (lwg(i).view_of(id) != nullptr) return false;
        }
        return true;
      },
      30'000'000));
  // The group can be re-created from scratch under the same LwgId.
  lwg(1).join(id, user(1));
  lwg(2).join(id, user(2));
  ASSERT_TRUE(run_until(
      [&] { return lwg_converged(id, {1, 2}, members_of({1, 2})); },
      40'000'000));
}

TEST_F(LwgReconfigTest, ManyGroupsManageableByOneProcess) {
  build(dyn_config(4));
  // 20 groups, same membership: all share one HWG; per-group cost is a map
  // entry, not a protocol stack.
  std::vector<LwgId> ids;
  for (std::uint64_t g = 0; g < 20; ++g) ids.push_back(LwgId{500 + g});
  for (LwgId id : ids) {
    lwg(0).join(id, user(0));
  }
  ASSERT_TRUE(run_until(
      [&] {
        for (LwgId id : ids) {
          if (lwg(0).view_of(id) == nullptr) return false;
        }
        return true;
      },
      60'000'000));
  // Concurrent creations at one process reuse one provisional HWG (plus the
  // share rule collapsing any straggler), so the memberships converge to 1.
  ASSERT_TRUE(run_until(
      [&] { return lwg(0).member_hwgs().size() == 1; }, 60'000'000));
  EXPECT_EQ(lwg(0).local_groups().size(), 20u);
}

}  // namespace
}  // namespace plwg::lwg::testing
