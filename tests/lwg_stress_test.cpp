// Stress interactions between the reconfiguration machinery and faults:
// partitions landing mid-switch, graceful shutdown, naming-service refresh
// after HWG view changes (Table 4 stage 2 as a checkable state), and a
// long mixed soak.
#include <gtest/gtest.h>

#include "lwg_fixture.hpp"
#include "util/rng.hpp"

namespace plwg::lwg::testing {
namespace {

harness::WorldConfig stress_config(std::size_t processes) {
  harness::WorldConfig cfg;
  cfg.num_processes = processes;
  cfg.num_name_servers = 2;
  cfg.lwg.policy_period_us = 2'000'000;
  cfg.lwg.shrink_delay_us = 4'000'000;
  return cfg;
}

class LwgStressTest : public LwgFixture {};

TEST_F(LwgStressTest, PartitionDuringSwitchRecovers) {
  build(stress_config(8));
  form_lwg(LwgId{1}, {0, 1, 2, 3, 4, 5, 6, 7});
  form_lwg(LwgId{2}, {0, 1});
  // The interference rule will switch LWG 2 at the next policy period
  // (2s boundary). Partition right around that moment.
  run_for(1'950'000);
  world().partition({{0, 1, 2, 3}, {4, 5, 6, 7}}, {0, 1});
  run_for(8'000'000);  // switch machinery + partition chaos interleave
  world().heal();
  // Whatever interleaving happened, LWG 2 must converge to {0,1} with both
  // members on one HWG and working delivery.
  ASSERT_TRUE(run_until(
      [&] { return lwg_converged(LwgId{2}, {0, 1}, members_of({0, 1})); },
      120'000'000));
  const auto before = user(1).total_delivered(LwgId{2});
  lwg(0).send(LwgId{2}, payload(5));
  ASSERT_TRUE(run_until(
      [&] { return user(1).total_delivered(LwgId{2}) > before; },
      20'000'000));
  // And the big group survived too.
  ASSERT_TRUE(run_until(
      [&] {
        return lwg_converged(LwgId{1}, {0, 1, 2, 3, 4, 5, 6, 7},
                             members_of({0, 1, 2, 3, 4, 5, 6, 7}));
      },
      120'000'000));
}

TEST_F(LwgStressTest, ShutdownLeavesAllGroupsCleanly) {
  build(stress_config(4));
  form_lwg(LwgId{1}, {0, 1, 2, 3});
  form_lwg(LwgId{2}, {0, 1, 2});
  form_lwg(LwgId{3}, {0, 3});
  lwg(0).shutdown();
  ASSERT_TRUE(run_until(
      [&] {
        return lwg_converged(LwgId{1}, {1, 2, 3}, members_of({1, 2, 3})) &&
               lwg_converged(LwgId{2}, {1, 2}, members_of({1, 2})) &&
               lwg_converged(LwgId{3}, {3}, members_of({3}));
      },
      60'000'000));
  EXPECT_TRUE(lwg(0).local_groups().empty());
  // The shrink rule eventually clears p0's HWG memberships too.
  ASSERT_TRUE(run_until(
      [&] { return world().vsync(0).groups().empty(); }, 30'000'000));
}

TEST_F(LwgStressTest, NsTracksHwgViewAfterMembershipChange) {
  // Table 4 stage 2 as a test: when the underlying HWG view changes, the
  // LWG coordinator re-registers the mapping against the new HWG view.
  build(stress_config(4));
  const LwgId id{1};
  form_lwg(id, {0, 1, 2});
  run_for(2'000'000);
  const auto& db0 = world().server(0).database();
  ASSERT_TRUE(db0.records.contains(id));
  const names::MappingEntry before = db0.records.at(id).alive_entries()[0];

  // A fourth process joins the LWG (and hence the HWG): new HWG view.
  lwg(3).join(id, user(3));
  ASSERT_TRUE(run_until(
      [&] { return lwg_converged(id, {0, 1, 2, 3}, members_of({0, 1, 2, 3})); },
      30'000'000));
  ASSERT_TRUE(run_until(
      [&] {
        const auto& rec = world().server(0).database().records.at(id);
        if (rec.entries.size() != 1) return false;
        // Copy: alive_entries() returns by value, so a reference into the
        // temporary vector would dangle past this statement.
        const names::MappingEntry e = rec.alive_entries()[0];
        return e.hwg_members.size() == 4 && e.stamp > before.stamp &&
               !(e.hwg_view == before.hwg_view);
      },
      30'000'000));
}

TEST_F(LwgStressTest, MixedSoakConvergesAndStaysConsistent) {
  Rng rng(4242);
  build(stress_config(6));
  const std::vector<LwgId> ids{LwgId{1}, LwgId{2}};
  form_lwg(ids[0], {0, 1, 2, 3, 4, 5});
  form_lwg(ids[1], {0, 1, 2});

  bool partitioned = false;
  std::uint8_t tag = 0;
  for (int step = 0; step < 25; ++step) {
    switch (rng.next_below(6)) {
      case 0:
      case 1: {  // traffic burst (only from current members)
        for (int m = 0; m < 4; ++m) {
          const std::size_t sender = rng.next_below(3);
          const LwgId g = ids[rng.next_below(2)];
          if (lwg(sender).view_of(g) != nullptr) {
            lwg(sender).send(g, payload(tag++));
          }
        }
        break;
      }
      case 2: {  // partition or heal
        if (partitioned) {
          world().heal();
          partitioned = false;
        } else {
          world().partition({{0, 1, 2}, {3, 4, 5}}, {0, 1});
          partitioned = true;
        }
        break;
      }
      case 3: {  // leave + rejoin a member of group 2
        // Keep it simple: process 2 churns in group 2.
        if (lwg(2).view_of(ids[1]) != nullptr) {
          lwg(2).leave(ids[1]);
        } else if (lwg(2).local_groups().empty() ||
                   lwg(2).view_of(ids[1]) == nullptr) {
          bool joined = false;
          for (LwgId g : lwg(2).local_groups()) joined |= g == ids[1];
          if (!joined) lwg(2).join(ids[1], user(2));
        }
        break;
      }
      default:
        break;  // idle step
    }
    run_for(rng.next_range(500'000, 3'000'000));
  }
  world().heal();
  // Group 1 must converge to everyone; group 2 to {0,1} plus 2 iff joined.
  ASSERT_TRUE(run_until(
      [&] {
        return lwg_converged(ids[0], {0, 1, 2, 3, 4, 5},
                             members_of({0, 1, 2, 3, 4, 5}));
      },
      300'000'000));
  const bool two_in = lwg(2).view_of(ids[1]) != nullptr;
  const MemberSet expect2 =
      two_in ? members_of({0, 1, 2}) : members_of({0, 1});
  std::vector<std::size_t> who2 = two_in ? std::vector<std::size_t>{0, 1, 2}
                                         : std::vector<std::size_t>{0, 1};
  ASSERT_TRUE(run_until([&] { return lwg_converged(ids[1], who2, expect2); },
                        120'000'000));
  // End-to-end traffic on both groups.
  const auto b0 = user(5).total_delivered(ids[0]);
  const auto b1 = user(1).total_delivered(ids[1]);
  lwg(0).send(ids[0], payload(200));
  lwg(0).send(ids[1], payload(201));
  ASSERT_TRUE(run_until(
      [&] {
        return user(5).total_delivered(ids[0]) > b0 &&
               user(1).total_delivered(ids[1]) > b1;
      },
      30'000'000));
}

}  // namespace
}  // namespace plwg::lwg::testing
