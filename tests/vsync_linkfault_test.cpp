// Vsync behaviour under directed link faults: one-way (asymmetric) links and
// lost control messages. These pin the NEW_VIEW-loss recovery path (a member
// that sent FLUSH_DONE but never saw the resulting view must not wedge in
// Stopped forever) and audit failure detection when only one direction of a
// link is dead — the adversarial shapes the scenario corpus generates.
#include <gtest/gtest.h>

#include "vsync_fixture.hpp"

namespace plwg::vsync::testing {
namespace {

class VsyncLinkFaultTest : public VsyncFixture {
 protected:
  HwgId form_group(std::size_t n, sim::NetworkConfig net_cfg = {}) {
    build(n, net_cfg);
    const HwgId gid = host(0).allocate_group_id();
    host(0).create_group(gid, user(0));
    std::vector<std::size_t> all{0};
    MemberSet members{pid(0)};
    for (std::size_t i = 1; i < n; ++i) {
      host(i).join_group(gid, MemberSet{pid(0)}, user(i));
      all.push_back(i);
      members.insert(pid(i));
    }
    EXPECT_TRUE(
        run_until([&] { return converged(gid, all, members); }, 10'000'000));
    return gid;
  }
};

// A flush participant that loses the NEW_VIEW multicast must recover. The
// window: p2 delivers the cut, sends FLUSH_DONE, and parks in Stopped; the
// initiator's NEW_VIEW is then dropped on the (now one-way) link. Cross-view
// heartbeats keep feeding both failure detectors, so neither side suspects
// the other — without the FLUSH_DONE re-offer the straggler would stay a
// deaf zombie forever. Regression for exactly that wedge.
TEST_F(VsyncLinkFaultTest, StoppedMemberRecoversFromLostNewView) {
  const HwgId gid = form_group(4);

  // p3 leaves, forcing the coordinator (p0) to run a flush with p1 and p2.
  host(3).leave_group(gid);

  // Catch p2 in Stopped (cut delivered, FLUSH_DONE in flight) before the
  // NEW_VIEW comes back. The whole window is a couple of network round
  // trips, far below the fixture's 10ms run_until step, so poll at 50us.
  bool caught = false;
  for (int i = 0; i < 100'000 && !caught; ++i) {
    run_for(50);
    const GroupEndpoint* ep = host(2).endpoint(gid);
    caught = ep != nullptr && ep->state() == GroupEndpoint::State::kStopped;
  }
  ASSERT_TRUE(caught) << "never observed p2 in Stopped during the flush";

  // Kill the initiator->p2 direction: the NEW_VIEW multicast (and any
  // heartbeats from p0) vanish, while p2's own traffic still gets through.
  net_->set_link_fault(node(0), node(2), sim::LinkFault{.blocked = true});

  // The survivors install the 3-member view without p2's help.
  ASSERT_TRUE(run_until(
      [&] { return converged(gid, {0, 1}, members_of({0, 1, 2})); },
      10'000'000));

  // While the link is down p2 has no way to learn the view; it must sit in
  // Stopped (not defunct, not suspected into a new flush).
  run_for(500'000);
  {
    const GroupEndpoint* ep = host(2).endpoint(gid);
    ASSERT_NE(ep, nullptr);
    EXPECT_EQ(ep->state(), GroupEndpoint::State::kStopped);
  }

  // Heal. p2's periodic FLUSH_DONE re-offer reaches the initiator, which
  // replays the NEW_VIEW; p2 installs it and rejoins the live view.
  net_->clear_link_fault(node(0), node(2));
  ASSERT_TRUE(run_until(
      [&] { return converged(gid, {0, 1, 2}, members_of({0, 1, 2})); },
      10'000'000));

  // The recovered member is fully live: it can still multicast and deliver.
  const auto before = user(2).total_delivered(gid);
  host(0).send(gid, payload(7));
  EXPECT_TRUE(run_until(
      [&] { return user(2).total_delivered(gid) > before; }, 5'000'000));
}

// Coordinator->member direction dead: p2 goes deaf to p0 but p0 still hears
// p2's heartbeats, so p0 never suspects p2 and the group keeps its view.
// The audit: no mutual-suspicion livelock, no safety violation (oracle runs
// in TearDown), and once the link heals every member converges on one view
// and delivery resumes for the deaf side.
TEST_F(VsyncLinkFaultTest, OneWayDeafMemberConvergesAfterHeal) {
  const HwgId gid = form_group(3);

  net_->set_link_fault(node(0), node(2), sim::LinkFault{.blocked = true});
  // Traffic during the fault keeps the sequencer and repair paths busy.
  for (int burst = 0; burst < 4; ++burst) {
    host(0).send(gid, payload(static_cast<std::uint8_t>(burst)));
    host(2).send(gid, payload(static_cast<std::uint8_t>(0x40 + burst)));
    run_for(1'000'000);
  }
  net_->clear_link_fault(node(0), node(2));

  ASSERT_TRUE(run_until(
      [&] {
        const View* v = host(0).view_of(gid);
        if (v == nullptr) return false;
        // Whatever membership the detectors settled on, all processes that
        // are in it must agree on it, and p0 and p2 must end up together
        // again (either the view never changed or they re-merged).
        if (!v->members.contains(pid(0)) || !v->members.contains(pid(2))) {
          return false;
        }
        std::vector<std::size_t> idx;
        for (std::size_t i = 0; i < 3; ++i) {
          if (v->members.contains(pid(i))) idx.push_back(i);
        }
        return converged(gid, idx, v->members);
      },
      30'000'000));

  // Delivery is live again end to end after the heal.
  const auto before = user(2).total_delivered(gid);
  host(0).send(gid, payload(0x7E));
  EXPECT_TRUE(run_until(
      [&] { return user(2).total_delivered(gid) > before; }, 5'000'000));
}

// Member->coordinator direction dead: p0 stops hearing p2, suspects it, and
// must complete the exclusion flush without p2's cooperation (every ack from
// p2 is lost). p2, cut off from the group's progress, takes over its stale
// view on its own. The audit: the survivors install the 2-member view in
// bounded time, and after the heal the merge path reunites all three into a
// single common view — nobody is wedged on either side of the asymmetry.
TEST_F(VsyncLinkFaultTest, MuteMemberIsExcludedThenRemergesAfterHeal) {
  const HwgId gid = form_group(3);

  net_->set_link_fault(node(2), node(0), sim::LinkFault{.blocked = true});

  // Survivors must reach a 2-member view despite p2 never acking anything.
  ASSERT_TRUE(run_until(
      [&] { return converged(gid, {0, 1}, members_of({0, 1})); },
      20'000'000));

  net_->clear_link_fault(node(2), node(0));

  // Full recovery: the partitioned-out member merges back and all three end
  // up in one view again, with delivery live end to end.
  ASSERT_TRUE(run_until(
      [&] { return converged(gid, {0, 1, 2}, members_of({0, 1, 2})); },
      30'000'000));
  const auto before = user(0).total_delivered(gid);
  host(2).send(gid, payload(0x55));
  EXPECT_TRUE(run_until(
      [&] { return user(0).total_delivered(gid) > before; }, 5'000'000));
}

}  // namespace
}  // namespace plwg::vsync::testing
