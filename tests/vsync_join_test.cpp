// Join-path edge cases at the heavy-weight layer: unreachable contacts,
// joins across partitions, duplicate joins, join retries, and abandoning a
// join in flight.
#include <gtest/gtest.h>

#include "vsync_fixture.hpp"

namespace plwg::vsync::testing {
namespace {

class VsyncJoinTest : public VsyncFixture {};

TEST_F(VsyncJoinTest, JoinRetriesUntilContactBecomesReachable) {
  build(2);
  const HwgId gid = host(0).allocate_group_id();
  host(0).create_group(gid, user(0));
  net_->set_partitions({{node(0)}, {node(1)}});
  host(1).join_group(gid, MemberSet{pid(0)}, user(1));
  run_for(3'000'000);
  EXPECT_EQ(host(1).view_of(gid), nullptr);  // still joining
  net_->heal();
  ASSERT_TRUE(run_until(
      [&] { return converged(gid, {0, 1}, members_of({0, 1})); }, 10'000'000));
}

TEST_F(VsyncJoinTest, JoinThroughForwardingMember) {
  // The joiner only knows a non-coordinator member; the JOIN_REQ must be
  // forwarded to the acting coordinator.
  build(3);
  const HwgId gid = host(0).allocate_group_id();
  host(0).create_group(gid, user(0));
  host(1).join_group(gid, MemberSet{pid(0)}, user(1));
  ASSERT_TRUE(run_until(
      [&] { return converged(gid, {0, 1}, members_of({0, 1})); }, 10'000'000));
  host(2).join_group(gid, MemberSet{pid(1)}, user(2));  // contact != coord
  ASSERT_TRUE(run_until(
      [&] { return converged(gid, {0, 1, 2}, members_of({0, 1, 2})); },
      10'000'000));
}

TEST_F(VsyncJoinTest, AbandonedJoinLeavesNoResidue) {
  build(2);
  const HwgId gid = host(0).allocate_group_id();
  host(0).create_group(gid, user(0));
  net_->set_partitions({{node(0)}, {node(1)}});
  host(1).join_group(gid, MemberSet{pid(0)}, user(1));
  run_for(1'000'000);
  host(1).leave_group(gid);  // abandon the join attempt
  EXPECT_FALSE(host(1).is_member(gid));
  net_->heal();
  run_for(5'000'000);
  // The abandoned joiner never appears in the group.
  EXPECT_EQ(host(0).view_of(gid)->members, members_of({0}));
}

TEST_F(VsyncJoinTest, LateJoinReqAfterMembershipIsAnsweredWithView) {
  // A joiner whose NEW_VIEW was lost re-sends JOIN_REQ; members answer by
  // re-publishing the view rather than running another view change.
  sim::NetworkConfig cfg;
  cfg.drop_probability = 0.25;
  cfg.seed = 17;
  build(2, cfg);
  const HwgId gid = host(0).allocate_group_id();
  host(0).create_group(gid, user(0));
  host(1).join_group(gid, MemberSet{pid(0)}, user(1));
  ASSERT_TRUE(run_until(
      [&] { return converged(gid, {0, 1}, members_of({0, 1})); },
      60'000'000));
}

TEST_F(VsyncJoinTest, ManySimultaneousJoinersConvergeInFewViews) {
  build(8);
  const HwgId gid = host(0).allocate_group_id();
  host(0).create_group(gid, user(0));
  MemberSet all{pid(0)};
  for (std::size_t i = 1; i < 8; ++i) {
    host(i).join_group(gid, MemberSet{pid(0)}, user(i));
    all.insert(pid(i));
  }
  ASSERT_TRUE(run_until(
      [&] {
        return converged(gid, {0, 1, 2, 3, 4, 5, 6, 7}, all);
      },
      15'000'000));
  // Batching: far fewer view changes than joiners.
  EXPECT_LE(user(0).log(gid).epochs.size(), 5u);
}

TEST_F(VsyncJoinTest, JoinerBringsNoStaleState) {
  build(3);
  const HwgId gid = host(0).allocate_group_id();
  host(0).create_group(gid, user(0));
  host(1).join_group(gid, MemberSet{pid(0)}, user(1));
  ASSERT_TRUE(run_until(
      [&] { return converged(gid, {0, 1}, members_of({0, 1})); }, 10'000'000));
  host(0).send(gid, payload(1));
  ASSERT_TRUE(
      run_until([&] { return user(1).total_delivered(gid) == 1; }, 5'000'000));
  host(2).join_group(gid, MemberSet{pid(0)}, user(2));
  ASSERT_TRUE(run_until(
      [&] { return converged(gid, {0, 1, 2}, members_of({0, 1, 2})); },
      10'000'000));
  // The pre-join message is not replayed to the joiner.
  run_for(2'000'000);
  EXPECT_EQ(user(2).total_delivered(gid), 0u);
}

}  // namespace
}  // namespace plwg::vsync::testing
