// Shared fixture for light-weight group tests: a SimWorld plus a recording
// LwgUser, with converge/partition helpers mirroring the vsync fixture one
// layer up.
#pragma once

#include <gtest/gtest.h>

#include <cctype>
#include <cstdlib>
#include <fstream>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "harness/world.hpp"
#include "vsync/group_endpoint.hpp"

namespace plwg::lwg::testing {

/// If PLWG_ORACLE_REPORT_DIR is set, write the oracle's JSON report there,
/// named after the running test — CI uploads the directory as an artifact
/// when a run fails, so violation traces survive the ephemeral runner.
inline void maybe_write_oracle_report(oracle::ProtocolOracle& o) {
  const char* dir = std::getenv("PLWG_ORACLE_REPORT_DIR");
  if (dir == nullptr || *dir == '\0') return;
  const auto* info = ::testing::UnitTest::GetInstance()->current_test_info();
  std::string name = info == nullptr
                         ? std::string("unknown")
                         : std::string(info->test_suite_name()) + "-" +
                               info->name();
  for (char& c : name) {
    if (std::isalnum(static_cast<unsigned char>(c)) == 0 && c != '-' &&
        c != '_') {
      c = '_';
    }
  }
  std::ofstream out(std::string(dir) + "/" + name + ".json");
  out << o.report_json();
}

class RecordingLwgUser : public LwgUser {
 public:
  struct Epoch {
    LwgView view;
    std::vector<std::pair<ProcessId, std::vector<std::uint8_t>>> delivered;
  };
  struct GroupLog {
    std::vector<Epoch> epochs;
  };

  void on_lwg_view(LwgId lwg, const LwgView& view) override {
    logs_[lwg].epochs.push_back(Epoch{view, {}});
  }
  void on_lwg_data(LwgId lwg, ProcessId src,
                   std::span<const std::uint8_t> data) override {
    auto& log = logs_[lwg];
    if (log.epochs.empty()) log.epochs.push_back(Epoch{});
    log.epochs.back().delivered.emplace_back(
        src, std::vector<std::uint8_t>(data.begin(), data.end()));
  }

  [[nodiscard]] const GroupLog& log(LwgId lwg) { return logs_[lwg]; }
  [[nodiscard]] std::size_t total_delivered(LwgId lwg) {
    std::size_t n = 0;
    for (const auto& e : logs_[lwg].epochs) n += e.delivered.size();
    return n;
  }

 private:
  std::map<LwgId, GroupLog> logs_;
};

class LwgFixture : public ::testing::Test {
 protected:
  void build(harness::WorldConfig config) {
    world_ = std::make_unique<harness::SimWorld>(std::move(config));
    users_.resize(world_->num_processes());
    for (auto& u : users_) u = std::make_unique<RecordingLwgUser>();
  }

  void TearDown() override {
    if (world_ && world_->oracle_enabled()) {
      oracle::ProtocolOracle& o = world_->oracle();
      if (!o.clean()) maybe_write_oracle_report(o);
      EXPECT_TRUE(o.clean()) << o.report_json();
      // Acknowledge: a failing test reports through gtest, not through the
      // SimWorld destructor's abort backstop.
      o.clear();
    }
  }

  harness::SimWorld& world() { return *world_; }
  lwg::LwgService& lwg(std::size_t i) { return world_->lwg(i); }
  RecordingLwgUser& user(std::size_t i) { return *users_[i]; }
  ProcessId pid(std::size_t i) { return world_->pid(i); }

  void run_for(Duration us) { world_->run_for(us); }
  bool run_until(const std::function<bool()>& pred, Duration timeout_us) {
    return world_->run_until(pred, timeout_us);
  }

  MemberSet members_of(std::initializer_list<std::size_t> indexes) {
    MemberSet set;
    for (std::size_t i : indexes) set.insert(pid(i));
    return set;
  }

  /// All listed processes installed the same LWG view with `members`, all
  /// mapped on the same HWG — and the vsync substrate under that view is
  /// stable: every member's endpoint is active (not mid-flush or mid-merge)
  /// and no listed member suspects another. Matching LWG views alone can be
  /// a transient snapshot while residual suspicion is still churning the
  /// HWG underneath; a send issued in that window lands in a dying view.
  bool lwg_converged(LwgId id, const std::vector<std::size_t>& indexes,
                     const MemberSet& members) {
    const LwgView* reference = nullptr;
    std::optional<HwgId> hwg;
    for (std::size_t i : indexes) {
      const LwgView* v = lwg(i).view_of(id);
      if (v == nullptr || v->members != members) return false;
      if (reference == nullptr) {
        reference = v;
      } else if (!(*v == *reference)) {
        return false;
      }
      const std::optional<HwgId> h = lwg(i).hwg_of(id);
      if (!h.has_value()) return false;
      if (!hwg.has_value()) {
        hwg = h;
      } else if (*h != *hwg) {
        return false;
      }
      const vsync::GroupEndpoint* ep = world_->vsync(i).endpoint(*h);
      if (ep == nullptr || ep->state() != vsync::GroupEndpoint::State::kActive) {
        return false;
      }
      for (std::size_t j : indexes) {
        if (ep->suspected().contains(pid(j))) return false;
      }
    }
    return true;
  }

  static std::vector<std::uint8_t> payload(std::uint8_t tag,
                                           std::size_t size = 8) {
    std::vector<std::uint8_t> data(size, 0);
    data[0] = tag;
    return data;
  }

  /// LWG-level virtual synchrony: any two processes that recorded the same
  /// pair of consecutive LWG views delivered identical message sequences in
  /// between, and per-sender FIFO holds at every observer.
  void check_lwg_virtual_synchrony(LwgId id, std::size_t n) {
    for (std::size_t i = 0; i < n; ++i) {
      const auto& ei = user(i).log(id).epochs;
      for (std::size_t j = i + 1; j < n; ++j) {
        const auto& ej = user(j).log(id).epochs;
        for (std::size_t a = 0; a + 1 < ei.size(); ++a) {
          for (std::size_t b = 0; b + 1 < ej.size(); ++b) {
            if (!(ei[a].view.id == ej[b].view.id)) continue;
            if (!(ei[a + 1].view.id == ej[b + 1].view.id)) continue;
            EXPECT_EQ(ei[a].delivered, ej[b].delivered)
                << "lwg " << id.value() << " procs " << i << "," << j
                << " between " << ei[a].view.id.to_string() << " and "
                << ei[a + 1].view.id.to_string();
          }
        }
      }
      // Per-sender FIFO across the whole history at observer i (payload
      // tags are monotone per sender in these tests).
      std::map<ProcessId, int> last;
      for (const auto& epoch : ei) {
        for (const auto& [src, data] : epoch.delivered) {
          auto it = last.find(src);
          if (it != last.end()) {
            EXPECT_GT(static_cast<int>(data[0]), it->second)
                << "per-sender FIFO violated at observer " << i;
          }
          last[src] = data[0];
        }
      }
    }
  }

  /// Joins processes `indexes` to `id` and waits for convergence.
  void form_lwg(LwgId id, const std::vector<std::size_t>& indexes) {
    MemberSet members;
    for (std::size_t i : indexes) {
      lwg(i).join(id, user(i));
      members.insert(pid(i));
    }
    ASSERT_TRUE(run_until(
        [&] { return lwg_converged(id, indexes, members); }, 20'000'000))
        << "lwg " << id.value() << " did not converge";
  }

  std::unique_ptr<harness::SimWorld> world_;
  std::vector<std::unique_ptr<RecordingLwgUser>> users_;
};

}  // namespace plwg::lwg::testing
