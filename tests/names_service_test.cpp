// End-to-end naming-service tests: Table 2 primitives over the simulated
// network, server fail-over, anti-entropy reconciliation across partitions,
// and the MULTIPLE-MAPPINGS callback (paper Sects. 5.2, 6.1).
#include <gtest/gtest.h>

#include <memory>
#include <optional>

#include "names/naming_agent.hpp"
#include "sim/network.hpp"
#include "sim/simulator.hpp"
#include "transport/node_runtime.hpp"

namespace plwg::names {
namespace {

MappingEntry entry(std::uint32_t coord, std::uint32_t seq, std::uint64_t hwg,
                   std::initializer_list<std::uint32_t> members = {0, 1},
                   std::uint64_t stamp = 1) {
  MappingEntry e;
  e.lwg_view = ViewId{ProcessId{coord}, seq};
  for (auto m : members) e.lwg_members.insert(ProcessId{m});
  e.hwg = HwgId{hwg};
  e.hwg_members = e.lwg_members;
  e.stamp = stamp;
  return e;
}

class RecordingListener : public ConflictListener {
 public:
  void on_multiple_mappings(LwgId lwg,
                            const std::vector<MappingEntry>& entries) override {
    callbacks.emplace_back(lwg, entries);
  }
  std::vector<std::pair<LwgId, std::vector<MappingEntry>>> callbacks;
};

class NamesServiceTest : public ::testing::Test {
 protected:
  /// `clients` client nodes and `servers` server nodes.
  void build(std::size_t clients, std::size_t servers) {
    net_ = std::make_unique<sim::Network>(sim_, sim::NetworkConfig{});
    for (std::size_t i = 0; i < clients; ++i) {
      client_nodes_.push_back(std::make_unique<transport::NodeRuntime>(*net_));
    }
    for (std::size_t j = 0; j < servers; ++j) {
      server_nodes_.push_back(std::make_unique<transport::NodeRuntime>(*net_));
    }
    std::vector<NodeId> server_ids;
    for (const auto& s : server_nodes_) server_ids.push_back(s->id());
    for (std::size_t j = 0; j < servers; ++j) {
      server_agents_.push_back(std::make_unique<NamingAgent>(
          *server_nodes_[j], NamingConfig{}, server_ids));
      std::vector<NodeId> peers;
      for (std::size_t k = 0; k < servers; ++k) {
        if (k != j) peers.push_back(server_ids[k]);
      }
      server_agents_[j]->enable_server(peers);
    }
    for (std::size_t i = 0; i < clients; ++i) {
      std::vector<NodeId> order = server_ids;
      std::rotate(order.begin(),
                  order.begin() + static_cast<std::ptrdiff_t>(i % servers),
                  order.end());
      client_agents_.push_back(std::make_unique<NamingAgent>(
          *client_nodes_[i], NamingConfig{}, order));
    }
  }

  void run_for(Duration us) { sim_.run_until(sim_.now() + us); }

  NamingAgent& client(std::size_t i) { return *client_agents_[i]; }
  NamingAgent& server(std::size_t j) { return *server_agents_[j]; }

  sim::Simulator sim_;
  std::unique_ptr<sim::Network> net_;
  std::vector<std::unique_ptr<transport::NodeRuntime>> client_nodes_;
  std::vector<std::unique_ptr<transport::NodeRuntime>> server_nodes_;
  std::vector<std::unique_ptr<NamingAgent>> client_agents_;
  std::vector<std::unique_ptr<NamingAgent>> server_agents_;
};

TEST_F(NamesServiceTest, SetThenReadReturnsMapping) {
  build(2, 1);
  const LwgId lwg{7};
  client(0).set(lwg, entry(1, 1, 100), {});
  run_for(500'000);
  std::optional<std::vector<MappingEntry>> result;
  client(1).read(lwg, [&](LwgId, const std::vector<MappingEntry>& entries) {
    result = entries;
  });
  run_for(500'000);
  ASSERT_TRUE(result.has_value());
  ASSERT_EQ(result->size(), 1u);
  EXPECT_EQ((*result)[0].hwg, HwgId{100});
}

TEST_F(NamesServiceTest, ReadOfUnknownLwgReturnsEmpty) {
  build(1, 1);
  std::optional<std::vector<MappingEntry>> result;
  client(0).read(LwgId{99}, [&](LwgId, const std::vector<MappingEntry>& e) {
    result = e;
  });
  run_for(500'000);
  ASSERT_TRUE(result.has_value());
  EXPECT_TRUE(result->empty());
}

TEST_F(NamesServiceTest, TestSetFirstWriterWins) {
  build(2, 1);
  const LwgId lwg{7};
  std::optional<std::vector<MappingEntry>> r0, r1;
  client(0).testset(lwg, entry(1, 1, 100),
                    [&](LwgId, const std::vector<MappingEntry>& e) { r0 = e; });
  client(1).testset(lwg, entry(2, 1, 200),
                    [&](LwgId, const std::vector<MappingEntry>& e) { r1 = e; });
  run_for(500'000);
  ASSERT_TRUE(r0 && r1);
  ASSERT_EQ(r0->size(), 1u);
  ASSERT_EQ(r1->size(), 1u);
  // Both see the same winner (whoever the server processed first).
  EXPECT_EQ((*r0)[0].hwg, (*r1)[0].hwg);
}

TEST_F(NamesServiceTest, ClientFailsOverToSecondServer) {
  build(1, 2);
  net_->crash(server_nodes_[0]->id());  // the client's preferred server
  const LwgId lwg{7};
  client(0).set(lwg, entry(1, 1, 100), {});
  std::optional<std::vector<MappingEntry>> result;
  client(0).read(lwg, [&](LwgId, const std::vector<MappingEntry>& e) {
    result = e;
  });
  run_for(3'000'000);  // one timeout + retry on server 1
  ASSERT_TRUE(result.has_value());
  ASSERT_EQ(result->size(), 1u);
}

TEST_F(NamesServiceTest, AntiEntropyPropagatesBetweenServers) {
  build(2, 2);
  const LwgId lwg{7};
  client(0).set(lwg, entry(1, 1, 100), {});  // lands on server 0
  run_for(3'000'000);                        // sync interval passes
  EXPECT_TRUE(server(1).database().records.contains(lwg));
}

TEST_F(NamesServiceTest, PartitionedServersReconcileOnHeal) {
  build(2, 2);
  // Client 0 + server 0 on one side; client 1 + server 1 on the other.
  net_->set_partitions({{client_nodes_[0]->id(), server_nodes_[0]->id()},
                        {client_nodes_[1]->id(), server_nodes_[1]->id()}});
  const LwgId lwg{7};
  client(0).set(lwg, entry(1, 1, 100, {0}), {});
  client(1).set(lwg, entry(2, 1, 200, {1}), {});
  run_for(3'000'000);
  // Divergent while partitioned.
  EXPECT_EQ(server(0).database().records.at(lwg).entries.size(), 1u);
  EXPECT_EQ(server(1).database().records.at(lwg).entries.size(), 1u);
  net_->heal();
  run_for(3'000'000);
  // Reconciled: both servers hold both mappings (paper Table 3).
  EXPECT_EQ(server(0).database().records.at(lwg).entries.size(), 2u);
  EXPECT_EQ(server(1).database().records.at(lwg).entries.size(), 2u);
  EXPECT_TRUE(server(0).database().records.at(lwg).has_conflict());
}

TEST_F(NamesServiceTest, ConflictTriggersMultipleMappingsCallback) {
  build(2, 2);
  RecordingListener listener0, listener1;
  client(0).set_conflict_listener(&listener0);
  client(1).set_conflict_listener(&listener1);
  net_->set_partitions({{client_nodes_[0]->id(), server_nodes_[0]->id()},
                        {client_nodes_[1]->id(), server_nodes_[1]->id()}});
  const LwgId lwg{7};
  // Client node ids are 0 and 1: register each as the member of its view so
  // the callbacks have deliverable targets.
  client(0).set(lwg, entry(1, 1, 100, {0}), {});
  client(1).set(lwg, entry(2, 1, 200, {1}), {});
  run_for(3'000'000);
  EXPECT_TRUE(listener0.callbacks.empty());
  net_->heal();
  run_for(4'000'000);
  // Both sides' members were notified with all mappings.
  ASSERT_FALSE(listener0.callbacks.empty());
  ASSERT_FALSE(listener1.callbacks.empty());
  EXPECT_EQ(listener0.callbacks[0].first, lwg);
  EXPECT_EQ(listener0.callbacks[0].second.size(), 2u);
}

TEST_F(NamesServiceTest, CallbackRepeatsWhileConflictPersists) {
  build(1, 1);
  RecordingListener listener;
  client(0).set_conflict_listener(&listener);
  const LwgId lwg{7};
  client(0).set(lwg, entry(1, 1, 100, {0}), {});
  client(0).set(lwg, entry(2, 1, 200, {0}), {});
  run_for(6'000'000);
  // Initial notification plus at least one periodic re-send.
  EXPECT_GE(listener.callbacks.size(), 2u);
}

TEST_F(NamesServiceTest, ResolvingConflictStopsCallbacks) {
  build(1, 1);
  RecordingListener listener;
  client(0).set_conflict_listener(&listener);
  const LwgId lwg{7};
  client(0).set(lwg, entry(1, 1, 100, {0}), {});
  client(0).set(lwg, entry(2, 1, 200, {0}), {});
  run_for(1'000'000);
  ASSERT_FALSE(listener.callbacks.empty());
  // A merged view supersedes both conflicting mappings.
  client(0).set(lwg, entry(1, 9, 200, {0}, 2),
                {ViewId{ProcessId{1}, 1}, ViewId{ProcessId{2}, 1}});
  run_for(500'000);
  const std::size_t count = listener.callbacks.size();
  run_for(8'000'000);
  EXPECT_EQ(listener.callbacks.size(), count);
}

TEST_F(NamesServiceTest, SetIsRetriedUntilAcked) {
  sim::NetworkConfig cfg;
  cfg.drop_probability = 0.4;
  cfg.seed = 7;
  net_ = std::make_unique<sim::Network>(sim_, cfg);
  client_nodes_.push_back(std::make_unique<transport::NodeRuntime>(*net_));
  server_nodes_.push_back(std::make_unique<transport::NodeRuntime>(*net_));
  const std::vector<NodeId> servers{server_nodes_[0]->id()};
  server_agents_.push_back(std::make_unique<NamingAgent>(
      *server_nodes_[0], NamingConfig{}, servers));
  server_agents_[0]->enable_server({});
  client_agents_.push_back(std::make_unique<NamingAgent>(
      *client_nodes_[0], NamingConfig{}, servers));
  client(0).set(LwgId{7}, entry(1, 1, 100), {});
  run_for(20'000'000);
  EXPECT_TRUE(server(0).database().records.contains(LwgId{7}));
}

}  // namespace
}  // namespace plwg::names
