// Flush-protocol edge cases: the fetch path (cut contents the initiator
// lacks), phase retries under loss, the stuck-state watchdog, joins racing
// a flush, and stale-message rejection.
#include <gtest/gtest.h>

#include "vsync_fixture.hpp"

namespace plwg::vsync::testing {
namespace {

class VsyncFlushTest : public VsyncFixture {
 protected:
  HwgId form_group(std::size_t n, sim::NetworkConfig net_cfg = {},
                   VsyncConfig vs_cfg = {}) {
    build(n, net_cfg, vs_cfg);
    const HwgId gid = host(0).allocate_group_id();
    host(0).create_group(gid, user(0));
    std::vector<std::size_t> all{0};
    MemberSet members{pid(0)};
    for (std::size_t i = 1; i < n; ++i) {
      host(i).join_group(gid, MemberSet{pid(0)}, user(i));
      all.push_back(i);
      members.insert(pid(i));
    }
    EXPECT_TRUE(
        run_until([&] { return converged(gid, all, members); }, 15'000'000));
    return gid;
  }
};

TEST_F(VsyncFlushTest, NewCoordinatorFetchesMessagesItMissed) {
  // The sequencer (p0) orders a message, crashes before p1 receives it but
  // after p2 does; the new coordinator (p1) must fetch the content from p2
  // during the flush so the cut is delivered uniformly.
  sim::NetworkConfig net_cfg;
  net_cfg.jitter_us = 2'000;  // make per-receiver arrival times diverge
  net_cfg.seed = 99;
  const HwgId gid = form_group(3, net_cfg);
  for (int m = 0; m < 10; ++m) host(0).send(gid, payload(m));
  run_for(700);  // some ORDERED messages are still in flight
  net_->crash(node(0));
  ASSERT_TRUE(run_until(
      [&] { return converged(gid, {1, 2}, members_of({1, 2})); }, 15'000'000));
  // Survivors agree exactly (whatever subset stabilized).
  EXPECT_EQ(user(1).total_delivered(gid), user(2).total_delivered(gid));
  const auto& e1 = user(1).log(gid).epochs;
  const auto& e2 = user(2).log(gid).epochs;
  EXPECT_EQ(e1[e1.size() - 2].delivered, e2[e2.size() - 2].delivered);
}

TEST_F(VsyncFlushTest, FlushCompletesDespiteHeavyLoss) {
  sim::NetworkConfig net_cfg;
  net_cfg.drop_probability = 0.08;  // every phase message may drop
  net_cfg.seed = 5;
  const HwgId gid = form_group(4, net_cfg);
  host(3).leave_group(gid);
  ASSERT_TRUE(run_until(
      [&] {
        // Loss can provoke transient false suspicions; the end state is
        // what matters: everyone but the leaver in one view.
        return converged(gid, {0, 1, 2}, members_of({0, 1, 2})) &&
               !host(3).is_member(gid);
      },
      120'000'000));
}

TEST_F(VsyncFlushTest, WatchdogReformsViewAfterInitiatorCrash) {
  VsyncConfig vs_cfg;
  const HwgId gid = form_group(4, {}, vs_cfg);
  // Crash the coordinator exactly while it runs a view change it initiated
  // (a join is pending), wedging participants in Stopping/Flushing.
  host(0).endpoint(gid)->force_flush();
  run_for(120'000);  // FLUSH_REQ delivered; acks in flight
  net_->crash(node(0));
  // The watchdog at the next legitimate coordinator re-forms the view.
  ASSERT_TRUE(run_until(
      [&] { return converged(gid, {1, 2, 3}, members_of({1, 2, 3})); },
      30'000'000));
}

TEST_F(VsyncFlushTest, JoinDuringFlush) {
  build(4);
  const HwgId gid = host(0).allocate_group_id();
  host(0).create_group(gid, user(0));
  host(1).join_group(gid, MemberSet{pid(0)}, user(1));
  host(2).join_group(gid, MemberSet{pid(0)}, user(2));
  ASSERT_TRUE(run_until(
      [&] { return converged(gid, {0, 1, 2}, members_of({0, 1, 2})); },
      15'000'000));
  host(0).endpoint(gid)->force_flush();
  host(3).join_group(gid, MemberSet{pid(0)}, user(3));
  ASSERT_TRUE(run_until(
      [&] { return converged(gid, {0, 1, 2, 3}, members_of({0, 1, 2, 3})); },
      15'000'000));
}

TEST_F(VsyncFlushTest, ForceFlushIsNoopAtNonCoordinator) {
  const HwgId gid = form_group(3);
  const auto views_before = user(0).log(gid).epochs.size();
  host(2).endpoint(gid)->force_flush();  // not the coordinator
  run_for(3'000'000);
  EXPECT_EQ(user(0).log(gid).epochs.size(), views_before);
}

TEST_F(VsyncFlushTest, ForceFlushInstallsFreshViewWithSameMembers) {
  const HwgId gid = form_group(3);
  const ViewId before = host(0).view_of(gid)->id;
  host(0).endpoint(gid)->force_flush();
  ASSERT_TRUE(run_until(
      [&] {
        const View* v = host(2).view_of(gid);
        return v != nullptr && !(v->id == before);
      },
      10'000'000));
  const View* v = host(2).view_of(gid);
  EXPECT_EQ(v->members, members_of({0, 1, 2}));
  ASSERT_EQ(v->predecessors.size(), 1u);
  EXPECT_EQ(v->predecessors[0], before);
}

TEST_F(VsyncFlushTest, StaleOrderedFromSupersededViewIsIgnored) {
  const HwgId gid = form_group(2);
  host(0).send(gid, payload(1));
  ASSERT_TRUE(
      run_until([&] { return user(1).total_delivered(gid) == 1; }, 5'000'000));
  const std::size_t epochs_before = user(1).log(gid).epochs.size();
  host(0).endpoint(gid)->force_flush();
  ASSERT_TRUE(run_until(
      [&] { return user(1).log(gid).epochs.size() > epochs_before; },
      10'000'000));
  // Nothing new was delivered by the flush itself.
  EXPECT_EQ(user(1).total_delivered(gid), 1u);
}

TEST_F(VsyncFlushTest, BackToBackFlushesStaySane) {
  const HwgId gid = form_group(4);
  for (int i = 0; i < 5; ++i) {
    host(0).endpoint(gid)->force_flush();
    host(1).send(gid, payload(static_cast<std::uint8_t>(i)));
    run_for(1'500'000);
  }
  ASSERT_TRUE(run_until(
      [&] {
        for (std::size_t i = 0; i < 4; ++i) {
          if (user(i).total_delivered(gid) != 5) return false;
        }
        return true;
      },
      20'000'000));
  // All members delivered the identical sequence across all the epochs.
  auto flat = [&](std::size_t i) {
    std::vector<std::uint8_t> out;
    for (const auto& e : user(i).log(gid).epochs) {
      for (const auto& [src, data] : e.delivered) out.push_back(data[0]);
    }
    return out;
  };
  const auto ref = flat(0);
  for (std::size_t i = 1; i < 4; ++i) EXPECT_EQ(flat(i), ref);
}

TEST_F(VsyncFlushTest, LeaveDuringFlushIsHonoredEventually) {
  const HwgId gid = form_group(4);
  host(0).endpoint(gid)->force_flush();
  host(3).leave_group(gid);
  ASSERT_TRUE(run_until(
      [&] { return converged(gid, {0, 1, 2}, members_of({0, 1, 2})); },
      15'000'000));
  EXPECT_FALSE(host(3).is_member(gid));
}

}  // namespace
}  // namespace plwg::vsync::testing
