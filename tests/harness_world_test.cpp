// SimWorld harness: wiring invariants, partition helpers with name-server
// placement, and whole-run determinism (identical configs produce identical
// evolutions — the property every experiment in bench/ relies on).
#include <gtest/gtest.h>

#include "harness/world.hpp"
#include "lwg/lwg_user.hpp"

namespace plwg::harness {
namespace {

class CountingUser : public lwg::LwgUser {
 public:
  void on_lwg_view(LwgId, const lwg::LwgView& view) override {
    views.push_back(view);
  }
  void on_lwg_data(LwgId, ProcessId src,
                   std::span<const std::uint8_t> data) override {
    deliveries.emplace_back(src, std::vector<std::uint8_t>(data.begin(),
                                                           data.end()));
  }
  std::vector<lwg::LwgView> views;
  std::vector<std::pair<ProcessId, std::vector<std::uint8_t>>> deliveries;
};

TEST(SimWorld, ProcessIdsMatchIndexes) {
  WorldConfig cfg;
  cfg.num_processes = 3;
  SimWorld world(cfg);
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_EQ(world.pid(i).value(), i);
    EXPECT_EQ(world.node(i).value(), i);
  }
  // Name servers occupy the node ids after the processes.
  EXPECT_EQ(world.server_node(0).value(), 3u);
}

TEST(SimWorld, RunForAdvancesSimulatedTime) {
  SimWorld world(WorldConfig{});
  const Time before = world.simulator().now();
  world.run_for(123'456);
  EXPECT_EQ(world.simulator().now(), before + 123'456);
}

TEST(SimWorld, RunUntilStopsEarlyOnPredicate) {
  SimWorld world(WorldConfig{});
  const Time start = world.simulator().now();
  EXPECT_TRUE(world.run_until(
      [&] { return world.simulator().now() >= start + 50'000; }, 10'000'000));
  EXPECT_LT(world.simulator().now(), start + 1'000'000);
}

TEST(SimWorld, PartitionPlacesServersOnRequestedSides) {
  WorldConfig cfg;
  cfg.num_processes = 4;
  cfg.num_name_servers = 2;
  SimWorld world(cfg);
  world.partition({{0, 1}, {2, 3}}, {0, 1});
  EXPECT_TRUE(world.network().reachable(world.node(0), world.server_node(0)));
  EXPECT_FALSE(world.network().reachable(world.node(0), world.server_node(1)));
  EXPECT_TRUE(world.network().reachable(world.node(2), world.server_node(1)));
  world.heal();
  EXPECT_TRUE(world.network().reachable(world.node(0), world.server_node(1)));
}

TEST(SimWorld, IdenticalConfigsEvolveIdentically) {
  // Run the same scripted scenario twice in fresh worlds; every observable
  // (view ids, delivery order, simulated timestamps of convergence) must
  // match bit for bit.
  auto run_scenario = [] {
    WorldConfig cfg;
    cfg.num_processes = 4;
    cfg.num_name_servers = 2;
    SimWorld world(cfg);
    std::vector<CountingUser> users(4);
    const LwgId id{9};
    for (std::size_t i = 0; i < 4; ++i) world.lwg(i).join(id, users[i]);
    world.run_until(
        [&] {
          for (std::size_t i = 0; i < 4; ++i) {
            const lwg::LwgView* v = world.lwg(i).view_of(id);
            if (v == nullptr || v->members.size() != 4) return false;
          }
          return true;
        },
        60'000'000);
    world.lwg(1).send(id, {1, 2, 3});
    world.partition({{0, 1}, {2, 3}}, {0, 1});
    world.run_for(10'000'000);
    world.heal();
    world.run_until(
        [&] {
          const lwg::LwgView* v = world.lwg(0).view_of(id);
          return v != nullptr && v->members.size() == 4;
        },
        120'000'000);
    struct Observation {
      Time end_time;
      lwg::LwgView final_view;
      std::size_t views_seen;
      std::size_t deliveries;
    };
    return Observation{world.simulator().now(), *world.lwg(0).view_of(id),
                       users[0].views.size(), users[0].deliveries.size()};
  };
  const auto a = run_scenario();
  const auto b = run_scenario();
  EXPECT_EQ(a.end_time, b.end_time);
  EXPECT_TRUE(a.final_view == b.final_view);
  EXPECT_EQ(a.views_seen, b.views_seen);
  EXPECT_EQ(a.deliveries, b.deliveries);
}

TEST(SimWorld, CrashStopsAProcess) {
  WorldConfig cfg;
  cfg.num_processes = 2;
  SimWorld world(cfg);
  world.crash(1);
  EXPECT_TRUE(world.network().crashed(world.node(1)));
  EXPECT_FALSE(world.network().crashed(world.node(0)));
}

}  // namespace
}  // namespace plwg::harness
