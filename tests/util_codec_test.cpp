#include "util/codec.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <vector>

#include "util/types.hpp"

namespace plwg {
namespace {

TEST(Codec, RoundTripsFixedWidthIntegers) {
  Encoder enc;
  enc.put_u8(0xAB);
  enc.put_u16(0xBEEF);
  enc.put_u32(0xDEADBEEF);
  enc.put_u64(0x0123456789ABCDEFULL);
  enc.put_i64(-42);
  enc.put_bool(true);
  enc.put_bool(false);

  Decoder dec(enc.bytes());
  EXPECT_EQ(dec.get_u8(), 0xAB);
  EXPECT_EQ(dec.get_u16(), 0xBEEF);
  EXPECT_EQ(dec.get_u32(), 0xDEADBEEFu);
  EXPECT_EQ(dec.get_u64(), 0x0123456789ABCDEFULL);
  EXPECT_EQ(dec.get_i64(), -42);
  EXPECT_TRUE(dec.get_bool());
  EXPECT_FALSE(dec.get_bool());
  EXPECT_TRUE(dec.done());
}

TEST(Codec, RoundTripsStrongIds) {
  Encoder enc;
  enc.put_id(ProcessId{7});
  enc.put_id(HwgId{0xFFFF'FFFF'0000'0001ULL});
  enc.put_id(LwgId{12});

  Decoder dec(enc.bytes());
  EXPECT_EQ(dec.get_id<ProcessId>(), ProcessId{7});
  EXPECT_EQ(dec.get_id<HwgId>(), HwgId{0xFFFF'FFFF'0000'0001ULL});
  EXPECT_EQ(dec.get_id<LwgId>(), LwgId{12});
}

TEST(Codec, RoundTripsBytesAndStrings) {
  Encoder enc;
  const std::vector<std::uint8_t> blob{1, 2, 3, 250};
  enc.put_bytes(blob);
  enc.put_string("hello world");
  enc.put_string("");

  Decoder dec(enc.bytes());
  EXPECT_EQ(dec.get_bytes(), blob);
  EXPECT_EQ(dec.get_string(), "hello world");
  EXPECT_EQ(dec.get_string(), "");
  dec.expect_done();
}

TEST(Codec, PutRawAppendsWithoutPrefix) {
  Encoder inner;
  inner.put_u32(99);
  Encoder outer;
  outer.put_u8(1);
  outer.put_raw(inner.bytes());
  EXPECT_EQ(outer.size(), 5u);
  Decoder dec(outer.bytes());
  EXPECT_EQ(dec.get_u8(), 1);
  EXPECT_EQ(dec.get_u32(), 99u);
}

TEST(Codec, TruncatedIntegerThrows) {
  Encoder enc;
  enc.put_u16(7);
  Decoder dec(enc.bytes());
  EXPECT_THROW((void)dec.get_u32(), CodecError);
}

TEST(Codec, TruncatedBytesThrows) {
  Encoder enc;
  enc.put_u32(1000);  // claims 1000 bytes follow, none do
  Decoder dec(enc.bytes());
  EXPECT_THROW((void)dec.get_bytes(), CodecError);
}

TEST(Codec, ExpectDoneThrowsOnTrailingBytes) {
  Encoder enc;
  enc.put_u8(1);
  enc.put_u8(2);
  Decoder dec(enc.bytes());
  (void)dec.get_u8();
  EXPECT_THROW(dec.expect_done(), CodecError);
}

TEST(Codec, InvalidIdRoundTrips) {
  Encoder enc;
  enc.put_id(ProcessId::invalid());
  Decoder dec(enc.bytes());
  EXPECT_FALSE(dec.get_id<ProcessId>().valid());
}

// --- get_count validation ----------------------------------------------------

TEST(Codec, GetCountZeroElementsIsValid) {
  Encoder enc;
  enc.put_u32(0);
  Decoder dec(enc.bytes());
  EXPECT_EQ(dec.get_count(8), 0u);
  dec.expect_done();
}

TEST(Codec, GetCountZeroMinElementBytesSkipsValidation) {
  // A zero per-element floor means "elements may be zero-size"; the count
  // itself must still decode, however large.
  Encoder enc;
  enc.put_u32(0xFFFFFFFF);
  Decoder dec(enc.bytes());
  EXPECT_EQ(dec.get_count(0), 0xFFFFFFFFu);
}

TEST(Codec, GetCountExactFitPasses) {
  Encoder enc;
  enc.put_u32(3);
  for (int i = 0; i < 3; ++i) enc.put_u64(static_cast<std::uint64_t>(i));
  Decoder dec(enc.bytes());
  EXPECT_EQ(dec.get_count(8), 3u);
}

TEST(Codec, GetCountOneTooManyThrows) {
  Encoder enc;
  enc.put_u32(4);  // claims 4 elements, only 3 follow
  for (int i = 0; i < 3; ++i) enc.put_u64(static_cast<std::uint64_t>(i));
  Decoder dec(enc.bytes());
  EXPECT_THROW((void)dec.get_count(8), CodecError);
}

TEST(Codec, GetCountHugeCountThrowsInsteadOfOverflowing) {
  // n * min_element_bytes would wrap a 32-bit product; the division-based
  // check must still reject the count.
  Encoder enc;
  enc.put_u32(0xFFFFFFFF);
  enc.put_u64(0);
  Decoder dec(enc.bytes());
  EXPECT_THROW((void)dec.get_count(8), CodecError);
}

TEST(Codec, GetCountHugeMinElementBytesThrows) {
  Encoder enc;
  enc.put_u32(2);
  enc.put_u64(0);
  Decoder dec(enc.bytes());
  EXPECT_THROW((void)dec.get_count(~std::size_t{0}), CodecError);
}

// --- zero-copy byte views ----------------------------------------------------

TEST(Codec, GetBytesViewAliasesInputBuffer) {
  Encoder enc;
  const std::vector<std::uint8_t> payload{1, 2, 3, 4, 5};
  enc.put_bytes(payload);
  enc.put_u8(0x7E);
  const auto& wire = enc.bytes();
  Decoder dec(wire);
  const auto view = dec.get_bytes_view();
  ASSERT_EQ(view.size(), payload.size());
  EXPECT_TRUE(std::equal(view.begin(), view.end(), payload.begin()));
  // The span points into the encoder's buffer — no copy was made.
  EXPECT_EQ(view.data(), wire.data() + 4);
  EXPECT_EQ(dec.get_u8(), 0x7E);
  dec.expect_done();
}

TEST(Codec, GetBytesViewEmpty) {
  Encoder enc;
  enc.put_bytes({});
  Decoder dec(enc.bytes());
  EXPECT_TRUE(dec.get_bytes_view().empty());
  dec.expect_done();
}

TEST(Codec, GetBytesViewTruncatedThrows) {
  Encoder enc;
  enc.put_u32(10);  // claims 10 bytes, none follow
  Decoder dec(enc.bytes());
  EXPECT_THROW((void)dec.get_bytes_view(), CodecError);
}

// --- bulk u64 spans ----------------------------------------------------------

TEST(Codec, U64SpanRoundTrips) {
  std::vector<std::uint64_t> vals{0, 1, 0xDEADBEEF, ~std::uint64_t{0},
                                  0x0123456789ABCDEFULL};
  Encoder enc;
  enc.put_u32(static_cast<std::uint32_t>(vals.size()));
  enc.put_u64_span(vals);
  Decoder dec(enc.bytes());
  std::vector<std::uint64_t> out(dec.get_count(8));
  dec.get_u64_span(out);
  EXPECT_EQ(out, vals);
  dec.expect_done();
}

TEST(Codec, U64SpanMatchesPerElementEncoding) {
  // The bulk path must be wire-compatible with a put_u64 loop.
  const std::vector<std::uint64_t> vals{1, 2, 3};
  Encoder bulk;
  bulk.put_u64_span(vals);
  Encoder loop;
  for (std::uint64_t v : vals) loop.put_u64(v);
  EXPECT_EQ(bulk.bytes(), loop.bytes());
}

TEST(Codec, U64SpanTruncatedThrows) {
  Encoder enc;
  enc.put_u64(7);
  Decoder dec(enc.bytes());
  std::vector<std::uint64_t> out(2);
  EXPECT_THROW(dec.get_u64_span(out), CodecError);
}

// --- encoder reuse -----------------------------------------------------------

TEST(Codec, EncoderClearKeepsReusableBuffer) {
  Encoder enc;
  enc.reserve(64);
  enc.put_u64(0x1111111111111111ULL);
  EXPECT_EQ(enc.size(), 8u);
  enc.clear();
  EXPECT_EQ(enc.size(), 0u);
  enc.put_u32(0x22222222);
  Decoder dec(enc.bytes());
  EXPECT_EQ(dec.get_u32(), 0x22222222u);
  dec.expect_done();
}

}  // namespace
}  // namespace plwg
