#include "util/codec.hpp"

#include <gtest/gtest.h>

#include "util/types.hpp"

namespace plwg {
namespace {

TEST(Codec, RoundTripsFixedWidthIntegers) {
  Encoder enc;
  enc.put_u8(0xAB);
  enc.put_u16(0xBEEF);
  enc.put_u32(0xDEADBEEF);
  enc.put_u64(0x0123456789ABCDEFULL);
  enc.put_i64(-42);
  enc.put_bool(true);
  enc.put_bool(false);

  Decoder dec(enc.bytes());
  EXPECT_EQ(dec.get_u8(), 0xAB);
  EXPECT_EQ(dec.get_u16(), 0xBEEF);
  EXPECT_EQ(dec.get_u32(), 0xDEADBEEFu);
  EXPECT_EQ(dec.get_u64(), 0x0123456789ABCDEFULL);
  EXPECT_EQ(dec.get_i64(), -42);
  EXPECT_TRUE(dec.get_bool());
  EXPECT_FALSE(dec.get_bool());
  EXPECT_TRUE(dec.done());
}

TEST(Codec, RoundTripsStrongIds) {
  Encoder enc;
  enc.put_id(ProcessId{7});
  enc.put_id(HwgId{0xFFFF'FFFF'0000'0001ULL});
  enc.put_id(LwgId{12});

  Decoder dec(enc.bytes());
  EXPECT_EQ(dec.get_id<ProcessId>(), ProcessId{7});
  EXPECT_EQ(dec.get_id<HwgId>(), HwgId{0xFFFF'FFFF'0000'0001ULL});
  EXPECT_EQ(dec.get_id<LwgId>(), LwgId{12});
}

TEST(Codec, RoundTripsBytesAndStrings) {
  Encoder enc;
  const std::vector<std::uint8_t> blob{1, 2, 3, 250};
  enc.put_bytes(blob);
  enc.put_string("hello world");
  enc.put_string("");

  Decoder dec(enc.bytes());
  EXPECT_EQ(dec.get_bytes(), blob);
  EXPECT_EQ(dec.get_string(), "hello world");
  EXPECT_EQ(dec.get_string(), "");
  dec.expect_done();
}

TEST(Codec, PutRawAppendsWithoutPrefix) {
  Encoder inner;
  inner.put_u32(99);
  Encoder outer;
  outer.put_u8(1);
  outer.put_raw(inner.bytes());
  EXPECT_EQ(outer.size(), 5u);
  Decoder dec(outer.bytes());
  EXPECT_EQ(dec.get_u8(), 1);
  EXPECT_EQ(dec.get_u32(), 99u);
}

TEST(Codec, TruncatedIntegerThrows) {
  Encoder enc;
  enc.put_u16(7);
  Decoder dec(enc.bytes());
  EXPECT_THROW((void)dec.get_u32(), CodecError);
}

TEST(Codec, TruncatedBytesThrows) {
  Encoder enc;
  enc.put_u32(1000);  // claims 1000 bytes follow, none do
  Decoder dec(enc.bytes());
  EXPECT_THROW((void)dec.get_bytes(), CodecError);
}

TEST(Codec, ExpectDoneThrowsOnTrailingBytes) {
  Encoder enc;
  enc.put_u8(1);
  enc.put_u8(2);
  Decoder dec(enc.bytes());
  (void)dec.get_u8();
  EXPECT_THROW(dec.expect_done(), CodecError);
}

TEST(Codec, InvalidIdRoundTrips) {
  Encoder enc;
  enc.put_id(ProcessId::invalid());
  Decoder dec(enc.bytes());
  EXPECT_FALSE(dec.get_id<ProcessId>().valid());
}

}  // namespace
}  // namespace plwg
