// Multi-LAN topology: intra-segment traffic behaves like the single bus;
// inter-segment traffic pays the store-and-forward backbone; WAN cuts are
// partitions along segment lines and the whole group stack works across
// LANs.
#include <gtest/gtest.h>

#include "harness/world.hpp"
#include "lwg_fixture.hpp"
#include "sim/network.hpp"

namespace plwg {
namespace {

struct Recorder : sim::NetHandler {
  explicit Recorder(sim::Simulator& sim) : sim_(sim) {}
  void on_packet(NodeId, std::span<const std::uint8_t>) override {
    arrivals.push_back(sim_.now());
  }
  sim::Simulator& sim_;
  std::vector<Time> arrivals;
};

class TopologyTest : public ::testing::Test {
 protected:
  void build(std::size_t n) {
    net_ = std::make_unique<sim::Network>(sim_, sim::NetworkConfig{});
    for (std::size_t i = 0; i < n; ++i) {
      handlers_.push_back(std::make_unique<Recorder>(sim_));
      nodes_.push_back(net_->add_node(*handlers_.back()));
    }
  }
  sim::Simulator sim_;
  std::unique_ptr<sim::Network> net_;
  std::vector<std::unique_ptr<Recorder>> handlers_;
  std::vector<NodeId> nodes_;
};

TEST_F(TopologyTest, IntraSegmentLatencyUnchanged) {
  build(4);
  net_->unicast(nodes_[0], nodes_[1], {1});
  sim_.run();
  const Time single_bus = handlers_[1]->arrivals.at(0);

  handlers_[1]->arrivals.clear();
  net_->set_segments({{nodes_[0], nodes_[1]}, {nodes_[2], nodes_[3]}},
                     sim::WanConfig{});
  net_->unicast(nodes_[0], nodes_[1], {1});
  sim_.run();
  EXPECT_EQ(handlers_[1]->arrivals.at(0) - single_bus, single_bus);
}

TEST_F(TopologyTest, InterSegmentPaysTheBackbone) {
  build(4);
  sim::WanConfig wan;
  wan.propagation_delay_us = 5'000;
  net_->set_segments({{nodes_[0], nodes_[1]}, {nodes_[2], nodes_[3]}}, wan);
  net_->unicast(nodes_[0], nodes_[1], {1});  // same LAN
  net_->unicast(nodes_[0], nodes_[2], {1});  // cross LAN
  sim_.run();
  const Time local = handlers_[1]->arrivals.at(0);
  const Time remote = handlers_[2]->arrivals.at(0);
  EXPECT_GE(remote - local, wan.propagation_delay_us);
}

TEST_F(TopologyTest, MulticastForwardsOncePerRemoteSegment) {
  build(6);
  net_->set_segments({{nodes_[0], nodes_[1]},
                      {nodes_[2], nodes_[3]},
                      {nodes_[4], nodes_[5]}},
                     sim::WanConfig{});
  net_->reset_stats();
  const std::vector<NodeId> dests{nodes_[1], nodes_[2], nodes_[3], nodes_[4],
                                  nodes_[5]};
  net_->multicast(nodes_[0], dests, std::vector<std::uint8_t>(100, 0));
  sim_.run();
  for (std::size_t i = 1; i < 6; ++i) {
    EXPECT_EQ(handlers_[i]->arrivals.size(), 1u) << "node " << i;
  }
  // One source transmission + two remote-segment re-transmissions: three
  // LAN bus occupancies (plus the backbone, accounted separately).
  EXPECT_EQ(net_->stats().frames_sent, 1u);
  // Same-segment pairs arrive together; cross-segment later.
  EXPECT_EQ(handlers_[2]->arrivals[0] > handlers_[1]->arrivals[0], true);
}

TEST_F(TopologyTest, BackboneSerializesCrossTraffic) {
  build(4);
  sim::WanConfig wan;
  wan.bandwidth_bps = 1e6;  // slow backbone
  net_->set_segments({{nodes_[0], nodes_[1]}, {nodes_[2], nodes_[3]}}, wan);
  net_->unicast(nodes_[0], nodes_[2], std::vector<std::uint8_t>(500, 0));
  net_->unicast(nodes_[1], nodes_[3], std::vector<std::uint8_t>(500, 0));
  sim_.run();
  const Time a = handlers_[2]->arrivals.at(0);
  const Time b = handlers_[3]->arrivals.at(0);
  // The second crossing waits for the first on the backbone: gap at least
  // one backbone transmission time ((500+46)*8 / 1 Mbps ≈ 4.4 ms).
  EXPECT_GE(b - a, 4'000);
}

class LwgOverWanTest : public lwg::testing::LwgFixture {};

TEST_F(LwgOverWanTest, GroupSpansTwoLansAndSurvivesWanCut) {
  harness::WorldConfig cfg;
  cfg.num_processes = 4;
  cfg.num_name_servers = 2;  // one per LAN
  cfg.segments = {{0, 1}, {2, 3}};
  cfg.wan.propagation_delay_us = 3'000;
  build(cfg);
  const LwgId id{1};
  form_lwg(id, {0, 1, 2, 3});

  // WAN failure: the canonical geographic partition.
  world().cut_wan();
  ASSERT_TRUE(run_until(
      [&] {
        return lwg_converged(id, {0, 1}, members_of({0, 1})) &&
               lwg_converged(id, {2, 3}, members_of({2, 3}));
      },
      40'000'000));
  // Both LANs keep working through their local name server.
  lwg(0).send(id, payload(1));
  lwg(2).send(id, payload(2));
  ASSERT_TRUE(run_until(
      [&] {
        return user(1).total_delivered(id) >= 1 &&
               user(3).total_delivered(id) >= 1;
      },
      15'000'000));

  world().heal();
  ASSERT_TRUE(run_until(
      [&] { return lwg_converged(id, {0, 1, 2, 3}, members_of({0, 1, 2, 3})); },
      120'000'000));
}

}  // namespace
}  // namespace plwg
