// Multi-replica naming-service behaviour: propagation chains across three
// servers, reconciliation after multi-way partitions, server crashes, and
// genealogy chains spanning several generations.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <optional>

#include "names/naming_agent.hpp"
#include "sim/network.hpp"
#include "sim/simulator.hpp"
#include "transport/node_runtime.hpp"

namespace plwg::names {
namespace {

MappingEntry entry(std::uint32_t coord, std::uint32_t seq, std::uint64_t hwg,
                   std::initializer_list<std::uint32_t> members = {0},
                   std::uint64_t stamp = 1) {
  MappingEntry e;
  e.lwg_view = ViewId{ProcessId{coord}, seq};
  for (auto m : members) e.lwg_members.insert(ProcessId{m});
  e.hwg = HwgId{hwg};
  e.hwg_members = e.lwg_members;
  e.stamp = stamp;
  return e;
}

class ThreeServerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    net_ = std::make_unique<sim::Network>(sim_, sim::NetworkConfig{});
    for (int i = 0; i < 2; ++i) {
      clients_.push_back(std::make_unique<transport::NodeRuntime>(*net_));
    }
    for (int j = 0; j < 3; ++j) {
      server_nodes_.push_back(std::make_unique<transport::NodeRuntime>(*net_));
    }
    std::vector<NodeId> ids;
    for (const auto& s : server_nodes_) ids.push_back(s->id());
    for (int j = 0; j < 3; ++j) {
      servers_.push_back(std::make_unique<NamingAgent>(
          *server_nodes_[static_cast<std::size_t>(j)], NamingConfig{}, ids));
      std::vector<NodeId> peers;
      for (int k = 0; k < 3; ++k) {
        if (k != j) peers.push_back(ids[static_cast<std::size_t>(k)]);
      }
      servers_.back()->enable_server(peers);
    }
    for (std::size_t i = 0; i < clients_.size(); ++i) {
      std::vector<NodeId> order = ids;
      std::rotate(order.begin(),
                  order.begin() + static_cast<std::ptrdiff_t>(i % 3),
                  order.end());
      client_agents_.push_back(std::make_unique<NamingAgent>(
          *clients_[i], NamingConfig{}, order));
    }
  }

  void run_for(Duration us) { sim_.run_until(sim_.now() + us); }

  sim::Simulator sim_;
  std::unique_ptr<sim::Network> net_;
  std::vector<std::unique_ptr<transport::NodeRuntime>> clients_;
  std::vector<std::unique_ptr<transport::NodeRuntime>> server_nodes_;
  std::vector<std::unique_ptr<NamingAgent>> servers_;
  std::vector<std::unique_ptr<NamingAgent>> client_agents_;
};

TEST_F(ThreeServerTest, WriteReachesAllReplicas) {
  client_agents_[0]->set(LwgId{1}, entry(1, 1, 100), {});
  run_for(3'000'000);
  for (int j = 0; j < 3; ++j) {
    EXPECT_TRUE(servers_[static_cast<std::size_t>(j)]
                    ->database()
                    .records.contains(LwgId{1}))
        << "server " << j;
  }
}

TEST_F(ThreeServerTest, ThreeWayPartitionReconcilesTransitively) {
  // Each server isolated with one (or zero) clients; three different
  // mappings accumulate; after heal all three replicas converge.
  net_->set_partitions({{clients_[0]->id(), server_nodes_[0]->id()},
                        {clients_[1]->id(), server_nodes_[1]->id()},
                        {server_nodes_[2]->id()}});
  client_agents_[0]->set(LwgId{1}, entry(1, 1, 100, {0}), {});
  client_agents_[1]->set(LwgId{1}, entry(2, 1, 200, {1}), {});
  run_for(3'000'000);
  net_->heal();
  run_for(4'000'000);
  for (int j = 0; j < 3; ++j) {
    const auto& rec =
        servers_[static_cast<std::size_t>(j)]->database().records.at(LwgId{1});
    EXPECT_EQ(rec.entries.size(), 2u) << "server " << j;
    EXPECT_TRUE(rec.has_conflict()) << "server " << j;
  }
}

TEST_F(ThreeServerTest, ChainedGenealogyGCsTransitively) {
  // v1 superseded by v2, v2 superseded by v3 — applied to different
  // replicas, in an order that lets tombstones chase entries across syncs.
  client_agents_[0]->set(LwgId{1}, entry(1, 1, 100), {});
  run_for(2'500'000);
  client_agents_[1]->set(LwgId{1}, entry(1, 2, 100, {0}, 2),
                         {ViewId{ProcessId{1}, 1}});
  run_for(2'500'000);
  client_agents_[0]->set(LwgId{1}, entry(1, 3, 200, {0}, 3),
                         {ViewId{ProcessId{1}, 2}});
  run_for(4'000'000);
  for (int j = 0; j < 3; ++j) {
    const auto& rec =
        servers_[static_cast<std::size_t>(j)]->database().records.at(LwgId{1});
    ASSERT_EQ(rec.entries.size(), 1u) << "server " << j;
    EXPECT_EQ(rec.entries.begin()->first, (ViewId{ProcessId{1}, 3}));
    EXPECT_EQ(rec.superseded.size(), 2u);
  }
}

TEST_F(ThreeServerTest, SurvivesOneServerCrash) {
  client_agents_[0]->set(LwgId{1}, entry(1, 1, 100), {});
  run_for(2'000'000);
  net_->crash(server_nodes_[0]->id());  // client 0's preferred server
  // Reads fail over; writes keep replicating between the two survivors.
  std::optional<std::size_t> read_size;
  client_agents_[0]->read(LwgId{1},
                          [&](LwgId, const std::vector<MappingEntry>& e) {
                            read_size = e.size();
                          });
  client_agents_[1]->set(LwgId{2}, entry(2, 1, 300), {});
  run_for(4'000'000);
  ASSERT_TRUE(read_size.has_value());
  EXPECT_EQ(*read_size, 1u);
  EXPECT_TRUE(servers_[1]->database().records.contains(LwgId{2}));
  EXPECT_TRUE(servers_[2]->database().records.contains(LwgId{2}));
}

TEST_F(ThreeServerTest, StampPreventsRegressionAcrossReplicas) {
  // A newer re-registration of the same view must win everywhere, even when
  // the stale version arrives later via a slow replica.
  net_->set_partitions({{clients_[0]->id(), server_nodes_[0]->id()},
                        {clients_[1]->id(), server_nodes_[1]->id(),
                         server_nodes_[2]->id()}});
  client_agents_[0]->set(LwgId{1}, entry(1, 1, 100, {0}, /*stamp=*/1), {});
  client_agents_[1]->set(LwgId{1}, entry(1, 1, 500, {0}, /*stamp=*/5), {});
  run_for(3'000'000);
  net_->heal();
  run_for(4'000'000);
  for (int j = 0; j < 3; ++j) {
    const auto& rec =
        servers_[static_cast<std::size_t>(j)]->database().records.at(LwgId{1});
    ASSERT_EQ(rec.entries.size(), 1u);
    EXPECT_EQ(rec.entries.begin()->second.hwg, HwgId{500}) << "server " << j;
  }
}

}  // namespace
}  // namespace plwg::names
