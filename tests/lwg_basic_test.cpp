// Basic light-weight group behaviour across all three service modes:
// join/view/send/leave through the Table 1 interface, mapping via the
// naming service, and the sharing property (many LWGs on few HWGs).
#include <gtest/gtest.h>

#include "lwg_fixture.hpp"

namespace plwg::lwg::testing {
namespace {

harness::WorldConfig base_config(std::size_t processes, MappingMode mode) {
  harness::WorldConfig cfg;
  cfg.num_processes = processes;
  cfg.num_name_servers = 1;
  cfg.lwg.mode = mode;
  if (mode == MappingMode::kStaticSingle) {
    cfg.lwg.static_hwg = HwgId{0xFFFF'0001};
    MemberSet contacts;
    for (std::size_t i = 0; i < processes; ++i) {
      contacts.insert(ProcessId{static_cast<std::uint32_t>(i)});
    }
    cfg.lwg.static_contacts = contacts;
  }
  return cfg;
}

class LwgBasicTest : public LwgFixture {};

TEST_F(LwgBasicTest, FounderGetsSingletonView) {
  build(base_config(2, MappingMode::kDynamic));
  const LwgId id{1};
  lwg(0).join(id, user(0));
  ASSERT_TRUE(run_until([&] { return lwg(0).view_of(id) != nullptr; },
                        10'000'000));
  const LwgView* v = lwg(0).view_of(id);
  EXPECT_EQ(v->members, members_of({0}));
  EXPECT_EQ(v->coordinator(), pid(0));
}

TEST_F(LwgBasicTest, TwoMembersConvergeOnOneView) {
  build(base_config(2, MappingMode::kDynamic));
  const LwgId id{1};
  form_lwg(id, {0, 1});
  // Both map the LWG onto the same HWG.
  EXPECT_EQ(lwg(0).hwg_of(id), lwg(1).hwg_of(id));
}

TEST_F(LwgBasicTest, DataReachesAllMembersVirtuallySynchronously) {
  build(base_config(3, MappingMode::kDynamic));
  const LwgId id{1};
  form_lwg(id, {0, 1, 2});
  lwg(1).send(id, payload(42));
  ASSERT_TRUE(run_until(
      [&] {
        return user(0).total_delivered(id) == 1 &&
               user(1).total_delivered(id) == 1 &&
               user(2).total_delivered(id) == 1;
      },
      10'000'000));
  const auto& d = user(2).log(id).epochs.back().delivered;
  ASSERT_EQ(d.size(), 1u);
  EXPECT_EQ(d[0].first, pid(1));
  EXPECT_EQ(d[0].second[0], 42);
}

TEST_F(LwgBasicTest, SendersAreTotallyOrderedWithinLwg) {
  build(base_config(3, MappingMode::kDynamic));
  const LwgId id{1};
  form_lwg(id, {0, 1, 2});
  for (int m = 0; m < 8; ++m) {
    for (std::size_t i = 0; i < 3; ++i) {
      lwg(i).send(id, payload(static_cast<std::uint8_t>(i * 10 + m)));
    }
  }
  ASSERT_TRUE(run_until(
      [&] {
        return user(0).total_delivered(id) == 24 &&
               user(1).total_delivered(id) == 24 &&
               user(2).total_delivered(id) == 24;
      },
      10'000'000));
  EXPECT_EQ(user(0).log(id).epochs.back().delivered,
            user(1).log(id).epochs.back().delivered);
  EXPECT_EQ(user(1).log(id).epochs.back().delivered,
            user(2).log(id).epochs.back().delivered);
}

TEST_F(LwgBasicTest, OverlappingLwgsShareOneHwg) {
  build(base_config(4, MappingMode::kDynamic));
  // Three LWGs with identical membership: the optimistic mapping puts them
  // all on the first LWG's HWG (resource sharing).
  form_lwg(LwgId{1}, {0, 1, 2, 3});
  form_lwg(LwgId{2}, {0, 1, 2, 3});
  form_lwg(LwgId{3}, {0, 1, 2, 3});
  const auto h1 = lwg(0).hwg_of(LwgId{1});
  const auto h2 = lwg(0).hwg_of(LwgId{2});
  const auto h3 = lwg(0).hwg_of(LwgId{3});
  EXPECT_EQ(h1, h2);
  EXPECT_EQ(h2, h3);
  EXPECT_EQ(lwg(0).member_hwgs().size(), 1u);
}

TEST_F(LwgBasicTest, LeaveShrinksLwgView) {
  build(base_config(3, MappingMode::kDynamic));
  const LwgId id{1};
  form_lwg(id, {0, 1, 2});
  lwg(2).leave(id);
  ASSERT_TRUE(run_until(
      [&] { return lwg_converged(id, {0, 1}, members_of({0, 1})); },
      10'000'000));
  EXPECT_EQ(lwg(2).view_of(id), nullptr);
}

TEST_F(LwgBasicTest, CoordinatorLeaveHandsOver) {
  build(base_config(3, MappingMode::kDynamic));
  const LwgId id{1};
  form_lwg(id, {0, 1, 2});
  lwg(0).leave(id);  // process 0 coordinates (smallest pid)
  ASSERT_TRUE(run_until(
      [&] { return lwg_converged(id, {1, 2}, members_of({1, 2})); },
      10'000'000));
  lwg(1).send(id, payload(7));
  ASSERT_TRUE(
      run_until([&] { return user(2).total_delivered(id) >= 1; }, 5'000'000));
}

TEST_F(LwgBasicTest, CrashedMemberIsRemovedFromLwgView) {
  build(base_config(3, MappingMode::kDynamic));
  const LwgId id{1};
  form_lwg(id, {0, 1, 2});
  world().crash(2);
  ASSERT_TRUE(run_until(
      [&] { return lwg_converged(id, {0, 1}, members_of({0, 1})); },
      20'000'000));
}

TEST_F(LwgBasicTest, PerGroupModeCreatesOneHwgPerLwg) {
  build(base_config(3, MappingMode::kPerGroup));
  form_lwg(LwgId{1}, {0, 1, 2});
  form_lwg(LwgId{2}, {0, 1, 2});
  // Two user groups → two distinct HWGs at each member.
  EXPECT_NE(lwg(0).hwg_of(LwgId{1}), lwg(0).hwg_of(LwgId{2}));
  EXPECT_EQ(lwg(0).member_hwgs().size(), 2u);
}

TEST_F(LwgBasicTest, StaticModeMapsEverythingOnTheSharedHwg) {
  build(base_config(4, MappingMode::kStaticSingle));
  form_lwg(LwgId{1}, {0, 1});
  form_lwg(LwgId{2}, {2, 3});
  EXPECT_EQ(lwg(0).hwg_of(LwgId{1}), lwg(2).hwg_of(LwgId{2}));
  // Disjoint LWGs, yet all four processes share the one HWG.
  const vsync::View* hv = world().vsync(0).view_of(HwgId{0xFFFF'0001});
  ASSERT_NE(hv, nullptr);
  EXPECT_EQ(hv->members.size(), 4u);
}

TEST_F(LwgBasicTest, StaticModeFiltersForeignTraffic) {
  build(base_config(4, MappingMode::kStaticSingle));
  form_lwg(LwgId{1}, {0, 1});
  form_lwg(LwgId{2}, {2, 3});
  lwg(0).send(LwgId{1}, payload(1));
  ASSERT_TRUE(
      run_until([&] { return user(1).total_delivered(LwgId{1}) == 1; },
                10'000'000));
  run_for(1'000'000);
  // Members of LWG 2 never see LWG 1 data but paid the filtering cost.
  EXPECT_EQ(user(2).total_delivered(LwgId{1}), 0u);
  EXPECT_EQ(user(3).total_delivered(LwgId{1}), 0u);
  EXPECT_GT(lwg(2).stats().data_filtered, 0u);
}

TEST_F(LwgBasicTest, DisjointLwgsGetSeparateHwgsInDynamicMode) {
  build(base_config(4, MappingMode::kDynamic));
  form_lwg(LwgId{1}, {0, 1});
  form_lwg(LwgId{2}, {2, 3});
  EXPECT_NE(lwg(0).hwg_of(LwgId{1}), lwg(2).hwg_of(LwgId{2}));
}

TEST_F(LwgBasicTest, JoinViaNamingServiceFindsExistingGroup) {
  build(base_config(3, MappingMode::kDynamic));
  const LwgId id{1};
  form_lwg(id, {0, 1});
  // A third process joins purely through the naming service mapping.
  lwg(2).join(id, user(2));
  ASSERT_TRUE(run_until(
      [&] { return lwg_converged(id, {0, 1, 2}, members_of({0, 1, 2})); },
      15'000'000));
}

TEST_F(LwgBasicTest, NsRecordsMappingForTheLwg) {
  build(base_config(2, MappingMode::kDynamic));
  const LwgId id{1};
  form_lwg(id, {0, 1});
  run_for(2'000'000);  // let ns.set land and replicate
  const auto& db = world().server(0).database();
  ASSERT_TRUE(db.records.contains(id));
  const auto& rec = db.records.at(id);
  ASSERT_FALSE(rec.entries.empty());
  EXPECT_FALSE(rec.has_conflict());
}

TEST_F(LwgBasicTest, ViewChangeUpcallsCarryGrowingMembership) {
  build(base_config(3, MappingMode::kDynamic));
  const LwgId id{1};
  lwg(0).join(id, user(0));
  ASSERT_TRUE(
      run_until([&] { return lwg(0).view_of(id) != nullptr; }, 10'000'000));
  lwg(1).join(id, user(1));
  ASSERT_TRUE(run_until(
      [&] { return lwg_converged(id, {0, 1}, members_of({0, 1})); },
      10'000'000));
  lwg(2).join(id, user(2));
  ASSERT_TRUE(run_until(
      [&] { return lwg_converged(id, {0, 1, 2}, members_of({0, 1, 2})); },
      10'000'000));
  const auto& epochs = user(0).log(id).epochs;
  ASSERT_GE(epochs.size(), 3u);
  EXPECT_LT(epochs[0].view.members.size(), epochs.back().view.members.size());
}

}  // namespace
}  // namespace plwg::lwg::testing
