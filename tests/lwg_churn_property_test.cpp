// Membership-churn property testing at the LWG level (no partitions):
// random joins and leaves against several groups must always converge to
// views that exactly match the intended membership, with the naming service
// tracking one mapping per live group.
#include <gtest/gtest.h>

#include <map>
#include <set>

#include "lwg_fixture.hpp"
#include "util/rng.hpp"

namespace plwg::lwg::testing {
namespace {

class LwgChurnTest : public LwgFixture,
                     public ::testing::WithParamInterface<std::uint64_t> {};

TEST_P(LwgChurnTest, RandomJoinLeaveChurnConverges) {
  Rng rng(GetParam());
  constexpr std::size_t kProcs = 6;
  harness::WorldConfig cfg;
  cfg.num_processes = kProcs;
  cfg.net.seed = GetParam() ^ 0xfeed;
  cfg.lwg.policy_period_us = 6'000'000;
  cfg.lwg.shrink_delay_us = 5'000'000;
  build(cfg);

  const std::vector<LwgId> ids{LwgId{1}, LwgId{2}, LwgId{3}};
  // intended[g] = set of process indexes that should end up in group g.
  std::map<LwgId, std::set<std::size_t>> intended;

  // Seed every group with one deterministic member so it always exists.
  for (std::size_t g = 0; g < ids.size(); ++g) {
    lwg(g).join(ids[g], user(g));
    intended[ids[g]].insert(g);
  }
  ASSERT_TRUE(run_until(
      [&] {
        for (std::size_t g = 0; g < ids.size(); ++g) {
          if (lwg(g).view_of(ids[g]) == nullptr) return false;
        }
        return true;
      },
      30'000'000));

  for (int step = 0; step < 30; ++step) {
    const LwgId g = ids[rng.next_below(ids.size())];
    const std::size_t p = rng.next_below(kProcs);
    auto& members = intended[g];
    if (members.contains(p)) {
      if (members.size() > 1) {  // keep every group alive
        lwg(p).leave(g);
        members.erase(p);
      }
    } else {
      lwg(p).join(g, user(p));
      members.insert(p);
    }
    run_for(rng.next_range(100'000, 2'000'000));
  }

  // Quiescence: every group's view matches the intended membership exactly,
  // at every intended member.
  ASSERT_TRUE(run_until(
      [&] {
        for (const auto& [g, members] : intended) {
          MemberSet expect;
          for (std::size_t p : members) expect.insert(pid(p));
          for (std::size_t p : members) {
            const LwgView* v = lwg(p).view_of(g);
            if (v == nullptr || !(v->members == expect)) return false;
          }
          // Processes outside the group hold no view of it.
          for (std::size_t p = 0; p < kProcs; ++p) {
            if (!members.contains(p) && lwg(p).view_of(g) != nullptr) {
              return false;
            }
          }
        }
        return true;
      },
      120'000'000))
      << "seed " << GetParam();

  // Data still flows on every group.
  for (const auto& [g, members] : intended) {
    const std::size_t sender = *members.begin();
    const auto before = user(sender).total_delivered(g);
    lwg(sender).send(g, payload(0x77));
    EXPECT_TRUE(run_until(
        [&] { return user(sender).total_delivered(g) > before; }, 20'000'000))
        << "group " << g.value() << " seed " << GetParam();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, LwgChurnTest,
                         ::testing::Values(301, 302, 303, 304, 305, 306, 307, 308,
                                           309, 310));

}  // namespace
}  // namespace plwg::lwg::testing
