// Whole-system scenario tests, including the paper's running example:
// Figures 3 and 4 / Tables 3 and 4 — two LWGs mapped opposite ways in two
// partitions, then the four-stage evolution after healing, ending with a
// garbage-collected naming service holding exactly one mapping per LWG.
#include <gtest/gtest.h>

#include "lwg_fixture.hpp"

namespace plwg::lwg::testing {
namespace {

harness::WorldConfig scenario_config() {
  harness::WorldConfig cfg;
  cfg.num_processes = 4;
  cfg.num_name_servers = 2;
  cfg.lwg.mode = MappingMode::kDynamic;
  cfg.lwg.policy_period_us = 10'000'000;
  cfg.lwg.shrink_delay_us = 8'000'000;
  return cfg;
}

class PaperScenarioTest : public LwgFixture {};

// The Fig. 3 -> Fig. 4 lifecycle. Two LWGs created independently in two
// partitions end up with inconsistent mappings (Table 3); after the heal,
// the naming service detects the conflicts, the coordinators switch to the
// highest HWG, concurrent views merge, and the database is GC'd to one row
// per LWG (Table 4 stage 4).
TEST_F(PaperScenarioTest, Figure3To4FullReconciliation) {
  build(scenario_config());
  // Partition p = {0,1} with server 0, partition p' = {2,3} with server 1.
  world().partition({{0, 1}, {2, 3}}, {0, 1});
  const LwgId lwg_a{0xA};
  const LwgId lwg_b{0xB};
  for (std::size_t i = 0; i < 4; ++i) {
    lwg(i).join(lwg_a, user(i));
    lwg(i).join(lwg_b, user(i));
  }
  ASSERT_TRUE(run_until(
      [&] {
        return lwg_converged(lwg_a, {0, 1}, members_of({0, 1})) &&
               lwg_converged(lwg_a, {2, 3}, members_of({2, 3})) &&
               lwg_converged(lwg_b, {0, 1}, members_of({0, 1})) &&
               lwg_converged(lwg_b, {2, 3}, members_of({2, 3}));
      },
      40'000'000));

  // Table 3 precondition: the sides made independent mapping decisions.
  const HwgId a_p = *lwg(0).hwg_of(lwg_a);
  const HwgId a_pp = *lwg(2).hwg_of(lwg_a);
  const HwgId b_p = *lwg(0).hwg_of(lwg_b);
  const HwgId b_pp = *lwg(2).hwg_of(lwg_b);
  EXPECT_NE(a_p, a_pp);
  EXPECT_NE(b_p, b_pp);

  world().heal();

  ASSERT_TRUE(run_until(
      [&] {
        return lwg_converged(lwg_a, {0, 1, 2, 3}, members_of({0, 1, 2, 3})) &&
               lwg_converged(lwg_b, {0, 1, 2, 3}, members_of({0, 1, 2, 3}));
      },
      120'000'000));

  // Reconciliation Step 2 used the deterministic highest-gid rule.
  EXPECT_EQ(*lwg(0).hwg_of(lwg_a), std::max(a_p, a_pp));
  EXPECT_EQ(*lwg(0).hwg_of(lwg_b), std::max(b_p, b_pp));

  // Table 4 stage 4: every server converged to exactly one live mapping per
  // LWG and the obsolete rows are garbage-collected via view genealogy.
  ASSERT_TRUE(run_until(
      [&] {
        for (std::size_t s = 0; s < 2; ++s) {
          const auto& db = world().server(s).database();
          for (LwgId id : {lwg_a, lwg_b}) {
            auto it = db.records.find(id);
            if (it == db.records.end()) return false;
            if (it->second.entries.size() != 1) return false;
            if (it->second.has_conflict()) return false;
          }
        }
        return true;
      },
      60'000'000));

  // The conflict callbacks (MULTIPLE-MAPPINGS) actually fired.
  std::uint64_t callbacks = 0;
  for (std::size_t i = 0; i < 4; ++i) {
    callbacks += lwg(i).stats().conflict_callbacks;
  }
  EXPECT_GE(callbacks, 2u);

  // Both groups carry end-to-end traffic after reconciliation.
  lwg(0).send(lwg_a, payload(1));
  lwg(3).send(lwg_b, payload(2));
  ASSERT_TRUE(run_until(
      [&] {
        return user(2).total_delivered(lwg_a) >= 1 &&
               user(1).total_delivered(lwg_b) >= 1;
      },
      20'000'000));
}

// Reconciliation disabled (ablation): the mappings stay split after heal —
// demonstrating that Step 2 is what restores a common HWG.
TEST_F(PaperScenarioTest, WithoutReconciliationMappingsStaySplit) {
  harness::WorldConfig cfg = scenario_config();
  cfg.lwg.reconcile_on_conflict = false;
  build(cfg);
  world().partition({{0, 1}, {2, 3}}, {0, 1});
  const LwgId id{0xA};
  for (std::size_t i = 0; i < 4; ++i) lwg(i).join(id, user(i));
  ASSERT_TRUE(run_until(
      [&] {
        return lwg_converged(id, {0, 1}, members_of({0, 1})) &&
               lwg_converged(id, {2, 3}, members_of({2, 3}));
      },
      40'000'000));
  const HwgId h1 = *lwg(0).hwg_of(id);
  const HwgId h2 = *lwg(2).hwg_of(id);
  ASSERT_NE(h1, h2);
  world().heal();
  run_for(30'000'000);
  EXPECT_EQ(*lwg(0).hwg_of(id), h1);
  EXPECT_EQ(*lwg(2).hwg_of(id), h2);
  EXPECT_FALSE(lwg_converged(id, {0, 1, 2, 3}, members_of({0, 1, 2, 3})));
}

// A heal with continuous traffic — the stressed interleaving of Step 2
// switching and Step 4 merging.
TEST_F(PaperScenarioTest, HealDuringOngoingTrafficReconciles) {
  build(scenario_config());
  world().partition({{0, 1}, {2, 3}}, {0, 1});
  const LwgId id{0xA};
  for (std::size_t i = 0; i < 4; ++i) lwg(i).join(id, user(i));
  ASSERT_TRUE(run_until(
      [&] {
        return lwg_converged(id, {0, 1}, members_of({0, 1})) &&
               lwg_converged(id, {2, 3}, members_of({2, 3}));
      },
      40'000'000));
  world().heal();
  for (int round = 0; round < 30; ++round) {
    lwg(0).send(id, payload(static_cast<std::uint8_t>(round)));
    lwg(2).send(id, payload(static_cast<std::uint8_t>(100 + round)));
    run_for(1'000'000);
  }
  ASSERT_TRUE(run_until(
      [&] { return lwg_converged(id, {0, 1, 2, 3}, members_of({0, 1, 2, 3})); },
      120'000'000));
  const auto base2 = user(2).total_delivered(id);
  const auto base1 = user(1).total_delivered(id);
  lwg(0).send(id, payload(200));
  lwg(3).send(id, payload(201));
  ASSERT_TRUE(run_until(
      [&] {
        return user(2).total_delivered(id) > base2 &&
               user(1).total_delivered(id) > base1;
      },
      20'000'000));
}

// The crash of a whole partition side during reconciliation must not wedge
// the surviving side.
TEST_F(PaperScenarioTest, CrashOfOneSideDuringReconciliation) {
  build(scenario_config());
  world().partition({{0, 1}, {2, 3}}, {0, 1});
  const LwgId id{0xA};
  for (std::size_t i = 0; i < 4; ++i) lwg(i).join(id, user(i));
  ASSERT_TRUE(run_until(
      [&] {
        return lwg_converged(id, {0, 1}, members_of({0, 1})) &&
               lwg_converged(id, {2, 3}, members_of({2, 3}));
      },
      40'000'000));
  world().heal();
  run_for(1'500'000);  // reconciliation is under way
  world().crash(2);
  world().crash(3);
  ASSERT_TRUE(run_until(
      [&] { return lwg_converged(id, {0, 1}, members_of({0, 1})); },
      120'000'000));
  lwg(0).send(id, payload(3));
  ASSERT_TRUE(
      run_until([&] { return user(1).total_delivered(id) >= 1; }, 20'000'000));
}

// Overlapping LWGs in the style of the Swiss Exchange subjects: several
// groups, partial overlap, survive a partition cycle.
TEST_F(PaperScenarioTest, OverlappingSubjectsSurvivePartitionCycle) {
  harness::WorldConfig cfg = scenario_config();
  cfg.num_processes = 6;
  build(cfg);
  const LwgId s1{1}, s2{2}, s3{3};
  form_lwg(s1, {0, 1, 2, 3});
  form_lwg(s2, {2, 3, 4, 5});
  form_lwg(s3, {0, 1, 2, 3, 4, 5});
  world().partition({{0, 1, 2}, {3, 4, 5}}, {0, 1});
  ASSERT_TRUE(run_until(
      [&] {
        return lwg_converged(s1, {0, 1, 2}, members_of({0, 1, 2})) &&
               lwg_converged(s1, {3}, members_of({3})) &&
               lwg_converged(s2, {2}, members_of({2})) &&
               lwg_converged(s2, {3, 4, 5}, members_of({3, 4, 5})) &&
               lwg_converged(s3, {0, 1, 2}, members_of({0, 1, 2})) &&
               lwg_converged(s3, {3, 4, 5}, members_of({3, 4, 5}));
      },
      60'000'000));
  world().heal();
  ASSERT_TRUE(run_until(
      [&] {
        return lwg_converged(s1, {0, 1, 2, 3}, members_of({0, 1, 2, 3})) &&
               lwg_converged(s2, {2, 3, 4, 5}, members_of({2, 3, 4, 5})) &&
               lwg_converged(s3, {0, 1, 2, 3, 4, 5},
                             members_of({0, 1, 2, 3, 4, 5}));
      },
      180'000'000));
}

}  // namespace
}  // namespace plwg::lwg::testing
