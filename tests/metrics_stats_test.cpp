#include "metrics/stats.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace plwg::metrics {
namespace {

TEST(LatencyRecorder, BasicStatistics) {
  LatencyRecorder rec;
  for (Duration v : {10, 20, 30, 40, 50}) rec.record(v);
  EXPECT_EQ(rec.count(), 5u);
  EXPECT_DOUBLE_EQ(rec.mean_us(), 30.0);
  EXPECT_EQ(rec.min_us(), 10);
  EXPECT_EQ(rec.max_us(), 50);
  EXPECT_EQ(rec.p50_us(), 30);
}

TEST(LatencyRecorder, PercentileNearestRank) {
  LatencyRecorder rec;
  for (int i = 1; i <= 100; ++i) rec.record(i);
  EXPECT_EQ(rec.percentile_us(0.95), 95);
  EXPECT_EQ(rec.percentile_us(0.99), 99);
  EXPECT_EQ(rec.percentile_us(1.0), 100);
  EXPECT_EQ(rec.percentile_us(0.0), 1);
}

TEST(LatencyRecorder, SingleSample) {
  LatencyRecorder rec;
  rec.record(42);
  EXPECT_EQ(rec.p50_us(), 42);
  EXPECT_EQ(rec.p99_us(), 42);
  EXPECT_DOUBLE_EQ(rec.mean_us(), 42.0);
}

TEST(LatencyRecorder, ClearResets) {
  LatencyRecorder rec;
  rec.record(1);
  rec.clear();
  EXPECT_TRUE(rec.empty());
  EXPECT_DOUBLE_EQ(rec.mean_us(), 0.0);
}

TEST(RatePerSec, ConvertsFromMicroseconds) {
  EXPECT_DOUBLE_EQ(rate_per_sec(1000, 1'000'000), 1000.0);
  EXPECT_DOUBLE_EQ(rate_per_sec(500, 2'000'000), 250.0);
  EXPECT_DOUBLE_EQ(rate_per_sec(5, 0), 0.0);
}

TEST(Table, PrintsAlignedColumns) {
  Table t({"name", "value"});
  t.add_row({"latency", "12.50"});
  t.add_row({"throughput-long-name", "3"});
  std::ostringstream os;
  t.print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("name"), std::string::npos);
  EXPECT_NE(out.find("throughput-long-name"), std::string::npos);
  EXPECT_NE(out.find("----"), std::string::npos);
}

TEST(Table, FmtFormatsDecimals) {
  EXPECT_EQ(Table::fmt(3.14159, 2), "3.14");
  EXPECT_EQ(Table::fmt(2.0, 0), "2");
}

}  // namespace
}  // namespace plwg::metrics
