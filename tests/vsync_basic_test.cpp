// Basic heavy-weight group behaviour: creation, joining, totally ordered
// delivery, leaving — the Table 1 interface under failure-free conditions.
#include <gtest/gtest.h>

#include "vsync_fixture.hpp"

namespace plwg::vsync::testing {
namespace {

class VsyncBasicTest : public VsyncFixture {};

TEST_F(VsyncBasicTest, CreateInstallsSingletonView) {
  build(1);
  const HwgId gid = host(0).allocate_group_id();
  host(0).create_group(gid, user(0));
  const View* v = host(0).view_of(gid);
  ASSERT_NE(v, nullptr);
  EXPECT_EQ(v->members, members_of({0}));
  EXPECT_EQ(v->id.coordinator, pid(0));
  EXPECT_TRUE(v->predecessors.empty());
}

TEST_F(VsyncBasicTest, JoinGrowsTheView) {
  build(3);
  const HwgId gid = host(0).allocate_group_id();
  host(0).create_group(gid, user(0));
  host(1).join_group(gid, MemberSet{pid(0)}, user(1));
  host(2).join_group(gid, MemberSet{pid(0)}, user(2));
  ASSERT_TRUE(run_until(
      [&] { return converged(gid, {0, 1, 2}, members_of({0, 1, 2})); },
      5'000'000));
  // The common view's predecessors chain back to the singleton.
  const View* v = host(1).view_of(gid);
  ASSERT_NE(v, nullptr);
  EXPECT_FALSE(v->predecessors.empty());
}

TEST_F(VsyncBasicTest, JoinBatchingMergesSimultaneousJoiners) {
  build(5);
  const HwgId gid = host(0).allocate_group_id();
  host(0).create_group(gid, user(0));
  for (std::size_t i = 1; i < 5; ++i) {
    host(i).join_group(gid, MemberSet{pid(0)}, user(i));
  }
  ASSERT_TRUE(run_until(
      [&] { return converged(gid, {0, 1, 2, 3, 4}, members_of({0, 1, 2, 3, 4})); },
      5'000'000));
  // Batching keeps the number of views small: strictly fewer than one view
  // change per joiner.
  EXPECT_LE(user(0).log(gid).epochs.size(), 4u);
}

TEST_F(VsyncBasicTest, SendDeliversToAllMembersIncludingSender) {
  build(3);
  const HwgId gid = host(0).allocate_group_id();
  host(0).create_group(gid, user(0));
  host(1).join_group(gid, MemberSet{pid(0)}, user(1));
  host(2).join_group(gid, MemberSet{pid(0)}, user(2));
  ASSERT_TRUE(run_until(
      [&] { return converged(gid, {0, 1, 2}, members_of({0, 1, 2})); },
      5'000'000));
  host(1).send(gid, payload(42));
  ASSERT_TRUE(run_until(
      [&] {
        return user(0).total_delivered(gid) == 1 &&
               user(1).total_delivered(gid) == 1 &&
               user(2).total_delivered(gid) == 1;
      },
      2'000'000));
  const auto& delivered = user(2).log(gid).epochs.back().delivered;
  ASSERT_EQ(delivered.size(), 1u);
  EXPECT_EQ(delivered[0].first, pid(1));
  EXPECT_EQ(delivered[0].second[0], 42);
}

TEST_F(VsyncBasicTest, ConcurrentSendersAreTotallyOrdered) {
  build(4);
  const HwgId gid = host(0).allocate_group_id();
  host(0).create_group(gid, user(0));
  for (std::size_t i = 1; i < 4; ++i) {
    host(i).join_group(gid, MemberSet{pid(0)}, user(i));
  }
  ASSERT_TRUE(run_until(
      [&] { return converged(gid, {0, 1, 2, 3}, members_of({0, 1, 2, 3})); },
      5'000'000));
  constexpr int kPerSender = 10;
  for (int m = 0; m < kPerSender; ++m) {
    for (std::size_t i = 0; i < 4; ++i) {
      host(i).send(gid, payload(static_cast<std::uint8_t>(i * 100 + m)));
    }
  }
  ASSERT_TRUE(run_until(
      [&] {
        for (std::size_t i = 0; i < 4; ++i) {
          if (user(i).total_delivered(gid) != 4 * kPerSender) return false;
        }
        return true;
      },
      10'000'000));
  // All processes observe the identical delivery sequence.
  const auto& ref = user(0).log(gid).epochs.back().delivered;
  for (std::size_t i = 1; i < 4; ++i) {
    EXPECT_EQ(user(i).log(gid).epochs.back().delivered, ref) << "process " << i;
  }
  // And per sender the order is FIFO.
  for (std::size_t s = 0; s < 4; ++s) {
    int last = -1;
    for (const auto& [src, data] : ref) {
      if (src != pid(s)) continue;
      const int m = data[0] % 100;
      EXPECT_GT(m, last);
      last = m;
    }
  }
}

TEST_F(VsyncBasicTest, LeaveShrinksTheView) {
  build(3);
  const HwgId gid = host(0).allocate_group_id();
  host(0).create_group(gid, user(0));
  host(1).join_group(gid, MemberSet{pid(0)}, user(1));
  host(2).join_group(gid, MemberSet{pid(0)}, user(2));
  ASSERT_TRUE(run_until(
      [&] { return converged(gid, {0, 1, 2}, members_of({0, 1, 2})); },
      5'000'000));
  host(2).leave_group(gid);
  ASSERT_TRUE(run_until(
      [&] { return converged(gid, {0, 1}, members_of({0, 1})); }, 5'000'000));
  EXPECT_FALSE(host(2).is_member(gid));
}

TEST_F(VsyncBasicTest, CoordinatorLeaveHandsOver) {
  build(3);
  const HwgId gid = host(0).allocate_group_id();
  host(0).create_group(gid, user(0));
  host(1).join_group(gid, MemberSet{pid(0)}, user(1));
  host(2).join_group(gid, MemberSet{pid(0)}, user(2));
  ASSERT_TRUE(run_until(
      [&] { return converged(gid, {0, 1, 2}, members_of({0, 1, 2})); },
      5'000'000));
  host(0).leave_group(gid);  // process 0 is the coordinator
  ASSERT_TRUE(run_until(
      [&] { return converged(gid, {1, 2}, members_of({1, 2})); }, 5'000'000));
  // The remaining group still works.
  host(1).send(gid, payload(5));
  ASSERT_TRUE(run_until([&] { return user(2).total_delivered(gid) >= 1; },
                        2'000'000));
}

TEST_F(VsyncBasicTest, SoleMemberLeaveDissolvesGroup) {
  build(1);
  const HwgId gid = host(0).allocate_group_id();
  host(0).create_group(gid, user(0));
  host(0).leave_group(gid);
  EXPECT_FALSE(host(0).is_member(gid));
  EXPECT_TRUE(host(0).groups().empty());
}

TEST_F(VsyncBasicTest, SendsDuringViewChangeAreDeliveredInNextView) {
  build(2);
  const HwgId gid = host(0).allocate_group_id();
  host(0).create_group(gid, user(0));
  host(1).join_group(gid, MemberSet{pid(0)}, user(1));
  ASSERT_TRUE(run_until(
      [&] { return converged(gid, {0, 1}, members_of({0, 1})); }, 5'000'000));
  host(0).endpoint(gid)->force_flush();
  host(0).send(gid, payload(9));  // submitted while the flush runs
  ASSERT_TRUE(run_until(
      [&] {
        return user(1).total_delivered(gid) == 1 &&
               user(0).total_delivered(gid) == 1;
      },
      5'000'000));
}

TEST_F(VsyncBasicTest, StopUpcallPrecedesViewChange) {
  build(2);
  const HwgId gid = host(0).allocate_group_id();
  host(0).create_group(gid, user(0));
  host(1).join_group(gid, MemberSet{pid(0)}, user(1));
  ASSERT_TRUE(run_until(
      [&] { return converged(gid, {0, 1}, members_of({0, 1})); }, 5'000'000));
  const int stops_before = user(0).log(gid).stops;
  host(0).endpoint(gid)->force_flush();
  run_for(2'000'000);
  EXPECT_GT(user(0).log(gid).stops, stops_before);
}

TEST_F(VsyncBasicTest, GroupIdsAreUniquePerCreator) {
  build(2);
  const HwgId a = host(0).allocate_group_id();
  const HwgId b = host(0).allocate_group_id();
  const HwgId c = host(1).allocate_group_id();
  EXPECT_NE(a, b);
  EXPECT_NE(a, c);
  EXPECT_NE(b, c);
}

}  // namespace
}  // namespace plwg::vsync::testing
