// Stability-floor log GC: members piggyback their delivery bound on
// heartbeats, the sequencer folds them into a view-wide floor advertised on
// ORDERED traffic and heartbeats, and everyone trims the seqs below it from
// the retransmission log — without breaking NACK repair or flush cuts.
#include <gtest/gtest.h>

#include "vsync_fixture.hpp"

namespace plwg::vsync::testing {
namespace {

class VsyncStabilityTest : public VsyncFixture {};

TEST_F(VsyncStabilityTest, StableLogEntriesAreTrimmedEverywhere) {
  build(3);
  const HwgId gid = host(0).allocate_group_id();
  host(0).create_group(gid, user(0));
  host(1).join_group(gid, MemberSet{pid(0)}, user(1));
  host(2).join_group(gid, MemberSet{pid(0)}, user(2));
  ASSERT_TRUE(run_until(
      [&] { return converged(gid, {0, 1, 2}, members_of({0, 1, 2})); },
      5'000'000));

  const std::size_t kMsgs = 20;
  for (std::size_t m = 0; m < kMsgs; ++m) {
    host(m % 3).send(gid, payload(static_cast<std::uint8_t>(m)));
    run_for(20'000);
  }
  ASSERT_TRUE(run_until(
      [&] {
        return user(0).total_delivered(gid) >= kMsgs &&
               user(1).total_delivered(gid) >= kMsgs &&
               user(2).total_delivered(gid) >= kMsgs;
      },
      5'000'000));

  // A couple of heartbeat rounds: bounds flow member -> sequencer -> floor
  // -> members, and the periodic tick trims.
  run_for(1'500'000);
  for (std::size_t i = 0; i < 3; ++i) {
    const GroupEndpoint* ep = host(i).endpoint(gid);
    ASSERT_NE(ep, nullptr);
    EXPECT_GT(ep->stats().log_trimmed, 0u) << "member " << i;
  }
}

TEST_F(VsyncStabilityTest, ViewChangeAfterTrimStaysVirtuallySynchronous) {
  build(4);
  const HwgId gid = host(0).allocate_group_id();
  host(0).create_group(gid, user(0));
  host(1).join_group(gid, MemberSet{pid(0)}, user(1));
  host(2).join_group(gid, MemberSet{pid(0)}, user(2));
  ASSERT_TRUE(run_until(
      [&] { return converged(gid, {0, 1, 2}, members_of({0, 1, 2})); },
      5'000'000));

  for (std::size_t m = 0; m < 12; ++m) {
    host(m % 3).send(gid, payload(static_cast<std::uint8_t>(m)));
    run_for(20'000);
  }
  run_for(1'500'000);  // let the floor propagate and the logs trim
  ASSERT_GT(host(0).endpoint(gid)->stats().log_trimmed, 0u);

  // A flush over trimmed logs: the cut must come out of what is left, and
  // the joiner must land in a consistent view (the fixture's oracle checks
  // delivery consistency on teardown).
  host(3).join_group(gid, MemberSet{pid(0)}, user(3));
  ASSERT_TRUE(run_until(
      [&] { return converged(gid, {0, 1, 2, 3}, members_of({0, 1, 2, 3})); },
      5'000'000));

  host(3).send(gid, payload(99));
  ASSERT_TRUE(run_until(
      [&] {
        for (std::size_t i = 0; i < 4; ++i) {
          const auto& epochs = user(i).log(gid).epochs;
          if (epochs.empty() || epochs.back().delivered.empty()) return false;
        }
        return true;
      },
      5'000'000));
}

TEST_F(VsyncStabilityTest, OrderedTrafficSuppressesSequencerHeartbeats) {
  build(2);
  const HwgId gid = host(0).allocate_group_id();
  host(0).create_group(gid, user(0));
  host(1).join_group(gid, MemberSet{pid(0)}, user(1));
  ASSERT_TRUE(run_until(
      [&] { return converged(gid, {0, 1}, members_of({0, 1})); },
      5'000'000));

  // Steady traffic from the sequencer (process 0 is the smallest member):
  // every ORDERED it multicasts feeds the failure detector and carries the
  // stability floor, so no member may get suspected...
  for (int m = 0; m < 40; ++m) {
    host(0).send(gid, payload(static_cast<std::uint8_t>(m)));
    run_for(50'000);  // 2s total — far beyond suspect_timeout_us
  }
  EXPECT_TRUE(host(0).endpoint(gid)->suspected().empty());
  EXPECT_TRUE(host(1).endpoint(gid)->suspected().empty());
  EXPECT_TRUE(converged(gid, {0, 1}, members_of({0, 1})));
}

}  // namespace
}  // namespace plwg::vsync::testing
