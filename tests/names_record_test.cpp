// Unit tests for the naming-service data model: mapping records, genealogy
// garbage collection, conflict detection, and database merge (the logic of
// paper Sect. 5.2 / Tables 3-4, independent of any network).
#include "names/mapping.hpp"

#include <gtest/gtest.h>

namespace plwg::names {
namespace {

MappingEntry entry(std::uint32_t coord, std::uint32_t seq, std::uint64_t hwg,
                   std::initializer_list<std::uint32_t> members = {1, 2},
                   std::uint64_t stamp = 1) {
  MappingEntry e;
  e.lwg_view = ViewId{ProcessId{coord}, seq};
  for (auto m : members) e.lwg_members.insert(ProcessId{m});
  e.hwg = HwgId{hwg};
  e.hwg_view = ViewId{ProcessId{coord}, seq};
  e.hwg_members = e.lwg_members;
  e.stamp = stamp;
  return e;
}

TEST(LwgRecord, ApplyInsertsEntry) {
  LwgRecord rec;
  EXPECT_TRUE(rec.apply(entry(1, 1, 100), {}));
  EXPECT_EQ(rec.entries.size(), 1u);
  EXPECT_FALSE(rec.has_conflict());
}

TEST(LwgRecord, HigherStampWinsForSameView) {
  LwgRecord rec;
  rec.apply(entry(1, 1, 100, {1, 2}, 1), {});
  MappingEntry updated = entry(1, 1, 200, {1, 2}, 2);
  EXPECT_TRUE(rec.apply(updated, {}));
  EXPECT_EQ(rec.entries.begin()->second.hwg, HwgId{200});
  // A stale lower-stamp write does not regress the record.
  EXPECT_FALSE(rec.apply(entry(1, 1, 100, {1, 2}, 1), {}));
  EXPECT_EQ(rec.entries.begin()->second.hwg, HwgId{200});
}

TEST(LwgRecord, ConflictRequiresDifferentHwgs) {
  LwgRecord rec;
  rec.apply(entry(1, 1, 100), {});
  rec.apply(entry(5, 1, 100), {});  // concurrent views, same HWG
  EXPECT_FALSE(rec.has_conflict());
  rec.apply(entry(7, 1, 200), {});  // now a different HWG appears
  EXPECT_TRUE(rec.has_conflict());
}

TEST(LwgRecord, PredecessorsAreGarbageCollected) {
  LwgRecord rec;
  rec.apply(entry(1, 1, 100), {});
  rec.apply(entry(5, 1, 200), {});
  ASSERT_EQ(rec.entries.size(), 2u);
  // A merged view supersedes both constituents (paper Table 4, stage 4).
  MappingEntry merged = entry(1, 9, 200, {1, 2, 3});
  rec.apply(merged, {ViewId{ProcessId{1}, 1}, ViewId{ProcessId{5}, 1}});
  ASSERT_EQ(rec.entries.size(), 1u);
  EXPECT_EQ(rec.entries.begin()->first, (ViewId{ProcessId{1}, 9}));
  EXPECT_FALSE(rec.has_conflict());
}

TEST(LwgRecord, LateArrivingObsoleteEntryIsDropped) {
  LwgRecord rec;
  rec.apply(entry(1, 9, 200), {ViewId{ProcessId{1}, 1}});
  // The superseded mapping arrives afterwards (e.g. from a reconciling
  // peer): the tombstone wins.
  EXPECT_FALSE(rec.apply(entry(1, 1, 100), {}));
  EXPECT_EQ(rec.entries.size(), 1u);
  EXPECT_FALSE(rec.entries.contains(ViewId{ProcessId{1}, 1}));
}

TEST(LwgRecord, MergeFromUnionsEntriesAndTombstones) {
  LwgRecord a, b;
  a.apply(entry(1, 1, 100), {});
  b.apply(entry(5, 1, 200), {});
  EXPECT_TRUE(a.merge_from(b));
  EXPECT_EQ(a.entries.size(), 2u);
  EXPECT_TRUE(a.has_conflict());
  // Idempotent.
  EXPECT_FALSE(a.merge_from(b));
}

TEST(LwgRecord, MergeAppliesRemoteTombstones) {
  LwgRecord a, b;
  a.apply(entry(1, 1, 100), {});
  b.apply(entry(1, 9, 300), {ViewId{ProcessId{1}, 1}});
  EXPECT_TRUE(a.merge_from(b));
  EXPECT_EQ(a.entries.size(), 1u);
  EXPECT_TRUE(a.entries.contains(ViewId{ProcessId{1}, 9}));
}

TEST(LwgRecord, AllMembersUnionsAliveViews) {
  LwgRecord rec;
  rec.apply(entry(1, 1, 100, {1, 2}), {});
  rec.apply(entry(5, 1, 200, {3, 4}), {});
  EXPECT_EQ(rec.all_members(),
            (MemberSet{ProcessId{1}, ProcessId{2}, ProcessId{3},
                       ProcessId{4}}));
}

TEST(Database, MergeIsCommutativeOnDisjointRecords) {
  Database a, b;
  a.records[LwgId{1}].apply(entry(1, 1, 100), {});
  b.records[LwgId{2}].apply(entry(5, 1, 200), {});
  Database a2 = a;
  EXPECT_TRUE(a.merge_from(b));
  EXPECT_TRUE(b.merge_from(a2));
  EXPECT_EQ(a.records.size(), 2u);
  EXPECT_EQ(b.records.size(), 2u);
}

TEST(Database, PaperTable3Scenario) {
  // Partition p:  lwg_a -> hwg_1,  lwg_b -> hwg_2
  // Partition p': lwg'_a -> hwg'_2, lwg'_b -> hwg'_1
  Database p, pp;
  p.records[LwgId{0xA}].apply(entry(1, 1, 1, {1, 2}), {});
  p.records[LwgId{0xB}].apply(entry(1, 2, 2, {1, 2}), {});
  pp.records[LwgId{0xA}].apply(entry(3, 1, 2, {3, 4}), {});
  pp.records[LwgId{0xB}].apply(entry(3, 2, 1, {3, 4}), {});
  // Healing: the merged database holds both mappings per LWG (Table 3) and
  // both LWGs are flagged as conflicting.
  EXPECT_TRUE(p.merge_from(pp));
  EXPECT_EQ(p.records[LwgId{0xA}].entries.size(), 2u);
  EXPECT_EQ(p.records[LwgId{0xB}].entries.size(), 2u);
  EXPECT_TRUE(p.records[LwgId{0xA}].has_conflict());
  EXPECT_TRUE(p.records[LwgId{0xB}].has_conflict());
}

TEST(Database, EncodeDecodeRoundTrip) {
  Database db;
  db.records[LwgId{1}].apply(entry(1, 1, 100), {ViewId{ProcessId{9}, 3}});
  db.records[LwgId{2}].apply(entry(5, 2, 200, {7, 8}, 4), {});
  Encoder enc;
  db.encode(enc);
  Decoder dec(enc.bytes());
  Database copy = Database::decode(dec);
  EXPECT_TRUE(dec.done());
  ASSERT_EQ(copy.records.size(), 2u);
  EXPECT_EQ(copy.records[LwgId{1}].entries, db.records[LwgId{1}].entries);
  EXPECT_EQ(copy.records[LwgId{1}].superseded,
            db.records[LwgId{1}].superseded);
  EXPECT_EQ(copy.records[LwgId{2}].entries.begin()->second.stamp, 4u);
}

TEST(Database, DumpListsEveryRecord) {
  Database db;
  db.records[LwgId{1}].apply(entry(1, 1, 100), {});
  const std::string dump = db.dump();
  EXPECT_NE(dump.find("LWG 1"), std::string::npos);
  EXPECT_NE(dump.find("hwg#100"), std::string::npos);
}

}  // namespace
}  // namespace plwg::names
