// Seed-sweep soak with the oracle as the only judge: run ChaosMonkey over
// randomized worlds — partitions, crashes and crash–restart cycles — heal,
// wait for convergence, and require a clean oracle report for every seed.
// The CI default covers a small seed range; set PLWG_SWEEP_SEEDS (count)
// and PLWG_SWEEP_FIRST (start) for the full 1,000-seed campaign recorded
// in EXPERIMENTS.md, and PLWG_SWEEP_RESTARTS=0 to make crashes permanent:
//
//   PLWG_SWEEP_SEEDS=1000 ./build/tests/test_oracle --gtest_filter='*ChaosSweep*'
#include <gtest/gtest.h>

#include <cstdlib>
#include <string>

#include "harness/chaos.hpp"
#include "lwg_fixture.hpp"

namespace plwg::lwg::testing {
namespace {

std::uint64_t env_u64(const char* name, std::uint64_t fallback) {
  const char* value = std::getenv(name);
  if (value == nullptr || *value == '\0') return fallback;
  return std::strtoull(value, nullptr, 10);
}

class OracleChaosSweepTest : public LwgFixture {
 protected:
  /// One randomized chaos episode; returns false only on setup failure
  /// (fatal assertion inside), violations surface as gtest failures.
  void run_seed(std::uint64_t seed) {
    SCOPED_TRACE("sweep seed " + std::to_string(seed));
    harness::WorldConfig cfg;
    cfg.num_processes = 4 + seed % 3;  // 4..6
    cfg.num_name_servers = 2;
    cfg.naming_mode = (seed % 2 == 0)
                          ? harness::NamingMode::kDedicatedServers
                          : harness::NamingMode::kReplicatedEverywhere;
    cfg.net.seed = seed;
    // PLWG_SIM_THREADS > 1 runs the sweep on the sharded engine: the world
    // gets 2-3 LAN segments (one shard each) so the chaos episodes — with
    // partitions, crashes, and restarts — exercise cross-shard windows,
    // barrier-time oracle aggregation, and the multi-threaded worker pool.
    const std::uint64_t sim_threads = env_u64("PLWG_SIM_THREADS", 1);
    if (sim_threads > 1) {
      cfg.sim_threads = sim_threads;
      const std::size_t segs = 2 + seed % 2;
      cfg.segments.resize(segs);
      for (std::size_t i = 0; i < cfg.num_processes; ++i) {
        cfg.segments[i % segs].push_back(i);
      }
    }
    build(cfg);
    const std::size_t n = world().num_processes();

    const LwgId id{1};
    std::vector<std::size_t> indexes;
    for (std::size_t i = 0; i < n; ++i) indexes.push_back(i);
    form_lwg(id, indexes);

    harness::ChaosConfig chaos_cfg;
    chaos_cfg.seed = seed ^ 0x9e3779b97f4a7c15ULL;
    chaos_cfg.mean_interval_us = 4'000'000;
    chaos_cfg.mean_partition_us = 3'000'000;
    if (seed % 3 == 0) {
      chaos_cfg.crash_probability = 0.25;
      chaos_cfg.max_crashes = (n - 1) / 2;
      // Crash–restart cycles ride the same seeds; PLWG_SWEEP_RESTARTS=0
      // recovers the crashes-are-permanent sweep.
      if (env_u64("PLWG_SWEEP_RESTARTS", 1) != 0) {
        chaos_cfg.restart_probability = 0.7;
        chaos_cfg.mean_downtime_us = 2'000'000;
      }
    }
    harness::ChaosMonkey chaos(world(), chaos_cfg);
    chaos.run_for(45'000'000);
    chaos.quiesce();

    // Converge-then-verify: the online checks ran throughout; once the
    // world settles, invariants #4/#5 must hold too.
    const bool converged = run_until(
        [&] { return world().convergence_failure().empty(); }, 300'000'000);
    EXPECT_TRUE(converged) << "seed " << seed << ": "
                           << world().convergence_failure();
    if (converged) {
      EXPECT_TRUE(world().verify_convergence());
    }

    if (world().oracle_enabled()) {
      oracle::ProtocolOracle& o = world().oracle();
      if (!o.clean()) maybe_write_oracle_report(o);
      EXPECT_TRUE(o.clean())
          << "seed " << seed << ": " << o.report_json();
      o.clear();  // report via gtest, not the destructor backstop
    }
    world_.reset();
  }
};

TEST_F(OracleChaosSweepTest, ChaosSweepLeavesOracleClean) {
  const std::uint64_t first = env_u64("PLWG_SWEEP_FIRST", 1);
  const std::uint64_t count = env_u64("PLWG_SWEEP_SEEDS", 25);
  for (std::uint64_t seed = first; seed < first + count; ++seed) {
    run_seed(seed);
    if (::testing::Test::HasFatalFailure()) break;
  }
}

// Seeds the first 1,000-seed campaign flushed out (see EXPERIMENTS.md),
// pinned as regressions for the bugs they exposed:
//  - 671: merged-view-id collision — two concurrent HWG views collected the
//    same constituents and minted the same id for different memberships
//    (fixed by hashing the HWG view id into the disambiguator).
//  - 27/81/111/207/237/723/885: stale naming-service rows with live
//    members — broken genealogy chains from lost registrations (fixed by
//    superseding the collected ancestry on merge and by joiners writing
//    the supersession of views they abandoned).
TEST_F(OracleChaosSweepTest, PinnedRegressionSeeds) {
  for (std::uint64_t seed :
       {27ULL, 81ULL, 111ULL, 207ULL, 237ULL, 671ULL, 723ULL, 885ULL}) {
    run_seed(seed);
    if (::testing::Test::HasFatalFailure()) break;
  }
}

}  // namespace
}  // namespace plwg::lwg::testing
