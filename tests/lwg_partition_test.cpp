// Partitionable light-weight groups — the paper's core contribution. These
// tests drive the full four-step reconciliation (Sect. 6): global peer
// discovery via naming-service callbacks, deterministic mapping
// reconciliation (highest HWG gid wins), local peer discovery, and the
// merge-views protocol (Fig. 5).
#include <gtest/gtest.h>

#include "lwg_fixture.hpp"

namespace plwg::lwg::testing {
namespace {

harness::WorldConfig config(std::size_t processes,
                            std::size_t name_servers = 2) {
  harness::WorldConfig cfg;
  cfg.num_processes = processes;
  cfg.num_name_servers = name_servers;
  cfg.lwg.mode = MappingMode::kDynamic;
  cfg.lwg.policy_period_us = 5'000'000;
  cfg.lwg.shrink_delay_us = 5'000'000;
  return cfg;
}

class LwgPartitionTest : public LwgFixture {};

TEST_F(LwgPartitionTest, PartitionSplitsLwgIntoConcurrentViews) {
  build(config(4));
  const LwgId id{1};
  form_lwg(id, {0, 1, 2, 3});
  world().partition({{0, 1}, {2, 3}}, {0, 1});
  ASSERT_TRUE(run_until(
      [&] {
        return lwg_converged(id, {0, 1}, members_of({0, 1})) &&
               lwg_converged(id, {2, 3}, members_of({2, 3}));
      },
      30'000'000));
  const LwgView* a = lwg(0).view_of(id);
  const LwgView* b = lwg(2).view_of(id);
  ASSERT_NE(a, nullptr);
  ASSERT_NE(b, nullptr);
  EXPECT_FALSE(a->id == b->id);
  // Both halves stay operational.
  lwg(0).send(id, payload(1));
  lwg(2).send(id, payload(2));
  ASSERT_TRUE(run_until(
      [&] {
        return user(1).total_delivered(id) >= 1 &&
               user(3).total_delivered(id) >= 1;
      },
      10'000'000));
}

TEST_F(LwgPartitionTest, HealMergesLwgViewsViaSingleHwg) {
  build(config(4));
  const LwgId id{1};
  form_lwg(id, {0, 1, 2, 3});
  world().partition({{0, 1}, {2, 3}}, {0, 1});
  ASSERT_TRUE(run_until(
      [&] {
        return lwg_converged(id, {0, 1}, members_of({0, 1})) &&
               lwg_converged(id, {2, 3}, members_of({2, 3}));
      },
      30'000'000));
  world().heal();
  // Step 3 + 4: the HWG merges, concurrent LWG views discover each other
  // locally and fold into one.
  ASSERT_TRUE(run_until(
      [&] {
        return lwg_converged(id, {0, 1, 2, 3}, members_of({0, 1, 2, 3}));
      },
      60'000'000));
  // The merged group carries traffic end to end.
  const auto before = user(3).total_delivered(id);
  lwg(0).send(id, payload(9));
  ASSERT_TRUE(run_until(
      [&] { return user(3).total_delivered(id) > before; }, 10'000'000));
}

TEST_F(LwgPartitionTest, MergedLwgViewIdenticalEverywhere) {
  build(config(4));
  const LwgId id{1};
  form_lwg(id, {0, 1, 2, 3});
  world().partition({{0, 1}, {2, 3}}, {0, 1});
  ASSERT_TRUE(run_until(
      [&] {
        return lwg_converged(id, {0, 1}, members_of({0, 1})) &&
               lwg_converged(id, {2, 3}, members_of({2, 3}));
      },
      30'000'000));
  world().heal();
  ASSERT_TRUE(run_until(
      [&] { return lwg_converged(id, {0, 1, 2, 3}, members_of({0, 1, 2, 3})); },
      60'000'000));
  // Decentralized determinism (Fig. 5): every member computed the same view.
  const LwgView* ref = lwg(0).view_of(id);
  for (std::size_t i = 1; i < 4; ++i) {
    const LwgView* v = lwg(i).view_of(id);
    ASSERT_NE(v, nullptr);
    EXPECT_TRUE(*v == *ref) << "process " << i;
  }
}

TEST_F(LwgPartitionTest, ConflictingMappingsReconcileToHighestHwg) {
  build(config(4));
  // The LWG is *created independently* in two partitions — the scenario
  // where concurrent partitions make inconsistent mapping decisions.
  world().partition({{0, 1}, {2, 3}}, {0, 1});
  const LwgId id{1};
  lwg(0).join(id, user(0));
  lwg(1).join(id, user(1));
  lwg(2).join(id, user(2));
  lwg(3).join(id, user(3));
  ASSERT_TRUE(run_until(
      [&] {
        return lwg_converged(id, {0, 1}, members_of({0, 1})) &&
               lwg_converged(id, {2, 3}, members_of({2, 3}));
      },
      30'000'000));
  const auto hwg_a = lwg(0).hwg_of(id);
  const auto hwg_b = lwg(2).hwg_of(id);
  ASSERT_TRUE(hwg_a && hwg_b);
  ASSERT_NE(*hwg_a, *hwg_b);  // inconsistent mappings, as the paper predicts
  const HwgId expected = std::max(*hwg_a, *hwg_b);

  world().heal();
  // Steps 1-4: NS reconciliation → MULTIPLE-MAPPINGS → switch to highest
  // gid → local discovery → merge views.
  ASSERT_TRUE(run_until(
      [&] { return lwg_converged(id, {0, 1, 2, 3}, members_of({0, 1, 2, 3})); },
      90'000'000));
  // Everyone ended on the deterministically chosen HWG.
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(lwg(i).hwg_of(id), expected) << "process " << i;
  }
  // At least one side performed the Step 2 switch.
  const auto switches = lwg(0).stats().switches_started +
                        lwg(1).stats().switches_started +
                        lwg(2).stats().switches_started +
                        lwg(3).stats().switches_started;
  EXPECT_GE(switches, 1u);
}

TEST_F(LwgPartitionTest, NamingServiceConvergesToSingleMappingAfterHeal) {
  build(config(4));
  world().partition({{0, 1}, {2, 3}}, {0, 1});
  const LwgId id{1};
  for (std::size_t i = 0; i < 4; ++i) lwg(i).join(id, user(i));
  ASSERT_TRUE(run_until(
      [&] {
        return lwg_converged(id, {0, 1}, members_of({0, 1})) &&
               lwg_converged(id, {2, 3}, members_of({2, 3}));
      },
      30'000'000));
  world().heal();
  ASSERT_TRUE(run_until(
      [&] { return lwg_converged(id, {0, 1, 2, 3}, members_of({0, 1, 2, 3})); },
      90'000'000));
  // Table 4 stage 4: obsolete rows GC'd, exactly one mapping per LWG, on
  // both name servers.
  ASSERT_TRUE(run_until(
      [&] {
        for (std::size_t s = 0; s < 2; ++s) {
          const auto& db = world().server(s).database();
          auto it = db.records.find(id);
          if (it == db.records.end()) return false;
          if (it->second.entries.size() != 1) return false;
          if (it->second.has_conflict()) return false;
        }
        return true;
      },
      30'000'000));
}

TEST_F(LwgPartitionTest, MultipleLwgsMergeInOneFlush) {
  build(config(4));
  // Several LWGs, all mapped on one HWG (identical membership).
  const std::vector<LwgId> ids{LwgId{1}, LwgId{2}, LwgId{3}};
  for (LwgId id : ids) form_lwg(id, {0, 1, 2, 3});
  // Reconciliation of racing founders may leave a stale HWG around until
  // the shrink rule retires it.
  ASSERT_TRUE(run_until(
      [&] {
        for (std::size_t i = 0; i < 4; ++i) {
          if (lwg(i).member_hwgs().size() != 1) return false;
        }
        return true;
      },
      30'000'000));
  world().partition({{0, 1}, {2, 3}}, {0, 1});
  ASSERT_TRUE(run_until(
      [&] {
        for (LwgId id : ids) {
          if (!lwg_converged(id, {0, 1}, members_of({0, 1}))) return false;
          if (!lwg_converged(id, {2, 3}, members_of({2, 3}))) return false;
        }
        return true;
      },
      40'000'000));
  const HwgId shared_hwg = *lwg(0).hwg_of(ids[0]);
  const auto views_before =
      world().vsync(0).endpoint(shared_hwg)->stats().views_installed;
  std::vector<std::uint64_t> merges_before(4);
  for (std::size_t i = 0; i < 4; ++i) {
    merges_before[i] = lwg(i).stats().lwg_merges;
  }
  world().heal();
  ASSERT_TRUE(run_until(
      [&] {
        for (LwgId id : ids) {
          if (!lwg_converged(id, {0, 1, 2, 3}, members_of({0, 1, 2, 3}))) {
            return false;
          }
        }
        return true;
      },
      90'000'000));
  // Resource sharing in the merge itself (paper Sect. 6.4): one HWG merge
  // plus a couple of merge-views flushes folds *all* LWGs — the HWG view
  // count does not scale with the number of LWGs mapped on it.
  const auto views_after =
      world().vsync(0).endpoint(shared_hwg)->stats().views_installed;
  EXPECT_LE(views_after - views_before, 5u);
  // And every process folded concurrent views for each LWG exactly once
  // during the heal.
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(lwg(i).stats().lwg_merges - merges_before[i], ids.size())
        << "process " << i;
  }
}

TEST_F(LwgPartitionTest, RepeatedPartitionHealCyclesConverge) {
  build(config(4));
  const LwgId id{1};
  form_lwg(id, {0, 1, 2, 3});
  for (int cycle = 0; cycle < 2; ++cycle) {
    world().partition({{0, 1}, {2, 3}}, {0, 1});
    ASSERT_TRUE(run_until(
        [&] {
          return lwg_converged(id, {0, 1}, members_of({0, 1})) &&
                 lwg_converged(id, {2, 3}, members_of({2, 3}));
        },
        40'000'000))
        << "cycle " << cycle;
    world().heal();
    ASSERT_TRUE(run_until(
        [&] {
          return lwg_converged(id, {0, 1, 2, 3}, members_of({0, 1, 2, 3}));
        },
        90'000'000))
        << "cycle " << cycle;
  }
}

TEST_F(LwgPartitionTest, AsymmetricPartitionMinoritySideRejoins) {
  build(config(5));
  const LwgId id{1};
  form_lwg(id, {0, 1, 2, 3, 4});
  world().partition({{0, 1, 2, 3}, {4}}, {0, 1});
  ASSERT_TRUE(run_until(
      [&] {
        return lwg_converged(id, {0, 1, 2, 3}, members_of({0, 1, 2, 3})) &&
               lwg_converged(id, {4}, members_of({4}));
      },
      40'000'000));
  world().heal();
  ASSERT_TRUE(run_until(
      [&] {
        return lwg_converged(id, {0, 1, 2, 3, 4},
                             members_of({0, 1, 2, 3, 4}));
      },
      90'000'000));
}

TEST_F(LwgPartitionTest, DataTaggedWithOldViewIsNotDeliveredAcross) {
  build(config(4));
  const LwgId id{1};
  form_lwg(id, {0, 1, 2, 3});
  const auto delivered_before = user(3).total_delivered(id);
  world().partition({{0, 1}, {2, 3}}, {0, 1});
  ASSERT_TRUE(run_until(
      [&] { return lwg_converged(id, {0, 1}, members_of({0, 1})); },
      30'000'000));
  // Data sent in partition A's view never reaches partition B.
  lwg(0).send(id, payload(77));
  run_for(3'000'000);
  EXPECT_EQ(user(3).total_delivered(id), delivered_before);
}

}  // namespace
}  // namespace plwg::lwg::testing
