// Paper Sect. 4: *virtual partitions* — "excessively loaded portions of the
// network, whose delays cause timeouts to expire and the connections to be
// marked as crashed. In an asynchronous system a virtual partition is
// indistinguishable from a network partition."
//
// A background flooder saturates the shared bus for a configurable storm
// duration; heartbeats queue behind the junk traffic, the failure detector
// fires, and the group fragments into concurrent views exactly as if the
// network had partitioned. When the storm passes, the same merge machinery
// that heals real partitions reassembles the group. We report the
// fragmentation observed and the time to reconverge, side by side with a
// *real* partition of the same duration.
#include <cstdio>
#include <iostream>

#include "harness/world.hpp"
#include "lwg/lwg_user.hpp"
#include "metrics/stats.hpp"

namespace plwg::bench {
namespace {

class NullUser : public lwg::LwgUser {
 public:
  void on_lwg_view(LwgId, const lwg::LwgView&) override {}
  void on_lwg_data(LwgId, ProcessId, std::span<const std::uint8_t>) override {}
};

struct Outcome {
  bool fragmented = false;      // the group split during the disturbance
  std::size_t min_view = 8;     // smallest LWG view seen at any member
  Duration reconverge_ms = -1;  // time from storm end to full view
};

Outcome run_one(bool real_partition, Duration disturbance_us) {
  harness::WorldConfig cfg;
  cfg.oracle = false;  // measuring the protocol, not checking it
  cfg.num_processes = 8;
  cfg.net.bandwidth_bps = 10e6;
  // A WAN-ish failure detector: three missed heartbeats mark a peer down —
  // the setting that makes load-induced "virtual" partitions possible.
  cfg.vsync.suspect_timeout_us = 600'000;
  harness::SimWorld world(cfg);
  std::vector<NullUser> users(8);
  const LwgId id{1};
  world.lwg(0).join(id, users[0]);
  world.run_until([&] { return world.lwg(0).view_of(id) != nullptr; },
                  20'000'000);
  for (std::size_t i = 1; i < 8; ++i) world.lwg(i).join(id, users[i]);
  world.run_until(
      [&] {
        for (std::size_t i = 0; i < 8; ++i) {
          const lwg::LwgView* v = world.lwg(i).view_of(id);
          if (v == nullptr || v->members.size() != 8) return false;
        }
        return true;
      },
      60'000'000);

  Outcome out;
  auto observe = [&] {
    for (std::size_t i = 0; i < 8; ++i) {
      const lwg::LwgView* v = world.lwg(i).view_of(id);
      if (v != nullptr && v->members.size() < 8) {
        out.fragmented = true;
        out.min_view = std::min(out.min_view, v->members.size());
      }
    }
  };

  const Time start = world.simulator().now();
  if (real_partition) {
    world.partition({{0, 1, 2, 3}, {4, 5, 6, 7}}, {0});
    while (world.simulator().now() - start < disturbance_us) {
      world.run_for(100'000);
      observe();
    }
    world.heal();
  } else {
    // Storm: junk multicasts flood the bus beyond its drain rate
    // (~1.16 ms of bus time each at 10 Mbps, three injected per
    // millisecond = 3.5x capacity), stretching heartbeat inter-arrivals
    // past the suspicion timeout.
    const std::vector<NodeId> everyone{
        world.node(0), world.node(1), world.node(2), world.node(3),
        world.node(4), world.node(5), world.node(6), world.node(7)};
    const std::vector<std::uint8_t> junk(1400, 0);  // port 0: dropped cheaply
    while (world.simulator().now() - start < disturbance_us) {
      for (int i = 0; i < 3; ++i) {
        world.network().multicast(world.node(i), everyone, junk);
      }
      world.run_for(1'000);
      observe();
    }
  }
  const Time disturbance_end = world.simulator().now();

  // Recovery: a virtual partition mostly *manifests* after the storm, once
  // the queued traffic (and the suspicion evidence buried in it) drains.
  // "Reconverged" therefore means quiescence: the full view is installed
  // everywhere AND no process suspects anyone.
  const HwgId hwg = *world.lwg(0).hwg_of(id);
  const bool ok = world.run_until(
      [&] {
        observe();
        for (std::size_t i = 0; i < 8; ++i) {
          const lwg::LwgView* v = world.lwg(i).view_of(id);
          if (v == nullptr || v->members.size() != 8) return false;
          const vsync::GroupEndpoint* ep = world.vsync(i).endpoint(hwg);
          if (ep == nullptr || !ep->suspected().empty()) return false;
        }
        return true;
      },
      240'000'000);
  if (ok) {
    out.reconverge_ms = (world.simulator().now() - disturbance_end) / 1000;
  }
  if (!out.fragmented) out.min_view = 8;
  return out;
}

}  // namespace
}  // namespace plwg::bench

int main() {
  using namespace plwg;
  using namespace plwg::bench;
  std::printf("# Sect. 4: virtual partitions (bus-saturation storms) vs real "
              "partitions — same split, same healing machinery\n");
  metrics::Table table({"disturbance", "duration-s", "group-fragmented",
                        "smallest-view", "reconverge-ms"});
  for (Duration dur : {2'000'000, 4'000'000}) {
    for (bool real : {true, false}) {
      const Outcome out = run_one(real, dur);
      table.add_row(
          {real ? "real-partition" : "bus-storm",
           metrics::Table::fmt(static_cast<double>(dur) / 1e6, 0),
           out.fragmented ? "yes" : "no", std::to_string(out.min_view),
           out.reconverge_ms < 0 ? "timeout"
                                 : std::to_string(out.reconverge_ms)});
    }
  }
  table.print(std::cout);
  std::printf("\nshape check: a sufficiently long bus storm fragments the "
              "group exactly like a real partition, and both heal through "
              "the same merge path.\n");
  return 0;
}
