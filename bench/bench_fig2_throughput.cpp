// Paper Fig. 2 (middle panel): data-transfer throughput of the three
// services.
//
// Closed-loop saturation: each group's sender keeps a window of messages in
// flight (a new message is injected when the sender delivers its own copy),
// so the bottleneck resource — the shared bus, or a node CPU — sets the
// rate without unbounded queues.
//
// Expected shape: the static service funnels *all* groups through one
// sequencer and makes every process receive (and filter) both sets'
// traffic, so its aggregate throughput saturates lowest; dynamic and no-LWG
// keep the sets on separate HWGs and track the bus.
#include <cstdio>
#include <iostream>
#include <map>

#include "fig2_common.hpp"

namespace plwg::bench {
namespace {

struct Result {
  double rate = 0;             // delivered multicasts/s
  double frames_per_msg = 0;   // wire frames per delivered message
};

Result run_one(lwg::MappingMode mode, std::size_t n) {
  Fig2World f = build_fig2_world(mode, n);
  // The send window is driven by *receiver* progress at a designated member
  // of each set (member 1 / member 5): in a totally ordered group it
  // advances at the same rate as the sender's own delivery, and keeping
  // (window - in-flight) topped up gives closed-loop saturation.
  constexpr int kWindow = 8;
  constexpr std::size_t kBytes = 64;
  constexpr Duration kMeasure = 10'000'000;
  constexpr Duration kTick = 2'000;

  std::map<LwgId, std::uint64_t> sent;
  const auto delivered_at = [&](std::size_t proc) {
    return f.users[proc]->delivered;
  };

  // Warmup: fill windows.
  auto pump = [&] {
    // Receiver progress per set, normalized per group: use the aggregate
    // deliveries at one member of each set divided by group count.
    const std::uint64_t prog_a = delivered_at(1) / n;
    const std::uint64_t prog_b = delivered_at(5) / n;
    for (LwgId g : f.set_a) {
      while (sent[g] < prog_a + kWindow) {
        f.world->lwg(0).send(g, probe_payload(f.world->simulator().now(),
                                              kBytes));
        sent[g]++;
      }
    }
    for (LwgId g : f.set_b) {
      while (sent[g] < prog_b + kWindow) {
        f.world->lwg(4).send(g, probe_payload(f.world->simulator().now(),
                                              kBytes));
        sent[g]++;
      }
    }
  };

  const Time warm_end = f.world->simulator().now() + 3'000'000;
  while (f.world->simulator().now() < warm_end) {
    pump();
    f.world->run_for(kTick);
  }
  std::uint64_t base = 0;
  for (const auto& u : f.users) base += u->delivered;
  const std::uint64_t frames_base = f.world->network().stats().frames_sent;
  const Time start = f.world->simulator().now();
  while (f.world->simulator().now() < start + kMeasure) {
    pump();
    f.world->run_for(kTick);
  }
  std::uint64_t end_count = 0;
  for (const auto& u : f.users) end_count += u->delivered;
  const std::uint64_t frames_end = f.world->network().stats().frames_sent;
  const Time elapsed = f.world->simulator().now() - start;
  Result r;
  // 4 deliveries per multicast (3 remote members + the sender's own copy):
  // normalize to end-to-end multicasts per second.
  r.rate = metrics::rate_per_sec(end_count - base, elapsed) / 4.0;
  // Wire cost per useful delivery: all frames on the bus during the window
  // (data, acks, heartbeats, naming) over end-to-end message deliveries.
  if (end_count > base) {
    r.frames_per_msg = static_cast<double>(frames_end - frames_base) /
                       static_cast<double>(end_count - base);
  }
  return r;
}

}  // namespace
}  // namespace plwg::bench

int main() {
  using namespace plwg;
  using namespace plwg::bench;
  std::printf("# Fig. 2 (throughput): delivered multicasts/s, closed-loop "
              "saturating senders, 2 x n groups of 4 on 8 processes\n");
  metrics::Table table({"n-groups-per-set", "service",
                        "delivered-msgs-per-sec", "frames-per-delivered-msg"});
  for (std::size_t n : {1, 2, 4, 8, 16}) {
    for (lwg::MappingMode mode :
         {lwg::MappingMode::kPerGroup, lwg::MappingMode::kStaticSingle,
          lwg::MappingMode::kDynamic}) {
      const Result r = run_one(mode, n);
      table.add_row({std::to_string(n), mode_name(mode),
                     metrics::Table::fmt(r.rate, 1),
                     metrics::Table::fmt(r.frames_per_msg, 3)});
    }
  }
  table.print(std::cout);
  return 0;
}
