// Microbenchmarks (google-benchmark) for the building blocks on the hot
// paths: codec, member-set algebra, the Fig. 1 policy predicates, and the
// event loop.
#include <benchmark/benchmark.h>

#include "lwg/policy.hpp"
#include "sim/simulator.hpp"
#include "util/codec.hpp"
#include "util/member_set.hpp"
#include "util/rng.hpp"
#include "vsync/messages.hpp"

namespace plwg {
namespace {

void BM_CodecEncodeOrdered(benchmark::State& state) {
  vsync::OrderedMsgWire wire;
  wire.view = vsync::ViewId{ProcessId{3}, 7};
  wire.msg.seq = 42;
  wire.msg.origin = ProcessId{5};
  wire.msg.sender_msg_id = 9;
  wire.msg.payload.assign(static_cast<std::size_t>(state.range(0)), 0xAB);
  for (auto _ : state) {
    Encoder enc;
    wire.encode(enc);
    benchmark::DoNotOptimize(enc.bytes().data());
  }
  state.SetBytesProcessed(state.iterations() *
                          static_cast<std::int64_t>(wire.msg.payload.size()));
}
BENCHMARK(BM_CodecEncodeOrdered)->Arg(64)->Arg(1024)->Arg(16384);

void BM_CodecDecodeOrdered(benchmark::State& state) {
  vsync::OrderedMsgWire wire;
  wire.view = vsync::ViewId{ProcessId{3}, 7};
  wire.msg.payload.assign(static_cast<std::size_t>(state.range(0)), 0xAB);
  Encoder enc;
  wire.encode(enc);
  for (auto _ : state) {
    Decoder dec(enc.bytes());
    auto decoded = vsync::OrderedMsgWire::decode(dec);
    benchmark::DoNotOptimize(decoded.msg.payload.data());
  }
  state.SetBytesProcessed(state.iterations() *
                          static_cast<std::int64_t>(wire.msg.payload.size()));
}
BENCHMARK(BM_CodecDecodeOrdered)->Arg(64)->Arg(1024)->Arg(16384);

MemberSet make_members(std::size_t n, std::uint32_t offset) {
  MemberSet set;
  for (std::uint32_t i = 0; i < n; ++i) set.insert(ProcessId{offset + i});
  return set;
}

void BM_MemberSetIntersection(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const MemberSet a = make_members(n, 0);
  const MemberSet b = make_members(n, static_cast<std::uint32_t>(n / 2));
  for (auto _ : state) {
    benchmark::DoNotOptimize(a.intersection_size(b));
  }
}
BENCHMARK(BM_MemberSetIntersection)->Arg(8)->Arg(64)->Arg(512);

void BM_MemberSetUnion(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const MemberSet a = make_members(n, 0);
  const MemberSet b = make_members(n, static_cast<std::uint32_t>(n / 2));
  for (auto _ : state) {
    MemberSet u = a.set_union(b);
    benchmark::DoNotOptimize(u.members().data());
  }
}
BENCHMARK(BM_MemberSetUnion)->Arg(8)->Arg(64)->Arg(512);

void BM_PolicyShareRule(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const MemberSet a = make_members(n, 0);
  const MemberSet b = make_members(n, static_cast<std::uint32_t>(n / 4));
  const lwg::policy::PolicyParams params{4.0, 4.0};
  for (auto _ : state) {
    benchmark::DoNotOptimize(lwg::policy::should_collapse(a, b, params));
  }
}
BENCHMARK(BM_PolicyShareRule)->Arg(8)->Arg(64)->Arg(512);

void BM_SimulatorEventThroughput(benchmark::State& state) {
  for (auto _ : state) {
    sim::Simulator sim;
    constexpr int kEvents = 1000;
    int fired = 0;
    for (int i = 0; i < kEvents; ++i) {
      sim.schedule_at(i, [&fired] { ++fired; });
    }
    sim.run();
    benchmark::DoNotOptimize(fired);
  }
  state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_SimulatorEventThroughput);

void BM_RngNextBelow(benchmark::State& state) {
  Rng rng(42);
  for (auto _ : state) {
    benchmark::DoNotOptimize(rng.next_below(1000));
  }
}
BENCHMARK(BM_RngNextBelow);

}  // namespace
}  // namespace plwg

BENCHMARK_MAIN();
