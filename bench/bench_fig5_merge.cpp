// Paper Fig. 5: the merge-views protocol. All concurrent LWG views mapped on
// one HWG are merged with a *single* HWG flush, regardless of how many LWGs
// are involved — the resource-sharing claim of Sect. 6.4.
//
// m LWGs (all with the same 8 members, hence all on one HWG) are split by a
// partition and healed. We measure the time from heal until every LWG at
// every member has one merged view, and how many HWG view installations the
// merge cost. The strawman column extrapolates a per-LWG flush design
// (m x the single-group cost), which is what the shared flush avoids.
#include <cstdio>
#include <iostream>

#include "harness/world.hpp"
#include "lwg/lwg_user.hpp"
#include "metrics/stats.hpp"

namespace plwg::bench {
namespace {

class NullUser : public lwg::LwgUser {
 public:
  void on_lwg_view(LwgId, const lwg::LwgView&) override {}
  void on_lwg_data(LwgId, ProcessId, std::span<const std::uint8_t>) override {}
};

struct RunResult {
  Duration merge_time_us = -1;
  std::uint64_t hwg_views = 0;  // HWG views installed at p0 during the merge
};

RunResult run_one(std::size_t m) {
  harness::WorldConfig cfg;
  cfg.oracle = false;  // measuring the protocol, not checking it
  cfg.num_processes = 8;
  cfg.num_name_servers = 2;
  harness::SimWorld world(cfg);
  std::vector<NullUser> users(8);

  std::vector<LwgId> ids;
  for (std::size_t g = 0; g < m; ++g) ids.push_back(LwgId{100 + g});

  // Sequential formation keeps all LWGs on one HWG.
  for (LwgId id : ids) {
    world.lwg(0).join(id, users[0]);
    world.run_until([&] { return world.lwg(0).view_of(id) != nullptr; },
                    20'000'000);
    for (std::size_t i = 1; i < 8; ++i) world.lwg(i).join(id, users[i]);
    world.run_until(
        [&] {
          for (std::size_t i = 0; i < 8; ++i) {
            const lwg::LwgView* v = world.lwg(i).view_of(id);
            if (v == nullptr || v->members.size() != 8) return false;
          }
          return true;
        },
        40'000'000);
  }
  const HwgId hwg = *world.lwg(0).hwg_of(ids[0]);

  world.partition({{0, 1, 2, 3}, {4, 5, 6, 7}}, {0, 1});
  world.run_until(
      [&] {
        for (LwgId id : ids) {
          const lwg::LwgView* a = world.lwg(0).view_of(id);
          const lwg::LwgView* b = world.lwg(4).view_of(id);
          if (a == nullptr || a->members.size() != 4) return false;
          if (b == nullptr || b->members.size() != 4) return false;
        }
        return true;
      },
      60'000'000);

  const auto views_before =
      world.vsync(0).endpoint(hwg)->stats().views_installed;
  world.heal();
  const Time heal_at = world.simulator().now();
  const bool ok = world.run_until(
      [&] {
        for (LwgId id : ids) {
          for (std::size_t i = 0; i < 8; ++i) {
            const lwg::LwgView* v = world.lwg(i).view_of(id);
            if (v == nullptr || v->members.size() != 8) return false;
          }
        }
        return true;
      },
      120'000'000);
  RunResult r;
  if (!ok) return r;
  r.merge_time_us = world.simulator().now() - heal_at;
  r.hwg_views =
      world.vsync(0).endpoint(hwg)->stats().views_installed - views_before;
  return r;
}

}  // namespace
}  // namespace plwg::bench

int main() {
  using namespace plwg;
  using namespace plwg::bench;
  std::printf("# Fig. 5: merge-views protocol — one HWG flush merges all "
              "concurrent LWG views on the HWG\n");
  metrics::Table table({"m-lwgs-on-hwg", "merge-time-ms", "hwg-views-installed",
                        "per-lwg-flush-strawman-ms"});
  double base_ms = 0;
  for (std::size_t m : {1, 2, 4, 8, 16}) {
    const RunResult r = run_one(m);
    const double ms = static_cast<double>(r.merge_time_us) / 1000.0;
    if (m == 1) base_ms = ms;
    table.add_row({std::to_string(m),
                   r.merge_time_us < 0 ? "timeout" : metrics::Table::fmt(ms, 1),
                   std::to_string(r.hwg_views),
                   metrics::Table::fmt(base_ms * static_cast<double>(m), 1)});
  }
  table.print(std::cout);
  std::printf("\nshape check: merge-time and hwg-views stay ~flat in m, the "
              "strawman grows linearly.\n");
  return 0;
}
