// Shared workload builder for the paper's Fig. 2 experiments.
//
// Configuration (paper Sect. 3.3): 8 processes on a loaded 10 Mbps shared
// Ethernet; two sets of n user groups; every group in set A has members
// {0,1,2,3}, every group in set B has members {4,5,6,7} (disjoint sets).
//   * no LWG service  -> every user group is its own HWG          (kPerGroup)
//   * static LWG      -> all 2n groups on one HWG of all 8        (kStaticSingle)
//   * dynamic LWG     -> set A on HWG1 {0..3}, set B on HWG2 {4..7} (kDynamic)
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "harness/world.hpp"
#include "lwg/lwg_user.hpp"
#include "metrics/stats.hpp"

namespace plwg::bench {

inline constexpr std::size_t kProcesses = 8;
inline constexpr std::size_t kGroupSize = 4;

inline const char* mode_name(lwg::MappingMode mode) {
  switch (mode) {
    case lwg::MappingMode::kDynamic: return "dynamic-lwg";
    case lwg::MappingMode::kStaticSingle: return "static-lwg";
    case lwg::MappingMode::kPerGroup: return "no-lwg";
  }
  return "?";
}

/// Measures one-way latency: senders embed the simulated send time; every
/// other member records (now - sent) on delivery.
class LatencyUser : public lwg::LwgUser {
 public:
  LatencyUser(harness::SimWorld& world, metrics::LatencyRecorder& recorder)
      : world_(world), recorder_(recorder) {}

  void on_lwg_view(LwgId, const lwg::LwgView&) override {}
  void on_lwg_data(LwgId, ProcessId, std::span<const std::uint8_t> data) override {
    Decoder dec(data);
    const Time sent = dec.get_i64();
    recorder_.record(world_.simulator().now() - sent);
    ++delivered;
  }

  std::uint64_t delivered = 0;

 private:
  harness::SimWorld& world_;
  metrics::LatencyRecorder& recorder_;
};

struct Fig2World {
  std::unique_ptr<harness::SimWorld> world;
  std::vector<std::unique_ptr<LatencyUser>> users;  // one per process
  metrics::LatencyRecorder latency;
  std::vector<LwgId> set_a;  // groups over {0,1,2,3}
  std::vector<LwgId> set_b;  // groups over {4,5,6,7}
};

/// Builds the Fig. 2 world for `mode` with n groups per set, joins all
/// groups (sequentially per group for a deterministic mapping), and waits
/// until every group converged.
inline Fig2World build_fig2_world(lwg::MappingMode mode, std::size_t n,
                                  std::size_t payload_bytes = 64,
                                  transport::TransportConfig transport = {}) {
  (void)payload_bytes;
  Fig2World f;
  harness::WorldConfig cfg;
  cfg.oracle = false;  // measuring the protocol, not checking it
  cfg.transport = transport;
  cfg.num_processes = kProcesses;
  cfg.num_name_servers = 1;
  cfg.net.bandwidth_bps = 10e6;        // the paper's 10 Mbps Ethernet
  cfg.net.node_process_cost_us = 300;  // per-packet protocol processing
                                       // (SunOS-era stacks: receiving is
                                       // expensive, which is what filtering
                                       // foreign traffic costs)
  // Membership operations were expensive on the paper's hardware (protocol
  // stack reconfiguration per view change); this is the per-message charge
  // that makes running one flush per group costly.
  cfg.vsync.membership_msg_cost_us = 5'000;
  cfg.lwg.mode = mode;
  cfg.lwg.policy_period_us = 60'000'000;  // paper default: heuristics hourly-scale
  if (mode == lwg::MappingMode::kStaticSingle) {
    cfg.lwg.static_hwg = HwgId{0xFFFF'0001};
    MemberSet contacts;
    for (std::size_t i = 0; i < kProcesses; ++i) {
      contacts.insert(ProcessId{static_cast<std::uint32_t>(i)});
    }
    cfg.lwg.static_contacts = contacts;
  }
  f.world = std::make_unique<harness::SimWorld>(cfg);
  f.users.reserve(kProcesses);
  for (std::size_t i = 0; i < kProcesses; ++i) {
    f.users.push_back(std::make_unique<LatencyUser>(*f.world, f.latency));
  }

  auto join_group = [&](LwgId id, std::size_t first) {
    // The first member founds (and maps) the group, then the rest join.
    f.world->lwg(first).join(id, *f.users[first]);
    f.world->run_until(
        [&] { return f.world->lwg(first).view_of(id) != nullptr; },
        20'000'000);
    for (std::size_t k = 1; k < kGroupSize; ++k) {
      f.world->lwg(first + k).join(id, *f.users[first + k]);
    }
    f.world->run_until(
        [&] {
          for (std::size_t k = 0; k < kGroupSize; ++k) {
            const lwg::LwgView* v = f.world->lwg(first + k).view_of(id);
            if (v == nullptr || v->members.size() != kGroupSize) return false;
          }
          return true;
        },
        30'000'000);
  };

  for (std::size_t g = 0; g < n; ++g) {
    const LwgId a{0x0A00 + g};
    const LwgId b{0x0B00 + g};
    join_group(a, 0);
    join_group(b, 4);
    f.set_a.push_back(a);
    f.set_b.push_back(b);
  }
  // Settle naming-service traffic and heartbeats.
  f.world->run_for(3'000'000);
  return f;
}

/// Encodes a latency-probe payload of at least `bytes` total.
inline std::vector<std::uint8_t> probe_payload(Time now, std::size_t bytes) {
  Encoder enc;
  enc.put_i64(now);
  std::vector<std::uint8_t> out = enc.take();
  if (out.size() < bytes) out.resize(bytes, 0);
  return out;
}

}  // namespace plwg::bench
