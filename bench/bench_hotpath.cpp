// Hot-path microbenchmarks: simulator event loop, codec encode/decode, and
// an end-to-end Fig. 2-style throughput run.
//
// These are the two layers every experiment funnels through (millions of
// events, one codec pass per message), so this file is the regression gate
// for hot-path work. `scripts/bench_smoke.sh` runs it and records the
// results in BENCH_hotpath.json; compare against the checked-in baseline
// before merging changes that touch src/sim or src/util/codec.
#include <benchmark/benchmark.h>

#include <memory>
#include <vector>

#include "fig2_common.hpp"
#include "lwg/messages.hpp"
#include "sim/simulator.hpp"
#include "util/codec.hpp"
#include "vsync/messages.hpp"

namespace plwg {
namespace {

// --- simulator ---------------------------------------------------------------

// Callbacks sized like the network's delivery closures (this + shared
// buffer + ids): large enough that std::function would heap-allocate.
void BM_SimulatorScheduleFire(benchmark::State& state) {
  const auto data = std::make_shared<const std::vector<std::uint8_t>>(64, 0xCD);
  std::uint64_t sink = 0;
  // Queue depth sized to what the end-to-end Fig. 2 run actually holds
  // pending at steady state (measured: ~60-80 events), scheduled and
  // drained in batches the way the protocol pump does.
  constexpr int kDepth = 64;
  constexpr int kBatches = 64;
  constexpr int kEvents = kDepth * kBatches;
  // One long-lived event loop, as every experiment runs it: millions of
  // events through a single Simulator, so the queue's steady-state
  // footprint is reached once and the schedule/fire cycle is what's
  // measured.
  sim::Simulator sim;
  for (auto _ : state) {
    for (int b = 0; b < kBatches; ++b) {
      for (int i = 0; i < kDepth; ++i) {
        sim.schedule_after(i, [&sink, data, i, extra = static_cast<std::uint64_t>(i)] {
          sink += data->size() + extra + static_cast<std::uint64_t>(i);
        });
      }
      sim.run();
    }
  }
  benchmark::DoNotOptimize(sink);
  state.SetItemsProcessed(state.iterations() * kEvents);
}
BENCHMARK(BM_SimulatorScheduleFire);

// Protocol timer pattern: most timers are cancelled and rescheduled before
// they fire (heartbeat / retransmission / watchdog timers).
void BM_SimulatorTimerChurn(benchmark::State& state) {
  constexpr int kRounds = 2048;
  for (auto _ : state) {
    sim::Simulator sim;
    std::uint64_t fired = 0;
    sim::TimerId pending[8] = {};
    for (int i = 0; i < kRounds; ++i) {
      const int slot = i & 7;
      sim.cancel(pending[slot]);
      pending[slot] =
          sim.schedule_at(i + 100, [&fired] { ++fired; });
    }
    sim.run();
    benchmark::DoNotOptimize(fired);
  }
  state.SetItemsProcessed(state.iterations() * kRounds);
}
BENCHMARK(BM_SimulatorTimerChurn);

// --- codec -------------------------------------------------------------------

vsync::OrderedMsgWire make_wire(std::size_t payload_bytes) {
  vsync::OrderedMsgWire wire;
  wire.view = vsync::ViewId{ProcessId{3}, 7};
  wire.msg.seq = 42;
  wire.msg.origin = ProcessId{5};
  wire.msg.sender_msg_id = 9;
  wire.msg.payload.assign(payload_bytes, 0xAB);
  return wire;
}

vsync::FlushAckMsg make_flush_ack(std::size_t seqs) {
  vsync::FlushAckMsg msg;
  msg.old_view = vsync::ViewId{ProcessId{1}, 4};
  msg.epoch = 2;
  msg.sender = ProcessId{6};
  msg.have.reserve(seqs);
  for (std::size_t i = 1; i <= seqs; ++i) msg.have.push_back(i);
  return msg;
}

// One fresh message serialization, as the send path performs it.
void BM_CodecEncodeOrderedWire(benchmark::State& state) {
  const auto wire = make_wire(static_cast<std::size_t>(state.range(0)));
  std::size_t encoded = 0;
  for (auto _ : state) {
    Encoder enc;
#ifdef PLWG_CODEC_FAST
    enc.reserve(wire.encoded_size_hint());
#endif
    wire.encode(enc);
    encoded = enc.size();
    benchmark::DoNotOptimize(enc.bytes().data());
  }
  state.SetBytesProcessed(state.iterations() *
                          static_cast<std::int64_t>(encoded));
}
BENCHMARK(BM_CodecEncodeOrderedWire)->Arg(64)->Arg(1024);

void BM_CodecDecodeOrderedWire(benchmark::State& state) {
  const auto wire = make_wire(static_cast<std::size_t>(state.range(0)));
  Encoder enc;
  wire.encode(enc);
  for (auto _ : state) {
    Decoder dec(enc.bytes());
    auto decoded = vsync::OrderedMsgWire::decode(dec);
    benchmark::DoNotOptimize(decoded.msg.payload.data());
  }
  state.SetBytesProcessed(state.iterations() *
                          static_cast<std::int64_t>(enc.size()));
}
BENCHMARK(BM_CodecDecodeOrderedWire)->Arg(64)->Arg(1024);

// LWG data-path decode as the receive path performs it before the user
// upcall. Post-overhaul this goes through DataMsgView (the payload is a
// view of the packet buffer); before, it copied the payload into an
// owning vector — the benchmark measures whichever path the built codec
// provides, so baseline vs current captures the zero-copy win.
void BM_CodecDecodeDataMsg(benchmark::State& state) {
  lwg::DataMsg msg;
  msg.lwg = LwgId{7};
  msg.lwg_view = vsync::ViewId{ProcessId{3}, 9};
  msg.payload.assign(static_cast<std::size_t>(state.range(0)), 0xEF);
  Encoder enc;
  msg.encode(enc);
  for (auto _ : state) {
    Decoder dec(enc.bytes());
#ifdef PLWG_CODEC_FAST
    const auto decoded = lwg::DataMsgView::decode(dec);
#else
    const auto decoded = lwg::DataMsg::decode(dec);
#endif
    benchmark::DoNotOptimize(decoded.payload.data());
  }
  state.SetBytesProcessed(state.iterations() *
                          static_cast<std::int64_t>(enc.size()));
}
BENCHMARK(BM_CodecDecodeDataMsg)->Arg(64)->Arg(1024);

// Integer-dense message (a flush ACK's have-list): exercises the
// fixed-width-integer paths with no payload memcpy to hide behind.
void BM_CodecEncodeFlushAck(benchmark::State& state) {
  const auto msg = make_flush_ack(512);
  std::size_t encoded = 0;
  for (auto _ : state) {
    Encoder enc;
#ifdef PLWG_CODEC_FAST
    enc.reserve(msg.encoded_size_hint());
#endif
    msg.encode(enc);
    encoded = enc.size();
    benchmark::DoNotOptimize(enc.bytes().data());
  }
  state.SetBytesProcessed(state.iterations() *
                          static_cast<std::int64_t>(encoded));
}
BENCHMARK(BM_CodecEncodeFlushAck);

void BM_CodecDecodeFlushAck(benchmark::State& state) {
  const auto msg = make_flush_ack(512);
  Encoder enc;
  msg.encode(enc);
  for (auto _ : state) {
    Decoder dec(enc.bytes());
    auto decoded = vsync::FlushAckMsg::decode(dec);
    benchmark::DoNotOptimize(decoded.have.data());
  }
  state.SetBytesProcessed(state.iterations() *
                          static_cast<std::int64_t>(enc.size()));
}
BENCHMARK(BM_CodecDecodeFlushAck);

// --- end-to-end --------------------------------------------------------------

// Fig. 2-style closed-loop throughput on the dynamic service, measured in
// wall-clock terms: how many simulated events (and delivered multicasts)
// the stack pushes through per real second.
void BM_EndToEndFig2(benchmark::State& state) {
  using namespace plwg::bench;
  constexpr int kWindow = 8;
  constexpr std::size_t kBytes = 64;
  constexpr Duration kMeasure = 2'000'000;
  constexpr Duration kTick = 2'000;
  std::uint64_t delivered_total = 0;
  std::uint64_t events_total = 0;
  for (auto _ : state) {
    state.PauseTiming();
    Fig2World f = build_fig2_world(lwg::MappingMode::kDynamic, 2);
    std::map<LwgId, std::uint64_t> sent;
    const auto pump = [&] {
      const std::uint64_t prog = f.users[1]->delivered / f.set_a.size();
      for (LwgId g : f.set_a) {
        while (sent[g] < prog + kWindow) {
          f.world->lwg(0).send(
              g, probe_payload(f.world->simulator().now(), kBytes));
          sent[g]++;
        }
      }
    };
    // Warmup: fill the windows before the timed section.
    const Time warm_end = f.world->simulator().now() + 1'000'000;
    while (f.world->simulator().now() < warm_end) {
      pump();
      f.world->run_for(kTick);
    }
    std::uint64_t base = 0;
    for (const auto& u : f.users) base += u->delivered;
    const std::uint64_t ev_base = f.world->simulator().total_events_run();
    state.ResumeTiming();
    const Time start = f.world->simulator().now();
    while (f.world->simulator().now() < start + kMeasure) {
      pump();
      f.world->run_for(kTick);
    }
    state.PauseTiming();
    std::uint64_t end_count = 0;
    for (const auto& u : f.users) end_count += u->delivered;
    delivered_total += end_count - base;
    events_total += f.world->simulator().total_events_run() - ev_base;
    state.ResumeTiming();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(delivered_total));
  state.counters["sim_events_per_sec"] = benchmark::Counter(
      static_cast<double>(events_total), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_EndToEndFig2)->Unit(benchmark::kMillisecond)->Iterations(3);

}  // namespace
}  // namespace plwg

BENCHMARK_MAIN();
