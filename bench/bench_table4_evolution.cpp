// Paper Table 4 + Figure 4: evolution of the naming-service database during
// the four-stage reconciliation of a healed partition:
//   1) merged naming service (both mappings per LWG, conflicting HWGs)
//   2) merged HWGs            (entries re-registered against merged HWG views)
//   3) switched LWGs          (all views of an LWG on the same HWG)
//   4) merged LWGs            (one view, obsolete rows GC'd via genealogy)
//
// The database of server 0 is polled; every distinct state is printed with
// its simulated timestamp, reproducing the Table 4 progression.
#include <cstdio>
#include <iostream>

#include "harness/world.hpp"
#include "lwg/lwg_user.hpp"

namespace plwg::bench {
namespace {

class NullUser : public lwg::LwgUser {
 public:
  void on_lwg_view(LwgId, const lwg::LwgView&) override {}
  void on_lwg_data(LwgId, ProcessId, std::span<const std::uint8_t>) override {}
};

}  // namespace
}  // namespace plwg::bench

int main() {
  using namespace plwg;
  using namespace plwg::bench;

  harness::WorldConfig cfg;
  cfg.oracle = false;  // measuring the protocol, not checking it
  cfg.num_processes = 4;
  cfg.num_name_servers = 2;
  harness::SimWorld world(cfg);
  std::vector<NullUser> users(4);

  std::printf("# Table 4 / Fig. 4: naming-service evolution through the "
              "four reconciliation stages\n\n");

  world.partition({{0, 1}, {2, 3}}, {0, 1});
  const LwgId lwg_a{0xA};
  const LwgId lwg_b{0xB};
  for (std::size_t i = 0; i < 4; ++i) {
    world.lwg(i).join(lwg_a, users[i]);
    world.lwg(i).join(lwg_b, users[i]);
  }
  world.run_until(
      [&] {
        for (std::size_t i = 0; i < 4; ++i) {
          for (LwgId id : {lwg_a, lwg_b}) {
            const lwg::LwgView* v = world.lwg(i).view_of(id);
            if (v == nullptr || v->members.size() != 2) return false;
          }
        }
        return true;
      },
      60'000'000);
  world.run_for(3'000'000);
  std::printf("[t=%lldms] pre-heal: partition p database (server 0):\n%s\n",
              static_cast<long long>(world.simulator().now() / 1000),
              world.server(0).dump_database().c_str());

  world.heal();
  const Time heal_at = world.simulator().now();

  std::string last = world.server(0).dump_database();
  int stage = 0;
  const Time deadline = heal_at + 150'000'000;
  while (world.simulator().now() < deadline) {
    world.run_for(20'000);
    const std::string dump = world.server(0).dump_database();
    if (dump != last) {
      last = dump;
      ++stage;
      std::printf("[t=+%lldms] database state %d:\n%s\n",
                  static_cast<long long>(
                      (world.simulator().now() - heal_at) / 1000),
                  stage, dump.c_str());
    }
    // Stop once stage 4 is reached: one conflict-free row per LWG.
    const auto& db = world.server(0).database();
    bool done = true;
    for (LwgId id : {lwg_a, lwg_b}) {
      auto it = db.records.find(id);
      if (it == db.records.end() || it->second.entries.size() != 1 ||
          it->second.has_conflict()) {
        done = false;
      }
    }
    if (done && stage > 1) break;
  }

  const auto& db = world.server(0).database();
  const bool converged =
      db.records.at(lwg_a).entries.size() == 1 &&
      db.records.at(lwg_b).entries.size() == 1 &&
      !db.records.at(lwg_a).has_conflict() &&
      !db.records.at(lwg_b).has_conflict();
  std::printf("final state: one GC'd mapping per LWG (Table 4 stage 4): %s\n",
              converged ? "yes" : "NO");
  std::printf("reconciliation completed %lld ms after heal, %d distinct "
              "database states observed\n",
              static_cast<long long>((world.simulator().now() - heal_at) /
                                     1000),
              stage);
  return 0;
}
