// Naming-service deployment ablation (paper Sect. 3.1 / 5.2): dedicated
// per-LAN servers vs. a replica at every process ("making updates expensive
// but read operations purely local").
//
// Measures, for both deployments: mapping-resolution latency (the ns.read a
// joiner performs), update cost in server-to-server sync messages, and
// whether partition reconciliation still converges.
#include <cstdio>
#include <iostream>

#include "harness/world.hpp"
#include "lwg/lwg_user.hpp"
#include "metrics/stats.hpp"

namespace plwg::bench {
namespace {

class NullUser : public lwg::LwgUser {
 public:
  void on_lwg_view(LwgId, const lwg::LwgView&) override {}
  void on_lwg_data(LwgId, ProcessId, std::span<const std::uint8_t>) override {}
};

struct Result {
  double join_latency_ms = 0;   // mean time from join() to installed view
  std::uint64_t syncs = 0;      // server->server sync messages sent
  std::size_t replicas = 0;
  bool reconciled = false;
};

Result run_one(harness::NamingMode mode) {
  constexpr std::size_t kProcs = 8;
  harness::WorldConfig cfg;
  cfg.oracle = false;  // measuring the protocol, not checking it
  cfg.num_processes = kProcs;
  cfg.num_name_servers = 2;
  cfg.naming_mode = mode;
  harness::SimWorld world(cfg);
  std::vector<NullUser> users(kProcs);

  Result r;
  r.replicas =
      mode == harness::NamingMode::kReplicatedEverywhere ? kProcs : 2;

  // Sequentially join 8 groups; measure join->view latency for the joiners
  // that resolve through the naming service (members 1..3 of each group).
  metrics::LatencyRecorder join_latency;
  for (std::uint64_t g = 0; g < 8; ++g) {
    const LwgId id{100 + g};
    const std::size_t first = (g % 2) * 4;
    world.lwg(first).join(id, users[first]);
    world.run_until([&] { return world.lwg(first).view_of(id) != nullptr; },
                    20'000'000);
    for (std::size_t k = 1; k < 4; ++k) {
      const std::size_t p = first + k;
      const Time start = world.simulator().now();
      world.lwg(p).join(id, users[p]);
      world.run_until([&] { return world.lwg(p).view_of(id) != nullptr; },
                      20'000'000);
      join_latency.record(world.simulator().now() - start);
    }
  }
  r.join_latency_ms = join_latency.mean_us() / 1000.0;

  // Update cost: server-to-server anti-entropy traffic over a fixed
  // 10-second settling window.
  auto total_syncs = [&] {
    std::uint64_t syncs = 0;
    for (std::size_t j = 0; j < r.replicas; ++j) {
      syncs += world.server(j).stats().syncs_sent;
    }
    return syncs;
  };
  const std::uint64_t before = total_syncs();
  world.run_for(10'000'000);
  r.syncs = total_syncs() - before;

  // Partition + heal still reconciles in both deployments.
  world.partition({{0, 1, 2, 3}, {4, 5, 6, 7}}, {0, 1});
  world.run_for(10'000'000);
  world.heal();
  r.reconciled = world.run_until(
      [&] {
        for (std::uint64_t g = 0; g < 8; ++g) {
          const LwgId id{100 + g};
          const std::size_t first = (g % 2) * 4;
          for (std::size_t k = 0; k < 4; ++k) {
            const lwg::LwgView* v = world.lwg(first + k).view_of(id);
            if (v == nullptr || v->members.size() != 4) return false;
          }
        }
        return true;
      },
      180'000'000);
  return r;
}

}  // namespace
}  // namespace plwg::bench

int main() {
  using namespace plwg;
  using namespace plwg::bench;
  std::printf("# Naming-service deployments: dedicated per-LAN servers vs a "
              "replica at every process (paper Sect. 3.1 alternative)\n");
  metrics::Table table({"deployment", "replicas", "mean-join-latency-ms",
                        "server-sync-msgs", "reconciles-after-heal"});
  for (harness::NamingMode mode :
       {harness::NamingMode::kDedicatedServers,
        harness::NamingMode::kReplicatedEverywhere}) {
    const Result r = run_one(mode);
    table.add_row(
        {mode == harness::NamingMode::kDedicatedServers ? "dedicated-2"
                                                        : "replicated-all",
         std::to_string(r.replicas), metrics::Table::fmt(r.join_latency_ms, 1),
         std::to_string(r.syncs), r.reconciled ? "yes" : "NO"});
  }
  table.print(std::cout);
  std::printf("\nshape check: full replication trades cheap local reads for "
              "O(replicas^2) anti-entropy traffic — the scalability trade "
              "the paper notes.\n");
  return 0;
}
