// Frame coalescing on the Fig. 2 workload: how many wire frames does one
// delivered message cost, and how much does batching + ack piggybacking
// save over the one-frame-per-message transport it replaced?
//
// The unbatched baseline needs no second implementation: it would put every
// protocol message on the wire in its own frame, so its frame count IS
// messages_sent. The reduction factor is therefore messages-per-frame over
// the measurement window, and the acceptance bar is a >= 2x reduction.
//
// Sweeping max_linger_us shows the latency/coalescing trade: 0 merges only
// within an event-loop round (zero added latency); positive lingers let
// batches accumulate across rounds.
#include <cstdio>
#include <iostream>
#include <map>

#include "fig2_common.hpp"

namespace plwg::bench {
namespace {

struct Result {
  double rate = 0;                // delivered multicasts/s
  double msgs_per_frame = 0;      // amortization over the window
  double frames_per_msg = 0;      // coalesced wire cost per delivery
  double baseline_frames_per_msg = 0;  // one-frame-per-message transport
  double piggyback_share = 0;     // acks that rode a data frame / messages
};

Result run_one(lwg::MappingMode mode, std::size_t n, Duration linger_us) {
  transport::TransportConfig tc;
  tc.max_linger_us = linger_us;
  Fig2World f = build_fig2_world(mode, n, 64, tc);
  constexpr int kWindow = 8;
  constexpr std::size_t kBytes = 64;
  constexpr Duration kMeasure = 5'000'000;
  constexpr Duration kTick = 2'000;

  std::map<LwgId, std::uint64_t> sent;
  // The refill runs as a simulation event — the way a real application's
  // sends happen — so the messages one round produces coalesce even with
  // zero linger.
  auto pump = [&] {
    f.world->simulator().schedule_after(0, [&] {
      const std::uint64_t prog_a = f.users[1]->delivered / n;
      const std::uint64_t prog_b = f.users[5]->delivered / n;
      for (LwgId g : f.set_a) {
        while (sent[g] < prog_a + kWindow) {
          f.world->lwg(0).send(g, probe_payload(f.world->simulator().now(),
                                                kBytes));
          sent[g]++;
        }
      }
      for (LwgId g : f.set_b) {
        while (sent[g] < prog_b + kWindow) {
          f.world->lwg(4).send(g, probe_payload(f.world->simulator().now(),
                                                kBytes));
          sent[g]++;
        }
      }
    });
  };

  const Time warm_end = f.world->simulator().now() + 2'000'000;
  while (f.world->simulator().now() < warm_end) {
    pump();
    f.world->run_for(kTick);
  }
  std::uint64_t base = 0;
  for (const auto& u : f.users) base += u->delivered;
  const sim::NetworkStats before = f.world->network().stats();
  const Time start = f.world->simulator().now();
  while (f.world->simulator().now() < start + kMeasure) {
    pump();
    f.world->run_for(kTick);
  }
  std::uint64_t end_count = 0;
  for (const auto& u : f.users) end_count += u->delivered;
  const sim::NetworkStats after = f.world->network().stats();

  const double delivered = static_cast<double>(end_count - base);
  const double frames = static_cast<double>(after.frames_sent -
                                            before.frames_sent);
  const double msgs = static_cast<double>(after.messages_sent -
                                          before.messages_sent);
  const double piggy = static_cast<double>(after.piggybacked_acks -
                                           before.piggybacked_acks);
  Result r;
  if (delivered == 0 || frames == 0) return r;
  r.rate = metrics::rate_per_sec(end_count - base,
                                 f.world->simulator().now() - start) / 4.0;
  r.msgs_per_frame = msgs / frames;
  r.frames_per_msg = frames / delivered;
  r.baseline_frames_per_msg = msgs / delivered;
  r.piggyback_share = msgs == 0 ? 0 : piggy / msgs;
  return r;
}

}  // namespace
}  // namespace plwg::bench

int main() {
  using namespace plwg;
  using namespace plwg::bench;
  std::printf("# Frame coalescing on the Fig. 2 workload (8 groups per set, "
              "closed-loop senders):\n"
              "# baseline = one-frame-per-message transport; reduction-x = "
              "msgs-per-frame\n");
  metrics::Table table({"service", "linger-us", "delivered-msgs-per-sec",
                        "frames-per-delivered-msg", "baseline-frames-per-msg",
                        "reduction-x", "piggybacked-ack-share"});
  for (lwg::MappingMode mode :
       {lwg::MappingMode::kStaticSingle, lwg::MappingMode::kDynamic}) {
    for (Duration linger : {0, 500, 2'000}) {
      const Result r = run_one(mode, 8, linger);
      table.add_row({mode_name(mode), std::to_string(linger),
                     metrics::Table::fmt(r.rate, 1),
                     metrics::Table::fmt(r.frames_per_msg, 3),
                     metrics::Table::fmt(r.baseline_frames_per_msg, 3),
                     metrics::Table::fmt(r.msgs_per_frame, 2),
                     metrics::Table::fmt(r.piggyback_share, 3)});
    }
  }
  table.print(std::cout);
  std::printf("\nshape check: reduction-x >= 2 (each frame amortizes its "
              "header and per-packet CPU cost over >= 2 protocol messages); "
              "longer lingers trade delivery latency for fewer frames.\n");
  return 0;
}
