// A second workload configuration in the spirit of Fig. 2 (the paper
// reports one of several configurations from the Dynamic LWG paper [8]):
// two sets of n groups whose memberships overlap heavily — set A spans
// processes 0..5, set B spans 2..7 (overlap 4 of 6).
//
// With this overlap the share rule fires (k = 4 > sqrt(2*2*2) = 2.83): the
// dynamic service *collapses* both sets onto one HWG — here maximum sharing
// is the right call because nearly every process wants nearly every
// message, so filtering waste is small. The latency comparison shows the
// dynamic service converging to static-like behaviour instead of paying 2n
// failure detectors like no-LWG — the mirror image of the disjoint
// configuration, demonstrating the policies adapt to the workload.
#include <cstdio>
#include <iostream>

#include "harness/world.hpp"
#include "lwg/lwg_user.hpp"
#include "metrics/stats.hpp"

namespace plwg::bench {
namespace {

const char* mode_name(lwg::MappingMode mode) {
  switch (mode) {
    case lwg::MappingMode::kDynamic: return "dynamic-lwg";
    case lwg::MappingMode::kStaticSingle: return "static-lwg";
    case lwg::MappingMode::kPerGroup: return "no-lwg";
  }
  return "?";
}

class CountingLatencyUser : public lwg::LwgUser {
 public:
  CountingLatencyUser(harness::SimWorld& world,
                      metrics::LatencyRecorder& recorder)
      : world_(world), recorder_(recorder) {}
  void on_lwg_view(LwgId, const lwg::LwgView&) override {}
  void on_lwg_data(LwgId, ProcessId,
                   std::span<const std::uint8_t> data) override {
    Decoder dec(data);
    recorder_.record(world_.simulator().now() - dec.get_i64());
  }

 private:
  harness::SimWorld& world_;
  metrics::LatencyRecorder& recorder_;
};

struct Result {
  double mean_us = 0;
  std::size_t hwgs = 0;
};

Result run_one(lwg::MappingMode mode, std::size_t n) {
  harness::WorldConfig cfg;
  cfg.oracle = false;  // measuring the protocol, not checking it
  cfg.num_processes = 8;
  cfg.net.bandwidth_bps = 10e6;
  cfg.net.node_process_cost_us = 300;
  cfg.lwg.mode = mode;
  cfg.lwg.policy_period_us = 3'000'000;
  cfg.lwg.shrink_delay_us = 5'000'000;
  if (mode == lwg::MappingMode::kStaticSingle) {
    cfg.lwg.static_hwg = HwgId{0xFFFF'0001};
    MemberSet contacts;
    for (std::uint32_t i = 0; i < 8; ++i) contacts.insert(ProcessId{i});
    cfg.lwg.static_contacts = contacts;
  }
  harness::SimWorld world(cfg);
  metrics::LatencyRecorder latency;
  std::vector<std::unique_ptr<CountingLatencyUser>> users;
  for (int i = 0; i < 8; ++i) {
    users.push_back(std::make_unique<CountingLatencyUser>(world, latency));
  }

  auto join_group = [&](LwgId id, std::size_t first, std::size_t count) {
    world.lwg(first).join(id, *users[first]);
    world.run_until([&] { return world.lwg(first).view_of(id) != nullptr; },
                    20'000'000);
    for (std::size_t k = 1; k < count; ++k) {
      world.lwg(first + k).join(id, *users[first + k]);
    }
    world.run_until(
        [&] {
          const lwg::LwgView* v = world.lwg(first).view_of(id);
          return v != nullptr && v->members.size() == count;
        },
        30'000'000);
  };

  std::vector<LwgId> set_a, set_b;
  for (std::size_t g = 0; g < n; ++g) {
    const LwgId a{0x0A00 + g};
    const LwgId b{0x0B00 + g};
    join_group(a, 0, 6);  // processes 0..5
    join_group(b, 2, 6);  // processes 2..7
    set_a.push_back(a);
    set_b.push_back(b);
  }
  // Give the share rule a few periods to settle the mapping.
  world.run_for(12'000'000);

  constexpr Duration kInterval = 20'000;
  constexpr Duration kMeasure = 8'000'000;
  const Time end = world.simulator().now() + kMeasure;
  latency.clear();
  while (world.simulator().now() < end) {
    const Time now = world.simulator().now();
    Encoder enc;
    enc.put_i64(now);
    std::vector<std::uint8_t> probe = enc.take();
    probe.resize(64, 0);
    for (LwgId g : set_a) world.lwg(0).send(g, probe);
    for (LwgId g : set_b) world.lwg(7).send(g, probe);
    world.run_for(kInterval);
  }
  world.run_for(2'000'000);

  Result r;
  r.mean_us = latency.mean_us();
  r.hwgs = world.lwg(2).member_hwgs().size();  // p2 belongs to both sets
  return r;
}

}  // namespace
}  // namespace plwg::bench

int main() {
  using namespace plwg;
  using namespace plwg::bench;
  std::printf("# Overlap configuration: 2 x n groups, memberships 0-5 and "
              "2-7 (overlap 4/6) — the share rule collapses the HWGs\n");
  metrics::Table table({"n-groups-per-set", "service", "mean-latency-us",
                        "hwgs-at-p2"});
  for (std::size_t n : {2, 4, 8}) {
    for (lwg::MappingMode mode :
         {lwg::MappingMode::kPerGroup, lwg::MappingMode::kStaticSingle,
          lwg::MappingMode::kDynamic}) {
      const Result r = run_one(mode, n);
      table.add_row({std::to_string(n), mode_name(mode),
                     metrics::Table::fmt(r.mean_us, 1),
                     std::to_string(r.hwgs)});
    }
  }
  table.print(std::cout);
  std::printf("\nshape check: dynamic converges to one shared HWG (like "
              "static) because the overlap makes sharing cheap; no-lwg "
              "still pays per-group machinery.\n");
  return 0;
}
