// Paper Fig. 2 (left panel): data-transfer latency of the three services.
//
// Two sets of n groups (4 disjoint members each) on 8 processes over a
// 10 Mbps shared bus. Each group's first member multicasts probes carrying
// the simulated send time; all other members record the one-way latency.
//
// Expected shape (paper Sect. 3.3): static LWG degrades with n because all
// 2n groups share one HWG — every process receives and filters every other
// set's traffic; dynamic LWG tracks the no-LWG service.
#include <cstdio>
#include <iostream>

#include "fig2_common.hpp"

namespace plwg::bench {
namespace {

struct Result {
  double mean_us;
  Duration p95_us;
  std::uint64_t samples;
};

Result run_one(lwg::MappingMode mode, std::size_t n) {
  Fig2World f = build_fig2_world(mode, n);
  constexpr Duration kInterval = 20'000;  // 50 msgs/s per group sender
  constexpr Duration kWarmup = 2'000'000;
  constexpr Duration kMeasure = 10'000'000;
  constexpr std::size_t kBytes = 64;

  const Time end = f.world->simulator().now() + kWarmup + kMeasure;
  Time measure_from = f.world->simulator().now() + kWarmup;
  bool cleared = false;
  while (f.world->simulator().now() < end) {
    const Time now = f.world->simulator().now();
    if (!cleared && now >= measure_from) {
      f.latency.clear();
      cleared = true;
    }
    for (LwgId g : f.set_a) {
      f.world->lwg(0).send(g, probe_payload(now, kBytes));
    }
    for (LwgId g : f.set_b) {
      f.world->lwg(4).send(g, probe_payload(now, kBytes));
    }
    f.world->run_for(kInterval);
  }
  f.world->run_for(2'000'000);  // drain
  return Result{f.latency.mean_us(), f.latency.p95_us(), f.latency.count()};
}

}  // namespace
}  // namespace plwg::bench

int main() {
  using namespace plwg;
  using namespace plwg::bench;
  std::printf("# Fig. 2 (latency): one-way LWG multicast latency, 2 x n "
              "groups of 4 on 8 processes, 10 Mbps shared bus\n");
  metrics::Table table({"n-groups-per-set", "service", "mean-latency-us",
                        "p95-latency-us", "samples"});
  for (std::size_t n : {1, 2, 4, 8, 16}) {
    for (lwg::MappingMode mode :
         {lwg::MappingMode::kPerGroup, lwg::MappingMode::kStaticSingle,
          lwg::MappingMode::kDynamic}) {
      const Result r = run_one(mode, n);
      table.add_row({std::to_string(n), mode_name(mode),
                     metrics::Table::fmt(r.mean_us, 1),
                     std::to_string(r.p95_us), std::to_string(r.samples)});
    }
  }
  table.print(std::cout);
  return 0;
}
