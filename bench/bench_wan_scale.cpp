// Geographic scale: the paper motivates partitionable operation with
// "networks of large geographical scale". A group spanning two LANs joined
// by a WAN backbone is cut and healed; we sweep the WAN latency and report
// end-to-end LWG multicast latency plus the full four-step reconciliation
// time after the heal — showing the design works unchanged from campus to
// continental latencies, with reconciliation dominated by the (constant)
// probe/sync periods rather than by distance.
#include <cstdio>
#include <iostream>

#include "harness/world.hpp"
#include "lwg/lwg_user.hpp"
#include "metrics/stats.hpp"

namespace plwg::bench {
namespace {

class LatencyUser : public lwg::LwgUser {
 public:
  LatencyUser(harness::SimWorld& world, metrics::LatencyRecorder& rec)
      : world_(world), rec_(rec) {}
  void on_lwg_view(LwgId, const lwg::LwgView&) override {}
  void on_lwg_data(LwgId, ProcessId,
                   std::span<const std::uint8_t> data) override {
    Decoder dec(data);
    rec_.record(world_.simulator().now() - dec.get_i64());
    ++delivered;
  }

  std::uint64_t delivered = 0;

 private:
  harness::SimWorld& world_;
  metrics::LatencyRecorder& rec_;
};

struct Result {
  double cross_lan_latency_ms = 0;
  double reconcile_ms = -1;
  double frames_per_msg = 0;  // wire frames per delivered message
};

Result run_one(Duration wan_delay_us) {
  harness::WorldConfig cfg;
  cfg.oracle = false;  // measuring the protocol, not checking it
  cfg.num_processes = 6;
  cfg.num_name_servers = 2;
  cfg.segments = {{0, 1, 2}, {3, 4, 5}};
  cfg.wan.propagation_delay_us = wan_delay_us;
  cfg.wan.bandwidth_bps = 5e6;
  harness::SimWorld world(cfg);
  metrics::LatencyRecorder latency;
  std::vector<std::unique_ptr<LatencyUser>> users;
  for (int i = 0; i < 6; ++i) {
    users.push_back(std::make_unique<LatencyUser>(world, latency));
  }
  const LwgId id{1};
  world.lwg(0).join(id, *users[0]);
  world.run_until([&] { return world.lwg(0).view_of(id) != nullptr; },
                  30'000'000);
  for (std::size_t i = 1; i < 6; ++i) world.lwg(i).join(id, *users[i]);
  world.run_until(
      [&] {
        for (std::size_t i = 0; i < 6; ++i) {
          const lwg::LwgView* v = world.lwg(i).view_of(id);
          if (v == nullptr || v->members.size() != 6) return false;
        }
        return true;
      },
      60'000'000);

  // Cross-LAN latency under light traffic.
  const std::uint64_t frames_base = world.network().stats().frames_sent;
  auto delivered_total = [&] {
    std::uint64_t total = 0;
    for (const auto& u : users) total += u->delivered;
    return total;
  };
  const std::uint64_t delivered_base = delivered_total();
  for (int m = 0; m < 50; ++m) {
    Encoder enc;
    enc.put_i64(world.simulator().now());
    world.lwg(0).send(id, enc.take());
    world.run_for(100'000);
  }
  world.run_for(1'000'000);
  Result r;
  r.cross_lan_latency_ms = latency.mean_us() / 1000.0;
  // All frames on the wire during the traffic window (data + the heartbeat /
  // naming background it piggybacks on) per end-to-end delivery.
  const std::uint64_t delivered = delivered_total() - delivered_base;
  if (delivered > 0) {
    r.frames_per_msg = static_cast<double>(world.network().stats().frames_sent -
                                           frames_base) /
                       static_cast<double>(delivered);
  }

  // WAN cut + heal: full reconciliation time.
  world.cut_wan();
  world.run_until(
      [&] {
        const lwg::LwgView* a = world.lwg(0).view_of(id);
        const lwg::LwgView* b = world.lwg(3).view_of(id);
        return a != nullptr && a->members.size() == 3 && b != nullptr &&
               b->members.size() == 3;
      },
      60'000'000);
  world.heal();
  const Time heal_at = world.simulator().now();
  const bool ok = world.run_until(
      [&] {
        for (std::size_t i = 0; i < 6; ++i) {
          const lwg::LwgView* v = world.lwg(i).view_of(id);
          if (v == nullptr || v->members.size() != 6) return false;
        }
        return true;
      },
      240'000'000);
  if (ok) {
    r.reconcile_ms =
        static_cast<double>(world.simulator().now() - heal_at) / 1000.0;
  }
  return r;
}

}  // namespace
}  // namespace plwg::bench

int main() {
  using namespace plwg;
  using namespace plwg::bench;
  std::printf("# Geographic scale: 2 LANs x 3 processes over a WAN backbone; "
              "latency + reconciliation vs WAN delay\n");
  metrics::Table table({"wan-one-way-ms", "cross-lan-multicast-ms",
                        "heal-to-merged-ms", "frames-per-delivered-msg"});
  for (Duration wan : {1'000, 20'000, 100'000}) {
    const Result r = run_one(wan);
    table.add_row({metrics::Table::fmt(static_cast<double>(wan) / 1000.0, 0),
                   metrics::Table::fmt(r.cross_lan_latency_ms, 1),
                   r.reconcile_ms < 0
                       ? "timeout"
                       : metrics::Table::fmt(r.reconcile_ms, 0),
                   metrics::Table::fmt(r.frames_per_msg, 3)});
  }
  table.print(std::cout);
  std::printf("\nshape check: data latency scales with WAN delay; "
              "reconciliation stays dominated by the constant probe/sync "
              "periods.\n");
  return 0;
}
