// Availability under partition churn — the "why partitionable?" experiment
// (paper Sect. 1/4: partitionable operation keeps every side of a split
// making progress).
//
// A ChaosMonkey injects random two-way partitions for two simulated
// minutes. Every 100 ms each process is probed: under the *partitionable*
// model it is available whenever it holds a view of its group (it can send
// and deliver within its side); under a *primary-component* model — what a
// non-partitionable service would give — it is available only when its view
// holds a majority. The gap between the two columns is the availability the
// paper's design recovers.
#include <cstdio>
#include <iostream>

#include "harness/chaos.hpp"
#include "harness/world.hpp"
#include "lwg/lwg_user.hpp"
#include "metrics/stats.hpp"

namespace plwg::bench {
namespace {

class NullUser : public lwg::LwgUser {
 public:
  void on_lwg_view(LwgId, const lwg::LwgView&) override {}
  void on_lwg_data(LwgId, ProcessId, std::span<const std::uint8_t>) override {}
};

struct Availability {
  double partitionable = 0;
  double primary_component = 0;
  std::size_t partitions = 0;
};

Availability run_one(std::uint64_t seed, Duration mean_partition_us) {
  constexpr std::size_t kProcs = 6;
  harness::WorldConfig cfg;
  cfg.oracle = false;  // measuring the protocol, not checking it
  cfg.num_processes = kProcs;
  cfg.num_name_servers = 2;
  harness::SimWorld world(cfg);
  std::vector<NullUser> users(kProcs);
  const LwgId id{1};
  world.lwg(0).join(id, users[0]);
  world.run_until([&] { return world.lwg(0).view_of(id) != nullptr; },
                  20'000'000);
  for (std::size_t i = 1; i < kProcs; ++i) world.lwg(i).join(id, users[i]);
  world.run_until(
      [&] {
        for (std::size_t i = 0; i < kProcs; ++i) {
          const lwg::LwgView* v = world.lwg(i).view_of(id);
          if (v == nullptr || v->members.size() != kProcs) return false;
        }
        return true;
      },
      60'000'000);

  harness::ChaosConfig chaos_cfg;
  chaos_cfg.seed = seed;
  chaos_cfg.mean_interval_us = 6'000'000;
  chaos_cfg.mean_partition_us = mean_partition_us;
  harness::ChaosMonkey chaos(world, chaos_cfg);

  constexpr Duration kRun = 120'000'000;
  constexpr Duration kSample = 100'000;
  std::uint64_t samples = 0, avail_part = 0, avail_primary = 0;
  const Time end = world.simulator().now() + kRun;
  while (world.simulator().now() < end) {
    chaos.run_for(kSample);
    for (std::size_t i = 0; i < kProcs; ++i) {
      ++samples;
      const lwg::LwgView* v = world.lwg(i).view_of(id);
      if (v != nullptr) {
        ++avail_part;
        if (v->members.size() > kProcs / 2) ++avail_primary;
      }
    }
  }
  chaos.quiesce();
  Availability out;
  out.partitionable = 100.0 * static_cast<double>(avail_part) /
                      static_cast<double>(samples);
  out.primary_component = 100.0 * static_cast<double>(avail_primary) /
                          static_cast<double>(samples);
  out.partitions = chaos.partitions_injected();
  return out;
}

}  // namespace
}  // namespace plwg::bench

int main() {
  using namespace plwg;
  using namespace plwg::bench;
  std::printf("# Availability under partition churn: partitionable LWGs vs "
              "a primary-component model (6 processes, 2 sim-minutes)\n");
  metrics::Table table({"mean-partition-s", "seed", "partitions-injected",
                        "partitionable-avail-pct", "primary-component-pct"});
  for (Duration mean : {2'000'000, 8'000'000, 20'000'000}) {
    for (std::uint64_t seed : {1ull, 2ull}) {
      const Availability a = run_one(seed, mean);
      table.add_row(
          {metrics::Table::fmt(static_cast<double>(mean) / 1e6, 0),
           std::to_string(seed), std::to_string(a.partitions),
           metrics::Table::fmt(a.partitionable, 1),
           metrics::Table::fmt(a.primary_component, 1)});
    }
  }
  table.print(std::cout);
  std::printf("\nshape check: partitionable availability stays near 100%% "
              "regardless of partition length; the primary-component model "
              "loses the minority side for the partition's whole "
              "duration.\n");
  return 0;
}
