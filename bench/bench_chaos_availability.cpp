// Availability under churn — the "why partitionable?" experiment
// (paper Sect. 1/4: partitionable operation keeps every side of a split
// making progress).
//
// Experiment 1: a ChaosMonkey injects random two-way partitions for two
// simulated minutes. Every 100 ms each process is probed: under the
// *partitionable* model it is available whenever it holds a view of its
// group (it can send and deliver within its side); under a
// *primary-component* model — what a non-partitionable service would give —
// it is available only when its view holds a majority. The gap between the
// two columns is the availability the paper's design recovers.
//
// Experiment 2: crash–restart churn. Chaos crashes processes and restarts
// them after an exponential downtime; each reborn incarnation replays its
// durable state and rejoins its LWG through the naming service. Reported
// per configuration: group availability under the churn and the
// mean-time-to-rejoin (MTTR) — restart until the reborn process holds a
// view of its group again.
#include <algorithm>
#include <cstdio>
#include <iostream>
#include <map>

#include "harness/chaos.hpp"
#include "harness/scenario.hpp"
#include "harness/world.hpp"
#include "lwg/lwg_user.hpp"
#include "metrics/stats.hpp"

namespace plwg::bench {
namespace {

class NullUser : public lwg::LwgUser {
 public:
  void on_lwg_view(LwgId, const lwg::LwgView&) override {}
  void on_lwg_data(LwgId, ProcessId, std::span<const std::uint8_t>) override {}
};

struct Availability {
  double partitionable = 0;
  double primary_component = 0;
  std::size_t partitions = 0;
};

Availability run_one(std::uint64_t seed, Duration mean_partition_us) {
  constexpr std::size_t kProcs = 6;
  harness::WorldConfig cfg;
  cfg.oracle = false;  // measuring the protocol, not checking it
  cfg.num_processes = kProcs;
  cfg.num_name_servers = 2;
  harness::SimWorld world(cfg);
  std::vector<NullUser> users(kProcs);
  const LwgId id{1};
  world.lwg(0).join(id, users[0]);
  world.run_until([&] { return world.lwg(0).view_of(id) != nullptr; },
                  20'000'000);
  for (std::size_t i = 1; i < kProcs; ++i) world.lwg(i).join(id, users[i]);
  world.run_until(
      [&] {
        for (std::size_t i = 0; i < kProcs; ++i) {
          const lwg::LwgView* v = world.lwg(i).view_of(id);
          if (v == nullptr || v->members.size() != kProcs) return false;
        }
        return true;
      },
      60'000'000);

  harness::ChaosConfig chaos_cfg;
  chaos_cfg.seed = seed;
  chaos_cfg.mean_interval_us = 6'000'000;
  chaos_cfg.mean_partition_us = mean_partition_us;
  harness::ChaosMonkey chaos(world, chaos_cfg);

  constexpr Duration kRun = 120'000'000;
  constexpr Duration kSample = 100'000;
  std::uint64_t samples = 0, avail_part = 0, avail_primary = 0;
  const Time end = world.simulator().now() + kRun;
  while (world.simulator().now() < end) {
    chaos.run_for(kSample);
    for (std::size_t i = 0; i < kProcs; ++i) {
      ++samples;
      const lwg::LwgView* v = world.lwg(i).view_of(id);
      if (v != nullptr) {
        ++avail_part;
        if (v->members.size() > kProcs / 2) ++avail_primary;
      }
    }
  }
  chaos.quiesce();
  Availability out;
  out.partitionable = 100.0 * static_cast<double>(avail_part) /
                      static_cast<double>(samples);
  out.primary_component = 100.0 * static_cast<double>(avail_primary) /
                          static_cast<double>(samples);
  out.partitions = chaos.partitions_injected();
  return out;
}

struct CrashChurnResult {
  double availability = 0;    // % of (process, sample) pairs with a view
  std::size_t crashes = 0;
  std::size_t restarts = 0;
  double mean_downtime_ms = 0;  // crash -> restart (injected by chaos)
  double mean_mttr_ms = 0;      // restart -> holding a group view again
  std::size_t rejoins = 0;
};

CrashChurnResult run_crash_churn(std::uint64_t seed,
                                 Duration mean_downtime_us) {
  constexpr std::size_t kProcs = 6;
  harness::WorldConfig cfg;
  cfg.oracle = false;  // measuring the protocol, not checking it
  cfg.num_processes = kProcs;
  cfg.num_name_servers = 2;
  harness::SimWorld world(cfg);
  std::vector<NullUser> users(kProcs);
  const LwgId id{1};
  world.lwg(0).join(id, users[0]);
  world.run_until([&] { return world.lwg(0).view_of(id) != nullptr; },
                  20'000'000);
  for (std::size_t i = 1; i < kProcs; ++i) world.lwg(i).join(id, users[i]);
  world.run_until(
      [&] {
        for (std::size_t i = 0; i < kProcs; ++i) {
          const lwg::LwgView* v = world.lwg(i).view_of(id);
          if (v == nullptr || v->members.size() != kProcs) return false;
        }
        return true;
      },
      60'000'000);

  harness::ChaosConfig chaos_cfg;
  chaos_cfg.seed = seed ^ 0xc4a5;
  chaos_cfg.mean_interval_us = 5'000'000;
  chaos_cfg.crash_probability = 1.0;  // crash-only churn
  chaos_cfg.max_crashes = 2;          // keep a majority up
  chaos_cfg.restart_probability = 1.0;
  chaos_cfg.mean_downtime_us = mean_downtime_us;
  harness::ChaosMonkey chaos(world, chaos_cfg);

  constexpr Duration kRun = 120'000'000;
  constexpr Duration kSample = 100'000;
  std::uint64_t samples = 0, avail = 0;
  std::size_t log_seen = 0;
  std::map<std::size_t, Time> awaiting_rejoin;  // index -> restarted_at
  double mttr_sum_us = 0;
  std::size_t rejoins = 0;

  const auto poll = [&](Time now) {
    for (std::size_t i = log_seen; i < chaos.restart_log().size(); ++i) {
      const harness::RestartEvent& ev = chaos.restart_log()[i];
      awaiting_rejoin[ev.index] = ev.restarted_at;
    }
    log_seen = chaos.restart_log().size();
    for (auto it = awaiting_rejoin.begin(); it != awaiting_rejoin.end();) {
      const auto& down = chaos.crashed();
      if (std::find(down.begin(), down.end(), it->first) != down.end()) {
        it = awaiting_rejoin.erase(it);  // crashed again before rejoining
        continue;
      }
      const lwg::LwgView* v = world.lwg(it->first).view_of(id);
      if (v != nullptr) {
        mttr_sum_us += static_cast<double>(now - it->second);
        ++rejoins;
        it = awaiting_rejoin.erase(it);
      } else {
        ++it;
      }
    }
  };

  const Time end = world.simulator().now() + kRun;
  while (world.simulator().now() < end) {
    chaos.run_for(kSample);
    const Time now = world.simulator().now();
    poll(now);
    for (std::size_t i = 0; i < kProcs; ++i) {
      ++samples;
      const auto& down = chaos.crashed();
      if (std::find(down.begin(), down.end(), i) != down.end()) continue;
      if (world.lwg(i).view_of(id) != nullptr) ++avail;
    }
  }
  chaos.quiesce();
  // Let the stragglers finish rejoining so MTTR covers every cycle.
  while (!awaiting_rejoin.empty() &&
         world.simulator().now() < end + 120'000'000) {
    world.run_for(kSample);
    poll(world.simulator().now());
  }

  CrashChurnResult out;
  out.availability =
      100.0 * static_cast<double>(avail) / static_cast<double>(samples);
  out.crashes = chaos.crashes_injected();
  out.restarts = chaos.restarts_fired();
  double downtime_sum = 0;
  for (const harness::RestartEvent& ev : chaos.restart_log()) {
    downtime_sum += static_cast<double>(ev.restarted_at - ev.crashed_at);
  }
  out.mean_downtime_ms =
      out.restarts == 0 ? 0 : downtime_sum / 1e3 /
                                  static_cast<double>(out.restarts);
  out.rejoins = rejoins;
  out.mean_mttr_ms =
      rejoins == 0 ? 0 : mttr_sum_us / 1e3 / static_cast<double>(rejoins);
  return out;
}

}  // namespace
}  // namespace plwg::bench

int main() {
  using namespace plwg;
  using namespace plwg::bench;
  std::printf("# Availability under partition churn: partitionable LWGs vs "
              "a primary-component model (6 processes, 2 sim-minutes)\n");
  metrics::Table table({"mean-partition-s", "seed", "partitions-injected",
                        "partitionable-avail-pct", "primary-component-pct"});
  for (Duration mean : {2'000'000, 8'000'000, 20'000'000}) {
    for (std::uint64_t seed : {1ull, 2ull}) {
      const Availability a = run_one(seed, mean);
      table.add_row(
          {metrics::Table::fmt(static_cast<double>(mean) / 1e6, 0),
           std::to_string(seed), std::to_string(a.partitions),
           metrics::Table::fmt(a.partitionable, 1),
           metrics::Table::fmt(a.primary_component, 1)});
    }
  }
  table.print(std::cout);
  std::printf("\nshape check: partitionable availability stays near 100%% "
              "regardless of partition length; the primary-component model "
              "loses the minority side for the partition's whole "
              "duration.\n");

  std::printf("\n# Availability under crash-restart churn: every crash gets "
              "a restart after an exponential downtime (6 processes, "
              "2 sim-minutes)\n");
  metrics::Table churn({"mean-downtime-s", "seed", "crashes", "restarts",
                        "avail-pct-of-alive", "mean-downtime-ms",
                        "rejoins", "mean-mttr-ms"});
  for (Duration mean_downtime : {500'000, 2'000'000, 8'000'000}) {
    for (std::uint64_t seed : {1ull, 2ull}) {
      const CrashChurnResult r = run_crash_churn(seed, mean_downtime);
      churn.add_row(
          {metrics::Table::fmt(static_cast<double>(mean_downtime) / 1e6, 1),
           std::to_string(seed), std::to_string(r.crashes),
           std::to_string(r.restarts),
           metrics::Table::fmt(r.availability, 1),
           metrics::Table::fmt(r.mean_downtime_ms, 0),
           std::to_string(r.rejoins),
           metrics::Table::fmt(r.mean_mttr_ms, 0)});
    }
  }
  churn.print(std::cout);
  std::printf("\nshape check: alive processes keep their views while reborn "
              "incarnations re-resolve and rejoin sub-second (MTTR tracks "
              "the failure-detector and naming-service round-trips, not the "
              "downtime).\n");

  // Experiment 3: the adversarial scenario corpus, one row per fault
  // family. Each corpus file replays through the same run_scenario() path
  // the tests and the CI sweep use (oracle on), averaged over a few seeds:
  // availability while the faults are live, recovery time from quiesce to
  // full convergence (family MTTR), and rejoin latency where the family
  // restarts processes.
  std::printf("\n# Adversarial scenario corpus: availability / recovery "
              "matrix per fault family (oracle on, 3 seeds per family)\n");
  metrics::Table corpus({"family", "avail-pct", "recovery-ms",
                         "mean-rejoin-ms", "partitions", "crashes",
                         "link-faults", "oracle"});
  for (const std::string& path : harness::list_scenario_files()) {
    const harness::Scenario sc = harness::load_scenario_file(path);
    double avail = 0, recovery_ms = 0, rejoin_ms = 0;
    std::size_t parts = 0, crashes = 0, links = 0, rejoin_rows = 0;
    bool clean = true;
    constexpr std::uint64_t kSeeds = 3;
    for (std::uint64_t seed = 1; seed <= kSeeds; ++seed) {
      const harness::ScenarioResult r = run_scenario(sc, seed);
      avail += r.availability_pct;
      recovery_ms += static_cast<double>(r.recovery_us) / 1e3;
      if (r.rejoins > 0) {
        rejoin_ms += r.mean_rejoin_ms;
        ++rejoin_rows;
      }
      parts += r.partitions;
      crashes += r.crashes;
      links += r.link_faults;
      clean = clean && r.converged && r.oracle_clean;
    }
    corpus.add_row(
        {sc.name, metrics::Table::fmt(avail / kSeeds, 1),
         metrics::Table::fmt(recovery_ms / kSeeds, 0),
         rejoin_rows == 0
             ? std::string("-")
             : metrics::Table::fmt(rejoin_ms /
                                       static_cast<double>(rejoin_rows),
                                   0),
         std::to_string(parts / kSeeds), std::to_string(crashes / kSeeds),
         std::to_string(links / kSeeds), clean ? "clean" : "VIOLATION"});
  }
  corpus.print(std::cout);
  std::printf("\nshape check: every family converges oracle-clean; "
              "availability dips scale with how much of the membership each "
              "family takes offline, and recovery stays within the "
              "failure-detector + merge timescale.\n");
  return 0;
}
