// Shard-scaling benchmark for the parallel simulation engine: a WAN of
// N LAN segments x 3 processes, one LWG per segment, steady per-process
// traffic (64-byte sends every 2 ms), 1 sim-s warmup + 5 sim-s measured.
// Sweeps worker threads x segment counts and emits a JSON document (stdout)
// with wall-clock, delivery throughput, the trace digest (determinism
// witness), and the load-balance parallelism bound
// sum(shard events) / max(shard events) — the speedup an ideal machine
// could extract from this shard assignment, reported alongside the
// *measured* speedup because the two only agree on hosts with enough cores.
//
// scripts/bench_shard_scaling.sh wraps this into BENCH_shard_scaling.json.
#include <chrono>
#include <cstdio>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "harness/world.hpp"
#include "lwg/lwg_user.hpp"
#include "util/codec.hpp"

namespace plwg::bench {
namespace {

class CountUser : public lwg::LwgUser {
 public:
  void on_lwg_view(LwgId, const lwg::LwgView&) override {}
  void on_lwg_data(LwgId, ProcessId, std::span<const std::uint8_t>) override {
    ++delivered;
  }
  std::uint64_t delivered = 0;
};

constexpr std::size_t kPerSegment = 3;
constexpr Duration kWarmupUs = 1'000'000;
constexpr Duration kMeasureUs = 5'000'000;
constexpr Duration kSendPeriodUs = 2'000;

struct RunResult {
  double wall_s = 0;
  std::uint64_t delivered = 0;
  std::uint64_t digest = 0;
  std::size_t shards = 0;
  std::size_t threads = 0;
  double parallelism_bound = 1.0;  // sum(shard events) / max(shard events)
};

RunResult run_one(std::size_t segments, std::size_t threads) {
  harness::WorldConfig cfg;
  cfg.oracle = false;  // measuring the engine, not checking the protocol
  cfg.num_processes = segments * kPerSegment;
  cfg.num_name_servers = 2;
  cfg.sim_threads = threads;
  for (std::size_t s = 0; s < segments; ++s) {
    std::vector<std::size_t> seg;
    for (std::size_t i = 0; i < kPerSegment; ++i)
      seg.push_back(s * kPerSegment + i);
    cfg.segments.push_back(seg);
  }
  harness::SimWorld world(cfg);

  std::vector<std::unique_ptr<CountUser>> users;
  for (std::size_t i = 0; i < cfg.num_processes; ++i)
    users.push_back(std::make_unique<CountUser>());

  // One LWG per segment spanning its local processes.
  for (std::size_t s = 0; s < segments; ++s) {
    const LwgId id{s + 1};
    world.lwg(s * kPerSegment).join(id, *users[s * kPerSegment]);
    world.run_until(
        [&] { return world.lwg(s * kPerSegment).view_of(id) != nullptr; },
        30'000'000);
    for (std::size_t i = 1; i < kPerSegment; ++i)
      world.lwg(s * kPerSegment + i).join(id, *users[s * kPerSegment + i]);
  }
  world.run_until(
      [&] {
        for (std::size_t s = 0; s < segments; ++s) {
          for (std::size_t i = 0; i < kPerSegment; ++i) {
            const lwg::LwgView* v =
                world.lwg(s * kPerSegment + i).view_of(LwgId{s + 1});
            if (v == nullptr || v->members.size() != kPerSegment) return false;
          }
        }
        return true;
      },
      120'000'000);

  auto slice = [&](Duration us) {
    const Time end = world.simulator().now() + us;
    while (world.simulator().now() < end) {
      for (std::size_t p = 0; p < cfg.num_processes; ++p) {
        Encoder enc;
        enc.put_i64(world.simulator().now());
        enc.put_bytes(std::vector<std::uint8_t>(56, 0xAB));
        world.lwg(p).send(LwgId{p / kPerSegment + 1}, enc.take());
      }
      world.run_for(kSendPeriodUs);
    }
  };

  slice(kWarmupUs);
  sim::Engine& engine = world.engine();
  std::vector<std::uint64_t> events_before(engine.num_shards());
  for (std::size_t s = 0; s < engine.num_shards(); ++s)
    events_before[s] = engine.shard_events_run(s);
  std::uint64_t delivered_before = 0;
  for (const auto& u : users) delivered_before += u->delivered;

  const auto t0 = std::chrono::steady_clock::now();
  slice(kMeasureUs);
  const auto t1 = std::chrono::steady_clock::now();

  RunResult r;
  r.wall_s = std::chrono::duration<double>(t1 - t0).count();
  for (const auto& u : users) r.delivered += u->delivered;
  r.delivered -= delivered_before;
  r.digest = world.trace_digest();
  r.shards = engine.num_shards();
  r.threads = engine.threads();
  std::uint64_t sum = 0, max = 0;
  for (std::size_t s = 0; s < engine.num_shards(); ++s) {
    const std::uint64_t delta = engine.shard_events_run(s) - events_before[s];
    sum += delta;
    if (delta > max) max = delta;
  }
  if (max > 0) {
    r.parallelism_bound =
        static_cast<double>(sum) / static_cast<double>(max);
  }
  return r;
}

}  // namespace
}  // namespace plwg::bench

int main() {
  using namespace plwg;
  using namespace plwg::bench;
  const unsigned host_cpus = std::thread::hardware_concurrency();
  const double sim_s = static_cast<double>(kMeasureUs) / 1e6;

  std::printf("{\n");
  std::printf("  \"workload\": \"N segments x %zu processes, one LWG per "
              "segment, 64B sends every %lld us from every process, "
              "%.0f sim-s warmup + %.0f sim-s measured\",\n",
              kPerSegment, static_cast<long long>(kSendPeriodUs),
              static_cast<double>(kWarmupUs) / 1e6, sim_s);
  std::printf("  \"host_cpus\": %u,\n", host_cpus);
  std::printf("  \"note\": \"parallelism_bound = sum(shard events) / "
              "max(shard events) over the measured window: the speedup an "
              "ideal machine could extract from this shard assignment. "
              "Measured speedup approaches it only when host_cpus >= "
              "threads; digests are thread-count-invariant by "
              "construction.\",\n");
  std::printf("  \"runs\": [\n");
  bool first = true;
  // Segment sweep covers the Fig-2 single-LAN topology (1 segment — one
  // shard, the classic engine) through the 8-segment WAN of the scaling
  // target; thread counts above the shard count clamp, so skip them.
  for (std::size_t segments : {std::size_t{1}, std::size_t{2}, std::size_t{4},
                               std::size_t{8}}) {
    double base_wall = 0;
    for (std::size_t threads : {std::size_t{1}, std::size_t{2},
                                std::size_t{4}, std::size_t{8}}) {
      if (threads > segments && threads != 1) continue;
      const RunResult r = run_one(segments, threads);
      if (threads == 1) base_wall = r.wall_s;
      if (!first) std::printf(",\n");
      first = false;
      std::printf(
          "    {\"segments\": %zu, \"threads\": %zu, \"shards\": %zu, "
          "\"sim_s\": %.0f, \"wall_s\": %.3f, \"wall_s_per_sim_s\": %.4f, "
          "\"deliveries\": %llu, \"deliveries_per_wall_s\": %.0f, "
          "\"speedup_vs_1_thread\": %.2f, \"parallelism_bound\": %.2f, "
          "\"trace_digest\": \"%016llx\"}",
          segments, threads, r.shards, sim_s, r.wall_s, r.wall_s / sim_s,
          static_cast<unsigned long long>(r.delivered),
          static_cast<double>(r.delivered) / r.wall_s,
          base_wall > 0 ? base_wall / r.wall_s : 1.0, r.parallelism_bound,
          static_cast<unsigned long long>(r.digest));
      std::fflush(stdout);
      std::fprintf(stderr, "segments=%zu threads=%zu: %.3f wall-s\n",
                   segments, threads, r.wall_s);
    }
  }
  std::printf("\n  ]\n}\n");
  return 0;
}
