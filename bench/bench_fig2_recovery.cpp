// Paper Fig. 2 (right panel): time to recover from the crash of a member.
//
// One member of set A (process 3) crashes; recovery is complete when every
// surviving member of every affected group has installed an LWG view that
// excludes the crashed process.
//
// Expected shape: with no LWG service each of the n affected groups is its
// own HWG and runs its own failure detection + flush on the shared bus, so
// recovery grows with n; the LWG services share one failure detector and
// one flush across all n groups, and the dynamic service additionally keeps
// set B's HWG untouched.
#include <cstdio>
#include <iostream>

#include "fig2_common.hpp"

namespace plwg::bench {
namespace {

Duration run_one(lwg::MappingMode mode, std::size_t n) {
  Fig2World f = build_fig2_world(mode, n);
  constexpr std::size_t kVictim = 3;  // member of every set-A group
  const ProcessId victim = f.world->pid(kVictim);

  const Time crash_at = f.world->simulator().now();
  f.world->crash(kVictim);

  const std::vector<std::size_t> survivors{0, 1, 2};
  const bool ok = f.world->run_until(
      [&] {
        for (LwgId g : f.set_a) {
          for (std::size_t i : survivors) {
            const lwg::LwgView* v = f.world->lwg(i).view_of(g);
            if (v == nullptr || v->members.contains(victim)) return false;
            if (v->members.size() != kGroupSize - 1) return false;
          }
        }
        return true;
      },
      120'000'000);
  if (!ok) return -1;
  return f.world->simulator().now() - crash_at;
}

}  // namespace
}  // namespace plwg::bench

int main() {
  using namespace plwg;
  using namespace plwg::bench;
  std::printf("# Fig. 2 (recovery): time from member crash until every "
              "affected group installed the surviving view, 2 x n groups of "
              "4 on 8 processes\n");
  metrics::Table table({"n-groups-per-set", "service", "recovery-time-ms"});
  for (std::size_t n : {1, 2, 4, 8, 16}) {
    for (lwg::MappingMode mode :
         {lwg::MappingMode::kPerGroup, lwg::MappingMode::kStaticSingle,
          lwg::MappingMode::kDynamic}) {
      const Duration t = run_one(mode, n);
      table.add_row({std::to_string(n), mode_name(mode),
                     t < 0 ? "timeout" : metrics::Table::fmt(
                                             static_cast<double>(t) / 1000.0, 1)});
    }
  }
  table.print(std::cout);
  return 0;
}
