// Sect. 6.1 ablation: callback-based global peer discovery vs. the polling
// alternative the paper rejects ("this could load the servers with
// unnecessary requests").
//
// We measure the naming-service request load of the implemented callback
// design across a partition/heal cycle with m LWGs, and compare with the
// computed load of the polling design (every member of every LWG polls the
// server once per period over the same interval).
#include <cstdio>
#include <iostream>

#include "harness/world.hpp"
#include "lwg/lwg_user.hpp"
#include "metrics/stats.hpp"

namespace plwg::bench {
namespace {

class NullUser : public lwg::LwgUser {
 public:
  void on_lwg_view(LwgId, const lwg::LwgView&) override {}
  void on_lwg_data(LwgId, ProcessId, std::span<const std::uint8_t>) override {}
};

struct Load {
  std::uint64_t server_requests = 0;  // set/read/testset processed
  std::uint64_t callbacks = 0;        // MULTIPLE-MAPPINGS pushed
  Duration interval_us = 0;
};

Load run_one(std::size_t m) {
  harness::WorldConfig cfg;
  cfg.oracle = false;  // measuring the protocol, not checking it
  cfg.num_processes = 8;
  cfg.num_name_servers = 2;
  harness::SimWorld world(cfg);
  std::vector<NullUser> users(8);

  std::vector<LwgId> ids;
  for (std::size_t g = 0; g < m; ++g) ids.push_back(LwgId{100 + g});
  for (LwgId id : ids) {
    world.lwg(0).join(id, users[0]);
    world.run_until([&] { return world.lwg(0).view_of(id) != nullptr; },
                    20'000'000);
    for (std::size_t i = 1; i < 8; ++i) world.lwg(i).join(id, users[i]);
    world.run_until(
        [&] {
          for (std::size_t i = 0; i < 8; ++i) {
            const lwg::LwgView* v = world.lwg(i).view_of(id);
            if (v == nullptr || v->members.size() != 8) return false;
          }
          return true;
        },
        40'000'000);
  }

  const Time start = world.simulator().now();
  auto requests = [&] {
    std::uint64_t total = 0;
    for (std::size_t s = 0; s < 2; ++s) {
      const auto& st = world.server(s).stats();
      total += st.set_requests + st.read_requests + st.testset_requests;
    }
    return total;
  };
  auto callbacks = [&] {
    return world.server(0).stats().callbacks_sent +
           world.server(1).stats().callbacks_sent;
  };
  const std::uint64_t req_before = requests();
  const std::uint64_t cb_before = callbacks();

  world.partition({{0, 1, 2, 3}, {4, 5, 6, 7}}, {0, 1});
  world.run_until(
      [&] {
        for (LwgId id : ids) {
          const lwg::LwgView* a = world.lwg(0).view_of(id);
          const lwg::LwgView* b = world.lwg(4).view_of(id);
          if (a == nullptr || a->members.size() != 4) return false;
          if (b == nullptr || b->members.size() != 4) return false;
        }
        return true;
      },
      60'000'000);
  world.heal();
  world.run_until(
      [&] {
        for (LwgId id : ids) {
          for (std::size_t i = 0; i < 8; ++i) {
            const lwg::LwgView* v = world.lwg(i).view_of(id);
            if (v == nullptr || v->members.size() != 8) return false;
          }
        }
        return true;
      },
      120'000'000);
  world.run_for(5'000'000);  // post-reconciliation registrations

  Load load;
  load.server_requests = requests() - req_before;
  load.callbacks = callbacks() - cb_before;
  load.interval_us = world.simulator().now() - start;
  return load;
}

}  // namespace
}  // namespace plwg::bench

int main() {
  using namespace plwg;
  using namespace plwg::bench;
  constexpr double kPollPeriodSec = 1.0;  // a modest polling rate
  std::printf("# Sect. 6.1 ablation: server load of callback-based discovery "
              "vs. polling (computed at 1 poll/member/lwg/sec)\n");
  metrics::Table table({"m-lwgs", "interval-s", "callback-design:requests",
                        "callback-design:callbacks", "polling-design:requests"});
  for (std::size_t m : {1, 2, 4, 8}) {
    const Load load = run_one(m);
    const double secs = static_cast<double>(load.interval_us) / 1e6;
    const double poll_requests =
        static_cast<double>(m) * 8.0 * (secs / kPollPeriodSec);
    table.add_row({std::to_string(m), metrics::Table::fmt(secs, 1),
                   std::to_string(load.server_requests),
                   std::to_string(load.callbacks),
                   metrics::Table::fmt(poll_requests, 0)});
  }
  table.print(std::cout);
  std::printf("\nshape check: callback-design request count stays "
              "per-event (mapping updates), polling grows with time x "
              "members x groups.\n");
  return 0;
}
