// Paper Table 3 + Figure 3: inconsistent mappings made in two concurrent
// partitions, and the merged naming-service database after reconciliation.
//
// Two LWGs (a and b) are created independently in partitions p = {0,1} and
// p' = {2,3}; the sides make opposite mapping decisions. After healing, the
// name servers reconcile and the merged database holds *both* view-to-view
// mappings per LWG — exactly the state of Table 3. LWG-level reconciliation
// is disabled here so the Table 3 state is stable and printable; the
// bench_table4_evolution binary shows the full four-stage evolution.
#include <cstdio>
#include <iostream>

#include "harness/world.hpp"
#include "lwg/lwg_user.hpp"

namespace plwg::bench {
namespace {

class NullUser : public lwg::LwgUser {
 public:
  void on_lwg_view(LwgId, const lwg::LwgView&) override {}
  void on_lwg_data(LwgId, ProcessId, std::span<const std::uint8_t>) override {}
};

}  // namespace
}  // namespace plwg::bench

int main() {
  using namespace plwg;
  using namespace plwg::bench;

  harness::WorldConfig cfg;
  cfg.oracle = false;  // measuring the protocol, not checking it
  cfg.num_processes = 4;
  cfg.num_name_servers = 2;
  cfg.lwg.reconcile_on_conflict = false;  // freeze the Table 3 state
  harness::SimWorld world(cfg);
  std::vector<NullUser> users(4);

  std::printf("# Table 3 / Fig. 3: inconsistent mappings in concurrent "
              "partitions and the merged NS database\n\n");

  world.partition({{0, 1}, {2, 3}}, {0, 1});
  const LwgId lwg_a{0xA};
  const LwgId lwg_b{0xB};
  for (std::size_t i = 0; i < 4; ++i) {
    world.lwg(i).join(lwg_a, users[i]);
    world.lwg(i).join(lwg_b, users[i]);
  }
  world.run_until(
      [&] {
        for (std::size_t i = 0; i < 4; ++i) {
          for (LwgId id : {lwg_a, lwg_b}) {
            const lwg::LwgView* v = world.lwg(i).view_of(id);
            if (v == nullptr || v->members.size() != 2) return false;
          }
        }
        return true;
      },
      60'000'000);
  world.run_for(3'000'000);  // let ns.set traffic land

  std::printf("-- partition p (server 0) --\n%s\n",
              world.server(0).dump_database().c_str());
  std::printf("-- partition p' (server 1) --\n%s\n",
              world.server(1).dump_database().c_str());

  const bool opposite =
      *world.lwg(0).hwg_of(lwg_a) != *world.lwg(2).hwg_of(lwg_a) &&
      *world.lwg(0).hwg_of(lwg_b) != *world.lwg(2).hwg_of(lwg_b);
  std::printf("mappings diverged across partitions: %s\n\n",
              opposite ? "yes" : "no");

  world.heal();
  world.run_until(
      [&] {
        for (std::size_t s = 0; s < 2; ++s) {
          const auto& db = world.server(s).database();
          for (LwgId id : {lwg_a, lwg_b}) {
            auto it = db.records.find(id);
            if (it == db.records.end()) return false;
            if (it->second.entries.size() != 2) return false;
          }
        }
        return true;
      },
      30'000'000);

  std::printf("-- merged naming service (Table 3) --\n%s\n",
              world.server(0).dump_database().c_str());
  std::printf("conflicts detected: LWG a: %s, LWG b: %s\n",
              world.server(0).database().records.at(lwg_a).has_conflict()
                  ? "yes" : "no",
              world.server(0).database().records.at(lwg_b).has_conflict()
                  ? "yes" : "no");
  std::printf("both replicas identical after reconciliation: %s\n",
              world.server(0).dump_database() ==
                      world.server(1).dump_database()
                  ? "yes" : "no");
  return 0;
}
