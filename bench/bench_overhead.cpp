// Wire-overhead accounting: bytes added by each protocol layer around a
// user payload, plus the sizes of the control messages that dominate flush
// and reconciliation traffic. These are the message-size inputs behind the
// bus model's contention numbers.
#include <cstdio>
#include <iostream>

#include "lwg/messages.hpp"
#include "metrics/stats.hpp"
#include "names/messages.hpp"
#include "vsync/messages.hpp"

namespace plwg::bench {
namespace {

MemberSet members(std::uint32_t n) {
  MemberSet set;
  for (std::uint32_t i = 0; i < n; ++i) set.insert(ProcessId{i});
  return set;
}

std::size_t lwg_data_size(std::size_t payload) {
  lwg::DataMsg msg;
  msg.lwg = LwgId{1};
  msg.lwg_view = vsync::ViewId{ProcessId{0}, 1};
  msg.payload.assign(payload, 0);
  Encoder enc;
  enc.put_u8(1);  // LwgMsgType
  msg.encode(enc);
  return enc.size();
}

std::size_t vsync_ordered_size(std::size_t inner) {
  vsync::OrderedMsgWire wire;
  wire.view = vsync::ViewId{ProcessId{0}, 1};
  wire.msg.payload.assign(inner, 0);
  Encoder enc;
  enc.put_id(HwgId{1});
  enc.put_u8(static_cast<std::uint8_t>(vsync::MsgType::kOrdered));
  wire.encode(enc);
  return enc.size() + 1;  // + transport port byte
}

template <class Msg>
std::size_t framed_size(const Msg& msg, vsync::MsgType type) {
  Encoder enc;
  enc.put_id(HwgId{1});
  enc.put_u8(static_cast<std::uint8_t>(type));
  msg.encode(enc);
  return enc.size() + 1;
}

}  // namespace
}  // namespace plwg::bench

int main() {
  using namespace plwg;
  using namespace plwg::bench;
  constexpr std::size_t kEthernetHeader = 46;

  std::printf("# Per-layer wire overhead around a user payload\n");
  metrics::Table table({"user-payload-B", "lwg-layer-B", "on-wire-B",
                        "overhead-B", "overhead-pct"});
  for (std::size_t payload : {0ul, 64ul, 256ul, 1024ul}) {
    const std::size_t lwg_bytes = lwg_data_size(payload);
    const std::size_t wire = vsync_ordered_size(lwg_bytes) + kEthernetHeader;
    const std::size_t overhead = wire - payload;
    table.add_row(
        {std::to_string(payload), std::to_string(lwg_bytes),
         std::to_string(wire), std::to_string(overhead),
         payload == 0
             ? "-"
             : metrics::Table::fmt(100.0 * static_cast<double>(overhead) /
                                       static_cast<double>(payload),
                                   0) + "%"});
  }
  table.print(std::cout);

  std::printf("\n# Control-message sizes (8-member group, before the "
              "Ethernet header)\n");
  metrics::Table ctrl({"message", "bytes"});
  const vsync::ViewId vid{ProcessId{0}, 3};
  {
    vsync::HeartbeatMsg m{vid, ProcessId{0}, 42};
    ctrl.add_row({"HEARTBEAT", std::to_string(framed_size(m, vsync::MsgType::kHeartbeat))});
  }
  {
    vsync::FlushReqMsg m{vid, 1, ProcessId{0}, members(8)};
    ctrl.add_row({"FLUSH_REQ", std::to_string(framed_size(m, vsync::MsgType::kFlushReq))});
  }
  {
    vsync::FlushAckMsg m{vid, 1, ProcessId{1}, {1, 2, 3, 4, 5, 6, 7, 8}};
    ctrl.add_row({"FLUSH_ACK (8 msgs)", std::to_string(framed_size(m, vsync::MsgType::kFlushAck))});
  }
  {
    vsync::NewViewMsg m;
    m.view.id = vid;
    m.view.members = members(8);
    m.view.predecessors = {vid};
    ctrl.add_row({"NEW_VIEW", std::to_string(framed_size(m, vsync::MsgType::kNewView))});
  }
  {
    vsync::MergeProbeMsg m{vid, ProcessId{0}, members(8)};
    ctrl.add_row({"MERGE_PROBE", std::to_string(framed_size(m, vsync::MsgType::kMergeProbe))});
  }
  {
    names::SetReqMsg m;
    m.req_id = 1;
    m.lwg = LwgId{1};
    m.entry.lwg_view = vid;
    m.entry.lwg_members = members(4);
    m.entry.hwg = HwgId{1};
    m.entry.hwg_view = vid;
    m.entry.hwg_members = members(8);
    Encoder enc;
    enc.put_u8(1);
    m.encode(enc);
    ctrl.add_row({"ns.set (4-member lwg)", std::to_string(enc.size() + 1)});
  }
  ctrl.print(std::cout);
  return 0;
}
