// Paper Fig. 1 ablation: the mapping heuristics' parameters k_m (minority)
// and k_c (closeness), defaults 4/4 in the paper's prototype.
//
// Workload: one big LWG over all 8 processes and one small LWG over {0,1}
// that starts out co-mapped on the big HWG (the optimistic initial mapping).
// For each (k_m, k_c) we report whether the interference rule evicted the
// small group, how many switches it took, and the final number of HWGs —
// showing why the paper's 4/4 gives eviction without thrash.
#include <cstdio>
#include <iostream>

#include "harness/world.hpp"
#include "lwg/lwg_user.hpp"
#include "metrics/stats.hpp"

namespace plwg::bench {
namespace {

class NullUser : public lwg::LwgUser {
 public:
  void on_lwg_view(LwgId, const lwg::LwgView&) override {}
  void on_lwg_data(LwgId, ProcessId, std::span<const std::uint8_t>) override {}
};

struct Outcome {
  bool evicted = false;
  std::uint64_t switches = 0;
  std::size_t hwgs_at_p0 = 0;
};

Outcome run_one(double k_m, double k_c) {
  harness::WorldConfig cfg;
  cfg.oracle = false;  // measuring the protocol, not checking it
  cfg.num_processes = 8;
  cfg.lwg.k_m = k_m;
  cfg.lwg.k_c = k_c;
  cfg.lwg.policy_period_us = 2'000'000;
  cfg.lwg.shrink_delay_us = 4'000'000;
  harness::SimWorld world(cfg);
  std::vector<NullUser> users(8);

  const LwgId big{1};
  const LwgId small{2};
  world.lwg(0).join(big, users[0]);
  world.run_until([&] { return world.lwg(0).view_of(big) != nullptr; },
                  20'000'000);
  for (std::size_t i = 1; i < 8; ++i) world.lwg(i).join(big, users[i]);
  world.run_until(
      [&] {
        for (std::size_t i = 0; i < 8; ++i) {
          const lwg::LwgView* v = world.lwg(i).view_of(big);
          if (v == nullptr || v->members.size() != 8) return false;
        }
        return true;
      },
      40'000'000);
  world.lwg(0).join(small, users[0]);
  world.run_until([&] { return world.lwg(0).view_of(small) != nullptr; },
                  20'000'000);
  world.lwg(1).join(small, users[1]);
  world.run_until(
      [&] {
        const lwg::LwgView* v = world.lwg(1).view_of(small);
        return v != nullptr && v->members.size() == 2;
      },
      20'000'000);

  // Many policy periods: time for eviction (or for thrash to show up).
  world.run_for(30'000'000);

  Outcome out;
  const auto h_big = world.lwg(0).hwg_of(big);
  const auto h_small = world.lwg(0).hwg_of(small);
  out.evicted = h_big && h_small && *h_big != *h_small;
  for (std::size_t i = 0; i < 8; ++i) {
    out.switches += world.lwg(i).stats().switches_started;
  }
  out.hwgs_at_p0 = world.lwg(0).member_hwgs().size();
  return out;
}

}  // namespace
}  // namespace plwg::bench

int main() {
  using namespace plwg;
  using namespace plwg::bench;
  std::printf("# Fig. 1 ablation: interference/closeness parameters k_m, "
              "k_c. Workload: LWG{8 members} + LWG{2 members} co-mapped.\n");
  std::printf("# |small| = 2, |hwg| = 8: minority iff 2 <= 8/k_m, i.e. "
              "k_m <= 4.\n");
  metrics::Table table({"k_m", "k_c", "small-lwg-evicted", "total-switches",
                        "hwgs-at-p0"});
  for (double k_m : {2.0, 4.0, 8.0}) {
    for (double k_c : {2.0, 4.0, 8.0}) {
      const Outcome out = run_one(k_m, k_c);
      table.add_row({metrics::Table::fmt(k_m, 0), metrics::Table::fmt(k_c, 0),
                     out.evicted ? "yes" : "no",
                     std::to_string(out.switches),
                     std::to_string(out.hwgs_at_p0)});
    }
  }
  table.print(std::cout);
  std::printf("\nshape check: k_m <= 4 evicts the minority group with a "
              "single switch; larger k_m tolerates it (more interference, "
              "fewer HWGs).\n");
  return 0;
}
